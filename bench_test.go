// Package fleaflicker's benchmark harness regenerates every table and
// figure of the paper's evaluation:
//
//	BenchmarkTable1Config  — Table 1 (machine configuration; asserted)
//	BenchmarkTable2        — Table 2 (dynamic instruction counts)
//	BenchmarkFig6          — Figure 6 (normalized cycles, base/2P/2Pre × suite)
//	BenchmarkFig7          — Figure 7 (access cycles by level × initiating pipe)
//	BenchmarkFig8          — Figure 8 (B→A feedback-latency sweep)
//	BenchmarkRunahead      — §2 run-ahead comparator
//	BenchmarkCQSweep       — coupling-queue size ablation
//	BenchmarkALATSweep     — finite-ALAT ablation (paper: perfect)
//	BenchmarkThrottleSweep — §3.5 deferral-throttle ablation
//	BenchmarkScheduler     — compile-time scheduler throughput
//	BenchmarkSimSpeed      — raw simulator speed (instructions/second)
//
// Each reports the headline numbers as benchmark metrics, so
// `go test -bench=. -benchmem` reproduces the evaluation end to end.
package fleaflicker

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/core"
	"fleaflicker/internal/experiments"
	"fleaflicker/internal/sched"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
	"fleaflicker/internal/workload"
)

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		if cfg.Mem.L2.Latency != 5 || cfg.Mem.MemLatency != 145 ||
			cfg.CQSize != 64 || cfg.IssueWidth != 8 ||
			cfg.Bpred.PHTEntries != 1024 || cfg.Mem.MaxOutstanding != 16 {
			b.Fatal("Table 1 constants drifted")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for _, bench := range workload.Suite() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			var instrs int64
			for i := 0; i < b.N; i++ {
				r, err := arch.Run(bench.Program(), 100_000_000)
				if err != nil {
					b.Fatal(err)
				}
				instrs = r.Instructions
			}
			b.ReportMetric(float64(instrs), "instructions")
		})
	}
}

func BenchmarkFig6(b *testing.B) {
	cfg := core.DefaultConfig()
	for _, bench := range workload.Suite() {
		bench := bench
		base, err := core.Run(core.Baseline, cfg, bench.Program())
		if err != nil {
			b.Fatal(err)
		}
		for _, model := range experiments.Fig6Models {
			model := model
			b.Run(bench.Name+"/"+model.String(), func(b *testing.B) {
				var r *stats.Run
				for i := 0; i < b.N; i++ {
					var err error
					r, err = core.Run(model, cfg, bench.Program())
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Cycles), "cycles")
				b.ReportMetric(float64(r.Cycles)/float64(base.Cycles), "norm")
				b.ReportMetric(float64(r.ByClass[stats.LoadStall])/float64(base.Cycles), "loadstall_norm")
			})
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	cfg := core.DefaultConfig()
	for _, bench := range workload.Suite() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			var r *stats.Run
			for i := 0; i < b.N; i++ {
				var err error
				r, err = core.Run(core.TwoPass, cfg, bench.Program())
				if err != nil {
					b.Fatal(err)
				}
			}
			var aCyc, bCyc float64
			for lvl := 0; lvl < 4; lvl++ {
				aCyc += float64(r.AccessCycles[lvl][stats.PipeA])
				bCyc += float64(r.AccessCycles[lvl][stats.PipeB])
			}
			b.ReportMetric(aCyc, "accessCycles_A")
			b.ReportMetric(bCyc, "accessCycles_B")
			if aCyc+bCyc > 0 {
				b.ReportMetric(aCyc/(aCyc+bCyc), "A_share")
			}
		})
	}
}

func BenchmarkFig8(b *testing.B) {
	cfg := core.DefaultConfig()
	for _, name := range []string{"099.go", "130.li", "181.mcf"} {
		bench, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, lat := range experiments.Fig8Latencies {
			lat := lat
			label := "inf"
			if lat >= 0 {
				label = strconv.Itoa(lat)
			}
			b.Run(name+"/lat="+label, func(b *testing.B) {
				c := cfg
				c.FeedbackLatency = lat
				var r *stats.Run
				for i := 0; i < b.N; i++ {
					var err error
					r, err = core.Run(core.TwoPass, c, bench.Program())
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Deferred), "deferred")
				b.ReportMetric(float64(r.Cycles), "cycles")
			})
		}
	}
}

func BenchmarkRunahead(b *testing.B) {
	cfg := core.DefaultConfig()
	for _, name := range []string{"181.mcf", "183.equake", "129.compress"} {
		bench, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var r *stats.Run
			for i := 0; i < b.N; i++ {
				var err error
				r, err = core.Run(core.Runahead, cfg, bench.Program())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
		})
	}
}

func BenchmarkCQSweep(b *testing.B) {
	for _, size := range []int{16, 64, 256} {
		size := size
		b.Run(fmt.Sprintf("%dx16", size/16), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.CQSize = size
			bench, _ := workload.ByName("181.mcf")
			var r *stats.Run
			for i := 0; i < b.N; i++ {
				var err error
				r, err = core.Run(core.TwoPass, cfg, bench.Program())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
		})
	}
}

func BenchmarkALATSweep(b *testing.B) {
	for _, capa := range []int{0, 16, 64} {
		capa := capa
		name := "perfect"
		if capa > 0 {
			name = fmt.Sprintf("%dx16", capa/16)
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.ALATCapacity = capa
			bench, _ := workload.ByName("175.vpr")
			var r *stats.Run
			for i := 0; i < b.N; i++ {
				var err error
				r, err = core.Run(core.TwoPass, cfg, bench.Program())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
			b.ReportMetric(float64(r.ConflictFlushes), "flushes")
		})
	}
}

func BenchmarkThrottleSweep(b *testing.B) {
	for _, lim := range []int{0, 8, 32} {
		lim := lim
		b.Run(strconv.Itoa(lim), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.DeferThrottle = lim
			bench, _ := workload.ByName("254.gap")
			var r *stats.Run
			for i := 0; i < b.N; i++ {
				var err error
				r, err = core.Run(core.TwoPass, cfg, bench.Program())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
		})
	}
}

func BenchmarkScheduler(b *testing.B) {
	p := workload.Random(77, workload.DefaultRandomConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sched.Schedule(p, sched.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(p.Insts)), "static_insts")
}

func BenchmarkSimSpeed(b *testing.B) {
	bench, _ := workload.ByName("300.twolf")
	cfg := core.DefaultConfig()
	for _, model := range core.Models() {
		model := model
		b.Run(model.String(), func(b *testing.B) {
			var instrs int64
			for i := 0; i < b.N; i++ {
				r, err := core.Run(model, cfg, bench.Program())
				if err != nil {
					b.Fatal(err)
				}
				instrs += r.Instructions
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instr/s")
		})
	}
}

// BenchmarkTraceOverhead measures the cost of the observability layer on
// the two-pass machine: "off" is Simulate with no sink (the zero-overhead
// claim — every emission site reduces to a nil check), "counting" attaches
// a minimal sink, and "ring" a buffering one.
func BenchmarkTraceOverhead(b *testing.B) {
	bench, _ := workload.ByName("300.twolf")
	run := func(b *testing.B, opts ...core.Option) {
		var instrs int64
		for i := 0; i < b.N; i++ {
			r, err := core.Simulate(context.Background(), core.TwoPass, bench.Program(), opts...)
			if err != nil {
				b.Fatal(err)
			}
			instrs += r.Instructions
		}
		b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instr/s")
	}
	b.Run("off", func(b *testing.B) { run(b) })
	b.Run("counting", func(b *testing.B) {
		var n int64
		run(b, core.WithTrace(trace.FuncSink(func(trace.Event) { n++ })))
		b.ReportMetric(float64(n)/float64(b.N), "events/run")
	})
	b.Run("ring", func(b *testing.B) {
		run(b, core.WithTrace(trace.NewRingSink(1<<16)))
	})
}

func BenchmarkCheckpointRepair(b *testing.B) {
	bench, _ := workload.ByName("300.twolf")
	for _, on := range []bool{false, true} {
		name := "copyback"
		if on {
			name = "checkpoint"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.CheckpointRepair = on
			var r *stats.Run
			for i := 0; i < b.N; i++ {
				var err error
				r, err = core.Run(core.TwoPass, cfg, bench.Program())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
		})
	}
}

func BenchmarkIfConvert(b *testing.B) {
	rows, err := experiments.IfConvertStudy(core.DefaultConfig(), []string{"300.twolf"})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.IfConvertStudy(core.DefaultConfig(), []string{"300.twolf"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Plain2P), "cycles_2P")
	b.ReportMetric(float64(rows[0].Conv2P), "cycles_2P_ifconv")
	b.ReportMetric(float64(rows[0].Converted), "converted")
}

func BenchmarkFutureMachine(b *testing.B) {
	bench, _ := workload.ByName("183.equake")
	for _, tc := range []struct {
		name string
		cfg  core.Config
	}{
		{"table1", core.DefaultConfig()},
		{"future", experiments.FutureConfig()},
		{"perfectmem", experiments.PerfectMemoryConfig()},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var base, tp *stats.Run
			for i := 0; i < b.N; i++ {
				var err error
				base, err = core.Run(core.Baseline, tc.cfg, bench.Program())
				if err != nil {
					b.Fatal(err)
				}
				tp, err = core.Run(core.TwoPass, tc.cfg, bench.Program())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tp.Cycles)/float64(base.Cycles), "2P_norm")
		})
	}
}
