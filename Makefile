# Tier-1 gate: everything a change must pass before merging.
# `make ci` is the documented equivalent of the checks run in CI.

GO ?= go

.PHONY: ci vet build test race bench bench-smoke

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-smoke is the simulator-speed regression gate: the allocation test
# fails if the cycle loop regresses to allocating per instruction, and the
# single-iteration SimSpeed run catches gross slowdowns and bench bit-rot.
bench-smoke:
	$(GO) test -run='^TestSteadyStateAllocationFree$$' ./internal/core/
	$(GO) test -bench=BenchmarkSimSpeed -benchtime=1x -run=^$$ .
