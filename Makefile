# Tier-1 gate: everything a change must pass before merging.
# `make ci` is the documented equivalent of the checks run in CI.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
