# Tier-1 gate: everything a change must pass before merging.
# `make ci` is the documented equivalent of the checks run in CI.

GO ?= go

.PHONY: ci vet lint gcassert build test race bench bench-json bench-smoke ckpt-smoke race-service fuzz-smoke fuzz cluster-smoke flow-smoke

ci: vet lint gcassert build race bench-smoke ckpt-smoke fuzz-smoke cluster-smoke flow-smoke

vet:
	$(GO) vet ./...

# lint runs the repository's domain-specific analyzers (cmd/flealint) over
# every package via the vet driver. AST passes: allocation-free hot paths,
# determinism, guarded tracing, arena discipline, unique metric names.
# Dataflow passes (v2): snapshot page-alias safety, drain-barrier snapshot
# protocol, //flea:guardedby lock discipline, context-polling loops. The
# per-analyzer package scopes live in internal/analysis/scope, whose
# completeness test keeps them in sync with `go list ./internal/...`.
lint:
	$(GO) build -o bin/flealint ./cmd/flealint
	$(GO) vet -vettool=bin/flealint ./...

# gcassert verifies the compiler-fact assertions: every //flea:inline,
# //flea:noescape and //flea:bce directive is checked against the gc
# compiler's -m / -d=ssa/check_bce diagnostics, so a hot path that stops
# inlining or regrows a bounds check fails the build rather than only the
# benchmarks.
gcassert:
	$(GO) run ./cmd/fleagcassert

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-service is the focused variant CI also runs: the serving subsystem is
# the one heavily concurrent package, so its tests get a second, repeated
# pass under the race detector.
race-service:
	$(GO) test -race -count=2 ./internal/service/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-json writes the machine-readable perf snapshot (BENCH_<rev>.json:
# instructions/second and allocations per run for every model) into the repo
# root, to commit alongside perf-sensitive changes so regressions diff in
# review.
bench-json:
	$(GO) run ./cmd/fleabench -json .

# bench-smoke is the simulator-speed regression gate: the allocation test
# fails if the cycle loop regresses to allocating per instruction, and the
# single-iteration SimSpeed run catches gross slowdowns and bench bit-rot.
bench-smoke:
	$(GO) test -run='^TestSteadyStateAllocationFree$$' ./internal/core/
	$(GO) test -bench=BenchmarkSimSpeed -benchtime=1x -run=^$$ .

# ckpt-smoke is the checkpoint-equivalence gate: a machine-snapshot resume
# must be byte-identical to its from-zero run (stats, store log, trace
# suffix) on every default-lattice cell, a functional resume must verify
# cleanly on every model, and a checkpointed fuzz campaign must reach
# exactly the verdicts of a from-zero one.
ckpt-smoke:
	$(GO) test -run='^(TestCheckpointResumeGoldenEquivalence|TestCampaignCheckpointedMatchesFromZero)$$' ./internal/diffsim/
	$(GO) test -run='^(TestFunctionalResume|TestMachineSnapshotResume)$$' ./internal/core/

# fuzz-smoke is the differential-correctness gate: a small seeded campaign
# of generated EPIC programs run across the smoke lattice (every model, one
# config each) and diffed against the functional reference. Deterministic —
# same seed, same verdict — and sized to finish well under 30 seconds.
fuzz-smoke:
	$(GO) run ./cmd/fleafuzz -smoke -programs 2000 -seed 1 -quiet

# cluster-smoke is the distributed-tier gate, run under the race detector:
# three in-process fleasimd backends behind a consistent-hash coordinator
# shard a 2000-program differential fuzz campaign (zero divergences, every
# backend executes chunks), a retuned second coordinator must serve the full
# re-run from federated caches (nonzero peer hits, zero fresh simulations),
# killing a backend mid-campaign must re-route its chunks with zero errors,
# and the capacity model must show >= 1.5x speedup of three backends over
# one.
cluster-smoke:
	FLEA_CLUSTER_PROGRAMS=2000 $(GO) test -race -count=1 \
		-run='^(TestClusterSmokeCampaign|TestClusterKillBackendMidCampaign|TestClusterSpeedup|TestClusterStealVsComplete|TestClusterBackendDiesMidJob)$$' \
		./internal/cluster/

# flow-smoke is the orchestration gate: the tiny two-stage smoke pipeline
# runs twice against a scratch artifact store and the second invocation must
# be 100% cache hits (zero fresh simulations), then the kill-and-resume
# property — interrupt a campaign mid-flight, rerun, only unfinished stages
# execute — is checked under the race detector along with the built-in
# pipelines' end-to-end tests.
flow-smoke:
	$(GO) build -o bin/fleaflow ./cmd/fleaflow
	rm -rf bin/.flow-smoke-store
	bin/fleaflow run smoke -store bin/.flow-smoke-store -q
	bin/fleaflow run smoke -store bin/.flow-smoke-store -q | grep -q '0 ran, 2 cached'
	rm -rf bin/.flow-smoke-store
	$(GO) test -race -count=1 \
		-run='^(TestRunCancelAndResume|TestRunCachesArtifacts|TestSmokePipelineEndToEnd|TestFuzzCampaignSmoke)$$' \
		./internal/fleaflow/

# fuzz is the long-form campaign used nightly: the full config lattice
# (CQ sizes x feedback latencies x regroup on/off), shrunk reproducers
# written to fuzz-corpus/ for triage.
fuzz:
	$(GO) run ./cmd/fleafuzz -programs 10000 -seed 1 -corpus fuzz-corpus
