package program

import (
	"testing"

	"fleaflicker/internal/isa"
)

// corpusProgram builds a program exercising every operand form the .flea
// serializer must round-trip: predication, immediates, memory displacements,
// absolute branch targets, calls, indirect branches, stop bits, a non-zero
// entry and sparse data.
func corpusProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("corpus-roundtrip")
	data := b.Data()
	data.WriteU32(0x1000_0000, 0xdeadbeef)
	data.WriteU32(0x1000_0ffc, 7)     // end of a page
	data.WriteU32(0x1004_0000, 0x123) // a later, discontiguous page

	b.Label("leaf")
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: isa.R(3), Src1: isa.R(3), Src2: isa.RegNone, Imm: 1, Stop: true})
	b.Emit(isa.Inst{Op: isa.OpBrRet, Dst: isa.RegNone, Src1: isa.R(63), Src2: isa.RegNone, Stop: true})

	b.Label("main")
	b.Emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(1), Src1: isa.RegNone, Src2: isa.RegNone, Imm: 0x1000_0000, Stop: true})
	b.Emit(isa.Inst{Op: isa.OpLd4, Dst: isa.R(2), Src1: isa.R(1), Src2: isa.RegNone, Imm: 4, Stop: true})
	b.Emit(isa.Inst{Op: isa.OpCmpEqI, Dst: isa.P(1), Src1: isa.R(2), Src2: isa.RegNone, Imm: 0, Stop: true})
	b.Emit(isa.Inst{Op: isa.OpAddI, Pred: isa.P(1), Dst: isa.R(4), Src1: isa.R(2), Src2: isa.RegNone, Imm: 9, Stop: true})
	b.Emit(isa.Inst{Op: isa.OpSt2, Dst: isa.RegNone, Src1: isa.R(1), Src2: isa.R(4), Imm: 16, Stop: true})
	b.Emit(isa.Inst{Op: isa.OpFAdd, Dst: isa.F(2), Src1: isa.F(2), Src2: isa.F(3)}) // no stop: two-inst group
	b.Emit(isa.Inst{Op: isa.OpXor, Dst: isa.R(5), Src1: isa.R(4), Src2: isa.R(2), Stop: true})
	b.Call(isa.R(63), "leaf")
	b.Stop()
	b.Br(isa.P(1), "main")
	b.Stop()
	b.Halt()
	b.SetEntry("main")
	return b.MustBuild()
}

func TestFleaRoundTrip(t *testing.T) {
	p := corpusProgram(t)
	blob := p.MarshalFlea()

	q, err := ParseFlea("roundtrip.flea", blob)
	if err != nil {
		t.Fatalf("ParseFlea: %v\n%s", err, blob)
	}
	if len(q.Insts) != len(p.Insts) {
		t.Fatalf("round trip changed instruction count: %d -> %d", len(p.Insts), len(q.Insts))
	}
	for i := range p.Insts {
		if p.Insts[i] != q.Insts[i] {
			t.Errorf("inst %d: %+v -> %+v", i, p.Insts[i], q.Insts[i])
		}
	}
	if q.Entry != p.Entry {
		t.Errorf("entry: %d -> %d", p.Entry, q.Entry)
	}
	if !q.Data.Equal(p.Data) {
		t.Errorf("data image changed across round trip")
	}
	// A reproducer must survive a second round trip byte-identically, so
	// re-serialized minimized programs stay stable in a corpus directory.
	if blob2 := string(q.MarshalFlea()); blob2 != string(blob) {
		t.Errorf("second round trip not byte-identical:\n%s\nvs\n%s", blob, blob2)
	}
}

func TestParseFleaRejectsForeignText(t *testing.T) {
	if _, err := ParseFlea("x.flea", []byte("movi r1 = 3 ;;\nhalt ;;\n")); err == nil {
		t.Fatalf("ParseFlea accepted input without the corpus header")
	}
}
