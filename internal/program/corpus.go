package program

import (
	"fmt"
	"io"
	"os"
	"strings"

	"fleaflicker/internal/mem"
)

// This file implements the .flea corpus format used by the differential
// fuzzer (internal/diffsim, cmd/fleafuzz) to persist reproducers: a
// self-contained textual serialization of a Program — its initial data
// image as sparse .word directives plus its instruction stream — in the
// repository's own assembly syntax. A .flea file therefore needs no special
// loader: ParseFlea is the assembler, and a reproducer can be hand-edited,
// replayed with `fleasim -repro`, or re-minimized, without the fuzz harness
// that produced it.
//
// Branch targets are serialized as absolute instruction indices (@N), so
// the instruction stream round-trips exactly; source labels are not
// preserved (minimized programs no longer correspond to the generator's
// label structure anyway).

// fleaHeader identifies a .flea corpus file; ParseFlea requires it.
const fleaHeader = "# fleaflicker .flea reproducer v1"

// fleaEntryLabel marks the entry instruction in serialized programs.
const fleaEntryLabel = "__entry"

// WriteFlea serializes p to w in the .flea corpus format.
func (p *Program) WriteFlea(w io.Writer) error {
	var b strings.Builder
	b.WriteString(fleaHeader + "\n")
	// The program name is deliberately not serialized (a reloaded reproducer
	// is named after its file), so re-serializing is byte-stable.
	fmt.Fprintf(&b, "# %d instructions\n", len(p.Insts))
	fmt.Fprintf(&b, ".entry %s\n", fleaEntryLabel)

	if p.Data != nil {
		wroteData := false
		cursor := uint32(0)
		for _, base := range p.Data.PageBases() {
			for off := uint32(0); off < mem.PageBytes; off += 4 {
				addr := base + off
				v := p.Data.ReadU32(addr)
				if v == 0 {
					continue
				}
				if !wroteData {
					b.WriteString(".data\n")
					wroteData = true
				}
				if addr != cursor {
					fmt.Fprintf(&b, ".org %#x\n", addr)
				}
				fmt.Fprintf(&b, ".word %#x\n", v)
				cursor = addr + 4
			}
		}
	}

	b.WriteString(".text\n")
	for i := range p.Insts {
		if int32(i) == p.Entry {
			b.WriteString(fleaEntryLabel + ":\n")
		}
		fmt.Fprintf(&b, "\t%s\n", p.Insts[i].String())
	}
	if int(p.Entry) == len(p.Insts) { // degenerate but explicit
		b.WriteString(fleaEntryLabel + ":\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MarshalFlea returns p in the .flea corpus format.
func (p *Program) MarshalFlea() []byte {
	var b strings.Builder
	if err := p.WriteFlea(&b); err != nil {
		panic(err) // strings.Builder writes cannot fail
	}
	return []byte(b.String())
}

// ParseFlea parses a .flea corpus file. The format is the repository's
// assembly language, so this is Assemble plus a header check guarding
// against feeding arbitrary assembly where a reproducer is expected.
func ParseFlea(name string, src []byte) (*Program, error) {
	if !strings.HasPrefix(string(src), fleaHeader) {
		return nil, fmt.Errorf("%s: not a .flea reproducer (missing %q header)", name, fleaHeader)
	}
	return Assemble(name, string(src))
}

// LoadFlea reads and parses a .flea corpus file from disk, naming the
// program after the file.
func LoadFlea(path string) (*Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseFlea(path, src)
}
