package program

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
)

// Assemble parses the textual assembly language into a Program.
//
// Syntax, line-oriented ("//" and "#" start comments; ";;" at the end of an
// instruction marks a stop bit, ending the issue group):
//
//	.text                    switch to text (default)
//	.data ADDR               switch to data, cursor at ADDR
//	.org ADDR                move the data cursor
//	.word V, V, ...          emit 4-byte little-endian words
//	.byte V, V, ...          emit bytes
//	.float V, V, ...         emit 8-byte floats
//	.space N                 advance the cursor N bytes (zero fill)
//	.equ NAME V              define an integer constant
//	.entry LABEL             set the entry point (default: first instruction)
//
//	label:                   text label (instruction index) or, in a data
//	                         section, a constant naming the current cursor
//	(pN) mnemonic operands   optionally predicated instruction
//
// Instruction forms:
//
//	add r1 = r2, r3          three-operand ALU (sub, and, or, xor, shl, ...)
//	addi r1 = r2, 5          register-immediate ALU
//	movi r1 = 99             load immediate (also: movi r1 = SYM, = @label)
//	mov r1 = r2
//	cmp.lt p1 = r2, r3       compares write a predicate (cmpi.* take imm)
//	ld4 r1 = [r2]            loads; [r2, 8] adds a displacement
//	st4 [r2] = r3            stores
//	ldf f1 = [r2]            8-byte FP load/store
//	fadd f1 = f2, f3         FP arithmetic; i2f f1 = r1; f2i r1 = f1
//	br label                 branch ((pN) br label for conditional)
//	br.call r63 = label      call, writing the return PC
//	br.ret r63               return (indirect); br.ind r5
//	halt                     stop the machine (must end its group)
//	nop
//
// Immediate operands may be decimal or 0x-hex literals, .equ names, or
// @label (the instruction index of a text label, for indirect branches).
func Assemble(name, src string) (*Program, error) {
	a := &assembler{
		prog: &Program{
			Name:   name,
			Labels: make(map[string]int32),
			Data:   mem.NewImage(),
		},
		equs:    make(map[string]int64),
		entry:   "",
		inData:  false,
		dataPos: DataBase,
	}
	for i, line := range strings.Split(src, "\n") {
		if err := a.line(line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, i+1, err)
		}
	}
	if err := a.finish(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return a.prog, nil
}

// MustAssemble is Assemble panicking on error, for statically known sources
// (workload kernels, tests).
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type fixup struct {
	instIdx int
	label   string
	isImm   bool // patch Imm instead of Target
}

type assembler struct {
	prog    *Program
	equs    map[string]int64
	fixups  []fixup
	entry   string
	inData  bool
	dataPos uint32
}

func (a *assembler) line(raw string) error {
	line := raw
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	stop := false
	if i := strings.Index(line, ";;"); i >= 0 {
		stop = true
		line = line[:i]
	}
	line = strings.TrimSpace(line)

	// Labels (possibly followed by an instruction on the same line).
	for {
		i := strings.Index(line, ":")
		if i < 0 || strings.ContainsAny(line[:i], " \t=[,(") {
			break
		}
		label := line[:i]
		if allDigits(label) {
			// A line-number annotation as emitted by Dump; ignore it so
			// Dump output reassembles.
			line = strings.TrimSpace(line[i+1:])
			continue
		}
		if !validIdent(label) {
			return fmt.Errorf("invalid label %q", label)
		}
		if a.inData {
			if _, dup := a.equs[label]; dup {
				return fmt.Errorf("duplicate symbol %q", label)
			}
			a.equs[label] = int64(a.dataPos)
		} else {
			if _, dup := a.prog.Labels[label]; dup {
				return fmt.Errorf("duplicate label %q", label)
			}
			a.prog.Labels[label] = int32(len(a.prog.Insts))
		}
		line = strings.TrimSpace(line[i+1:])
	}
	if line == "" {
		if stop {
			return a.markStop()
		}
		return nil
	}
	if strings.HasPrefix(line, ".") {
		if stop {
			return fmt.Errorf("stop bit on a directive")
		}
		return a.directive(line)
	}
	if err := a.inst(line); err != nil {
		return err
	}
	if stop {
		return a.markStop()
	}
	return nil
}

func (a *assembler) markStop() error {
	if len(a.prog.Insts) == 0 {
		return fmt.Errorf("stop bit before any instruction")
	}
	a.prog.Insts[len(a.prog.Insts)-1].Stop = true
	return nil
}

func (a *assembler) directive(line string) error {
	fields := strings.SplitN(line, " ", 2)
	dir := fields[0]
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
		if rest != "" {
			v, err := a.intExpr(rest)
			if err != nil {
				return err
			}
			a.dataPos = uint32(v)
		}
	case ".org":
		v, err := a.intExpr(rest)
		if err != nil {
			return err
		}
		a.dataPos = uint32(v)
	case ".space":
		v, err := a.intExpr(rest)
		if err != nil {
			return err
		}
		a.dataPos += uint32(v)
	case ".word", ".byte", ".float":
		if !a.inData {
			return fmt.Errorf("%s outside a data section", dir)
		}
		for _, tok := range splitOperands(rest) {
			switch dir {
			case ".float":
				f, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return fmt.Errorf("bad float %q", tok)
				}
				a.prog.Data.Write(a.dataPos, 8, math.Float64bits(f))
				a.dataPos += 8
			case ".word":
				v, err := a.intExpr(tok)
				if err != nil {
					return err
				}
				a.prog.Data.Write(a.dataPos, 4, uint64(uint32(v)))
				a.dataPos += 4
			case ".byte":
				v, err := a.intExpr(tok)
				if err != nil {
					return err
				}
				a.prog.Data.SetByte(a.dataPos, byte(v))
				a.dataPos++
			}
		}
	case ".equ":
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return fmt.Errorf(".equ wants NAME VALUE")
		}
		if !validIdent(parts[0]) {
			return fmt.Errorf("invalid .equ name %q", parts[0])
		}
		v, err := a.intExpr(parts[1])
		if err != nil {
			return err
		}
		a.equs[parts[0]] = v
	case ".entry":
		a.entry = rest
	default:
		return fmt.Errorf("unknown directive %q", dir)
	}
	return nil
}

func (a *assembler) inst(line string) error {
	if a.inData {
		return fmt.Errorf("instruction in data section")
	}
	in := isa.Inst{Pred: isa.P(0), Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}

	// Qualifying predicate.
	if strings.HasPrefix(line, "(") {
		end := strings.Index(line, ")")
		if end < 0 {
			return fmt.Errorf("unterminated predicate")
		}
		r, ok := parseReg(strings.TrimSpace(line[1:end]))
		if !ok || !r.IsPred() {
			return fmt.Errorf("bad qualifying predicate %q", line[1:end])
		}
		in.Pred = r
		line = strings.TrimSpace(line[end+1:])
	}

	mnem, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	op, ok := mnemonics[mnem]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	in.Op = op

	lhs, rhs, hasEq := strings.Cut(rest, "=")
	lhs, rhs = strings.TrimSpace(lhs), strings.TrimSpace(rhs)

	fail := func() error { return fmt.Errorf("malformed %s instruction: %q", mnem, line) }

	switch {
	case op == isa.OpNop || op == isa.OpHalt:
		if rest != "" {
			return fail()
		}
	case op.IsLoad():
		if !hasEq {
			return fail()
		}
		d, ok := parseReg(lhs)
		if !ok {
			return fail()
		}
		base, disp, err := a.memOperand(rhs)
		if err != nil {
			return err
		}
		in.Dst, in.Src1, in.Imm = d, base, disp
		if op == isa.OpLdF && !d.IsFP() || op != isa.OpLdF && !d.IsInt() {
			return fmt.Errorf("%s destination must be %s register", mnem, loadKind(op))
		}
	case op.IsStore():
		if !hasEq {
			return fail()
		}
		base, disp, err := a.memOperand(lhs)
		if err != nil {
			return err
		}
		data, ok := parseReg(rhs)
		if !ok {
			return fail()
		}
		in.Src1, in.Src2, in.Imm = base, data, disp
		if op == isa.OpStF && !data.IsFP() || op != isa.OpStF && !data.IsInt() {
			return fmt.Errorf("%s data must be %s register", mnem, loadKind(op))
		}
	case op == isa.OpBr:
		if hasEq || rest == "" {
			return fail()
		}
		if err := a.branchTarget(&in, rest); err != nil {
			return err
		}
	case op == isa.OpBrCall:
		if !hasEq {
			return fail()
		}
		d, ok := parseReg(lhs)
		if !ok || !d.IsInt() {
			return fail()
		}
		in.Dst = d
		if err := a.branchTarget(&in, rhs); err != nil {
			return err
		}
	case op == isa.OpBrRet || op == isa.OpBrInd:
		r, ok := parseReg(rest)
		if !ok || !r.IsInt() {
			return fail()
		}
		in.Src1 = r
	default: // register/immediate compute forms
		if !hasEq {
			return fail()
		}
		d, ok := parseReg(lhs)
		if !ok {
			return fail()
		}
		in.Dst = d
		ops := splitOperands(rhs)
		want2 := twoSource[op]
		immForm := immediateForm[op]
		switch {
		case op == isa.OpMovI:
			if len(ops) != 1 {
				return fail()
			}
			// @label immediates may reference forward labels; resolve
			// them as fixups.
			if strings.HasPrefix(ops[0], "@") && validIdent(ops[0][1:]) {
				a.fixups = append(a.fixups, fixup{len(a.prog.Insts), ops[0][1:], true})
				break
			}
			v, err := a.intExpr(ops[0])
			if err != nil {
				return err
			}
			in.Imm = int32(v)
		case op == isa.OpMov || op == isa.OpFNeg || op == isa.OpI2F || op == isa.OpF2I:
			if len(ops) != 1 {
				return fail()
			}
			s, ok := parseReg(ops[0])
			if !ok {
				return fail()
			}
			in.Src1 = s
		case immForm:
			if len(ops) != 2 {
				return fail()
			}
			s, ok := parseReg(ops[0])
			if !ok {
				return fail()
			}
			v, err := a.intExpr(ops[1])
			if err != nil {
				return err
			}
			in.Src1, in.Imm = s, int32(v)
		case want2:
			if len(ops) != 2 {
				return fail()
			}
			s1, ok1 := parseReg(ops[0])
			s2, ok2 := parseReg(ops[1])
			if !ok1 || !ok2 {
				return fail()
			}
			in.Src1, in.Src2 = s1, s2
		default:
			return fail()
		}
		if err := checkOperandClasses(op, &in); err != nil {
			return err
		}
	}
	a.prog.Insts = append(a.prog.Insts, in)
	return nil
}

func (a *assembler) finish() error {
	for _, f := range a.fixups {
		pc, ok := a.prog.Labels[f.label]
		if !ok {
			return fmt.Errorf("undefined label %q", f.label)
		}
		if f.isImm {
			a.prog.Insts[f.instIdx].Imm = pc
		} else {
			a.prog.Insts[f.instIdx].Target = pc
		}
	}
	if a.entry != "" {
		pc, ok := a.prog.Labels[a.entry]
		if !ok {
			return fmt.Errorf("undefined entry label %q", a.entry)
		}
		a.prog.Entry = pc
	}
	if n := len(a.prog.Insts); n > 0 {
		a.prog.Insts[n-1].Stop = true
	}
	return nil
}

// branchTarget resolves a branch destination: a label (fixed up at the end)
// or an absolute instruction index written "@N" (as emitted by Dump).
func (a *assembler) branchTarget(in *isa.Inst, s string) error {
	if strings.HasPrefix(s, "@") {
		if v, err := strconv.ParseInt(s[1:], 0, 32); err == nil {
			in.Target = int32(v)
			return nil
		}
	}
	a.fixups = append(a.fixups, fixup{len(a.prog.Insts), s, false})
	return nil
}

// memOperand parses "[rN]" or "[rN, disp]".
func (a *assembler) memOperand(s string) (base isa.Reg, disp int32, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("malformed memory operand %q", s)
	}
	inner := splitOperands(s[1 : len(s)-1])
	if len(inner) < 1 || len(inner) > 2 {
		return 0, 0, fmt.Errorf("malformed memory operand %q", s)
	}
	base, ok := parseReg(inner[0])
	if !ok || !base.IsInt() {
		return 0, 0, fmt.Errorf("memory base must be an integer register: %q", s)
	}
	if len(inner) == 2 {
		v, err := a.intExpr(inner[1])
		if err != nil {
			return 0, 0, err
		}
		disp = int32(v)
	}
	return base, disp, nil
}

// intExpr evaluates an integer literal, .equ constant, or @label reference.
func (a *assembler) intExpr(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty integer expression")
	}
	if strings.HasPrefix(s, "@") {
		if pc, ok := a.prog.Labels[s[1:]]; ok {
			return int64(pc), nil
		}
		return 0, fmt.Errorf("@%s references an undefined (or forward) label", s[1:])
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	if v, ok := a.equs[s]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("cannot evaluate %q as an integer", s)
}

func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, c := range s {
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" {
		out = append(out, tail)
	}
	return out
}

func parseReg(s string) (isa.Reg, bool) {
	if len(s) < 2 {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	switch s[0] {
	case 'r':
		if n < isa.NumIntRegs {
			return isa.R(n), true
		}
	case 'f':
		if n < isa.NumFPRegs {
			return isa.F(n), true
		}
	case 'p':
		if n < isa.NumPredRegs {
			return isa.P(n), true
		}
	}
	return 0, false
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		digit := c >= '0' && c <= '9'
		if !alpha && !(digit && i > 0) {
			return false
		}
	}
	return true
}

func loadKind(op isa.Op) string {
	if op == isa.OpLdF || op == isa.OpStF {
		return "a floating-point"
	}
	return "an integer"
}

// checkOperandClasses enforces int/fp/pred register classes per opcode.
func checkOperandClasses(op isa.Op, in *isa.Inst) error {
	wantFPSrc := false
	wantFPDst := false
	wantPredDst := false
	switch op {
	case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpFNeg:
		wantFPSrc, wantFPDst = true, true
	case isa.OpFCmpLt, isa.OpFCmpLe, isa.OpFCmpEq:
		wantFPSrc, wantPredDst = true, true
	case isa.OpI2F:
		wantFPDst = true
	case isa.OpF2I:
		wantFPSrc = true
	case isa.OpCmpEq, isa.OpCmpNe, isa.OpCmpLt, isa.OpCmpLe, isa.OpCmpLtU, isa.OpCmpLeU,
		isa.OpCmpEqI, isa.OpCmpNeI, isa.OpCmpLtI, isa.OpCmpLeI:
		wantPredDst = true
	case isa.OpMov:
		// mov copies within a class; classes must agree.
		if in.Src1 != isa.RegNone && in.Dst != isa.RegNone &&
			in.Src1.IsFP() != in.Dst.IsFP() {
			return fmt.Errorf("mov cannot cross register classes (use i2f/f2i)")
		}
		return nil
	}
	for _, s := range []isa.Reg{in.Src1, in.Src2} {
		if s == isa.RegNone {
			continue
		}
		if wantFPSrc && !s.IsFP() || !wantFPSrc && s.IsFP() {
			return fmt.Errorf("%s: source %s has wrong register class", op, s)
		}
	}
	if in.Dst != isa.RegNone {
		switch {
		case wantPredDst && !in.Dst.IsPred():
			return fmt.Errorf("%s: destination must be a predicate register", op)
		case !wantPredDst && in.Dst.IsPred():
			return fmt.Errorf("%s: destination cannot be a predicate register", op)
		case wantFPDst && !in.Dst.IsFP():
			return fmt.Errorf("%s: destination must be an fp register", op)
		case !wantFPDst && !wantPredDst && in.Dst.IsFP():
			return fmt.Errorf("%s: destination cannot be an fp register", op)
		}
	}
	return nil
}

var mnemonics = map[string]isa.Op{}
var twoSource = map[isa.Op]bool{}
var immediateForm = map[isa.Op]bool{}

func init() {
	for op := isa.Op(0); op.Valid(); op++ {
		mnemonics[op.Name()] = op
	}
	for _, op := range []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr,
		isa.OpSar, isa.OpMul, isa.OpCmpEq, isa.OpCmpNe, isa.OpCmpLt, isa.OpCmpLe,
		isa.OpCmpLtU, isa.OpCmpLeU, isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv,
		isa.OpFCmpLt, isa.OpFCmpLe, isa.OpFCmpEq,
	} {
		twoSource[op] = true
	}
	for _, op := range []isa.Op{
		isa.OpAddI, isa.OpAndI, isa.OpOrI, isa.OpXorI, isa.OpShlI, isa.OpShrI,
		isa.OpSarI, isa.OpCmpEqI, isa.OpCmpNeI, isa.OpCmpLtI, isa.OpCmpLeI,
	} {
		immediateForm[op] = true
	}
}
