// Package program defines the executable unit consumed by every machine
// model: a sequence of instructions with explicit issue-group stop bits, an
// initial memory image, and a symbol table. It provides a textual assembler
// (Assemble) and a programmatic Builder.
package program

import (
	"fmt"
	"strings"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
)

// InstBytes is the encoded size of one instruction; instruction PCs (indices)
// map to byte addresses for the I-cache as CodeBase + pc*InstBytes, so a 64B
// I-cache line holds 8 instructions.
const InstBytes = 8

// CodeBase is the byte address at which the text segment begins. Data is
// conventionally placed at and above DataBase, so code and data do not
// thrash each other's cache sets artificially.
const (
	CodeBase uint32 = 0x0010_0000
	DataBase uint32 = 0x1000_0000
)

// InstAddr returns the byte address of the instruction at index pc.
func InstAddr(pc int32) uint32 { return CodeBase + uint32(pc)*InstBytes }

// Program is an assembled program.
type Program struct {
	Name  string
	Insts []isa.Inst
	// Entry is the instruction index where execution begins.
	Entry int32
	// Labels maps text labels to instruction indices.
	Labels map[string]int32
	// Data is the initial memory image (may be nil for none).
	Data *mem.Image
}

// InitialImage returns a deep copy of the program's initial memory, never
// nil. Machines must not mutate the program's own image.
func (p *Program) InitialImage() *mem.Image {
	if p.Data == nil {
		return mem.NewImage()
	}
	return p.Data.Clone()
}

// GroupBounds returns the half-open instruction index range [pc, end) of the
// issue group beginning at pc: instructions up to and including the first
// stop bit. A group also implicitly ends at the end of the program.
func (p *Program) GroupBounds(pc int32) (end int32) {
	end = pc
	for int(end) < len(p.Insts) {
		end++
		if p.Insts[end-1].Stop {
			break
		}
	}
	return end
}

// Validate checks the static rules every machine model assumes:
//
//   - branch targets are in range,
//   - no instruction reads a register written earlier in its own issue group
//     (EPIC intra-group RAW prohibition) and no two instructions in a group
//     write the same register (WAW prohibition),
//   - issue groups fit the machine's issue width and per-class functional
//     unit counts (callers pass the limits; zero-valued limits skip the
//     resource check),
//   - halt and the final instruction terminate their groups.
func (p *Program) Validate(issueWidth int, fuCounts [isa.NumFUClasses]int) error {
	n := int32(len(p.Insts))
	if n == 0 {
		return fmt.Errorf("program %q has no instructions", p.Name)
	}
	if p.Entry < 0 || p.Entry >= n {
		return fmt.Errorf("entry %d out of range", p.Entry)
	}
	if !p.Insts[n-1].Stop {
		return fmt.Errorf("final instruction must carry a stop bit")
	}
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op.IsBranch() && in.Op != isa.OpBrRet && in.Op != isa.OpBrInd {
			if in.Target < 0 || in.Target >= n {
				return fmt.Errorf("inst %d (%s): branch target %d out of range", i, in, in.Target)
			}
		}
		if in.Op == isa.OpHalt && !in.Stop {
			return fmt.Errorf("inst %d: halt must end its issue group", i)
		}
	}
	for gstart := int32(0); gstart < n; {
		gend := p.GroupBounds(gstart)
		if issueWidth > 0 && int(gend-gstart) > issueWidth {
			return fmt.Errorf("group at %d has %d instructions, exceeds issue width %d",
				gstart, gend-gstart, issueWidth)
		}
		var classCount [isa.NumFUClasses]int
		var written [isa.NumRegs]bool
		for i := gstart; i < gend; i++ {
			in := &p.Insts[i]
			classCount[in.Op.Class()]++
			for _, s := range in.Sources(nil) {
				if written[s] {
					return fmt.Errorf("inst %d (%s): reads %s written earlier in its group (intra-group RAW)",
						i, in, s)
				}
			}
			if in.HasDest() {
				if written[in.Dst] {
					return fmt.Errorf("inst %d (%s): %s written twice in one group (intra-group WAW)",
						i, in, in.Dst)
				}
				written[in.Dst] = true
			}
		}
		for c := isa.FUClass(0); c < isa.NumFUClasses; c++ {
			if fuCounts[c] > 0 && classCount[c] > fuCounts[c] {
				return fmt.Errorf("group at %d uses %d %v units, machine has %d",
					gstart, classCount[c], c, fuCounts[c])
			}
		}
		gstart = gend
	}
	return nil
}

// Dump renders the program as assembly text with group separators, for
// debugging and the trace tool.
func (p *Program) Dump() string {
	rev := make(map[int32]string, len(p.Labels))
	for name, pc := range p.Labels {
		rev[pc] = name
	}
	var b strings.Builder
	for i := range p.Insts {
		if name, ok := rev[int32(i)]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "%5d:  %s\n", i, p.Insts[i].String())
	}
	return b.String()
}
