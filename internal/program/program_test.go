package program

import (
	"strings"
	"testing"

	"fleaflicker/internal/isa"
)

const tinyProgram = `
// sum the first 10 integers
        .data 0x10000000
result: .word 0
        .equ N 10

        .text
start:  movi r1 = 0          // sum
        movi r2 = 1          // i
        movi r3 = N
        movi r4 = result ;;
loop:   add r1 = r1, r2
        cmp.lt p1 = r2, r3 ;;
        addi r2 = r2, 1
        (p1) br loop ;;
        st4 [r4] = r1 ;;
        halt ;;
`

func TestAssembleTinyProgram(t *testing.T) {
	p, err := Assemble("tiny", tinyProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 10 {
		t.Fatalf("got %d instructions, want 10", len(p.Insts))
	}
	if p.Labels["start"] != 0 || p.Labels["loop"] != 4 {
		t.Errorf("labels wrong: %v", p.Labels)
	}
	br := p.Insts[7]
	if br.Op != isa.OpBr || br.Pred != isa.P(1) || br.Target != 4 || !br.Stop {
		t.Errorf("branch assembled wrong: %+v", br)
	}
	// .equ resolution
	if p.Insts[2].Imm != 10 {
		t.Errorf("movi r3 = N: imm = %d, want 10", p.Insts[2].Imm)
	}
	// data label resolves to the data address
	if p.Insts[3].Imm != 0x10000000 {
		t.Errorf("movi r4 = result: imm = %#x", p.Insts[3].Imm)
	}
	// group boundaries: group at 0 spans 4 insts
	if end := p.GroupBounds(0); end != 4 {
		t.Errorf("GroupBounds(0) = %d, want 4", end)
	}
	if err := p.Validate(8, [isa.NumFUClasses]int{5, 3, 3, 3}); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAssembleMemoryAndFPForms(t *testing.T) {
	src := `
        ld4 r1 = [r2] ;;
        ld4 r3 = [r2, 8]
        ldf f2 = [r4, -16] ;;
        st4 [r2, 4] = r3 ;;
        stf [r4] = f2 ;;
        fadd f3 = f2, f1
        i2f f4 = r1 ;;
        f2i r5 = f4 ;;
        fcmp.lt p2 = f3, f4 ;;
        halt ;;
`
	p, err := Assemble("memfp", src)
	if err != nil {
		t.Fatal(err)
	}
	if in := p.Insts[1]; in.Src1 != isa.R(2) || in.Imm != 8 || in.Dst != isa.R(3) {
		t.Errorf("ld4 with displacement wrong: %+v", in)
	}
	if in := p.Insts[2]; in.Dst != isa.F(2) || in.Imm != -16 {
		t.Errorf("ldf wrong: %+v", in)
	}
	if in := p.Insts[3]; in.Src1 != isa.R(2) || in.Src2 != isa.R(3) || in.Imm != 4 {
		t.Errorf("st4 wrong: %+v", in)
	}
	if in := p.Insts[8]; in.Dst != isa.P(2) || in.Src1 != isa.F(3) {
		t.Errorf("fcmp wrong: %+v", in)
	}
}

func TestAssembleCallRetIndirect(t *testing.T) {
	src := `
start:  br.call r63 = fn ;;
        halt ;;
fn:     movi r1 = @fn ;;
        br.ret r63 ;;
`
	p, err := Assemble("call", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Op != isa.OpBrCall || p.Insts[0].Dst != isa.R(63) || p.Insts[0].Target != 2 {
		t.Errorf("call wrong: %+v", p.Insts[0])
	}
	if p.Insts[2].Imm != 2 {
		t.Errorf("@fn = %d, want 2", p.Insts[2].Imm)
	}
	if p.Insts[3].Op != isa.OpBrRet || p.Insts[3].Src1 != isa.R(63) {
		t.Errorf("ret wrong: %+v", p.Insts[3])
	}
}

func TestAssembleEntryDirective(t *testing.T) {
	src := `
        .entry main
aux:    nop ;;
main:   halt ;;
`
	p, err := Assemble("entry", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 1 {
		t.Errorf("Entry = %d, want 1", p.Entry)
	}
}

func TestAssembleDataDirectives(t *testing.T) {
	src := `
        .data 0x20000000
vals:   .word 1, 2, 3
bytes:  .byte 0xAA, 0xBB
        .space 2
flt:    .float 2.5
        .text
        movi r1 = vals
        movi r2 = flt ;;
        halt ;;
`
	p, err := Assemble("data", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Data.ReadU32(0x20000000+4) != 2 {
		t.Errorf("word data wrong")
	}
	if p.Data.Byte(0x2000000C) != 0xAA || p.Data.Byte(0x2000000D) != 0xBB {
		t.Errorf("byte data wrong")
	}
	if isa.AsFP(p.Data.ReadF64(0x20000010)) != 2.5 {
		t.Errorf("float data wrong: %v", isa.AsFP(p.Data.ReadF64(0x20000010)))
	}
	if p.Insts[0].Imm != 0x20000000 || p.Insts[1].Imm != 0x20000010 {
		t.Errorf("data labels resolve wrong: %#x %#x", p.Insts[0].Imm, p.Insts[1].Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "frob r1 = r2 ;;", "unknown mnemonic"},
		{"bad register", "add r1 = r99, r2 ;;", "malformed"},
		{"undefined label", "br nowhere ;;", "undefined label"},
		{"dup label", "a: nop ;;\na: nop ;;", "duplicate label"},
		{"fp class mismatch", "fadd f1 = r2, f3 ;;", "wrong register class"},
		{"cmp to non-pred", "cmp.lt r1 = r2, r3 ;;", "predicate register"},
		{"store imm", "st4 [r1] = 5 ;;", "malformed"},
		{"mov cross class", "mov f1 = r1 ;;", "cannot cross register classes"},
		{"inst in data", ".data 0x1000\nadd r1 = r2, r3 ;;", "instruction in data section"},
		{"bad directive", ".bogus 3", "unknown directive"},
		{"bad pred", "(r3) add r1 = r2, r3 ;;", "bad qualifying predicate"},
	}
	for _, c := range cases {
		_, err := Assemble(c.name, c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantSub)
		}
	}
}

func TestValidateCatchesIntraGroupHazards(t *testing.T) {
	// RAW within a group.
	raw := MustAssemble("raw", `
        movi r1 = 5
        add r2 = r1, r1 ;;
        halt ;;
`)
	if err := raw.Validate(8, [isa.NumFUClasses]int{}); err == nil || !strings.Contains(err.Error(), "RAW") {
		t.Errorf("intra-group RAW not caught: %v", err)
	}
	// WAW within a group.
	waw := MustAssemble("waw", `
        movi r1 = 5
        movi r1 = 6 ;;
        halt ;;
`)
	if err := waw.Validate(8, [isa.NumFUClasses]int{}); err == nil || !strings.Contains(err.Error(), "WAW") {
		t.Errorf("intra-group WAW not caught: %v", err)
	}
}

func TestValidateResourceLimits(t *testing.T) {
	// 4 memory ops in one group exceeds the 3 MEM units.
	p := MustAssemble("mem4", `
        ld4 r1 = [r10]
        ld4 r2 = [r11]
        ld4 r3 = [r12]
        ld4 r4 = [r13] ;;
        halt ;;
`)
	if err := p.Validate(8, [isa.NumFUClasses]int{5, 3, 3, 3}); err == nil || !strings.Contains(err.Error(), "MEM") {
		t.Errorf("MEM oversubscription not caught: %v", err)
	}
	// Issue width.
	var b strings.Builder
	for i := 1; i <= 9; i++ {
		b.WriteString("movi r")
		b.WriteString(string(rune('0' + i)))
		b.WriteString(" = 1\n")
	}
	b.WriteString(";;\nhalt ;;\n")
	wide := MustAssemble("wide", b.String())
	if err := wide.Validate(8, [isa.NumFUClasses]int{}); err == nil || !strings.Contains(err.Error(), "issue width") {
		t.Errorf("issue-width violation not caught: %v", err)
	}
}

func TestValidateHaltMustEndGroup(t *testing.T) {
	p := &Program{Name: "h", Insts: []isa.Inst{
		{Op: isa.OpHalt, Pred: isa.P(0), Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone},
		{Op: isa.OpNop, Pred: isa.P(0), Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Stop: true},
	}}
	if err := p.Validate(0, [isa.NumFUClasses]int{}); err == nil || !strings.Contains(err.Error(), "halt") {
		t.Errorf("halt mid-group not caught: %v", err)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder("built")
	b.Label("top")
	b.Emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(1), Src1: isa.RegNone, Src2: isa.RegNone, Imm: 3})
	b.Stop()
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: isa.R(1), Src1: isa.R(1), Src2: isa.RegNone, Imm: -1})
	b.Stop()
	b.Emit(isa.Inst{Op: isa.OpCmpLtI, Dst: isa.P(1), Src1: isa.R(1), Src2: isa.RegNone, Imm: 1})
	b.Stop()
	b.Label("skip")
	b.Br(isa.P(1), "end")
	b.Stop()
	b.Br(isa.P(0), "skip")
	b.Stop()
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[3].Target != 5 || p.Insts[4].Target != 3 {
		t.Errorf("builder fixups wrong: %+v", p.Insts)
	}
	if err := p.Validate(8, [isa.NumFUClasses]int{5, 3, 3, 3}); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Emit normalized the zero Pred.
	if p.Insts[0].Pred != isa.P(0) {
		t.Errorf("Emit did not normalize Pred")
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Br(isa.P(0), "nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Errorf("expected undefined label error")
	}
}

func TestInstAddr(t *testing.T) {
	if InstAddr(0) != CodeBase || InstAddr(8)-InstAddr(0) != 8*InstBytes {
		t.Errorf("InstAddr spacing wrong")
	}
}

func TestInitialImageIsCopy(t *testing.T) {
	p := MustAssemble("img", `
        .data 0x10000000
x:      .word 7
        .text
        halt ;;
`)
	img := p.InitialImage()
	img.WriteU32(0x10000000, 99)
	if p.Data.ReadU32(0x10000000) != 7 {
		t.Errorf("InitialImage aliases program data")
	}
}

func TestDump(t *testing.T) {
	p := MustAssemble("d", tinyProgram)
	out := p.Dump()
	if !strings.Contains(out, "loop:") || !strings.Contains(out, "add r1 = r1, r2") {
		t.Errorf("Dump output missing expected content:\n%s", out)
	}
}

// Round-trip property: assembling Dump's output reproduces the instruction
// stream exactly (text labels collapse to @N targets, which the assembler
// accepts).
func TestDumpAssembleRoundTrip(t *testing.T) {
	srcs := []string{tinyProgram, `
        movi r1 = 0x3000
        movi r2 = 77 ;;
a:      st4 [r1] = r2 ;;
        ldf f2 = [r1, 8] ;;
        fadd f3 = f2, f1 ;;
        cmpi.ne p1 = r2, 0 ;;
        (p1) br done ;;
        br a ;;
done:   br.call r63 = fn ;;
        halt ;;
fn:     br.ret r63 ;;
`}
	for i, src := range srcs {
		p := MustAssemble("orig", src)
		text := p.Dump()
		q, err := Assemble("roundtrip", text)
		if err != nil {
			t.Fatalf("case %d: reassembling Dump output: %v\n%s", i, err, text)
		}
		if len(p.Insts) != len(q.Insts) {
			t.Fatalf("case %d: %d insts became %d", i, len(p.Insts), len(q.Insts))
		}
		for k := range p.Insts {
			if p.Insts[k] != q.Insts[k] {
				t.Errorf("case %d inst %d: %v != %v", i, k, p.Insts[k], q.Insts[k])
			}
		}
	}
}
