package program

import (
	"fmt"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
)

// Builder constructs a Program instruction by instruction, resolving branch
// labels lazily. It is the programmatic alternative to Assemble, used by the
// random-program generator and by tests.
type Builder struct {
	name   string
	insts  []isa.Inst
	labels map[string]int32
	fixups []fixup
	data   *mem.Image
	entry  string
	errs   []error
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]int32),
		data:   mem.NewImage(),
	}
}

// Emit appends an instruction and returns its index. Zero-valued operand
// fields should be isa.RegNone / isa.P(0) as appropriate; Emit normalizes a
// zero Pred to P(0) so literal structs stay terse.
func (b *Builder) Emit(in isa.Inst) int32 {
	if !in.Pred.IsPred() { // raw zero value: treat as unpredicated
		in.Pred = isa.P(0)
	}
	b.insts = append(b.insts, in)
	return int32(len(b.insts) - 1)
}

// Label binds name to the next emitted instruction.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return
	}
	b.labels[name] = int32(len(b.insts))
}

// Br emits a branch (conditional if pred != P(0)) to a label.
func (b *Builder) Br(pred isa.Reg, label string) {
	idx := b.Emit(isa.Inst{Op: isa.OpBr, Pred: pred, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	b.fixups = append(b.fixups, fixup{int(idx), label, false})
}

// Call emits a call to label, writing the return PC to link.
func (b *Builder) Call(link isa.Reg, label string) {
	idx := b.Emit(isa.Inst{Op: isa.OpBrCall, Pred: isa.P(0), Dst: link, Src1: isa.RegNone, Src2: isa.RegNone})
	b.fixups = append(b.fixups, fixup{int(idx), label, false})
}

// MovLabel emits `(pred) movi dst = @label`, resolving the label's
// instruction index lazily (for building indirect-branch targets).
func (b *Builder) MovLabel(pred, dst isa.Reg, label string) {
	idx := b.Emit(isa.Inst{Op: isa.OpMovI, Pred: pred, Dst: dst, Src1: isa.RegNone, Src2: isa.RegNone})
	b.fixups = append(b.fixups, fixup{int(idx), label, true})
}

// Stop sets the stop bit on the most recently emitted instruction.
func (b *Builder) Stop() {
	if len(b.insts) == 0 {
		b.errs = append(b.errs, fmt.Errorf("Stop before any instruction"))
		return
	}
	b.insts[len(b.insts)-1].Stop = true
}

// Halt emits a halt instruction (with its mandatory stop bit).
func (b *Builder) Halt() {
	b.Emit(isa.Inst{Op: isa.OpHalt, Pred: isa.P(0), Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Stop: true})
}

// Data returns the program's initial memory image for direct population.
func (b *Builder) Data() *mem.Image { return b.data }

// SetEntry makes the program start at the given label.
func (b *Builder) SetEntry(label string) { b.entry = label }

// Build resolves fixups and returns the program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &Program{Name: b.name, Insts: b.insts, Labels: b.labels, Data: b.data}
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", f.label)
		}
		if f.isImm {
			p.Insts[f.instIdx].Imm = pc
		} else {
			p.Insts[f.instIdx].Target = pc
		}
	}
	if b.entry != "" {
		pc, ok := b.labels[b.entry]
		if !ok {
			return nil, fmt.Errorf("undefined entry label %q", b.entry)
		}
		p.Entry = pc
	}
	if n := len(p.Insts); n > 0 {
		p.Insts[n-1].Stop = true
	}
	return p, nil
}

// MustBuild is Build panicking on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
