package diffsim

import (
	"bytes"
	"context"
	"testing"

	"fleaflicker/internal/progen"
	"fleaflicker/internal/program"
)

// fuzzGenConfig keeps per-input work small enough for the fuzzing engine:
// a few hundred dynamic instructions per program, four lattice cells.
func fuzzGenConfig() progen.Config {
	cfg := progen.DefaultConfig()
	cfg.OuterTrips = 2
	cfg.BodyActions = 10
	cfg.ArrayBytes = 2 << 10
	cfg.ChainNodes = 8
	return cfg
}

// FuzzDifferential is the native fuzz entry point for the co-simulation
// invariant: any (seed, trip-count, alias-distance) triple must produce a
// program on which every machine model agrees with the reference executor.
// Run with: go test -fuzz=FuzzDifferential ./internal/diffsim
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0))
	f.Add(int64(7), uint8(3), uint8(2))
	f.Add(int64(99), uint8(1), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, trips, aliasDist uint8) {
		cfg := fuzzGenConfig()
		cfg.OuterTrips = 1 + int(trips%4)
		cfg.AliasDistance = int(aliasDist % 6)
		p := progen.Generate(seed, cfg)
		checker := NewChecker(SmokeLattice())
		res, err := checker.Check(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if res.RefErr != nil {
			t.Skipf("reference could not finish: %v", res.RefErr)
		}
		for _, d := range res.Divergences {
			t.Errorf("seed %d, cell %v: %v", seed, d.Cell, d)
		}
		if t.Failed() {
			t.Logf("reproducer:\n%s", p.MarshalFlea())
		}
	})
}

// FuzzCorpusRoundTrip checks that every generated program survives .flea
// serialization exactly — the property reproducer files depend on.
func FuzzCorpusRoundTrip(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(42))
	f.Fuzz(func(t *testing.T, seed int64) {
		p := progen.Generate(seed, fuzzGenConfig())
		blob := p.MarshalFlea()
		q, err := program.ParseFlea("fuzz.flea", blob)
		if err != nil {
			t.Fatalf("generated program does not reassemble: %v\n%s", err, blob)
		}
		if len(q.Insts) != len(p.Insts) || q.Entry != p.Entry || !q.Data.Equal(p.Data) {
			t.Fatalf("round trip changed the program")
		}
		for i := range p.Insts {
			if p.Insts[i] != q.Insts[i] {
				t.Fatalf("inst %d changed: %v -> %v", i, &p.Insts[i], &q.Insts[i])
			}
		}
		if !bytes.Equal(blob, q.MarshalFlea()) {
			t.Fatalf("second serialization differs")
		}
	})
}
