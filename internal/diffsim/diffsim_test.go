package diffsim

import (
	"context"
	"testing"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/core"
	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/progen"
	"fleaflicker/internal/program"
)

func TestDefaultLatticeShape(t *testing.T) {
	cells := DefaultLattice()
	if len(cells) != 14 {
		t.Fatalf("DefaultLattice has %d cells, want 14", len(cells))
	}
	models := map[core.Model]int{}
	for _, c := range cells {
		models[c.Model]++
	}
	if models[core.Baseline] != 1 || models[core.Runahead] != 1 ||
		models[core.TwoPass] != 6 || models[core.TwoPassRegroup] != 6 {
		t.Fatalf("unexpected model distribution: %v", models)
	}
}

func TestModelsAgreeOnGeneratedPrograms(t *testing.T) {
	cfg := progen.DefaultConfig()
	cfg.OuterTrips = 3
	cfg.BodyActions = 14
	cfg.ArrayBytes = 4 << 10
	checker := NewChecker(DefaultLattice())
	for seed := int64(0); seed < 10; seed++ {
		p := progen.Generate(seed, cfg)
		res, err := checker.Check(context.Background(), p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.RefErr != nil {
			t.Fatalf("seed %d: reference failed: %v", seed, res.RefErr)
		}
		for _, d := range res.Divergences {
			t.Errorf("seed %d, cell %v: %v", seed, d.Cell, d)
		}
	}
}

// loadFeedsXor reports whether the program contains a load whose result is
// later read by an xor — the trigger pattern for the injected merge bug.
func loadFeedsXor(p *program.Program) bool {
	for i, ld := range p.Insts {
		if !ld.Op.IsLoad() || !ld.HasDest() {
			continue
		}
		for _, in := range p.Insts[i+1:] {
			if in.Op == isa.OpXor && (in.Src1 == ld.Dst || in.Src2 == ld.Dst) {
				return true
			}
		}
	}
	return false
}

// mergeBugRunner wraps the production runner with an intentionally injected
// CQ merge bug: on the two-pass machines, any program where a load's result
// feeds an xor "merges" a stale value into the consumer's destination. The
// fault lives at the Runner seam so production machine code stays correct;
// what the test proves is that the checker catches the bug and the shrinker
// strips a full random program down to the minimal load→xor reproducer.
func mergeBugRunner(ctx context.Context, cell Cell, cfg core.Config, prog *program.Program, ref *core.Reference, resume *checkpoint.Snapshot, log *mem.StoreLog) error {
	if (cell.Model == core.TwoPass || cell.Model == core.TwoPassRegroup) && loadFeedsXor(prog) {
		return &core.DivergenceError{
			Model:   cell.Model,
			Program: prog.Name,
			Regs:    []arch.RegDiff{{Reg: isa.R(2), Got: 0xdead, Want: 0xbeef}},
		}
	}
	return productionRunner(ctx, cell, cfg, prog, ref, resume, log)
}

func TestInjectedMergeBugIsCaughtAndShrunk(t *testing.T) {
	ctx := context.Background()
	gen := progen.DefaultConfig()
	gen.OuterTrips = 2
	gen.BodyActions = 16
	gen.ArrayBytes = 4 << 10
	checker := NewChecker(SmokeLattice(), WithRunner(mergeBugRunner))

	// Find a seed whose program contains the trigger pattern.
	var prog *program.Program
	var seed int64
	for seed = 0; seed < 50; seed++ {
		p := progen.Generate(seed, gen)
		if loadFeedsXor(p) {
			prog = p
			break
		}
	}
	if prog == nil {
		t.Fatal("no generated program contains a load feeding an xor; generator mix too narrow")
	}

	res, err := checker.Check(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) == 0 {
		t.Fatalf("injected bug not caught on seed %d", seed)
	}
	for _, d := range res.Divergences {
		if d.Cell.Model == core.Baseline || d.Cell.Model == core.Runahead {
			t.Fatalf("bug injected only into two-pass models, yet %v diverged", d.Cell)
		}
	}

	min := checker.ShrinkDiverging(ctx, prog)
	t.Logf("shrunk %d instructions to %d", len(prog.Insts), len(min.Insts))
	if len(min.Insts) >= len(prog.Insts) {
		t.Fatalf("shrinker made no progress: %d -> %d instructions", len(prog.Insts), len(min.Insts))
	}
	if len(min.Insts) > 20 {
		t.Fatalf("minimized reproducer has %d instructions, want <= 20", len(min.Insts))
	}
	if !loadFeedsXor(min) {
		t.Fatalf("minimized program lost the trigger pattern:\n%s", min.Dump())
	}
	if !checker.Diverges(ctx, min) {
		t.Fatalf("minimized program no longer diverges")
	}

	// The reproducer must survive corpus serialization.
	rt, err := program.ParseFlea("min.flea", min.MarshalFlea())
	if err != nil {
		t.Fatalf("minimized reproducer does not round-trip: %v", err)
	}
	if !loadFeedsXor(rt) || !checker.Diverges(ctx, rt) {
		t.Fatalf("round-tripped reproducer no longer diverges")
	}
}

func TestCampaignFindsInjectedBug(t *testing.T) {
	gen := progen.DefaultConfig()
	gen.OuterTrips = 2
	gen.BodyActions = 16
	gen.ArrayBytes = 4 << 10
	st, err := RunCampaign(context.Background(), CampaignConfig{
		Programs:    50,
		Gen:         gen,
		Cells:       SmokeLattice(),
		Shrink:      true,
		MaxFindings: 1,
		Runner:      mergeBugRunner,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Findings) != 1 {
		t.Fatalf("campaign found %d findings, want 1", len(st.Findings))
	}
	f := st.Findings[0]
	if f.Minimized == nil || len(f.Minimized.Insts) > 20 {
		t.Fatalf("finding not shrunk to a small reproducer: %+v", f)
	}
}

func TestCampaignCleanOnProductionMachines(t *testing.T) {
	gen := progen.DefaultConfig()
	gen.OuterTrips = 2
	gen.BodyActions = 10
	gen.ArrayBytes = 2 << 10
	done := 0
	st, err := RunCampaign(context.Background(), CampaignConfig{
		SeedBase: 1000,
		Programs: 8,
		Gen:      gen,
		Cells:    SmokeLattice(),
		OnProgram: func(n int, _ *CampaignStats) {
			done = n
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != 8 || st.Programs+st.Skipped != 8 {
		t.Fatalf("campaign accounting off: done=%d stats=%+v", done, st)
	}
	for _, f := range st.Findings {
		for _, d := range f.Divergences {
			t.Errorf("seed %d, cell %v: %v", f.Seed, d.Cell, d)
		}
	}
	if st.CellRuns != int64(st.Programs*len(SmokeLattice())) {
		t.Fatalf("cell-run accounting off: %+v", st)
	}
}

func TestCampaignHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := RunCampaign(ctx, CampaignConfig{Programs: 5, Cells: SmokeLattice()})
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	if st == nil || st.Programs != 0 {
		t.Fatalf("cancelled campaign should have done no work: %+v", st)
	}
}
