package diffsim

import (
	"context"
	"testing"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/program"
)

// buildStraightLine makes n trivial single-instruction groups ending in a
// halt, with inst i writing r(1+i%8) = i so individual instructions are
// distinguishable.
func buildStraightLine(n int) *program.Program {
	b := program.NewBuilder("straight")
	for i := 0; i < n; i++ {
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(1 + i%8), Src1: isa.RegNone, Src2: isa.RegNone, Imm: int32(i), Stop: true})
	}
	b.Halt()
	return b.MustBuild()
}

func TestDeleteRangeRemapsBranches(t *testing.T) {
	b := program.NewBuilder("branchy")
	b.Emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(1), Src1: isa.RegNone, Src2: isa.RegNone, Imm: 1, Stop: true}) // 0
	b.Emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(2), Src1: isa.RegNone, Src2: isa.RegNone, Imm: 2, Stop: true}) // 1
	b.Emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(3), Src1: isa.RegNone, Src2: isa.RegNone, Imm: 3, Stop: true}) // 2
	b.Label("end")
	b.Halt() // 3
	p := b.MustBuild()
	// A branch before the cut targeting past it must shift down.
	p.Insts[0] = isa.Inst{Op: isa.OpBr, Pred: isa.P(0), Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Target: 3, Stop: true}

	q := deleteRange(p, 1, 3)
	if q == nil {
		t.Fatal("deleteRange returned nil for a legal cut")
	}
	if len(q.Insts) != 2 {
		t.Fatalf("got %d instructions, want 2", len(q.Insts))
	}
	if q.Insts[0].Target != 1 {
		t.Fatalf("branch target not remapped: %d, want 1", q.Insts[0].Target)
	}
	if err := q.Validate(8, [isa.NumFUClasses]int{}); err != nil {
		t.Fatalf("remapped program invalid: %v", err)
	}
}

func TestDeleteRangeRejectsWholeProgram(t *testing.T) {
	p := buildStraightLine(3)
	if q := deleteRange(p, 0, int32(len(p.Insts))); q != nil {
		t.Fatal("deleteRange deleted the entire program")
	}
}

func TestDeleteRangePreservesStopBits(t *testing.T) {
	b := program.NewBuilder("groups")
	b.Emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(1), Src1: isa.RegNone, Src2: isa.RegNone, Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(2), Src1: isa.RegNone, Src2: isa.RegNone, Imm: 2, Stop: true})
	b.Emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(3), Src1: isa.RegNone, Src2: isa.RegNone, Imm: 3, Stop: true})
	b.Halt()
	p := b.MustBuild()

	// Deleting inst 1 (which carried the group's stop) must move the stop
	// onto inst 0, otherwise insts 0 and 2 merge into one group with a WAW
	// on nothing — here they'd merge fine, but group structure would drift.
	q := deleteRange(p, 1, 2)
	if q == nil {
		t.Fatal("deleteRange returned nil")
	}
	if !q.Insts[0].Stop {
		t.Fatal("stop bit not propagated to preceding instruction")
	}
}

func TestShrinkFindsMinimalCore(t *testing.T) {
	// Interestingness: the program still writes 7 into some register via
	// movi. A 60-instruction straight-line program must shrink to the one
	// movi carrying 7 plus whatever structure validation forces.
	p := buildStraightLine(60)
	checker := NewChecker(SmokeLattice())
	keep := func(q *program.Program) bool {
		for _, in := range q.Insts {
			if in.Op == isa.OpMovI && in.Imm == 7 {
				return true
			}
		}
		return false
	}
	min := checker.Shrink(context.Background(), p, keep)
	if len(min.Insts) > 2 {
		t.Fatalf("shrunk to %d instructions, want <= 2:\n%s", len(min.Insts), min.Dump())
	}
	if !keep(min) {
		t.Fatal("shrinker dropped the interesting instruction")
	}
}
