// Package diffsim is the differential co-simulation subsystem: it runs one
// program through every machine model across a lattice of configurations
// (CQ sizes, feedback latencies, regrouping on or off) and diffs each run's
// final architectural state — register file, memory image, committed-store
// order — against the functional reference executor. Any disagreement is a
// bug in a machine model by construction, because the paper's transformation
// is microarchitectural: every configuration must compute exactly what the
// reference computes.
//
// The package supplies the checker (Checker), a delta-debugging shrinker
// producing minimal reproducers (Shrink), and a campaign driver
// (RunCampaign) used by cmd/fleafuzz, the fleasimd "fuzz" job kind, and the
// native go-fuzz targets. It sits in the nondeterminism analyzer's scope:
// identical inputs must yield identical verdicts, so no wall-clock, global
// RNG, or map iteration is permitted here (time budgets live in callers).
package diffsim

import (
	"context"
	"errors"
	"fmt"

	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/core"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/pipeline"
	"fleaflicker/internal/program"
)

// Cell is one point of the configuration lattice: a machine model plus the
// two-pass parameters that meaningfully reshape its behaviour. CQSize and
// FeedbackLatency are ignored by the baseline and run-ahead models.
type Cell struct {
	Model           core.Model
	CQSize          int
	FeedbackLatency int
}

func (c Cell) String() string {
	switch c.Model {
	case core.TwoPass, core.TwoPassRegroup:
		return fmt.Sprintf("%v/cq%d/fb%d", c.Model, c.CQSize, c.FeedbackLatency)
	default:
		return c.Model.String()
	}
}

// Lattice builds the cross product of the two-pass models with the given CQ
// sizes and feedback latencies, plus one cell each for the parameter-free
// models.
func Lattice(cqSizes, fbLatencies []int) []Cell {
	cells := []Cell{{Model: core.Baseline}, {Model: core.Runahead}}
	for _, m := range []core.Model{core.TwoPass, core.TwoPassRegroup} {
		for _, cq := range cqSizes {
			for _, fb := range fbLatencies {
				cells = append(cells, Cell{Model: m, CQSize: cq, FeedbackLatency: fb})
			}
		}
	}
	return cells
}

// DefaultLattice is the campaign lattice: all four models, three CQ sizes,
// two feedback latencies, regrouping exercised via the 2Pre model — 14
// cells per program.
func DefaultLattice() []Cell { return Lattice([]int{8, 16, 64}, []int{0, 2}) }

// SmokeLattice is a four-cell lattice for fuzz targets and smoke tests,
// covering every model once at aggressive (small-CQ) parameters.
func SmokeLattice() []Cell {
	return []Cell{
		{Model: core.Baseline},
		{Model: core.TwoPass, CQSize: 8, FeedbackLatency: 0},
		{Model: core.TwoPassRegroup, CQSize: 16, FeedbackLatency: 2},
		{Model: core.Runahead},
	}
}

// Runner simulates prog on one lattice cell and returns core.Simulate's
// error, if any (a *core.DivergenceError when the machine disagreed with
// ref). When resume is non-nil the cell starts from that snapshot instead
// of from cycle zero (fast-forward mode). It exists as a seam so tests can
// inject faults between the checker and the machines — the injected-bug
// minimizer test fabricates a CQ merge bug here without corrupting
// production machine code.
type Runner func(ctx context.Context, cell Cell, cfg core.Config, prog *program.Program, ref *core.Reference, resume *checkpoint.Snapshot, log *mem.StoreLog) error

func productionRunner(ctx context.Context, cell Cell, cfg core.Config, prog *program.Program, ref *core.Reference, resume *checkpoint.Snapshot, log *mem.StoreLog) error {
	opts := []core.Option{core.WithConfig(cfg), core.WithReference(ref), core.WithStoreLog(log)}
	if resume != nil {
		opts = append(opts, core.ResumeFrom(resume))
	}
	_, err := core.Simulate(ctx, cell.Model, prog, opts...)
	return err
}

// Divergence is one cell's disagreement with the reference.
type Divergence struct {
	Cell Cell
	// Err is the structured state diff; nil when the failure was not a
	// state divergence (then Other holds it — e.g. the machine exceeded
	// its cycle budget, a hang the reference did not have).
	Err   *core.DivergenceError
	Other error
}

func (d Divergence) String() string {
	if d.Err != nil {
		return d.Err.Error()
	}
	return fmt.Sprintf("%v failed on this program: %v", d.Cell, d.Other)
}

// CheckResult is the outcome of running one program across the lattice.
type CheckResult struct {
	Divergences []Divergence
	// RefInstructions is the reference execution's dynamic instruction
	// count (the campaign's work metric).
	RefInstructions int64
	// RefErr is set when the reference itself could not run the program to
	// completion within budget; the lattice is then not consulted and the
	// program should be counted as skipped, not as agreeing.
	RefErr error
}

// CheckerOption configures NewChecker.
type CheckerOption func(*Checker)

// WithBaseConfig replaces the checker's base machine configuration (the
// lattice cells override CQSize and FeedbackLatency on top of it).
func WithBaseConfig(cfg core.Config) CheckerOption {
	return func(c *Checker) { c.base = cfg }
}

// WithRunner replaces the production simulation runner (test seam).
func WithRunner(r Runner) CheckerOption {
	return func(c *Checker) { c.runner = r }
}

// AutoCheckpoint asks the checker to pick the checkpoint interval itself:
// one eighth of each program's dynamic instruction count, so every cell
// replays at most 1/8 of the work from the nearest snapshot.
const AutoCheckpoint int64 = -1

// WithCheckpointing makes the checker fan lattice cells out from the
// reference execution's last functional checkpoint instead of from cycle
// zero. every is the snapshot interval in retired instructions;
// AutoCheckpoint derives it per program. Resumed cells verify the same
// final architectural state (registers, memory, committed-store order) as
// from-zero runs, but only execute the post-checkpoint suffix, so bugs
// whose architectural effects both appear and cancel strictly before the
// last checkpoint are not observable — use from-zero runs when that
// matters more than throughput.
func WithCheckpointing(every int64) CheckerOption {
	return func(c *Checker) { c.ckptEvery = every }
}

// Checker runs programs across a configuration lattice. It owns a pipeline
// arena and a store log that are reused across every simulation of every
// program, keeping the fuzzing inner loop allocation-flat.
type Checker struct {
	cells     []Cell
	base      core.Config
	runner    Runner
	arena     *pipeline.Arena
	log       *mem.StoreLog
	ckptEvery int64 // 0 = from-zero; AutoCheckpoint = per-program interval
}

// fuzzMaxCycles bounds each cell simulation; generated programs execute a
// few thousand dynamic instructions, so this is pure hang insurance.
const fuzzMaxCycles = 10_000_000

// NewChecker returns a checker over the given lattice cells.
func NewChecker(cells []Cell, opts ...CheckerOption) *Checker {
	c := &Checker{
		cells:  cells,
		base:   core.DefaultConfig(),
		runner: productionRunner,
		arena:  pipeline.NewArena(),
		log:    &mem.StoreLog{},
	}
	c.base.MaxCycles = fuzzMaxCycles
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Cells returns the checker's lattice.
func (c *Checker) Cells() []Cell { return c.cells }

// cellConfig specializes the base configuration for one lattice cell,
// threading the shared arena through so every machine reuses the same
// DynInst storage.
func (c *Checker) cellConfig(cell Cell) core.Config {
	cfg := c.base
	if cell.CQSize > 0 {
		cfg.CQSize = cell.CQSize
	}
	cfg.FeedbackLatency = cell.FeedbackLatency
	cfg.Arena = c.arena
	return cfg
}

// reference computes prog's shared reference execution and, when
// checkpointing is on, the snapshot cells should resume from (the last
// functional checkpoint the reference captured). With AutoCheckpoint the
// interval is derived from a first, snapshot-free execution — the reference
// executor is cheap next to the lattice of timed machines it feeds.
func (c *Checker) reference(prog *program.Program) (*core.Reference, *checkpoint.Snapshot, error) {
	if c.ckptEvery == 0 {
		ref, err := core.ComputeReference(prog, c.base.MaxCycles)
		return ref, nil, err
	}
	every := c.ckptEvery
	if every == AutoCheckpoint {
		plain, err := core.ComputeReference(prog, c.base.MaxCycles)
		if err != nil {
			return nil, nil, err
		}
		every = plain.Result.Instructions / 8
		if every < 1 {
			every = 1
		}
	}
	ref, err := core.ComputeReference(prog, c.base.MaxCycles, core.WithCheckpoints(every))
	if err != nil {
		return nil, nil, err
	}
	return ref, ref.NearestCheckpoint(), nil
}

// Check runs prog on every lattice cell against one shared reference
// execution. The returned error is reserved for context cancellation;
// per-cell failures are data (CheckResult.Divergences), and a reference
// failure is reported via CheckResult.RefErr.
func (c *Checker) Check(ctx context.Context, prog *program.Program) (*CheckResult, error) {
	res := &CheckResult{}
	ref, resume, err := c.reference(prog)
	if err != nil {
		res.RefErr = err
		return res, nil
	}
	res.RefInstructions = ref.Result.Instructions
	for _, cell := range c.cells {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		err := c.runner(ctx, cell, c.cellConfig(cell), prog, ref, resume, c.log)
		if err == nil {
			continue
		}
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		var de *core.DivergenceError
		if errors.As(err, &de) {
			res.Divergences = append(res.Divergences, Divergence{Cell: cell, Err: de})
		} else {
			res.Divergences = append(res.Divergences, Divergence{Cell: cell, Other: err})
		}
	}
	return res, nil
}

// Diverges reports whether prog still produces at least one divergence (or
// fails to run at all on some cell while the reference completes). It is
// the shrinker's interestingness predicate; it stops at the first
// divergence rather than completing the lattice.
func (c *Checker) Diverges(ctx context.Context, prog *program.Program) bool {
	ref, resume, err := c.reference(prog)
	if err != nil {
		return false // a program the reference cannot finish is not a reproducer
	}
	for _, cell := range c.cells {
		if ctx.Err() != nil {
			return false
		}
		if err := c.runner(ctx, cell, c.cellConfig(cell), prog, ref, resume, c.log); err != nil && ctx.Err() == nil {
			return true
		}
	}
	return false
}
