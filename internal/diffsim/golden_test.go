package diffsim

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/core"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/progen"
	"fleaflicker/internal/trace"
)

// TestCheckpointResumeGoldenEquivalence is the golden machine-tier
// equivalence check across the full default lattice: for every cell, a run
// resumed from a machine snapshot must be byte-identical to the run that
// produced the snapshot — same final registers and memory (checked by the
// stats comparison plus the store log), same cycle count, same counter set,
// and a JSONL event trace that is exactly the producing run's post-snapshot
// suffix.
func TestCheckpointResumeGoldenEquivalence(t *testing.T) {
	ctx := context.Background()
	prog := progen.Generate(7, progen.DefaultConfig())
	ref, err := core.ComputeReference(prog, fuzzMaxCycles)
	if err != nil {
		t.Fatal(err)
	}
	every := ref.Result.Instructions / 4
	if every < 1 {
		t.Fatalf("generated program too small (%d instructions)", ref.Result.Instructions)
	}
	checker := NewChecker(DefaultLattice())
	for _, cell := range checker.Cells() {
		t.Run(cell.String(), func(t *testing.T) {
			cfg := checker.cellConfig(cell)

			var snaps []*checkpoint.Snapshot
			var fullTrace bytes.Buffer
			fullLog := &mem.StoreLog{}
			full, err := core.Simulate(ctx, cell.Model, prog,
				core.WithConfig(cfg), core.WithStoreLog(fullLog),
				core.WithSnapshots(every, func(s *checkpoint.Snapshot) { snaps = append(snaps, s) }),
				core.WithTrace(trace.NewJSONLSink(&fullTrace)))
			if err != nil {
				t.Fatal(err)
			}
			if len(snaps) == 0 {
				t.Fatalf("no snapshots captured (every=%d, %d instructions)", every, full.Instructions)
			}
			fullHash, fullLen := fullLog.Hash(), fullLog.Len()

			snap := snaps[len(snaps)-1]
			var resTrace bytes.Buffer
			resLog := &mem.StoreLog{}
			resumed, err := core.Simulate(ctx, cell.Model, prog,
				core.WithConfig(cfg), core.WithStoreLog(resLog),
				core.ResumeFrom(snap),
				core.WithSnapshots(every, nil),
				core.WithTrace(trace.NewJSONLSink(&resTrace)))
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(full, resumed) {
				t.Errorf("resumed run diverged from from-zero run:\nfull:    %+v\nresumed: %+v", full, resumed)
			}
			if resLog.Hash() != fullHash || resLog.Len() != fullLen {
				t.Errorf("store log differs: full (n=%d, hash=%#x) vs resumed (n=%d, hash=%#x)",
					fullLen, fullHash, resLog.Len(), resLog.Hash())
			}
			if resTrace.Len() == 0 {
				t.Fatal("resumed run emitted no trace events")
			}
			if !bytes.HasSuffix(fullTrace.Bytes(), resTrace.Bytes()) {
				t.Errorf("resumed JSONL trace (%d bytes) is not a suffix of the from-zero trace (%d bytes)",
					resTrace.Len(), fullTrace.Len())
			}
		})
	}
}

// TestCampaignCheckpointedMatchesFromZero runs the same seeded campaign with
// and without fast-forward: checkpointing must not change a single verdict —
// same programs checked, none skipped, zero divergences, identical reference
// work.
func TestCampaignCheckpointedMatchesFromZero(t *testing.T) {
	ctx := context.Background()
	gen := progen.DefaultConfig()
	gen.OuterTrips = 2
	gen.BodyActions = 16
	gen.ArrayBytes = 4 << 10
	base := CampaignConfig{SeedBase: 1, Programs: 8, Gen: gen, Cells: SmokeLattice()}

	plain, err := RunCampaign(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := base
	ckpt.CheckpointEvery = AutoCheckpoint
	fast, err := RunCampaign(ctx, ckpt)
	if err != nil {
		t.Fatal(err)
	}

	if len(plain.Findings) != 0 || len(fast.Findings) != 0 {
		t.Fatalf("campaign found divergences: from-zero %d, checkpointed %d",
			len(plain.Findings), len(fast.Findings))
	}
	if plain.Programs != fast.Programs || plain.Skipped != fast.Skipped ||
		plain.RefInstructions != fast.RefInstructions {
		t.Errorf("campaign stats differ: from-zero {programs %d, skipped %d, ref insts %d} vs checkpointed {%d, %d, %d}",
			plain.Programs, plain.Skipped, plain.RefInstructions,
			fast.Programs, fast.Skipped, fast.RefInstructions)
	}
}
