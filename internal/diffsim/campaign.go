package diffsim

import (
	"context"
	"fmt"

	"fleaflicker/internal/progen"
	"fleaflicker/internal/program"
)

// CampaignConfig drives RunCampaign. A campaign is a pure function of this
// struct: the same config replays the same programs in the same order and
// reaches the same verdicts (wall-clock budgets are imposed by callers
// through ctx).
type CampaignConfig struct {
	// SeedBase is the first generator seed; program i uses SeedBase+i.
	SeedBase int64
	// Programs is the number of programs to generate and check.
	Programs int
	// Gen shapes the generated programs; the zero value means
	// progen.DefaultConfig.
	Gen progen.Config
	// Cells is the configuration lattice; nil means DefaultLattice.
	Cells []Cell
	// Shrink minimizes each diverging program into a reproducer.
	Shrink bool
	// MaxFindings stops the campaign early after this many diverging
	// programs (0 = keep going).
	MaxFindings int
	// Runner overrides the production simulation runner (test seam).
	Runner Runner
	// CheckpointEvery, when non-zero, fans each program's lattice cells out
	// from the reference execution's last functional checkpoint instead of
	// from cycle zero (see WithCheckpointing); AutoCheckpoint derives the
	// interval per program.
	CheckpointEvery int64
	// OnProgram, when non-nil, observes progress after each program.
	OnProgram func(done int, st *CampaignStats)
}

// Finding is one diverging program: the generator seed that produced it,
// the cells that disagreed, and (when shrinking is on) the minimized
// reproducer.
type Finding struct {
	Seed        int64
	Program     *program.Program
	Minimized   *program.Program // nil unless CampaignConfig.Shrink
	Divergences []Divergence
}

func (f *Finding) String() string {
	min := ""
	if f.Minimized != nil {
		min = fmt.Sprintf(", minimized to %d instructions", len(f.Minimized.Insts))
	}
	return fmt.Sprintf("seed %d: %d cells diverged%s", f.Seed, len(f.Divergences), min)
}

// CampaignStats aggregates one campaign.
type CampaignStats struct {
	// Programs is the number checked to a verdict; Skipped counts programs
	// the reference executor could not finish within budget (none of those
	// count toward agreement).
	Programs int
	Skipped  int
	// CellRuns is the total number of machine simulations performed;
	// RefInstructions the total dynamic instructions of the reference
	// executions (the campaign's work metric).
	CellRuns        int64
	RefInstructions int64
	Findings        []*Finding
}

// RunCampaign generates cfg.Programs seeded programs and checks each one
// across the lattice, shrinking divergences into minimal reproducers. The
// returned stats are valid (covering the work done so far) even when the
// error is non-nil: a cancelled campaign reports what it saw.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*CampaignStats, error) {
	gen := cfg.Gen
	if gen == (progen.Config{}) {
		gen = progen.DefaultConfig()
	}
	cells := cfg.Cells
	if cells == nil {
		cells = DefaultLattice()
	}
	var copts []CheckerOption
	if cfg.Runner != nil {
		copts = append(copts, WithRunner(cfg.Runner))
	}
	if cfg.CheckpointEvery != 0 {
		copts = append(copts, WithCheckpointing(cfg.CheckpointEvery))
	}
	checker := NewChecker(cells, copts...)

	st := &CampaignStats{}
	for i := 0; i < cfg.Programs; i++ {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		seed := cfg.SeedBase + int64(i)
		prog := progen.Generate(seed, gen)
		res, err := checker.Check(ctx, prog)
		if err != nil {
			return st, err
		}
		if res.RefErr != nil {
			st.Skipped++
		} else {
			st.Programs++
			st.CellRuns += int64(len(cells))
			st.RefInstructions += res.RefInstructions
		}
		if len(res.Divergences) > 0 {
			f := &Finding{Seed: seed, Program: prog, Divergences: res.Divergences}
			if cfg.Shrink {
				f.Minimized = checker.ShrinkDiverging(ctx, prog)
			}
			st.Findings = append(st.Findings, f)
			if cfg.MaxFindings > 0 && len(st.Findings) >= cfg.MaxFindings {
				if cfg.OnProgram != nil {
					cfg.OnProgram(i+1, st)
				}
				return st, nil
			}
		}
		if cfg.OnProgram != nil {
			cfg.OnProgram(i+1, st)
		}
	}
	return st, nil
}
