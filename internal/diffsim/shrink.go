package diffsim

import (
	"context"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/program"
)

// This file implements the reproducer shrinker: a delta-debugging (ddmin
// style) minimizer that deletes instruction ranges — largest chunks first,
// halving the granularity — keeping a candidate only when it still
// validates, still halts under the reference executor, and still exhibits
// the divergence. Deleting instructions shifts every later instruction
// down, so branch targets are remapped and issue-group stop bits repaired
// on each candidate.

// deleteRange returns a copy of p with instructions [lo, hi) removed.
// Branch targets are shifted past the hole (targets inside it land on the
// instruction that now follows it), the deleted range's trailing stop bit
// is propagated to the preceding instruction so group boundaries survive,
// and the final instruction's mandatory stop bit is restored. Returns nil
// for a cut that would delete the whole program.
//
// Indirect-branch targets built with MovLabel live in immediates the
// shrinker cannot see; a cut that breaks one produces a program the keep
// predicate (which re-runs the reference) simply rejects.
func deleteRange(p *program.Program, lo, hi int32) *program.Program {
	n := int32(len(p.Insts))
	if lo < 0 || hi <= lo || hi > n || hi-lo >= n {
		return nil
	}
	cut := hi - lo
	newLen := n - cut
	insts := make([]isa.Inst, 0, newLen)
	insts = append(insts, p.Insts[:lo]...)
	insts = append(insts, p.Insts[hi:]...)
	if lo > 0 && p.Insts[hi-1].Stop {
		insts[lo-1].Stop = true
	}
	remap := func(t int32) int32 {
		switch {
		case t >= hi:
			t -= cut
		case t >= lo:
			t = lo
		}
		if t >= newLen {
			t = newLen - 1
		}
		if t < 0 {
			t = 0
		}
		return t
	}
	for i := range insts {
		in := &insts[i]
		if in.Op.IsBranch() && in.Op != isa.OpBrRet && in.Op != isa.OpBrInd {
			in.Target = remap(in.Target)
		}
	}
	insts[newLen-1].Stop = true
	return &program.Program{Name: p.Name, Insts: insts, Entry: remap(p.Entry), Data: p.Data}
}

// shrinkMaxEvals bounds the number of keep-predicate evaluations one
// Shrink call may spend; each evaluation re-simulates the candidate across
// (part of) the lattice, so this caps shrinking time deterministically.
const shrinkMaxEvals = 4000

// Shrink minimizes prog while keep holds, returning the smallest program
// found (possibly prog itself). Candidates must also pass the static
// validator for the checker's machine shape, so every intermediate — and
// the result — is a runnable program, not just a byte soup that happens to
// trip the predicate. keep is never called on prog itself: the caller
// asserts it already holds.
func (c *Checker) Shrink(ctx context.Context, prog *program.Program, keep func(*program.Program) bool) *program.Program {
	valid := func(q *program.Program) bool {
		return q.Validate(c.base.IssueWidth, c.base.FUs) == nil
	}
	cur := prog
	evals := 0
	for chunk := int32(len(cur.Insts)) / 2; chunk >= 1; {
		improved := false
		for lo := int32(0); lo < int32(len(cur.Insts)); {
			if ctx.Err() != nil || evals >= shrinkMaxEvals {
				return cur
			}
			hi := lo + chunk
			if hi > int32(len(cur.Insts)) {
				hi = int32(len(cur.Insts))
			}
			cand := deleteRange(cur, lo, hi)
			if cand != nil && valid(cand) {
				evals++
				if keep(cand) {
					cur = cand // the same lo now names fresh instructions; retry it
					improved = true
					continue
				}
			}
			lo += chunk
		}
		if chunk == 1 {
			if !improved {
				break
			}
			continue // stay at single-instruction granularity until a fixpoint
		}
		chunk /= 2
	}
	return cur
}

// ShrinkDiverging minimizes a diverging program down to a minimal
// reproducer that still diverges somewhere on the checker's lattice.
func (c *Checker) ShrinkDiverging(ctx context.Context, prog *program.Program) *program.Program {
	return c.Shrink(ctx, prog, func(q *program.Program) bool { return c.Diverges(ctx, q) })
}
