package progen

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"os/exec"
	"testing"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/isa"
)

func TestGeneratedProgramsValidateAndHalt(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(0); seed < 25; seed++ {
		p := Generate(seed, cfg) // Generate panics if Validate fails
		res, err := arch.Run(p, 5_000_000)
		if err != nil {
			t.Fatalf("seed %d: reference execution failed: %v", seed, err)
		}
		if res.Instructions == 0 {
			t.Fatalf("seed %d: program executed no instructions", seed)
		}
	}
}

func TestGenerateIsDeterministicInProcess(t *testing.T) {
	cfg := DefaultConfig()
	a := Generate(42, cfg).MarshalFlea()
	b := Generate(42, cfg).MarshalFlea()
	if !bytes.Equal(a, b) {
		t.Fatalf("two generations from the same seed differ")
	}
	c := Generate(43, cfg).MarshalFlea()
	if bytes.Equal(a, c) {
		t.Fatalf("different seeds produced identical programs")
	}
}

func TestGroupsAreMultiInstruction(t *testing.T) {
	p := Generate(7, DefaultConfig())
	groups, insts := 0, len(p.Insts)
	for pc := int32(0); int(pc) < insts; pc = p.GroupBounds(pc) {
		groups++
	}
	if groups == insts {
		t.Fatalf("every group has exactly one instruction; the packer is not packing")
	}
	t.Logf("%d instructions in %d groups (%.2f per group)", insts, groups, float64(insts)/float64(groups))
}

func TestZeroWeightDisablesAction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WeightCall = 0
	cfg.WeightBranch = 0
	cfg.WeightLoop = 0
	p := Generate(3, cfg)
	for i, in := range p.Insts {
		if in.Op == isa.OpBrCall {
			t.Fatalf("inst %d: call emitted with WeightCall=0", i)
		}
	}
}

// genHash is the digest compared across processes by the determinism test.
func genHash() string {
	cfg := DefaultConfig()
	h := sha256.New()
	for seed := int64(0); seed < 8; seed++ {
		h.Write(Generate(seed, cfg).MarshalFlea())
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestGenerateIsDeterministicAcrossProcesses re-executes the test binary as
// a child process and compares program digests, catching nondeterminism
// that hides within a single process (address-dependent hashing, global
// state leaking between tests).
func TestGenerateIsDeterministicAcrossProcesses(t *testing.T) {
	const env = "PROGEN_DETERMINISM_CHILD"
	if os.Getenv(env) == "1" {
		fmt.Println(genHash())
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestGenerateIsDeterministicAcrossProcesses$", "-test.v")
	cmd.Env = append(os.Environ(), env+"=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}
	want := genHash()
	if !bytes.Contains(out, []byte(want)) {
		t.Fatalf("child digest does not match parent digest %s\nchild output:\n%s", want, out)
	}
}
