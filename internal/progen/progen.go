// Package progen generates seed-deterministic random EPIC programs for the
// differential fuzzer (internal/diffsim). Unlike workload.Random — which
// emits one instruction per issue group and targets realistic benchmark
// signatures — progen packs multi-instruction issue groups up to the machine
// width and aims squarely at the corners where the machine models can
// disagree: bounded-trip loops, pointer chains, store-to-load aliasing at
// configurable distances, dangling deferred-load results that no consumer
// ever reads, ALAT-style load/store conflicts, and data-dependent branches
// that force A-DET and B-DET repairs.
//
// Generation is a pure function of (seed, Config): the same pair yields the
// same program in any process, which is what makes corpus seeds and shrunk
// reproducers meaningful. The package is in the nondeterminism analyzer's
// scope, so it must not consult wall-clock time, global RNG state, or map
// iteration order.
package progen

import (
	"fmt"
	"math/rand"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/program"
)

// Config shapes generated programs. Weights are relative (a weight of zero
// disables that action); everything else is an absolute knob.
type Config struct {
	// Relative op-mix weights.
	WeightALU      int // register and immediate integer arithmetic
	WeightFP       int // floating-point arithmetic and conversions
	WeightLoad     int // plain loads from the data array
	WeightStore    int // plain stores to the data array
	WeightBranch   int // data-dependent forward branches (B-DET repair fodder)
	WeightCall     int // calls to leaf functions
	WeightChase    int // pointer-chain chases (dependent load chains)
	WeightAlias    int // store/load pairs to one address at AliasDistance
	WeightDangling int // loads into registers no instruction ever reads
	WeightLoop     int // bounded-trip inner loops

	// PredPercent is the probability (0-100) that an eligible instruction
	// carries a qualifying predicate.
	PredPercent int

	// OuterTrips is the trip count of the outer counted loop; BodyActions
	// the number of random actions per trip.
	OuterTrips  int
	BodyActions int

	// MaxInnerTrips bounds the trip count of generated inner loops.
	MaxInnerTrips int

	// AliasDistance is the number of filler instructions separating the
	// store and the reload of an aliased pair. Zero puts the reload in the
	// issue group immediately after the store's.
	AliasDistance int

	// ArrayBytes is the random-access data footprint (rounded up to a power
	// of two); ChainNodes the length of the cyclic pointer chain.
	ArrayBytes int
	ChainNodes int

	// MaxGroup caps generated issue-group size; it is clamped to IssueWidth.
	MaxGroup int

	// IssueWidth and FUs are the static limits groups are packed against
	// (program.Validate's resource rules). Zero values mean Table 1.
	IssueWidth int
	FUs        [isa.NumFUClasses]int
}

// DefaultConfig returns a mix exercising every action against the Table 1
// machine shape.
func DefaultConfig() Config {
	return Config{
		WeightALU:      8,
		WeightFP:       3,
		WeightLoad:     6,
		WeightStore:    4,
		WeightBranch:   3,
		WeightCall:     2,
		WeightChase:    3,
		WeightAlias:    3,
		WeightDangling: 2,
		WeightLoop:     2,
		PredPercent:    25,
		OuterTrips:     6,
		BodyActions:    24,
		MaxInnerTrips:  5,
		AliasDistance:  2,
		ArrayBytes:     16 << 10,
		ChainNodes:     32,
		MaxGroup:       6,
		IssueWidth:     8,
		FUs:            [isa.NumFUClasses]int{isa.ClassALU: 5, isa.ClassMEM: 3, isa.ClassFP: 3, isa.ClassBR: 3},
	}
}

// Register conventions. Working registers are the pool actions read and
// write; dead registers are only ever written (their loads' results dangle
// in the CQ/CRS with no consumer); the rest are structural.
const (
	workLo, workHi = 1, 16 // r1-r16, f2-f9, p1-p7 working pools
	deadLo, deadHi = 35, 39
	addrReg        = 40 // masked array address
	aliasReg       = 41 // pinned address of the current alias pair
	leafLo         = 30 // r30-r32 leaf-local
	arrayBase      = 50
	chainPtr       = 52 // current pointer-chain position
	innerCtr       = 55
	outerCtr       = 60
	linkReg        = 63
)

// gen packs instructions into issue groups while respecting the static
// rules of program.Validate: width and per-class FU caps, and the
// intra-group RAW/WAW prohibitions. Memory is treated like one more
// register for RAW purposes — a load never joins a group after a store —
// so group packing can never change what a load observes.
type gen struct {
	cfg Config
	rng *rand.Rand
	b   *program.Builder

	groupLen   int
	classCount [isa.NumFUClasses]int
	written    [isa.NumRegs]bool
	groupStore bool
	nextLabel  int
	arrayMask  int32
}

func (g *gen) closeGroup() {
	if g.groupLen == 0 {
		return
	}
	g.b.Stop()
	g.groupLen = 0
	g.classCount = [isa.NumFUClasses]int{}
	g.written = [isa.NumRegs]bool{}
	g.groupStore = false
}

// fits reports whether in can join the currently open group.
func (g *gen) fits(in *isa.Inst) bool {
	if g.groupLen >= g.cfg.MaxGroup || g.groupLen >= g.cfg.IssueWidth {
		return false
	}
	c := in.Op.Class()
	if g.cfg.FUs[c] > 0 && g.classCount[c] >= g.cfg.FUs[c] {
		return false
	}
	if in.Op.IsLoad() && g.groupStore {
		return false
	}
	for _, s := range in.Sources(nil) {
		if g.written[s] {
			return false
		}
	}
	if in.HasDest() && g.written[in.Dst] {
		return false
	}
	return true
}

// emit places in into the open group if it fits, otherwise closes the group
// and starts a new one. Branches and halts always terminate their group.
func (g *gen) emit(in isa.Inst) {
	if !g.fits(&in) {
		g.closeGroup()
	}
	g.b.Emit(in)
	g.groupLen++
	g.classCount[in.Op.Class()]++
	if in.HasDest() {
		g.written[in.Dst] = true
	}
	if in.Op.IsStore() {
		g.groupStore = true
	}
	if in.Op.IsBranch() || in.Op == isa.OpHalt {
		g.closeGroup()
	}
}

// br emits a conditional branch to label and terminates the group.
func (g *gen) br(pred isa.Reg, label string) {
	probe := isa.Inst{Op: isa.OpBr, Pred: pred, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	if !g.fits(&probe) {
		g.closeGroup()
	}
	g.b.Br(pred, label)
	g.b.Stop()
	g.groupLen = 0
	g.classCount = [isa.NumFUClasses]int{}
	g.written = [isa.NumRegs]bool{}
	g.groupStore = false
}

// call emits a leaf call and terminates the group.
func (g *gen) call(label string) {
	probe := isa.Inst{Op: isa.OpBrCall, Pred: isa.P(0), Dst: isa.R(linkReg), Src1: isa.RegNone, Src2: isa.RegNone}
	if !g.fits(&probe) {
		g.closeGroup()
	}
	g.b.Call(isa.R(linkReg), label)
	g.b.Stop()
	g.groupLen = 0
	g.classCount = [isa.NumFUClasses]int{}
	g.written = [isa.NumRegs]bool{}
	g.groupStore = false
}

// label closes the open group (a branch target must begin a group) and
// binds name to the next instruction.
func (g *gen) label(name string) {
	g.closeGroup()
	g.b.Label(name)
}

func (g *gen) intReg() isa.Reg  { return isa.R(workLo + g.rng.Intn(workHi-workLo+1)) }
func (g *gen) fpReg() isa.Reg   { return isa.F(2 + g.rng.Intn(8)) }
func (g *gen) predReg() isa.Reg { return isa.P(1 + g.rng.Intn(7)) }
func (g *gen) deadReg() isa.Reg { return isa.R(deadLo + g.rng.Intn(deadHi-deadLo+1)) }

// maybePred returns a qualifying predicate with probability PredPercent,
// else P(0).
func (g *gen) maybePred() isa.Reg {
	if g.rng.Intn(100) < g.cfg.PredPercent {
		return g.predReg()
	}
	return isa.P(0)
}

// addr computes a masked in-array address into dst.
func (g *gen) addr(dst isa.Reg) {
	g.emit(isa.Inst{Op: isa.OpAndI, Dst: dst, Src1: g.intReg(), Src2: isa.RegNone, Imm: g.arrayMask})
	g.emit(isa.Inst{Op: isa.OpAdd, Dst: dst, Src1: dst, Src2: isa.R(arrayBase)})
}

// filler emits one independent ALU instruction, used to pad alias distances.
func (g *gen) filler() {
	g.emit(isa.Inst{Op: isa.OpAddI, Dst: g.intReg(), Src1: g.intReg(), Src2: isa.RegNone, Imm: int32(g.rng.Intn(16))})
}

var alu3Ops = []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpMul, isa.OpShl, isa.OpSar}
var aluIOps = []isa.Op{isa.OpAddI, isa.OpAndI, isa.OpOrI, isa.OpXorI, isa.OpShlI, isa.OpShrI, isa.OpSarI}
var cmpOps = []isa.Op{isa.OpCmpEq, isa.OpCmpNe, isa.OpCmpLt, isa.OpCmpLe, isa.OpCmpLtU, isa.OpCmpLeU}
var storeOps = []isa.Op{isa.OpSt1, isa.OpSt2, isa.OpSt4}

func (g *gen) actALU() {
	switch g.rng.Intn(3) {
	case 0:
		g.emit(isa.Inst{Op: alu3Ops[g.rng.Intn(len(alu3Ops))], Pred: g.maybePred(), Dst: g.intReg(), Src1: g.intReg(), Src2: g.intReg()})
	case 1:
		g.emit(isa.Inst{Op: aluIOps[g.rng.Intn(len(aluIOps))], Pred: g.maybePred(), Dst: g.intReg(), Src1: g.intReg(), Src2: isa.RegNone, Imm: int32(g.rng.Intn(64))})
	case 2:
		g.emit(isa.Inst{Op: cmpOps[g.rng.Intn(len(cmpOps))], Pred: g.maybePred(), Dst: g.predReg(), Src1: g.intReg(), Src2: g.intReg()})
	}
}

func (g *gen) actFP() {
	switch g.rng.Intn(5) {
	case 0:
		g.emit(isa.Inst{Op: isa.OpFAdd, Pred: g.maybePred(), Dst: g.fpReg(), Src1: g.fpReg(), Src2: g.fpReg()})
	case 1:
		g.emit(isa.Inst{Op: isa.OpFMul, Dst: g.fpReg(), Src1: g.fpReg(), Src2: g.fpReg()})
	case 2:
		g.emit(isa.Inst{Op: isa.OpFSub, Dst: g.fpReg(), Src1: g.fpReg(), Src2: g.fpReg()})
	case 3:
		g.emit(isa.Inst{Op: isa.OpI2F, Dst: g.fpReg(), Src1: g.intReg(), Src2: isa.RegNone})
	case 4:
		g.emit(isa.Inst{Op: isa.OpFCmpLt, Dst: g.predReg(), Src1: g.fpReg(), Src2: g.fpReg()})
	}
}

func (g *gen) actLoad() {
	g.addr(isa.R(addrReg))
	g.emit(isa.Inst{Op: isa.OpLd4, Pred: g.maybePred(), Dst: g.intReg(), Src1: isa.R(addrReg), Src2: isa.RegNone, Imm: int32(g.rng.Intn(2) * 4)})
}

func (g *gen) actStore() {
	g.addr(isa.R(addrReg))
	g.emit(isa.Inst{Op: storeOps[g.rng.Intn(len(storeOps))], Pred: g.maybePred(), Dst: isa.RegNone, Src1: isa.R(addrReg), Src2: g.intReg(), Imm: int32(g.rng.Intn(2) * 4)})
}

// actAlias pins one address and weaves loads and stores to it at the
// configured distance: load, store (ALAT-style conflict with the load's
// entry), fillers, reload (store-to-load forwarding across groups).
func (g *gen) actAlias() {
	g.addr(isa.R(aliasReg))
	g.emit(isa.Inst{Op: isa.OpLd4, Dst: g.intReg(), Src1: isa.R(aliasReg), Src2: isa.RegNone})
	g.emit(isa.Inst{Op: isa.OpSt4, Pred: g.maybePred(), Dst: isa.RegNone, Src1: isa.R(aliasReg), Src2: g.intReg()})
	for i := 0; i < g.cfg.AliasDistance; i++ {
		g.filler()
	}
	g.emit(isa.Inst{Op: isa.OpLd4, Dst: g.intReg(), Src1: isa.R(aliasReg), Src2: isa.RegNone})
}

// actDangling loads into a register nothing ever reads: in the two-pass
// machine the deferred result sits in the CQ with no consumer and must
// still merge (or be overwritten) correctly at retirement.
func (g *gen) actDangling() {
	g.addr(isa.R(addrReg))
	dead := g.deadReg()
	g.emit(isa.Inst{Op: isa.OpLd4, Dst: dead, Src1: isa.R(addrReg), Src2: isa.RegNone})
	if g.rng.Intn(2) == 0 {
		// Overwrite the dangling result before it could ever merge.
		g.emit(isa.Inst{Op: isa.OpMovI, Dst: dead, Src1: isa.RegNone, Src2: isa.RegNone, Imm: int32(g.rng.Intn(1 << 16))})
	}
}

// actChase walks the cyclic pointer chain: each load's address depends on
// the previous load's value, the access pattern the paper's two-pass design
// exists to survive.
func (g *gen) actChase() {
	steps := 1 + g.rng.Intn(3)
	for i := 0; i < steps; i++ {
		g.emit(isa.Inst{Op: isa.OpLd4, Dst: isa.R(chainPtr), Src1: isa.R(chainPtr), Src2: isa.RegNone})
	}
	g.emit(isa.Inst{Op: isa.OpLd4, Dst: g.intReg(), Src1: isa.R(chainPtr), Src2: isa.RegNone, Imm: 4})
}

// actBranch emits a data-dependent forward skip; the skipped range is
// pending until the enclosing body placement loop resolves it.
type pending struct {
	label string
	left  int
}

func (g *gen) actBranch(pendings []pending) []pending {
	lbl := fmt.Sprintf("fwd%d", g.nextLabel)
	g.nextLabel++
	p := g.predReg()
	g.emit(isa.Inst{Op: cmpOps[g.rng.Intn(len(cmpOps))], Dst: p, Src1: g.intReg(), Src2: g.intReg()})
	g.br(p, lbl)
	return append(pendings, pending{lbl, 1 + g.rng.Intn(4)})
}

// actLoop emits a self-contained bounded-trip inner loop whose body uses
// only straight-line actions.
func (g *gen) actLoop() {
	lbl := fmt.Sprintf("inner%d", g.nextLabel)
	g.nextLabel++
	trips := 1 + g.rng.Intn(g.cfg.MaxInnerTrips)
	g.emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(innerCtr), Src1: isa.RegNone, Src2: isa.RegNone, Imm: int32(trips)})
	g.label(lbl)
	for n := 2 + g.rng.Intn(4); n > 0; n-- {
		switch g.rng.Intn(4) {
		case 0:
			g.actALU()
		case 1:
			g.actLoad()
		case 2:
			g.actStore()
		case 3:
			g.actFP()
		}
	}
	g.emit(isa.Inst{Op: isa.OpAddI, Dst: isa.R(innerCtr), Src1: isa.R(innerCtr), Src2: isa.RegNone, Imm: -1})
	g.emit(isa.Inst{Op: isa.OpCmpNeI, Dst: isa.P(14), Src1: isa.R(innerCtr), Src2: isa.RegNone, Imm: 0})
	g.br(isa.P(14), lbl)
}

// Generate builds a deterministic pseudo-random program from seed. The
// program always terminates: its backward branches are counted loops,
// forward branches only skip ahead, calls reach leaf functions that return,
// and every memory access lands inside the program's own data footprint.
// The result satisfies program.Validate for the configured machine shape;
// a violation is a generator bug and panics.
func Generate(seed int64, cfg Config) *program.Program {
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 8
	}
	if cfg.MaxGroup <= 0 || cfg.MaxGroup > cfg.IssueWidth {
		cfg.MaxGroup = cfg.IssueWidth
	}
	if cfg.OuterTrips <= 0 {
		cfg.OuterTrips = 1
	}
	if cfg.MaxInnerTrips <= 0 {
		cfg.MaxInnerTrips = 1
	}
	if cfg.ChainNodes <= 0 {
		cfg.ChainNodes = 2
	}

	g := &gen{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed)),
		b:   program.NewBuilder(fmt.Sprintf("fuzz-%d", seed)),
	}

	size := 1024
	for size < cfg.ArrayBytes {
		size <<= 1
	}
	g.arrayMask = int32(size-1) &^ 7

	// Data image: the random-access array, then the cyclic pointer chain
	// (16-byte nodes: next pointer at +0, payload at +4).
	const base = int64(program.DataBase)
	data := g.b.Data()
	for i := 0; i < size; i += 4 {
		data.WriteU32(uint32(base+int64(i)), g.rng.Uint32())
	}
	chainBase := base + int64(size)
	for i := 0; i < cfg.ChainNodes; i++ {
		next := chainBase + 16*int64((i+1)%cfg.ChainNodes)
		data.WriteU32(uint32(chainBase+16*int64(i)), uint32(next))
		data.WriteU32(uint32(chainBase+16*int64(i)+4), g.rng.Uint32())
	}

	// Prologue: structural registers, then the working pools. These are
	// mutually independent, so the packer folds them into wide groups.
	g.emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(arrayBase), Src1: isa.RegNone, Src2: isa.RegNone, Imm: int32(base)})
	g.emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(chainPtr), Src1: isa.RegNone, Src2: isa.RegNone, Imm: int32(chainBase)})
	g.emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(outerCtr), Src1: isa.RegNone, Src2: isa.RegNone, Imm: int32(cfg.OuterTrips)})
	for i := workLo; i <= workHi; i++ {
		g.emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(i), Src1: isa.RegNone, Src2: isa.RegNone, Imm: int32(g.rng.Uint32())})
	}
	for i := 2; i <= 9; i++ {
		g.emit(isa.Inst{Op: isa.OpI2F, Dst: isa.F(i), Src1: g.intReg(), Src2: isa.RegNone})
	}
	for i := 1; i <= 7; i++ {
		g.emit(isa.Inst{Op: isa.OpCmpLt, Dst: isa.P(i), Src1: g.intReg(), Src2: g.intReg()})
	}

	// Leaf functions, if calls are in the mix.
	const nLeaves = 2
	if cfg.WeightCall > 0 {
		g.br(isa.P(0), "main")
		for l := 0; l < nLeaves; l++ {
			g.label(fmt.Sprintf("leaf%d", l))
			g.emit(isa.Inst{Op: isa.OpAddI, Dst: isa.R(leafLo + l), Src1: isa.R(leafLo + l), Src2: isa.RegNone, Imm: int32(l + 1)})
			g.emit(isa.Inst{Op: isa.OpXor, Dst: isa.R(leafLo + 2), Src1: isa.R(leafLo + l), Src2: isa.R(leafLo + 2)})
			g.emit(isa.Inst{Op: isa.OpBrRet, Dst: isa.RegNone, Src1: isa.R(linkReg), Src2: isa.RegNone})
		}
		g.label("main")
	}

	// Weighted action table.
	type action struct {
		weight int
		run    func()
	}
	var pendings []pending
	actions := []action{
		{cfg.WeightALU, g.actALU},
		{cfg.WeightFP, g.actFP},
		{cfg.WeightLoad, g.actLoad},
		{cfg.WeightStore, g.actStore},
		{cfg.WeightChase, g.actChase},
		{cfg.WeightAlias, g.actAlias},
		{cfg.WeightDangling, g.actDangling},
		{cfg.WeightLoop, g.actLoop},
		{cfg.WeightBranch, func() { pendings = g.actBranch(pendings) }},
		{cfg.WeightCall, func() { g.call(fmt.Sprintf("leaf%d", g.rng.Intn(nLeaves))) }},
	}
	total := 0
	for _, a := range actions {
		total += a.weight
	}
	if total == 0 {
		actions[0].weight, total = 1, 1
	}
	pick := func() func() {
		n := g.rng.Intn(total)
		for _, a := range actions {
			if n < a.weight {
				return a.run
			}
			n -= a.weight
		}
		return actions[0].run
	}

	// Body: the outer counted loop.
	g.label("top")
	for a := 0; a < cfg.BodyActions; a++ {
		for i := 0; i < len(pendings); {
			if pendings[i].left <= 0 {
				g.label(pendings[i].label)
				pendings = append(pendings[:i], pendings[i+1:]...)
				continue
			}
			pendings[i].left--
			i++
		}
		pick()()
	}
	for _, p := range pendings {
		g.label(p.label)
	}

	// Epilogue: fold FP state into an integer register so state comparison
	// sees it bit-exactly, then close the outer loop and halt.
	g.emit(isa.Inst{Op: isa.OpFAdd, Dst: isa.F(2), Src1: isa.F(2), Src2: isa.F(3)})
	g.emit(isa.Inst{Op: isa.OpF2I, Dst: isa.R(33), Src1: isa.F(2), Src2: isa.RegNone})
	g.emit(isa.Inst{Op: isa.OpAddI, Dst: isa.R(outerCtr), Src1: isa.R(outerCtr), Src2: isa.RegNone, Imm: -1})
	g.emit(isa.Inst{Op: isa.OpCmpNeI, Dst: isa.P(15), Src1: isa.R(outerCtr), Src2: isa.RegNone, Imm: 0})
	g.br(isa.P(15), "top")
	g.emit(isa.Inst{Op: isa.OpHalt, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Stop: true})

	p := g.b.MustBuild()
	if err := p.Validate(cfg.IssueWidth, cfg.FUs); err != nil {
		panic(fmt.Sprintf("progen: generated invalid program from seed %d: %v", seed, err))
	}
	return p
}
