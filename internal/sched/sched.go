// Package sched is the compile-time instruction scheduler standing in for
// the paper's IMPACT compiler back end: it re-schedules each basic block
// into dense EPIC issue groups by latency-weighted list scheduling under the
// machine's functional-unit constraints, assuming cache-hit latencies for
// loads — exactly the compiler assumption whose violation (unanticipated
// misses) the two-pass pipeline exists to absorb.
//
// The scheduler preserves program semantics: it reorders instructions only
// within basic blocks, honours register flow/anti/output dependences
// (including qualifying predicates) and conservative memory dependences, and
// remaps branch targets and labels to the new layout. Return addresses
// produced by br.call remain correct because they are defined positionally
// (PC+1) at execution time. Programs containing br.ind are rejected: their
// targets live in data as instruction indices the scheduler cannot see.
package sched

import (
	"fmt"
	"sort"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/program"
)

// Config bounds the schedule.
type Config struct {
	IssueWidth int
	FUs        [isa.NumFUClasses]int
	// AssumedLoadLatency is the load latency the scheduler plans for
	// (the L1D hit latency; Table 1: 2 cycles).
	AssumedLoadLatency int
}

// DefaultConfig matches the Table 1 machine.
func DefaultConfig() Config {
	return Config{
		IssueWidth:         8,
		FUs:                [isa.NumFUClasses]int{isa.ClassALU: 5, isa.ClassMEM: 3, isa.ClassFP: 3, isa.ClassBR: 3},
		AssumedLoadLatency: 2,
	}
}

// Stats summarizes a scheduling run.
type Stats struct {
	Blocks       int
	GroupsBefore int
	GroupsAfter  int
}

// Schedule returns a new program with each basic block re-scheduled into
// issue groups. The input program is not modified.
func Schedule(p *program.Program, cfg Config) (*program.Program, *Stats, error) {
	for i := range p.Insts {
		if p.Insts[i].Op == isa.OpBrInd {
			return nil, nil, fmt.Errorf("sched: program %q uses br.ind at %d; its data-held targets cannot be remapped", p.Name, i)
		}
	}
	leaders := findLeaders(p)
	st := &Stats{Blocks: len(leaders), GroupsBefore: countGroups(p.Insts)}

	out := &program.Program{
		Name:   p.Name,
		Labels: make(map[string]int32, len(p.Labels)),
		Data:   p.Data,
	}
	newStart := make(map[int32]int32, len(leaders)) // old leader -> new index
	for bi, start := range leaders {
		end := int32(len(p.Insts))
		if bi+1 < len(leaders) {
			end = leaders[bi+1]
		}
		newStart[start] = int32(len(out.Insts))
		scheduled := scheduleBlock(p.Insts[start:end], cfg)
		out.Insts = append(out.Insts, scheduled...)
	}
	// Remap branch targets, labels and the entry point.
	for i := range out.Insts {
		in := &out.Insts[i]
		if in.Op.IsBranch() && in.Op != isa.OpBrRet && in.Op != isa.OpBrInd {
			ns, ok := newStart[in.Target]
			if !ok {
				return nil, nil, fmt.Errorf("sched: branch target %d is not a block leader", in.Target)
			}
			in.Target = ns
		}
	}
	for name, old := range p.Labels {
		if ns, ok := newStart[old]; ok {
			out.Labels[name] = ns
		}
	}
	if ns, ok := newStart[p.Entry]; ok {
		out.Entry = ns
	} else {
		return nil, nil, fmt.Errorf("sched: entry %d is not a block leader", p.Entry)
	}
	if n := len(out.Insts); n > 0 {
		out.Insts[n-1].Stop = true
	}
	st.GroupsAfter = countGroups(out.Insts)
	if err := out.Validate(cfg.IssueWidth, cfg.FUs); err != nil {
		return nil, nil, fmt.Errorf("sched: produced invalid program: %w", err)
	}
	return out, st, nil
}

// MustSchedule is Schedule panicking on error, for statically known kernels.
func MustSchedule(p *program.Program, cfg Config) *program.Program {
	out, _, err := Schedule(p, cfg)
	if err != nil {
		panic(err)
	}
	return out
}

// findLeaders returns the sorted basic-block leader indices: instruction 0,
// the entry, every branch target, and every instruction following a branch
// or halt.
func findLeaders(p *program.Program) []int32 {
	set := map[int32]bool{0: true, p.Entry: true}
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op.IsBranch() || in.Op == isa.OpHalt {
			if in.Op != isa.OpBrRet && in.Op != isa.OpBrInd && in.Op != isa.OpHalt {
				set[in.Target] = true
			}
			if i+1 < len(p.Insts) {
				set[int32(i+1)] = true
			}
		}
	}
	leaders := make([]int32, 0, len(set))
	for l := range set {
		leaders = append(leaders, l)
	}
	sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })
	return leaders
}

func countGroups(insts []isa.Inst) int {
	n := 0
	for i := range insts {
		if insts[i].Stop || i == len(insts)-1 {
			n++
		}
	}
	return n
}

// dep is one scheduling edge: consumer may start `lat` cycles after
// producer. lat 0 permits the same issue group with the producer ordered
// first (EPIC within-group reads see pre-group state, so anti-dependences
// and ordered memory pairs may share a group).
type dep struct {
	pred int
	lat  int
}

// scheduleBlock list-schedules one basic block.
func scheduleBlock(insts []isa.Inst, cfg Config) []isa.Inst {
	n := len(insts)
	if n == 0 {
		return nil
	}
	deps := buildDeps(insts, cfg)

	// Priority: longest latency path to the end of the block.
	height := make([]int, n)
	succs := make([][]dep, n)
	for j := 0; j < n; j++ {
		for _, d := range deps[j] {
			succs[d.pred] = append(succs[d.pred], dep{pred: j, lat: d.lat})
		}
	}
	for i := n - 1; i >= 0; i-- {
		h := 0
		for _, s := range succs[i] {
			if v := height[s.pred] + s.lat; v > h {
				h = v
			}
		}
		height[i] = h + 1
	}

	schedCycle := make([]int, n)
	for i := range schedCycle {
		schedCycle[i] = -1
	}
	order := make([]int, 0, n)
	cycle := 0
	scheduled := 0
	for scheduled < n {
		var width int
		var classUsed [isa.NumFUClasses]int
		progress := true
		for progress && width < cfg.IssueWidth {
			progress = false
			best := -1
			for i := 0; i < n; i++ {
				if schedCycle[i] >= 0 || !ready(i, deps[i], schedCycle, cycle) {
					continue
				}
				cls := insts[i].Op.Class()
				if cfg.FUs[cls] > 0 && classUsed[cls] >= cfg.FUs[cls] {
					continue
				}
				if best < 0 || height[i] > height[best] {
					best = i
				}
			}
			if best >= 0 {
				schedCycle[best] = cycle
				classUsed[insts[best].Op.Class()]++
				width++
				scheduled++
				order = append(order, best)
				progress = true
			}
		}
		cycle++
	}

	// Emit: groups in cycle order; within a group, original program order
	// (required for latency-0 edges).
	sort.SliceStable(order, func(a, b int) bool {
		if schedCycle[order[a]] != schedCycle[order[b]] {
			return schedCycle[order[a]] < schedCycle[order[b]]
		}
		return order[a] < order[b]
	})
	out := make([]isa.Inst, 0, n)
	for k, idx := range order {
		in := insts[idx]
		in.Stop = k+1 == n || schedCycle[order[k+1]] != schedCycle[idx]
		out = append(out, in)
	}
	return out
}

func ready(i int, preds []dep, schedCycle []int, cycle int) bool {
	for _, d := range preds {
		pc := schedCycle[d.pred]
		if pc < 0 || pc+d.lat > cycle {
			return false
		}
	}
	return true
}

// buildDeps constructs the dependence edges of one block.
func buildDeps(insts []isa.Inst, cfg Config) [][]dep {
	n := len(insts)
	deps := make([][]dep, n)
	add := func(to, from, lat int) {
		if from < 0 || from == to {
			return
		}
		deps[to] = append(deps[to], dep{pred: from, lat: lat})
	}
	latency := func(i int) int {
		if insts[i].Op.IsLoad() {
			return cfg.AssumedLoadLatency
		}
		return insts[i].Op.Latency()
	}

	lastWriter := make(map[isa.Reg]int)
	lastReaders := make(map[isa.Reg][]int)
	lastStore := -1
	loadsSinceStore := []int{}
	var srcs []isa.Reg

	for i := 0; i < n; i++ {
		in := &insts[i]
		srcs = in.Sources(srcs[:0])
		for _, s := range srcs {
			if w, ok := lastWriter[s]; ok {
				add(i, w, latency(w)) // RAW
			}
		}
		if in.HasDest() {
			d := in.Dst
			if w, ok := lastWriter[d]; ok {
				add(i, w, 1) // WAW: writers in distinct groups, in order
			}
			for _, r := range lastReaders[d] {
				add(i, r, 0) // WAR: same group permitted, reader first
			}
			lastWriter[d] = i
			delete(lastReaders, d)
		}
		for _, s := range srcs {
			lastReaders[s] = append(lastReaders[s], i)
		}
		switch {
		case in.Op.IsLoad():
			if lastStore >= 0 {
				add(i, lastStore, 1) // conservative store→load flow
			}
			loadsSinceStore = append(loadsSinceStore, i)
		case in.Op.IsStore():
			if lastStore >= 0 {
				add(i, lastStore, 0) // output: ordered, same group allowed
			}
			for _, l := range loadsSinceStore {
				add(i, l, 0) // anti: ordered, same group allowed
			}
			lastStore = i
			loadsSinceStore = loadsSinceStore[:0]
		case in.Op.IsBranch() || in.Op == isa.OpHalt:
			// The block terminator must be last: order it after every
			// other instruction (latency 0 permits sharing its group).
			for j := 0; j < i; j++ {
				add(i, j, 0)
			}
		}
	}
	return deps
}
