package sched

import (
	"fmt"
	"strings"
	"testing"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/isa"
	"fleaflicker/internal/program"
)

func TestIfConvertBasicHammock(t *testing.T) {
	p := program.MustAssemble("hammock", `
        movi r1 = 5
        movi r2 = 9 ;;
        cmp.lt p1 = r1, r2 ;;
        (p1) br join ;;
        addi r3 = r3, 1 ;;
        xori r4 = r4, 7 ;;
join:   movi r5 = 2 ;;
        halt ;;
`)
	out, st, err := IfConvert(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Converted != 1 || st.PredicatedInsts != 2 {
		t.Fatalf("stats = %+v, want 1 conversion of 2 insts:\n%s", st, out.Dump())
	}
	for i := range out.Insts {
		if out.Insts[i].Op == isa.OpBr {
			t.Errorf("branch survived conversion:\n%s", out.Dump())
		}
	}
	// The body must now be predicated on a fresh predicate, and an
	// inverted compare (cmp.le with swapped operands) must exist.
	sawInv := false
	for i := range out.Insts {
		in := &out.Insts[i]
		if in.Op == isa.OpCmpLe && in.Src1 == isa.R(2) && in.Src2 == isa.R(1) {
			sawInv = true
		}
		if in.Op == isa.OpAddI && in.Dst == isa.R(3) && in.Pred == isa.P(0) {
			t.Errorf("body instruction not predicated:\n%s", out.Dump())
		}
	}
	if !sawInv {
		t.Errorf("inverted compare missing:\n%s", out.Dump())
	}
	// Semantics preserved (branch taken: body skipped -> r3 stays 0).
	ref := arch.MustRun(p, 1000)
	got := arch.MustRun(out, 1000)
	if !ref.State.Equal(got.State) {
		t.Fatalf("if-conversion changed semantics: %s", ref.State.Diff(got.State))
	}
}

func TestIfConvertBothDirections(t *testing.T) {
	// Run with the branch not taken (body executes) and ensure the
	// predicated body still executes.
	p := program.MustAssemble("nottaken", `
        movi r1 = 9
        movi r2 = 5 ;;
        cmp.lt p1 = r1, r2 ;;
        (p1) br join ;;
        addi r3 = r3, 1 ;;
join:   halt ;;
`)
	out, st, err := IfConvert(p, 4)
	if err != nil || st.Converted != 1 {
		t.Fatalf("conversion failed: %v %+v", err, st)
	}
	got := arch.MustRun(out, 1000)
	if isa.AsI32(got.State.Read(isa.R(3))) != 1 {
		t.Errorf("body did not execute after conversion")
	}
}

func TestIfConvertRejections(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"body too big", `
        cmp.lt p1 = r1, r2 ;;
        (p1) br join ;;
        movi r3 = 1 ;;
        movi r4 = 1 ;;
        movi r5 = 1 ;;
        movi r6 = 1 ;;
        movi r7 = 1 ;;
join:   halt ;;
`},
		{"body has branch", `
        cmp.lt p1 = r1, r2 ;;
        (p1) br join ;;
        br join ;;
join:   halt ;;
`},
		{"body predicated", `
        cmp.lt p1 = r1, r2
        cmp.lt p2 = r2, r1 ;;
        (p1) br join ;;
        (p2) movi r3 = 1 ;;
join:   halt ;;
`},
		{"fp compare is not invertible", `
        fcmp.lt p1 = f2, f3 ;;
        (p1) br join ;;
        movi r3 = 1 ;;
join:   halt ;;
`},
		{"immediate compare is not invertible", `
        cmpi.lt p1 = r1, 5 ;;
        (p1) br join ;;
        movi r3 = 1 ;;
join:   halt ;;
`},
		{"target inside region", `
        movi r5 = 3 ;;
        cmp.lt p1 = r1, r2 ;;
mid:    (p1) br join ;;
        movi r3 = 1 ;;
join:   addi r5 = r5, -1 ;;
        cmpi.ne p2 = r5, 0 ;;
        (p2) br mid ;;
        halt ;;
`},
		{"def crosses control flow", `
        cmp.lt p1 = r1, r2 ;;
        br next ;;
next:   (p1) br join ;;
        movi r3 = 1 ;;
join:   halt ;;
`},
	}
	for _, c := range cases {
		p := program.MustAssemble(c.name, c.src)
		out, st, err := IfConvert(p, 4)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if st.Converted != 0 {
			t.Errorf("%s: should not convert:\n%s", c.name, out.Dump())
		}
		// Always semantics-preserving regardless.
		ref := arch.MustRun(p, 10_000)
		got := arch.MustRun(out, 10_000)
		if !ref.State.Equal(got.State) {
			t.Errorf("%s: semantics changed: %s", c.name, ref.State.Diff(got.State))
		}
	}
}

func TestIfConvertEqInversion(t *testing.T) {
	p := program.MustAssemble("eq", `
        movi r1 = 4
        movi r2 = 4 ;;
        cmp.eq p1 = r1, r2 ;;
        (p1) br join ;;
        addi r3 = r3, 1 ;;
join:   halt ;;
`)
	out, st, err := IfConvert(p, 4)
	if err != nil || st.Converted != 1 {
		t.Fatalf("conversion failed: %v", err)
	}
	ref := arch.MustRun(p, 1000)
	got := arch.MustRun(out, 1000)
	if !ref.State.Equal(got.State) {
		t.Fatalf("eq inversion wrong: %s", ref.State.Diff(got.State))
	}
}

func TestIfConvertInLoop(t *testing.T) {
	// The hammock sits inside a loop: the inserted complement re-evaluates
	// every iteration alongside the original compare.
	p := program.MustAssemble("loop", `
        movi r1 = 0
        movi r2 = 20
        movi r3 = 0 ;;
top:    andi r4 = r1, 3 ;;
        cmpi.ne p2 = r4, 0 ;;
        movi r5 = 1 ;;
        cmp.lt p1 = r5, r4 ;;
        (p1) br skip ;;
        addi r3 = r3, 10 ;;
skip:   addi r1 = r1, 1 ;;
        cmp.lt p3 = r1, r2 ;;
        (p3) br top ;;
        halt ;;
`)
	out, st, err := IfConvert(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Converted != 1 {
		t.Fatalf("expected 1 conversion, got %d:\n%s", st.Converted, out.Dump())
	}
	ref := arch.MustRun(p, 100_000)
	got := arch.MustRun(out, 100_000)
	if !ref.State.Equal(got.State) {
		t.Fatalf("loop conversion wrong: %s", ref.State.Diff(got.State))
	}
}

func TestIfConvertRejectsIndirect(t *testing.T) {
	p := program.MustAssemble("ind", `
        movi r1 = @x ;;
x:      br.ind r1 ;;
        halt ;;
`)
	if _, _, err := IfConvert(p, 4); err == nil || !strings.Contains(err.Error(), "br.ind") {
		t.Errorf("br.ind should be rejected: %v", err)
	}
}

func TestIfConvertValidatesAfterScheduling(t *testing.T) {
	p := program.MustAssemble("vs", `
        movi r1 = 1
        movi r2 = 2 ;;
        cmp.ltu p1 = r1, r2 ;;
        (p1) br join ;;
        movi r3 = 1 ;;
        st4 [r2] = r3 ;;
join:   halt ;;
`)
	out, st, err := IfConvert(p, 4)
	if err != nil || st.Converted != 1 {
		t.Fatalf("conversion failed: %v %+v", err, st)
	}
	sched := MustSchedule(out, DefaultConfig())
	if err := sched.Validate(8, [isa.NumFUClasses]int{5, 3, 3, 3}); err != nil {
		t.Fatalf("if-converted + scheduled program invalid: %v", err)
	}
	ref := arch.MustRun(p, 1000)
	got := arch.MustRun(sched, 1000)
	if !ref.State.Equal(got.State) {
		t.Fatalf("pipeline of passes changed semantics: %s", ref.State.Diff(got.State))
	}
}

func TestIfConvertDiamond(t *testing.T) {
	src := `
        movi r1 = %d
        movi r2 = 9 ;;
        cmp.lt p1 = r1, r2 ;;
        (p1) br less ;;
        movi r3 = 100 ;;
        addi r4 = r4, 1 ;;
        br join ;;
less:   movi r3 = 200 ;;
        addi r5 = r5, 1 ;;
join:   add r6 = r3, r4 ;;
        halt ;;
`
	for _, r1 := range []int{5, 20} { // branch taken and not taken
		p := program.MustAssemble("diamond", fmt.Sprintf(src, r1))
		out, st, err := IfConvert(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if st.Converted != 1 || st.Diamonds != 1 {
			t.Fatalf("r1=%d: stats %+v, want one diamond:\n%s", r1, st, out.Dump())
		}
		for i := range out.Insts {
			if out.Insts[i].Op.IsBranch() {
				t.Fatalf("r1=%d: a branch survived:\n%s", r1, out.Dump())
			}
		}
		ref := arch.MustRun(p, 1000)
		got := arch.MustRun(out, 1000)
		for _, pr := range st.FreshPredicates {
			ref.State.Write(pr, 0)
			got.State.Write(pr, 0)
		}
		if !ref.State.Equal(got.State) {
			t.Fatalf("r1=%d: diamond changed semantics: %s", r1, ref.State.Diff(got.State))
		}
	}
}

func TestIfConvertDiamondRejectsSharedElseTarget(t *testing.T) {
	// Another branch also jumps to the else arm: must not convert.
	p := program.MustAssemble("shared", `
        movi r9 = 2 ;;
top:    cmp.lt p1 = r1, r2 ;;
        (p1) br less ;;
        movi r3 = 100 ;;
        br join ;;
less:   movi r3 = 200 ;;
join:   addi r9 = r9, -1 ;;
        cmpi.ne p2 = r9, 0 ;;
        (p2) br less ;;
        halt ;;
`)
	_, st, err := IfConvert(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Diamonds != 0 {
		t.Errorf("shared else-target should not convert (diamonds=%d)", st.Diamonds)
	}
}
