package sched

import (
	"strings"
	"testing"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/isa"
	"fleaflicker/internal/program"
)

func TestSchedulePacksIndependentWork(t *testing.T) {
	p := program.MustAssemble("pack", `
        movi r1 = 1 ;;
        movi r2 = 2 ;;
        movi r3 = 3 ;;
        movi r4 = 4 ;;
        movi r5 = 5 ;;
        halt ;;
`)
	out, st, err := Schedule(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupsBefore != 6 {
		t.Errorf("GroupsBefore = %d, want 6", st.GroupsBefore)
	}
	// 5 independent movis fit one group (5 ALU units); halt may share it.
	if st.GroupsAfter > 2 {
		t.Errorf("GroupsAfter = %d, want ≤ 2 (got:\n%s)", st.GroupsAfter, out.Dump())
	}
}

func TestScheduleRespectsLatency(t *testing.T) {
	p := program.MustAssemble("lat", `
        movi r1 = 0x1000 ;;
        ld4 r2 = [r1] ;;
        add r3 = r2, r2 ;;
        halt ;;
`)
	out, _, err := Schedule(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The consumer may not share the load's issue group (empty cycles are
	// not encoded — the machine's interlock provides them — but a RAW pair
	// in one group would be architecturally wrong).
	group := 0
	var ldG, addG int
	for i := range out.Insts {
		switch out.Insts[i].Op {
		case isa.OpLd4:
			ldG = group
		case isa.OpAdd:
			addG = group
		}
		if out.Insts[i].Stop {
			group++
		}
	}
	if addG <= ldG {
		t.Errorf("consumer not scheduled after load:\n%s", out.Dump())
	}
}

func TestScheduleKeepsMemoryOrder(t *testing.T) {
	p := program.MustAssemble("memorder", `
        movi r1 = 0x1000
        movi r2 = 7 ;;
        st4 [r1] = r2 ;;
        ld4 r3 = [r1] ;;
        st4 [r1, 4] = r3 ;;
        halt ;;
`)
	out, _, err := Schedule(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Store, then load, then store — order must be preserved.
	var seq []isa.Op
	for i := range out.Insts {
		if op := out.Insts[i].Op; op.IsLoad() || op.IsStore() {
			seq = append(seq, op)
		}
	}
	want := []isa.Op{isa.OpSt4, isa.OpLd4, isa.OpSt4}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("memory order changed: %v", seq)
		}
	}
}

func TestScheduleRemapsBranches(t *testing.T) {
	p := program.MustAssemble("remap", `
        movi r1 = 0
        movi r2 = 10 ;;
loop:   addi r1 = r1, 1 ;;
        movi r5 = 1 ;;
        movi r6 = 2 ;;
        cmp.lt p1 = r1, r2 ;;
        (p1) br loop ;;
        halt ;;
`)
	out, _, err := Schedule(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.Labels["loop"] == 0 {
		t.Fatalf("loop label lost")
	}
	ref := arch.MustRun(p, 1_000_000)
	got := arch.MustRun(out, 1_000_000)
	if !ref.State.Equal(got.State) {
		t.Fatalf("scheduled program diverges: %s", ref.State.Diff(got.State))
	}
	if ref.Instructions != got.Instructions {
		t.Errorf("instruction count changed: %d -> %d", ref.Instructions, got.Instructions)
	}
}

func TestScheduleRejectsIndirect(t *testing.T) {
	p := program.MustAssemble("ind", `
        movi r1 = @x ;;
x:      br.ind r1 ;;
        halt ;;
`)
	if _, _, err := Schedule(p, DefaultConfig()); err == nil || !strings.Contains(err.Error(), "br.ind") {
		t.Errorf("br.ind should be rejected, got %v", err)
	}
}

func TestScheduleCallRet(t *testing.T) {
	p := program.MustAssemble("call", `
        movi r10 = 3 ;;
        br.call r63 = fn ;;
        mov r11 = r10 ;;
        halt ;;
fn:     add r10 = r10, r10 ;;
        br.ret r63 ;;
`)
	out, _, err := Schedule(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := arch.MustRun(p, 1_000_000)
	got := arch.MustRun(out, 1_000_000)
	if !ref.State.Equal(got.State) {
		t.Fatalf("call/ret broke under scheduling: %s", ref.State.Diff(got.State))
	}
}
