package sched_test

import (
	"testing"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/baseline"
	"fleaflicker/internal/program"
	"fleaflicker/internal/sched"
	"fleaflicker/internal/twopass"
	"fleaflicker/internal/workload"
)

func DefaultConfig() sched.Config { return sched.DefaultConfig() }

func Schedule(p *program.Program, cfg sched.Config) (*program.Program, *sched.Stats, error) {
	return sched.Schedule(p, cfg)
}

func MustSchedule(p *program.Program, cfg sched.Config) *program.Program {
	return sched.MustSchedule(p, cfg)
}

// The heavyweight property: scheduling random programs preserves semantics
// on the reference executor AND on both timed machines, while increasing
// issue-group density.
func TestScheduledRandomProgramsEquivalent(t *testing.T) {
	rcfg := workload.DefaultRandomConfig()
	rcfg.Calls = true
	seeds := []int64{101, 102, 103, 104, 105, 106}
	if testing.Short() {
		seeds = seeds[:2]
	}
	denser := 0
	for _, seed := range seeds {
		p := workload.Random(seed, rcfg)
		out, st, err := Schedule(p, DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.GroupsAfter < st.GroupsBefore {
			denser++
		}
		ref := arch.MustRun(p, 50_000_000)
		got := arch.MustRun(out, 50_000_000)
		if !ref.State.Equal(got.State) {
			t.Fatalf("seed %d: scheduled program diverges on arch: %s", seed, ref.State.Diff(got.State))
		}

		bm, err := baseline.New(baseline.DefaultConfig(), out)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := bm.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bm.State().Equal(ref.State) {
			t.Fatalf("seed %d: baseline diverges on scheduled program: %s", seed, bm.State().Diff(ref.State))
		}

		tm, err := twopass.New(twopass.DefaultConfig(), out)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := tm.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !tm.State().Equal(ref.State) {
			t.Fatalf("seed %d: two-pass diverges on scheduled program: %s", seed, tm.State().Diff(ref.State))
		}
	}
	if denser == 0 {
		t.Errorf("scheduling never increased group density")
	}
}

func TestScheduledProgramsRunFaster(t *testing.T) {
	// Denser groups should reduce baseline cycles on a compute-heavy
	// random program (small footprint: few cache misses).
	rcfg := workload.DefaultRandomConfig()
	rcfg.ArrayBytes = 4 << 10
	p := workload.Random(200, rcfg)
	out := MustSchedule(p, DefaultConfig())

	run := func(q *program.Program) int64 {
		m, err := baseline.New(baseline.DefaultConfig(), q)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	before, after := run(p), run(out)
	if after >= before {
		t.Errorf("scheduled program not faster: %d -> %d cycles", before, after)
	}
	t.Logf("baseline cycles %d -> %d after scheduling", before, after)
}

// If-conversion followed by scheduling must preserve semantics on random
// programs, across the reference executor and both timed machines.
func TestIfConvertedRandomProgramsEquivalent(t *testing.T) {
	seeds := []int64{501, 502, 503, 504, 505}
	if testing.Short() {
		seeds = seeds[:2]
	}
	converted := 0
	for _, seed := range seeds {
		p := workload.Random(seed, workload.DefaultRandomConfig())
		conv, st, err := sched.IfConvert(p, 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		converted += st.Converted
		out := MustSchedule(conv, sched.DefaultConfig())

		ref := arch.MustRun(p, 50_000_000)
		got := arch.MustRun(out, 50_000_000)
		// The fresh complement predicates are new architectural state;
		// neutralize them before comparing.
		mask := func(s *arch.State) {
			for _, pr := range st.FreshPredicates {
				s.Write(pr, 0)
			}
		}
		mask(ref.State)
		mask(got.State)
		if !ref.State.Equal(got.State) {
			t.Fatalf("seed %d: if-convert+schedule diverges: %s", seed, ref.State.Diff(got.State))
		}
		tm, err := twopass.New(twopass.DefaultConfig(), out)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := tm.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mask(tm.State())
		if !tm.State().Equal(ref.State) {
			t.Fatalf("seed %d: two-pass diverges on converted program: %s", seed, tm.State().Diff(ref.State))
		}
		bm, err := baseline.New(baseline.DefaultConfig(), out)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := bm.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mask(bm.State())
		if !bm.State().Equal(ref.State) {
			t.Fatalf("seed %d: baseline diverges on converted program: %s", seed, bm.State().Diff(ref.State))
		}
	}
	if converted == 0 {
		t.Errorf("no hammock in any random program converted; generator or pass too conservative")
	} else {
		t.Logf("converted %d hammocks across %d random programs", converted, len(seeds))
	}
}
