package sched

import (
	"fmt"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/program"
)

// IfConvertStats summarizes an if-conversion pass.
type IfConvertStats struct {
	Converted       int // hammocks converted (branches removed)
	Diamonds        int // of which full if/else diamonds
	PredicatedInsts int // instructions that became predicated
	// FreshPredicates lists the previously-unused predicate registers the
	// pass claimed for complements; they are new architectural state the
	// original program never writes.
	FreshPredicates []isa.Reg
}

// IfConvert is a hyperblock-style if-conversion pass in the spirit of the
// paper's IMPACT compiler: short forward-branch hammocks
//
//	     cmp.xx p = a, b
//	     (p) br join
//	     <a few unpredicated, branch-free instructions>
//	join:
//
// are rewritten by inserting an inverted compare into a fresh predicate
// register next to the original and predicating the hammock body on it,
// then deleting the branch. Predication is central to the paper's EPIC
// argument: converted code trades a branch (whose misprediction may resolve
// expensively at B-DET on the two-pass machine) for predicated instructions
// that need no control speculation at all.
//
// The original predicate and compare are left untouched, so no other reader
// anywhere in the program is affected. A hammock converts only when:
//   - the branch is conditional, forward, and its body has at most maxBody
//     instructions, all unpredicated and branch/halt-free;
//   - the predicate's defining compare is an unpredicated, invertible
//     integer register compare in the same straight-line run (immediates
//     lack reversed forms; floating-point inversion is unsound under NaN);
//   - no branch targets the interior of (definition, join), so every
//     execution of the body passes through the inserted complement;
//   - a predicate register unused anywhere in the program is available.
//
// Programs containing br.ind are rejected for the same reason as Schedule.
func IfConvert(p *program.Program, maxBody int) (*program.Program, *IfConvertStats, error) {
	for i := range p.Insts {
		if p.Insts[i].Op == isa.OpBrInd {
			return nil, nil, fmt.Errorf("sched: if-conversion cannot remap br.ind targets (program %q)", p.Name)
		}
	}
	st := &IfConvertStats{}
	insts := p.Insts

	isTarget := make([]bool, len(insts)+1)
	for i := range insts {
		in := &insts[i]
		if in.Op.IsBranch() && in.Op != isa.OpBrRet {
			isTarget[in.Target] = true
		}
	}
	isTarget[p.Entry] = true

	freePreds := unusedPredicates(insts)

	// targetCount[t] counts branches targeting t, to verify single-entry
	// else-regions in diamonds.
	targetCount := make(map[int32]int)
	for i := range insts {
		in := &insts[i]
		if in.Op.IsBranch() && in.Op != isa.OpBrRet {
			targetCount[in.Target]++
		}
	}

	// Plan conversions: dropBranch marks deleted branches; cloneAfter[def]
	// holds inverted compares to insert immediately after their original;
	// regions lists the [from, to) half-open ranges to predicate.
	dropBranch := make([]bool, len(insts))
	cloneAfter := make(map[int][]isa.Inst)
	type region struct {
		from, to int
		pred     isa.Reg
	}
	var regions []region

	for i := range insts {
		br := &insts[i]
		if br.Op != isa.OpBr || br.Pred == isa.P(0) || dropBranch[i] {
			continue
		}
		if len(freePreds) == 0 {
			break
		}
		l1 := int(br.Target)
		if l1 <= i+1 {
			continue
		}
		def := findDef(insts, i, br.Pred)
		if def < 0 {
			continue
		}
		inv, ok := invertCompare(insts[def])
		if !ok {
			continue
		}

		// Try the plain hammock first: (p) br join; A...; join:
		if l1-i-1 <= maxBody &&
			bodyConvertible(insts, i+1, l1) &&
			!interiorTargeted(isTarget, def+1, l1) {
			pNew := claimPred(&freePreds, st)
			inv.Dst = pNew
			inv.Stop = false
			cloneAfter[def] = append(cloneAfter[def], inv)
			dropBranch[i] = true
			regions = append(regions, region{i + 1, l1, pNew})
			st.Converted++
			st.PredicatedInsts += l1 - i - 1
			continue
		}

		// Full diamond: (p) br L1; A...; br L2; L1: B...; L2:
		// A executes under ¬p, B under the original p.
		j := l1 - 1 // the then-side's terminating jump
		if j <= i || insts[j].Op != isa.OpBr || insts[j].Pred != isa.P(0) || dropBranch[j] {
			continue
		}
		l2 := int(insts[j].Target)
		if l2 <= l1 || j-i-1 > maxBody || l2-l1 > maxBody {
			continue
		}
		if !bodyConvertible(insts, i+1, j) || !bodyConvertible(insts, l1, l2) {
			continue
		}
		// Both arms must be single-entry: nothing else may branch into
		// (def, L2) — the only permitted interior target is L1, reached
		// solely by this conversion's own branch.
		if targetCount[int32(l1)] != 1 {
			continue
		}
		if e := int(p.Entry); e > def && e < l2 {
			continue
		}
		interior := false
		for k := def + 1; k < l2; k++ {
			if k != l1 && isTarget[k] {
				interior = true
				break
			}
		}
		if interior {
			continue
		}
		pNew := claimPred(&freePreds, st)
		inv.Dst = pNew
		inv.Stop = false
		cloneAfter[def] = append(cloneAfter[def], inv)
		dropBranch[i] = true
		dropBranch[j] = true
		regions = append(regions, region{i + 1, j, pNew})
		regions = append(regions, region{l1, l2, br.Pred})
		st.Converted++
		st.Diamonds++
		st.PredicatedInsts += (j - i - 1) + (l2 - l1)
	}
	if st.Converted == 0 {
		out := *p
		out.Insts = append([]isa.Inst(nil), insts...)
		return &out, st, nil
	}

	// Rebuild: apply body predication, drop branches, insert clones, and
	// remap every positional reference.
	predicateUnder := make([]isa.Reg, len(insts)) // body index -> qualifying pred
	for i := range predicateUnder {
		predicateUnder[i] = isa.RegNone
	}
	for _, reg := range regions {
		for k := reg.from; k < reg.to; k++ {
			if !dropBranch[k] {
				predicateUnder[k] = reg.pred
			}
		}
	}

	out := &program.Program{Name: p.Name, Labels: make(map[string]int32, len(p.Labels)), Data: p.Data}
	newIdx := make([]int32, len(insts)+1)
	for i := range insts {
		newIdx[i] = int32(len(out.Insts))
		if dropBranch[i] {
			// Preserve the deleted branch's stop bit on its predecessor
			// so issue groups do not illegally merge across it.
			if insts[i].Stop && len(out.Insts) > 0 {
				out.Insts[len(out.Insts)-1].Stop = true
			}
			continue
		}
		in := insts[i]
		if q := predicateUnder[i]; q != isa.RegNone {
			in.Pred = q
		}
		out.Insts = append(out.Insts, in)
		if clones := cloneAfter[i]; len(clones) > 0 {
			// Each clone forms its own issue group, and the original's
			// group is cut at the original (splitting groups is always
			// legal and never oversubscribes resources); the scheduler
			// re-densifies afterwards.
			out.Insts[len(out.Insts)-1].Stop = true
			for _, clone := range clones {
				clone.Stop = true
				out.Insts = append(out.Insts, clone)
			}
		}
	}
	newIdx[len(insts)] = int32(len(out.Insts))
	for i := range out.Insts {
		in := &out.Insts[i]
		if in.Op.IsBranch() && in.Op != isa.OpBrRet && in.Op != isa.OpBrInd {
			in.Target = newIdx[in.Target]
		}
	}
	for name, l := range p.Labels {
		out.Labels[name] = newIdx[l]
	}
	out.Entry = newIdx[p.Entry]
	if n := len(out.Insts); n > 0 {
		out.Insts[n-1].Stop = true
	}
	return out, st, nil
}

// claimPred pops a fresh predicate register and records it.
func claimPred(free *[]isa.Reg, st *IfConvertStats) isa.Reg {
	p := (*free)[len(*free)-1]
	*free = (*free)[:len(*free)-1]
	st.FreshPredicates = append(st.FreshPredicates, p)
	return p
}

// unusedPredicates returns the predicate registers never referenced by the
// program (candidates for the inserted complements).
func unusedPredicates(insts []isa.Inst) []isa.Reg {
	used := make(map[isa.Reg]bool)
	var srcs []isa.Reg
	for i := range insts {
		in := &insts[i]
		used[in.Pred] = true
		if in.HasDest() {
			used[in.Dst] = true
		}
		srcs = in.Sources(srcs[:0])
		for _, s := range srcs {
			used[s] = true
		}
	}
	var free []isa.Reg
	for i := 1; i < isa.NumPredRegs; i++ {
		if !used[isa.P(i)] {
			free = append(free, isa.P(i))
		}
	}
	return free
}

// bodyConvertible checks the hammock body [start, end).
func bodyConvertible(insts []isa.Inst, start, end int) bool {
	if end > len(insts) {
		return false
	}
	for k := start; k < end; k++ {
		in := &insts[k]
		if in.Op.IsBranch() || in.Op == isa.OpHalt || in.Pred != isa.P(0) {
			return false
		}
	}
	return true
}

// findDef locates the predicate's defining compare: the nearest earlier
// write in the same straight-line run (crossing no control-flow
// instruction, which could make the definition non-dominating).
func findDef(insts []isa.Inst, branch int, pred isa.Reg) int {
	for k := branch - 1; k >= 0; k-- {
		in := &insts[k]
		if in.HasDest() && in.Dst == pred {
			if in.Pred != isa.P(0) {
				return -1
			}
			return k
		}
		if in.Op.IsBranch() || in.Op == isa.OpHalt {
			return -1
		}
	}
	return -1
}

// interiorTargeted reports whether any branch lands strictly inside
// (from, to) — which would let control reach the body without passing the
// inserted complement.
func interiorTargeted(isTarget []bool, from, to int) bool {
	for k := from; k < to; k++ {
		if isTarget[k] {
			return true
		}
	}
	return false
}

// invertCompare returns the logical complement of a compare instruction.
func invertCompare(in isa.Inst) (isa.Inst, bool) {
	out := in
	switch in.Op {
	case isa.OpCmpEq:
		out.Op = isa.OpCmpNe
	case isa.OpCmpNe:
		out.Op = isa.OpCmpEq
	case isa.OpCmpEqI:
		out.Op = isa.OpCmpNeI
	case isa.OpCmpNeI:
		out.Op = isa.OpCmpEqI
	case isa.OpCmpLt: // ¬(a<b) ⟺ b≤a
		out.Op = isa.OpCmpLe
		out.Src1, out.Src2 = in.Src2, in.Src1
	case isa.OpCmpLe:
		out.Op = isa.OpCmpLt
		out.Src1, out.Src2 = in.Src2, in.Src1
	case isa.OpCmpLtU:
		out.Op = isa.OpCmpLeU
		out.Src1, out.Src2 = in.Src2, in.Src1
	case isa.OpCmpLeU:
		out.Op = isa.OpCmpLtU
		out.Src1, out.Src2 = in.Src2, in.Src1
	default:
		return in, false
	}
	return out, true
}
