package baseline

import (
	"fmt"

	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/isa"
)

// Checkpoint support. The baseline is functional-at-dispatch, so its whole
// machine state beyond the shared pieces (memory image, caches, predictor,
// front-end stream counters) is the per-register scoreboard. Snapshots are
// taken at drain barriers: when a snapshot is due, fetch pauses until every
// fetched group has dispatched, the quiesced state is captured, and fetch
// restarts at the architectural PC — so the producing run and a run resumed
// from the snapshot see identical futures.

const scoreboardSection = "baseline.scoreboard"

// ConfigureSnapshots implements core.Snapshotter: capture a KindMachine
// snapshot at the first drain barrier after every `every` retired
// instructions. Call after RestoreSnapshot (if any) and before Run.
func (m *Machine) ConfigureSnapshots(every int64, fn func(*checkpoint.Snapshot)) {
	m.snapEvery = every
	m.onSnap = fn
	m.nextSnap = every
	for m.nextSnap <= m.retired {
		m.nextSnap += every
	}
}

// snapshotDue reports whether the machine has crossed its snapshot interval
// and should begin draining toward a barrier. It runs every cycle of the
// Run loop, so it must stay allocation-free and inlinable.
//
//flea:hotpath
//flea:inline
//flea:noescape
func (m *Machine) snapshotDue() bool {
	return m.snapEvery > 0 && !m.draining && m.retired >= m.nextSnap
}

// RestoreSnapshot implements core.Snapshotter. A KindFunctional snapshot
// fast-forwards the architectural state (registers, memory, PC, retired
// count) and leaves timing structures cold; a KindMachine snapshot must come
// from a baseline machine and reinstates everything.
func (m *Machine) RestoreSnapshot(snap *checkpoint.Snapshot) error {
	if snap.Program != "" && snap.Program != m.prog.Name {
		return fmt.Errorf("baseline: snapshot is for program %q, machine runs %q", snap.Program, m.prog.Name)
	}
	m.st.Regs = snap.Regs
	m.st.Mem = snap.Mem.Image()
	m.retired = snap.Retired
	m.archPC = snap.PC
	m.resume = snap

	switch snap.Kind {
	case checkpoint.KindFunctional:
		// Timing state stays cold; start fetching at the snapshot PC on
		// cycle 0.
		//flea:handoff Redirect returns every in-flight group's records to the arena before refetching
		m.fe.Redirect(snap.PC, -1)
		return nil
	case checkpoint.KindMachine:
		if snap.Model != modelTag {
			return fmt.Errorf("baseline: snapshot is from model %q", snap.Model)
		}
		m.now = snap.Cycle
		if err := m.hier.RestoreState(snap.Hier); err != nil {
			return err
		}
		if err := m.fe.Predictor().RestoreState(snap.Pred); err != nil {
			return err
		}
		m.fe.RestoreStream(snap.FeNextID, snap.FeFetchStalls)
		//flea:handoff Redirect returns every in-flight group's records to the arena before refetching
		m.fe.Redirect(snap.PC, snap.Cycle)
		b, ok := snap.Section(scoreboardSection)
		if !ok {
			return fmt.Errorf("baseline: snapshot has no %s section", scoreboardSection)
		}
		d := checkpoint.NewDecoder(b)
		for r := range m.ready {
			m.ready[r] = d.I64()
			m.loadProducer[r] = d.Bool()
		}
		return d.Err()
	}
	return fmt.Errorf("baseline: unknown snapshot kind %d", snap.Kind)
}

// primeCounters seeds the metrics registry with the snapshot's counter values
// so end-of-run aggregates equal prefix + delta. Runs in the Run prologue —
// after Attach, which may have swapped the registry.
func (m *Machine) primeCounters() {
	if m.resume == nil {
		return
	}
	reg := m.col.Registry()
	for _, c := range m.resume.Counters {
		reg.RestoreCounter(c.Name, c.Value)
	}
	m.resume = nil
}

// takeSnapshot captures the quiesced machine at a drain barrier (fetch queue
// empty, every dispatched instruction retired).
func (m *Machine) takeSnapshot() {
	s := &checkpoint.Snapshot{
		Kind:    checkpoint.KindMachine,
		Model:   modelTag,
		Program: m.prog.Name,
		Cycle:   m.now,
		Retired: m.retired,
		PC:      m.archPC,
		Regs:    m.st.Regs,
		Mem:     m.st.Mem.Snapshot(),
		Hier:    m.hier.CaptureState(),
		Pred:    m.fe.Predictor().CaptureState(),
	}
	s.FeNextID, s.FeFetchStalls = m.fe.StreamState()
	var cs []checkpoint.Counter
	m.col.Registry().EachCounter(func(name string, value int64) {
		cs = append(cs, checkpoint.Counter{Name: name, Value: value})
	})
	s.SetCounters(cs)
	e := checkpoint.NewEncoder(isa.NumRegs * 9)
	for r := range m.ready {
		e.I64(m.ready[r])
		e.Bool(m.loadProducer[r])
	}
	s.AddSection(scoreboardSection, e.Bytes())
	for m.nextSnap <= m.retired {
		m.nextSnap += m.snapEvery
	}
	if m.onSnap != nil {
		m.onSnap(s)
	}
}
