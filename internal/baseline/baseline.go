// Package baseline implements the reference in-order EPIC machine of the
// paper's evaluation: an 8-issue, Itanium-2-like pipeline (one stage longer,
// per §4) that stalls an entire issue group in the REG stage whenever any
// instruction in it has an unready operand — the group-granularity
// "artificial dependence" behaviour that two-pass pipelining removes.
//
// The machine is functional-at-dispatch: instruction results are computed
// architecturally the cycle their group dispatches, while a per-register
// scoreboard carries the timing (a value written with latency L may not be
// consumed for L cycles). Because dispatch is strictly in program order this
// yields exact architectural state, verified against internal/arch.
package baseline

import (
	"context"
	"fmt"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/bpred"
	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/metrics"
	"fleaflicker/internal/pipeline"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
)

// Config parameterizes the machine.
type Config struct {
	Front      pipeline.Config
	Mem        mem.Config
	Bpred      bpred.Config
	IssueWidth int
	FUs        [isa.NumFUClasses]int
	// MaxCycles aborts runaway simulations.
	MaxCycles int64
	// Arena, when non-nil, supplies the machine's DynInst storage so
	// back-to-back simulations reuse records (see pipeline.NewFrontEnd).
	Arena *pipeline.Arena `json:"-"`
}

// DefaultConfig returns the Table 1 machine.
func DefaultConfig() Config {
	return Config{
		Front:      pipeline.DefaultConfig(),
		Mem:        mem.DefaultConfig(),
		Bpred:      bpred.DefaultConfig(),
		IssueWidth: 8,
		FUs:        [isa.NumFUClasses]int{isa.ClassALU: 5, isa.ClassMEM: 3, isa.ClassFP: 3, isa.ClassBR: 3},
		MaxCycles:  2_000_000_000,
	}
}

// Machine is one baseline simulation instance.
type Machine struct {
	cfg  Config
	prog *program.Program
	fe   *pipeline.FrontEnd
	hier *mem.Hierarchy
	st   *arch.State

	// ready[r] is the first cycle register r's pending value may be
	// consumed; loadProducer[r] records whether that value comes from a
	// load (for stall classification).
	ready        [isa.NumRegs]int64
	loadProducer [isa.NumRegs]bool

	// arena recycles DynInst records; srcScratch and addrScratch are
	// reusable groupBlocked buffers. Together they keep the cycle loop
	// allocation-free.
	arena       *pipeline.Arena
	srcScratch  []isa.Reg
	addrScratch []uint32

	now    int64
	halted bool
	col    *stats.Collector
	tr     *trace.Tracer
	ctx    context.Context

	// Checkpoint state (see snapshot.go). retired counts architecturally
	// retired instructions; archPC tracks the next architectural PC so a
	// drain barrier knows where to restart fetch.
	retired   int64
	archPC    int32
	snapEvery int64
	nextSnap  int64
	draining  bool
	onSnap    func(*checkpoint.Snapshot)
	resume    *checkpoint.Snapshot
}

// modelTag identifies baseline machine snapshots.
const modelTag = "base"

// New builds a machine over a fresh copy of the program's memory. The
// program must satisfy Validate for the configured widths.
func New(cfg Config, prog *program.Program) (*Machine, error) {
	if err := prog.Validate(cfg.IssueWidth, cfg.FUs); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	hier := mem.NewHierarchy(cfg.Mem)
	m := &Machine{
		cfg:  cfg,
		prog: prog,
		fe:   pipeline.NewFrontEnd(cfg.Front, prog, hier, bpred.New(cfg.Bpred), cfg.Arena),
		hier: hier,
		st:   arch.NewState(prog.InitialImage()),
	}
	m.arena = m.fe.Arena()
	m.col = stats.NewCollector(metrics.NewRegistry(), prog.Name, "base")
	return m, nil
}

// State exposes the architectural state (for correctness comparison).
func (m *Machine) State() *arch.State { return m.st }

// Attach binds the machine's observability before Run: ctx cancels the
// cycle loop, reg (when non-nil) replaces the private metrics registry, and
// tr (which may be nil) receives trace events. Must not be called after Run
// has started.
func (m *Machine) Attach(ctx context.Context, reg *metrics.Registry, tr *trace.Tracer) {
	if reg != nil {
		m.col = stats.NewCollector(reg, m.prog.Name, "base")
	}
	m.ctx = ctx
	m.tr = tr
}

// Run simulates to completion and returns the measurements.
func (m *Machine) Run() (*stats.Run, error) {
	m.primeCounters()
	for !m.halted {
		if m.now >= m.cfg.MaxCycles {
			return nil, fmt.Errorf("baseline: %q exceeded %d cycles", m.prog.Name, m.cfg.MaxCycles)
		}
		if m.ctx != nil && m.now&4095 == 0 {
			if err := m.ctx.Err(); err != nil {
				return nil, fmt.Errorf("baseline: %q: %w", m.prog.Name, err)
			}
		}
		if m.draining {
			// Fetch pauses until every fetched group has dispatched; then the
			// machine is quiesced and the snapshot is architecturally exact.
			if !m.fe.Pending() {
				m.takeSnapshot()
				m.fe.Redirect(m.archPC, m.now)
				m.draining = false
			}
		} else {
			m.fe.Tick(m.now)
		}
		m.step()
		if m.snapshotDue() {
			m.draining = true
		}
		m.now++
	}
	r := m.col.Snapshot(m.hier.Stats())
	if err := r.CheckInvariants(); err != nil {
		return nil, err
	}
	return r, nil
}

// step attempts to dispatch the head issue group and classifies the cycle.
//
//flea:hotpath
func (m *Machine) step() {
	g := m.fe.Head(m.now)
	if g == nil {
		m.col.Cycle(stats.FrontEndStall)
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvStall, Pipe: trace.PipeFront,
				PC: -1, Arg: int64(stats.FrontEndStall), Note: stats.FrontEndStall.String()})
		}
		return
	}
	if cls, blocked := m.groupBlocked(g); blocked {
		m.col.Cycle(cls)
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvStall, Pipe: trace.PipeA,
				PC: g.FetchPC, Arg: int64(cls), Note: cls.String()})
		}
		return
	}
	m.fe.Pop() // before dispatch: a mispredicted branch flushes the queue
	m.dispatch(g)
	m.arena.PutAll(g.Insts) // the group retires (or squashes) whole
	g.Insts = g.Insts[:0]
	m.col.Cycle(stats.Unstalled)
}

// groupBlocked applies the REG-stage interlocks: every source of every
// instruction in the group must be ready (group-granularity stall), every
// destination must be free of a pending longer-latency write (the WAW stall
// condition typical of EPIC scoreboards, §3.3), and the memory system must
// be able to accept the group's loads.
//
//flea:hotpath
func (m *Machine) groupBlocked(g *pipeline.Group) (stats.CycleClass, bool) {
	blockedUntil := int64(-1)
	blockedByLoad := false
	consider := func(r isa.Reg) {
		if r == isa.RegNone || r.Hardwired() {
			return
		}
		if t := m.ready[r]; t > m.now && t > blockedUntil {
			blockedUntil = t
			blockedByLoad = m.loadProducer[r]
		}
	}
	srcs := m.srcScratch
	for _, d := range g.Insts {
		srcs = d.In.Sources(srcs[:0])
		for _, s := range srcs {
			consider(s)
		}
		if d.In.HasDest() {
			consider(d.In.Dst)
		}
	}
	m.srcScratch = srcs
	if blockedUntil > m.now {
		if blockedByLoad {
			return stats.LoadStall, true
		}
		return stats.NonLoadDepStall, true
	}
	// Operands ready: compute load addresses to check outstanding-load
	// capacity as a group. (Address operands are ready by construction
	// here.)
	addrs := m.addrScratch[:0]
	for _, d := range g.Insts {
		if !d.In.Op.IsLoad() || m.st.Read(d.In.Pred) == 0 {
			continue
		}
		addrs = append(addrs, isa.EffectiveAddress(m.st.Read(d.In.Src1), d.In.Imm))
	}
	m.addrScratch = addrs
	if len(addrs) > 0 && !m.hier.CanAcceptLoads(addrs, m.now) {
		return stats.ResourceStall, true
	}
	return 0, false
}

// dispatch executes an issue group whose operands are all ready.
//
//flea:hotpath
func (m *Machine) dispatch(g *pipeline.Group) {
	for _, d := range g.Insts {
		in := d.In
		m.col.Instruction()
		m.retired++
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvDispatch, Pipe: trace.PipeA,
				ID: d.ID, PC: d.PC, Note: in.String()})
		}
		predOn := m.st.Read(in.Pred) != 0

		if in.Op.IsBranch() || in.Op == isa.OpHalt {
			if m.resolveBranch(d, predOn) {
				return // squash younger same-group instructions
			}
			continue
		}
		m.archPC = d.PC + 1
		if !predOn {
			continue // retires as a no-op
		}
		switch {
		case in.Op == isa.OpNop:
		case in.Op.IsLoad():
			addr := isa.EffectiveAddress(m.st.Read(in.Src1), in.Imm)
			lat, lvl := m.hier.Load(addr, m.now)
			m.col.Access(lvl, stats.PipeA, m.hier.Levels())
			m.st.Write(in.Dst, m.st.Mem.Read(addr, in.Op.MemSize()))
			m.setReady(in.Dst, m.now+int64(lat), true)
		case in.Op.IsStore():
			addr := isa.EffectiveAddress(m.st.Read(in.Src1), in.Imm)
			m.st.Mem.Write(addr, in.Op.MemSize(), m.st.Read(in.Src2))
			m.hier.Store(addr, m.now)
			m.col.StoreCommitted()
		default:
			m.st.Write(in.Dst, isa.Eval(in.Op, m.st.Read(in.Src1), m.st.Read(in.Src2), in.Imm))
			m.setReady(in.Dst, m.now+int64(in.Op.Latency()), false)
		}
	}
}

//flea:hotpath
func (m *Machine) setReady(r isa.Reg, at int64, fromLoad bool) {
	if r == isa.RegNone || r.Hardwired() {
		return
	}
	m.ready[r] = at
	m.loadProducer[r] = fromLoad
}

// resolveBranch executes a branch (or halt), trains the predictor, and
// redirects the front end on a misprediction. It reports whether younger
// instructions in the same group must be squashed.
//
//flea:hotpath
func (m *Machine) resolveBranch(d *pipeline.DynInst, predOn bool) (squash bool) {
	in := d.In
	if in.Op == isa.OpHalt {
		m.halted = true
		return true
	}
	taken := false
	target := d.PC + 1
	if predOn {
		switch in.Op {
		case isa.OpBr:
			taken, target = true, in.Target
		case isa.OpBrCall:
			taken, target = true, in.Target
			m.st.Write(in.Dst, isa.Value(uint32(d.PC+1)))
			m.setReady(in.Dst, m.now+1, false)
		case isa.OpBrRet, isa.OpBrInd:
			taken = true
			target = int32(uint32(m.st.Read(in.Src1)))
		}
	}
	actualNext := d.PC + 1
	if taken {
		actualNext = target
	}
	m.archPC = actualNext
	// Train the predictor.
	pred := m.fe.Predictor()
	if d.HasCP {
		pred.Resolve(d.PC, d.CP, d.PredTaken, taken)
	}
	if in.Op == isa.OpBrRet || in.Op == isa.OpBrInd {
		if taken {
			pred.UpdateIndirect(d.PC, target)
		}
	}
	mispredicted := actualNext != d.NextPC || d.NoPrediction
	if m.tr.Enabled() {
		var arg int64
		if mispredicted {
			arg = 1
		}
		m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvBranchResolve, Pipe: trace.PipeA,
			ID: d.ID, PC: d.PC, Arg: arg, Note: in.String()})
	}
	if !mispredicted {
		return false // correctly predicted
	}
	// Misprediction (or an unpredicted indirect): redirect at DET.
	m.col.MispredictA()
	m.fe.Redirect(actualNext, m.now+pipeline.DETOffset)
	return true
}
