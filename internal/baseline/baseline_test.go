package baseline

import (
	"fmt"
	"strings"
	"testing"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/workload"
)

// runBoth executes src on the reference executor and the baseline machine
// and fails the test unless the final architectural states match.
func runBoth(t *testing.T, src string) *stats.Run {
	t.Helper()
	p, err := program.Assemble(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := arch.Run(p, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !m.State().Equal(ref.State) {
		t.Fatalf("baseline state diverges from reference: %s", m.State().Diff(ref.State))
	}
	if r.Instructions != ref.Instructions {
		t.Errorf("retired %d instructions, reference retired %d", r.Instructions, ref.Instructions)
	}
	return r
}

func TestSumLoopMatchesReference(t *testing.T) {
	r := runBoth(t, `
        .data 0x10000000
result: .word 0
        .text
        movi r1 = 0
        movi r2 = 1
        movi r3 = 100
        movi r4 = result ;;
loop:   add r1 = r1, r2
        cmp.lt p1 = r2, r3 ;;
        addi r2 = r2, 1
        (p1) br loop ;;
        st4 [r4] = r1 ;;
        halt ;;
`)
	if r.Cycles <= 0 || r.IPC() <= 0 {
		t.Errorf("implausible cycles=%d ipc=%f", r.Cycles, r.IPC())
	}
}

func TestPredicationMatchesReference(t *testing.T) {
	runBoth(t, `
        movi r1 = 5
        movi r2 = 7
        movi r10 = 0x2000 ;;
        cmp.lt p1 = r1, r2
        cmp.lt p2 = r2, r1 ;;
        (p1) movi r3 = 111
        (p2) movi r4 = 222
        (p1) st4 [r10] = r2
        (p2) st4 [r10, 4] = r2 ;;
        halt ;;
`)
}

func TestCallRetMatchesReference(t *testing.T) {
	runBoth(t, `
        movi r10 = 3
        movi r20 = 0 ;;
loop:   br.call r63 = double ;;
        addi r20 = r20, 1 ;;
        cmpi.lt p1 = r20, 4 ;;
        (p1) br loop ;;
        halt ;;
double: add r10 = r10, r10 ;;
        br.ret r63 ;;
`)
}

func TestPointerChaseMatchesReference(t *testing.T) {
	// Build a linked list in the data section: node = {next, value}.
	var b strings.Builder
	b.WriteString("        .data 0x10000000\n")
	const nodes = 64
	for i := 0; i < nodes; i++ {
		next := 0x10000000 + ((i*17+5)%nodes)*8
		if i == nodes-1 {
			next = 0
		}
		fmt.Fprintf(&b, "        .word %d, %d\n", next, i*3)
	}
	b.WriteString(`
        .text
        movi r1 = 0x10000000
        movi r2 = 0 ;;
loop:   ld4 r3 = [r1, 4] ;;
        ld4 r1 = [r1]
        add r2 = r2, r3 ;;
        cmpi.ne p1 = r1, 0 ;;
        (p1) br loop ;;
        movi r4 = 0x20000000 ;;
        st4 [r4] = r2 ;;
        halt ;;
`)
	r := runBoth(t, b.String())
	// A dependent pointer chase over cold memory must be dominated by
	// load stalls.
	if r.ByClass[stats.LoadStall] == 0 {
		t.Errorf("pointer chase recorded no load stalls")
	}
}

func TestLoadUseLatencyTiming(t *testing.T) {
	// Two runs: one with a dependent consumer immediately after a (warm)
	// load, one with the consumer pre-satisfied. The difference must be
	// the L1 hit latency minus the 1-cycle dispatch.
	base := `
        movi r1 = 0x8000 ;;
        ld4 r2 = [r1] ;;     // warm-up line (cold miss)
        add r9 = r2, r2 ;;   // drain the miss
        ld4 r3 = [r1] ;;     // L1 hit
        %s
        halt ;;
`
	dep := runBoth(t, fmt.Sprintf(base, "add r4 = r3, r3 ;;"))
	indep := runBoth(t, fmt.Sprintf(base, "add r4 = r1, r1 ;;"))
	diff := dep.Cycles - indep.Cycles
	if diff != 1 { // L1 latency 2 = 1 dispatch + 1 stall
		t.Errorf("dependent consumer cost %d extra cycles, want 1", diff)
	}
	if dep.ByClass[stats.LoadStall] != indep.ByClass[stats.LoadStall]+1 {
		t.Errorf("extra cycle not classified as load stall")
	}
}

func TestColdMissStallsRoughlyMemoryLatency(t *testing.T) {
	r := runBoth(t, `
        movi r1 = 0x40000 ;;
        ld4 r2 = [r1] ;;
        add r3 = r2, r2 ;;
        halt ;;
`)
	if r.ByClass[stats.LoadStall] < 140 || r.ByClass[stats.LoadStall] > 146 {
		t.Errorf("cold-miss stall = %d cycles, want ≈144", r.ByClass[stats.LoadStall])
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	// Two independent cold misses issued in one group overlap; the same
	// two misses serialized by a data dependence do not. (Both runs pay
	// identical cold I-cache costs, so the difference isolates overlap.)
	overlap := runBoth(t, `
        movi r1 = 0x40000
        movi r2 = 0x50000 ;;
        ld4 r3 = [r1]
        ld4 r4 = [r2] ;;
        add r5 = r3, r4 ;;
        halt ;;
`)
	serial := runBoth(t, `
        movi r1 = 0x40000
        movi r2 = 0x50000 ;;
        ld4 r3 = [r1] ;;
        and r6 = r3, r0 ;;       // r6 = 0, but depends on r3
        add r7 = r6, r2 ;;
        ld4 r4 = [r7] ;;         // address depends on first load
        add r5 = r3, r4 ;;
        halt ;;
`)
	if overlap.Cycles > serial.Cycles-100 {
		t.Errorf("independent misses did not overlap: %d vs serialized %d cycles",
			overlap.Cycles, serial.Cycles)
	}
}

func TestGroupGranularityStall(t *testing.T) {
	// The "artificial dependence": an independent instruction grouped
	// after the consumer of a missing load is stalled with it.
	dep := runBoth(t, `
        movi r1 = 0x40000
        movi r6 = 1 ;;
        ld4 r2 = [r1] ;;
        add r3 = r2, r2
        add r7 = r6, r6 ;;    // independent but grouped with the consumer
        halt ;;
`)
	// Same code but the independent add is hoisted before the consumer's
	// group; it still cannot proceed because in-order dispatch is blocked
	// by the earlier group — this documents the baseline's behaviour.
	if dep.ByClass[stats.LoadStall] < 140 {
		t.Errorf("grouped independent instruction was not stalled: %+v", dep.ByClass)
	}
}

func TestWAWInterlock(t *testing.T) {
	// A long-latency fdiv writing f2 followed by a short op writing f2:
	// the second write must wait (EPIC WAW scoreboard), so a consumer of
	// f2 afterwards sees a long stall even though its producer is 4-cycle.
	r := runBoth(t, `
        fadd f2 = f1, f1 ;;
        fdiv f3 = f2, f1 ;;
        fadd f3 = f1, f1 ;;      // WAW on f3 with the fdiv
        fadd f4 = f3, f1 ;;
        halt ;;
`)
	if r.ByClass[stats.NonLoadDepStall] < 18 {
		t.Errorf("WAW interlock missing: non-load stalls = %d", r.ByClass[stats.NonLoadDepStall])
	}
}

func TestMispredictPenalty(t *testing.T) {
	// A data-dependent, alternating branch mispredicts while warming up;
	// compare cycle cost against an always-taken loop of the same length.
	alternating := runBoth(t, `
        movi r1 = 0
        movi r2 = 200 ;;
loop:   andi r3 = r1, 1 ;;
        cmpi.eq p1 = r3, 0 ;;
        (p1) br even ;;
odd:    addi r1 = r1, 1
        br join ;;
even:   addi r1 = r1, 1 ;;
join:   cmp.lt p2 = r1, r2 ;;
        (p2) br loop ;;
        halt ;;
`)
	if alternating.MispredictsA == 0 {
		t.Errorf("alternating branch never mispredicted")
	}
	if alternating.ByClass[stats.FrontEndStall] == 0 {
		t.Errorf("mispredictions produced no front-end stall cycles")
	}
}

func TestResourceStallOnMSHRExhaustion(t *testing.T) {
	// 18 independent cold misses dispatched three per cycle exceed the 16
	// outstanding-load slots. The first pass through the loop runs with
	// the loads predicated off purely to warm the I-cache; the second
	// pass issues them back-to-back. Destinations are all distinct, so no
	// WAW interlock intervenes.
	var b strings.Builder
	b.WriteString(`
        movi r1 = 0x100000
        movi r30 = 0 ;;
outer:  cmpi.ne p2 = r30, 0 ;;
`)
	for i := 0; i < 18; i += 3 {
		for j := 0; j < 3; j++ {
			fmt.Fprintf(&b, "        (p2) ld4 r%d = [r1, %d]\n", 2+i+j, (i+j)*4096)
		}
		b.WriteString(" ;;\n")
	}
	b.WriteString(`
        cmpi.eq p3 = r30, 0 ;;
        addi r30 = r30, 1 ;;
        (p3) br outer ;;
        halt ;;
`)
	r := runBoth(t, b.String())
	if r.ByClass[stats.ResourceStall] == 0 {
		t.Errorf("MSHR exhaustion produced no resource stalls: %+v", r.ByClass)
	}
}

func TestCycleClassesSumToTotal(t *testing.T) {
	r := runBoth(t, `
        movi r1 = 0x9000
        movi r2 = 50 ;;
loop:   ld4 r3 = [r1] ;;
        add r4 = r4, r3 ;;
        addi r2 = r2, -1 ;;
        cmpi.ne p1 = r2, 0 ;;
        (p1) br loop ;;
        halt ;;
`)
	var sum int64
	for _, c := range r.ByClass {
		sum += c
	}
	if sum != r.Cycles {
		t.Errorf("classes sum %d != cycles %d", sum, r.Cycles)
	}
	if r.ByClass[stats.APipeStall] != 0 {
		t.Errorf("baseline machine recorded A-pipe stalls")
	}
}

func TestRunawayGuard(t *testing.T) {
	p := program.MustAssemble("spin", `
loop:   br loop ;;
        halt ;;
`)
	cfg := DefaultConfig()
	cfg.MaxCycles = 10_000
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Errorf("runaway program should error")
	}
}

func TestRejectsMalformedProgram(t *testing.T) {
	p := program.MustAssemble("bad", `
        movi r1 = 5
        add r2 = r1, r1 ;;
        halt ;;
`)
	if _, err := New(DefaultConfig(), p); err == nil {
		t.Errorf("intra-group RAW program should be rejected")
	}
}

func TestIndirectBranchFuzz(t *testing.T) {
	rcfg := workload.DefaultRandomConfig()
	rcfg.IndirectBranches = true
	for seed := int64(120); seed < 125; seed++ {
		p := workload.Random(seed, rcfg)
		ref, err := arch.Run(p, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(DefaultConfig(), p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if !m.State().Equal(ref.State) {
			t.Fatalf("seed %d: %s", seed, m.State().Diff(ref.State))
		}
	}
}
