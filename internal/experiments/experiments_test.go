package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fleaflicker/internal/core"
	"fleaflicker/internal/workload"
)

// fastBenches returns two quick suite entries so the experiment drivers are
// exercised end to end without long runtimes.
func fastBenches(t *testing.T) []*workload.Benchmark {
	t.Helper()
	var out []*workload.Benchmark
	for _, name := range []string{"300.twolf", "099.go"} {
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func TestRunSuiteAndRenderers(t *testing.T) {
	s, err := RunSuite(context.Background(), core.DefaultConfig(), core.Models(), fastBenches(t), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range s.Benchmarks {
		for _, m := range core.Models() {
			r := s.Get(bench, m)
			if r == nil {
				t.Fatalf("missing run %s/%v", bench, m)
			}
			if err := r.CheckInvariants(); err != nil {
				t.Errorf("%s/%v: %v", bench, m, err)
			}
		}
	}

	fig6 := RenderFig6(s)
	if !strings.Contains(fig6, "300.twolf") || !strings.Contains(fig6, "2Pre") ||
		!strings.Contains(fig6, "geometric-mean") {
		t.Errorf("Fig6 output incomplete:\n%s", fig6)
	}
	// The baseline row is normalized to exactly 1.000.
	for _, line := range strings.Split(fig6, "\n") {
		if strings.Contains(line, " base ") && !strings.Contains(line, "1.000") {
			t.Errorf("baseline not normalized to 1.000: %q", line)
		}
	}

	fig7 := RenderFig7(s)
	if !strings.Contains(fig7, "L2 (A/B)") || !strings.Contains(fig7, "099.go") {
		t.Errorf("Fig7 output incomplete:\n%s", fig7)
	}

	scalars := RenderScalars(s)
	if !strings.Contains(scalars, "mispredictions resolved in A-pipe") ||
		!strings.Contains(scalars, "conflict-free") {
		t.Errorf("scalars output incomplete:\n%s", scalars)
	}

	motiv := RenderMotivation(s)
	if !strings.Contains(motiv, "stall%") {
		t.Errorf("motivation output incomplete:\n%s", motiv)
	}

	ra := RenderRunaheadCompare(s)
	if !strings.Contains(ra, "runahead") {
		t.Errorf("runahead comparison incomplete:\n%s", ra)
	}
}

func TestRunSuiteExportsDurations(t *testing.T) {
	s, err := RunSuite(context.Background(), core.DefaultConfig(), Fig6Models, fastBenches(t), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range s.Benchmarks {
		for _, m := range Fig6Models {
			if d := s.Duration(bench, m); d <= 0 {
				t.Errorf("%s/%v: duration %v, want > 0", bench, m, d)
			}
		}
	}
	if d := s.Duration("no.such", core.Baseline); d != 0 {
		t.Errorf("absent cell duration = %v, want 0", d)
	}
}

func TestSpeedupSummary(t *testing.T) {
	s, err := RunSuite(context.Background(), core.DefaultConfig(), Fig6Models, fastBenches(t), false)
	if err != nil {
		t.Fatal(err)
	}
	sp2, sp2re := SpeedupSummary(s)
	if sp2 < 0.5 || sp2 > 3 || sp2re < sp2*0.9 {
		t.Errorf("implausible speedups: 2P %.3f, 2Pre %.3f", sp2, sp2re)
	}
}

func TestFig8Driver(t *testing.T) {
	points, err := Fig8(core.DefaultConfig(), []string{"300.twolf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig8Latencies) {
		t.Fatalf("got %d points, want %d", len(points), len(Fig8Latencies))
	}
	out := RenderFig8(points)
	if !strings.Contains(out, "inf") || !strings.Contains(out, "300.twolf") {
		t.Errorf("Fig8 render incomplete:\n%s", out)
	}
	// Deferred counts can only grow (weakly) as feedback slows.
	if points[len(points)-1].Deferred < points[0].Deferred {
		t.Errorf("deferred shrank without feedback: %v", points)
	}
}

func TestTables(t *testing.T) {
	t1 := RenderTable1(core.DefaultConfig())
	for _, want := range []string{"8-issue", "145 cycles", "1024-entry gshare", "64 entries", "perfect"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2, err := RenderTable2(fastBenches(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t2, "300.twolf") || !strings.Contains(t2, "instructions") {
		t.Errorf("Table 2 incomplete:\n%s", t2)
	}
}

func TestSweeps(t *testing.T) {
	cfg := core.DefaultConfig()
	cq, err := CQSweep(cfg, "300.twolf", []int{16, 64})
	if err != nil || len(cq) != 2 {
		t.Fatalf("CQSweep: %v %v", cq, err)
	}
	al, err := ALATSweep(cfg, "300.twolf", []int{0, 8})
	if err != nil || len(al) != 2 {
		t.Fatalf("ALATSweep: %v %v", al, err)
	}
	th, err := ThrottleSweep(cfg, "300.twolf", []int{0, 8})
	if err != nil || len(th) != 2 {
		t.Fatalf("ThrottleSweep: %v %v", th, err)
	}
	out := RenderSweep("title", "v", "x", cq)
	if !strings.Contains(out, "title") || !strings.Contains(out, "300.twolf") {
		t.Errorf("sweep render incomplete:\n%s", out)
	}
	if _, err := CQSweep(cfg, "no.such", []int{16}); err == nil {
		t.Errorf("unknown benchmark should error")
	}
}

func TestRunSuiteErrorPropagates(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MaxCycles = 10 // everything times out
	err := RunSuiteErr(t, cfg)
	if err == nil {
		t.Fatalf("expected timeout error")
	}
	// Every failing cell must be reported, not just the first: 2 benchmarks
	// × 3 models all exceed MaxCycles.
	for _, bench := range []string{"300.twolf", "099.go"} {
		for _, m := range Fig6Models {
			cell := fmt.Sprintf("%s/%v", bench, m)
			if !strings.Contains(err.Error(), cell) {
				t.Errorf("joined error lacks cell %s: %v", cell, err)
			}
		}
	}
}

func RunSuiteErr(t *testing.T, cfg core.Config) error {
	t.Helper()
	_, err := RunSuite(context.Background(), cfg, Fig6Models, fastBenches(t), false)
	return err
}

func TestRunSuiteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSuite(ctx, core.DefaultConfig(), Fig6Models, fastBenches(t), false)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSortedBenchNames(t *testing.T) {
	s := &SuiteRuns{Benchmarks: []string{"b", "a"}}
	got := SortedBenchNames(s)
	if got[0] != "a" || got[1] != "b" {
		t.Errorf("not sorted: %v", got)
	}
}

func TestCSVExport(t *testing.T) {
	s, err := RunSuite(context.Background(), core.DefaultConfig(), Fig6Models, fastBenches(t), false)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCSV(s, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig6.csv", "fig7.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		text := string(data)
		if !strings.Contains(text, "300.twolf") || !strings.Contains(text, "2Pre") {
			t.Errorf("%s missing expected rows:\n%s", name, text[:min(400, len(text))])
		}
	}
	points, err := Fig8(core.DefaultConfig(), []string{"300.twolf"})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFig8CSV(points, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig8.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "inf") {
		t.Errorf("fig8.csv missing the disabled-feedback row")
	}
}
