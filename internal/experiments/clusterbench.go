package experiments

import (
	"fmt"
	"runtime"
	"time"

	"fleaflicker/internal/cluster"
	"fleaflicker/internal/service"
)

// ClusterBenchStats is the distributed-tier entry of BENCH_<rev>.json: the
// wall-clock time of one sharded smoke fuzz campaign on a single in-process
// backend versus three, behind the consistent-hash coordinator. The workload
// is CPU-bound simulation, so the speedup is capacity-limited by HostCPUs —
// on a single-core host the three-backend figure measures coordination
// overhead, not parallelism; read the two together.
type ClusterBenchStats struct {
	Programs  int `json:"programs"`
	ChunkSize int `json:"chunk_size"`
	Chunks    int `json:"chunks"`
	// HostCPUs is runtime.NumCPU at measurement time: the capacity bound on
	// any real speedup.
	HostCPUs     int     `json:"host_cpus"`
	SingleNodeMS float64 `json:"single_node_ms"`
	ThreeNodeMS  float64 `json:"three_node_ms"`
	Speedup      float64 `json:"speedup"`
	// StolenUnits counts chunks idle backends stole during the three-node
	// campaign.
	StolenUnits int64 `json:"stolen_units"`
}

// ClusterBench runs the same seeded smoke campaign on one backend and on
// three and reports both wall-clock times.
func ClusterBench(programs, chunkSize int) (*ClusterBenchStats, error) {
	spec := service.JobSpec{
		Kind: "fuzz", Seed: 1,
		Fuzz: &service.FuzzSpec{Programs: programs, ChunkSize: chunkSize, Smoke: true},
	}
	stats := &ClusterBenchStats{
		Programs:  programs,
		ChunkSize: chunkSize,
		Chunks:    (programs + chunkSize - 1) / chunkSize,
		HostCPUs:  runtime.NumCPU(),
	}
	campaign := func(backends int) (time.Duration, int64, error) {
		l, err := cluster.StartLocal(backends, service.Config{Workers: 1},
			cluster.Config{DisablePeerLookup: true})
		if err != nil {
			return 0, 0, err
		}
		defer l.Close()
		start := time.Now()
		job, err := l.Coordinator.Submit(spec)
		if err != nil {
			return 0, 0, err
		}
		<-job.Done()
		if err := job.Err(); err != nil {
			return 0, 0, fmt.Errorf("clusterbench: %d-backend campaign: %w", backends, err)
		}
		counters, _ := l.Coordinator.Registry().Snapshot()
		return time.Since(start), counters[cluster.MetricUnitsStolen], nil
	}

	single, _, err := campaign(1)
	if err != nil {
		return nil, err
	}
	triple, stolen, err := campaign(3)
	if err != nil {
		return nil, err
	}
	stats.SingleNodeMS = float64(single) / float64(time.Millisecond)
	stats.ThreeNodeMS = float64(triple) / float64(time.Millisecond)
	if triple > 0 {
		stats.Speedup = float64(single) / float64(triple)
	}
	stats.StolenUnits = stolen
	return stats, nil
}
