package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"fleaflicker/internal/core"
	"fleaflicker/internal/workload"
)

// BenchReport is the machine-readable performance snapshot written by
// `fleabench -json`: per-model simulator throughput and allocation counts,
// suitable for diffing across revisions (BENCH_<rev>.json).
type BenchReport struct {
	Revision  string    `json:"revision"`
	Timestamp time.Time `json:"timestamp"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	// AllocBench names the benchmark used for the allocs-per-run probe.
	AllocBench string `json:"alloc_bench"`
	// Benchmarks lists the suite entries aggregated into each model row.
	Benchmarks []string         `json:"benchmarks"`
	Models     []ModelPerfStats `json:"models"`
	// Cluster is the distributed-tier wall-clock entry (single backend vs
	// three behind the coordinator); nil when the cluster bench was skipped.
	Cluster *ClusterBenchStats `json:"cluster,omitempty"`
}

// ModelPerfStats aggregates one model's row of the suite.
type ModelPerfStats struct {
	Model string `json:"model"`
	// InstrPerSec is retired instructions per wall-clock second across the
	// whole suite (per-cell durations come from SuiteRuns.Durations).
	InstrPerSec float64 `json:"instr_per_sec"`
	// AllocsPerRun is the heap-allocation count of one simulation of
	// AllocBench, measured serially; the steady-state cycle loop is
	// allocation-free, so this is dominated by per-run machine setup.
	AllocsPerRun uint64  `json:"allocs_per_run"`
	Instructions int64   `json:"instructions"`
	Cycles       int64   `json:"cycles"`
	WallMS       float64 `json:"wall_ms"`
}

// BuildBenchReport runs the suite once per model and assembles the report.
// The allocation probe re-runs allocBench serially per model so the malloc
// delta is not polluted by the parallel suite workers.
func BuildBenchReport(ctx context.Context, cfg core.Config, models []core.Model, benches []*workload.Benchmark, allocBench string) (*BenchReport, error) {
	suite, err := RunSuite(ctx, cfg, models, benches, false)
	if err != nil {
		return nil, err
	}
	ab, err := workload.ByName(allocBench)
	if err != nil {
		return nil, err
	}

	rep := &BenchReport{
		Timestamp:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		AllocBench: allocBench,
		Benchmarks: append([]string(nil), suite.Benchmarks...),
	}
	sort.Strings(rep.Benchmarks)

	for _, m := range models {
		var row ModelPerfStats
		row.Model = m.String()
		var wall time.Duration
		for _, b := range suite.Benchmarks {
			r := suite.Get(b, m)
			if r == nil {
				return nil, fmt.Errorf("benchreport: missing run %s/%s", b, m)
			}
			row.Instructions += r.Instructions
			row.Cycles += r.Cycles
			wall += suite.Duration(b, m)
		}
		row.WallMS = float64(wall) / float64(time.Millisecond)
		if wall > 0 {
			row.InstrPerSec = float64(row.Instructions) / wall.Seconds()
		}
		allocs, err := allocsPerRun(m, cfg, ab)
		if err != nil {
			return nil, err
		}
		row.AllocsPerRun = allocs
		rep.Models = append(rep.Models, row)
	}
	return rep, nil
}

// allocsPerRun measures the heap allocations of one full simulation after a
// warm-up run (which pays one-time costs like lazily building the kernel).
func allocsPerRun(m core.Model, cfg core.Config, b *workload.Benchmark) (uint64, error) {
	if _, err := core.Run(m, cfg, b.Program()); err != nil {
		return 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := core.Run(m, cfg, b.Program()); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, nil
}

// WriteBenchReport renders the report as indented JSON at
// dir/BENCH_<revision>.json and returns the path.
func WriteBenchReport(rep *BenchReport, dir, revision string) (string, error) {
	rep.Revision = revision
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", revision))
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
