package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"fleaflicker/internal/core"
)

// TestRunSuiteCheckpointedCancellation interrupts a checkpointed suite
// mid-flight and then reruns it. The shared per-benchmark reference (the
// sync.Once cell in runSuite) is function-local state: an aborted call must
// not leak a half-built checkpoint into a later call, which the second
// run's full verification would catch as a divergence.
func TestRunSuiteCheckpointedCancellation(t *testing.T) {
	benches := fastBenches(t)
	cfg := core.DefaultConfig()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := RunSuiteCheckpointed(ctx, cfg, core.Models(), benches); err == nil {
		t.Fatal("expected cancellation error")
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	s, err := RunSuiteCheckpointed(context.Background(), cfg, core.Models(), benches)
	if err != nil {
		t.Fatalf("rerun after cancellation: %v", err)
	}
	for _, bench := range s.Benchmarks {
		for _, m := range core.Models() {
			r := s.Get(bench, m)
			if r == nil {
				t.Fatalf("missing run %s/%v after resume", bench, m)
			}
			if err := r.CheckInvariants(); err != nil {
				t.Errorf("%s/%v: %v", bench, m, err)
			}
		}
	}
}
