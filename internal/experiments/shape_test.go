package experiments

import (
	"context"
	"testing"

	"fleaflicker/internal/core"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/workload"
)

// TestFigure6Shape locks in the paper's qualitative Figure 6 claims: which
// benchmarks win, roughly by how much, and where the cycles move. Bands are
// deliberately wide — the test should fail on model regressions, not on
// small timing shifts.
func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	s, err := RunSuite(context.Background(), core.DefaultConfig(), Fig6Models, workload.Suite(), false)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(bench string, m core.Model) float64 {
		return float64(s.Get(bench, m).Cycles) / float64(s.Get(bench, core.Baseline).Cycles)
	}

	bands := map[string][2]float64{
		"099.go":       {0.85, 1.02}, // branch-bound: small gain
		"129.compress": {0.50, 0.90}, // short-miss absorption
		"130.li":       {0.70, 0.95},
		"175.vpr":      {0.93, 1.10}, // the paper's net loss: flat at best
		"181.mcf":      {0.35, 0.75}, // the headline winner
		"183.equake":   {0.45, 0.80}, // overlap of long misses
		"197.parser":   {0.65, 0.95},
		"254.gap":      {0.88, 1.02}, // B-pipe-initiated misses: minimal gain
		"255.vortex":   {0.40, 0.80},
		"300.twolf":    {0.70, 1.00},
	}
	for bench, band := range bands {
		got := norm(bench, core.TwoPass)
		if got < band[0] || got > band[1] {
			t.Errorf("%s: 2P/base = %.3f outside the expected band [%.2f, %.2f]",
				bench, got, band[0], band[1])
		}
	}

	// vpr must be the worst benchmark for 2P (the paper's one loss).
	worst, worstV := "", 0.0
	for bench := range bands {
		if v := norm(bench, core.TwoPass); v > worstV {
			worst, worstV = bench, v
		}
	}
	if worst != "175.vpr" {
		t.Errorf("worst 2P benchmark = %s (%.3f), paper says 175.vpr", worst, worstV)
	}
	// mcf must be among the best (paper's case study).
	best, bestV := "", 10.0
	for bench := range bands {
		if v := norm(bench, core.TwoPass); v < bestV {
			best, bestV = bench, v
		}
	}
	if n := norm("181.mcf", core.TwoPass); n > bestV*1.3 {
		t.Errorf("mcf (%.3f) should be near the best (%s %.3f)", n, best, bestV)
	}

	// 2Pre beats 2P on average (paper: 1.08 mean).
	sp2, sp2re := SpeedupSummary(s)
	if ratio := sp2re / sp2; ratio < 1.01 || ratio > 1.15 {
		t.Errorf("2Pre/2P mean speedup = %.3f, expected ≈1.02–1.10", ratio)
	}

	for _, bench := range s.Benchmarks {
		base, tp := s.Get(bench, core.Baseline), s.Get(bench, core.TwoPass)
		// Load stalls may not grow under two-pass.
		if tp.ByClass[stats.LoadStall] > base.ByClass[stats.LoadStall] {
			t.Errorf("%s: load stalls grew under 2P (%d -> %d)",
				bench, base.ByClass[stats.LoadStall], tp.ByClass[stats.LoadStall])
		}
		// The baseline never defers and never reports A-pipe stalls.
		if base.Deferred != 0 || base.ByClass[stats.APipeStall] != 0 {
			t.Errorf("%s: baseline recorded two-pass activity", bench)
		}
	}
}

// TestFigure7Shape locks the access-attribution claims.
func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	cfg := core.DefaultConfig()
	share := func(name string) (aShare float64) {
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.Run(core.TwoPass, cfg, b.Program())
		if err != nil {
			t.Fatal(err)
		}
		var a, total float64
		for lvl := mem.Level(0); lvl < mem.NumLevels; lvl++ {
			a += float64(r.AccessCycles[lvl][stats.PipeA])
			total += float64(r.AccessCycles[lvl][stats.PipeA] + r.AccessCycles[lvl][stats.PipeB])
		}
		return a / total
	}
	// Most benchmarks initiate the majority of access latency in the A-pipe.
	for _, name := range []string{"181.mcf", "183.equake", "255.vortex", "129.compress"} {
		if got := share(name); got < 0.5 {
			t.Errorf("%s: A-pipe initiated share = %.2f, want > 0.5", name, got)
		}
	}
	// gap is the exception: dependent chains start in the B-pipe.
	if got := share("254.gap"); got > 0.5 {
		t.Errorf("254.gap: A-pipe share = %.2f, paper says most accesses start in B", got)
	}
}

// TestDeterminism: identical runs produce identical statistics — the
// property that makes every number in EXPERIMENTS.md reproducible.
func TestDeterminism(t *testing.T) {
	b, err := workload.ByName("300.twolf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	for _, model := range core.Models() {
		r1, err := core.Run(model, cfg, b.Program())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := core.Run(model, cfg, b.Program())
		if err != nil {
			t.Fatal(err)
		}
		if *r1 != *r2 {
			t.Errorf("%v: two identical runs differ", model)
		}
	}
}
