// Package experiments reproduces the paper's evaluation: Figure 6
// (normalized execution cycles in six stall classes for base/2P/2Pre),
// Figure 7 (initiated access cycles by cache level and initiating pipe),
// Figure 8 (B→A feedback-latency sensitivity), Tables 1 and 2, the scalar
// results quoted in §4, and the extension sweeps (coupling-queue size, ALAT
// capacity, deferral throttle, run-ahead comparison).
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/core"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/workload"
)

// SuiteRuns holds one simulation per (benchmark, model).
type SuiteRuns struct {
	Config     core.Config
	Benchmarks []string
	Runs       map[string]map[core.Model]*stats.Run
	// Durations holds the wall-clock time each cell's core.Simulate call
	// took (including reference verification when enabled), so callers such
	// as the serving layer and fleabench can report real job-latency
	// numbers instead of discarding them.
	Durations map[string]map[core.Model]time.Duration
}

// Get returns the run for one cell; nil if absent.
func (s *SuiteRuns) Get(bench string, model core.Model) *stats.Run {
	return s.Runs[bench][model]
}

// Duration returns the wall-clock simulation time of one cell; zero if the
// cell is absent.
func (s *SuiteRuns) Duration(bench string, model core.Model) time.Duration {
	return s.Durations[bench][model]
}

// suiteMode selects how runSuite treats the functional reference.
type suiteMode int

const (
	suiteUnverified   suiteMode = iota // no reference, no verification
	suiteVerified                      // one shared reference per benchmark, cells run from zero
	suiteCheckpointed                  // shared checkpointed reference, cells fast-forward
)

// RunSuite simulates every benchmark on every model, in parallel. With
// verified set, each run is checked against the functional reference
// executor; the reference runs once per benchmark and is shared across all
// of that benchmark's model cells. When ctx is cancelled, no further jobs
// launch and the jobs already in flight abort at their machines' next
// cancellation check. Every per-cell failure is reported (joined with
// errors.Join), not just the first.
func RunSuite(ctx context.Context, cfg core.Config, models []core.Model, benches []*workload.Benchmark, verified bool) (*SuiteRuns, error) {
	mode := suiteUnverified
	if verified {
		mode = suiteVerified
	}
	return runSuite(ctx, cfg, models, benches, mode)
}

// RunSuiteCheckpointed is the verified suite in fast-forward mode: each
// benchmark's reference execution captures functional checkpoints every 1/8
// of its dynamic instruction count, and every model cell resumes from the
// last one, re-simulating only the post-checkpoint suffix before the usual
// final-state verification. Use it where throughput matters and only the
// architectural verdict is consumed (CI, pre-merge sweeps); figure-producing
// runs must stay from-zero, because a resumed run's cycle counts cover only
// the suffix it actually simulated.
func RunSuiteCheckpointed(ctx context.Context, cfg core.Config, models []core.Model, benches []*workload.Benchmark) (*SuiteRuns, error) {
	return runSuite(ctx, cfg, models, benches, suiteCheckpointed)
}

// suiteReference computes one benchmark's shared reference and, in
// checkpointed mode, the snapshot its cells resume from. The interval needs
// the dynamic instruction count, so checkpointed mode runs the (cheap)
// functional executor twice: once to size the interval, once to capture.
func suiteReference(b *workload.Benchmark, maxSteps int64, mode suiteMode) (*core.Reference, *checkpoint.Snapshot, error) {
	if mode != suiteCheckpointed {
		ref, err := core.ComputeReference(b.Program(), maxSteps)
		return ref, nil, err
	}
	plain, err := core.ComputeReference(b.Program(), maxSteps)
	if err != nil {
		return nil, nil, err
	}
	every := plain.Result.Instructions / 8
	if every < 1 {
		every = 1
	}
	ref, err := core.ComputeReference(b.Program(), maxSteps, core.WithCheckpoints(every))
	if err != nil {
		return nil, nil, err
	}
	return ref, ref.NearestCheckpoint(), nil
}

func runSuite(ctx context.Context, cfg core.Config, models []core.Model, benches []*workload.Benchmark, mode suiteMode) (*SuiteRuns, error) {
	out := &SuiteRuns{
		Config:    cfg,
		Runs:      make(map[string]map[core.Model]*stats.Run),
		Durations: make(map[string]map[core.Model]time.Duration),
	}
	// refCell lazily computes a benchmark's shared reference: the first model
	// cell to need it pays the functional execution, the rest reuse it.
	type refCell struct {
		once   sync.Once
		ref    *core.Reference
		resume *checkpoint.Snapshot
		err    error
	}
	refs := make(map[string]*refCell, len(benches))
	for _, b := range benches {
		out.Benchmarks = append(out.Benchmarks, b.Name)
		out.Runs[b.Name] = make(map[core.Model]*stats.Run)
		out.Durations[b.Name] = make(map[core.Model]time.Duration)
		refs[b.Name] = &refCell{}
	}

	type job struct {
		bench *workload.Benchmark
		model core.Model
	}
	var jobs []job
	for _, b := range benches {
		for _, m := range models {
			jobs = append(jobs, job{b, m})
		}
	}
	var (
		mu   sync.Mutex
		errs []error
		wg   sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return // cancelled: don't launch this cell
			}
			opts := []core.Option{core.WithConfig(cfg)}
			if mode != suiteUnverified {
				rc := refs[j.bench.Name]
				rc.once.Do(func() {
					rc.ref, rc.resume, rc.err = suiteReference(j.bench, cfg.MaxCycles, mode)
				})
				if rc.err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("%s/%v: reference: %w", j.bench.Name, j.model, rc.err))
					mu.Unlock()
					return
				}
				opts = append(opts, core.WithReference(rc.ref))
				if rc.resume != nil {
					opts = append(opts, core.ResumeFrom(rc.resume))
				}
			}
			start := time.Now()
			r, err := core.Simulate(ctx, j.model, j.bench.Program(), opts...)
			elapsed := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("%s/%v: %w", j.bench.Name, j.model, err))
				return
			}
			out.Runs[j.bench.Name][j.model] = r
			out.Durations[j.bench.Name][j.model] = elapsed
		}(j)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return out, nil
}

// Fig6Models is the presentation order of Figure 6.
var Fig6Models = []core.Model{core.Baseline, core.TwoPass, core.TwoPassRegroup}

// RenderFig6 produces the Figure 6 table: execution cycles per benchmark
// and model, normalized to the baseline, decomposed into the six classes.
func RenderFig6(s *SuiteRuns) string {
	var b strings.Builder
	b.WriteString("Figure 6: normalized execution cycles (baseline = 1.000)\n")
	fmt.Fprintf(&b, "%-14s %-5s %7s  %8s %8s %8s %8s %8s %8s\n",
		"benchmark", "model", "total",
		"unstall", "load", "nonload", "resrc", "front", "apipe")
	for _, bench := range s.Benchmarks {
		base := s.Get(bench, core.Baseline)
		if base == nil {
			continue
		}
		for _, m := range Fig6Models {
			r := s.Get(bench, m)
			if r == nil {
				continue
			}
			norm := func(v int64) float64 { return float64(v) / float64(base.Cycles) }
			fmt.Fprintf(&b, "%-14s %-5s %7.3f  %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
				bench, m, norm(r.Cycles),
				norm(r.ByClass[stats.Unstalled]),
				norm(r.ByClass[stats.LoadStall]),
				norm(r.ByClass[stats.NonLoadDepStall]),
				norm(r.ByClass[stats.ResourceStall]),
				norm(r.ByClass[stats.FrontEndStall]),
				norm(r.ByClass[stats.APipeStall]))
		}
	}
	sp2, sp2re := SpeedupSummary(s)
	fmt.Fprintf(&b, "\ngeometric-mean speedup over baseline: 2P %.3f, 2Pre %.3f (2Pre/2P %.3f)\n",
		sp2, sp2re, sp2re/sp2)
	return b.String()
}

// SpeedupSummary returns the geometric-mean speedups of 2P and 2Pre over
// the baseline across the suite.
func SpeedupSummary(s *SuiteRuns) (sp2, sp2re float64) {
	g2, g2re, n := 0.0, 0.0, 0
	for _, bench := range s.Benchmarks {
		base, r2, r2re := s.Get(bench, core.Baseline), s.Get(bench, core.TwoPass), s.Get(bench, core.TwoPassRegroup)
		if base == nil || r2 == nil || r2re == nil {
			continue
		}
		g2 += math.Log(float64(base.Cycles) / float64(r2.Cycles))
		g2re += math.Log(float64(base.Cycles) / float64(r2re.Cycles))
		n++
	}
	if n == 0 {
		return 1, 1
	}
	return math.Exp(g2 / float64(n)), math.Exp(g2re / float64(n))
}

// RenderFig7 produces the Figure 7 table: data-access cycles (count ×
// serving-level latency) split by level and by initiating pipe, normalized
// to the baseline's total.
func RenderFig7(s *SuiteRuns) string {
	var b strings.Builder
	b.WriteString("Figure 7: initiated data-access cycles by level and initiating pipe\n")
	b.WriteString("(each access scaled by its serving level's latency; normalized to baseline total)\n")
	fmt.Fprintf(&b, "%-14s %-5s %7s  %18s %18s %18s %18s\n",
		"benchmark", "model", "total", "L1 (A/B)", "L2 (A/B)", "L3 (A/B)", "Mem (A/B)")
	for _, bench := range s.Benchmarks {
		base := s.Get(bench, core.Baseline)
		if base == nil {
			continue
		}
		var baseTotal int64
		for lvl := mem.Level(0); lvl < mem.NumLevels; lvl++ {
			for p := stats.Pipe(0); p < stats.NumPipes; p++ {
				baseTotal += base.AccessCycles[lvl][p]
			}
		}
		if baseTotal == 0 {
			baseTotal = 1
		}
		for _, m := range Fig6Models {
			r := s.Get(bench, m)
			if r == nil {
				continue
			}
			var total int64
			for lvl := mem.Level(0); lvl < mem.NumLevels; lvl++ {
				for p := stats.Pipe(0); p < stats.NumPipes; p++ {
					total += r.AccessCycles[lvl][p]
				}
			}
			cell := func(lvl mem.Level) string {
				a := float64(r.AccessCycles[lvl][stats.PipeA]) / float64(baseTotal)
				bb := float64(r.AccessCycles[lvl][stats.PipeB]) / float64(baseTotal)
				return fmt.Sprintf("%7.3f/%-7.3f", a, bb)
			}
			fmt.Fprintf(&b, "%-14s %-5s %7.3f  %18s %18s %18s %18s\n",
				bench, m, float64(total)/float64(baseTotal),
				cell(mem.LevelL1), cell(mem.LevelL2), cell(mem.LevelL3), cell(mem.LevelMem))
		}
	}
	return b.String()
}

// Fig8Point is one cell of Figure 8.
type Fig8Point struct {
	Benchmark string
	// Latency is the B→A feedback latency; -1 means disabled ("inf").
	Latency  int
	Deferred int64
	Cycles   int64
}

// Fig8Latencies is the sweep of the paper's Figure 8.
var Fig8Latencies = []int{0, 1, 2, 4, 8, -1}

// Fig8 sweeps the B→A feedback latency for the named benchmarks.
func Fig8(cfg core.Config, names []string) ([]Fig8Point, error) {
	var out []Fig8Point
	for _, name := range names {
		b, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, lat := range Fig8Latencies {
			c := cfg
			c.FeedbackLatency = lat
			r, err := core.Run(core.TwoPass, c, b.Program())
			if err != nil {
				return nil, fmt.Errorf("fig8 %s lat %d: %w", name, lat, err)
			}
			out = append(out, Fig8Point{Benchmark: name, Latency: lat, Deferred: r.Deferred, Cycles: r.Cycles})
		}
	}
	return out, nil
}

// RenderFig8 formats the feedback-latency sweep, normalizing each benchmark
// to its zero-latency point.
func RenderFig8(points []Fig8Point) string {
	var b strings.Builder
	b.WriteString("Figure 8: effect of B->A feedback latency (normalized to latency 0)\n")
	fmt.Fprintf(&b, "%-14s %6s %12s %12s %12s %12s\n",
		"benchmark", "lat", "deferred", "defer(norm)", "cycles", "cyc(norm)")
	base := map[string]Fig8Point{}
	for _, p := range points {
		if p.Latency == 0 {
			base[p.Benchmark] = p
		}
	}
	for _, p := range points {
		lat := fmt.Sprintf("%d", p.Latency)
		if p.Latency < 0 {
			lat = "inf"
		}
		b0 := base[p.Benchmark]
		fmt.Fprintf(&b, "%-14s %6s %12d %12.3f %12d %12.3f\n",
			p.Benchmark, lat, p.Deferred,
			float64(p.Deferred)/float64(max64(b0.Deferred, 1)),
			p.Cycles, float64(p.Cycles)/float64(max64(b0.Cycles, 1)))
	}
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RenderScalars reports the §4 scalar results: the A/B misprediction
// resolution split, the store-conflict statistics, and the mcf memory-stall
// reduction highlighted in the text.
func RenderScalars(s *SuiteRuns) string {
	var b strings.Builder
	b.WriteString("Section 4 scalar results (two-pass machine, whole suite)\n")
	var mA, mB, flushes, pastDef, storesTotal, storesDef int64
	for _, bench := range s.Benchmarks {
		r := s.Get(bench, core.TwoPass)
		if r == nil {
			continue
		}
		mA += r.MispredictsA
		mB += r.MispredictsB
		flushes += r.ConflictFlushes
		pastDef += r.LoadsPastDeferredStore
		storesTotal += r.StoresTotal
		storesDef += r.StoresDeferred
	}
	tot := float64(mA + mB)
	if tot == 0 {
		tot = 1
	}
	fmt.Fprintf(&b, "  mispredictions resolved in A-pipe: %5.1f%%  (paper: 32%%)\n", 100*float64(mA)/tot)
	fmt.Fprintf(&b, "  mispredictions resolved in B-pipe: %5.1f%%  (paper: 68%%)\n", 100*float64(mB)/tot)
	cf := 1.0
	if pastDef > 0 {
		cf = 1 - float64(flushes)/float64(pastDef)
	}
	fmt.Fprintf(&b, "  A-pipe loads past a deferred store that are conflict-free: %5.1f%%  (paper: 97%%)\n", 100*cf)
	sd := 0.0
	if storesTotal > 0 {
		sd = float64(flushes) / float64(storesTotal)
	}
	fmt.Fprintf(&b, "  stores deferred and causing a conflict flush: %5.2f%% of all stores  (paper: 1.6%%)\n", 100*sd)

	if base, tp := s.Get("181.mcf", core.Baseline), s.Get("181.mcf", core.TwoPass); base != nil && tp != nil {
		memRed := 1 - float64(tp.MemStallCycles())/float64(max64(base.MemStallCycles(), 1))
		cycRed := 1 - float64(tp.Cycles)/float64(base.Cycles)
		fmt.Fprintf(&b, "  181.mcf memory-stall-cycle reduction: %5.1f%%  (paper: 62%%)\n", 100*memRed)
		fmt.Fprintf(&b, "  181.mcf total-cycle reduction:        %5.1f%%  (paper: 23%%)\n", 100*cycRed)
	}
	sp2, sp2re := SpeedupSummary(s)
	fmt.Fprintf(&b, "  mean 2Pre speedup over 2P: %.3f  (paper: 1.08)\n", sp2re/sp2)
	return b.String()
}

// RenderMotivation reports the §2 motivation numbers on the baseline: the
// fraction of cycles lost to stalls and the share of data-access latency
// cycles satisfied by the L2.
func RenderMotivation(s *SuiteRuns) string {
	var b strings.Builder
	b.WriteString("Section 2 motivation (baseline machine)\n")
	fmt.Fprintf(&b, "%-14s %8s %10s %10s %14s\n", "benchmark", "IPC", "stall%", "loadstall%", "L2 share of access cycles")
	for _, bench := range s.Benchmarks {
		r := s.Get(bench, core.Baseline)
		if r == nil {
			continue
		}
		var acc, accL2 int64
		for lvl := mem.Level(0); lvl < mem.NumLevels; lvl++ {
			acc += r.AccessCycles[lvl][stats.PipeA]
		}
		accL2 = r.AccessCycles[mem.LevelL2][stats.PipeA]
		if acc == 0 {
			acc = 1
		}
		fmt.Fprintf(&b, "%-14s %8.2f %9.1f%% %9.1f%% %13.1f%%\n",
			bench, r.IPC(),
			100*float64(r.StallCycles())/float64(r.Cycles),
			100*float64(r.ByClass[stats.LoadStall])/float64(r.Cycles),
			100*float64(accL2)/float64(acc))
	}
	return b.String()
}

// RenderTable1 prints the simulated machine configuration.
func RenderTable1(cfg core.Config) string {
	var b strings.Builder
	b.WriteString("Table 1: experimental machine configuration\n")
	fmt.Fprintf(&b, "  Functional units      %d-issue, %d ALU, %d Memory, %d FP, %d Branch\n",
		cfg.IssueWidth, cfg.FUs[0], cfg.FUs[1], cfg.FUs[2], cfg.FUs[3])
	b.WriteString("  Data model            ILP32\n")
	cc := func(c mem.CacheConfig) string {
		return fmt.Sprintf("%d cycles, %dKB, %d-way, %dB lines", c.Latency, c.SizeBytes>>10, c.Assoc, c.LineBytes)
	}
	fmt.Fprintf(&b, "  L1I cache             %s\n", cc(cfg.Mem.L1I))
	fmt.Fprintf(&b, "  L1D cache             %s\n", cc(cfg.Mem.L1D))
	fmt.Fprintf(&b, "  L2 cache              %s\n", cc(cfg.Mem.L2))
	fmt.Fprintf(&b, "  L3 cache              %s\n", cc(cfg.Mem.L3))
	fmt.Fprintf(&b, "  Max outstanding loads %d\n", cfg.Mem.MaxOutstanding)
	fmt.Fprintf(&b, "  Main memory           %d cycles\n", cfg.Mem.MemLatency)
	fmt.Fprintf(&b, "  Branch predictor      %d-entry gshare\n", cfg.Bpred.PHTEntries)
	fmt.Fprintf(&b, "  Two-pass CQ           %d entries\n", cfg.CQSize)
	alat := "perfect (no capacity conflicts)"
	if cfg.ALATCapacity > 0 {
		alat = fmt.Sprintf("%d entries", cfg.ALATCapacity)
	}
	fmt.Fprintf(&b, "  Two-pass ALAT         %s\n", alat)
	return b.String()
}

// RenderTable2 prints the benchmark suite with measured dynamic instruction
// counts (the role of Table 2).
func RenderTable2(benches []*workload.Benchmark) (string, error) {
	var b strings.Builder
	b.WriteString("Table 2: benchmarks and dynamic instruction counts\n")
	fmt.Fprintf(&b, "  %-14s %14s   %s\n", "benchmark", "instructions", "signature")
	for _, bench := range benches {
		r, err := arch.Run(bench.Program(), 100_000_000)
		if err != nil {
			return "", fmt.Errorf("table2 %s: %w", bench.Name, err)
		}
		fmt.Fprintf(&b, "  %-14s %14d   %s\n", bench.Name, r.Instructions, bench.Signature)
	}
	return b.String(), nil
}

// SweepPoint is one cell of a single-parameter sweep.
type SweepPoint struct {
	Benchmark string
	Value     int
	Cycles    int64
	Extra     int64 // sweep-specific secondary metric
}

// CQSweep varies the coupling-queue size (the paper reports insensitivity
// around 64).
func CQSweep(cfg core.Config, name string, sizes []int) ([]SweepPoint, error) {
	b, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, size := range sizes {
		c := cfg
		c.CQSize = size
		r, err := core.Run(core.TwoPass, c, b.Program())
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{name, size, r.Cycles, r.Deferred})
	}
	return out, nil
}

// ALATSweep varies ALAT capacity (0 = perfect), showing the cost of
// false-positive conflict flushes.
func ALATSweep(cfg core.Config, name string, capacities []int) ([]SweepPoint, error) {
	b, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, capa := range capacities {
		c := cfg
		c.ALATCapacity = capa
		r, err := core.Run(core.TwoPass, c, b.Program())
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{name, capa, r.Cycles, r.ConflictFlushes})
	}
	return out, nil
}

// ThrottleSweep varies the A-pipe deferral throttle (§3.5 future work).
func ThrottleSweep(cfg core.Config, name string, limits []int) ([]SweepPoint, error) {
	b, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, lim := range limits {
		c := cfg
		c.DeferThrottle = lim
		r, err := core.Run(core.TwoPass, c, b.Program())
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{name, lim, r.Cycles, r.Deferred})
	}
	return out, nil
}

// RenderSweep formats a sweep with the given column headings.
func RenderSweep(title, valueName, extraName string, points []SweepPoint) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-14s %10s %12s %12s\n", "benchmark", valueName, "cycles", extraName)
	for _, p := range points {
		fmt.Fprintf(&b, "%-14s %10d %12d %12d\n", p.Benchmark, p.Value, p.Cycles, p.Extra)
	}
	return b.String()
}

// RenderRunaheadCompare contrasts the run-ahead comparator with two-pass per
// benchmark (the §2 discussion).
func RenderRunaheadCompare(s *SuiteRuns) string {
	var b strings.Builder
	b.WriteString("Run-ahead comparator vs two-pass (cycles normalized to baseline)\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s\n", "benchmark", "base", "runahead", "2P")
	for _, bench := range s.Benchmarks {
		base := s.Get(bench, core.Baseline)
		ra := s.Get(bench, core.Runahead)
		tp := s.Get(bench, core.TwoPass)
		if base == nil || ra == nil || tp == nil {
			continue
		}
		fmt.Fprintf(&b, "%-14s %8.3f %8.3f %8.3f\n", bench, 1.0,
			float64(ra.Cycles)/float64(base.Cycles),
			float64(tp.Cycles)/float64(base.Cycles))
	}
	return b.String()
}

// SortedBenchNames returns the suite names sorted (helper for stable CLI
// output when iterating maps).
func SortedBenchNames(s *SuiteRuns) []string {
	names := append([]string(nil), s.Benchmarks...)
	sort.Strings(names)
	return names
}
