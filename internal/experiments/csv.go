package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"fleaflicker/internal/mem"
	"fleaflicker/internal/stats"
)

// WriteCSV exports the suite's Figure 6 and Figure 7 data as
// machine-readable CSV files (fig6.csv, fig7.csv) in dir, creating it if
// needed.
func WriteCSV(s *SuiteRuns, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeCSVFile(filepath.Join(dir, "fig6.csv"), fig6Records(s)); err != nil {
		return err
	}
	return writeCSVFile(filepath.Join(dir, "fig7.csv"), fig7Records(s))
}

// WriteFig8CSV exports a Figure 8 sweep as fig8.csv in dir.
func WriteFig8CSV(points []Fig8Point, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeCSVFile(filepath.Join(dir, "fig8.csv"), fig8Records(points))
}

func fig8Records(points []Fig8Point) [][]string {
	recs := [][]string{{"benchmark", "feedback_latency", "deferred", "cycles"}}
	for _, p := range points {
		lat := strconv.Itoa(p.Latency)
		if p.Latency < 0 {
			lat = "inf"
		}
		recs = append(recs, []string{
			p.Benchmark, lat,
			strconv.FormatInt(p.Deferred, 10),
			strconv.FormatInt(p.Cycles, 10),
		})
	}
	return recs
}

func fig6Records(s *SuiteRuns) [][]string {
	recs := [][]string{{
		"benchmark", "model", "cycles", "instructions", "ipc",
		"unstalled", "load_stall", "nonload_stall", "resource_stall",
		"frontend_stall", "apipe_stall",
		"deferred", "preexecuted", "mispredicts_a", "mispredicts_b",
		"conflict_flushes", "regrouped",
	}}
	for _, bench := range s.Benchmarks {
		for _, m := range Fig6Models {
			r := s.Get(bench, m)
			if r == nil {
				continue
			}
			recs = append(recs, []string{
				bench, m.String(),
				strconv.FormatInt(r.Cycles, 10),
				strconv.FormatInt(r.Instructions, 10),
				fmt.Sprintf("%.4f", r.IPC()),
				strconv.FormatInt(r.ByClass[stats.Unstalled], 10),
				strconv.FormatInt(r.ByClass[stats.LoadStall], 10),
				strconv.FormatInt(r.ByClass[stats.NonLoadDepStall], 10),
				strconv.FormatInt(r.ByClass[stats.ResourceStall], 10),
				strconv.FormatInt(r.ByClass[stats.FrontEndStall], 10),
				strconv.FormatInt(r.ByClass[stats.APipeStall], 10),
				strconv.FormatInt(r.Deferred, 10),
				strconv.FormatInt(r.PreExecuted, 10),
				strconv.FormatInt(r.MispredictsA, 10),
				strconv.FormatInt(r.MispredictsB, 10),
				strconv.FormatInt(r.ConflictFlushes, 10),
				strconv.FormatInt(r.Regrouped, 10),
			})
		}
	}
	return recs
}

func fig7Records(s *SuiteRuns) [][]string {
	recs := [][]string{{"benchmark", "model", "level", "pipe", "accesses", "access_cycles"}}
	for _, bench := range s.Benchmarks {
		for _, m := range Fig6Models {
			r := s.Get(bench, m)
			if r == nil {
				continue
			}
			for lvl := mem.Level(0); lvl < mem.NumLevels; lvl++ {
				for p := stats.Pipe(0); p < stats.NumPipes; p++ {
					recs = append(recs, []string{
						bench, m.String(), lvl.String(), p.String(),
						strconv.FormatInt(r.Access[lvl][p], 10),
						strconv.FormatInt(r.AccessCycles[lvl][p], 10),
					})
				}
			}
		}
	}
	return recs
}

func writeCSVFile(path string, records [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(records); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// csvString renders records as CSV text, for callers that persist
// artifacts rather than files (the fleaflow orchestrator).
func csvString(recs [][]string) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.WriteAll(recs)
	w.Flush()
	return b.String()
}

// Fig6CSV returns the Figure 6 export as CSV text.
func Fig6CSV(s *SuiteRuns) string { return csvString(fig6Records(s)) }

// Fig7CSV returns the Figure 7 export as CSV text.
func Fig7CSV(s *SuiteRuns) string { return csvString(fig7Records(s)) }

// Fig8CSV returns a Figure 8 sweep as CSV text.
func Fig8CSV(points []Fig8Point) string { return csvString(fig8Records(points)) }
