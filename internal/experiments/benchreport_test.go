package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fleaflicker/internal/core"
)

func TestBuildAndWriteBenchReport(t *testing.T) {
	rep, err := BuildBenchReport(context.Background(), core.DefaultConfig(),
		Fig6Models, fastBenches(t), "300.twolf")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Models) != len(Fig6Models) {
		t.Fatalf("models = %d, want %d", len(rep.Models), len(Fig6Models))
	}
	for _, row := range rep.Models {
		if row.InstrPerSec <= 0 {
			t.Errorf("%s: instr_per_sec = %v, want > 0", row.Model, row.InstrPerSec)
		}
		if row.Instructions <= 0 || row.Cycles <= 0 || row.WallMS <= 0 {
			t.Errorf("%s: incomplete row %+v", row.Model, row)
		}
		// A full simulation allocates its machine; zero would mean the probe
		// measured nothing.
		if row.AllocsPerRun == 0 {
			t.Errorf("%s: allocs_per_run = 0, want > 0", row.Model)
		}
	}

	dir := t.TempDir()
	path, err := WriteBenchReport(rep, dir, "abc1234")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_abc1234.json" {
		t.Fatalf("path = %s, want BENCH_abc1234.json", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Revision != "abc1234" || len(back.Models) != len(rep.Models) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
