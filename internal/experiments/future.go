package experiments

import (
	"fmt"
	"strings"

	"fleaflicker/internal/core"
	"fleaflicker/internal/sched"
	"fleaflicker/internal/workload"
)

// FutureConfig returns the machine §4 gestures at: "a futuristic design with
// smaller low-level caches and longer latencies would further accentuate the
// demonstrated benefits" — the low-level caches shrink and every miss gets
// more expensive relative to the core.
func FutureConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Mem.L1D.SizeBytes = 8 << 10
	cfg.Mem.L1I.SizeBytes = 8 << 10
	cfg.Mem.L2.SizeBytes = 128 << 10
	cfg.Mem.L2.Latency = 7
	cfg.Mem.L3.SizeBytes = 1 << 20
	cfg.Mem.L3.Assoc = 8 // 1MB/128B/8-way divides into power-of-two sets
	cfg.Mem.L3.Latency = 20
	cfg.Mem.MemLatency = 300
	return cfg
}

// PerfectMemoryConfig returns the opposite ablation: every data access costs
// the L1 latency (enormous caches, flat latency), isolating how much of the
// two-pass gain comes from miss tolerance. With no misses to tolerate, 2P
// should collapse to the baseline.
func PerfectMemoryConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Mem.L2.Latency = cfg.Mem.L1D.Latency
	cfg.Mem.L3.Latency = cfg.Mem.L1D.Latency
	cfg.Mem.MemLatency = cfg.Mem.L1D.Latency
	return cfg
}

// MachineComparison is the per-benchmark outcome of running base and 2P on
// an alternative machine.
type MachineComparison struct {
	Benchmark string
	Base2P    float64 // 2P/base on the Table 1 machine
	Alt2P     float64 // 2P/base on the alternative machine
}

// CompareMachines runs base and 2P on both the reference and an alternative
// configuration and reports the normalized 2P cycles under each.
func CompareMachines(ref, alt core.Config, benches []*workload.Benchmark) ([]MachineComparison, error) {
	var out []MachineComparison
	for _, b := range benches {
		ratio := func(cfg core.Config) (float64, error) {
			base, err := core.Run(core.Baseline, cfg, b.Program())
			if err != nil {
				return 0, err
			}
			tp, err := core.Run(core.TwoPass, cfg, b.Program())
			if err != nil {
				return 0, err
			}
			return float64(tp.Cycles) / float64(base.Cycles), nil
		}
		r0, err := ratio(ref)
		if err != nil {
			return nil, fmt.Errorf("%s (reference): %w", b.Name, err)
		}
		r1, err := ratio(alt)
		if err != nil {
			return nil, fmt.Errorf("%s (alternative): %w", b.Name, err)
		}
		out = append(out, MachineComparison{b.Name, r0, r1})
	}
	return out, nil
}

// RenderMachineComparison formats a CompareMachines result.
func RenderMachineComparison(title, altName string, rows []MachineComparison) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-14s %14s %14s\n", "benchmark", "2P (Table 1)", "2P ("+altName+")")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %14.3f %14.3f\n", r.Benchmark, r.Base2P, r.Alt2P)
	}
	return b.String()
}

// IfConvertRow is the outcome of if-converting one benchmark before running
// it on the two-pass machine.
type IfConvertRow struct {
	Benchmark string
	Converted int
	Diamonds  int
	Plain2P   int64 // cycles without if-conversion
	Conv2P    int64 // cycles with if-conversion (re-scheduled)
	MispB     int64 // B-DET mispredictions without conversion
	MispBConv int64 // ... with conversion
}

// IfConvertStudy measures the interaction the paper's compiler context
// implies: converting branch hammocks/diamonds to predication removes
// branches whose mispredictions would otherwise resolve expensively at
// B-DET on the two-pass machine.
func IfConvertStudy(cfg core.Config, names []string) ([]IfConvertRow, error) {
	var out []IfConvertRow
	for _, name := range names {
		b, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		prog := b.Program()
		plain, err := core.Run(core.TwoPass, cfg, prog)
		if err != nil {
			return nil, err
		}
		convProg, st, err := sched.IfConvert(prog, 6)
		if err != nil {
			return nil, err
		}
		convProg, _, err = sched.Schedule(convProg, sched.DefaultConfig())
		if err != nil {
			return nil, err
		}
		conv, err := core.RunVerified(core.TwoPass, cfg, convProg)
		if err != nil {
			return nil, err
		}
		out = append(out, IfConvertRow{
			Benchmark: name, Converted: st.Converted, Diamonds: st.Diamonds,
			Plain2P: plain.Cycles, Conv2P: conv.Cycles,
			MispB: plain.MispredictsB, MispBConv: conv.MispredictsB,
		})
	}
	return out, nil
}

// RenderIfConvertStudy formats an if-conversion study.
func RenderIfConvertStudy(rows []IfConvertRow) string {
	var b strings.Builder
	b.WriteString("If-conversion study: predicating hammocks removes B-DET-resolving branches\n")
	fmt.Fprintf(&b, "%-14s %9s %8s %12s %12s %9s %9s\n",
		"benchmark", "converted", "diamonds", "2P cycles", "2P+ifconv", "mispB", "mispB+ic")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9d %8d %12d %12d %9d %9d\n",
			r.Benchmark, r.Converted, r.Diamonds, r.Plain2P, r.Conv2P, r.MispB, r.MispBConv)
	}
	return b.String()
}
