package mem

// StoreEntry is one uncommitted store held in the speculative store buffer.
// ID is the dynamic instruction ID of the store, which orders entries.
// DataKnown is false for stores whose address was computable in the A-pipe
// but whose data operand was deferred; loads overlapping such an entry must
// themselves be deferred (paper §3.4).
type StoreEntry struct {
	ID        uint64
	Addr      uint32
	Size      int
	Data      uint64
	DataKnown bool
}

func (e *StoreEntry) overlapsByte(addr uint32) bool {
	return addr-e.Addr < uint32(e.Size) // unsigned trick: addr in [Addr, Addr+Size)
}

// StoreBuffer is the speculative store buffer of the two-pass design: stores
// executed in the A-pipe write here (never to architectural memory) and
// forward byte-accurately to younger A-pipe loads. Entries are removed when
// the B-pipe commits the store, or flushed on misprediction/conflict
// recovery. The zero value is an empty buffer.
type StoreBuffer struct {
	entries []StoreEntry // ordered by increasing ID
}

// Len returns the number of buffered stores.
//
//flea:hotpath
func (b *StoreBuffer) Len() int { return len(b.entries) }

// Insert adds a store. IDs must be inserted in increasing order (A-pipe
// program order); Insert panics otherwise, as that indicates a machine bug.
//
//flea:hotpath
func (b *StoreBuffer) Insert(e StoreEntry) {
	if n := len(b.entries); n > 0 && b.entries[n-1].ID >= e.ID {
		panic("mem: StoreBuffer entries must be inserted in increasing ID order")
	}
	b.entries = append(b.entries, e)
}

// ForwardResult describes how a load interacts with the buffer.
type ForwardResult int

const (
	// ForwardNone: no older buffered store overlaps the load; read memory.
	ForwardNone ForwardResult = iota
	// ForwardHit: the load's value was assembled from buffered stores
	// (possibly merged with memory bytes).
	ForwardHit
	// ForwardUnknown: an overlapping older store has unknown data; the
	// load must be deferred to the B-pipe.
	ForwardUnknown
)

// Forward computes the value a load (with dynamic ID loadID) reads, merging
// bytes from the youngest overlapping older store entries with bytes from
// img. size must be ≤ 8.
//
//flea:hotpath
func (b *StoreBuffer) Forward(loadID uint64, addr uint32, size int, img *Image) (val uint64, res ForwardResult) {
	val = img.Read(addr, size)
	for i := 0; i < size; i++ {
		byteAddr := addr + uint32(i)
		// Scan youngest-first among entries older than the load.
		for j := len(b.entries) - 1; j >= 0; j-- {
			e := &b.entries[j]
			if e.ID >= loadID {
				continue
			}
			if !e.overlapsByte(byteAddr) {
				continue
			}
			if !e.DataKnown {
				return 0, ForwardUnknown
			}
			shift := uint((byteAddr - e.Addr) * 8)
			byteVal := uint64(byte(e.Data >> shift))
			val &^= 0xFF << uint(i*8)
			val |= byteVal << uint(i*8)
			res = ForwardHit
			break
		}
	}
	return val, res
}

// OlderUnknownOverlap reports whether any entry older than loadID overlaps
// [addr, addr+size) and has unknown data.
//
//flea:hotpath
func (b *StoreBuffer) OlderUnknownOverlap(loadID uint64, addr uint32, size int) bool {
	for j := range b.entries {
		e := &b.entries[j]
		if e.ID >= loadID || e.DataKnown {
			continue
		}
		if e.Addr < addr+uint32(size) && addr < e.Addr+uint32(e.Size) {
			return true
		}
	}
	return false
}

// HasOlderThan reports whether the buffer holds any entry with ID < id.
// The two-pass machine uses this to detect loads issued past a deferred
// store (for the §4 conflict statistics).
//
//flea:hotpath
func (b *StoreBuffer) HasOlderThan(id uint64) bool {
	return len(b.entries) > 0 && b.entries[0].ID < id
}

// Remove deletes the entry with the given ID, if present.
//
//flea:hotpath
func (b *StoreBuffer) Remove(id uint64) {
	for i := range b.entries {
		if b.entries[i].ID == id {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			return
		}
	}
}

// FlushFrom removes every entry with ID ≥ id (squash on misprediction or
// store-conflict recovery).
//
//flea:hotpath
func (b *StoreBuffer) FlushFrom(id uint64) {
	for i := range b.entries {
		if b.entries[i].ID >= id {
			b.entries = b.entries[:i]
			return
		}
	}
}

// Reset empties the buffer.
func (b *StoreBuffer) Reset() { b.entries = b.entries[:0] }
