package mem

// ALAT is the two-pass Advanced Load Alias Table (paper §3.4): loads executed
// in the A-pipe allocate an entry indexed by dynamic instruction ID; stores
// executed in the B-pipe delete entries with overlapping addresses; when a
// pre-executed load's result is merged in the B-pipe, a missing entry means a
// conflicting store intervened and speculative state must be flushed.
//
// The paper's evaluated configuration is a perfect ALAT ("no capacity
// conflicts", Table 1), the default here (Capacity == 0). A finite capacity
// models the cache-like structure's false-positive conflicts: when the table
// is full, inserting evicts the oldest entry, whose load will then appear to
// have conflicted.
type ALAT struct {
	// Capacity is the maximum number of entries; 0 means unbounded
	// (perfect).
	Capacity int

	entries []alatEntry // ordered by increasing load ID
	// Evictions counts capacity evictions (each one is a future
	// false-positive conflict).
	Evictions int64
}

type alatEntry struct {
	loadID uint64
	addr   uint32
	size   int
}

// Len returns the number of live entries.
func (a *ALAT) Len() int { return len(a.entries) }

// Insert records an A-pipe-executed load. IDs arrive in increasing order.
//
//flea:hotpath
func (a *ALAT) Insert(loadID uint64, addr uint32, size int) {
	if n := len(a.entries); n > 0 && a.entries[n-1].loadID >= loadID {
		panic("mem: ALAT entries must be inserted in increasing ID order")
	}
	if a.Capacity > 0 && len(a.entries) >= a.Capacity {
		a.entries = a.entries[1:] // evict oldest; its check will conflict
		a.Evictions++
	}
	a.entries = append(a.entries, alatEntry{loadID, addr, size})
}

// StoreInvalidate deletes entries of loads younger than storeID whose
// address ranges overlap the store. It returns the number of entries
// invalidated (each is a detected load/store conflict).
//
//flea:hotpath
func (a *ALAT) StoreInvalidate(storeID uint64, addr uint32, size int) int {
	n := 0
	dst := a.entries[:0]
	for _, e := range a.entries {
		conflict := e.loadID > storeID &&
			e.addr < addr+uint32(size) && addr < e.addr+uint32(e.size)
		if conflict {
			n++
			continue
		}
		dst = append(dst, e)
	}
	a.entries = dst
	return n
}

// CheckAndRemove verifies that the entry for loadID survives (no conflicting
// store intervened) and removes it. It returns false — signalling that a
// store-conflict flush is required — if the entry is missing.
//
//flea:hotpath
func (a *ALAT) CheckAndRemove(loadID uint64) bool {
	for i := range a.entries {
		if a.entries[i].loadID == loadID {
			a.entries = append(a.entries[:i], a.entries[i+1:]...)
			return true
		}
	}
	return false
}

// FlushFrom removes every entry with loadID ≥ id.
//
//flea:hotpath
func (a *ALAT) FlushFrom(id uint64) {
	for i := range a.entries {
		if a.entries[i].loadID >= id {
			a.entries = a.entries[:i]
			return
		}
	}
}

// Reset empties the table (statistics are preserved).
func (a *ALAT) Reset() { a.entries = a.entries[:0] }
