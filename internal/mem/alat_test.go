package mem

import "testing"

func TestALATBasicConflict(t *testing.T) {
	var a ALAT
	a.Insert(10, 100, 4)
	// An older store to an overlapping address invalidates the entry.
	if n := a.StoreInvalidate(5, 102, 4); n != 1 {
		t.Fatalf("StoreInvalidate = %d, want 1", n)
	}
	if a.CheckAndRemove(10) {
		t.Errorf("conflicted load should fail its ALAT check")
	}
}

func TestALATNoConflictCases(t *testing.T) {
	var a ALAT
	a.Insert(10, 100, 4)
	// A younger store does not invalidate (program order not violated).
	if n := a.StoreInvalidate(20, 100, 4); n != 0 {
		t.Errorf("younger store invalidated entry")
	}
	// A disjoint older store does not invalidate.
	if n := a.StoreInvalidate(5, 104, 4); n != 0 {
		t.Errorf("disjoint store invalidated entry")
	}
	if !a.CheckAndRemove(10) {
		t.Errorf("unconflicted load should pass its check")
	}
	// The check consumes the entry.
	if a.CheckAndRemove(10) {
		t.Errorf("second check of same load should fail (entry consumed)")
	}
}

func TestALATByteGranularOverlap(t *testing.T) {
	var a ALAT
	a.Insert(10, 100, 1)
	if n := a.StoreInvalidate(5, 100, 1); n != 1 {
		t.Errorf("exact single-byte overlap missed")
	}
	a.Insert(11, 200, 4)
	if n := a.StoreInvalidate(5, 203, 8); n != 1 {
		t.Errorf("one-byte boundary overlap missed")
	}
	a.Insert(12, 300, 4)
	if n := a.StoreInvalidate(5, 304, 4); n != 0 {
		t.Errorf("adjacent non-overlap treated as conflict")
	}
}

func TestALATFlushFrom(t *testing.T) {
	var a ALAT
	a.Insert(1, 0, 4)
	a.Insert(2, 8, 4)
	a.Insert(3, 16, 4)
	a.FlushFrom(2)
	if a.Len() != 1 {
		t.Fatalf("Len after FlushFrom = %d", a.Len())
	}
	if !a.CheckAndRemove(1) {
		t.Errorf("entry 1 should survive the flush")
	}
}

func TestALATCapacityEvictions(t *testing.T) {
	a := ALAT{Capacity: 2}
	a.Insert(1, 0, 4)
	a.Insert(2, 8, 4)
	a.Insert(3, 16, 4) // evicts entry 1
	if a.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", a.Evictions)
	}
	if a.CheckAndRemove(1) {
		t.Errorf("evicted entry must look like a conflict (false positive)")
	}
	if !a.CheckAndRemove(2) || !a.CheckAndRemove(3) {
		t.Errorf("surviving entries lost")
	}
}

func TestALATPerfectUnbounded(t *testing.T) {
	var a ALAT // Capacity 0: perfect
	for i := uint64(1); i <= 1000; i++ {
		a.Insert(i, uint32(i*64), 4)
	}
	if a.Evictions != 0 || a.Len() != 1000 {
		t.Errorf("perfect ALAT evicted entries")
	}
}

func TestALATInsertOrderPanics(t *testing.T) {
	var a ALAT
	a.Insert(5, 0, 4)
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-order insert should panic")
		}
	}()
	a.Insert(5, 4, 4)
}
