package mem

import (
	"testing"
	"testing/quick"
)

func TestImageZeroFill(t *testing.T) {
	m := NewImage()
	if m.Byte(0x1234) != 0 {
		t.Errorf("untouched memory should read zero")
	}
	if m.Read(0xFFFF0000, 8) != 0 {
		t.Errorf("untouched 8-byte read should be zero")
	}
}

func TestImageReadWrite(t *testing.T) {
	m := NewImage()
	m.Write(100, 4, 0xDEADBEEF)
	if got := m.Read(100, 4); got != 0xDEADBEEF {
		t.Errorf("Read(100,4) = %#x, want 0xDEADBEEF", got)
	}
	// little-endian byte order
	if m.Byte(100) != 0xEF || m.Byte(103) != 0xDE {
		t.Errorf("little-endian layout wrong: % x", []byte{m.Byte(100), m.Byte(101), m.Byte(102), m.Byte(103)})
	}
	// sub-word read
	if got := m.Read(101, 2); got != 0xADBE {
		t.Errorf("Read(101,2) = %#x, want 0xADBE", got)
	}
}

func TestImageCrossPage(t *testing.T) {
	m := NewImage()
	addr := uint32(pageSize - 2) // straddles the first page boundary
	m.Write(addr, 4, 0x11223344)
	if got := m.Read(addr, 4); got != 0x11223344 {
		t.Errorf("cross-page read = %#x, want 0x11223344", got)
	}
}

func TestImageWrapAround(t *testing.T) {
	m := NewImage()
	m.Write(0xFFFFFFFE, 4, 0xAABBCCDD)
	if got := m.Read(0xFFFFFFFE, 4); got != 0xAABBCCDD {
		t.Errorf("address-space wraparound read = %#x", got)
	}
	if m.Byte(0) != 0xBB || m.Byte(1) != 0xAA {
		t.Errorf("wrapped bytes landed wrong")
	}
}

func TestImageCloneIsDeep(t *testing.T) {
	m := NewImage()
	m.WriteU32(40, 7)
	c := m.Clone()
	c.WriteU32(40, 9)
	if m.ReadU32(40) != 7 {
		t.Errorf("clone mutated the original")
	}
	if c.ReadU32(40) != 9 {
		t.Errorf("clone write lost")
	}
}

func TestImageEqual(t *testing.T) {
	a, b := NewImage(), NewImage()
	if !a.Equal(b) {
		t.Errorf("two empty images should be equal")
	}
	a.WriteU32(0x5000, 42)
	if a.Equal(b) {
		t.Errorf("images differ, Equal said equal")
	}
	b.WriteU32(0x5000, 42)
	if !a.Equal(b) {
		t.Errorf("identical images, Equal said unequal")
	}
	// An explicitly-written zero equals an untouched page.
	b.WriteU32(0x9000, 0)
	if !a.Equal(b) {
		t.Errorf("zero-written page should equal absent page")
	}
}

func TestImageFirstDifference(t *testing.T) {
	a, b := NewImage(), NewImage()
	if _, ok := a.FirstDifference(b); ok {
		t.Errorf("equal images should report no difference")
	}
	a.SetByte(0x2005, 1)
	a.SetByte(0x2002, 1)
	addr, ok := a.FirstDifference(b)
	if !ok || addr != 0x2002 {
		t.Errorf("FirstDifference = %#x,%v; want 0x2002,true", addr, ok)
	}
}

// Property: Read(Write(v)) == truncate(v) for all sizes, offsets.
func TestImageRoundTripProperty(t *testing.T) {
	m := NewImage()
	f := func(addr uint32, v uint64, szSel uint8) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		m.Write(addr, size, v)
		want := v
		if size < 8 {
			want = v & (1<<(8*size) - 1)
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
