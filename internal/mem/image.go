// Package mem implements the memory subsystem: the functional backing store
// (Image), the timing model of the cache hierarchy of Table 1 in the paper
// (set-associative L1I/L1D/L2/L3 with LRU replacement and a main-memory
// latency), a bounded pool of outstanding misses (the "Max Outstanding
// Loads" MSHR limit) and the speculative store buffer used by the two-pass
// A-pipe.
package mem

import (
	"encoding/binary"
	"sort"
)

const pageBits = 12
const pageSize = 1 << pageBits

// PageBytes is the size of one image page; PageBases returns addresses at
// this granularity.
const PageBytes = pageSize

// Image is the functional (value-holding) memory: a sparse, paged, 32-bit
// byte-addressable space. The zero value is an empty memory that reads as
// zero. Timing is modelled separately by Hierarchy; caches hold no data.
type Image struct {
	pages map[uint32]*[pageSize]byte
	// shared marks pages whose storage is co-owned by one or more
	// ImageSnapshots (copy-on-write): a write to a shared page first faults
	// it to a private copy. nil (the common case) means no snapshot was ever
	// taken and the write path pays only a nil map lookup.
	shared map[uint32]bool
	// onWrite, when set, observes every Write in call order. The machine
	// models funnel architectural store commits through Write, so an
	// observer attached after construction sees exactly the committed-store
	// sequence (see StoreLog and core.WithStoreLog).
	onWrite func(addr uint32, size int, v uint64)
}

// NewImage returns an empty memory image.
func NewImage() *Image {
	return &Image{pages: make(map[uint32]*[pageSize]byte)}
}

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	c := NewImage()
	//flea:orderinvariant every page is copied; the result does not depend on visit order
	for k, p := range m.pages {
		np := *p
		c.pages[k] = &np
	}
	return c
}

// page returns the backing array for addr's page. With create set it is the
// copy-on-write fault path: a page still shared with a snapshot is copied
// (or, for a hole, freshly allocated) before the caller writes through the
// returned pointer. Every store into an Image must reach its page through a
// call on this path — snapshotalias enforces that.
//
//flea:cowfault
func (m *Image) page(addr uint32, create bool) *[pageSize]byte {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	k := addr >> pageBits
	p := m.pages[k]
	if p == nil {
		if create {
			p = new([pageSize]byte)
			m.pages[k] = p
		}
		return p
	}
	if create && m.shared != nil && m.shared[k] {
		// Copy-on-write fault: the page's storage belongs to a snapshot;
		// give this image a private copy before it is written.
		np := *p
		p = &np
		m.pages[k] = p
		delete(m.shared, k)
	}
	return p
}

// PageBases returns the base addresses of every allocated page in ascending
// order, for sparse serialization of the image.
func (m *Image) PageBases() []uint32 {
	bases := make([]uint32, 0, len(m.pages))
	//flea:orderinvariant set construction; the bases are sorted before use
	for k := range m.pages {
		bases = append(bases, k<<pageBits)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases
}

// Byte returns the byte at addr. The masked page index compiles without a
// bounds check.
//
//flea:inline
//flea:noescape
//flea:bce
func (m *Image) Byte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// SetByte stores b at addr. The masked page index compiles without a
// bounds check.
//
//flea:inline
//flea:noescape
//flea:bce
func (m *Image) SetByte(addr uint32, b byte) {
	m.page(addr, true)[addr&(pageSize-1)] = b
}

// Read returns size bytes starting at addr as a little-endian integer.
// size must be 1, 2, 4 or 8. Accesses may cross page boundaries.
func (m *Image) Read(addr uint32, size int) uint64 {
	var buf [8]byte
	for i := 0; i < size; i++ {
		buf[i] = m.Byte(addr + uint32(i))
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// Write stores the low size bytes of v at addr, little-endian.
func (m *Image) Write(addr uint32, size int, v uint64) {
	if m.onWrite != nil {
		m.onWrite(addr, size, v)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint32(i), buf[i])
	}
}

// Observe attaches fn as the image's write observer; nil detaches it. Clones
// do not inherit the observer.
func (m *Image) Observe(fn func(addr uint32, size int, v uint64)) { m.onWrite = fn }

// ReadU32 reads a 32-bit little-endian word.
func (m *Image) ReadU32(addr uint32) uint32 { return uint32(m.Read(addr, 4)) }

// WriteU32 writes a 32-bit little-endian word.
func (m *Image) WriteU32(addr uint32, v uint32) { m.Write(addr, 4, uint64(v)) }

// ReadF64 reads an 8-byte float.
func (m *Image) ReadF64(addr uint32) uint64 { return m.Read(addr, 8) }

// WriteF64 writes an 8-byte float (as raw bits).
func (m *Image) WriteF64(addr uint32, bits uint64) { m.Write(addr, 8, bits) }

// Equal reports whether two images hold identical contents.
func (m *Image) Equal(o *Image) bool {
	return m.subset(o) && o.subset(m)
}

// subset reports whether every nonzero byte of m matches o.
func (m *Image) subset(o *Image) bool {
	//flea:orderinvariant conjunction over all pages; order cannot change the verdict
	for k, p := range m.pages {
		op := o.pages[k]
		for i, b := range p {
			var ob byte
			if op != nil {
				ob = op[i]
			}
			if b != ob {
				return false
			}
		}
	}
	return true
}

// FirstDifference returns the lowest address within pages present in either
// image at which the two images differ, for test diagnostics. ok is false if
// the images are equal.
func (m *Image) FirstDifference(o *Image) (addr uint32, ok bool) {
	seen := make(map[uint32]bool)
	//flea:orderinvariant set construction; membership is order-independent
	for k := range m.pages {
		seen[k] = true
	}
	//flea:orderinvariant set construction; membership is order-independent
	for k := range o.pages {
		seen[k] = true
	}
	best := uint64(1 << 33)
	//flea:orderinvariant computes a minimum over the set; order cannot change it
	for k := range seen {
		base := k << pageBits
		for i := 0; i < pageSize; i++ {
			a := base + uint32(i)
			if m.Byte(a) != o.Byte(a) && uint64(a) < best {
				best = uint64(a)
			}
		}
	}
	if best == 1<<33 {
		return 0, false
	}
	return uint32(best), true
}

// Differences returns the lowest max addresses at which the two images
// differ, in ascending order, for structured divergence reports. An empty
// slice means the images are equal (or max <= 0).
func (m *Image) Differences(o *Image, max int) []uint32 {
	if max <= 0 {
		return nil
	}
	keys := make([]uint32, 0, len(m.pages)+len(o.pages))
	//flea:orderinvariant set construction; the keys are sorted before use
	for k := range m.pages {
		keys = append(keys, k)
	}
	//flea:orderinvariant set construction; the keys are sorted before use
	for k := range o.pages {
		if _, dup := m.pages[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var zero [pageSize]byte
	var diffs []uint32
	for _, k := range keys {
		pa, pb := m.pages[k], o.pages[k]
		// Copy-on-write aliasing makes untouched pages pointer-identical
		// (both images materialized from one snapshot), so most pages of a
		// checkpoint-resumed run compare in one pointer check; the rest
		// compare as whole arrays before any per-byte scan.
		if pa == pb {
			continue
		}
		if pa == nil {
			pa = &zero
		}
		if pb == nil {
			pb = &zero
		}
		if *pa == *pb {
			continue
		}
		base := k << pageBits
		for i := range pa {
			if pa[i] != pb[i] {
				diffs = append(diffs, base+uint32(i))
				if len(diffs) >= max {
					return diffs
				}
			}
		}
	}
	return diffs
}
