package mem

import (
	"fmt"
	"sort"
)

// ImageSnapshot is an immutable copy-on-write view of an Image at one point
// in time: taking one copies only the page table, and the pages themselves
// stay shared until the source image (or any image later materialized from
// the snapshot) writes to them, at which point the writer faults the page to
// a private copy. A snapshot's pages are therefore never mutated, which makes
// one snapshot safe to materialize from many goroutines at once (the
// differential lattice resumes every cell from the same snapshot).
type ImageSnapshot struct {
	pages map[uint32]*[pageSize]byte
}

// Snapshot captures the image's current contents as an immutable snapshot.
// Cost is one page-table copy; every live page is marked shared so later
// writes through this image copy-on-write instead of mutating the snapshot.
func (m *Image) Snapshot() *ImageSnapshot {
	if m.shared == nil {
		m.shared = make(map[uint32]bool, len(m.pages))
	}
	pages := make(map[uint32]*[pageSize]byte, len(m.pages))
	//flea:orderinvariant every page is referenced; the result does not depend on visit order
	for k, p := range m.pages {
		pages[k] = p
		m.shared[k] = true
	}
	return &ImageSnapshot{pages: pages}
}

// Image materializes a fresh Image backed by the snapshot's pages. The new
// image shares every page copy-on-write, so materialization is another
// page-table copy; it carries no write observer (attach one with Observe).
func (s *ImageSnapshot) Image() *Image {
	img := &Image{
		pages:  make(map[uint32]*[pageSize]byte, len(s.pages)),
		shared: make(map[uint32]bool, len(s.pages)),
	}
	//flea:orderinvariant every page is referenced; the result does not depend on visit order
	for k, p := range s.pages {
		img.pages[k] = p
		img.shared[k] = true
	}
	return img
}

// Pages returns the number of pages the snapshot holds.
func (s *ImageSnapshot) Pages() int { return len(s.pages) }

// Byte returns the byte at addr as of the snapshot.
func (s *ImageSnapshot) Byte(addr uint32) byte {
	p := s.pages[addr>>pageBits]
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// EachPage calls fn for every page in ascending base-address order, for
// deterministic serialization. The page array must not be modified.
func (s *ImageSnapshot) EachPage(fn func(base uint32, data *[PageBytes]byte)) {
	keys := make([]uint32, 0, len(s.pages))
	//flea:orderinvariant set construction; the keys are sorted before use
	for k := range s.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fn(k<<pageBits, s.pages[k])
	}
}

// NewImageSnapshot returns an empty snapshot, to be populated with SetPage —
// the deserialization counterpart of EachPage.
func NewImageSnapshot() *ImageSnapshot {
	return &ImageSnapshot{pages: make(map[uint32]*[pageSize]byte)}
}

// SetPage installs one page of exactly PageBytes bytes at base (which must be
// page-aligned). The data is copied.
func (s *ImageSnapshot) SetPage(base uint32, data []byte) error {
	if base&(pageSize-1) != 0 {
		return fmt.Errorf("mem: snapshot page base %#x is not %d-byte aligned", base, pageSize)
	}
	if len(data) != pageSize {
		return fmt.Errorf("mem: snapshot page at %#x has %d bytes, want %d", base, len(data), pageSize)
	}
	p := new([pageSize]byte)
	copy(p[:], data)
	s.pages[base>>pageBits] = p
	return nil
}
