package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	Assoc     int // ways per set
	LineBytes int // line size (power of two)
	Latency   int // total load-use latency when the access is served here
}

func (c CacheConfig) validate(name string) error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: %s line size %d is not a positive power of two", name, c.LineBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("mem: %s associativity %d must be positive", name, c.Assoc)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines <= 0 || lines%c.Assoc != 0 {
		return fmt.Errorf("mem: %s size/line/assoc %d/%d/%d does not divide into whole sets",
			name, c.SizeBytes, c.LineBytes, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s set count %d is not a power of two", name, sets)
	}
	return nil
}

// CacheStats counts the traffic seen by one cache.
type CacheStats struct {
	Accesses   int64
	Misses     int64
	Writebacks int64
}

type way struct {
	tag   uint32
	valid bool
	dirty bool
	lru   uint64 // last-touch tick; larger = more recent
}

// cache is a timing-only set-associative cache with LRU replacement. It
// holds no data — the functional Image is the single source of values.
type cache struct {
	cfg       CacheConfig
	lineShift uint
	setShift  uint
	setMask   uint32
	sets      [][]way
	tick      uint64
	stats     CacheStats
}

func newCache(cfg CacheConfig, name string) *cache {
	if err := cfg.validate(name); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	nsets := cfg.SizeBytes / cfg.LineBytes / cfg.Assoc
	setShift := uint(0)
	for 1<<setShift != nsets {
		setShift++
	}
	sets := make([][]way, nsets)
	backing := make([]way, nsets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc:cfg.Assoc], backing[cfg.Assoc:]
	}
	return &cache{cfg: cfg, lineShift: shift, setShift: setShift, setMask: uint32(nsets - 1), sets: sets}
}

//flea:hotpath
func (c *cache) index(addr uint32) (set uint32, tag uint32) {
	line := addr >> c.lineShift
	return line & c.setMask, line >> c.setShift
}

// lineOf returns the line number containing addr.
//
//flea:hotpath
func (c *cache) lineOf(addr uint32) uint32 { return addr >> c.lineShift }

// lookup probes for addr; on hit the line's LRU state is refreshed.
//
//flea:hotpath
func (c *cache) lookup(addr uint32) bool {
	c.tick++
	c.stats.Accesses++
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			w.lru = c.tick
			return true
		}
	}
	c.stats.Misses++
	return false
}

// fill installs the line containing addr, evicting the LRU way if needed.
// It reports whether a dirty line was written back.
//
//flea:hotpath
func (c *cache) fill(addr uint32, dirty bool) (writeback bool) {
	c.tick++
	set, tag := c.index(addr)
	victim := 0
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag { // already present (racing fill)
			w.lru = c.tick
			w.dirty = w.dirty || dirty
			return false
		}
		if !w.valid {
			victim = i
			break
		}
		if c.sets[set][i].lru < c.sets[set][victim].lru {
			victim = i
		}
	}
	w := &c.sets[set][victim]
	writeback = w.valid && w.dirty
	if writeback {
		c.stats.Writebacks++
	}
	*w = way{tag: tag, valid: true, dirty: dirty, lru: c.tick}
	return writeback
}

// setDirty marks the line containing addr dirty if present; reports presence.
//
//flea:hotpath
func (c *cache) setDirty(addr uint32) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			w.dirty = true
			w.lru = c.tick
			return true
		}
	}
	return false
}
