package mem

import "fmt"

// This file exposes the hierarchy's mutable timing state for machine
// checkpoints (internal/checkpoint): every cache way, the LRU clocks, the
// traffic statistics, and the in-flight fill pool. All of it is slice-backed,
// so capture and restore are deterministic by construction.

// WayState is the serializable state of one cache way.
type WayState struct {
	Tag   uint32
	Valid bool
	Dirty bool
	LRU   uint64
}

// CacheState is the serializable state of one cache level: its ways in
// set-major order, the LRU clock, and the level's traffic counters.
type CacheState struct {
	Ways  []WayState
	Tick  uint64
	Stats CacheStats
}

// InflightFill is one pending L1D fill (absolute completion cycle).
type InflightFill struct {
	Line  uint32
	Done  int64
	Level Level
}

// HierarchyState is the full serializable state of a Hierarchy.
type HierarchyState struct {
	L1I, L1D, L2, L3 CacheState
	// Base holds the hierarchy-level counters (served levels, stores); its
	// per-cache fields are zero — cache traffic lives in each CacheState.
	Base Stats
	// Inflight holds the pending fills, in issue order.
	Inflight []InflightFill
}

func (c *cache) captureState() CacheState {
	s := CacheState{Ways: make([]WayState, 0, len(c.sets)*c.cfg.Assoc), Tick: c.tick, Stats: c.stats}
	for _, set := range c.sets {
		for _, w := range set {
			s.Ways = append(s.Ways, WayState{Tag: w.tag, Valid: w.valid, Dirty: w.dirty, LRU: w.lru})
		}
	}
	return s
}

func (c *cache) restoreState(s CacheState, name string) error {
	if len(s.Ways) != len(c.sets)*c.cfg.Assoc {
		return fmt.Errorf("mem: %s snapshot has %d ways, cache has %d (geometry mismatch)",
			name, len(s.Ways), len(c.sets)*c.cfg.Assoc)
	}
	i := 0
	for _, set := range c.sets {
		for j := range set {
			w := s.Ways[i]
			set[j] = way{tag: w.Tag, valid: w.Valid, dirty: w.Dirty, lru: w.LRU}
			i++
		}
	}
	c.tick = s.Tick
	c.stats = s.Stats
	return nil
}

// CaptureState snapshots the hierarchy's mutable timing state. The result is
// independent of the hierarchy (safe to retain across further simulation).
func (h *Hierarchy) CaptureState() *HierarchyState {
	s := &HierarchyState{
		L1I:  h.l1i.captureState(),
		L1D:  h.l1d.captureState(),
		L2:   h.l2.captureState(),
		L3:   h.l3.captureState(),
		Base: h.stats,
	}
	s.Inflight = make([]InflightFill, 0, len(h.inflight))
	for _, f := range h.inflight {
		s.Inflight = append(s.Inflight, InflightFill{Line: f.line, Done: f.done, Level: f.level})
	}
	return s
}

// RestoreState reinstates a captured hierarchy state. The hierarchy must have
// the same configuration the state was captured under.
func (h *Hierarchy) RestoreState(s *HierarchyState) error {
	if err := h.l1i.restoreState(s.L1I, "L1I"); err != nil {
		return err
	}
	if err := h.l1d.restoreState(s.L1D, "L1D"); err != nil {
		return err
	}
	if err := h.l2.restoreState(s.L2, "L2"); err != nil {
		return err
	}
	if err := h.l3.restoreState(s.L3, "L3"); err != nil {
		return err
	}
	h.stats = s.Base
	h.inflight = h.inflight[:0]
	for _, f := range s.Inflight {
		h.inflight = append(h.inflight, inflightFill{line: f.Line, done: f.Done, level: f.Level})
	}
	return nil
}
