package mem

// StoreCommit is one architecturally committed store: the little-endian
// value v written to size bytes at addr.
type StoreCommit struct {
	Addr uint32
	Size int
	Val  uint64
}

// storeLogPrefix bounds how many commits a StoreLog retains verbatim; the
// order of everything beyond it is still covered by the rolling hash, so
// unbounded programs cannot exhaust memory while order divergence anywhere
// in the stream is still detected.
const storeLogPrefix = 1 << 16

// StoreLog records the architectural store-commit sequence of one run, for
// cross-model committed-store-order comparison. Every machine model (and the
// reference executor) commits stores in program order through Image.Write,
// so two correct runs of one program produce identical logs. Attach with
// Image.Observe (or core.WithStoreLog); Reset between runs to reuse one log.
type StoreLog struct {
	prefix []StoreCommit
	n      int64
	hash   uint64
}

// Record appends one commit; it has the signature Image.Observe expects.
func (l *StoreLog) Record(addr uint32, size int, v uint64) {
	if len(l.prefix) < storeLogPrefix {
		l.prefix = append(l.prefix, StoreCommit{Addr: addr, Size: size, Val: v})
	}
	l.n++
	// FNV-1a over the commit's identity, order-sensitive via chaining.
	const fnvPrime = 1099511628211
	h := l.hash
	if h == 0 {
		h = 14695981039346656037 // FNV offset basis
	}
	for _, w := range [3]uint64{uint64(addr), uint64(size), v} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xFF
			h *= fnvPrime
		}
	}
	l.hash = h
}

// Seed initializes the log to the state another log had after recording n
// commits: the resumed run's log then continues exactly where the producer's
// left off, so a checkpoint-resumed simulation yields the same final log as a
// from-zero run. The prefix is copied.
func (l *StoreLog) Seed(prefix []StoreCommit, n int64, hash uint64) {
	l.prefix = append(l.prefix[:0], prefix...)
	l.n = n
	l.hash = hash
}

// Reset clears the log for reuse, keeping the prefix storage.
func (l *StoreLog) Reset() {
	l.prefix = l.prefix[:0]
	l.n = 0
	l.hash = 0
}

// Len returns the number of recorded commits.
func (l *StoreLog) Len() int64 { return l.n }

// Hash returns the order-sensitive digest of the full commit sequence.
func (l *StoreLog) Hash() uint64 { return l.hash }

// Prefix returns the retained leading commits (all of them for programs
// under the retention bound).
func (l *StoreLog) Prefix() []StoreCommit { return l.prefix }

// FirstDivergence locates the first position at which two logs differ.
// ok is false when the logs are identical. Beyond the retained prefix only
// the digest distinguishes the logs; then idx = -1.
func (l *StoreLog) FirstDivergence(o *StoreLog) (idx int64, ok bool) {
	if l.n == o.n && l.hash == o.hash {
		return 0, false
	}
	shorter := len(l.prefix)
	if len(o.prefix) < shorter {
		shorter = len(o.prefix)
	}
	for i := 0; i < shorter; i++ {
		if l.prefix[i] != o.prefix[i] {
			return int64(i), true
		}
	}
	if int64(shorter) < l.n || int64(shorter) < o.n {
		if shorter < storeLogPrefix {
			return int64(shorter), true // one log simply ended here
		}
		return -1, true // differs past the retained prefix
	}
	return -1, true
}

// At returns the retained commit at idx, ok=false when it fell outside the
// prefix (or idx is the one-past-the-end position of a shorter log).
func (l *StoreLog) At(idx int64) (StoreCommit, bool) {
	if idx < 0 || idx >= int64(len(l.prefix)) {
		return StoreCommit{}, false
	}
	return l.prefix[idx], true
}
