package mem

// Level identifies where in the hierarchy an access was served.
type Level int

// Hierarchy levels, ordered nearest-first.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelMem
	NumLevels
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMem:
		return "Mem"
	}
	return "?"
}

// Config describes the whole hierarchy. DefaultConfig matches Table 1 of the
// paper.
type Config struct {
	L1I        CacheConfig
	L1D        CacheConfig
	L2         CacheConfig
	L3         CacheConfig
	MemLatency int
	// MaxOutstanding bounds the number of data-load misses in flight
	// ("Max Outstanding Loads", Table 1).
	MaxOutstanding int
}

// DefaultConfig returns the machine configuration of Table 1:
// L1I/L1D 2-cycle 16KB 4-way 64B, L2 5-cycle 256KB 8-way 128B,
// L3 15-cycle 1.5MB 12-way 128B, main memory 145 cycles, 16 outstanding
// loads.
func DefaultConfig() Config {
	return Config{
		L1I:            CacheConfig{SizeBytes: 16 << 10, Assoc: 4, LineBytes: 64, Latency: 2},
		L1D:            CacheConfig{SizeBytes: 16 << 10, Assoc: 4, LineBytes: 64, Latency: 2},
		L2:             CacheConfig{SizeBytes: 256 << 10, Assoc: 8, LineBytes: 128, Latency: 5},
		L3:             CacheConfig{SizeBytes: 1536 << 10, Assoc: 12, LineBytes: 128, Latency: 15},
		MemLatency:     145,
		MaxOutstanding: 16,
	}
}

// Stats aggregates hierarchy traffic.
type Stats struct {
	L1I, L1D, L2, L3 CacheStats
	// DataServed[lvl] counts data loads served at each level.
	DataServed [NumLevels]int64
	// FetchServed[lvl] counts instruction fetches served at each level.
	FetchServed [NumLevels]int64
	Stores      int64
}

// Hierarchy is the timing model of the cache/memory system. It is
// deliberately data-free: values live in the functional Image, and the
// hierarchy answers only "how long does this access take, and which level
// served it?". Fills are eager (a missing line is installed at access time)
// with in-flight misses tracked separately so that accesses to a line already
// being fetched complete when that fetch does rather than starting a new one.
type Hierarchy struct {
	cfg   Config
	l1i   *cache
	l1d   *cache
	l2    *cache
	l3    *cache
	stats Stats

	// inflight holds the pending L1D fills (completion cycle and serving
	// level per line); used for MSHR occupancy, miss merging, and
	// attribution of merged accesses. It is a small slice, not a map: it
	// holds at most MaxOutstanding entries, so linear scans beat hashing
	// and the backing array is reused forever (no per-miss allocation).
	inflight []inflightFill
	// needScratch is CanAcceptLoads' reusable distinct-missing-lines
	// buffer.
	needScratch []uint32
}

type inflightFill struct {
	line  uint32
	done  int64
	level Level
}

// findInflight returns the pending fill for line, or nil.
//
//flea:hotpath
func (h *Hierarchy) findInflight(line uint32) *inflightFill {
	for i := range h.inflight {
		if h.inflight[i].line == line {
			return &h.inflight[i]
		}
	}
	return nil
}

// NewHierarchy builds a hierarchy; panics on invalid configuration (a
// configuration is program input, not runtime data).
func NewHierarchy(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg:      cfg,
		l1i:      newCache(cfg.L1I, "L1I"),
		l1d:      newCache(cfg.L1D, "L1D"),
		l2:       newCache(cfg.L2, "L2"),
		l3:       newCache(cfg.L3, "L3"),
		inflight: make([]inflightFill, 0, cfg.MaxOutstanding),
	}
}

// Config returns the configuration the hierarchy was built with.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a snapshot of the accumulated statistics.
func (h *Hierarchy) Stats() Stats {
	s := h.stats
	s.L1I, s.L1D, s.L2, s.L3 = h.l1i.stats, h.l1d.stats, h.l2.stats, h.l3.stats
	return s
}

//flea:hotpath
func (h *Hierarchy) purgeInflight(now int64) {
	kept := h.inflight[:0]
	for _, f := range h.inflight {
		if f.done > now {
			kept = append(kept, f)
		}
	}
	h.inflight = kept
}

// Outstanding returns the number of data-load misses still in flight at now.
//
//flea:hotpath
func (h *Hierarchy) Outstanding(now int64) int {
	h.purgeInflight(now)
	return len(h.inflight)
}

// CanAcceptLoad reports whether a data load issued at now could obtain a miss
// slot if it misses the L1D. Loads that would hit (or merge with an in-flight
// line) are always acceptable.
//
//flea:hotpath
func (h *Hierarchy) CanAcceptLoad(addr uint32, now int64) bool {
	h.purgeInflight(now)
	if len(h.inflight) < h.cfg.MaxOutstanding {
		return true
	}
	if h.findInflight(h.l1d.lineOf(addr)) != nil {
		return true
	}
	// A full MSHR pool still permits L1 hits.
	set, tag := h.l1d.index(addr)
	for i := range h.l1d.sets[set] {
		w := &h.l1d.sets[set][i]
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// CanAcceptLoads reports whether all the given loads, issued together at
// now, can obtain miss slots. Distinct missing lines each need a slot;
// L1-resident and in-flight lines do not.
//
//flea:hotpath
func (h *Hierarchy) CanAcceptLoads(addrs []uint32, now int64) bool {
	h.purgeInflight(now)
	free := h.cfg.MaxOutstanding - len(h.inflight)
	needed := h.needScratch[:0]
lines:
	for _, addr := range addrs {
		line := h.l1d.lineOf(addr)
		if h.findInflight(line) != nil {
			continue
		}
		set, tag := h.l1d.index(addr)
		for i := range h.l1d.sets[set] {
			w := &h.l1d.sets[set][i]
			if w.valid && w.tag == tag {
				continue lines
			}
		}
		for _, l := range needed {
			if l == line {
				continue lines
			}
		}
		needed = append(needed, line)
	}
	h.needScratch = needed
	return len(needed) <= free
}

// Load performs a data load at cycle now and returns its total load-use
// latency and the level that served it. The caller must have checked
// CanAcceptLoad; a load that misses with a full MSHR pool panics, because it
// indicates a machine-model bug (machines must stall or defer instead).
//
//flea:hotpath
func (h *Hierarchy) Load(addr uint32, now int64) (latency int, served Level) {
	h.purgeInflight(now)
	line := h.l1d.lineOf(addr)
	if f := h.findInflight(line); f != nil && f.done > now {
		// Merge with the in-flight fill of the same line: the access
		// completes when the pending fill does and is attributed to the
		// level that fill came from.
		h.l1d.stats.Accesses++
		lat := int(f.done - now)
		if lat < h.cfg.L1D.Latency {
			lat = h.cfg.L1D.Latency
		}
		h.stats.DataServed[f.level]++
		return lat, f.level
	}
	if h.l1d.lookup(addr) {
		h.stats.DataServed[LevelL1]++
		return h.cfg.L1D.Latency, LevelL1
	}
	// L1D miss: find the serving level, fill inward.
	var lat int
	if h.l2.lookup(addr) {
		lat, served = h.cfg.L2.Latency, LevelL2
	} else if h.l3.lookup(addr) {
		lat, served = h.cfg.L3.Latency, LevelL3
		h.l2.fill(addr, false)
	} else {
		lat, served = h.cfg.MemLatency, LevelMem
		h.l3.fill(addr, false)
		h.l2.fill(addr, false)
	}
	h.l1d.fill(addr, false)
	if len(h.inflight) >= h.cfg.MaxOutstanding {
		panic("mem: Load issued with MSHR pool full; caller must check CanAcceptLoad")
	}
	h.inflight = append(h.inflight, inflightFill{line: line, done: now + int64(lat), level: served})
	h.stats.DataServed[served]++
	return lat, served
}

// Store performs a data store at cycle now. Stores are absorbed by the store
// buffer / write path and do not stall the pipeline, but they do perturb the
// cache contents (write-allocate, write-back).
//
//flea:hotpath
func (h *Hierarchy) Store(addr uint32, now int64) {
	h.stats.Stores++
	if h.l1d.lookup(addr) {
		h.l1d.setDirty(addr)
		return
	}
	if !h.l2.lookup(addr) {
		if !h.l3.lookup(addr) {
			h.l3.fill(addr, false)
		}
		h.l2.fill(addr, false)
	}
	h.l1d.fill(addr, true)
}

// Fetch performs an instruction fetch of the line containing addr and
// returns its latency and serving level. Instruction misses do not consume
// data MSHRs.
//
//flea:hotpath
func (h *Hierarchy) Fetch(addr uint32, now int64) (latency int, served Level) {
	if h.l1i.lookup(addr) {
		h.stats.FetchServed[LevelL1]++
		return h.cfg.L1I.Latency, LevelL1
	}
	var lat int
	if h.l2.lookup(addr) {
		lat, served = h.cfg.L2.Latency, LevelL2
	} else if h.l3.lookup(addr) {
		lat, served = h.cfg.L3.Latency, LevelL3
		h.l2.fill(addr, false)
	} else {
		lat, served = h.cfg.MemLatency, LevelMem
		h.l3.fill(addr, false)
		h.l2.fill(addr, false)
	}
	h.l1i.fill(addr, false)
	h.stats.FetchServed[served]++
	return lat, served
}

// LineBytesI returns the instruction-cache line size, used by fetch engines
// to detect line crossings.
func (h *Hierarchy) LineBytesI() int { return h.cfg.L1I.LineBytes }

// Levels returns the load-use latency of each level, for reports that scale
// access counts by latency (Figure 7).
func (h *Hierarchy) Levels() [NumLevels]int {
	return [NumLevels]int{
		LevelL1:  h.cfg.L1D.Latency,
		LevelL2:  h.cfg.L2.Latency,
		LevelL3:  h.cfg.L3.Latency,
		LevelMem: h.cfg.MemLatency,
	}
}
