package mem

import (
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{
		L1I:            CacheConfig{SizeBytes: 1 << 10, Assoc: 2, LineBytes: 64, Latency: 2},
		L1D:            CacheConfig{SizeBytes: 1 << 10, Assoc: 2, LineBytes: 64, Latency: 2},
		L2:             CacheConfig{SizeBytes: 4 << 10, Assoc: 4, LineBytes: 128, Latency: 5},
		L3:             CacheConfig{SizeBytes: 16 << 10, Assoc: 4, LineBytes: 128, Latency: 15},
		MemLatency:     145,
		MaxOutstanding: 4,
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig()
	if c.L1D.SizeBytes != 16<<10 || c.L1D.Assoc != 4 || c.L1D.LineBytes != 64 || c.L1D.Latency != 2 {
		t.Errorf("L1D config does not match Table 1: %+v", c.L1D)
	}
	if c.L2.SizeBytes != 256<<10 || c.L2.Assoc != 8 || c.L2.LineBytes != 128 || c.L2.Latency != 5 {
		t.Errorf("L2 config does not match Table 1: %+v", c.L2)
	}
	if c.L3.SizeBytes != 1536<<10 || c.L3.Assoc != 12 || c.L3.LineBytes != 128 || c.L3.Latency != 15 {
		t.Errorf("L3 config does not match Table 1: %+v", c.L3)
	}
	if c.MemLatency != 145 || c.MaxOutstanding != 16 {
		t.Errorf("memory latency / outstanding loads do not match Table 1")
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := NewHierarchy(smallConfig())
	lat, lvl := h.Load(0x1000, 0)
	if lvl != LevelMem || lat != 145 {
		t.Fatalf("cold load = %d cycles at %v, want 145 at Mem", lat, lvl)
	}
	// After the fill completes the line hits in L1.
	lat, lvl = h.Load(0x1000, 200)
	if lvl != LevelL1 || lat != 2 {
		t.Errorf("warm load = %d cycles at %v, want 2 at L1", lat, lvl)
	}
	// A nearby address on the same 64B line also hits.
	lat, lvl = h.Load(0x103F, 300)
	if lvl != LevelL1 || lat != 2 {
		t.Errorf("same-line load = %d at %v, want 2 at L1", lat, lvl)
	}
}

func TestL2ServesAfterL1Eviction(t *testing.T) {
	h := NewHierarchy(smallConfig())
	// L1D: 1KB, 2-way, 64B lines -> 8 sets. Addresses 0x0, 0x200, 0x400
	// map to set 0 and will exceed its 2 ways.
	h.Load(0x0, 0)
	h.Load(0x200, 200)
	h.Load(0x400, 400) // evicts line 0x0 from L1
	lat, lvl := h.Load(0x0, 600)
	if lvl != LevelL2 || lat != 5 {
		t.Errorf("evicted-from-L1 load = %d at %v, want 5 at L2", lat, lvl)
	}
}

func TestMissMerging(t *testing.T) {
	h := NewHierarchy(smallConfig())
	lat1, _ := h.Load(0x2000, 0) // miss to memory, completes at 145
	if lat1 != 145 {
		t.Fatalf("first load latency = %d", lat1)
	}
	// A second load to the same line 100 cycles later merges and waits
	// only the remaining 45 cycles.
	lat2, lvl := h.Load(0x2010, 100)
	if lat2 != 45 {
		t.Errorf("merged load latency = %d, want 45", lat2)
	}
	if lvl != LevelMem {
		t.Errorf("merged load attributed to %v, want the fill's origin (Mem)", lvl)
	}
	// Merging does not consume an extra MSHR.
	if got := h.Outstanding(100); got != 1 {
		t.Errorf("outstanding = %d, want 1", got)
	}
}

func TestMSHRLimit(t *testing.T) {
	h := NewHierarchy(smallConfig()) // MaxOutstanding: 4
	addrs := []uint32{0x10000, 0x20000, 0x30000, 0x40000}
	for i, a := range addrs {
		if !h.CanAcceptLoad(a, 0) {
			t.Fatalf("load %d rejected too early", i)
		}
		h.Load(a, 0)
	}
	if h.Outstanding(0) != 4 {
		t.Fatalf("outstanding = %d, want 4", h.Outstanding(0))
	}
	// A fifth distinct-line load must be rejected...
	if h.CanAcceptLoad(0x50000, 1) {
		t.Errorf("fifth miss should be rejected with MSHRs full")
	}
	// ...but a load to an in-flight line is fine (merge)...
	if !h.CanAcceptLoad(0x10020, 1) {
		t.Errorf("merge to in-flight line should be accepted")
	}
	// ...and after the misses complete, slots free up.
	if !h.CanAcceptLoad(0x50000, 200) {
		t.Errorf("slots should free after completion")
	}
	if h.Outstanding(200) != 0 {
		t.Errorf("outstanding after completion = %d", h.Outstanding(200))
	}
}

func TestLoadPanicsWhenFullAndNotChecked(t *testing.T) {
	h := NewHierarchy(smallConfig())
	for _, a := range []uint32{0x10000, 0x20000, 0x30000, 0x40000} {
		h.Load(a, 0)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Load with full MSHRs should panic")
		}
	}()
	h.Load(0x50000, 0)
}

func TestStoreAllocatesAndDirties(t *testing.T) {
	h := NewHierarchy(smallConfig())
	h.Store(0x3000, 0)
	lat, lvl := h.Load(0x3000, 10)
	if lvl != LevelL1 || lat != 2 {
		t.Errorf("load after store-allocate = %d at %v, want L1 hit", lat, lvl)
	}
	// Evicting the dirty line produces a writeback.
	h.Load(0x3000+0x200, 20)
	h.Load(0x3000+0x400, 300)
	if wb := h.Stats().L1D.Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
}

func TestFetchPath(t *testing.T) {
	h := NewHierarchy(smallConfig())
	lat, lvl := h.Fetch(0x8000, 0)
	if lvl != LevelMem || lat != 145 {
		t.Errorf("cold fetch = %d at %v, want 145 at Mem", lat, lvl)
	}
	lat, lvl = h.Fetch(0x8000, 200)
	if lvl != LevelL1 || lat != 2 {
		t.Errorf("warm fetch = %d at %v", lat, lvl)
	}
	// Instruction fetches never consume data MSHRs.
	if h.Outstanding(0) != 0 {
		t.Errorf("fetch consumed a data MSHR")
	}
	// I- and D-streams share the L2: a fetch of a line loaded as data
	// hits in L2 even when absent from L1I. (Same 128B L2 line.)
	h.Load(0x9000, 300)
	lat, lvl = h.Fetch(0x9000, 600)
	if lvl != LevelL2 {
		t.Errorf("fetch after data load = %v, want L2 (shared)", lvl)
	}
	_ = lat
}

func TestServedStatsAccumulate(t *testing.T) {
	h := NewHierarchy(smallConfig())
	h.Load(0x1000, 0)
	h.Load(0x1000, 200)
	h.Load(0x1000, 300)
	s := h.Stats()
	if s.DataServed[LevelMem] != 1 || s.DataServed[LevelL1] != 2 {
		t.Errorf("DataServed = %v", s.DataServed)
	}
}

func TestLevelsAndStrings(t *testing.T) {
	h := NewHierarchy(smallConfig())
	lv := h.Levels()
	if lv[LevelL1] != 2 || lv[LevelL2] != 5 || lv[LevelL3] != 15 || lv[LevelMem] != 145 {
		t.Errorf("Levels() = %v", lv)
	}
	names := map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelMem: "Mem"}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q", l, l.String())
		}
	}
	if h.LineBytesI() != 64 {
		t.Errorf("LineBytesI = %d", h.LineBytesI())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	bad := smallConfig()
	bad.L1D.LineBytes = 48 // not a power of two
	defer func() {
		if recover() == nil {
			t.Errorf("invalid config should panic")
		}
	}()
	NewHierarchy(bad)
}

// Property: repeating the same load after its fill completes always hits L1
// with the L1 latency (inclusion + eager fill invariant).
func TestRepeatLoadHitsProperty(t *testing.T) {
	h := NewHierarchy(smallConfig())
	now := int64(0)
	f := func(addr uint32) bool {
		if !h.CanAcceptLoad(addr, now) {
			now += 200
		}
		lat, _ := h.Load(addr, now)
		now += int64(lat) + 1
		lat2, lvl2 := h.Load(addr, now)
		now += int64(lat2) + 1
		return lvl2 == LevelL1 && lat2 == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the serving level's reported latency always matches the
// configured latency for that level (except merges).
func TestLatencyMatchesLevelProperty(t *testing.T) {
	cfg := smallConfig()
	h := NewHierarchy(cfg)
	want := map[Level]int{LevelL1: 2, LevelL2: 5, LevelL3: 15, LevelMem: 145}
	now := int64(0)
	f := func(addr uint32) bool {
		now += 500 // let all misses drain so merging never applies
		if !h.CanAcceptLoad(addr, now) {
			return false
		}
		lat, lvl := h.Load(addr, now)
		return lat == want[lvl]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
