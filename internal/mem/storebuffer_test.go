package mem

import (
	"testing"
	"testing/quick"
)

func TestStoreBufferForwardBasic(t *testing.T) {
	img := NewImage()
	img.WriteU32(100, 0x11111111)
	var b StoreBuffer
	b.Insert(StoreEntry{ID: 5, Addr: 100, Size: 4, Data: 0x22222222, DataKnown: true})

	// A younger load sees the buffered store.
	v, res := b.Forward(10, 100, 4, img)
	if res != ForwardHit || v != 0x22222222 {
		t.Errorf("Forward = %#x,%v; want 0x22222222,Hit", v, res)
	}
	// An older load does not.
	v, res = b.Forward(3, 100, 4, img)
	if res != ForwardNone || v != 0x11111111 {
		t.Errorf("older load Forward = %#x,%v; want memory value, None", v, res)
	}
	// A disjoint load reads memory.
	v, res = b.Forward(10, 200, 4, img)
	if res != ForwardNone || v != 0 {
		t.Errorf("disjoint Forward = %#x,%v", v, res)
	}
}

func TestStoreBufferPartialOverlapMerging(t *testing.T) {
	img := NewImage()
	img.WriteU32(100, 0xAABBCCDD)
	var b StoreBuffer
	b.Insert(StoreEntry{ID: 1, Addr: 102, Size: 1, Data: 0x99, DataKnown: true})
	v, res := b.Forward(10, 100, 4, img)
	// byte 0: 0xDD, byte 1: 0xCC, byte 2: buffered 0x99, byte 3: 0xAA
	if res != ForwardHit || v != 0xAA99CCDD {
		t.Errorf("partial overlap Forward = %#x,%v; want 0xAA99CCDD,Hit", v, res)
	}
}

func TestStoreBufferYoungestWins(t *testing.T) {
	img := NewImage()
	var b StoreBuffer
	b.Insert(StoreEntry{ID: 1, Addr: 50, Size: 4, Data: 0x11111111, DataKnown: true})
	b.Insert(StoreEntry{ID: 2, Addr: 50, Size: 4, Data: 0x22222222, DataKnown: true})
	v, res := b.Forward(10, 50, 4, img)
	if res != ForwardHit || v != 0x22222222 {
		t.Errorf("youngest store should win: got %#x,%v", v, res)
	}
	// A load between the two stores sees only the older one.
	v, _ = b.Forward(2, 50, 4, img)
	if v != 0x11111111 {
		t.Errorf("load between stores = %#x, want 0x11111111", v)
	}
}

func TestStoreBufferUnknownDataDefersLoad(t *testing.T) {
	img := NewImage()
	var b StoreBuffer
	b.Insert(StoreEntry{ID: 3, Addr: 60, Size: 4, DataKnown: false})
	if _, res := b.Forward(9, 62, 2, img); res != ForwardUnknown {
		t.Errorf("overlap with unknown-data store should return ForwardUnknown, got %v", res)
	}
	// Disjoint load unaffected.
	if _, res := b.Forward(9, 64, 4, img); res != ForwardNone {
		t.Errorf("disjoint load should be None, got %v", res)
	}
	if !b.OlderUnknownOverlap(9, 62, 2) {
		t.Errorf("OlderUnknownOverlap should be true")
	}
	if b.OlderUnknownOverlap(2, 62, 2) {
		t.Errorf("store is younger than id 2; should be false")
	}
}

func TestStoreBufferRemoveAndFlush(t *testing.T) {
	var b StoreBuffer
	for id := uint64(1); id <= 5; id++ {
		b.Insert(StoreEntry{ID: id, Addr: uint32(id * 16), Size: 4, DataKnown: true})
	}
	b.Remove(3)
	if b.Len() != 4 {
		t.Fatalf("Len after Remove = %d", b.Len())
	}
	b.FlushFrom(4)
	if b.Len() != 2 { // ids 1, 2 remain
		t.Fatalf("Len after FlushFrom(4) = %d", b.Len())
	}
	if !b.HasOlderThan(2) || b.HasOlderThan(1) {
		t.Errorf("HasOlderThan wrong after flush")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("Reset did not empty buffer")
	}
}

func TestStoreBufferInsertOrderPanics(t *testing.T) {
	var b StoreBuffer
	b.Insert(StoreEntry{ID: 10, Addr: 0, Size: 4, DataKnown: true})
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-order insert should panic")
		}
	}()
	b.Insert(StoreEntry{ID: 9, Addr: 0, Size: 4, DataKnown: true})
}

// Property: forwarding through the buffer is equivalent to committing the
// (known-data) stores older than the load into a scratch image and reading it.
func TestStoreBufferForwardEquivalenceProperty(t *testing.T) {
	f := func(base uint32, offs [4]uint8, datas [4]uint32, loadOff uint8, szSel uint8) bool {
		img := NewImage()
		img.Write(base, 8, 0x0123456789ABCDEF)
		ref := img.Clone()

		var b StoreBuffer
		for i := 0; i < 4; i++ {
			addr := base + uint32(offs[i]%16)
			b.Insert(StoreEntry{ID: uint64(i + 1), Addr: addr, Size: 2, Data: uint64(datas[i]), DataKnown: true})
			ref.Write(addr, 2, uint64(datas[i]))
		}
		size := []int{1, 2, 4, 8}[szSel%4]
		loadAddr := base + uint32(loadOff%16)
		got, res := b.Forward(100, loadAddr, size, img)
		if res == ForwardUnknown {
			return false
		}
		return got == ref.Read(loadAddr, size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
