// Package statname defines an analyzer guarding the metric namespace.
// Registry.Counter and Registry.Gauge are lookup-or-create: two different
// metrics registered under one name silently share a counter and corrupt
// both measurements, and a name that is not a compile-time constant defeats
// grep, dashboards and the golden-metric tests. The analyzer reports:
//
//   - a registration call — (*metrics.Registry).Counter/Gauge/
//     SharedCounter/SharedGauge or (*stats.Collector).Counter — whose name
//     argument is not a compile-time string constant;
//   - two package-level Metric*/Gauge* string constants with the same value
//     (the canonical-name block in internal/stats is the registry of record,
//     so a collision there aliases two metrics);
//   - a registration call that spells out a string literal equal to a named
//     Metric*/Gauge* constant of the same package instead of using it.
//
// The internal/stats package itself is exempt from the constant-argument
// rule: its helpers (ClassMetricName, AccessMetricName) derive the canonical
// name matrix programmatically, and its constant block is checked for
// uniqueness instead. Test files are exempt.
package statname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"

	"fleaflicker/internal/analysis/annotation"
	"fleaflicker/internal/analysis/scope"
)

// Analyzer is the statname analysis.
var Analyzer = &analysis.Analyzer{
	Name: "statname",
	Doc:  "require unique, constant metric registration names",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// The stats package owns the canonical name helpers; only its constant
	// block is policed.
	inStats := annotation.PkgIn(pass.Pkg, scope.Stats...) || pass.Pkg.Name() == "stats"

	// Collect package-level Metric*/Gauge* string constants and check their
	// values are pairwise distinct.
	constByValue := make(map[string]string) // value -> constant name
	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Metric") && !strings.HasPrefix(name.Name, "Gauge") {
						continue
					}
					if i >= len(vs.Values) {
						continue
					}
					tv, ok := pass.TypesInfo.Types[vs.Values[i]]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
						continue
					}
					val := constant.StringVal(tv.Value)
					if prev, dup := constByValue[val]; dup {
						pass.Reportf(name.Pos(),
							"metric name %q already declared as %s; two metrics must not share a name", val, prev)
						continue
					}
					constByValue[val] = name.Name
				}
			}
		}
	}

	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := annotation.CalleeFunc(pass.TypesInfo, call)
			isReg := annotation.IsMethod(fn, "metrics", "Registry", "Counter") ||
				annotation.IsMethod(fn, "metrics", "Registry", "Gauge") ||
				annotation.IsMethod(fn, "metrics", "Registry", "SharedCounter") ||
				annotation.IsMethod(fn, "metrics", "Registry", "SharedGauge") ||
				annotation.IsMethod(fn, "stats", "Collector", "Counter")
			if !isReg || inStats {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric registration name must be a compile-time string constant")
				return true
			}
			if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok {
				if cname, exists := constByValue[constant.StringVal(tv.Value)]; exists {
					pass.Reportf(lit.Pos(),
						"metric name %s duplicates the named constant %s; use the constant", lit.Value, cname)
				}
			}
			return true
		})
	}
	return nil, nil
}
