package statname_test

import (
	"testing"

	"fleaflicker/internal/analysis/analyzertest"
	"fleaflicker/internal/analysis/statname"
)

func TestStatname(t *testing.T) {
	analyzertest.Run(t, "testdata", statname.Analyzer,
		"a", "internal/stats")
}
