// Package stats models the real internal/stats Collector facade.
package stats

// Collector owns per-run metric bookkeeping.
type Collector struct{ counters map[string]int64 }

// Counter registers (or finds) the named counter.
func (c *Collector) Counter(name string) int64 { return c.counters[name] }
