// Negative fixture: the stats package derives the canonical name matrix
// programmatically and is exempt from the constant-argument rule. Its
// constant block is still checked for uniqueness (no collisions here).
package stats

import "metrics"

const (
	MetricCyclePrefix = "cycles_"
	MetricInsts       = "instructions_total"
)

func classMetricName(tag string) string { return MetricCyclePrefix + tag }

func register(reg *metrics.Registry, tag string) {
	reg.Counter(classMetricName(tag))
	reg.Counter(MetricInsts)
}
