// Package metrics models the real internal/metrics package: a registry of
// named counters and gauges with lookup-or-create semantics.
package metrics

// Counter is a monotonically increasing metric.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Gauge is a point-in-time metric.
type Gauge struct{ v int64 }

// Set records the current value.
func (g *Gauge) Set(n int64) { g.v = n }

// Registry holds metrics by name.
type Registry struct {
	counters       map[string]*Counter
	gauges         map[string]*Gauge
	sharedCounters map[string]*SharedCounter
	sharedGauges   map[string]*SharedGauge
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// CounterValue returns the value of the named counter, if registered.
func (r *Registry) CounterValue(name string) (int64, bool) {
	c, ok := r.counters[name]
	if !ok {
		return 0, false
	}
	return c.v, true
}

// SharedCounter is a concurrency-safe monotonically increasing metric.
type SharedCounter struct{ v int64 }

// Inc adds one.
func (c *SharedCounter) Inc() { c.v++ }

// SharedGauge is a concurrency-safe point-in-time metric.
type SharedGauge struct{ v int64 }

// Set records the current value.
func (g *SharedGauge) Set(n int64) { g.v = n }

// SharedCounter returns the named shared counter, creating it on first use.
func (r *Registry) SharedCounter(name string) *SharedCounter {
	c, ok := r.sharedCounters[name]
	if !ok {
		c = &SharedCounter{}
		r.sharedCounters[name] = c
	}
	return c
}

// SharedGauge returns the named shared gauge, creating it on first use.
func (r *Registry) SharedGauge(name string) *SharedGauge {
	g, ok := r.sharedGauges[name]
	if !ok {
		g = &SharedGauge{}
		r.sharedGauges[name] = g
	}
	return g
}
