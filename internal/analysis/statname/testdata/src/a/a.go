// Positive fixture: metric-name collisions and non-constant registrations.
package a

import (
	"metrics"
	"stats"
)

const (
	MetricCycles = "cycles_total"
	MetricInsts  = "instructions_total"
	MetricAlias  = "cycles_total" // want "metric name .cycles_total. already declared as MetricCycles"
)

func register(reg *metrics.Registry, name string) {
	reg.Counter(MetricCycles)   // named constant: fine
	reg.Counter(name)           // want "metric registration name must be a compile-time string constant"
	reg.Counter("cycles_total") // want "duplicates the named constant MetricCycles; use the constant"
	reg.Gauge("queue_depth")    // unique literal with no matching constant: fine
}

func registerShared(reg *metrics.Registry, name string) {
	reg.SharedCounter(MetricInsts)          // named constant: fine
	reg.SharedCounter(name)                 // want "metric registration name must be a compile-time string constant"
	reg.SharedGauge(name)                   // want "metric registration name must be a compile-time string constant"
	reg.SharedCounter("instructions_total") // want "duplicates the named constant MetricInsts; use the constant"
}

func registerCol(col *stats.Collector, name string) {
	col.Counter(name) // want "metric registration name must be a compile-time string constant"
	col.Counter(MetricInsts)
}
