// Package ctxloop defines the analyzer keeping unbounded loops cancellable.
// The repository's long-running loops come in two shapes: machine cycle
// loops (`for !m.halted { ... }`), which can legitimately run for billions
// of iterations, and serving-layer worker loops (`for { ... }`), which run
// until shutdown. Both must remain responsive to cancellation — the
// service's per-job timeouts and graceful drain reach the machines only
// because every cycle loop polls its context (every 4096 cycles, via
// ctx.Err).
//
// In the looping packages the analyzer examines every `for` loop that has
// no bound by construction:
//
//   - `for { ... }` — no condition at all, or
//   - `for cond { ... }` where cond is a single (possibly negated) boolean
//     field selector (`for !m.halted`): termination depends on shared state
//     someone else flips, not on loop-local progress.
//
// Such a loop must poll its context — a call to Err or Done on a
// context.Context anywhere in the body (a `select` on ctx.Done() counts,
// since it contains the call) — or carry a //flea:bounded mark stating why
// it terminates by construction (it drains admitted work behind a
// closed-queue handshake, for example).
//
// Loops with an initializer, a comparison condition, or a range clause are
// bounded by loop-local progress and are not checked. Function literals
// inside a loop body do not satisfy the poll (they run on their own
// schedule), and loops inside function literals are checked independently.
// Test files are exempt.
package ctxloop

import (
	"go/ast"
	"go/token"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"fleaflicker/internal/analysis/annotation"
	"fleaflicker/internal/analysis/scope"
)

// Analyzer is the ctxloop analysis.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxloop",
	Doc:      "require unbounded worker and cycle loops to poll ctx.Done/ctx.Err or be marked //flea:bounded",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !annotation.PkgIn(pass.Pkg, scope.Looping...) {
		return nil, nil
	}
	marks := annotation.Gather(pass.Fset, pass.Files)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.ForStmt)(nil)}, func(n ast.Node) {
		loop := n.(*ast.ForStmt)
		if annotation.IsTestFile(pass.Fset, loop.Pos()) {
			return
		}
		if !unbounded(loop) {
			return
		}
		if marks.Marked(loop, annotation.Bounded) {
			return
		}
		if pollsContext(pass, loop.Body) {
			return
		}
		pass.Reportf(loop.Pos(),
			"unbounded loop never polls its context; check ctx.Err or select on ctx.Done so cancellation and drain can reach it, or mark it //flea:bounded with a justification")
	})
	return nil, nil
}

// unbounded reports whether the loop has no bound by construction: no
// condition, or a condition that is a single (possibly negated) boolean
// field selector flipped by someone else.
func unbounded(loop *ast.ForStmt) bool {
	if loop.Init != nil || loop.Post != nil {
		return false
	}
	if loop.Cond == nil {
		return true
	}
	cond := ast.Unparen(loop.Cond)
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		cond = ast.Unparen(u.X)
	}
	_, isSelector := cond.(*ast.SelectorExpr)
	return isSelector
}

// pollsContext reports whether the loop body calls Err or Done on a
// context.Context outside nested function literals.
func pollsContext(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		if annotation.IsContext(pass.TypesInfo.TypeOf(sel.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}
