// Package service exercises ctxloop: worker and cycle loops with and
// without context polls, //flea:bounded exemptions, and the loop shapes the
// analyzer deliberately ignores.
package service

import "context"

type queue struct {
	items  []int
	closed bool
}

func (q *queue) get() (int, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Machine models a cycle loop driven by a halted flag.
type Machine struct {
	halted bool
	now    int64
	ctx    context.Context
}

// goodCycleLoop polls its context inside the field-condition loop.
func (m *Machine) goodCycleLoop() error {
	for !m.halted {
		if m.ctx != nil && m.now&4095 == 0 {
			if err := m.ctx.Err(); err != nil {
				return err
			}
		}
		m.now++
	}
	return nil
}

// goodWorkerSelect polls through a select on ctx.Done.
func goodWorkerSelect(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case w := <-work:
			_ = w
		}
	}
}

// goodBoundedDrain is exempt by annotation: the queue close is the bound.
func goodBoundedDrain(q *queue) int {
	sum := 0
	//flea:bounded the queue is closed before drain; get returns false once empty
	for {
		v, ok := q.get()
		if !ok {
			return sum
		}
		sum += v
	}
}

// goodCounted loops with loop-local progress: not checked.
func goodCounted(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}

// badWorker spins on the queue with no poll and no bound.
func badWorker(ctx context.Context, q *queue) int {
	sum := 0
	for { // want "unbounded loop never polls its context"
		v, ok := q.get()
		if !ok {
			continue
		}
		sum += v
	}
}

// badCycleLoop runs until another goroutine flips the flag, unheeding.
func (m *Machine) badCycleLoop() {
	for !m.halted { // want "unbounded loop never polls its context"
		m.now++
	}
}

// badFuncLitPoll polls only inside a nested literal, which runs on its own
// schedule and proves nothing about this loop.
func badFuncLitPoll(ctx context.Context) {
	for { // want "unbounded loop never polls its context"
		go func() {
			_ = ctx.Err()
		}()
	}
}
