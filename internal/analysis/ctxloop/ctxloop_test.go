package ctxloop_test

import (
	"testing"

	"fleaflicker/internal/analysis/analyzertest"
	"fleaflicker/internal/analysis/ctxloop"
)

func TestCtxloop(t *testing.T) {
	analyzertest.Run(t, "testdata", ctxloop.Analyzer, "internal/service")
}
