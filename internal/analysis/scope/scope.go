// Package scope is the single registry of which repository packages each
// flealint analyzer polices. The per-analyzer lists used to live inside the
// analyzers themselves, where a new package (internal/checkpoint, once) had
// to be added by hand to every relevant list — and silently escaped analysis
// until someone remembered. Centralizing the lists does two things:
//
//   - one place to extend when a subsystem grows (the model-zoo machines the
//     ROADMAP plans will each add one line here, not one per analyzer), and
//   - a completeness check (TestScopeCoversRepository) that enumerates the
//     module's internal packages with `go list` and fails when any package
//     is in no scope list and not explicitly exempted — so a package can
//     never again escape analysis without a recorded decision.
//
// Lists hold package-path suffixes (matched by annotation.PkgIn), which lets
// analyzertest fixtures under testdata/src/internal/... stand in for the
// real packages.
package scope

// Simulation packages participate in the byte-determinism contract: their
// state or output must be a pure function of (program, config, seed).
// Policed by nondeterminism.
var Simulation = []string{
	"internal/pipeline",
	"internal/twopass",
	"internal/runahead",
	"internal/baseline",
	"internal/core",
	"internal/mem",
	"internal/stats",
	// The fuzzing subsystem is part of the determinism contract too: a
	// campaign verdict and every generated program must be a pure function
	// of (seed, config), or corpus seeds and shrunk reproducers lose their
	// meaning.
	"internal/progen",
	"internal/diffsim",
	// Checkpoints must serialize byte-identically for a given machine state:
	// snapshot hashes and resumed-run equivalence both depend on it.
	"internal/checkpoint",
	// Cluster routing must be deterministic too: every coordinator over the
	// same membership places every content-addressed key on the same backend
	// (the property that keeps federated caches warm), and no wall-clock
	// value may feed placement or steal-victim choice.
	"internal/cluster",
	// Campaign artifacts are content-addressed: a stage key and the artifact
	// behind it must be pure functions of (definition, input keys), so the
	// orchestrator is clock-free and map-iteration-free — revision and
	// timestamp stamping happens in cmd/fleaflow, outside the scope.
	"internal/fleaflow",
}

// Arena packages are those through which pipeline.DynInst ownership flows.
// Policed by arenadiscipline.
var Arena = []string{
	"internal/pipeline",
	"internal/twopass",
	"internal/runahead",
	"internal/baseline",
	// Snapshot capture/restore runs inside the machines' cycle loops (at
	// drain barriers), so it is held to the same ownership rules.
	"internal/checkpoint",
}

// Traced packages carry a nil-by-default *trace.Tracer and must guard every
// emission. Policed by traceguard.
var Traced = []string{
	"internal/pipeline",
	"internal/twopass",
	"internal/runahead",
	"internal/baseline",
	"internal/core",
	"internal/mem",
	"internal/experiments",
}

// Stats packages own the canonical metric-name constants. Policed by
// statname (whose uniqueness check additionally runs everywhere).
var Stats = []string{
	"internal/stats",
}

// Snapshotting packages take, serialize, materialize, or restore
// copy-on-write memory snapshots. Policed by snapshotalias (page-alias
// dataflow) and snapshotprotocol (drain-barrier discipline).
var Snapshotting = []string{
	"internal/mem",
	"internal/checkpoint",
	"internal/twopass",
	"internal/runahead",
	"internal/baseline",
	"internal/core",
	"internal/diffsim",
}

// Guarded packages annotate shared mutable state with //flea:guardedby and
// //flea:atomic. Policed by guardedby.
var Guarded = []string{
	"internal/service",
	"internal/metrics",
	"internal/cluster",
	// The engine is deliberately lock-free (all scheduling state lives on
	// the Run goroutine; workers only execute and report over a channel),
	// and the annotation discipline documents any future departure.
	"internal/fleaflow",
}

// Looping packages run unbounded cycle or worker loops that must stay
// cancellable. Policed by ctxloop.
var Looping = []string{
	"internal/pipeline",
	"internal/twopass",
	"internal/runahead",
	"internal/baseline",
	"internal/core",
	"internal/service",
	"internal/diffsim",
	"internal/experiments",
	"internal/cluster",
	// The shared fleasimd client polls job status in an unbounded loop
	// (WaitJob); the campaign engine's scheduler loop drains workers.
	"internal/service/client",
	"internal/fleaflow",
}

// Exempt records the internal packages deliberately outside every analyzer
// scope, with the reason. TestScopeCoversRepository fails on any internal
// package neither scoped nor exempted.
var Exempt = map[string]string{
	"internal/isa":      "pure value types and instruction semantics; no state, no loops, no shared data",
	"internal/arch":     "thin architectural-state struct over mem.Image; mutated only through scoped machine packages",
	"internal/bpred":    "deterministic table-indexed predictor; no maps, clocks, or shared state",
	"internal/sched":    "compile-time program transforms (if-conversion, regrouping); runs before simulation",
	"internal/program":  "program container and .flea codec; deterministic by construction via sorted encoders",
	"internal/workload": "static kernel definitions; compile-time program builders only",
	"internal/trace":    "the tracing substrate itself; its sinks are mutex-per-sink and exercised under -race",
	"internal/analysis": "the analyzers and their harness; run at development time, not in the simulator",
}
