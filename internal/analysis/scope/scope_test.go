package scope

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestScopeCoversRepository enumerates the module's internal packages and
// fails when any is in no analyzer scope and not explicitly exempted — the
// guarantee that a new package (tomorrow's model-zoo machine, the next
// service tier) cannot silently escape static analysis. It also fails on
// stale entries, so the registry tracks the tree in both directions.
func TestScopeCoversRepository(t *testing.T) {
	cmd := exec.Command("go", "list", "./internal/...")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go list: %v\n%s", err, out)
	}

	scoped := make(map[string]bool)
	for _, list := range [][]string{Simulation, Arena, Traced, Stats, Snapshotting, Guarded, Looping} {
		for _, p := range list {
			scoped[p] = true
		}
	}

	var pkgs []string
	for _, full := range strings.Fields(string(out)) {
		i := strings.Index(full, "internal/")
		if i < 0 {
			continue
		}
		pkgs = append(pkgs, full[i:])
	}
	if len(pkgs) == 0 {
		t.Fatal("go list returned no internal packages")
	}

	seen := make(map[string]bool)
	for _, rel := range pkgs {
		covered := scoped[rel]
		if covered {
			seen[rel] = true
		}
		for e := range Exempt {
			if rel == e || strings.HasPrefix(rel, e+"/") {
				covered = true
				seen[e] = true
			}
		}
		if !covered {
			t.Errorf("package %s is in no analyzer scope and not exempted; add it to a scope list or to scope.Exempt with a reason", rel)
		}
	}

	// Stale entries: every scope/exempt path must name a real package.
	for p := range scoped {
		if !seen[p] {
			t.Errorf("scope entry %s names no existing package; remove or fix it", p)
		}
	}
	for e := range Exempt {
		if !seen[e] {
			t.Errorf("exempt entry %s names no existing package; remove or fix it", e)
		}
	}
	for e, reason := range Exempt {
		if strings.TrimSpace(reason) == "" {
			t.Errorf("exempt entry %s has no recorded reason", e)
		}
	}
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
