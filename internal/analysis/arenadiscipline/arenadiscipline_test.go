package arenadiscipline_test

import (
	"testing"

	"fleaflicker/internal/analysis/analyzertest"
	"fleaflicker/internal/analysis/arenadiscipline"
)

func TestArenadiscipline(t *testing.T) {
	analyzertest.Run(t, "testdata", arenadiscipline.Analyzer,
		"internal/twopass", "internal/workload")
}
