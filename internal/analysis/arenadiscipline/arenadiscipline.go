// Package arenadiscipline defines an analyzer enforcing the repository's
// DynInst ownership protocol: every record obtained from pipeline.Arena must
// eventually be recycled (Arena.Put/PutAll) or handed off to a structure that
// recycles it. Dropping records starves the freelist and silently reintroduces
// steady-state allocation, defeating the arena.
//
// In the machine packages it reports:
//
//   - a statement that calls Arena.Get and discards the result;
//   - an assignment that truncates or discards a []*pipeline.DynInst
//     (x = x[:n], x = nil, x = make(...)) in a function that never calls
//     Arena.Put or Arena.PutAll. Truncations of slices whose records are
//     owned (and recycled) elsewhere — a ring slot cleared after its records
//     were handed to the consumer — are marked //flea:handoff with a
//     justification.
//
// The check is per-function and syntactic: a function that recycles some
// records is trusted to recycle the ones it truncates. The runtime
// TestSteadyStateAllocationFree remains the backstop; this analyzer points
// at the offending line when the protocol is broken.
//
// Test files are exempt.
package arenadiscipline

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"fleaflicker/internal/analysis/annotation"
	"fleaflicker/internal/analysis/scope"
)

// Analyzer is the arenadiscipline analysis.
var Analyzer = &analysis.Analyzer{
	Name: "arenadiscipline",
	Doc:  "require DynInst records from pipeline.Arena to be recycled or handed off on every path",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !annotation.PkgIn(pass.Pkg, scope.Arena...) {
		return nil, nil
	}
	marks := annotation.Gather(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, marks, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, marks *annotation.Marks, fd *ast.FuncDecl) {
	// The Arena's own methods implement the freelist; the protocol governs
	// its clients.
	if fd.Recv != nil && len(fd.Recv.List) == 1 &&
		annotation.IsNamed(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type), "pipeline", "Arena") {
		return
	}
	recycles := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := annotation.CalleeFunc(pass.TypesInfo, call)
		if annotation.IsMethod(fn, "pipeline", "Arena", "Put") ||
			annotation.IsMethod(fn, "pipeline", "Arena", "PutAll") {
			recycles = true
			return false
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				fn := annotation.CalleeFunc(pass.TypesInfo, call)
				if annotation.IsMethod(fn, "pipeline", "Arena", "Get") {
					pass.Reportf(n.Pos(),
						"DynInst obtained from Arena.Get is dropped; store it, hand it off, or Put it back")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if !isDynInstSlice(pass.TypesInfo.TypeOf(lhs)) {
					continue
				}
				if !discards(pass, n.Rhs[i]) {
					continue
				}
				if recycles || marks.Marked(n, annotation.Handoff) {
					continue
				}
				pass.Reportf(n.Pos(),
					"assignment discards DynInst records without recycling them; call Arena.Put/PutAll first or mark //flea:handoff with a justification")
			}
		}
		return true
	})
}

// isDynInstSlice reports whether t is []*pipeline.DynInst.
func isDynInstSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return annotation.IsNamed(s.Elem(), "pipeline", "DynInst")
}

// discards reports whether assigning rhs to a DynInst slice can drop live
// record references: a truncating re-slice or nil. (Assigning a fresh slice
// via make or a literal is an initialization idiom — the old value is
// typically empty — and is left to the runtime allocation test.)
func discards(pass *analysis.Pass, rhs ast.Expr) bool {
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		return rhs.Name == "nil" && pass.TypesInfo.Uses[rhs] == types.Universe.Lookup("nil")
	}
	return false
}
