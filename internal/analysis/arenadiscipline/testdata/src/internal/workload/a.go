// Negative fixture: not a machine package — the ownership protocol does not
// apply.
package workload

import "internal/pipeline"

type gen struct{ ring []*pipeline.DynInst }

func (g *gen) reset() { g.ring = g.ring[:0] }
