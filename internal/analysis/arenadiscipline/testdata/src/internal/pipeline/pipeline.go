// Package pipeline models the real internal/pipeline package: the DynInst
// record and the Arena freelist it is recycled through.
package pipeline

// DynInst is one in-flight instruction record.
type DynInst struct{ ID uint64 }

// Arena recycles DynInst records.
type Arena struct{ free []*DynInst }

// Get returns a record, reusing a recycled one when available.
func (a *Arena) Get() *DynInst {
	n := len(a.free)
	if n == 0 {
		return &DynInst{}
	}
	d := a.free[n-1]
	a.free = a.free[:n-1]
	*d = DynInst{}
	return d
}

// Put returns one record to the freelist.
func (a *Arena) Put(d *DynInst) { a.free = append(a.free, d) }

// PutAll returns every record in ds to the freelist.
func (a *Arena) PutAll(ds []*DynInst) { a.free = append(a.free, ds...) }
