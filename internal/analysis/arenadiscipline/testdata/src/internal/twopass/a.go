// Positive fixture: a machine package consuming Arena records.
package twopass

import "internal/pipeline"

type machine struct {
	arena *pipeline.Arena
	ring  []*pipeline.DynInst
	slot  []*pipeline.DynInst
}

func (m *machine) dropsGet() {
	m.arena.Get() // want "DynInst obtained from Arena.Get is dropped"
}

func (m *machine) truncates() {
	m.ring = m.ring[:0] // want "assignment discards DynInst records without recycling"
}

func (m *machine) discardsAll() {
	m.ring = nil // want "assignment discards DynInst records without recycling"
}

// recycles truncates only after returning the records, so it is trusted.
func (m *machine) recycles() {
	m.arena.PutAll(m.ring)
	m.ring = m.ring[:0]
}

// handsOff moves the records to another owner before clearing its slot.
func (m *machine) handsOff() {
	m.slot = append(m.slot, m.ring...)
	//flea:handoff the slot owner recycles these records at retirement
	m.ring = m.ring[:0]
}

// keeps stores the record it gets: no diagnostic.
func (m *machine) keeps() {
	m.ring = append(m.ring, m.arena.Get())
	m.arena.Put(m.ring[0])
}
