// Package selftest pins the repository's own cleanliness under its static
// analyses. TestFlealintSelfApplication builds the flealint vet tool and
// runs all nine analyzers over every package; TestCompilerFactAssertions
// replays the fleagcassert check. Both fail on any diagnostic, so "the repo
// is lint-clean and its compiler facts hold" is enforced by `go test ./...`
// itself — a contributor cannot regress the invariants without noticing,
// even if they never run `make ci`.
package selftest_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"fleaflicker/internal/analysis/gcassert"
)

// moduleRoot walks up from the test's working directory to the directory
// containing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func TestFlealintSelfApplication(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles the module under the vet tool; skipped in -short")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "flealint")

	build := exec.Command("go", "build", "-o", bin, "./cmd/flealint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building flealint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("flealint is not clean over the repository:\n%s", out)
	}
}

func TestCompilerFactAssertions(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles the module with -m diagnostics; skipped in -short")
	}
	root := moduleRoot(t)
	asserts, err := gcassert.ScanDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(asserts) == 0 {
		t.Fatal("no compiler-fact assertions found; the annotations were removed?")
	}

	build := exec.Command("go", "build", "-gcflags=fleaflicker/...=-m -d=ssa/check_bce", "./...")
	build.Dir = root
	out, err := build.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -m: %v\n%s", err, out)
	}
	diags := gcassert.ParseDiags(string(out))
	if len(diags) == 0 {
		t.Fatal("go build produced no compiler diagnostics; expected -m output")
	}
	for _, f := range gcassert.Check(asserts, diags) {
		t.Error(f)
	}
}
