package snapshotalias_test

import (
	"testing"

	"fleaflicker/internal/analysis/analyzertest"
	"fleaflicker/internal/analysis/snapshotalias"
)

func TestSnapshotalias(t *testing.T) {
	analyzertest.Run(t, "testdata", snapshotalias.Analyzer,
		"internal/mem", "internal/checkpoint")
}
