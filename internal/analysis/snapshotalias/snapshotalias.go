// Package snapshotalias defines the SSA-dataflow analyzer guarding the
// copy-on-write snapshot protocol of mem.Image (see internal/mem/imagesnap.go
// and PR 6's checkpoint subsystem). Two invariants, both invisible to the
// type system:
//
//  1. No page alias across a snapshot barrier. A page reference (*[N]byte
//     with N >= 512, or a []byte sliced from one) obtained from an image
//     before a barrier — (*mem.Image).Snapshot, (*mem.ImageSnapshot).Image,
//     or any RestoreSnapshot — must not be used after it: the barrier marks
//     every live page shared (or swaps the backing image entirely), so a
//     retained reference either aliases immutable snapshot storage or
//     dangles into the pre-restore image.
//
//  2. All page stores go through the copy-on-write fault path. Writing
//     through a page reference that may be snapshot-shared corrupts every
//     snapshot (and every image later materialized from one). Stores are
//     only permitted through provably private pages: the result of new, the
//     address of a local array, or a call to a function marked
//     //flea:cowfault (the fault path itself, which privatizes the page
//     before returning it).
//
// The analysis is a forward dataflow on the function's control-flow graph
// (internal/ssaflow over vendored go/cfg — the offline stand-in for a
// buildssa pass): each page-typed variable carries a taint
// {clean, fresh, shared, crossed}; barrier calls escalate fresh/shared to
// crossed on every path through them, and uses of crossed variables and
// stores through non-fresh ones are reported.
//
// Test files are exempt. The analysis is intraprocedural: a page reference
// stored into a struct field or returned is out of scope (the repository
// never does either outside mem's own page table).
package snapshotalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"fleaflicker/internal/analysis/annotation"
	"fleaflicker/internal/analysis/scope"
	"fleaflicker/internal/analysis/ssaflow"
)

// Analyzer is the snapshotalias analysis.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotalias",
	Doc:  "forbid page references held across copy-on-write snapshot barriers and page stores that bypass the fault path",
	Run:  run,
}

// pageArrayMin distinguishes page storage (*[4096]byte in mem) from small
// scratch arrays (*[8]byte encode buffers): anything 512 bytes or larger is
// treated as a page.
const pageArrayMin = 512

// Taint lattice per page-typed variable. Join is max.
const (
	tClean   uint8 = iota // not a page reference
	tFresh                // provably private page (new, &local, cowfault result)
	tShared               // may alias image/snapshot page storage
	tCrossed              // page reference that survived a snapshot barrier
)

func run(pass *analysis.Pass) (interface{}, error) {
	if !annotation.PkgIn(pass.Pkg, scope.Snapshotting...) {
		return nil, nil
	}
	marks := annotation.Gather(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := &funcCheck{pass: pass, marks: marks}
			fn.check(fd.Type, fd.Body, marks.FuncMarked(fd, annotation.CowFault))
			// Function literals are separate functions with their own CFG
			// (their bodies do not execute where they appear).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					inner := &funcCheck{pass: pass, marks: marks}
					inner.check(lit.Type, lit.Body, false)
				}
				return true
			})
		}
	}
	return nil, nil
}

// taintState is the dataflow state: taint per variable. Implements
// ssaflow.State with pointwise-max join.
type taintState map[*types.Var]uint8

func (s taintState) Clone() ssaflow.State {
	c := make(taintState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s taintState) Join(other ssaflow.State) bool {
	o := other.(taintState)
	changed := false
	for k, v := range o {
		if v > s[k] {
			s[k] = v
			changed = true
		}
	}
	return changed
}

type funcCheck struct {
	pass  *analysis.Pass
	marks *annotation.Marks
	// reported dedupes diagnostics per (variable, position).
	reported map[token.Pos]bool
}

func (fc *funcCheck) check(ftype *ast.FuncType, body *ast.BlockStmt, isCowFault bool) {
	fc.reported = make(map[token.Pos]bool)
	g := ssaflow.New(body)

	// Entry state: page-typed parameters (EachPage callbacks) and
	// page-valued range variables are shared page references at their defs.
	// Range variables are seeded statically because go/cfg materializes a
	// range binding as a bare ident node, not an assignment.
	entry := make(taintState)
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if v, ok := fc.pass.TypesInfo.Defs[name].(*types.Var); ok && isPageType(v.Type()) {
					entry[v] = tShared
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok && rs.Value != nil {
			if id, ok := rs.Value.(*ast.Ident); ok {
				if v, ok := fc.pass.TypesInfo.Defs[id].(*types.Var); ok && isPageType(v.Type()) {
					entry[v] = tShared
				}
			}
		}
		return true
	})

	in := g.Forward(entry, fc.transfer)
	g.Walk(in, fc.transfer, func(s ssaflow.State, n ast.Node) {
		fc.visit(s.(taintState), n, isCowFault)
	})
}

// transfer advances the taint state past one CFG node: assignments define
// taints, barrier calls escalate every live page reference to crossed.
func (fc *funcCheck) transfer(s ssaflow.State, n ast.Node) {
	st := s.(taintState)
	// Barriers anywhere in the node take effect for everything after it;
	// ordering within a single statement is coarser than SSA would give, but
	// a statement both holding a page reference and snapshotting is already
	// suspect.
	if fc.containsBarrier(n) {
		for v, t := range st {
			if t == tFresh || t == tShared {
				st[v] = tCrossed
			}
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		fc.assign(st, n.Lhs, n.Rhs)
	case *ast.ValueSpec:
		exprs := make([]ast.Expr, len(n.Names))
		for i, name := range n.Names {
			exprs[i] = name
		}
		fc.assign(st, exprs, n.Values)
	}
}

func (fc *funcCheck) assign(st taintState, lhs, rhs []ast.Expr) {
	for i, l := range lhs {
		v := ssaflow.Var(fc.pass.TypesInfo, l)
		if v == nil {
			continue
		}
		if !isPageType(v.Type()) && !isByteSlice(v.Type()) {
			continue
		}
		var t uint8
		switch {
		case len(rhs) == len(lhs):
			t = fc.taintOf(st, rhs[i])
		case len(rhs) == 1 && i == 0:
			// v, ok := m.pages[k] — the value is the first variable.
			t = fc.taintOf(st, rhs[0])
		}
		st[v] = t
	}
}

// taintOf computes the taint of an expression's value under state st.
func (fc *funcCheck) taintOf(st taintState, e ast.Expr) uint8 {
	e = ast.Unparen(e)
	info := fc.pass.TypesInfo

	// []byte views of a page carry the page's taint.
	if sl, ok := e.(*ast.SliceExpr); ok {
		if isPageType(info.TypeOf(sl.X)) {
			return fc.taintOf(st, sl.X)
		}
		if v := ssaflow.Var(info, sl.X); v != nil {
			return st[v]
		}
		return tClean
	}
	if !isPageType(info.TypeOf(e)) {
		return tClean
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v := ssaflow.Var(info, e); v != nil {
			return st[v]
		}
		return tShared
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && info.Uses[id] == types.Universe.Lookup("new") {
			return tFresh
		}
		if fn := annotation.CalleeFunc(info, e); fn != nil && fc.calleeCowFault(fn) {
			return tFresh
		}
		return tShared
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return tFresh
		}
		return tShared
	default:
		// Map index, field select, type assertion: image page storage.
		return tShared
	}
}

// calleeCowFault reports whether fn is declared in this package with a
// //flea:cowfault mark. (Cross-package cowfault helpers would need facts;
// the fault path lives where the page table lives.)
func (fc *funcCheck) calleeCowFault(fn *types.Func) bool {
	if fn.Pkg() != fc.pass.Pkg {
		return false
	}
	for _, f := range fc.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fn.Name() {
				continue
			}
			if fc.pass.TypesInfo.Defs[fd.Name] == fn {
				return fc.marks.FuncMarked(fd, annotation.CowFault)
			}
		}
	}
	return false
}

// containsBarrier reports whether node n performs a snapshot barrier:
// (*mem.Image).Snapshot, (*mem.ImageSnapshot).Image, or any RestoreSnapshot
// method (the core.Snapshotter restore). Function literals inside n are
// skipped — they run elsewhere.
func (fc *funcCheck) containsBarrier(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := annotation.CalleeFunc(fc.pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if annotation.IsMethod(fn, "mem", "Image", "Snapshot") ||
			annotation.IsMethod(fn, "mem", "ImageSnapshot", "Image") ||
			(fn.Name() == "RestoreSnapshot" && fn.Type().(*types.Signature).Recv() != nil) {
			found = true
			return false
		}
		return true
	})
	return found
}

// visit checks one CFG node against the state holding immediately before it:
// uses of crossed references, and stores through non-private pages.
func (fc *funcCheck) visit(st taintState, n ast.Node, isCowFault bool) {
	info := fc.pass.TypesInfo

	// Defining occurrences are not uses; collect them to skip.
	defs := make(map[*ast.Ident]bool)
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				defs[id] = true
			}
		}
	}

	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if defs[m] {
				return true
			}
			v, ok := info.Uses[m].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			if st[v] == tCrossed && !fc.reported[m.Pos()] {
				fc.reported[m.Pos()] = true
				fc.pass.Reportf(m.Pos(),
					"page reference %s was obtained before a snapshot barrier and used after it; re-derive it from the image", m.Name)
			}
		case *ast.AssignStmt:
			for _, l := range m.Lhs {
				fc.checkStore(st, l, isCowFault)
			}
		case *ast.CallExpr:
			// copy(dst, ...) writes through dst.
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok &&
				info.Uses[id] == types.Universe.Lookup("copy") && len(m.Args) == 2 {
				fc.checkStore(st, m.Args[0], isCowFault)
			}
		}
		return true
	})
}

// checkStore reports a store through dst when dst dereferences a page that
// is not provably private.
func (fc *funcCheck) checkStore(st taintState, dst ast.Expr, isCowFault bool) {
	if isCowFault {
		return // the fault path owns the page table
	}
	info := fc.pass.TypesInfo
	var base ast.Expr
	switch d := ast.Unparen(dst).(type) {
	case *ast.IndexExpr:
		base = d.X
	case *ast.StarExpr:
		base = d.X
	case *ast.SliceExpr:
		base = d.X
	default:
		return
	}
	if !isPageType(info.TypeOf(base)) {
		// Stores into local array values ([N]byte variables) are value
		// semantics; only pointer dereferences can reach shared storage.
		return
	}
	if t := fc.taintOf(st, base); t >= tShared {
		if !fc.reported[dst.Pos()] {
			fc.reported[dst.Pos()] = true
			fc.pass.Reportf(dst.Pos(),
				"store through page reference bypasses the copy-on-write fault path; write via the image (or a //flea:cowfault helper) so shared pages fault private first")
		}
	}
}

// isPageType reports whether t is a page reference: *[N]byte with
// N >= pageArrayMin.
func isPageType(t types.Type) bool {
	if t == nil {
		return false
	}
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	a, ok := p.Elem().Underlying().(*types.Array)
	if !ok || a.Len() < pageArrayMin {
		return false
	}
	b, ok := a.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isByteSlice reports whether t is []byte.
func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
