// Package checkpoint exercises snapshotalias: positive cases hold page
// references across snapshot barriers or store through possibly-shared
// pages; negative cases re-derive references and write through the fault
// path.
package checkpoint

import "internal/mem"

// badRetain holds a page reference across the snapshot barrier: after
// Snapshot, p aliases a page the snapshot also owns (or a stale private
// copy).
func badRetain(m *mem.Image) byte {
	p := m.Page(0)
	snap := m.Snapshot()
	_ = snap
	return p[0] // want "page reference p was obtained before a snapshot barrier"
}

// badRetainRestore: materializing an image from a snapshot is a barrier too.
func badRetainRestore(m *mem.Image, s *mem.ImageSnapshot) byte {
	p := m.Page(0)
	fresh := s.Image()
	_ = fresh
	return p[0] // want "page reference p was obtained before a snapshot barrier"
}

// badRetainOneBranch crosses the barrier on only one path; the report fires
// because the use is reachable with a crossed reference.
func badRetainOneBranch(m *mem.Image, capture bool) byte {
	p := m.Page(0)
	if capture {
		_ = m.Snapshot()
	}
	return p[0] // want "page reference p was obtained before a snapshot barrier"
}

// badStore writes through a page that may be snapshot-shared, bypassing the
// copy-on-write fault.
func badStore(m *mem.Image) {
	p := m.Page(0)
	p[1] = 42 // want "bypasses the copy-on-write fault path"
}

// badStoreCopy: copy writes through its destination.
func badStoreCopy(m *mem.Image, b []byte) {
	p := m.Page(0)
	copy(p[:], b) // want "bypasses the copy-on-write fault path"
}

// badCallbackSnapshot snapshots inside the page walk and keeps using the
// walked page afterward.
func badCallbackSnapshot(m *mem.Image, s *mem.ImageSnapshot) {
	var sum byte
	s.EachPage(func(k uint64, p *[4096]byte) {
		_ = m.Snapshot()
		sum += p[0] // want "page reference p was obtained before a snapshot barrier"
	})
	_ = sum
}

// goodRederive takes the snapshot first and derives the page reference
// afterward.
func goodRederive(m *mem.Image) byte {
	snap := m.Snapshot()
	_ = snap
	p := m.Page(0)
	if p == nil {
		return 0
	}
	return p[0]
}

// goodReadBeforeBarrier finishes with the reference before snapshotting.
func goodReadBeforeBarrier(m *mem.Image) byte {
	p := m.Page(0)
	v := p[0]
	_ = m.Snapshot()
	return v
}

// goodFreshScratch writes through a provably private page: new never
// aliases the image.
func goodFreshScratch(b []byte) byte {
	buf := new([4096]byte)
	buf[0] = 1
	copy(buf[:], b)
	return buf[0]
}

// goodWriteViaImage funnels the store through the image's fault path.
func goodWriteViaImage(m *mem.Image) {
	m.SetByte(9, 3)
}

// goodCallbackRead reads pages inside the walk without any barrier.
func goodCallbackRead(s *mem.ImageSnapshot) byte {
	var sum byte
	s.EachPage(func(k uint64, p *[4096]byte) {
		sum += p[0]
	})
	return sum
}
