// Package mem models the real internal/mem copy-on-write image for the
// snapshotalias fixtures: a page table of *[4096]byte, a snapshot that marks
// pages shared, and a fault path (page) that privatizes shared pages before
// handing out a writable reference. This fixture is itself in the analyzer's
// scope and must stay diagnostic-free.
package mem

const pageSize = 4096

// Image is a sparse byte-addressed memory backed by a page table.
type Image struct {
	pages  map[uint64]*[pageSize]byte
	shared map[uint64]bool
}

// NewImage returns an empty image.
func NewImage() *Image {
	return &Image{
		pages:  make(map[uint64]*[pageSize]byte),
		shared: make(map[uint64]bool),
	}
}

// page returns the backing page for addr, privatizing a snapshot-shared page
// first — the copy-on-write fault.
//
//flea:cowfault
func (m *Image) page(addr uint64, create bool) *[pageSize]byte {
	k := addr / pageSize
	p, ok := m.pages[k]
	if !ok {
		if !create {
			return nil
		}
		p = new([pageSize]byte)
		m.pages[k] = p
		return p
	}
	if m.shared[k] {
		fresh := new([pageSize]byte)
		*fresh = *p
		m.pages[k] = fresh
		delete(m.shared, k)
		p = fresh
	}
	return p
}

// Page exposes the backing page for addr read-only; nil when unmapped. The
// reference must not be retained across a snapshot barrier or written
// through.
func (m *Image) Page(addr uint64) *[pageSize]byte {
	return m.page(addr, false)
}

// SetByte writes one byte through the fault path.
func (m *Image) SetByte(addr uint64, b byte) {
	m.page(addr, true)[addr%pageSize] = b
}

// Write copies b into the image starting at addr.
func (m *Image) Write(addr uint64, b []byte) {
	for i, v := range b {
		m.SetByte(addr+uint64(i), v)
	}
}

// ImageSnapshot is a point-in-time view sharing pages with the image it was
// taken from.
type ImageSnapshot struct {
	pages map[uint64]*[pageSize]byte
}

// Snapshot marks every live page shared and returns a view over them.
func (m *Image) Snapshot() *ImageSnapshot {
	s := &ImageSnapshot{pages: make(map[uint64]*[pageSize]byte, len(m.pages))}
	//flea:orderinvariant (pure set copy; insertion order does not matter)
	for k, p := range m.pages {
		m.shared[k] = true
		s.pages[k] = p
	}
	return s
}

// Image materializes a standalone image from the snapshot, sharing its pages
// copy-on-write.
func (s *ImageSnapshot) Image() *Image {
	m := NewImage()
	//flea:orderinvariant (pure set copy; insertion order does not matter)
	for k, p := range s.pages {
		m.pages[k] = p
		m.shared[k] = true
	}
	return m
}

// EachPage calls fn for every page in the snapshot.
func (s *ImageSnapshot) EachPage(fn func(k uint64, p *[pageSize]byte)) {
	//flea:orderinvariant (callback is supplied sorted keys in the real code)
	for k, p := range s.pages {
		fn(k, p)
	}
}
