// Package hotalloc defines an analyzer enforcing the repository's
// steady-state allocation-free invariant: a function annotated
// //flea:hotpath (the cycle-loop paths of the machine models, the memory
// hierarchy, and the DynInst arena) must not contain allocating constructs.
//
// Reported constructs:
//
//   - make and new
//   - append calls that can grow a fresh backing array every call (appends
//     that recycle persistent backing — append(x[:0], ...), self-appends to
//     fields, parameters, or locals initialized from them — are accepted)
//   - slice and map composite literals, and &T{} pointer literals
//   - function literals, unless bound to a local variable that is only
//     called (such closures do not escape and stay on the stack)
//   - go and defer statements
//   - calls into package fmt
//   - explicit conversions of concrete values to interface types (boxing)
//
// Escape hatches, in order of preference: arguments of panic(...) are
// skipped (a panicking simulator may allocate); blocks guarded by
// trace.Tracer.Enabled() are skipped (the invariant protects the
// tracing-disabled path); a statement marked //flea:coldpath is skipped (for
// amortized warmup paths such as arena slab allocation and first-touch page
// creation).
//
// The analyzer checks annotated function bodies only — it does not chase
// calls. The repository convention is therefore to annotate every function a
// hotpath function calls on its steady-state path, which the self-applied
// annotations in internal/{baseline,pipeline,twopass,runahead,mem,stats} do.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"fleaflicker/internal/analysis/annotation"
)

// Analyzer is the hotalloc analysis.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in //flea:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	marks := annotation.Gather(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && annotation.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !marks.FuncMarked(fd, annotation.Hotpath) {
				continue
			}
			c := &checker{pass: pass, marks: marks, fn: fd}
			c.gatherLocals()
			c.check(fd.Body)
		}
	}
	return nil, nil
}

type checker struct {
	pass  *analysis.Pass
	marks *annotation.Marks
	fn    *ast.FuncDecl

	// localInit maps a local variable to its initializer expression (from
	// := or var declarations), for the append-growth heuristic.
	localInit map[types.Object]ast.Expr
	// callOnly marks local closures used exclusively in call position;
	// such closures do not escape and are stack-allocated.
	callOnly map[types.Object]bool
}

// gatherLocals records local initializers and classifies closure bindings.
func (c *checker) gatherLocals() {
	c.localInit = make(map[types.Object]ast.Expr)
	c.callOnly = make(map[types.Object]bool)

	uses := make(map[types.Object]int)     // ident uses per object
	callUses := make(map[types.Object]int) // uses in call position
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
					c.localInit[obj] = n.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil && i < len(n.Values) {
					c.localInit[obj] = n.Values[i]
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
					callUses[obj]++
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
				uses[obj]++
			}
		}
		return true
	})
	for obj, init := range c.localInit {
		if _, ok := ast.Unparen(init).(*ast.FuncLit); ok && uses[obj] == callUses[obj] {
			c.callOnly[obj] = true
		}
	}
}

// check walks a subtree, reporting allocating constructs and pruning the
// excluded paths (coldpath statements, Enabled()-guarded blocks, panic
// arguments).
func (c *checker) check(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if stmt, ok := n.(ast.Stmt); ok && c.marks.Marked(stmt, annotation.Coldpath) {
			return false
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			if annotation.IsEnabledGuard(c.pass.TypesInfo, n.Cond) {
				// The body only runs with tracing enabled; the invariant
				// protects the disabled path. The else branch (if any) is
				// still hot.
				if n.Else != nil {
					c.check(n.Else)
				}
				return false
			}
		case *ast.CallExpr:
			return c.checkCall(n)
		case *ast.CompositeLit:
			switch c.pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				c.report(n, "slice literal allocates")
			case *types.Map:
				c.report(n, "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(n, "&composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			if !c.isCallOnlyClosure(n) {
				c.report(n, "escaping closure allocates")
			}
			// The body still runs on the hot path; keep walking it.
		case *ast.GoStmt:
			c.report(n, "go statement allocates a goroutine")
			return false
		case *ast.DeferStmt:
			c.report(n, "defer on the hot path")
		}
		return true
	})
}

// checkCall classifies one call expression. It returns false when the call's
// children must not be walked (panic arguments are exempt).
func (c *checker) checkCall(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch c.pass.TypesInfo.Uses[id] {
		case types.Universe.Lookup("panic"):
			return false // failure path: allocation acceptable
		case types.Universe.Lookup("make"):
			c.report(call, "make allocates")
			return true
		case types.Universe.Lookup("new"):
			c.report(call, "new allocates")
			return true
		case types.Universe.Lookup("append"):
			c.checkAppend(call)
			return true
		}
	}
	if fn := annotation.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			c.report(call, "fmt.%s allocates and boxes its operands", fn.Name())
			return true
		}
	}
	// Explicit conversion of a concrete value to an interface type boxes it.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) && !types.IsInterface(c.pass.TypesInfo.TypeOf(call.Args[0])) {
			c.report(call, "conversion to %s boxes its operand", tv.Type.String())
		}
	}
	return true
}

// checkAppend applies the growth heuristic: an append is accepted only when
// it demonstrably recycles persistent backing.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	arg0 := ast.Unparen(call.Args[0])
	// append(x[:0], ...) / append(x[:n], ...): re-slicing existing backing.
	if _, ok := arg0.(*ast.SliceExpr); ok {
		return
	}
	// Self-append (x = append(x, ...)) amortizes growth across the machine's
	// lifetime when x is persistent: a field, a parameter, or a local
	// initialized from one.
	if c.isSelfAppend(call, arg0) && c.isPersistent(arg0) {
		return
	}
	c.report(call, "append may grow a fresh backing array every call; recycle a persistent buffer")
}

// isSelfAppend reports whether the append call is the sole RHS of an
// assignment back into its own first argument.
func (c *checker) isSelfAppend(call *ast.CallExpr, arg0 ast.Expr) bool {
	found := false
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != call {
			return true
		}
		if len(as.Lhs) == 1 && exprString(as.Lhs[0]) == exprString(arg0) {
			found = true
		}
		return false
	})
	return found
}

// isPersistent reports whether an append target denotes state that outlives
// the call: a selector (field of the machine), a parameter, or a local whose
// initializer derives from one.
func (c *checker) isPersistent(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			return false
		}
		if c.isParam(obj) {
			return true
		}
		init, ok := c.localInit[obj]
		if !ok {
			return false
		}
		persistent := false
		ast.Inspect(init, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				persistent = true
				return false
			case *ast.Ident:
				if obj := c.pass.TypesInfo.Uses[n]; obj != nil && c.isParam(obj) {
					persistent = true
					return false
				}
			}
			return true
		})
		return persistent
	}
	return false
}

func (c *checker) isParam(obj types.Object) bool {
	if c.fn.Type.Params != nil {
		for _, field := range c.fn.Type.Params.List {
			for _, name := range field.Names {
				if c.pass.TypesInfo.Defs[name] == obj {
					return true
				}
			}
		}
	}
	if c.fn.Recv != nil {
		for _, field := range c.fn.Recv.List {
			for _, name := range field.Names {
				if c.pass.TypesInfo.Defs[name] == obj {
					return true
				}
			}
		}
	}
	return false
}

func (c *checker) isCallOnlyClosure(lit *ast.FuncLit) bool {
	for obj, init := range c.localInit {
		if ast.Unparen(init) == lit {
			return c.callOnly[obj]
		}
	}
	return false
}

func (c *checker) report(n ast.Node, format string, args ...interface{}) {
	c.pass.Reportf(n.Pos(), "//flea:hotpath %s: "+format,
		append([]interface{}{c.fn.Name.Name}, args...)...)
}

// exprString renders a simple expression for textual comparison (selectors,
// identifiers, index and slice bases).
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.SliceExpr:
		return exprString(e.X) + "[:]"
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return ""
}
