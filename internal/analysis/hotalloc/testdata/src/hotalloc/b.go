// Negative fixture: the accepted idioms inside a hotpath function, and an
// unannotated function that allocates freely.
package fixture

import (
	"fmt"

	"trace"
)

//flea:hotpath
func (m *machine) ok(n int) {
	m.buf = append(m.buf[:0], n) // re-slice of arg0: recycles backing
	m.buf = append(m.buf, n)     // self-append to a field: amortized growth
	scratch := m.buf
	scratch = append(scratch, n) // self-append to a local derived from a field
	m.buf = scratch
	if m.tr.Enabled() {
		// Guarded block: only runs with tracing on; may allocate.
		m.tr.Emit(trace.Event{Cycle: int64(n), Note: fmt.Sprintf("cycle %d", n)})
	}
	//flea:coldpath warmup growth amortizes across the run
	grown := make([]int, n)
	_ = grown
	bump := func(x int) { m.buf[0] = x } // call-only closure: stays on the stack
	bump(n)
	if n < 0 {
		panic(fmt.Sprintf("bad %d", n)) // failure path may allocate
	}
}

// build is not annotated: allocation is unconstrained.
func (m *machine) build(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	fmt.Println(out)
	return out
}
