// Positive fixture: allocating constructs inside //flea:hotpath functions.
package fixture

import (
	"fmt"

	"trace"
)

type record struct{ id int }

type machine struct {
	buf []int
	tr  *trace.Tracer
}

//flea:hotpath
func (m *machine) hot(n int) {
	s := make([]int, n) // want "make allocates"
	_ = s
	p := new(record) // want "new allocates"
	_ = p
	var local []int
	local = append(local, n) // want "append may grow a fresh backing array"
	_ = local
	lits := []int{1, 2} // want "slice literal allocates"
	_ = lits
	table := map[int]int{1: 2} // want "map literal allocates"
	_ = table
	r := &record{id: n} // want "composite literal escapes to the heap"
	_ = r
	fmt.Println(n) // want "fmt.Println allocates and boxes"
	box := any(n)  // want "boxes its operand"
	_ = box
}

//flea:hotpath
func (m *machine) spawns() {
	go m.tick()    // want "go statement allocates a goroutine"
	defer m.tick() // want "defer on the hot path"
}

func (m *machine) tick() {}

//flea:hotpath
func (m *machine) escapes() func() {
	f := func() { m.buf[0] = 1 } // want "escaping closure allocates"
	return f
}
