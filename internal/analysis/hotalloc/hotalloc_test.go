package hotalloc_test

import (
	"testing"

	"fleaflicker/internal/analysis/analyzertest"
	"fleaflicker/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analyzertest.Run(t, "testdata", hotalloc.Analyzer, "hotalloc")
}
