package ssaflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const src = `package p

func f(c bool) {
	a := 1
	if c {
		b := 2
		_ = b
	} else {
		b := 3
		c := 4
		_, _ = b, c
	}
	sink()
	_ = a
}

func sink() {}
`

// mustAssigned is a must-analysis: the set of variable names assigned on
// every path. Join is set intersection.
type mustAssigned map[string]bool

func (m mustAssigned) Clone() State {
	c := make(mustAssigned, len(m))
	for k := range m {
		c[k] = true
	}
	return c
}

func (m mustAssigned) Join(other State) bool {
	o := other.(mustAssigned)
	changed := false
	for k := range m {
		if !o[k] {
			delete(m, k)
			changed = true
		}
	}
	return changed
}

func transfer(s State, n ast.Node) {
	m := s.(mustAssigned)
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			m[id.Name] = true
		}
	}
}

// TestForwardMustIntersection checks the worklist solver computes a correct
// must-analysis across an if/else join: `a` and `b` are assigned on every
// path into the block containing sink(), `c` only on the else path.
func TestForwardMustIntersection(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	g := New(fd.Body)

	in := g.Forward(mustAssigned{}, transfer)
	var atSink mustAssigned
	g.Walk(in, transfer, func(s State, n ast.Node) {
		if call, ok := callNamed(n, "sink"); ok && call {
			atSink = s.Clone().(mustAssigned)
		}
	})
	if atSink == nil {
		t.Fatal("sink() call not visited")
	}
	for _, want := range []string{"a", "b"} {
		if !atSink[want] {
			t.Errorf("%q not in must-assigned set at sink(); got %v", want, atSink)
		}
	}
	if atSink["c"] {
		t.Errorf("branch-local %q leaked into the must-assigned set %v", "c", atSink)
	}
}

func callNamed(n ast.Node, name string) (bool, bool) {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false, false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == name, true
}

// TestLockKey checks selector-chain resolution and root-identity separation.
func TestLockKey(t *testing.T) {
	const lsrc = `package p
type T struct{ mu int }
func g(a, b *T) {
	_ = a.mu
	_ = b.mu
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", lsrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[1].(*ast.FuncDecl)
	var keys []LockID
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			k, ok := LockKey(info, sel)
			if !ok {
				t.Fatalf("LockKey failed on %v", sel)
			}
			keys = append(keys, k)
			return false
		}
		return true
	})
	if len(keys) != 2 {
		t.Fatalf("got %d keys, want 2", len(keys))
	}
	if keys[0] == keys[1] {
		t.Errorf("a.mu and b.mu resolved to the same LockID %v", keys[0])
	}
	if keys[0].Path != ".mu" || keys[1].Path != ".mu" {
		t.Errorf("paths = %q, %q; want .mu", keys[0].Path, keys[1].Path)
	}
}
