// Package ssaflow is the intraprocedural dataflow engine behind the
// flealint v2 analyzers (snapshotalias, snapshotprotocol, guardedby).
//
// The toolchain's cmd/vendor tree — the only offline source for
// golang.org/x/tools — ships go/cfg but not go/ssa, so the v2 analyzers
// cannot be literal buildssa passes. This package recovers the part of SSA
// they need: a control-flow graph per function (vendored go/cfg) plus a
// monotone forward dataflow solver at node granularity, through which a
// client expresses SSA-style facts — "which definition of v reaches this
// use", "is lock mu held on every path to this access" — as an abstract
// state with client-defined transfer and join.
//
// The solver is standard worklist iteration to fixpoint. Clients implement
// State (Clone + Join on a finite-height lattice) and a transfer function
// applied to each CFG node in block order; Forward computes the state
// holding at entry to every reachable block, and Walk replays the transfer
// within blocks so a client can inspect the state holding immediately
// before every node.
package ssaflow

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/cfg"
)

// State is a client-defined abstract dataflow state. Implementations are
// mutable (transfer functions update them in place); Clone must produce an
// independent copy, and Join must merge other into the receiver, reporting
// whether the receiver changed. Join is only called with states of the
// client's own concrete type.
type State interface {
	Clone() State
	Join(other State) (changed bool)
}

// Graph is the control-flow graph of one function, ready for dataflow.
type Graph struct {
	Body *ast.BlockStmt
	CFG  *cfg.CFG
}

// New builds the CFG for a function declaration or literal body. Calls to
// panic-like functions (panic, os.Exit, runtime.Goexit, log.Fatal*) are
// treated as not returning, which prunes infeasible fallthrough paths the
// same way buildssa's dominator pruning would.
func New(body *ast.BlockStmt) *Graph {
	return &Graph{Body: body, CFG: cfg.New(body, mayReturn)}
}

// mayReturn reports whether a call can return to its caller.
func mayReturn(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name != "panic" && fun.Name != "Goexit"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if name == "Exit" || name == "Goexit" || name == "Fatal" ||
			name == "Fatalf" || name == "Fatalln" {
			return false
		}
	}
	return true
}

// Forward runs transfer over the CFG to fixpoint and returns the abstract
// state holding at entry to each reachable block. entry is the state at
// function entry; it is not mutated.
func (g *Graph) Forward(entry State, transfer func(State, ast.Node)) map[*cfg.Block]State {
	in := make(map[*cfg.Block]State, len(g.CFG.Blocks))
	if len(g.CFG.Blocks) == 0 {
		return in
	}
	entryBlock := g.CFG.Blocks[0]
	in[entryBlock] = entry.Clone()
	worklist := []*cfg.Block{entryBlock}
	for len(worklist) > 0 {
		b := worklist[0]
		worklist = worklist[1:]
		s := in[b].Clone()
		for _, n := range b.Nodes {
			transfer(s, n)
		}
		for _, succ := range b.Succs {
			if cur, ok := in[succ]; !ok {
				in[succ] = s.Clone()
				worklist = append(worklist, succ)
			} else if cur.Join(s) {
				worklist = append(worklist, succ)
			}
		}
	}
	return in
}

// Walk replays the fixpoint solution: for every reachable block, visit is
// called with the state holding immediately before each node, in block
// order, after which transfer advances the state past the node. The state
// passed to visit is working storage — clients must not retain it.
func (g *Graph) Walk(in map[*cfg.Block]State, transfer func(State, ast.Node), visit func(State, ast.Node)) {
	for _, b := range g.CFG.Blocks {
		s, ok := in[b]
		if !ok {
			continue // unreachable
		}
		work := s.Clone()
		for _, n := range b.Nodes {
			visit(work, n)
			transfer(work, n)
		}
	}
}

// Var resolves an expression to the *types.Var it denotes, unwrapping
// parentheses: an identifier naming a local, parameter, or named result.
// It returns nil for anything else (fields, globals, complex expressions).
func Var(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// LockID names one mutex reachable from a root variable: the root's object
// identity plus the selected field path, so `m.mu` and `q.mu` (and two
// different `m`s across functions) never collide. The zero LockID is
// invalid.
type LockID struct {
	Root types.Object
	Path string
}

// LockKey resolves a lock expression — an identifier or a selector chain
// rooted at one (mu, m.mu, s.queue.mu) — to its LockID. ok is false for
// expressions rooted elsewhere (map index, call result), which the must-hold
// analysis conservatively refuses to track.
func LockKey(info *types.Info, e ast.Expr) (LockID, bool) {
	path := ""
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil {
				return LockID{}, false
			}
			return LockID{Root: obj, Path: path}, true
		case *ast.SelectorExpr:
			path = "." + x.Sel.Name + path
			e = x.X
		default:
			return LockID{}, false
		}
	}
}
