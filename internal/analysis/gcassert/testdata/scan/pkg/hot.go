// Package pkg is a gcassert scanner fixture: a mix of annotated and plain
// declarations, including a method whose rendered name must match the
// compiler's (*T).Name shape.
package pkg

// Buf is a fixed page-like buffer.
type Buf struct {
	b [64]byte
}

// At returns the byte at a masked index.
//
//flea:inline
//flea:bce
func (p *Buf) At(i int) byte {
	return p.b[i&63]
}

// Fill stores v everywhere.
//
//flea:noescape
func (p *Buf) Fill(v byte) {
	for i := range p.b {
		p.b[i] = v
	}
}

// Grow is annotated but allocates: the checker must flag it when the
// synthetic compiler output says so.
//
//flea:inline
//flea:noescape
func Grow(n int) []byte {
	return make([]byte, n)
}

// plain carries no directives and must not produce assertions.
func plain() int { return 1 }
