// Package gcassert checks compiler-fact assertions: //flea:inline,
// //flea:noescape and //flea:bce directives on function declarations are
// verified against the gc compiler's own diagnostics, produced by
//
//	go build '-gcflags=fleaflicker/...=-m -d=ssa/check_bce' ./...
//
// The three directives assert, respectively, that the function is reported
// "can inline", that no value in its body escapes to the heap, and that the
// SSA prove pass eliminated every bounds check in its body. Unlike the
// flealint analyzers, which enforce invariants the analyzer itself can
// decide, these assertions pin down facts only the compiler knows — and
// which silently rot when a function grows past the inlining budget or a
// refactor reintroduces a bounds check on a hot load.
//
// The package is pure parsing and matching; cmd/fleagcassert wires it to an
// actual compiler invocation.
package gcassert

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"fleaflicker/internal/analysis/annotation"
)

// Assertion is one compiler-fact directive attached to a function
// declaration.
type Assertion struct {
	// File is the declaring file's path relative to the module root,
	// slash-separated — the same shape the compiler prints with -m.
	File string
	// Line is the line of the func keyword; "can inline" diagnostics are
	// anchored there.
	Line int
	// EndLine is the last line of the function body; escape and
	// bounds-check diagnostics anywhere in [Line, EndLine] belong to this
	// function.
	EndLine int
	// Func is the declared name, for reporting ("(*Arena).Get").
	Func string
	// Directive is annotation.Inline, annotation.NoEscape or
	// annotation.BCE.
	Directive string
}

// Diag is one parsed compiler diagnostic line.
type Diag struct {
	File string
	Line int
	Msg  string
}

// Failure is one assertion the compiler output contradicts.
type Failure struct {
	Assertion Assertion
	// Reason explains the contradiction, citing the offending diagnostic
	// when there is one.
	Reason string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s:%d: //flea:%s %s: %s",
		f.Assertion.File, f.Assertion.Line, f.Assertion.Directive, f.Assertion.Func, f.Reason)
}

// ScanDir walks the Go source tree rooted at root and collects every
// compiler-fact assertion. Test files, testdata trees and vendored or
// hidden directories are skipped: assertions only make sense on code the
// `go build ./...` sweep compiles.
func ScanDir(root string) ([]Assertion, error) {
	var asserts []Assertion
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || name == "vendor" || name == "bin" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		asserts = append(asserts, scanFile(fset, filepath.ToSlash(rel), file)...)
		return nil
	})
	return asserts, err
}

// scanFile extracts the assertions declared in one parsed file.
func scanFile(fset *token.FileSet, rel string, file *ast.File) []Assertion {
	var asserts []Assertion
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			name, _, ok := annotation.ParseDirective(c.Text)
			if !ok {
				continue
			}
			switch name {
			case annotation.Inline, annotation.NoEscape, annotation.BCE:
			default:
				continue
			}
			asserts = append(asserts, Assertion{
				File:      rel,
				Line:      fset.Position(fd.Pos()).Line,
				EndLine:   fset.Position(fd.End()).Line,
				Func:      declName(fd),
				Directive: name,
			})
		}
	}
	return asserts
}

// declName renders a declaration the way the compiler does: methods as
// (T).Name or (*T).Name, functions bare.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	var b strings.Builder
	b.WriteByte('(')
	writeRecvType(&b, t)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeRecvType(b *strings.Builder, t ast.Expr) {
	switch t := t.(type) {
	case *ast.StarExpr:
		b.WriteByte('*')
		writeRecvType(b, t.X)
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr:
		writeRecvType(b, t.X)
	case *ast.IndexListExpr:
		writeRecvType(b, t.X)
	default:
		b.WriteString("?")
	}
}

// ParseDiags extracts file:line:col diagnostics from the combined output of
// a -m -d=ssa/check_bce build. Package header lines ("# fleaflicker/...")
// and anything else that does not match the position syntax are ignored.
func ParseDiags(output string) []Diag {
	var diags []Diag
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		d, ok := parseDiagLine(line)
		if ok {
			diags = append(diags, d)
		}
	}
	return diags
}

// parseDiagLine splits one "path.go:line:col: message" line.
func parseDiagLine(line string) (Diag, bool) {
	i := strings.Index(line, ".go:")
	if i < 0 || strings.HasPrefix(line, "#") {
		return Diag{}, false
	}
	file := line[:i+3]
	rest := line[i+4:]
	colon := strings.IndexByte(rest, ':')
	if colon < 0 {
		return Diag{}, false
	}
	ln, err := strconv.Atoi(rest[:colon])
	if err != nil {
		return Diag{}, false
	}
	rest = rest[colon+1:]
	colon = strings.IndexByte(rest, ':')
	if colon < 0 {
		return Diag{}, false
	}
	if _, err := strconv.Atoi(rest[:colon]); err != nil {
		return Diag{}, false
	}
	msg := strings.TrimSpace(rest[colon+1:])
	return Diag{File: filepath.ToSlash(file), Line: ln, Msg: msg}, true
}

// Check verifies every assertion against the compiler diagnostics and
// returns the failures, ordered by file and line.
func Check(asserts []Assertion, diags []Diag) []Failure {
	byFile := make(map[string][]Diag)
	for _, d := range diags {
		byFile[d.File] = append(byFile[d.File], d)
	}
	var failures []Failure
	for _, a := range asserts {
		if reason, ok := check(a, byFile[a.File]); !ok {
			failures = append(failures, Failure{Assertion: a, Reason: reason})
		}
	}
	sort.Slice(failures, func(i, j int) bool {
		ai, aj := failures[i].Assertion, failures[j].Assertion
		if ai.File != aj.File {
			return ai.File < aj.File
		}
		if ai.Line != aj.Line {
			return ai.Line < aj.Line
		}
		return ai.Directive < aj.Directive
	})
	return failures
}

func check(a Assertion, diags []Diag) (reason string, ok bool) {
	switch a.Directive {
	case annotation.Inline:
		for _, d := range diags {
			if d.Line == a.Line && strings.HasPrefix(d.Msg, "can inline ") {
				return "", true
			}
		}
		return "compiler did not report \"can inline\" at the declaration; the function exceeds the inlining budget", false
	case annotation.NoEscape:
		for _, d := range diags {
			if d.Line < a.Line || d.Line > a.EndLine {
				continue
			}
			if strings.HasSuffix(d.Msg, "escapes to heap") || strings.HasPrefix(d.Msg, "moved to heap:") {
				return fmt.Sprintf("%s:%d: %s", d.File, d.Line, d.Msg), false
			}
		}
		return "", true
	case annotation.BCE:
		for _, d := range diags {
			if d.Line < a.Line || d.Line > a.EndLine {
				continue
			}
			if strings.HasPrefix(d.Msg, "Found Is") {
				return fmt.Sprintf("%s:%d: %s (bounds check not eliminated)", d.File, d.Line, d.Msg), false
			}
		}
		return "", true
	}
	return fmt.Sprintf("unknown compiler-fact directive %q", a.Directive), false
}
