package gcassert_test

import (
	"strings"
	"testing"

	"fleaflicker/internal/analysis/gcassert"
)

// scanFixture loads the assertions declared in testdata/scan.
func scanFixture(t *testing.T) []gcassert.Assertion {
	t.Helper()
	asserts, err := gcassert.ScanDir("testdata/scan")
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	return asserts
}

func TestScanDir(t *testing.T) {
	asserts := scanFixture(t)
	want := []gcassert.Assertion{
		{File: "pkg/hot.go", Line: 15, EndLine: 17, Func: "(*Buf).At", Directive: "inline"},
		{File: "pkg/hot.go", Line: 15, EndLine: 17, Func: "(*Buf).At", Directive: "bce"},
		{File: "pkg/hot.go", Line: 22, EndLine: 26, Func: "(*Buf).Fill", Directive: "noescape"},
		{File: "pkg/hot.go", Line: 33, EndLine: 35, Func: "Grow", Directive: "inline"},
		{File: "pkg/hot.go", Line: 33, EndLine: 35, Func: "Grow", Directive: "noescape"},
	}
	if len(asserts) != len(want) {
		t.Fatalf("got %d assertions, want %d: %+v", len(asserts), len(want), asserts)
	}
	for i, a := range asserts {
		if a != want[i] {
			t.Errorf("assertion %d: got %+v, want %+v", i, a, want[i])
		}
	}
}

func TestParseDiags(t *testing.T) {
	out := `# fleaflicker/internal/pkg
pkg/hot.go:15:6: can inline (*Buf).At
pkg/hot.go:34:13: make([]byte, n) escapes to heap
pkg/hot.go:40:2: moved to heap: x
pkg/hot.go:16:13: Found IsInBounds
not a diagnostic line
pkg/hot.go:bad:1: unparsable line column
`
	diags := gcassert.ParseDiags(out)
	if len(diags) != 4 {
		t.Fatalf("got %d diags, want 4: %+v", len(diags), diags)
	}
	if diags[0] != (gcassert.Diag{File: "pkg/hot.go", Line: 15, Msg: "can inline (*Buf).At"}) {
		t.Errorf("diag 0 = %+v", diags[0])
	}
	if diags[2].Msg != "moved to heap: x" || diags[2].Line != 40 {
		t.Errorf("diag 2 = %+v", diags[2])
	}
}

func TestCheckPassing(t *testing.T) {
	asserts := scanFixture(t)
	// Compiler output consistent with every assertion except Grow's
	// noescape, whose make() escapes.
	diags := gcassert.ParseDiags(`# fleaflicker/internal/pkg
pkg/hot.go:15:6: can inline (*Buf).At
pkg/hot.go:22:6: can inline (*Buf).Fill
pkg/hot.go:33:6: can inline Grow
pkg/hot.go:34:13: make([]byte, n) escapes to heap
`)
	failures := gcassert.Check(asserts, diags)
	if len(failures) != 1 {
		t.Fatalf("got %d failures, want 1: %v", len(failures), failures)
	}
	f := failures[0]
	if f.Assertion.Func != "Grow" || f.Assertion.Directive != "noescape" {
		t.Errorf("unexpected failure: %v", f)
	}
	if !strings.Contains(f.Reason, "escapes to heap") {
		t.Errorf("reason should cite the escape diagnostic: %q", f.Reason)
	}
}

func TestCheckInlineAndBCEFailures(t *testing.T) {
	asserts := scanFixture(t)
	// No "can inline" for At, and a surviving bounds check in its body:
	// both of At's assertions must fail, plus Grow's missing inline.
	diags := gcassert.ParseDiags(`pkg/hot.go:16:13: Found IsInBounds
`)
	failures := gcassert.Check(asserts, diags)
	var got []string
	for _, f := range failures {
		got = append(got, f.Assertion.Func+"/"+f.Assertion.Directive)
	}
	want := []string{"(*Buf).At/bce", "(*Buf).At/inline", "Grow/inline"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("failures = %v, want %v", got, want)
	}
	for _, f := range failures {
		if f.Assertion.Directive == "bce" && !strings.Contains(f.Reason, "Found IsInBounds") {
			t.Errorf("bce reason should cite the compiler line: %q", f.Reason)
		}
		if f.Assertion.Directive == "inline" && !strings.Contains(f.Reason, "inlining budget") {
			t.Errorf("inline reason should explain the budget: %q", f.Reason)
		}
	}
}

func TestFailureString(t *testing.T) {
	f := gcassert.Failure{
		Assertion: gcassert.Assertion{File: "internal/mem/image.go", Line: 100, Func: "(*Image).Byte", Directive: "inline"},
		Reason:    "compiler did not report \"can inline\" at the declaration; the function exceeds the inlining budget",
	}
	s := f.String()
	if !strings.Contains(s, "internal/mem/image.go:100") || !strings.Contains(s, "//flea:inline (*Image).Byte") {
		t.Errorf("String() = %q", s)
	}
}
