// Positive fixture: a simulation package (path suffix internal/twopass).
package twopass

import (
	"math/rand"
	"time"
)

type machine struct {
	table map[int]int
	sum   int
	rng   *rand.Rand
}

func (m *machine) bad() {
	for k, v := range m.table { // want "map iteration order is nondeterministic"
		m.sum += k + v
	}
	_ = time.Now()               // want "time.Now feeds wall-clock time"
	_ = time.Since(time.Time{})  // want "time.Since feeds wall-clock time"
	m.sum += rand.Int()          // want "rand.Int draws from the process-global source"
}

func (m *machine) good() {
	//flea:orderinvariant summation is commutative; order cannot reach state
	for _, v := range m.table {
		m.sum += v
	}
	for i, v := range []int{1, 2, 3} { // slice range: ordered
		m.sum += i + v
	}
	m.rng = rand.New(rand.NewSource(1)) // explicit construction is accepted
	m.sum += m.rng.Int()                // methods on a seeded generator too
}
