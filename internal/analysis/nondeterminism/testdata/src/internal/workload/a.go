// Negative fixture: not a simulation package — generation-time code may
// iterate maps and read the clock freely.
package workload

import "time"

type gen struct {
	weights map[string]int
	total   int
}

func (g *gen) sum() {
	for _, w := range g.weights {
		g.total += w
	}
	_ = time.Now()
}
