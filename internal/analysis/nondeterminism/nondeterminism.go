// Package nondeterminism defines an analyzer enforcing the repository's
// byte-determinism invariant: two runs of the same program on the same
// configuration must evolve identical simulation state and emit identical
// traces and metrics. Inside the simulation packages
// (internal/{pipeline,twopass,runahead,baseline,core,mem,stats}) it reports:
//
//   - range statements over maps, whose iteration order varies run to run
//     and can leak into simulation state or emitted output. A range whose
//     body is genuinely order-independent (pure set union, minimum over all
//     entries) may be marked //flea:orderinvariant with a justification.
//   - time.Now / time.Since / time.Until: wall-clock input to a simulation.
//   - math/rand and math/rand/v2 package-level functions, which draw from
//     the shared, process-global source (rand.New(rand.NewSource(seed)) and
//     methods on an explicitly constructed *rand.Rand are accepted).
//
// Test files are exempt.
package nondeterminism

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"fleaflicker/internal/analysis/annotation"
	"fleaflicker/internal/analysis/scope"
)

// The simulation-package scope lives in the central registry
// (internal/analysis/scope), whose completeness test guarantees new
// packages cannot silently escape this analyzer.

// constructors are the math/rand package-level functions that build an
// explicitly seeded generator rather than drawing from the global source.
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Analyzer is the nondeterminism analysis.
var Analyzer = &analysis.Analyzer{
	Name:     "nondeterminism",
	Doc:      "forbid map-iteration order, wall-clock time and global randomness in simulation packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !annotation.PkgIn(pass.Pkg, scope.Simulation...) {
		return nil, nil
	}
	marks := annotation.Gather(pass.Fset, pass.Files)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.RangeStmt)(nil), (*ast.CallExpr)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if annotation.IsTestFile(pass.Fset, n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			checkRange(pass, marks, n)
		case *ast.CallExpr:
			checkCall(pass, n)
		}
	})
	return nil, nil
}

func checkRange(pass *analysis.Pass, marks *annotation.Marks, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if marks.Marked(rng, annotation.OrderInvariant) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is nondeterministic and may reach simulation state or output; use an ordered structure or mark //flea:orderinvariant with a justification")
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := annotation.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s feeds wall-clock time into a deterministic simulation; derive timing from the cycle counter", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // a method on an explicitly constructed generator
		}
		if constructors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(),
			"%s.%s draws from the process-global source; construct a seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
	}
}
