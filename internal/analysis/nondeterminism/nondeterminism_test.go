package nondeterminism_test

import (
	"testing"

	"fleaflicker/internal/analysis/analyzertest"
	"fleaflicker/internal/analysis/nondeterminism"
)

func TestNondeterminism(t *testing.T) {
	analyzertest.Run(t, "testdata", nondeterminism.Analyzer,
		"internal/twopass", "internal/workload")
}
