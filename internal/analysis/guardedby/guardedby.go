// Package guardedby defines the lockset analyzer behind the
// //flea:guardedby and //flea:atomic field annotations (see
// internal/analysis/annotation). In the concurrent packages — the serving
// layer and the shared metrics family — struct fields document their
// synchronization discipline and this analyzer checks every access against
// it:
//
//   - A field marked //flea:guardedby(mu) may only be read or written while
//     the sibling mutex field mu of the same struct value is held. Held-ness
//     is a must-hold forward dataflow over the function's CFG
//     (internal/ssaflow): mu.Lock()/RLock() adds the lock to the set on the
//     path, mu.Unlock()/RUnlock() removes it, and a branch join keeps only
//     locks held on every incoming path. A deferred Unlock runs at return
//     and so does not release the lock mid-body. Functions whose callers
//     hold the lock are marked //flea:locked(mu), which seeds the entry
//     lockset with the receiver's mutex.
//
//   - A field marked //flea:atomic may only be touched through sync/atomic:
//     either the field is one of the atomic.* value types and every access
//     is a method call on it, or the access is &f passed directly to a
//     sync/atomic function. Copying an atomic value or mixing plain loads
//     with atomic stores tears.
//
// Limits, chosen to match how the repository writes concurrent code: locks
// are named by selector chains rooted in a variable (m.mu, q.queue.mu) — a
// lock reached through a map or call result is not tracked; accesses inside
// function literals are not checked (a closure runs on another goroutine's
// schedule, where this function's lockset proves nothing); and a value
// freshly constructed in the function (composite literal or new) is still
// private, so its fields may be initialized without the lock. Test files
// are exempt.
package guardedby

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"fleaflicker/internal/analysis/annotation"
	"fleaflicker/internal/analysis/scope"
	"fleaflicker/internal/analysis/ssaflow"
)

// Analyzer is the guardedby analysis.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "check //flea:guardedby(mu) lock discipline and //flea:atomic access discipline on annotated struct fields",
	Run:  run,
}

// guardInfo is the declared discipline of one annotated field.
type guardInfo struct {
	mu     string // sibling mutex field name (guardedby)
	atomic bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !annotation.PkgIn(pass.Pkg, scope.Guarded...) {
		return nil, nil
	}
	marks := annotation.Gather(pass.Fset, pass.Files)
	guarded := collectFields(pass, marks)
	if len(guarded) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, marks, guarded, fd)
		}
	}
	return nil, nil
}

// collectFields indexes every annotated struct field in the package and
// validates guardedby arguments against the struct's own fields.
func collectFields(pass *analysis.Pass, marks *annotation.Marks) map[*types.Var]guardInfo {
	guarded := make(map[*types.Var]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]*ast.Field)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					fieldNames[name.Name] = field
				}
			}
			for _, field := range st.Fields.List {
				mu, hasMu := marks.FieldMarkedArg(field, annotation.GuardedBy)
				_, isAtomic := marks.FieldMarkedArg(field, annotation.Atomic)
				if !hasMu && !isAtomic {
					continue
				}
				if hasMu {
					sib, ok := fieldNames[mu]
					if !ok {
						pass.Reportf(field.Pos(),
							"//flea:guardedby(%s) names no field of this struct", mu)
						continue
					}
					if !annotation.IsMutex(pass.TypesInfo.TypeOf(sib.Type)) {
						pass.Reportf(field.Pos(),
							"//flea:guardedby(%s): %s is not a sync.Mutex or sync.RWMutex", mu, mu)
						continue
					}
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[v] = guardInfo{mu: mu, atomic: isAtomic}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// lockState is the must-hold lockset. Join is set intersection: a lock is
// held at a join only if held on every incoming path.
type lockState map[ssaflow.LockID]bool

func (s lockState) Clone() ssaflow.State {
	c := make(lockState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s lockState) Join(other ssaflow.State) bool {
	o := other.(lockState)
	changed := false
	for k := range s {
		if !o[k] {
			delete(s, k)
			changed = true
		}
	}
	return changed
}

func checkFunc(pass *analysis.Pass, marks *annotation.Marks, guarded map[*types.Var]guardInfo, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	g := ssaflow.New(fd.Body)

	entry := make(lockState)
	if mu, ok := marks.FuncMarkedArg(fd, annotation.Locked); ok {
		if recv := receiverVar(info, fd); recv != nil && mu != "" {
			entry[ssaflow.LockID{Root: recv, Path: "." + mu}] = true
		} else {
			pass.Reportf(fd.Pos(), "//flea:locked(%s) requires a named receiver and a mutex field name", mu)
		}
	}

	fresh := freshLocals(info, fd.Body)
	atomicOK := validAtomicUses(info, fd.Body)

	transfer := func(s ssaflow.State, n ast.Node) {
		applyLockOps(info, s.(lockState), n)
	}
	in := g.Forward(entry, transfer)
	g.Walk(in, transfer, func(s ssaflow.State, n ast.Node) {
		checkAccesses(pass, guarded, fresh, atomicOK, s.(lockState), n)
	})
}

// receiverVar returns the declared receiver variable of a method, if named.
func receiverVar(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// applyLockOps advances the lockset past one CFG node: Lock/RLock on a
// trackable mutex expression adds it, Unlock/RUnlock removes it. Deferred
// calls run at return, not here; function literals run elsewhere.
func applyLockOps(info *types.Info, s lockState, n ast.Node) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr)
			if !ok || !annotation.IsMutex(info.TypeOf(sel.X)) {
				return true
			}
			id, ok := ssaflow.LockKey(info, sel.X)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				s[id] = true
			case "Unlock", "RUnlock":
				delete(s, id)
			}
		}
		return true
	})
}

// freshLocals returns the variables assigned a composite literal or new(...)
// anywhere in the body: values still private to this function, whose fields
// may be initialized lock-free.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	fresh := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			v := ssaflow.Var(info, l)
			if v == nil {
				continue
			}
			r := ast.Unparen(as.Rhs[i])
			if u, ok := r.(*ast.UnaryExpr); ok {
				r = ast.Unparen(u.X)
			}
			switch r := r.(type) {
			case *ast.CompositeLit:
				fresh[v] = true
			case *ast.CallExpr:
				if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok &&
					info.Uses[id] == types.Universe.Lookup("new") {
					fresh[v] = true
				}
			}
		}
		return true
	})
	return fresh
}

// validAtomicUses collects the selector expressions of atomic-marked fields
// that appear in a sanctioned position: the receiver of a method call on an
// atomic.* value, or under & as a direct argument to a sync/atomic function.
func validAtomicUses(info *types.Info, body *ast.BlockStmt) map[ast.Expr]bool {
	ok := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		fn := annotation.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
			// c.v.Add(1): the receiver expression is the sanctioned use.
			if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
				ok[ast.Unparen(sel.X)] = true
			}
		} else {
			// atomic.AddInt64(&c.v, 1): address-of arguments are sanctioned.
			for _, arg := range call.Args {
				if u, isAddr := ast.Unparen(arg).(*ast.UnaryExpr); isAddr {
					ok[ast.Unparen(u.X)] = true
				}
			}
		}
		return true
	})
	return ok
}

// checkAccesses reports guarded-field accesses in node n against the
// lockset holding immediately before it.
func checkAccesses(pass *analysis.Pass, guarded map[*types.Var]guardInfo, fresh map[*types.Var]bool,
	atomicOK map[ast.Expr]bool, locks lockState, n ast.Node) {
	info := pass.TypesInfo
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		se, ok := m.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[se]
		if !ok {
			return true
		}
		fv, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		gi, ok := guarded[fv]
		if !ok {
			return true
		}
		if gi.atomic {
			if !atomicOK[se] {
				pass.Reportf(se.Pos(),
					"field %s is //flea:atomic and may only be accessed through sync/atomic operations", fv.Name())
			}
			return true
		}
		base, trackable := ssaflow.LockKey(info, se.X)
		if trackable {
			if rv, isVar := base.Root.(*types.Var); isVar && fresh[rv] {
				return true // value constructed in this function, still private
			}
		}
		need := ssaflow.LockID{Root: base.Root, Path: base.Path + "." + gi.mu}
		if !trackable || !locks[need] {
			pass.Reportf(se.Pos(),
				"field %s is //flea:guardedby(%s) but %s is not provably held here; lock it (or mark the function //flea:locked(%s) if every caller holds it)",
				fv.Name(), gi.mu, gi.mu, gi.mu)
		}
		return true
	})
}
