// Package metrics exercises guardedby's //flea:atomic discipline: fields of
// sync/atomic value types accessed only through their methods, plain fields
// driven through sync/atomic package functions, and violations of both.
package metrics

import "sync/atomic"

// SharedCounter models the concurrency-safe counter family.
type SharedCounter struct {
	v atomic.Int64 //flea:atomic
}

// Inc adds one through the atomic method: sanctioned.
func (c *SharedCounter) Inc() { c.v.Add(1) }

// Value loads through the atomic method: sanctioned.
func (c *SharedCounter) Value() int64 { return c.v.Load() }

// Clone copies the atomic value wholesale, tearing the word.
func (c *SharedCounter) Clone() atomic.Int64 {
	return c.v // want "field v is //flea:atomic and may only be accessed through sync/atomic operations"
}

// WordCounter models the pre-atomic.Int64 idiom: a plain word driven
// through sync/atomic package functions.
type WordCounter struct {
	//flea:atomic
	n int64
}

// Add goes through atomic.AddInt64 with the field's address: sanctioned.
func (c *WordCounter) Add(d int64) { atomic.AddInt64(&c.n, d) }

// Read uses a plain load where others write atomically: a data race.
func (c *WordCounter) Read() int64 {
	return c.n // want "field n is //flea:atomic and may only be accessed through sync/atomic operations"
}

// Reset stores without atomics.
func (c *WordCounter) Reset() {
	c.n = 0 // want "field n is //flea:atomic"
}
