// Package service exercises guardedby's lockset analysis: a manager with
// //flea:guardedby fields, compliant and violating access paths, direct and
// deferred unlocks, //flea:locked helpers, and fresh-construction exemption.
package service

import "sync"

// Manager models the serving layer's job manager.
type Manager struct {
	mu sync.Mutex
	// jobs is the live job table.
	//flea:guardedby(mu)
	jobs map[string]int
	//flea:guardedby(mu)
	nextID uint64

	submitMu sync.Mutex
	draining bool //flea:guardedby(submitMu)

	limit int // immutable after construction; no annotation
}

// New constructs a manager: fields of the still-private value may be
// initialized without the lock.
func New() *Manager {
	m := &Manager{jobs: make(map[string]int)}
	m.nextID = 1
	m.jobs["warm"] = 0
	return m
}

// goodDefer uses the canonical lock/defer-unlock pattern; the deferred
// unlock releases at return, not mid-body.
func (m *Manager) goodDefer() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return m.nextID
}

// goodDirect locks and unlocks inline; accesses between are covered.
func (m *Manager) goodDirect(id string) {
	m.mu.Lock()
	m.jobs[id] = 1
	m.nextID++
	m.forgetLocked()
	m.mu.Unlock()
}

// forgetLocked is called with m.mu held.
//
//flea:locked(mu)
func (m *Manager) forgetLocked() {
	for id := range m.jobs {
		if m.jobs[id] == 0 {
			delete(m.jobs, id)
			break
		}
	}
}

// goodTwoLocks: each field checks against its own mutex.
func (m *Manager) goodTwoLocks() bool {
	m.submitMu.Lock()
	d := m.draining
	m.submitMu.Unlock()
	return d
}

// badUnlocked reads a guarded field with no lock at all.
func (m *Manager) badUnlocked() int {
	return len(m.jobs) // want "field jobs is //flea:guardedby\\(mu\\) but mu is not provably held"
}

// badAfterUnlock touches the field after the direct unlock released it.
func (m *Manager) badAfterUnlock() {
	m.mu.Lock()
	m.nextID++
	m.mu.Unlock()
	m.nextID++ // want "field nextID is //flea:guardedby\\(mu\\) but mu is not provably held"
}

// badWrongLock holds the other mutex.
func (m *Manager) badWrongLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining // want "field draining is //flea:guardedby\\(submitMu\\) but submitMu is not provably held"
}

// badOneBranch locks on only one path; the join keeps only locks held on
// every incoming path.
func (m *Manager) badOneBranch(lock bool) {
	if lock {
		m.mu.Lock()
	}
	m.nextID++ // want "field nextID is //flea:guardedby\\(mu\\) but mu is not provably held"
	if lock {
		m.mu.Unlock()
	}
}

// badHelperUnmarked accesses guarded state without lock or a //flea:locked
// contract.
func (m *Manager) badHelperUnmarked() {
	delete(m.jobs, "x") // want "field jobs is //flea:guardedby\\(mu\\)"
}
