package guardedby_test

import (
	"testing"

	"fleaflicker/internal/analysis/analyzertest"
	"fleaflicker/internal/analysis/guardedby"
)

func TestGuardedby(t *testing.T) {
	analyzertest.Run(t, "testdata", guardedby.Analyzer,
		"internal/service", "internal/metrics")
}
