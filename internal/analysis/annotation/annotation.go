// Package annotation implements the //flea: directive comments and the type
// and package matching shared by the flealint analyzers (see cmd/flealint).
//
// Directives follow the Go toolchain convention of machine-readable comments
// with no space after the slashes. The vocabulary:
//
//	//flea:hotpath        this function runs in the steady-state cycle loop;
//	                      hotalloc forbids allocating constructs in its body
//	                      and traceguard forbids registry lookups in it.
//	//flea:coldpath       the next (or same-line) statement inside a hotpath
//	                      function is a warmup or failure path — slab
//	                      allocation, first-touch page creation — excluded
//	                      from hotalloc.
//	//flea:orderinvariant the next (or same-line) map range statement has an
//	                      order-independent body; nondeterminism accepts it.
//	//flea:traceonly      this function only runs when tracing is enabled;
//	                      its own emissions need no Enabled() guard, but
//	                      traceguard requires every call TO it to be guarded.
//	//flea:handoff        the next (or same-line) statement truncates or
//	                      reassigns a DynInst slice whose records are owned
//	                      elsewhere; arenadiscipline accepts it.
//
// The flealint v2 (SSA/dataflow) vocabulary:
//
//	//flea:guardedby(mu)  this struct field may only be accessed while the
//	                      sibling mutex field mu is held; guardedby checks
//	                      every access against a must-hold lockset.
//	//flea:atomic         this struct field may only be accessed through
//	                      sync/atomic operations (or is itself an atomic.*
//	                      type, whose methods are the only access path).
//	//flea:locked(mu)     this function's caller already holds the receiver's
//	                      mutex field mu; guardedby seeds the lockset with it.
//	//flea:bounded        the next (or same-line) loop terminates by
//	                      construction (drains admitted work, closed-queue
//	                      handshake); ctxloop accepts it without a ctx poll.
//	//flea:specentry      this method begins a speculative episode (run-ahead
//	                      entry); snapshotprotocol requires every call to be
//	                      guarded by !draining.
//	//flea:cowfault       this function implements the copy-on-write page
//	                      fault: the page reference it returns is private to
//	                      the caller, so snapshotalias permits stores through
//	                      it.
//
// The compiler-fact vocabulary, checked by cmd/fleagcassert against
// `go build -gcflags='-m -d=ssa/check_bce'` output rather than by a
// go/analysis pass:
//
//	//flea:inline         the function must stay inlinable ("can inline").
//	//flea:noescape       no value in the function's body may escape to the
//	                      heap (no "escapes to heap" / "moved to heap").
//	//flea:bce            every bounds check in the function must be
//	                      eliminated (no "Found IsInBounds" /
//	                      "Found IsSliceInBounds").
//
// A directive attaches to a function when it appears anywhere in the doc
// comment block, and to a statement when it appears on the statement's first
// line or the line immediately above it. A struct-field directive sits in
// the field's doc comment or as its trailing line comment. Directives taking
// an argument write it in parentheses with no spaces: //flea:guardedby(mu).
package annotation

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The directive names.
const (
	Hotpath        = "hotpath"
	Coldpath       = "coldpath"
	OrderInvariant = "orderinvariant"
	TraceOnly      = "traceonly"
	Handoff        = "handoff"
	GuardedBy      = "guardedby"
	Atomic         = "atomic"
	Locked         = "locked"
	Bounded        = "bounded"
	SpecEntry      = "specentry"
	CowFault       = "cowfault"
	Inline         = "inline"
	NoEscape       = "noescape"
	BCE            = "bce"
)

// Prefix is the comment prefix shared by all flealint directives.
const Prefix = "//flea:"

type markKey struct {
	file string
	line int
	name string
}

// Marks indexes every //flea: directive in a set of files by file and line,
// remembering the directive's parenthesized argument (if any).
type Marks struct {
	fset   *token.FileSet
	byLine map[markKey]string
}

// Gather scans the comments of files (which must have been parsed with
// parser.ParseComments) for //flea: directives.
func Gather(fset *token.FileSet, files []*ast.File) *Marks {
	m := &Marks{fset: fset, byLine: make(map[markKey]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, arg, ok := ParseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				m.byLine[markKey{pos.Filename, pos.Line, name}] = arg
			}
		}
	}
	return m
}

// ParseDirective extracts the directive name and optional parenthesized
// argument from a comment text like "//flea:hotpath (explanation)" or
// "//flea:guardedby(mu)".
func ParseDirective(text string) (name, arg string, ok bool) {
	rest, ok := strings.CutPrefix(text, Prefix)
	if !ok {
		return "", "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if open := strings.IndexByte(rest, '('); open >= 0 && strings.HasSuffix(rest, ")") {
		name, arg = rest[:open], rest[open+1:len(rest)-1]
	} else {
		name = rest
	}
	return name, arg, name != ""
}

// Marked reports whether node n carries the named directive: on n's first
// line (a trailing comment) or on the line immediately above it.
func (m *Marks) Marked(n ast.Node, name string) bool {
	_, ok := m.MarkedArg(n, name)
	return ok
}

// MarkedArg is Marked plus the directive's parenthesized argument.
func (m *Marks) MarkedArg(n ast.Node, name string) (arg string, ok bool) {
	pos := m.fset.Position(n.Pos())
	if arg, ok := m.byLine[markKey{pos.Filename, pos.Line, name}]; ok {
		return arg, true
	}
	arg, ok = m.byLine[markKey{pos.Filename, pos.Line - 1, name}]
	return arg, ok
}

// FuncMarked reports whether a function declaration carries the named
// directive, in its doc comment or directly above its first line.
func (m *Marks) FuncMarked(fd *ast.FuncDecl, name string) bool {
	_, ok := m.FuncMarkedArg(fd, name)
	return ok
}

// FuncMarkedArg is FuncMarked plus the directive's parenthesized argument.
func (m *Marks) FuncMarkedArg(fd *ast.FuncDecl, name string) (string, bool) {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if got, arg, ok := ParseDirective(c.Text); ok && got == name {
				return arg, true
			}
		}
	}
	return m.MarkedArg(fd, name)
}

// FieldMarkedArg reports whether a struct field carries the named directive
// in its doc comment, its trailing line comment, or on its own line.
func (m *Marks) FieldMarkedArg(field *ast.Field, name string) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if got, arg, ok := ParseDirective(c.Text); ok && got == name {
				return arg, true
			}
		}
	}
	return m.MarkedArg(field, name)
}

// IsTestFile reports whether the file a position belongs to is a _test.go
// file. The flealint invariants govern production code; tests allocate,
// construct events, and iterate maps freely.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// PkgIn reports whether the package path equals, or ends with, one of the
// given path suffixes. Suffix matching lets analysistest fixtures stand in
// for the real repository packages.
func PkgIn(pkg *types.Package, suffixes ...string) bool {
	path := pkg.Path()
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// IsNamed reports whether t — after stripping pointers and aliases — is a
// named type with the given name declared in a package whose base name is
// pkgBase. Matching by package base name (not full path) lets analysistest
// fixtures model the real trace/pipeline/metrics/stats packages.
func IsNamed(t types.Type, pkgBase, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgBase || strings.HasSuffix(p, "/"+pkgBase) || obj.Pkg().Name() == pkgBase
}

// IsStdNamed reports whether t — after stripping pointers and aliases — is
// the named (or interface-named) type pkgPath.name from the standard
// library, matched by exact import path.
func IsStdNamed(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsMutex reports whether t is sync.Mutex or sync.RWMutex, possibly behind a
// pointer.
func IsMutex(t types.Type) bool {
	return IsStdNamed(t, "sync", "Mutex") || IsStdNamed(t, "sync", "RWMutex")
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	return IsStdNamed(t, "context", "Context")
}

// IsAtomicType reports whether t is one of the sync/atomic value types
// (atomic.Int64, atomic.Uint32, atomic.Bool, atomic.Pointer, ...), whose
// methods are the only access path to the underlying word.
func IsAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// IsEnabledGuard reports whether cond contains a call x.Enabled() where x is
// a (possibly nil) *trace.Tracer — the canonical zero-overhead gate around
// event construction.
func IsEnabledGuard(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Enabled" {
			return true
		}
		if IsNamed(info.TypeOf(sel.X), "trace", "Tracer") {
			found = true
			return false
		}
		return true
	})
	return found
}

// CalleeFunc resolves the called function or method of a call expression, or
// nil for calls of builtins, function-typed variables and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsMethod reports whether fn is the named method on the named receiver type
// declared in a package whose base name is pkgBase.
func IsMethod(fn *types.Func, pkgBase, recv, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsNamed(sig.Recv().Type(), pkgBase, recv)
}

// IsPkgFunc reports whether fn is a package-level function (not a method)
// named name in the package with the exact import path pkgPath.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && (name == "" || fn.Name() == name)
}
