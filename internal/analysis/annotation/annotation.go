// Package annotation implements the //flea: directive comments and the type
// and package matching shared by the flealint analyzers (see cmd/flealint).
//
// Directives follow the Go toolchain convention of machine-readable comments
// with no space after the slashes. The vocabulary:
//
//	//flea:hotpath        this function runs in the steady-state cycle loop;
//	                      hotalloc forbids allocating constructs in its body
//	                      and traceguard forbids registry lookups in it.
//	//flea:coldpath       the next (or same-line) statement inside a hotpath
//	                      function is a warmup or failure path — slab
//	                      allocation, first-touch page creation — excluded
//	                      from hotalloc.
//	//flea:orderinvariant the next (or same-line) map range statement has an
//	                      order-independent body; nondeterminism accepts it.
//	//flea:traceonly      this function only runs when tracing is enabled;
//	                      its own emissions need no Enabled() guard, but
//	                      traceguard requires every call TO it to be guarded.
//	//flea:handoff        the next (or same-line) statement truncates or
//	                      reassigns a DynInst slice whose records are owned
//	                      elsewhere; arenadiscipline accepts it.
//
// A directive attaches to a function when it appears anywhere in the doc
// comment block, and to a statement when it appears on the statement's first
// line or the line immediately above it.
package annotation

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The directive names.
const (
	Hotpath        = "hotpath"
	Coldpath       = "coldpath"
	OrderInvariant = "orderinvariant"
	TraceOnly      = "traceonly"
	Handoff        = "handoff"
)

// Prefix is the comment prefix shared by all flealint directives.
const Prefix = "//flea:"

type markKey struct {
	file string
	line int
	name string
}

// Marks indexes every //flea: directive in a set of files by file and line.
type Marks struct {
	fset   *token.FileSet
	byLine map[markKey]bool
}

// Gather scans the comments of files (which must have been parsed with
// parser.ParseComments) for //flea: directives.
func Gather(fset *token.FileSet, files []*ast.File) *Marks {
	m := &Marks{fset: fset, byLine: make(map[markKey]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := directiveName(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				m.byLine[markKey{pos.Filename, pos.Line, name}] = true
			}
		}
	}
	return m
}

// directiveName extracts the directive name from a comment text like
// "//flea:hotpath (explanation)".
func directiveName(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, Prefix)
	if !ok {
		return "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// Marked reports whether node n carries the named directive: on n's first
// line (a trailing comment) or on the line immediately above it.
func (m *Marks) Marked(n ast.Node, name string) bool {
	pos := m.fset.Position(n.Pos())
	return m.byLine[markKey{pos.Filename, pos.Line, name}] ||
		m.byLine[markKey{pos.Filename, pos.Line - 1, name}]
}

// FuncMarked reports whether a function declaration carries the named
// directive, in its doc comment or directly above its first line.
func (m *Marks) FuncMarked(fd *ast.FuncDecl, name string) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if got, ok := directiveName(c.Text); ok && got == name {
				return true
			}
		}
	}
	return m.Marked(fd, name)
}

// IsTestFile reports whether the file a position belongs to is a _test.go
// file. The flealint invariants govern production code; tests allocate,
// construct events, and iterate maps freely.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// PkgIn reports whether the package path equals, or ends with, one of the
// given path suffixes. Suffix matching lets analysistest fixtures stand in
// for the real repository packages.
func PkgIn(pkg *types.Package, suffixes ...string) bool {
	path := pkg.Path()
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// IsNamed reports whether t — after stripping pointers and aliases — is a
// named type with the given name declared in a package whose base name is
// pkgBase. Matching by package base name (not full path) lets analysistest
// fixtures model the real trace/pipeline/metrics/stats packages.
func IsNamed(t types.Type, pkgBase, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgBase || strings.HasSuffix(p, "/"+pkgBase) || obj.Pkg().Name() == pkgBase
}

// IsEnabledGuard reports whether cond contains a call x.Enabled() where x is
// a (possibly nil) *trace.Tracer — the canonical zero-overhead gate around
// event construction.
func IsEnabledGuard(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Enabled" {
			return true
		}
		if IsNamed(info.TypeOf(sel.X), "trace", "Tracer") {
			found = true
			return false
		}
		return true
	})
	return found
}

// CalleeFunc resolves the called function or method of a call expression, or
// nil for calls of builtins, function-typed variables and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsMethod reports whether fn is the named method on the named receiver type
// declared in a package whose base name is pkgBase.
func IsMethod(fn *types.Func, pkgBase, recv, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsNamed(sig.Recv().Type(), pkgBase, recv)
}

// IsPkgFunc reports whether fn is a package-level function (not a method)
// named name in the package with the exact import path pkgPath.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && (name == "" || fn.Name() == name)
}
