// Package analyzertest is a self-contained harness for testing flealint
// analyzers against fixture packages, in the spirit of
// golang.org/x/tools/go/analysis/analysistest (which is not vendored — the
// toolchain ships only the unitchecker side of the framework).
//
// Fixtures live under <analyzer>/testdata/src/<importpath>/ as ordinary Go
// files annotated with want comments:
//
//	m := make(map[int]int) // want "make allocates"
//
// A want comment holds one or more quoted regular expressions; each must
// match a distinct diagnostic reported on that line, and every diagnostic
// must be matched by an expectation. Fixture packages may import one another
// by their testdata-relative import path (so a fixture named internal/twopass
// can model the real machine package), and may import the standard library.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes the fixture packages at the given testdata-relative import
// paths with analyzer a and compares the diagnostics against the fixtures'
// want comments. testdata is the path of the testdata directory, typically
// simply "testdata".
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	ld := &loader{
		fset:     token.NewFileSet(),
		srcRoot:  filepath.Join(testdata, "src"),
		packages: make(map[string]*fixturePkg),
	}
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
		diags := runAnalyzer(t, a, ld.fset, pkg)
		checkDiagnostics(t, ld.fset, pkg, diags)
	}
}

// fixturePkg is one type-checked fixture package.
type fixturePkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader loads and type-checks fixture packages on demand, resolving fixture
// imports recursively and standard-library imports through the compiler's
// export data.
type loader struct {
	fset     *token.FileSet
	srcRoot  string
	packages map[string]*fixturePkg
	std      types.Importer
}

// Import implements types.Importer: fixture packages shadow the standard
// library.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.srcRoot, path); isDir(dir) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.pkg, nil
	}
	if ld.std == nil {
		ld.std = importer.Default()
	}
	return ld.std.Import(path)
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := ld.packages[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return pkg, nil
	}
	ld.packages[path] = nil // cycle guard

	dir := filepath.Join(ld.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &fixturePkg{path: path, files: files, pkg: tpkg, info: info}
	ld.packages[path] = pkg
	return pkg, nil
}

// runAnalyzer runs a (and, first, its transitive Requires) over one fixture
// package and returns the diagnostics of a itself.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, pkg *fixturePkg) []analysis.Diagnostic {
	t.Helper()
	results := make(map[*analysis.Analyzer]interface{})
	var diags []analysis.Diagnostic

	var exec func(a *analysis.Analyzer) interface{}
	exec = func(a *analysis.Analyzer) interface{} {
		if res, ok := results[a]; ok {
			return res
		}
		resultOf := make(map[*analysis.Analyzer]interface{})
		for _, req := range a.Requires {
			resultOf[req] = exec(req)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      pkg.files,
			Pkg:        pkg.pkg,
			TypesInfo:  pkg.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, d)
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s failed on %s: %v", a.Name, pkg.path, err)
		}
		results[a] = res
		return res
	}

	// Diagnostics of required analyzers (there should be none) are dropped:
	// only the root analyzer's reports are kept.
	for _, req := range a.Requires {
		exec(req)
	}
	diags = diags[:0]
	exec(a)
	return diags
}

// expectation is one compiled want pattern.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	source  string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// gatherExpectations parses the want comments of every file in the package.
func gatherExpectations(t *testing.T, fset *token.FileSet, pkg *fixturePkg) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if rest[0] != '"' && rest[0] != '`' {
						t.Fatalf("%s: malformed want pattern %q", pos, rest)
					}
					lit, remainder, err := cutStringLit(rest)
					if err != nil {
						t.Fatalf("%s: %v", pos, err)
					}
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: unquoting %s: %v", pos, lit, err)
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: compiling %q: %v", pos, pattern, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, rx: rx, source: pattern,
					})
					rest = strings.TrimSpace(remainder)
				}
			}
		}
	}
	return wants
}

// cutStringLit splits off a leading Go string literal (quoted or backquoted).
func cutStringLit(s string) (lit, rest string, err error) {
	switch s[0] {
	case '`':
		if i := strings.IndexByte(s[1:], '`'); i >= 0 {
			return s[:i+2], s[i+2:], nil
		}
	case '"':
		for i := 1; i < len(s); i++ {
			switch s[i] {
			case '\\':
				i++
			case '"':
				return s[:i+1], s[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unterminated string literal in want pattern %q", s)
}

// checkDiagnostics matches diagnostics against expectations one-to-one.
func checkDiagnostics(t *testing.T, fset *token.FileSet, pkg *fixturePkg, diags []analysis.Diagnostic) {
	t.Helper()
	wants := gatherExpectations(t, fset, pkg)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.source)
		}
	}
}
