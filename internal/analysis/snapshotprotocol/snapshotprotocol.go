// Package snapshotprotocol defines the analyzer enforcing the machines'
// drain-barrier discipline around checkpoint capture (see the Checkpoint
// support comment in internal/twopass/snapshot.go). A core.Snapshotter
// machine quiesces before encoding: it sets its draining flag, pauses fetch
// until the in-flight window empties, and only then serializes state. Two
// rules, checked in every package that declares a ConfigureSnapshots method:
//
//  1. Snapshot encoding happens only at the drain barrier. A "snapshot
//     encoder" is any function whose body builds a checkpoint.Snapshot or
//     calls checkpoint.NewEncoder (takeSnapshot in the machines). Every
//     same-package call to an encoder must sit under an if whose condition
//     guarantees the machine is draining — a positive `draining` conjunct
//     (or the else branch of a `!draining` test). Encoding off the barrier
//     captures a machine with speculative state in flight: the snapshot can
//     never be restored to an equivalent machine.
//
//  2. Speculation is suppressed while draining. Every call to a method
//     marked //flea:specentry (run-ahead episode entry) must sit under a
//     condition guaranteeing `!draining` — a negated conjunct or the else
//     branch of a positive test. An episode begun while draining keeps
//     speculative registers and fetched groups alive past the quiesce
//     point, poisoning the snapshot taken there.
//
// Guard recognition is syntactic over the enclosing if chain: a conjunct of
// the condition must be the (possibly negated) `draining` field selector.
// Disjunctions (`a || draining`) guarantee nothing and do not count. Test
// files are exempt.
package snapshotprotocol

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"fleaflicker/internal/analysis/annotation"
	"fleaflicker/internal/analysis/scope"
)

// Analyzer is the snapshotprotocol analysis.
var Analyzer = &analysis.Analyzer{
	Name:     "snapshotprotocol",
	Doc:      "require snapshot encoding at the drain barrier and speculation entry suppressed while draining",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !annotation.PkgIn(pass.Pkg, scope.Snapshotting...) {
		return nil, nil
	}
	marks := annotation.Gather(pass.Fset, pass.Files)

	// The rules govern snapshotter machines only: packages that merely
	// serialize (checkpoint itself) or store pages (mem) build Snapshot
	// values as their ordinary business.
	isSnapshotter := false
	encoders := make(map[*types.Func]bool)
	specEntries := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if fd.Name.Name == "ConfigureSnapshots" && fd.Recv != nil {
				isSnapshotter = true
			}
			if fd.Body != nil && encodesSnapshot(pass.TypesInfo, fd.Body) {
				encoders[fn] = true
			}
			if marks.FuncMarked(fd, annotation.SpecEntry) {
				specEntries[fn] = true
			}
		}
	}
	if !isSnapshotter {
		return nil, nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || annotation.IsTestFile(pass.Fset, n.Pos()) {
			return true
		}
		call := n.(*ast.CallExpr)
		fn := annotation.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		draining, notDraining := guards(stack)
		switch {
		case encoders[fn]:
			if enclosedByEncoder(pass.TypesInfo, stack, encoders) {
				return true // helper chain inside the encoder itself
			}
			if !draining {
				pass.Reportf(call.Pos(),
					"call to snapshot encoder %s outside the drain barrier; guard it with the draining flag so the machine is quiesced when it serializes", fn.Name())
			}
		case specEntries[fn]:
			if !notDraining {
				pass.Reportf(call.Pos(),
					"call to speculative entry %s is not guarded by !draining; an episode begun while draining keeps speculative state alive past the quiesce point", fn.Name())
			}
		}
		return true
	})
	return nil, nil
}

// encodesSnapshot reports whether a function body serializes checkpoint
// state: it constructs a checkpoint.Snapshot or calls checkpoint.NewEncoder.
// Function literals count — a closure that encodes runs wherever the
// enclosing function does.
func encodesSnapshot(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if annotation.IsNamed(info.TypeOf(n), "checkpoint", "Snapshot") {
				found = true
				return false
			}
		case *ast.CallExpr:
			if fn := annotation.CalleeFunc(info, n); fn != nil &&
				fn.Name() == "NewEncoder" && fn.Pkg() != nil && fn.Pkg().Name() == "checkpoint" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// enclosedByEncoder reports whether the innermost enclosing function
// declaration on the stack is itself a snapshot encoder.
func enclosedByEncoder(info *types.Info, stack []ast.Node, encoders map[*types.Func]bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			fn, _ := info.Defs[fd.Name].(*types.Func)
			return encoders[fn]
		}
	}
	return false
}

// guards walks the enclosing if chain of the innermost stack node and
// reports which drain facts hold on every path to it: draining is true when
// some enclosing branch guarantees the flag set, notDraining when one
// guarantees it clear.
func guards(stack []ast.Node) (draining, notDraining bool) {
	for i := 0; i+1 < len(stack); i++ {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		child := stack[i+1]
		switch {
		case child == ifs.Body:
			for _, c := range conjuncts(ifs.Cond) {
				pos, neg := drainPolarity(c)
				draining = draining || pos
				notDraining = notDraining || neg
			}
		case ifs.Else != nil && child == ifs.Else:
			// The else branch negates the condition, which only yields a
			// guarantee when the condition is exactly the draining test.
			if cs := conjuncts(ifs.Cond); len(cs) == 1 {
				pos, neg := drainPolarity(cs[0])
				draining = draining || neg
				notDraining = notDraining || pos
			}
		}
	}
	return draining, notDraining
}

// conjuncts flattens a condition's top-level && chain.
func conjuncts(e ast.Expr) []ast.Expr {
	e = ast.Unparen(e)
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.LAND {
		return append(conjuncts(b.X), conjuncts(b.Y)...)
	}
	return []ast.Expr{e}
}

// drainPolarity classifies one conjunct as a positive or negated reference
// to the draining flag.
func drainPolarity(c ast.Expr) (pos, neg bool) {
	c = ast.Unparen(c)
	if u, ok := c.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		return false, isDrainingRef(u.X)
	}
	return isDrainingRef(c), false
}

// isDrainingRef reports whether e is the draining flag: the bare identifier
// or a field selector of that name.
func isDrainingRef(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "draining"
	case *ast.SelectorExpr:
		return e.Sel.Name == "draining"
	}
	return false
}
