// Package runahead models the real run-ahead machine's drain-barrier
// protocol for the snapshotprotocol fixtures: a draining flag, a snapshot
// encoder (takeSnapshot), and a //flea:specentry episode entry.
package runahead

import "internal/checkpoint"

type frontEnd struct{ pending int }

// Pending reports whether fetched groups are still in flight.
func (f *frontEnd) Pending() bool { return f.pending > 0 }

// Machine is a minimal run-ahead machine.
type Machine struct {
	draining  bool
	halted    bool
	stalled   bool
	snapEvery int64
	retired   int64
	nextSnap  int64
	fe        frontEnd
	onSnap    func(*checkpoint.Snapshot)
}

// ConfigureSnapshots implements the core.Snapshotter protocol, making this
// package subject to the drain-barrier rules.
func (m *Machine) ConfigureSnapshots(every int64, fn func(*checkpoint.Snapshot)) {
	m.snapEvery = every
	m.onSnap = fn
	m.nextSnap = every
}

// takeSnapshot captures the quiesced machine: a snapshot encoder by
// construction (checkpoint.Snapshot literal + NewEncoder).
func (m *Machine) takeSnapshot() {
	s := &checkpoint.Snapshot{Retired: m.retired}
	e := checkpoint.NewEncoder(16)
	e.I64(m.retired)
	s.AddSection("runahead.state", e.Bytes())
	if m.onSnap != nil {
		m.onSnap(s)
	}
}

// enterRunahead begins a speculative pre-execution episode.
//
//flea:specentry
func (m *Machine) enterRunahead() { m.stalled = false }

// Run is the compliant cycle loop: encode only at the drain barrier, no
// episodes while draining.
func (m *Machine) Run() {
	for !m.halted {
		if m.draining {
			if !m.fe.Pending() {
				m.takeSnapshot()
				m.draining = false
			}
		}
		if m.stalled && !m.draining {
			m.enterRunahead()
		}
		if m.snapEvery > 0 && !m.draining && m.retired >= m.nextSnap {
			m.draining = true
		}
		m.retired++
	}
}

// goodElseBranches: the else branch of an exact draining test carries the
// inverted guarantee in both directions.
func (m *Machine) goodElseBranches() {
	if !m.draining {
		m.enterRunahead()
	} else {
		m.takeSnapshot()
	}
}

// badEager encodes without quiescing first.
func (m *Machine) badEager() {
	m.takeSnapshot() // want "call to snapshot encoder takeSnapshot outside the drain barrier"
}

// badSpec enters an episode without suppressing it during a drain.
func (m *Machine) badSpec() {
	if m.stalled {
		m.enterRunahead() // want "call to speculative entry enterRunahead is not guarded"
	}
}

// badDisjunction: an || guard guarantees nothing.
func (m *Machine) badDisjunction(force bool) {
	if force || m.draining {
		m.takeSnapshot() // want "outside the drain barrier"
	}
}

// badElseConjunction: negating a conjunction guarantees neither conjunct.
func (m *Machine) badElseConjunction(quiet bool) {
	if m.draining && quiet {
		_ = quiet
	} else {
		m.enterRunahead() // want "not guarded"
	}
}
