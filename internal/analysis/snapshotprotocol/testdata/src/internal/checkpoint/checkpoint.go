// Package checkpoint models the real internal/checkpoint codec for the
// snapshotprotocol fixtures. It is itself in the analyzer's Snapshotting
// scope but declares no ConfigureSnapshots method, so building Snapshot
// values here — the package's ordinary business — reports nothing.
package checkpoint

// Snapshot is a serialized point-in-time machine state.
type Snapshot struct {
	Retired  int64
	PC       int64
	sections map[string][]byte
}

// AddSection attaches a named opaque state section.
func (s *Snapshot) AddSection(name string, b []byte) {
	if s.sections == nil {
		s.sections = make(map[string][]byte)
	}
	s.sections[name] = b
}

// Encoder serializes machine state into a byte section.
type Encoder struct{ buf []byte }

// NewEncoder returns an encoder with capacity n.
func NewEncoder(n int) *Encoder {
	return &Encoder{buf: make([]byte, 0, n)}
}

// I64 appends a fixed-width integer.
func (e *Encoder) I64(v int64) {
	for i := 0; i < 8; i++ {
		e.buf = append(e.buf, byte(v>>(8*i)))
	}
}

// Bytes returns the encoded section.
func (e *Encoder) Bytes() []byte { return e.buf }

// clone is a helper whose Snapshot literal is fine here: no snapshotter
// protocol applies to the codec package itself.
func clone(s *Snapshot) *Snapshot {
	return &Snapshot{Retired: s.Retired, PC: s.PC}
}

var _ = clone
