package snapshotprotocol_test

import (
	"testing"

	"fleaflicker/internal/analysis/analyzertest"
	"fleaflicker/internal/analysis/snapshotprotocol"
)

func TestSnapshotprotocol(t *testing.T) {
	analyzertest.Run(t, "testdata", snapshotprotocol.Analyzer,
		"internal/checkpoint", "internal/runahead")
}
