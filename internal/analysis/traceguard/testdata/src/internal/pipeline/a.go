// Positive fixture: a machine package (path suffix internal/pipeline).
package pipeline

import (
	"metrics"
	"trace"
)

type machine struct {
	tr     *trace.Tracer
	reg    *metrics.Registry
	cycles *metrics.Counter
	now    int64
}

func (m *machine) unguarded() {
	m.tr.Emit(trace.Event{Cycle: m.now}) // want "Tracer.Emit called outside an Enabled" "trace.Event constructed outside an Enabled"
}

func (m *machine) guarded() {
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{Cycle: m.now})
	}
}

// emit reports the current cycle unconditionally; its callers hold the guard.
//
//flea:traceonly callers must check Enabled first
func (m *machine) emit() {
	m.tr.Emit(trace.Event{Cycle: m.now})
}

func (m *machine) callsHelper() {
	m.emit() // want "call to //flea:traceonly helper emit outside an Enabled"
	if m.tr.Enabled() {
		m.emit()
	}
}

//flea:hotpath
func (m *machine) hot() {
	c := m.reg.Counter("cycles_total") // want "registry lookup Registry.Counter on a //flea:hotpath function"
	c.Inc()
	m.cycles.Inc() // pre-resolved handle: fine
}

// resolve runs at construction time (not annotated): lookups are fine here.
func (m *machine) resolve() {
	m.cycles = m.reg.Counter("cycles_total")
}
