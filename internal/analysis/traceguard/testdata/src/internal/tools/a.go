// Negative fixture: not a machine package — offline tooling may construct
// events unguarded.
package tools

import "trace"

type dumper struct{ tr *trace.Tracer }

func (d *dumper) dump(cycle int64) {
	d.tr.Emit(trace.Event{Cycle: cycle})
}
