// Package trace models the real internal/trace package: a nil-by-default
// Tracer whose Enabled method gates all event construction.
package trace

// Event is one trace record.
type Event struct {
	Cycle int64
	Note  string
}

// Tracer delivers events to a sink; the nil Tracer is disabled.
type Tracer struct{ sink func(Event) }

// Enabled reports whether a sink is attached.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Emit delivers one event.
func (t *Tracer) Emit(e Event) { t.sink(e) }
