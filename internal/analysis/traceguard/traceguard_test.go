package traceguard_test

import (
	"testing"

	"fleaflicker/internal/analysis/analyzertest"
	"fleaflicker/internal/analysis/traceguard"
)

func TestTraceguard(t *testing.T) {
	analyzertest.Run(t, "testdata", traceguard.Analyzer,
		"internal/pipeline", "internal/tools")
}
