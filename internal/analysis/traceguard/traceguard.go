// Package traceguard defines an analyzer enforcing the repository's
// zero-overhead-when-disabled observability invariant. In the machine-model
// packages it checks that:
//
//   - every trace.Event composite literal and every call to
//     (*trace.Tracer).Emit is dominated by an if statement whose condition
//     calls (*trace.Tracer).Enabled() — so no event is constructed, and no
//     instruction is formatted, unless a sink is attached;
//   - a helper that emits unconditionally may be annotated //flea:traceonly,
//     in which case every call TO it (in the same package) must itself be
//     guarded;
//   - inside //flea:hotpath functions, metric handles are not looked up
//     through (*metrics.Registry).Counter/Gauge/CounterValue or
//     (*stats.Collector).Counter — lookups take a mutex and a map probe and
//     belong at machine construction; the hot path bumps pre-resolved
//     handles.
//
// Test files, and the trace package itself, are exempt.
package traceguard

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"fleaflicker/internal/analysis/annotation"
	"fleaflicker/internal/analysis/scope"
)

// machinePackages are the package-path suffixes holding machine models and
// their supporting structures — everywhere a nil-by-default *trace.Tracer is
// carried.
// Analyzer is the traceguard analysis.
var Analyzer = &analysis.Analyzer{
	Name:     "traceguard",
	Doc:      "require Enabled() guards around trace emission and forbid metric lookups on hot paths",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	marks := annotation.Gather(pass.Fset, pass.Files)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	inMachine := annotation.PkgIn(pass.Pkg, scope.Traced...)

	// Names of same-package functions annotated //flea:traceonly.
	traceOnlyFuncs := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && marks.FuncMarked(fd, annotation.TraceOnly) {
				traceOnlyFuncs[fd.Name.Name] = true
			}
		}
	}

	nodeFilter := []ast.Node{(*ast.CompositeLit)(nil), (*ast.CallExpr)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if annotation.IsTestFile(pass.Fset, n.Pos()) {
			return true
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			if !inMachine {
				return true
			}
			if !annotation.IsNamed(pass.TypesInfo.TypeOf(n), "trace", "Event") {
				return true
			}
			if !guarded(pass, marks, stack) {
				pass.Reportf(n.Pos(),
					"trace.Event constructed outside an Enabled() guard; the disabled path must build no events (guard with `if tr.Enabled()` or mark the enclosing helper //flea:traceonly)")
			}
		case *ast.CallExpr:
			fn := annotation.CalleeFunc(pass.TypesInfo, n)
			if fn == nil {
				return true
			}
			if inMachine && annotation.IsMethod(fn, "trace", "Tracer", "Emit") {
				if !guarded(pass, marks, stack) {
					pass.Reportf(n.Pos(),
						"Tracer.Emit called outside an Enabled() guard; guard the emission site so the disabled path costs one nil check")
				}
				return true
			}
			if inMachine && fn.Pkg() == pass.Pkg && traceOnlyFuncs[fn.Name()] {
				if !guarded(pass, marks, stack) {
					pass.Reportf(n.Pos(),
						"call to //flea:traceonly helper %s outside an Enabled() guard", fn.Name())
				}
				return true
			}
			if hotpathEnclosing(pass, marks, stack) {
				if annotation.IsMethod(fn, "metrics", "Registry", "Counter") ||
					annotation.IsMethod(fn, "metrics", "Registry", "Gauge") ||
					annotation.IsMethod(fn, "metrics", "Registry", "CounterValue") ||
					annotation.IsMethod(fn, "stats", "Collector", "Counter") {
					pass.Reportf(n.Pos(),
						"registry lookup %s.%s on a //flea:hotpath function; resolve the handle at construction and bump it here",
						recvName(fn), fn.Name())
				}
			}
		}
		return true
	})
	return nil, nil
}

// guarded reports whether the innermost node of the stack is inside the body
// of an if statement guarded by Tracer.Enabled(), or inside a function
// annotated //flea:traceonly.
func guarded(pass *analysis.Pass, marks *annotation.Marks, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if !annotation.IsEnabledGuard(pass.TypesInfo, n.Cond) {
				continue
			}
			// Guarded only when the node hangs under the if body, not the
			// else branch or the condition itself.
			if i+1 < len(stack) && stack[i+1] == ast.Node(n.Body) {
				return true
			}
		case *ast.FuncDecl:
			if marks.FuncMarked(n, annotation.TraceOnly) {
				return true
			}
		}
	}
	return false
}

// hotpathEnclosing reports whether the stack is inside a //flea:hotpath
// function declaration.
func hotpathEnclosing(pass *analysis.Pass, marks *annotation.Marks, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return marks.FuncMarked(fd, annotation.Hotpath)
		}
	}
	return false
}

// recvName returns the name of a method's receiver type for diagnostics.
func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return "?"
}
