package core

import (
	"runtime"
	"testing"

	"fleaflicker/internal/workload"
)

// TestSteadyStateAllocationFree is the allocation-regression gate for the
// cycle loop: across a full 300.twolf run, every machine model must average
// (well) under 0.01 heap allocations per simulated instruction. Machine
// construction is excluded — only Run is measured — but everything inside
// the run counts, so the budget covers the bounded non-steady-state work
// that legitimately allocates there: demand-paged memory-image pages,
// arena slab growth, and the final stats snapshot. A per-instruction
// allocation anywhere in the loop (fetch, dispatch, coupling queue, merge,
// retire, hierarchy) blows the budget by orders of magnitude.
//
// testing.AllocsPerRun is unusable here because it invokes its body
// multiple times and a Machine can only Run once, so the test reads the
// runtime's Mallocs counter directly.
func TestSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	if testing.Short() {
		t.Skip("full-benchmark run")
	}
	bench, err := workload.ByName("300.twolf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for _, model := range Models() {
		t.Run(model.String(), func(t *testing.T) {
			m, err := build(model, cfg, bench.Program())
			if err != nil {
				t.Fatal(err)
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			r, err := m.Run()
			runtime.ReadMemStats(&after)
			if err != nil {
				t.Fatal(err)
			}
			allocs := after.Mallocs - before.Mallocs
			perInstr := float64(allocs) / float64(r.Instructions)
			t.Logf("%s: %d allocs / %d instructions = %.5f allocs/instr",
				model, allocs, r.Instructions, perInstr)
			if perInstr >= 0.01 {
				t.Errorf("%s: %.5f allocs per instruction (%d allocs over %d instructions); steady-state cycle loop must not allocate",
					model, perInstr, allocs, r.Instructions)
			}
		})
	}
}
