package core

import (
	"runtime"
	"testing"

	"fleaflicker/internal/workload"
)

// TestSteadyStateAllocationFree is the allocation-regression gate for the
// cycle loop: across a full 300.twolf run, every machine model must average
// (well) under 0.01 heap allocations per simulated instruction. Machine
// construction is excluded — only Run is measured — but everything inside
// the run counts, so the budget covers the bounded non-steady-state work
// that legitimately allocates there: demand-paged memory-image pages,
// arena slab growth, and the final stats snapshot. A per-instruction
// allocation anywhere in the loop (fetch, dispatch, coupling queue, merge,
// retire, hierarchy) blows the budget by orders of magnitude.
//
// testing.AllocsPerRun is unusable here because it invokes its body
// multiple times and a Machine can only Run once, so the test reads the
// runtime's Mallocs counter directly.
// TestResumedSteadyStateAllocationFree is the same gate for the
// checkpoint-resume path: after RestoreSnapshot (whose one-time cost —
// page-table materialization, counter priming — is excluded along with
// construction), the resumed cycle loop must stay as allocation-flat as the
// from-zero loop. The budget is per instruction actually simulated after
// the checkpoint, not per primed instruction, so fast-forwarding cannot
// hide a hot-loop allocation behind the skipped prefix.
func TestResumedSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	if testing.Short() {
		t.Skip("full-benchmark run")
	}
	bench, err := workload.ByName("300.twolf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	ref, err := ComputeReference(bench.Program(), cfg.MaxCycles)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint at the halfway point so the resumed delta is long enough
	// that fixed end-of-run costs (stats snapshot) cannot mask a per-cycle
	// allocation.
	ref, err = ComputeReference(bench.Program(), cfg.MaxCycles,
		WithCheckpoints(ref.Result.Instructions/2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Checkpoints) == 0 {
		t.Fatal("no checkpoint captured")
	}
	snap := ref.Checkpoints[0] // the halfway point; later ones sit near the halt
	for _, model := range Models() {
		t.Run(model.String(), func(t *testing.T) {
			m, err := build(model, cfg, bench.Program())
			if err != nil {
				t.Fatal(err)
			}
			sn, ok := m.(Snapshotter)
			if !ok {
				t.Fatalf("%s does not implement Snapshotter", model)
			}
			if err := sn.RestoreSnapshot(snap); err != nil {
				t.Fatal(err)
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			r, err := m.Run()
			runtime.ReadMemStats(&after)
			if err != nil {
				t.Fatal(err)
			}
			delta := r.Instructions - snap.Retired
			if delta <= 0 {
				t.Fatalf("resumed run simulated no instructions (total %d, checkpoint %d)",
					r.Instructions, snap.Retired)
			}
			allocs := after.Mallocs - before.Mallocs
			perInstr := float64(allocs) / float64(delta)
			t.Logf("%s: %d allocs / %d resumed instructions = %.5f allocs/instr",
				model, allocs, delta, perInstr)
			if perInstr >= 0.01 {
				t.Errorf("%s: %.5f allocs per resumed instruction (%d allocs over %d instructions); the resumed cycle loop must not allocate",
					model, perInstr, allocs, delta)
			}
		})
	}
}

func TestSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	if testing.Short() {
		t.Skip("full-benchmark run")
	}
	bench, err := workload.ByName("300.twolf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for _, model := range Models() {
		t.Run(model.String(), func(t *testing.T) {
			m, err := build(model, cfg, bench.Program())
			if err != nil {
				t.Fatal(err)
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			r, err := m.Run()
			runtime.ReadMemStats(&after)
			if err != nil {
				t.Fatal(err)
			}
			allocs := after.Mallocs - before.Mallocs
			perInstr := float64(allocs) / float64(r.Instructions)
			t.Logf("%s: %d allocs / %d instructions = %.5f allocs/instr",
				model, allocs, r.Instructions, perInstr)
			if perInstr >= 0.01 {
				t.Errorf("%s: %.5f allocs per instruction (%d allocs over %d instructions); steady-state cycle loop must not allocate",
					model, perInstr, allocs, r.Instructions)
			}
		})
	}
}
