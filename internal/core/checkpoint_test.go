package core

import (
	"context"
	"reflect"
	"testing"

	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/program"
)

// ckptProg is long enough (several hundred retired instructions, a mix of
// cache misses, branches and stores) that a mid-run checkpoint leaves a real
// delta on both sides.
func ckptProg(t *testing.T) *program.Program {
	t.Helper()
	return program.MustAssemble("ckpt", `
        movi r1 = 0x40000
        movi r9 = 40 ;;
loop:   ld4 r2 = [r1] ;;
        add r3 = r2, r2 ;;
        st4 [r1] = r3
        addi r1 = r1, 4096 ;;
        addi r9 = r9, -1 ;;
        cmpi.ne p1 = r9, 0 ;;
        (p1) br loop ;;
        st4 [r1] = r9 ;;
        halt ;;
`)
}

// TestReferenceCheckpoints pins the shape of functional checkpointing: the
// capture schedule, snapshot contents, and that capture does not perturb the
// reference result (COW isolation).
func TestReferenceCheckpoints(t *testing.T) {
	p := ckptProg(t)
	plain, err := ComputeReference(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ComputeReference(p, 1_000_000, WithCheckpoints(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Checkpoints) == 0 {
		t.Fatal("no checkpoints captured")
	}
	if ref.Result.Instructions != plain.Result.Instructions ||
		ref.Stores.Hash() != plain.Stores.Hash() ||
		!plain.Result.State.Mem.Equal(ref.Result.State.Mem) {
		t.Fatal("checkpointing perturbed the reference execution")
	}
	for i, s := range ref.Checkpoints {
		if s.Kind != checkpoint.KindFunctional {
			t.Fatalf("checkpoint %d kind = %v", i, s.Kind)
		}
		if want := int64(50 * (i + 1)); s.Retired != want {
			t.Fatalf("checkpoint %d at %d retired, want %d", i, s.Retired, want)
		}
		if s.Retired >= ref.Result.Instructions {
			t.Fatalf("checkpoint %d at/after the halt (%d >= %d)", i, s.Retired, ref.Result.Instructions)
		}
	}
	if nc := ref.NearestCheckpoint(); nc != ref.Checkpoints[len(ref.Checkpoints)-1] {
		t.Fatalf("NearestCheckpoint = %v", nc)
	}
}

// TestFunctionalResume checks the sweep fast-path: every model resumed from a
// functional reference checkpoint must still pass full verification (final
// registers, memory, store order, instruction count all equal a from-zero
// run's).
func TestFunctionalResume(t *testing.T) {
	p := ckptProg(t)
	ref, err := ComputeReference(p, 1_000_000, WithCheckpoints(64))
	if err != nil {
		t.Fatal(err)
	}
	snap := ref.NearestCheckpoint()
	if snap == nil {
		t.Fatal("no checkpoint")
	}
	for _, model := range Models() {
		t.Run(model.String(), func(t *testing.T) {
			var fromZeroLog, resumedLog mem.StoreLog
			full, err := Simulate(context.Background(), model, p,
				WithReference(ref), WithStoreLog(&fromZeroLog))
			if err != nil {
				t.Fatalf("from-zero: %v", err)
			}
			resumed, err := Simulate(context.Background(), model, p,
				WithReference(ref), WithStoreLog(&resumedLog), ResumeFrom(snap))
			if err != nil {
				t.Fatalf("resumed: %v", err)
			}
			if resumed.Instructions != full.Instructions {
				t.Errorf("instructions: resumed %d, from-zero %d", resumed.Instructions, full.Instructions)
			}
			if resumed.Cycles >= full.Cycles {
				t.Errorf("resumed run re-timed %d cycles, from-zero %d: no fast-forward", resumed.Cycles, full.Cycles)
			}
			if fromZeroLog.Hash() != resumedLog.Hash() || fromZeroLog.Len() != resumedLog.Len() {
				t.Errorf("store logs differ: %d/%#x vs %d/%#x",
					resumedLog.Len(), resumedLog.Hash(), fromZeroLog.Len(), fromZeroLog.Hash())
			}
		})
	}
}

// TestMachineSnapshotResume checks the exact tier: a run resumed from a
// KindMachine snapshot reproduces the producing run bit for bit — final
// stats.Run, registers, memory, and store log.
func TestMachineSnapshotResume(t *testing.T) {
	p := ckptProg(t)
	const every = 100
	for _, model := range Models() {
		t.Run(model.String(), func(t *testing.T) {
			var snaps []*checkpoint.Snapshot
			var fullLog mem.StoreLog
			full, err := Simulate(context.Background(), model, p,
				WithVerify(), WithStoreLog(&fullLog),
				WithSnapshots(every, func(s *checkpoint.Snapshot) { snaps = append(snaps, s) }))
			if err != nil {
				t.Fatalf("producer: %v", err)
			}
			if len(snaps) == 0 {
				t.Fatal("no machine snapshots taken")
			}
			for i, s := range snaps {
				if s.Kind != checkpoint.KindMachine || s.Model != model.String() {
					t.Fatalf("snapshot %d: kind %v model %q", i, s.Kind, s.Model)
				}
			}
			// Round-trip the snapshot through serialization: resuming from
			// decoded bytes must be as good as resuming from the live object.
			blob, err := snaps[len(snaps)-1].MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			snap := new(checkpoint.Snapshot)
			if err := snap.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			var resumedLog mem.StoreLog
			resumed, err := Simulate(context.Background(), model, p,
				WithVerify(), WithStoreLog(&resumedLog),
				ResumeFrom(snap),
				WithSnapshots(every, nil))
			if err != nil {
				t.Fatalf("resumed: %v", err)
			}
			if !reflect.DeepEqual(full, resumed) {
				t.Errorf("stats diverge:\nfull    %+v\nresumed %+v", full, resumed)
			}
			if fullLog.Hash() != resumedLog.Hash() || fullLog.Len() != resumedLog.Len() {
				t.Errorf("store logs differ")
			}
		})
	}
}

// TestCOWIsolation: writes to a resumed image must not leak into the
// snapshot (or into sibling resumes) — the copy-on-write invariant the whole
// fan-out depends on.
func TestCOWIsolation(t *testing.T) {
	p := ckptProg(t)
	ref, err := ComputeReference(p, 1_000_000, WithCheckpoints(64))
	if err != nil {
		t.Fatal(err)
	}
	snap := ref.NearestCheckpoint()
	before := make(map[uint32]byte)
	snap.Mem.EachPage(func(base uint32, data *[mem.PageBytes]byte) {
		before[base] = data[0]
	})
	imgA, imgB := snap.Mem.Image(), snap.Mem.Image()
	var observed int
	imgA.Observe(func(addr uint32, size int, v uint64) { observed++ })
	snap.Mem.EachPage(func(base uint32, data *[mem.PageBytes]byte) {
		imgA.Write(base, 1, uint64(data[0])+1) // fault every shared page
	})
	if observed == 0 {
		t.Fatal("Observe hook did not fire on a materialized image")
	}
	snap.Mem.EachPage(func(base uint32, data *[mem.PageBytes]byte) {
		if data[0] != before[base] {
			t.Fatalf("write leaked into snapshot page %#x", base)
		}
		if got := imgB.Byte(base); got != before[base] {
			t.Fatalf("write leaked into sibling image at %#x", base)
		}
	})
}
