package core

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fleaflicker/internal/mem"
	"fleaflicker/internal/metrics"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
	"fleaflicker/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// TestGoldenJSONLTrace pins the exact event stream of a tiny deterministic
// kernel on the two-pass machine. The simulators are deterministic, so any
// diff means either an intentional machine/trace change (rerun with
// -update) or a regression in event emission.
func TestGoldenJSONLTrace(t *testing.T) {
	p := program.MustAssemble("goldentrace", `
        movi r1 = 0x40000 ;;
        ld4 r2 = [r1] ;;          // cold miss
        add r3 = r2, r2 ;;        // deferred consumer
        cmpi.eq p1 = r2, 999 ;;   // deferred predicate (false)
        (p1) br skip ;;           // B-DET mispredict: flush
        movi r3 = 1 ;;
skip:   add r4 = r3, r3 ;;
        st4 [r1, 8] = r4 ;;
        halt ;;
`)
	var buf bytes.Buffer
	if _, err := Simulate(context.Background(), TwoPass, p,
		WithVerify(), WithTrace(trace.NewJSONLSink(&buf))); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden_trace.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		gotLines := bytes.Split(buf.Bytes(), []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w []byte
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if !bytes.Equal(g, w) {
				t.Fatalf("trace diverges at line %d:\n got: %s\nwant: %s\n(%d vs %d lines; run with -update if intentional)",
					i+1, g, w, len(gotLines), len(wantLines))
			}
		}
		t.Fatalf("trace differs (got %d bytes, want %d)", buf.Len(), len(want))
	}
}

// TestMetricsDeriveStatsOnSuite runs a real suite benchmark on every model
// twice — once through the legacy entry point, once with an external
// registry — and checks that the registry's counters agree with the legacy
// Run aggregates field by field. This is the "aggregates and traces can
// never disagree" guarantee: both views come from the same counters.
func TestMetricsDeriveStatsOnSuite(t *testing.T) {
	b, err := workload.ByName("300.twolf")
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range Models() {
		legacy, err := Run(model, DefaultConfig(), b.Program())
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		r, err := Simulate(context.Background(), model, b.Program(), WithMetrics(reg))
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles != legacy.Cycles || r.Instructions != legacy.Instructions {
			t.Errorf("%v: run with metrics differs from legacy: %d/%d vs %d/%d cycles/insts",
				model, r.Cycles, r.Instructions, legacy.Cycles, legacy.Instructions)
		}
		check := func(name string, want int64) {
			t.Helper()
			if v, _ := reg.CounterValue(name); v != want {
				t.Errorf("%v: registry %s = %d, legacy Run = %d", model, name, v, want)
			}
		}
		check(stats.MetricCycles, legacy.Cycles)
		check(stats.MetricInstructions, legacy.Instructions)
		for c := stats.CycleClass(0); c < stats.NumCycleClasses; c++ {
			check(stats.ClassMetricName(c), legacy.ByClass[c])
		}
		check(stats.MetricMispredictsA, legacy.MispredictsA)
		check(stats.MetricMispredictsB, legacy.MispredictsB)
		check(stats.MetricConflictFlushes, legacy.ConflictFlushes)
		check(stats.MetricStoresTotal, legacy.StoresTotal)
		check(stats.MetricStoresDeferred, legacy.StoresDeferred)
		check(stats.MetricDeferred, legacy.Deferred)
		check(stats.MetricPreExecuted, legacy.PreExecuted)
		check(stats.MetricRegrouped, legacy.Regrouped)
		check(stats.MetricCQOccupancySum, legacy.CQOccupancySum)
		for lvl := mem.Level(0); lvl < mem.NumLevels; lvl++ {
			for p := stats.Pipe(0); p < stats.NumPipes; p++ {
				check(stats.AccessMetricName(lvl, p, false), legacy.Access[lvl][p])
				check(stats.AccessMetricName(lvl, p, true), legacy.AccessCycles[lvl][p])
			}
		}
	}
}
