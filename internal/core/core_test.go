package core

import (
	"strings"
	"testing"

	"fleaflicker/internal/program"
)

const tiny = `
        movi r1 = 0
        movi r2 = 1
        movi r3 = 50 ;;
loop:   add r1 = r1, r2
        cmp.lt p1 = r2, r3 ;;
        addi r2 = r2, 1
        (p1) br loop ;;
        movi r4 = 0x1000 ;;
        st4 [r4] = r1 ;;
        halt ;;
`

func TestModelsAndStrings(t *testing.T) {
	want := map[Model]string{Baseline: "base", TwoPass: "2P", TwoPassRegroup: "2Pre", Runahead: "runahead"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Model(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
	if len(Models()) != 4 {
		t.Errorf("Models() = %v", Models())
	}
	if Model(99).String() != "?" {
		t.Errorf("unknown model string")
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig()
	if c.IssueWidth != 8 || c.FUs[0] != 5 || c.FUs[1] != 3 || c.FUs[2] != 3 || c.FUs[3] != 3 {
		t.Errorf("functional units wrong: %v", c.FUs)
	}
	if c.CQSize != 64 || c.ALATCapacity != 0 || c.FeedbackLatency != 0 {
		t.Errorf("two-pass defaults wrong")
	}
	if c.Mem.MemLatency != 145 || c.Bpred.PHTEntries != 1024 {
		t.Errorf("memory/predictor defaults wrong")
	}
}

func TestRunAllModels(t *testing.T) {
	p := program.MustAssemble("tiny", tiny)
	for _, m := range Models() {
		r, err := Run(m, DefaultConfig(), p)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if r.Cycles == 0 || r.Instructions == 0 {
			t.Errorf("%v: empty run", m)
		}
	}
}

func TestRunVerifiedCatchesNothingOnCorrectMachines(t *testing.T) {
	p := program.MustAssemble("tiny", tiny)
	for _, m := range Models() {
		if _, err := RunVerified(m, DefaultConfig(), p); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestUnknownModelRejected(t *testing.T) {
	p := program.MustAssemble("tiny", tiny)
	if _, err := Run(Model(99), DefaultConfig(), p); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("unknown model should error, got %v", err)
	}
}

func TestConfigConversions(t *testing.T) {
	c := DefaultConfig()
	c.CQSize = 32
	c.FeedbackLatency = 7
	c.DeferThrottle = 5
	c.StallOnAnticipable = true
	tp := c.TwoPassConfig(true)
	if !tp.Regroup || tp.CQSize != 32 || tp.FeedbackLatency != 7 ||
		tp.DeferThrottle != 5 || !tp.StallOnAnticipable {
		t.Errorf("TwoPassConfig lost fields: %+v", tp)
	}
	bl := c.BaselineConfig()
	if bl.IssueWidth != 8 || bl.Mem.MemLatency != 145 {
		t.Errorf("BaselineConfig lost fields")
	}
	c.RunaheadExitPenalty = 3
	ra := c.RunaheadConfig()
	if ra.ExitPenalty != 3 || ra.MinStallCycles != c.RunaheadMinStall {
		t.Errorf("RunaheadConfig lost fields")
	}
}
