package core

import (
	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/mem"
)

// Snapshotter is implemented by every timed machine model: it can capture
// resumable checkpoints at drain barriers and start from a previously
// captured one. Simulate drives it through ResumeFrom and WithSnapshots;
// the interface is exported so sweep drivers can type-assert machines they
// build directly.
type Snapshotter interface {
	// ConfigureSnapshots arranges for a snapshot to be taken at the first
	// quiesce point after every further `every` retired instructions, passing
	// each to fn. Must be called before Run (and after RestoreSnapshot, so
	// the schedule continues from the restored position).
	ConfigureSnapshots(every int64, fn func(*checkpoint.Snapshot))
	// RestoreSnapshot reinstates a snapshot as the machine's starting state.
	// A KindFunctional snapshot fast-forwards the architectural state only
	// (timing structures stay cold); a KindMachine snapshot must come from
	// the same model and configuration and reproduces the producing run
	// exactly. Must be called before Run.
	RestoreSnapshot(snap *checkpoint.Snapshot) error
}

// RefOption configures one ComputeReference call.
type RefOption func(*refOptions)

type refOptions struct {
	every int64
}

// WithCheckpoints makes ComputeReference capture a functional snapshot every
// `every` retired instructions (after instructions every, 2*every, ... —
// never at the halt itself). The snapshots land in Reference.Checkpoints and
// fast-forward any model via ResumeFrom: a resumed timed run re-times only
// the remaining delta while producing the same architectural results as a
// from-zero run.
func WithCheckpoints(every int64) RefOption {
	return func(o *refOptions) { o.every = every }
}

// ResumeFrom starts the simulation from snap instead of the program entry.
// Verification against a reference still checks the complete program: the
// machine's store log is seeded with the snapshot's prefix and the retired-
// instruction counters are primed, so final state, store order and instruction
// counts all match a from-zero run.
func ResumeFrom(snap *checkpoint.Snapshot) Option {
	return func(o *options) { o.resume = snap }
}

// WithSnapshots makes the machine capture a resumable KindMachine snapshot at
// the first pipeline-drain barrier after every `every` retired instructions,
// passing each to fn. Draining perturbs timing slightly (fetch pauses while
// in-flight instructions retire), so runs with snapshots enabled are
// cycle-comparable only to other runs with the same `every`.
func WithSnapshots(every int64, fn func(*checkpoint.Snapshot)) Option {
	return func(o *options) { o.snapEvery = every; o.onSnap = fn }
}

// stampStoreLog copies the machine's committed-store log state into a
// snapshot, so a run resumed from it can continue (and finish) the log
// exactly as the producer would have.
func stampStoreLog(s *checkpoint.Snapshot, log *mem.StoreLog) {
	if log == nil {
		return
	}
	s.StoreN = log.Len()
	s.StoreHash = log.Hash()
	s.StorePrefix = append([]mem.StoreCommit(nil), log.Prefix()...)
}
