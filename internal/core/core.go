// Package core is the library façade: one configuration type covering every
// machine model (baseline in-order EPIC, two-pass "flea-flicker" with and
// without regrouping, and the run-ahead comparator) behind a single
// Simulate entry point. Functional options attach verification against the
// functional reference executor, a cycle-level trace sink, and an external
// metrics registry; the context cancels the machine's cycle loop.
package core

import (
	"context"
	"fmt"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/baseline"
	"fleaflicker/internal/bpred"
	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/metrics"
	"fleaflicker/internal/pipeline"
	"fleaflicker/internal/program"
	"fleaflicker/internal/runahead"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
	"fleaflicker/internal/twopass"
)

// Model selects a machine organization.
type Model int

// The machine models of the evaluation.
const (
	// Baseline is the in-order EPIC machine ("base" in Figure 6).
	Baseline Model = iota
	// TwoPass is flea-flicker two-pass pipelining ("2P").
	TwoPass
	// TwoPassRegroup is two-pass with B-pipe instruction regrouping
	// ("2Pre").
	TwoPassRegroup
	// Runahead is the idealized checkpoint run-ahead comparator of §2.
	Runahead
)

func (m Model) String() string {
	switch m {
	case Baseline:
		return "base"
	case TwoPass:
		return "2P"
	case TwoPassRegroup:
		return "2Pre"
	case Runahead:
		return "runahead"
	}
	return "?"
}

// Models lists every model, in Figure 6 presentation order plus the
// comparator.
func Models() []Model { return []Model{Baseline, TwoPass, TwoPassRegroup, Runahead} }

// Config is the unified machine configuration; DefaultConfig matches
// Table 1 of the paper.
type Config struct {
	Front      pipeline.Config
	Mem        mem.Config
	Bpred      bpred.Config
	IssueWidth int
	FUs        [isa.NumFUClasses]int

	// Two-pass parameters (ignored by other models).
	CQSize             int
	ALATCapacity       int // 0 = perfect (Table 1)
	FeedbackLatency    int // B→A update latency; negative = disabled
	DeferThrottle      int
	StallOnAnticipable bool
	// SBSize bounds the speculative store buffer (0 = unbounded).
	SBSize int
	// ConflictPredictor enables the §3.4-inspired store-wait predictor.
	ConflictPredictor bool
	// CheckpointRepair selects §3.6's checkpointed A-file recovery for
	// B-DET mispredictions instead of copy-back repair.
	CheckpointRepair bool

	// Run-ahead parameters (ignored by other models).
	RunaheadExitPenalty int
	RunaheadMinStall    int

	MaxCycles int64

	// Arena, when non-nil, supplies the machine's DynInst storage so
	// repeated simulations (the differential fuzzer's inner loop) reuse
	// records instead of growing fresh slabs per program. Excluded from
	// serialization: it is an execution resource, not a machine parameter,
	// so configs that differ only here are the same cache key.
	Arena *pipeline.Arena `json:"-"`
}

// DefaultConfig returns the Table 1 machine.
func DefaultConfig() Config {
	return Config{
		Front:            pipeline.DefaultConfig(),
		Mem:              mem.DefaultConfig(),
		Bpred:            bpred.DefaultConfig(),
		IssueWidth:       8,
		FUs:              [isa.NumFUClasses]int{isa.ClassALU: 5, isa.ClassMEM: 3, isa.ClassFP: 3, isa.ClassBR: 3},
		CQSize:           64,
		ALATCapacity:     0,
		FeedbackLatency:  0,
		RunaheadMinStall: 8,
		MaxCycles:        2_000_000_000,
	}
}

// BaselineConfig converts to the baseline machine's configuration.
func (c Config) BaselineConfig() baseline.Config {
	return baseline.Config{
		Front: c.Front, Mem: c.Mem, Bpred: c.Bpred,
		IssueWidth: c.IssueWidth, FUs: c.FUs, MaxCycles: c.MaxCycles,
		Arena: c.Arena,
	}
}

// TwoPassConfig converts to the two-pass machine's configuration.
func (c Config) TwoPassConfig(regroup bool) twopass.Config {
	return twopass.Config{
		Front: c.Front, Mem: c.Mem, Bpred: c.Bpred,
		IssueWidth: c.IssueWidth, FUs: c.FUs,
		CQSize: c.CQSize, ALATCapacity: c.ALATCapacity,
		FeedbackLatency: c.FeedbackLatency, Regroup: regroup,
		DeferThrottle: c.DeferThrottle, StallOnAnticipable: c.StallOnAnticipable,
		SBSize: c.SBSize, ConflictPredictor: c.ConflictPredictor,
		CheckpointRepair: c.CheckpointRepair,
		MaxCycles:        c.MaxCycles,
		Arena:            c.Arena,
	}
}

// RunaheadConfig converts to the run-ahead machine's configuration.
func (c Config) RunaheadConfig() runahead.Config {
	return runahead.Config{
		Front: c.Front, Mem: c.Mem, Bpred: c.Bpred,
		IssueWidth: c.IssueWidth, FUs: c.FUs,
		ExitPenalty: c.RunaheadExitPenalty, MinStallCycles: c.RunaheadMinStall,
		MaxCycles: c.MaxCycles,
		Arena:     c.Arena,
	}
}

// machine is what every model implementation provides.
type machine interface {
	Run() (*stats.Run, error)
	State() *arch.State
	Attach(ctx context.Context, reg *metrics.Registry, tr *trace.Tracer)
}

func build(model Model, cfg Config, prog *program.Program) (machine, error) {
	switch model {
	case Baseline:
		return baseline.New(cfg.BaselineConfig(), prog)
	case TwoPass:
		return twopass.New(cfg.TwoPassConfig(false), prog)
	case TwoPassRegroup:
		return twopass.New(cfg.TwoPassConfig(true), prog)
	case Runahead:
		return runahead.New(cfg.RunaheadConfig(), prog)
	}
	return nil, fmt.Errorf("core: unknown model %d", model)
}

// Run simulates prog to completion on the selected machine model.
//
// Deprecated: use Simulate(ctx, model, prog, WithConfig(cfg)).
func Run(model Model, cfg Config, prog *program.Program) (*stats.Run, error) {
	return Simulate(context.Background(), model, prog, WithConfig(cfg))
}

// RunVerified simulates prog and additionally checks that the machine's
// final architectural state matches the functional reference executor —
// the repository's golden correctness invariant.
//
// Deprecated: use Simulate(ctx, model, prog, WithConfig(cfg), WithVerify()).
func RunVerified(model Model, cfg Config, prog *program.Program) (*stats.Run, error) {
	return Simulate(context.Background(), model, prog, WithConfig(cfg), WithVerify())
}
