package core

import (
	"context"
	"encoding/json"
	"testing"

	"fleaflicker/internal/workload"
)

// TestSimulateDeterministic pins that two back-to-back simulations of the
// same program on the same model produce byte-identical measurements. The
// machines share no state across runs (each builds a fresh memory image,
// predictor, and arena), so any divergence means nondeterminism leaked into
// the timing model — map-iteration order, pointer-keyed structures, or
// recycled-record state surviving a reset.
func TestSimulateDeterministic(t *testing.T) {
	bench, err := workload.ByName("129.compress")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, model := range Models() {
		t.Run(model.String(), func(t *testing.T) {
			snap := func() []byte {
				r, err := Simulate(ctx, model, bench.Program())
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(r)
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			first, second := snap(), snap()
			if string(first) != string(second) {
				t.Errorf("two identical runs diverged:\n run 1: %s\n run 2: %s", first, second)
			}
		})
	}
}
