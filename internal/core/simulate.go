package core

import (
	"context"
	"fmt"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/metrics"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
)

// Option configures one Simulate call. Options are applied in order, so a
// later option overrides an earlier one.
type Option func(*options)

type options struct {
	cfg     Config
	verify  bool
	sink    trace.Sink
	reg     *metrics.Registry
	closeMu bool // close the sink when Simulate returns
}

// WithConfig replaces the default (Table 1) machine configuration.
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = cfg }
}

// WithVerify checks the machine's final architectural state against the
// functional reference executor — the repository's golden correctness
// invariant — and fails the simulation on any divergence.
func WithVerify() Option {
	return func(o *options) { o.verify = true }
}

// WithTrace streams cycle-level events into sink for the duration of the
// run. Simulate closes the sink before returning, so file-backed sinks
// (JSONL, Chrome) are complete when it does. A nil sink disables tracing
// (the default): no events are constructed at all, so the disabled path
// costs one nil check per emission site.
func WithTrace(sink trace.Sink) Option {
	return func(o *options) { o.sink = sink; o.closeMu = true }
}

// WithMetrics makes the machine record its counters into reg instead of a
// private registry. The returned stats.Run is derived from the same
// counters (stats.Collector.Snapshot), so the registry and the aggregate
// report cannot disagree. A registry belongs to one running machine at a
// time; do not share one across concurrent Simulate calls.
func WithMetrics(reg *metrics.Registry) Option {
	return func(o *options) { o.reg = reg }
}

// Simulate runs prog to completion on the selected machine model. It is the
// primary entry point: ctx cancels the machine's cycle loop (checked every
// 4096 cycles), and options attach configuration, verification, tracing,
// and metrics. With no options it is equivalent to Run with DefaultConfig.
func Simulate(ctx context.Context, model Model, prog *program.Program, opts ...Option) (*stats.Run, error) {
	o := options{cfg: DefaultConfig()}
	for _, opt := range opts {
		opt(&o)
	}

	var ref *arch.Result
	if o.verify {
		r, err := arch.Run(prog, o.cfg.MaxCycles)
		if err != nil {
			return nil, fmt.Errorf("core: reference execution: %w", err)
		}
		ref = r
	}

	m, err := build(model, o.cfg, prog)
	if err != nil {
		return nil, err
	}
	var tr *trace.Tracer
	if o.sink != nil {
		tr = trace.New(o.sink)
	}
	m.Attach(ctx, o.reg, tr)

	r, runErr := m.Run()
	if o.closeMu && o.sink != nil {
		if cerr := o.sink.Close(); cerr != nil && runErr == nil {
			runErr = fmt.Errorf("core: closing trace sink: %w", cerr)
		}
	}
	if runErr != nil {
		return nil, runErr
	}

	if o.verify {
		if !m.State().Equal(ref.State) {
			return nil, fmt.Errorf("core: %v machine diverged from the reference executor on %q: %s",
				model, prog.Name, m.State().Diff(ref.State))
		}
		if r.Instructions != ref.Instructions {
			return nil, fmt.Errorf("core: %v retired %d instructions, reference retired %d",
				model, r.Instructions, ref.Instructions)
		}
	}
	return r, nil
}
