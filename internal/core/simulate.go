package core

import (
	"context"
	"fmt"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/metrics"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
)

// Option configures one Simulate call. Options are applied in order, so a
// later option overrides an earlier one.
type Option func(*options)

type options struct {
	cfg      Config
	verify   bool
	ref      *Reference
	storeLog *mem.StoreLog
	sink     trace.Sink
	reg      *metrics.Registry
	closeMu  bool // close the sink when Simulate returns
}

// WithConfig replaces the default (Table 1) machine configuration.
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = cfg }
}

// WithVerify checks the machine's final architectural state against the
// functional reference executor — the repository's golden correctness
// invariant — and fails the simulation with a *DivergenceError on any
// divergence.
func WithVerify() Option {
	return func(o *options) { o.verify = true }
}

// Reference is a functional reference execution against which a simulation
// can be verified: the executor's result plus (optionally) its committed-
// store log. Compute it once with ComputeReference and share it across the
// many Simulate calls of a differential sweep instead of paying a fresh
// reference execution per call.
type Reference struct {
	Result *arch.Result
	// Stores is the reference committed-store sequence; nil when not
	// captured (store order then goes unchecked).
	Stores *mem.StoreLog
}

// ComputeReference runs the functional reference executor over prog,
// capturing the committed-store log alongside the final state.
func ComputeReference(prog *program.Program, maxSteps int64) (*Reference, error) {
	e := arch.NewExecutor(prog)
	var log mem.StoreLog
	e.State().Mem.Observe(log.Record)
	var steps int64
	for !e.Halted() {
		if steps >= maxSteps {
			return nil, fmt.Errorf("core: reference: program %q exceeded %d instructions without halting",
				prog.Name, maxSteps)
		}
		if err := e.Step(); err != nil {
			return nil, fmt.Errorf("core: reference execution: %w", err)
		}
		steps++
	}
	e.State().Mem.Observe(nil)
	return &Reference{Result: e.Result(), Stores: &log}, nil
}

// WithReference verifies the simulation against a precomputed reference
// (implying WithVerify) instead of re-running the functional executor.
func WithReference(ref *Reference) Option {
	return func(o *options) { o.verify = true; o.ref = ref }
}

// WithStoreLog records the machine's committed-store sequence into log
// (which is Reset first). Combined with a Reference whose store log was
// captured, verification additionally checks committed-store order.
func WithStoreLog(log *mem.StoreLog) Option {
	return func(o *options) { o.storeLog = log }
}

// WithTrace streams cycle-level events into sink for the duration of the
// run. Simulate closes the sink before returning, so file-backed sinks
// (JSONL, Chrome) are complete when it does. A nil sink disables tracing
// (the default): no events are constructed at all, so the disabled path
// costs one nil check per emission site.
func WithTrace(sink trace.Sink) Option {
	return func(o *options) { o.sink = sink; o.closeMu = true }
}

// WithMetrics makes the machine record its counters into reg instead of a
// private registry. The returned stats.Run is derived from the same
// counters (stats.Collector.Snapshot), so the registry and the aggregate
// report cannot disagree. A registry belongs to one running machine at a
// time; do not share one across concurrent Simulate calls.
func WithMetrics(reg *metrics.Registry) Option {
	return func(o *options) { o.reg = reg }
}

// Simulate runs prog to completion on the selected machine model. It is the
// primary entry point: ctx cancels the machine's cycle loop (checked every
// 4096 cycles), and options attach configuration, verification, tracing,
// and metrics. With no options it is equivalent to Run with DefaultConfig.
func Simulate(ctx context.Context, model Model, prog *program.Program, opts ...Option) (*stats.Run, error) {
	o := options{cfg: DefaultConfig()}
	for _, opt := range opts {
		opt(&o)
	}

	ref := o.ref
	if o.verify && ref == nil {
		r, err := ComputeReference(prog, o.cfg.MaxCycles)
		if err != nil {
			return nil, err
		}
		ref = r
	}

	m, err := build(model, o.cfg, prog)
	if err != nil {
		return nil, err
	}
	var tr *trace.Tracer
	if o.sink != nil {
		tr = trace.New(o.sink)
	}
	if o.storeLog != nil {
		o.storeLog.Reset()
		m.State().Mem.Observe(o.storeLog.Record)
	}
	m.Attach(ctx, o.reg, tr)

	r, runErr := m.Run()
	if o.closeMu && o.sink != nil {
		if cerr := o.sink.Close(); cerr != nil && runErr == nil {
			runErr = fmt.Errorf("core: closing trace sink: %w", cerr)
		}
	}
	if runErr != nil {
		return nil, runErr
	}

	if o.verify {
		if e := diverged(model, prog.Name, m.State(), r.Instructions, ref.Result, o.storeLog, ref.Stores); e != nil {
			return nil, e
		}
	}
	return r, nil
}
