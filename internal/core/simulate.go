package core

import (
	"context"
	"fmt"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/metrics"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
)

// Option configures one Simulate call. Options are applied in order, so a
// later option overrides an earlier one.
type Option func(*options)

type options struct {
	cfg       Config
	verify    bool
	ref       *Reference
	storeLog  *mem.StoreLog
	sink      trace.Sink
	reg       *metrics.Registry
	closeMu   bool // close the sink when Simulate returns
	resume    *checkpoint.Snapshot
	snapEvery int64
	onSnap    func(*checkpoint.Snapshot)
}

// WithConfig replaces the default (Table 1) machine configuration.
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = cfg }
}

// WithVerify checks the machine's final architectural state against the
// functional reference executor — the repository's golden correctness
// invariant — and fails the simulation with a *DivergenceError on any
// divergence.
func WithVerify() Option {
	return func(o *options) { o.verify = true }
}

// Reference is a functional reference execution against which a simulation
// can be verified: the executor's result plus (optionally) its committed-
// store log. Compute it once with ComputeReference and share it across the
// many Simulate calls of a differential sweep instead of paying a fresh
// reference execution per call.
type Reference struct {
	Result *arch.Result
	// Stores is the reference committed-store sequence; nil when not
	// captured (store order then goes unchecked).
	Stores *mem.StoreLog
	// Checkpoints holds the functional snapshots captured during the
	// reference execution (WithCheckpoints), oldest first. Any timed model
	// can fast-forward from one via ResumeFrom.
	Checkpoints []*checkpoint.Snapshot
}

// NearestCheckpoint returns the latest checkpoint, nil when none were
// captured. (All checkpoints precede the halt, so the latest one minimizes
// the delta every resumed run must re-simulate.)
func (r *Reference) NearestCheckpoint() *checkpoint.Snapshot {
	if len(r.Checkpoints) == 0 {
		return nil
	}
	return r.Checkpoints[len(r.Checkpoints)-1]
}

// ComputeReference runs the functional reference executor over prog,
// capturing the committed-store log alongside the final state.
func ComputeReference(prog *program.Program, maxSteps int64, opts ...RefOption) (*Reference, error) {
	var ro refOptions
	for _, opt := range opts {
		opt(&ro)
	}
	e := arch.NewExecutor(prog)
	ref := &Reference{}
	var log mem.StoreLog
	e.State().Mem.Observe(log.Record)
	var steps int64
	for !e.Halted() {
		if steps >= maxSteps {
			return nil, fmt.Errorf("core: reference: program %q exceeded %d instructions without halting",
				prog.Name, maxSteps)
		}
		if err := e.Step(); err != nil {
			return nil, fmt.Errorf("core: reference execution: %w", err)
		}
		steps++
		if ro.every > 0 && steps%ro.every == 0 && !e.Halted() {
			ref.Checkpoints = append(ref.Checkpoints, functionalSnapshot(prog, e, steps, &log))
		}
	}
	e.State().Mem.Observe(nil)
	ref.Result = e.Result()
	ref.Stores = &log
	return ref, nil
}

// functionalSnapshot captures the reference executor's architectural state
// after `steps` retired instructions as a KindFunctional checkpoint.
func functionalSnapshot(prog *program.Program, e *arch.Executor, steps int64, log *mem.StoreLog) *checkpoint.Snapshot {
	res := e.Result()
	s := &checkpoint.Snapshot{
		Kind:     checkpoint.KindFunctional,
		Program:  prog.Name,
		Retired:  steps,
		PC:       e.PC(),
		Regs:     e.State().Regs,
		Mem:      e.State().Mem.Snapshot(),
		ByClass:  res.ByClass,
		Loads:    res.Loads,
		Stores:   res.Stores,
		Branches: res.Branches,
	}
	stampStoreLog(s, log)
	// A resumed machine primes its retired-instruction counter so the final
	// count equals prefix + delta, matching the reference.
	s.SetCounters([]checkpoint.Counter{{Name: stats.MetricInstructions, Value: steps}})
	return s
}

// WithReference verifies the simulation against a precomputed reference
// (implying WithVerify) instead of re-running the functional executor.
func WithReference(ref *Reference) Option {
	return func(o *options) { o.verify = true; o.ref = ref }
}

// WithStoreLog records the machine's committed-store sequence into log
// (which is Reset first). Combined with a Reference whose store log was
// captured, verification additionally checks committed-store order.
func WithStoreLog(log *mem.StoreLog) Option {
	return func(o *options) { o.storeLog = log }
}

// WithTrace streams cycle-level events into sink for the duration of the
// run. Simulate closes the sink before returning, so file-backed sinks
// (JSONL, Chrome) are complete when it does. A nil sink disables tracing
// (the default): no events are constructed at all, so the disabled path
// costs one nil check per emission site.
func WithTrace(sink trace.Sink) Option {
	return func(o *options) { o.sink = sink; o.closeMu = true }
}

// WithMetrics makes the machine record its counters into reg instead of a
// private registry. The returned stats.Run is derived from the same
// counters (stats.Collector.Snapshot), so the registry and the aggregate
// report cannot disagree. A registry belongs to one running machine at a
// time; do not share one across concurrent Simulate calls.
func WithMetrics(reg *metrics.Registry) Option {
	return func(o *options) { o.reg = reg }
}

// Simulate runs prog to completion on the selected machine model. It is the
// primary entry point: ctx cancels the machine's cycle loop (checked every
// 4096 cycles), and options attach configuration, verification, tracing,
// and metrics. With no options it is equivalent to Run with DefaultConfig.
func Simulate(ctx context.Context, model Model, prog *program.Program, opts ...Option) (*stats.Run, error) {
	o := options{cfg: DefaultConfig()}
	for _, opt := range opts {
		opt(&o)
	}

	ref := o.ref
	if o.verify && ref == nil {
		r, err := ComputeReference(prog, o.cfg.MaxCycles)
		if err != nil {
			return nil, err
		}
		ref = r
	}

	m, err := build(model, o.cfg, prog)
	if err != nil {
		return nil, err
	}
	if o.resume != nil || o.snapEvery > 0 {
		sn, ok := m.(Snapshotter)
		if !ok {
			return nil, fmt.Errorf("core: model %s does not support checkpoints", model)
		}
		if o.resume != nil {
			if err := sn.RestoreSnapshot(o.resume); err != nil {
				return nil, fmt.Errorf("core: restoring snapshot: %w", err)
			}
		}
		if o.snapEvery > 0 {
			// Stamp the machine's store-log position into every snapshot so
			// a run resumed from it finishes the log identically.
			userFn := o.onSnap
			sn.ConfigureSnapshots(o.snapEvery, func(s *checkpoint.Snapshot) {
				stampStoreLog(s, o.storeLog)
				if userFn != nil {
					userFn(s)
				}
			})
		}
	}
	var tr *trace.Tracer
	if o.sink != nil {
		tr = trace.New(o.sink)
	}
	if o.storeLog != nil {
		o.storeLog.Reset()
		if o.resume != nil {
			o.storeLog.Seed(o.resume.StorePrefix, o.resume.StoreN, o.resume.StoreHash)
		}
		m.State().Mem.Observe(o.storeLog.Record)
	}
	m.Attach(ctx, o.reg, tr)

	r, runErr := m.Run()
	if o.closeMu && o.sink != nil {
		if cerr := o.sink.Close(); cerr != nil && runErr == nil {
			runErr = fmt.Errorf("core: closing trace sink: %w", cerr)
		}
	}
	if runErr != nil {
		return nil, runErr
	}

	if o.verify {
		if e := diverged(model, prog.Name, m.State(), r.Instructions, ref.Result, o.storeLog, ref.Stores); e != nil {
			return nil, e
		}
	}
	return r, nil
}
