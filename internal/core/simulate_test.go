package core

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"fleaflicker/internal/metrics"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
)

func simProg(t *testing.T) *program.Program {
	t.Helper()
	return program.MustAssemble("sim", `
        movi r1 = 0x40000
        movi r9 = 10 ;;
loop:   ld4 r2 = [r1] ;;
        add r3 = r2, r2 ;;
        addi r1 = r1, 4096 ;;
        addi r9 = r9, -1 ;;
        cmpi.ne p1 = r9, 0 ;;
        (p1) br loop ;;
        st4 [r1] = r3 ;;
        halt ;;
`)
}

// Simulate with no options must agree exactly with the legacy Run entry
// point (which is now a wrapper over it, but the equality also pins that
// attaching a background context costs no cycles).
func TestSimulateMatchesRun(t *testing.T) {
	p := simProg(t)
	for _, model := range Models() {
		want, err := Run(model, DefaultConfig(), p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Simulate(context.Background(), model, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != want.Cycles || got.Instructions != want.Instructions {
			t.Errorf("%v: Simulate %d cycles/%d insts, Run %d/%d",
				model, got.Cycles, got.Instructions, want.Cycles, want.Instructions)
		}
	}
}

func TestSimulateVerify(t *testing.T) {
	if _, err := Simulate(context.Background(), TwoPass, simProg(t), WithVerify()); err != nil {
		t.Fatal(err)
	}
}

// A pre-cancelled context must abort every model's cycle loop.
func TestSimulateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, model := range Models() {
		_, err := Simulate(ctx, model, simProg(t))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", model, err)
		}
	}
}

// WithTrace must deliver the mechanism events and close the sink.
func TestSimulateWithTrace(t *testing.T) {
	ring := trace.NewRingSink(1 << 16)
	if _, err := Simulate(context.Background(), TwoPass, simProg(t), WithTrace(ring)); err != nil {
		t.Fatal(err)
	}
	var counts [trace.NumEventTypes]int
	for _, e := range ring.Events() {
		counts[e.Type]++
	}
	for _, want := range []trace.EventType{trace.EvDefer, trace.EvPreExec, trace.EvCQEnqueue,
		trace.EvCQDequeue, trace.EvMerge, trace.EvReplay, trace.EvBranchResolve} {
		if counts[want] == 0 {
			t.Errorf("no %v events in a two-pass run", want)
		}
	}
}

// The Chrome sink driven through Simulate must produce one valid JSON
// document containing defer, merge, and flush events (the acceptance
// criterion for about:tracing interop).
func TestSimulateChromeTrace(t *testing.T) {
	p := program.MustAssemble("chrome", `
        movi r1 = 0x40000 ;;
        ld4 r2 = [r1] ;;          // cold miss
        add r3 = r2, r2 ;;        // deferred consumer
        cmpi.eq p1 = r2, 999 ;;   // deferred predicate (false: memory reads 0)
        (p1) br skip ;;           // falls through at B-DET vs taken guess: flush
        movi r3 = 1 ;;            // wrong path
skip:   add r4 = r3, r3 ;;
        halt ;;
`)
	var buf strings.Builder
	if _, err := Simulate(context.Background(), TwoPass, p, WithTrace(trace.NewChromeSink(&buf))); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		seen[e.Name] = true
	}
	for _, want := range []string{"defer", "merge", "flush"} {
		if !seen[want] {
			t.Errorf("chrome trace lacks %q events; saw %v", want, seen)
		}
	}
}

// WithMetrics exposes the same counters the returned Run is derived from.
func TestSimulateWithMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	r, err := Simulate(context.Background(), TwoPass, simProg(t), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.CounterValue(stats.MetricCycles); !ok || v != r.Cycles {
		t.Errorf("registry cycles = %d (%v), Run.Cycles = %d", v, ok, r.Cycles)
	}
	if v, ok := reg.CounterValue(stats.MetricInstructions); !ok || v != r.Instructions {
		t.Errorf("registry instructions = %d (%v), Run.Instructions = %d", v, ok, r.Instructions)
	}
}
