package core

import (
	"fmt"
	"strings"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/mem"
)

// maxDivergenceDiffs bounds how many register/memory differences one
// DivergenceError enumerates; beyond it the report just notes truncation.
const maxDivergenceDiffs = 8

// StoreDivergence describes a committed-store-order mismatch between a
// machine and the reference executor.
type StoreDivergence struct {
	// Index is the position of the first differing commit, -1 when the
	// difference lies beyond the logs' retained prefixes.
	Index int64
	// Got/Want are the commits at Index; ok-flags are false when the
	// position fell outside the retained prefix or past the shorter log.
	Got, Want     mem.StoreCommit
	GotOK, WantOK bool
	// GotLen/WantLen are the total commit counts of the two runs.
	GotLen, WantLen int64
}

func (s *StoreDivergence) String() string {
	if s.Index < 0 {
		return fmt.Sprintf("store order differs past the retained prefix (%d vs %d commits)", s.GotLen, s.WantLen)
	}
	render := func(c mem.StoreCommit, ok bool) string {
		if !ok {
			return "<no commit>"
		}
		return fmt.Sprintf("st%d [%#x] = %#x", c.Size, c.Addr, c.Val)
	}
	return fmt.Sprintf("store commit %d: %s vs %s (%d vs %d commits)",
		s.Index, render(s.Got, s.GotOK), render(s.Want, s.WantOK), s.GotLen, s.WantLen)
}

// DivergenceError reports that a machine's final architectural state
// diverged from the functional reference executor: the repository's golden
// correctness invariant was violated. It enumerates which registers and
// memory bytes differ (machine value first, reference second) so tests, the
// differential fuzzer and the -repro tools can report and minimize failures
// without parsing error strings.
type DivergenceError struct {
	Model   Model
	Program string
	// Regs and Mem list up to maxDivergenceDiffs differences each.
	Regs []arch.RegDiff
	Mem  []arch.MemDiff
	// GotInsts/WantInsts differ when the machine retired a different
	// dynamic instruction count than the reference (zero/zero when the
	// counts agree or were not compared).
	GotInsts, WantInsts int64
	// Stores is set when the committed-store order diverged.
	Stores *StoreDivergence
}

func (e *DivergenceError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %v machine diverged from the reference executor on %q:", e.Model, e.Program)
	for _, d := range e.Regs {
		fmt.Fprintf(&b, " register %s: %#x vs %#x;", d.Reg, d.Got, d.Want)
	}
	if len(e.Regs) == maxDivergenceDiffs {
		b.WriteString(" ...;")
	}
	for _, d := range e.Mem {
		fmt.Fprintf(&b, " memory at %#x: %#x vs %#x;", d.Addr, d.Got, d.Want)
	}
	if len(e.Mem) == maxDivergenceDiffs {
		b.WriteString(" ...;")
	}
	if e.GotInsts != e.WantInsts {
		fmt.Fprintf(&b, " retired %d instructions, reference retired %d;", e.GotInsts, e.WantInsts)
	}
	if e.Stores != nil {
		fmt.Fprintf(&b, " %s;", e.Stores)
	}
	return strings.TrimSuffix(b.String(), ";")
}

// diverged builds the DivergenceError for a finished run, or nil when the
// machine matched the reference. storeLog/refLog may both be nil (store
// order not captured).
func diverged(model Model, progName string, st *arch.State, insts int64, ref *arch.Result, storeLog, refLog *mem.StoreLog) *DivergenceError {
	regs, bytes := arch.CompareStates(st, ref.State, maxDivergenceDiffs)
	e := &DivergenceError{Model: model, Program: progName, Regs: regs, Mem: bytes}
	if insts != ref.Instructions {
		e.GotInsts, e.WantInsts = insts, ref.Instructions
	}
	if storeLog != nil && refLog != nil {
		if idx, bad := storeLog.FirstDivergence(refLog); bad {
			sd := &StoreDivergence{Index: idx, GotLen: storeLog.Len(), WantLen: refLog.Len()}
			sd.Got, sd.GotOK = storeLog.At(idx)
			sd.Want, sd.WantOK = refLog.At(idx)
			e.Stores = sd
		}
	}
	if len(e.Regs) == 0 && len(e.Mem) == 0 && e.GotInsts == e.WantInsts && e.Stores == nil {
		return nil
	}
	return e
}
