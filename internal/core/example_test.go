package core_test

import (
	"fmt"
	"log"

	"fleaflicker/internal/core"
	"fleaflicker/internal/program"
)

// Example runs a three-instruction program on the two-pass machine and
// verifies it against the functional reference executor.
func Example() {
	p, err := program.Assemble("hello", `
        movi r1 = 20
        movi r2 = 22 ;;
        add r3 = r1, r2 ;;
        movi r4 = 0x1000 ;;
        st4 [r4] = r3 ;;
        halt ;;
`)
	if err != nil {
		log.Fatal(err)
	}
	r, err := core.RunVerified(core.TwoPass, core.DefaultConfig(), p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retired %d instructions on the %s machine\n", r.Instructions, r.Model)
	// Output: retired 6 instructions on the 2P machine
}
