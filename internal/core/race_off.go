//go:build !race

package core

// raceEnabled reports whether the race detector instruments this build.
// Allocation accounting differs under -race, so the allocation-regression
// test skips itself there.
const raceEnabled = false
