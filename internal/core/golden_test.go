package core

import (
	"testing"

	"fleaflicker/internal/program"
)

// TestGoldenCycleCounts pins exact cycle counts for a miss-per-iteration
// microkernel on every machine model. The simulators are deterministic, so
// these are regression canaries for the *timing* model (the architectural
// comparison catches value bugs, but not cycle-accounting drift). An
// intentional timing-model change must update these numbers — and
// EXPERIMENTS.md along with them.
func TestGoldenCycleCounts(t *testing.T) {
	p := program.MustAssemble("golden", `
        movi r1 = 0x40000
        movi r9 = 50 ;;
loop:   ld4 r2 = [r1] ;;
        add r3 = r2, r2 ;;
        addi r1 = r1, 4096 ;;
        addi r9 = r9, -1 ;;
        cmpi.ne p1 = r9, 0 ;;
        (p1) br loop ;;
        halt ;;
`)
	want := map[Model]int64{
		Baseline:       7660, // ~50 serialized 145-cycle misses
		TwoPass:        918,  // consumers deferred, misses overlapped
		TwoPassRegroup: 913,
		Runahead:       1238, // prefetches under the stalls, pays refills
	}
	for model, cycles := range want {
		r, err := RunVerified(model, DefaultConfig(), p)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if r.Cycles != cycles {
			t.Errorf("%v: %d cycles, golden value is %d (timing model changed?)",
				model, r.Cycles, cycles)
		}
		if r.Instructions != 303 {
			t.Errorf("%v: retired %d instructions, want 303", model, r.Instructions)
		}
	}
}
