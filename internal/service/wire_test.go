package service

import (
	"encoding/json"
	"strings"
	"testing"
)

// expandOne is a helper returning the single unit a spec expands to.
func expandOne(t *testing.T, spec JobSpec) UnitSpec {
	t.Helper()
	units, err := ExpandUnits(spec)
	if err != nil {
		t.Fatalf("ExpandUnits: %v", err)
	}
	if len(units) != 1 {
		t.Fatalf("expanded to %d units, want 1", len(units))
	}
	return units[0]
}

// TestWireRoundTripPreservesKey is the soundness condition of cache
// federation: a unit shipped to another node as JSON and resolved there must
// land on the same content-addressed key, or coordinator and backend would
// silently disagree about what is cached.
func TestWireRoundTripPreservesKey(t *testing.T) {
	specs := map[string]JobSpec{
		"run":    {Model: "2P", Bench: "300.twolf", Seed: 9},
		"verify": {Model: "base", Bench: "181.mcf", Verify: true},
		"sweep": {Kind: "sweep", Model: "2P", Bench: "300.twolf",
			Sweep: &SweepAxes{CQSizes: []int{48}}},
		"fuzz": {Kind: "fuzz", Seed: 11,
			Fuzz: &FuzzSpec{Programs: 100, ChunkSize: 100, Smoke: true, Shrink: true}},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			u := expandOne(t, spec)
			raw, err := json.Marshal(u.Wire())
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var w WireUnit
			if err := json.Unmarshal(raw, &w); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			got, err := w.Resolve()
			if err != nil {
				t.Fatalf("resolve: %v", err)
			}
			if got.Key() != u.Key() {
				t.Fatalf("key changed across the wire:\n  sent     %s\n  resolved %s",
					u.Key(), got.Key())
			}
		})
	}
}

// TestWireResolveRejectsInvalid checks a backend refuses malformed units
// instead of simulating garbage.
func TestWireResolveRejectsInvalid(t *testing.T) {
	validUnit := expandOne(t, JobSpec{Model: "2P", Bench: "300.twolf"})
	valid := validUnit.Wire()

	cases := map[string]struct {
		mutate func(*WireUnit)
		want   string
	}{
		"unknown model": {func(w *WireUnit) { w.Model = "8-wide-dream" }, "model"},
		"unknown bench": {func(w *WireUnit) { w.Bench = "999.vapor" }, "bench"},
		"zero config": {func(w *WireUnit) {
			w.Config.MaxCycles = 0
		}, "max_cycles"},
		"empty fuzz": {func(w *WireUnit) {
			w.Fuzz = &FuzzUnit{Programs: 0}
		}, "fuzz"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			w := valid
			tc.mutate(&w)
			if _, err := w.Resolve(); err == nil {
				t.Fatalf("Resolve accepted %s", name)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
