package service

import (
	"context"
	"sync"

	"fleaflicker/internal/metrics"
)

// task is one queued simulation: the resolved unit, the cache entry it
// completes, and the context of the job that claimed it (per-job timeout
// and cancellation propagate into the machine's cycle loop through it).
type task struct {
	spec  UnitSpec
	entry *entry
	ctx   context.Context
}

// taskQueue is the bounded admission queue between submissions and the
// worker pool. Admission is all-or-nothing per submission, which is what
// gives the service its backpressure contract: a job either gets every
// fresh unit admitted or is rejected whole with retry-after.
type taskQueue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	//flea:guardedby(mu)
	items []*task
	//flea:guardedby(mu)
	closed   bool
	capacity int
	depth    *metrics.SharedGauge
}

func newTaskQueue(capacity int, depth *metrics.SharedGauge) *taskQueue {
	q := &taskQueue{capacity: capacity, depth: depth}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// tryPutAll admits every task or none: it fails when the queue lacks room
// for the whole batch or intake is closed (draining).
func (q *taskQueue) tryPutAll(ts []*task) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items)+len(ts) > q.capacity {
		return false
	}
	q.items = append(q.items, ts...)
	q.depth.Set(int64(len(q.items)))
	q.nonEmpty.Broadcast()
	return true
}

// get blocks until a task is available or the queue is closed AND drained;
// the second return is false only in the latter case, so closing the queue
// lets workers finish everything already admitted before they exit.
func (q *taskQueue) get() (*task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	t := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	if len(q.items) == 0 {
		// Reset so the drained backing array is reclaimed instead of
		// creeping forward forever.
		q.items = nil
	}
	q.depth.Set(int64(len(q.items)))
	return t, true
}

// close stops intake; queued tasks still drain through get.
func (q *taskQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.nonEmpty.Broadcast()
}

// depthNow returns the current number of queued tasks.
func (q *taskQueue) depthNow() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
