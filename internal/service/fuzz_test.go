package service

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
)

func fuzzSpec(programs, chunk int) JobSpec {
	return JobSpec{Kind: "fuzz", Seed: 100, Fuzz: &FuzzSpec{Programs: programs, ChunkSize: chunk, Smoke: true, Shrink: true}}
}

func TestFuzzSpecExpandsIntoChunks(t *testing.T) {
	spec := fuzzSpec(120, 50)
	units, err := spec.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 3 {
		t.Fatalf("got %d units, want 3", len(units))
	}
	wantBase := []int64{100, 150, 200}
	wantN := []int{50, 50, 20}
	for i, u := range units {
		if u.Fuzz == nil {
			t.Fatalf("unit %d has no fuzz payload", i)
		}
		if u.Fuzz.SeedBase != wantBase[i] || u.Fuzz.Programs != wantN[i] {
			t.Fatalf("unit %d covers [%d,+%d), want [%d,+%d)",
				i, u.Fuzz.SeedBase, u.Fuzz.Programs, wantBase[i], wantN[i])
		}
		if !u.Fuzz.Smoke || !u.Fuzz.Shrink {
			t.Fatalf("unit %d lost smoke/shrink flags", i)
		}
	}
	// Distinct chunks must have distinct cache keys; identical resubmission
	// must reproduce them exactly.
	if units[0].Key() == units[1].Key() {
		t.Fatal("different seed chunks share a cache key")
	}
	spec2 := fuzzSpec(120, 50)
	again, err := spec2.expand()
	if err != nil {
		t.Fatal(err)
	}
	if units[0].Key() != again[0].Key() {
		t.Fatal("identical fuzz chunks produced different cache keys")
	}
}

func TestFuzzSpecValidation(t *testing.T) {
	cases := []JobSpec{
		{Kind: "fuzz"},                    // no fuzz payload
		{Kind: "fuzz", Fuzz: &FuzzSpec{}}, // zero programs
		{Kind: "fuzz", Model: "2P", Fuzz: &FuzzSpec{Programs: 10}},                 // model on fuzz
		{Kind: "fuzz", Bench: "art", Fuzz: &FuzzSpec{Programs: 10}},                // bench on fuzz
		{Kind: "run", Model: "2P", Bench: "179.art", Fuzz: &FuzzSpec{Programs: 1}}, // fuzz on run
	}
	for i, spec := range cases {
		if _, err := spec.expand(); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("case %d: got %v, want ErrInvalidSpec", i, err)
		}
	}
}

func TestFuzzJobRunsChunksAndCaches(t *testing.T) {
	var executions atomic.Int64
	m := New(Config{Workers: 2}, WithFuzzRunner(func(ctx context.Context, u UnitSpec) (*FuzzReport, error) {
		executions.Add(1)
		return &FuzzReport{Programs: u.Fuzz.Programs, Cells: 4, CellRuns: int64(4 * u.Fuzz.Programs)}, nil
	}))
	defer m.Drain(context.Background())

	j, err := m.Submit(fuzzSpec(120, 50))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != JobDone {
		t.Fatalf("job state %v: %v", j.State(), j.Err())
	}
	if got := executions.Load(); got != 3 {
		t.Fatalf("%d chunk executions, want 3", got)
	}
	st := j.Status()
	total := 0
	for _, u := range st.Units {
		if u.Result == nil || u.Result.Fuzz == nil {
			t.Fatalf("unit %s has no fuzz report", u.Key)
		}
		if u.Result.Run != nil {
			t.Fatalf("fuzz unit %s carries a simulation result", u.Key)
		}
		total += u.Result.Fuzz.Programs
	}
	if total != 120 {
		t.Fatalf("chunk reports cover %d programs, want 120", total)
	}

	// An identical resubmission must be served entirely from cache.
	j2, err := m.Submit(fuzzSpec(120, 50))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if got := executions.Load(); got != 3 {
		t.Fatalf("resubmission re-executed: %d executions, want 3", got)
	}
	if j2.CachedUnits() != 3 {
		t.Fatalf("resubmission cached %d/3 units", j2.CachedUnits())
	}
}

// TestFuzzJobEndToEnd runs one real (tiny, smoke-lattice) campaign chunk
// through the production fuzz runner and expects a clean verdict.
func TestFuzzJobEndToEnd(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Drain(context.Background())

	j, err := m.Submit(JobSpec{Kind: "fuzz", Seed: 7, Fuzz: &FuzzSpec{Programs: 3, Smoke: true, Shrink: true}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != JobDone {
		t.Fatalf("job state %v: %v", j.State(), j.Err())
	}
	st := j.Status()
	if len(st.Units) != 1 {
		t.Fatalf("got %d units, want 1", len(st.Units))
	}
	rep := st.Units[0].Result.Fuzz
	if rep == nil {
		t.Fatal("no fuzz report")
	}
	if rep.Programs != 3 || rep.Cells != 4 || rep.CellRuns != 12 {
		t.Fatalf("unexpected report accounting: %+v", rep)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("production machines diverged: %+v", rep.Findings)
	}
	// The report must survive the wire format.
	b, err := json.Marshal(st.Units[0].Result)
	if err != nil {
		t.Fatal(err)
	}
	var back UnitResult
	if err := json.Unmarshal(b, &back); err != nil || back.Fuzz == nil || back.Fuzz.Programs != 3 {
		t.Fatalf("fuzz report did not round-trip JSON: %v %+v", err, back.Fuzz)
	}
}
