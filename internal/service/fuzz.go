package service

import (
	"context"
	"fmt"

	"fleaflicker/internal/diffsim"
	"fleaflicker/internal/progen"
)

// This file adds the "fuzz" job kind: a differential co-simulation campaign
// (internal/diffsim) submitted as a service job. The campaign's seed range
// is split into fixed-size chunks, one unit per chunk, so a large campaign
// spreads across the worker pool, streams progress like any sweep, and —
// because each chunk's verdict is a pure function of (seed range, shape) —
// caches and coalesces exactly like simulation units do.

// FuzzSpec is the wire format of a fuzz submission (kind "fuzz"). The
// generator seed range starts at JobSpec.Seed; program i uses Seed+i.
type FuzzSpec struct {
	// Programs is the total number of programs the campaign checks.
	Programs int `json:"programs"`
	// ChunkSize is the number of programs per unit (default 50).
	ChunkSize int `json:"chunk_size,omitempty"`
	// Smoke selects the four-cell smoke lattice and small programs instead
	// of the full 14-cell default lattice.
	Smoke bool `json:"smoke,omitempty"`
	// Shrink minimizes diverging programs into reproducers (reported as
	// .flea text in the unit result).
	Shrink bool `json:"shrink,omitempty"`
	// Checkpoint fans each program's lattice cells out from the reference
	// execution's last functional checkpoint instead of from cycle zero
	// (diffsim.AutoCheckpoint interval): same architectural verdicts on the
	// replayed suffix, a fraction of the simulation work.
	Checkpoint bool `json:"checkpoint,omitempty"`
}

// defaultFuzzChunk is the FuzzSpec.ChunkSize default: small enough that a
// chunk completes in seconds, large enough that per-unit overhead (checker
// construction, reporting) stays negligible.
const defaultFuzzChunk = 50

// FuzzUnit is one chunk of a fuzz campaign: the resolved per-unit
// parameters, part of the unit's cache key.
type FuzzUnit struct {
	SeedBase   int64 `json:"seed_base"`
	Programs   int   `json:"programs"`
	Smoke      bool  `json:"smoke,omitempty"`
	Shrink     bool  `json:"shrink,omitempty"`
	Checkpoint bool  `json:"checkpoint,omitempty"`
}

// FuzzFinding is one diverging program in a unit's report.
type FuzzFinding struct {
	Seed int64 `json:"seed"`
	// Cells names the lattice cells that diverged from the reference.
	Cells []string `json:"cells"`
	// Divergences holds one structured message per diverging cell.
	Divergences []string `json:"divergences"`
	// MinimizedInsts is the instruction count of the shrunk reproducer
	// (0 when shrinking was off).
	MinimizedInsts int `json:"minimized_insts,omitempty"`
	// Repro is the reproducer serialized in .flea corpus format, replayable
	// with `fleasim -repro` — the minimized program when shrinking was on,
	// otherwise the original.
	Repro string `json:"repro"`
}

// FuzzReport is the result payload of one fuzz unit.
type FuzzReport struct {
	Programs        int           `json:"programs"`
	Skipped         int           `json:"skipped"`
	Cells           int           `json:"cells"`
	CellRuns        int64         `json:"cell_runs"`
	RefInstructions int64         `json:"ref_instructions"`
	Findings        []FuzzFinding `json:"findings,omitempty"`
}

// FuzzRunner executes one fuzz chunk. The default runs a diffsim campaign;
// tests substitute stubs.
type FuzzRunner func(ctx context.Context, u UnitSpec) (*FuzzReport, error)

// WithFuzzRunner replaces the fuzz-campaign runner (test seam).
func WithFuzzRunner(r FuzzRunner) Option {
	return func(m *Manager) { m.fuzzRunner = r }
}

// expandFuzz resolves a kind-"fuzz" spec into one unit per seed chunk.
func (s *JobSpec) expandFuzz() ([]UnitSpec, error) {
	if s.Model != "" || s.Bench != "" || len(s.Models) > 0 || len(s.Benches) > 0 || s.Sweep != nil {
		return nil, fmt.Errorf("%w: kind fuzz takes no model, bench or sweep axes", ErrInvalidSpec)
	}
	if s.Fuzz == nil || s.Fuzz.Programs <= 0 {
		return nil, fmt.Errorf("%w: kind fuzz requires fuzz.programs > 0", ErrInvalidSpec)
	}
	chunk := s.Fuzz.ChunkSize
	if chunk <= 0 {
		chunk = defaultFuzzChunk
	}
	var units []UnitSpec
	for off := 0; off < s.Fuzz.Programs; off += chunk {
		n := s.Fuzz.Programs - off
		if n > chunk {
			n = chunk
		}
		base := s.Seed + int64(off)
		units = append(units, UnitSpec{
			ModelName: "fuzz",
			Bench:     fmt.Sprintf("seeds[%d,%d)", base, base+int64(n)),
			Seed:      s.Seed,
			Fuzz: &FuzzUnit{
				SeedBase:   base,
				Programs:   n,
				Smoke:      s.Fuzz.Smoke,
				Shrink:     s.Fuzz.Shrink,
				Checkpoint: s.Fuzz.Checkpoint,
			},
		})
	}
	return units, nil
}

// fuzzGen returns the generator shape for a fuzz unit. Smoke trims dynamic
// instruction counts so a CI chunk finishes in seconds.
func fuzzGen(smoke bool) progen.Config {
	gen := progen.DefaultConfig()
	if smoke {
		gen.OuterTrips = 2
		gen.BodyActions = 12
		gen.ArrayBytes = 4 << 10
		gen.ChainNodes = 8
	}
	return gen
}

// defaultFuzzRunner runs one chunk's differential campaign.
func defaultFuzzRunner(ctx context.Context, u UnitSpec) (*FuzzReport, error) {
	fz := u.Fuzz
	cells := diffsim.DefaultLattice()
	if fz.Smoke {
		cells = diffsim.SmokeLattice()
	}
	var ckpt int64
	if fz.Checkpoint {
		ckpt = diffsim.AutoCheckpoint
	}
	st, err := diffsim.RunCampaign(ctx, diffsim.CampaignConfig{
		SeedBase:        fz.SeedBase,
		Programs:        fz.Programs,
		Gen:             fuzzGen(fz.Smoke),
		Cells:           cells,
		Shrink:          fz.Shrink,
		CheckpointEvery: ckpt,
	})
	if err != nil {
		return nil, err
	}
	rep := &FuzzReport{
		Programs:        st.Programs,
		Skipped:         st.Skipped,
		Cells:           len(cells),
		CellRuns:        st.CellRuns,
		RefInstructions: st.RefInstructions,
	}
	for _, f := range st.Findings {
		ff := FuzzFinding{Seed: f.Seed}
		for _, d := range f.Divergences {
			ff.Cells = append(ff.Cells, d.Cell.String())
			ff.Divergences = append(ff.Divergences, d.String())
		}
		repro := f.Program
		if f.Minimized != nil {
			repro = f.Minimized
			ff.MinimizedInsts = len(f.Minimized.Insts)
		}
		ff.Repro = string(repro.MarshalFlea())
		rep.Findings = append(rep.Findings, ff)
	}
	return rep, nil
}
