package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fleaflicker/internal/stats"
)

// runSpec is the canonical single-run submission used across the tests.
func runSpec() JobSpec {
	return JobSpec{Model: "2P", Bench: "300.twolf"}
}

// stubRun fabricates a deterministic result for a unit.
func stubRun(u UnitSpec) *stats.Run {
	return &stats.Run{
		Benchmark:    u.Bench,
		Model:        u.ModelName,
		Cycles:       1000 + int64(u.Config.CQSize),
		Instructions: 500,
	}
}

// countingRunner returns a Runner that fabricates results and counts how
// many executions actually ran.
func countingRunner(executions *atomic.Int64) Runner {
	return func(ctx context.Context, u UnitSpec) (*stats.Run, error) {
		executions.Add(1)
		return stubRun(u), nil
	}
}

// waitDone fails the test if the job does not reach a terminal state soon.
func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish; state=%v", j.ID(), j.State())
	}
}

// TestDuplicateSubmissionsCoalesce is the ISSUE's first mandated semantics:
// N identical concurrent submissions trigger exactly one simulation.
func TestDuplicateSubmissionsCoalesce(t *testing.T) {
	var executions atomic.Int64
	release := make(chan struct{})
	m := New(Config{Workers: 4}, WithRunner(func(ctx context.Context, u UnitSpec) (*stats.Run, error) {
		executions.Add(1)
		<-release // hold the first execution so the others must coalesce
		return stubRun(u), nil
	}))
	defer m.Drain(context.Background())

	const dup = 8
	jobs := make([]*Job, dup)
	for i := range jobs {
		j, err := m.Submit(runSpec())
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	close(release)
	for _, j := range jobs {
		waitDone(t, j)
		if j.State() != JobDone {
			t.Fatalf("job %s state = %v, want done (err: %v)", j.ID(), j.State(), j.Err())
		}
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (duplicates must coalesce)", got)
	}
	// The first submission claimed the execution; the other seven rode along.
	coalesced := m.met.cacheCoalesced.Value()
	if coalesced != dup-1 {
		t.Fatalf("coalesced = %d, want %d", coalesced, dup-1)
	}
}

// TestCachedResultByteIdentical is the second mandated semantics: a cached
// result must be byte-for-byte identical to the fresh one.
func TestCachedResultByteIdentical(t *testing.T) {
	var executions atomic.Int64
	m := New(Config{Workers: 2}, WithRunner(countingRunner(&executions)))
	defer m.Drain(context.Background())

	fresh, err := m.Submit(runSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, fresh)

	cached, err := m.Submit(runSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cached)

	if got := executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (second submission must be a cache hit)", got)
	}
	if hits := m.met.cacheHits.Value(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	if cached.CachedUnits() != 1 {
		t.Fatalf("cached job CachedUnits = %d, want 1", cached.CachedUnits())
	}

	freshBytes, err := json.Marshal(fresh.Status().Units[0].Result)
	if err != nil {
		t.Fatal(err)
	}
	cachedBytes, err := json.Marshal(cached.Status().Units[0].Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(freshBytes) != string(cachedBytes) {
		t.Fatalf("cached result differs from fresh:\nfresh:  %s\ncached: %s", freshBytes, cachedBytes)
	}
	// Same underlying object: stored once, served to both.
	if fresh.Status().Units[0].Result != cached.Status().Units[0].Result {
		t.Fatal("fresh and cached jobs should share the single stored result")
	}
}

// TestQueueFullRejectsWithRetryAfter is the third mandated semantics: a
// full queue rejects whole submissions with a retry-after hint, and the
// rejection must roll back cleanly so the same spec succeeds later.
func TestQueueFullRejectsWithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	m := New(Config{Workers: 1, QueueDepth: 1}, WithRunner(func(ctx context.Context, u UnitSpec) (*stats.Run, error) {
		<-release
		return stubRun(u), nil
	}))
	defer m.Drain(context.Background())

	// Fill the single worker plus the single queue slot with distinct units.
	first, err := m.Submit(JobSpec{Model: "2P", Bench: "300.twolf"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has picked the first task up so the queue slot
	// is genuinely free for the second.
	deadline := time.Now().Add(5 * time.Second)
	for m.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first task")
		}
		time.Sleep(time.Millisecond)
	}
	second, err := m.Submit(JobSpec{Model: "base", Bench: "300.twolf"})
	if err != nil {
		t.Fatal(err)
	}

	rejectedSpec := JobSpec{Model: "2Pre", Bench: "300.twolf"}
	_, err = m.Submit(rejectedSpec)
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("submit into full queue: err = %v, want QueueFullError", err)
	}
	if qf.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", qf.RetryAfter)
	}
	if got := m.met.jobsRejected.Value(); got != 1 {
		t.Fatalf("jobsRejected = %d, want 1", got)
	}

	// After capacity frees, retrying the identical spec must succeed: the
	// rejected claim was rolled back, not left poisoning the cache.
	close(release)
	waitDone(t, first)
	waitDone(t, second)
	retried, err := m.Submit(rejectedSpec)
	if err != nil {
		t.Fatalf("retry after rejection: %v", err)
	}
	waitDone(t, retried)
	if retried.State() != JobDone {
		t.Fatalf("retried job state = %v, want done (err: %v)", retried.State(), retried.Err())
	}
}

// TestDrainFinishesInFlightJobs is the fourth mandated semantics: drain
// stops intake but every admitted job completes.
func TestDrainFinishesInFlightJobs(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	m := New(Config{Workers: 2}, WithRunner(func(ctx context.Context, u UnitSpec) (*stats.Run, error) {
		started <- struct{}{}
		<-release
		return stubRun(u), nil
	}))

	specs := []JobSpec{
		{Model: "2P", Bench: "300.twolf"},
		{Model: "base", Bench: "300.twolf"},
	}
	jobs := make([]*Job, len(specs))
	for i, s := range specs {
		j, err := m.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	for range specs {
		<-started // both units in flight
	}

	drained := make(chan error, 1)
	go func() { drained <- m.Drain(context.Background()) }()

	// Intake must reject immediately once draining.
	deadline := time.Now().Add(5 * time.Second)
	for !m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(JobSpec{Model: "2Pre", Bench: "300.twolf"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s still unfinished after drain returned", j.ID())
		}
		if j.State() != JobDone {
			t.Fatalf("job %s state = %v, want done (err: %v)", j.ID(), j.State(), j.Err())
		}
	}
}

// TestDrainDeadlineCancelsStuckJobs covers the force path: when the drain
// context expires, stuck simulations are cancelled and their jobs fail.
func TestDrainDeadlineCancelsStuckJobs(t *testing.T) {
	m := New(Config{Workers: 1}, WithRunner(func(ctx context.Context, u UnitSpec) (*stats.Run, error) {
		<-ctx.Done() // simulate a run that only stops via cancellation
		return nil, ctx.Err()
	}))
	j, err := m.Submit(runSpec())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want deadline exceeded", err)
	}
	waitDone(t, j)
	if j.State() != JobFailed {
		t.Fatalf("stuck job state = %v, want failed", j.State())
	}
	if j.Err() == nil {
		t.Fatal("stuck job should carry the cancellation error")
	}
}

// TestJobTimeoutCancelsExecution verifies the per-job timeout reaches the
// runner's context.
func TestJobTimeoutCancelsExecution(t *testing.T) {
	m := New(Config{Workers: 1}, WithRunner(func(ctx context.Context, u UnitSpec) (*stats.Run, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}))
	defer drainForced(m)

	j, err := m.Submit(JobSpec{Model: "2P", Bench: "300.twolf", TimeoutMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != JobFailed {
		t.Fatalf("timed-out job state = %v, want failed", j.State())
	}
	if err := j.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("job err = %v, want deadline exceeded", err)
	}
	// The failed entry must not be cached: a retry re-executes.
	if got := m.met.cacheEntries.Value(); got != 0 {
		t.Fatalf("cacheEntries = %d after failure, want 0", got)
	}
}

// TestFailedUnitRetriesFresh verifies an errored unit is evicted so a later
// identical submission re-executes instead of replaying the failure.
func TestFailedUnitRetriesFresh(t *testing.T) {
	var calls atomic.Int64
	m := New(Config{Workers: 1}, WithRunner(func(ctx context.Context, u UnitSpec) (*stats.Run, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient fault")
		}
		return stubRun(u), nil
	}))
	defer m.Drain(context.Background())

	j1, err := m.Submit(runSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	if j1.State() != JobFailed {
		t.Fatalf("first job state = %v, want failed", j1.State())
	}

	j2, err := m.Submit(runSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if j2.State() != JobDone {
		t.Fatalf("retried job state = %v, want done (err: %v)", j2.State(), j2.Err())
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("runner calls = %d, want 2 (failure must not be cached)", got)
	}
}

// TestSweepExpansionSharesCacheWithEquivalentRun verifies a sweep grid point
// and the equivalent single run share one cache slot, and that the sweep's
// unit count is the full cartesian product.
func TestSweepExpansionSharesCacheWithEquivalentRun(t *testing.T) {
	var executions atomic.Int64
	m := New(Config{Workers: 4}, WithRunner(countingRunner(&executions)))
	defer m.Drain(context.Background())

	cq := 64
	single, err := m.Submit(JobSpec{
		Model:  "2P",
		Bench:  "300.twolf",
		Config: ConfigOverrides{CQSize: &cq},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, single)

	sweep, err := m.Submit(JobSpec{
		Kind:    "sweep",
		Models:  []string{"2P", "base"},
		Benches: []string{"300.twolf"},
		Sweep:   &SweepAxes{CQSizes: []int{16, 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sweep)

	st := sweep.Status()
	if st.TotalUnits != 4 {
		t.Fatalf("sweep units = %d, want 4 (2 models × 2 cq sizes)", st.TotalUnits)
	}
	// 1 single + 4 sweep points, minus the shared (2P, cq=64) slot.
	if got := executions.Load(); got != 4 {
		t.Fatalf("executions = %d, want 4 (sweep point must reuse the single run's cache slot)", got)
	}
	if st.CachedUnits != 1 {
		t.Fatalf("sweep CachedUnits = %d, want 1", st.CachedUnits)
	}
	for _, u := range st.Units {
		if u.State != "done" {
			t.Fatalf("unit %s state = %q, want done (%s)", u.Key, u.State, u.Error)
		}
		if u.Result == nil {
			t.Fatalf("unit %s missing result", u.Key)
		}
	}
}

// TestCacheEviction verifies the LRU bound holds and evicted units
// re-execute.
func TestCacheEviction(t *testing.T) {
	var executions atomic.Int64
	m := New(Config{Workers: 1, CacheEntries: 1}, WithRunner(countingRunner(&executions)))
	defer m.Drain(context.Background())

	a := JobSpec{Model: "2P", Bench: "300.twolf"}
	b := JobSpec{Model: "base", Bench: "300.twolf"}
	for _, s := range []JobSpec{a, b, a} {
		j, err := m.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	if got := executions.Load(); got != 3 {
		t.Fatalf("executions = %d, want 3 (a evicted by b, so a re-runs)", got)
	}
	if got := m.met.cacheEvictions.Value(); got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
	if got := m.met.cacheEntries.Value(); got != 1 {
		t.Fatalf("cacheEntries gauge = %d, want 1", got)
	}
}

// TestConcurrentMixedSubmissions hammers the manager from many goroutines
// with a high duplicate ratio; meant to run under -race.
func TestConcurrentMixedSubmissions(t *testing.T) {
	var executions atomic.Int64
	m := New(Config{Workers: 4, QueueDepth: 512}, WithRunner(func(ctx context.Context, u UnitSpec) (*stats.Run, error) {
		executions.Add(1)
		time.Sleep(time.Millisecond)
		return stubRun(u), nil
	}))
	defer m.Drain(context.Background())

	specs := []JobSpec{
		{Model: "2P", Bench: "300.twolf"},
		{Model: "base", Bench: "300.twolf"},
		{Model: "2Pre", Bench: "099.go"},
	}
	const clients, perClient = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				j, err := m.Submit(specs[(c+i)%len(specs)])
				if err != nil {
					errs <- err
					continue
				}
				waitDone(t, j)
				if j.State() != JobDone {
					errs <- fmt.Errorf("job %s: %v", j.ID(), j.Err())
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client error: %v", err)
	}
	// With only three distinct units, the dedup layer must have absorbed the
	// overwhelming majority of the 80 submissions.
	if got := executions.Load(); got > 10 {
		t.Errorf("executions = %d, want only a handful for 3 distinct units", got)
	}
	hits := m.met.cacheHits.Value() + m.met.cacheCoalesced.Value()
	if hits == 0 {
		t.Error("expected nonzero cache hits + coalesced")
	}
}

// TestInvalidSpecs verifies validation failures map to ErrInvalidSpec.
func TestInvalidSpecs(t *testing.T) {
	m := New(Config{Workers: 1}, WithRunner(countingRunner(new(atomic.Int64))))
	defer m.Drain(context.Background())
	bad := []JobSpec{
		{},                                  // no model/bench
		{Model: "2P"},                       // no bench
		{Model: "nope", Bench: "300.twolf"}, // unknown model
		{Model: "2P", Bench: "nope"},        // unknown bench
		{Kind: "batch", Model: "2P", Bench: "300.twolf"},            // unknown kind
		{Model: "2P", Bench: "300.twolf", Models: []string{"base"}}, // run with 2 models
		{Kind: "sweep", Models: []string{"2P"}, Benches: []string{"300.twolf"},
			Sweep: &SweepAxes{CQSizes: []int{0}}}, // non-positive swept value
	}
	for i, s := range bad {
		if _, err := m.Submit(s); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("spec %d: err = %v, want ErrInvalidSpec", i, err)
		}
	}
}

// TestUnitKeyStability pins the key's sensitivity: config and model changes
// alter it, sweep labels do not.
func TestUnitKeyStability(t *testing.T) {
	mk := func(mutate func(*JobSpec)) string {
		s := runSpec()
		if mutate != nil {
			mutate(&s)
		}
		units, err := s.expand()
		if err != nil {
			t.Fatal(err)
		}
		return units[0].Key()
	}
	base := mk(nil)
	if base != mk(nil) {
		t.Fatal("key not deterministic")
	}
	if other := mk(func(s *JobSpec) { s.Model = "base" }); other == base {
		t.Fatal("model change should alter the key")
	}
	cq := 16
	if other := mk(func(s *JobSpec) { s.Config.CQSize = &cq }); other == base {
		t.Fatal("config change should alter the key")
	}
	if other := mk(func(s *JobSpec) { s.Seed = 7 }); other == base {
		t.Fatal("seed change should alter the key")
	}
	if other := mk(func(s *JobSpec) { s.Verify = true }); other == base {
		t.Fatal("verify change should alter the key")
	}

	// A sweep point with cq_size=64 must share the key of a plain run whose
	// override sets cq_size=64 — Params are presentation-only.
	cq64 := 64
	plain := JobSpec{Model: "2P", Bench: "300.twolf", Config: ConfigOverrides{CQSize: &cq64}}
	pu, err := plain.expand()
	if err != nil {
		t.Fatal(err)
	}
	sweep := JobSpec{Kind: "sweep", Models: []string{"2P"}, Benches: []string{"300.twolf"},
		Sweep: &SweepAxes{CQSizes: []int{64}}}
	su, err := sweep.expand()
	if err != nil {
		t.Fatal(err)
	}
	if pu[0].Key() != su[0].Key() {
		t.Fatal("equivalent run and sweep point must share a cache key")
	}
}

// drainForced drains with a short deadline for tests whose runner only
// stops via cancellation.
func drainForced(m *Manager) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = m.Drain(ctx)
}
