package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"fleaflicker/internal/core"
	"fleaflicker/internal/workload"
)

// ErrInvalidSpec wraps every submission-validation failure so the HTTP
// layer can map the whole family to one status code.
var ErrInvalidSpec = errors.New("service: invalid job spec")

// JobSpec is the wire format of one submission: a single run (kind "run",
// the default), a parameter-sweep grid (kind "sweep") expanded server-side
// into one simulation unit per grid point, or a differential fuzzing
// campaign (kind "fuzz") chunked into one unit per seed range.
type JobSpec struct {
	// Kind selects the submission shape: "run" (default), "sweep" or
	// "fuzz".
	Kind string `json:"kind,omitempty"`

	// Model and Bench name a single run's cell. Sweeps use the plural
	// forms; a sweep with Model/Bench set treats them as one-element lists.
	Model   string   `json:"model,omitempty"`
	Bench   string   `json:"bench,omitempty"`
	Models  []string `json:"models,omitempty"`
	Benches []string `json:"benches,omitempty"`

	// Verify checks every unit against the functional reference executor.
	Verify bool `json:"verify,omitempty"`

	// Seed namespaces the cache key. The Table 2 kernels are fully
	// deterministic, so distinct seeds today produce identical results —
	// the field exists so future stochastic workloads do not silently
	// collide in the cache.
	Seed int64 `json:"seed,omitempty"`

	// TimeoutMS bounds the whole job's wall-clock time (0 = server
	// default). On expiry, this job's pending simulations are cancelled.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Config overrides individual Table 1 parameters; unset fields keep
	// core.DefaultConfig values.
	Config ConfigOverrides `json:"config,omitempty"`

	// Sweep adds parameter axes; the grid is the cartesian product of
	// models × benches × every non-empty axis.
	Sweep *SweepAxes `json:"sweep,omitempty"`

	// Fuzz configures a kind-"fuzz" differential campaign; Seed is the
	// first generator seed.
	Fuzz *FuzzSpec `json:"fuzz,omitempty"`
}

// SweepAxes are the server-side expanded sweep dimensions, mirroring the
// ablation sweeps of internal/experiments (CQ size, B→A feedback latency,
// ALAT capacity, deferral throttle).
type SweepAxes struct {
	CQSizes           []int `json:"cq_sizes,omitempty"`
	FeedbackLatencies []int `json:"feedback_latencies,omitempty"`
	ALATCapacities    []int `json:"alat_capacities,omitempty"`
	DeferThrottles    []int `json:"defer_throttles,omitempty"`
}

// ConfigOverrides is the JSON-friendly partial view of core.Config: only
// set fields override the Table 1 defaults.
type ConfigOverrides struct {
	CQSize             *int   `json:"cq_size,omitempty"`
	ALATCapacity       *int   `json:"alat_capacity,omitempty"`
	FeedbackLatency    *int   `json:"feedback_latency,omitempty"`
	DeferThrottle      *int   `json:"defer_throttle,omitempty"`
	SBSize             *int   `json:"sb_size,omitempty"`
	IssueWidth         *int   `json:"issue_width,omitempty"`
	MaxCycles          *int64 `json:"max_cycles,omitempty"`
	StallOnAnticipable *bool  `json:"stall_on_anticipable,omitempty"`
	ConflictPredictor  *bool  `json:"conflict_predictor,omitempty"`
	CheckpointRepair   *bool  `json:"checkpoint_repair,omitempty"`
}

func (o ConfigOverrides) apply(cfg core.Config) core.Config {
	if o.CQSize != nil {
		cfg.CQSize = *o.CQSize
	}
	if o.ALATCapacity != nil {
		cfg.ALATCapacity = *o.ALATCapacity
	}
	if o.FeedbackLatency != nil {
		cfg.FeedbackLatency = *o.FeedbackLatency
	}
	if o.DeferThrottle != nil {
		cfg.DeferThrottle = *o.DeferThrottle
	}
	if o.SBSize != nil {
		cfg.SBSize = *o.SBSize
	}
	if o.IssueWidth != nil {
		cfg.IssueWidth = *o.IssueWidth
	}
	if o.MaxCycles != nil {
		cfg.MaxCycles = *o.MaxCycles
	}
	if o.StallOnAnticipable != nil {
		cfg.StallOnAnticipable = *o.StallOnAnticipable
	}
	if o.ConflictPredictor != nil {
		cfg.ConflictPredictor = *o.ConflictPredictor
	}
	if o.CheckpointRepair != nil {
		cfg.CheckpointRepair = *o.CheckpointRepair
	}
	return cfg
}

// Param records one sweep-axis coordinate of a unit, for reporting.
type Param struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
}

// UnitSpec is one fully resolved simulation: the service's unit of
// execution, caching and deduplication.
type UnitSpec struct {
	Model     core.Model  `json:"-"`
	ModelName string      `json:"model"`
	Bench     string      `json:"bench"`
	Seed      int64       `json:"seed,omitempty"`
	Verify    bool        `json:"verify,omitempty"`
	Params    []Param     `json:"params,omitempty"`
	Config    core.Config `json:"-"`
	// Fuzz marks this unit as one chunk of a differential fuzzing campaign
	// instead of a single simulation (ModelName is then "fuzz" and Bench a
	// seed-range label).
	Fuzz *FuzzUnit `json:"fuzz,omitempty"`
}

// Key returns the unit's content-addressed cache key: a SHA-256 over the
// canonical encoding of everything that determines the simulation's output
// (model, benchmark, seed, verification, and the fully resolved machine
// configuration). Sweep-axis labels are presentation-only and excluded, so
// a sweep point and an equivalent single run share one cache slot.
func (u *UnitSpec) Key() string {
	payload := struct {
		Model  string      `json:"model"`
		Bench  string      `json:"bench"`
		Seed   int64       `json:"seed"`
		Verify bool        `json:"verify"`
		Config core.Config `json:"config"`
		Fuzz   *FuzzUnit   `json:"fuzz,omitempty"`
	}{u.ModelName, u.Bench, u.Seed, u.Verify, u.Config, u.Fuzz}
	b, err := json.Marshal(payload)
	if err != nil {
		// core.Config is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("service: unit key encoding: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// modelByName resolves a wire-format model name ("base", "2P", "2Pre",
// "runahead") to its core.Model.
func modelByName(name string) (core.Model, error) {
	for _, m := range core.Models() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown model %q (have base, 2P, 2Pre, runahead)", ErrInvalidSpec, name)
}

// expand resolves the spec into its simulation units: validation, default
// filling, and server-side cartesian expansion of the sweep grid.
func (s *JobSpec) expand() ([]UnitSpec, error) {
	switch s.Kind {
	case "", "run", "sweep":
	case "fuzz":
		return s.expandFuzz()
	default:
		return nil, fmt.Errorf("%w: unknown kind %q (have run, sweep, fuzz)", ErrInvalidSpec, s.Kind)
	}
	if s.Fuzz != nil {
		return nil, fmt.Errorf("%w: fuzz parameters require kind fuzz", ErrInvalidSpec)
	}

	models := s.Models
	if s.Model != "" {
		models = append([]string{s.Model}, models...)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("%w: no model selected", ErrInvalidSpec)
	}
	benches := s.Benches
	if s.Bench != "" {
		benches = append([]string{s.Bench}, benches...)
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("%w: no benchmark selected", ErrInvalidSpec)
	}
	if s.Kind != "sweep" && (len(models) > 1 || len(benches) > 1 || s.Sweep != nil) {
		return nil, fmt.Errorf("%w: kind run takes one model and one benchmark and no sweep axes", ErrInvalidSpec)
	}

	base := s.Config.apply(core.DefaultConfig())
	if base.MaxCycles <= 0 || base.IssueWidth <= 0 || base.CQSize <= 0 {
		return nil, fmt.Errorf("%w: max_cycles, issue_width and cq_size must be positive", ErrInvalidSpec)
	}

	// Each axis is a (label, values, setter) triple; the grid is the
	// cartesian product of the non-empty ones.
	type axis struct {
		name   string
		values []int
		set    func(*core.Config, int)
	}
	var axes []axis
	if s.Sweep != nil {
		if len(s.Sweep.CQSizes) > 0 {
			axes = append(axes, axis{"cq_size", s.Sweep.CQSizes,
				func(c *core.Config, v int) { c.CQSize = v }})
		}
		if len(s.Sweep.FeedbackLatencies) > 0 {
			axes = append(axes, axis{"feedback_latency", s.Sweep.FeedbackLatencies,
				func(c *core.Config, v int) { c.FeedbackLatency = v }})
		}
		if len(s.Sweep.ALATCapacities) > 0 {
			axes = append(axes, axis{"alat_capacity", s.Sweep.ALATCapacities,
				func(c *core.Config, v int) { c.ALATCapacity = v }})
		}
		if len(s.Sweep.DeferThrottles) > 0 {
			axes = append(axes, axis{"defer_throttle", s.Sweep.DeferThrottles,
				func(c *core.Config, v int) { c.DeferThrottle = v }})
		}
	}

	// points enumerates the grid coordinates: one []Param per point.
	points := [][]Param{nil}
	for _, ax := range axes {
		var next [][]Param
		for _, pt := range points {
			for _, v := range ax.values {
				p := make([]Param, len(pt), len(pt)+1)
				copy(p, pt)
				next = append(next, append(p, Param{ax.name, v}))
			}
		}
		points = next
	}

	setter := make(map[string]func(*core.Config, int), len(axes))
	for _, ax := range axes {
		setter[ax.name] = ax.set
	}

	var units []UnitSpec
	for _, mName := range models {
		model, err := modelByName(mName)
		if err != nil {
			return nil, err
		}
		for _, bName := range benches {
			if _, err := workload.ByName(bName); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
			}
			for _, pt := range points {
				cfg := base
				for _, p := range pt {
					setter[p.Name](&cfg, p.Value)
				}
				if cfg.CQSize <= 0 {
					return nil, fmt.Errorf("%w: swept cq_size must be positive", ErrInvalidSpec)
				}
				units = append(units, UnitSpec{
					Model:     model,
					ModelName: mName,
					Bench:     bName,
					Seed:      s.Seed,
					Verify:    s.Verify,
					Params:    pt,
					Config:    cfg,
				})
			}
		}
	}
	return units, nil
}
