package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// maxBodyBytes bounds a submission body; a full sweep grid spec is tiny.
const maxBodyBytes = 1 << 20

// Server is the HTTP façade over a Manager:
//
//	POST /v1/jobs            submit a run or sweep; 202 with the job id
//	POST /v1/units           submit pre-resolved units (coordinator dispatch)
//	GET  /v1/jobs/{id}       status + per-unit stats payload
//	GET  /v1/jobs/{id}/events  SSE progress stream
//	GET  /v1/cache/{key}     cache-federation peer lookup by unit key
//	GET  /healthz            liveness (503 while draining)
//	GET  /metricsz           metrics registry + job-latency quantiles
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// NewServer wires the routes.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/units", s.handleSubmitUnits)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheLookup)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error payload. RetryAfter mirrors the
// Retry-After header machine-readably, so clients parse one JSON body
// instead of a header plus a body. retry_after_seconds repeats the hint
// under the pre-rename name for clients built against the old wire format
// (deprecated; will be dropped).
type errorBody struct {
	Error            string `json:"error"`
	RetryAfter       int    `json:"retryAfterSeconds,omitempty"`
	RetryAfterLegacy int    `json:"retry_after_seconds,omitempty"`
}

// retryBody builds an errorBody carrying the retry hint under both names.
func retryBody(msg string, secs int) errorBody {
	return errorBody{Error: msg, RetryAfter: secs, RetryAfterLegacy: secs}
}

// submitResponse acknowledges an admitted job.
type submitResponse struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Location    string `json:"location"`
	Events      string `json:"events"`
	TotalUnits  int    `json:"total_units"`
	CachedUnits int    `json:"cached_units"`
}

// handleSubmit admits one job.
//
//flea:coldpath admission control; never on the simulation hot path.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding job spec: %v", err)})
		return
	}
	job, err := s.m.Submit(spec)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeAck(w, job)
}

// writeSubmitError maps a Submit/SubmitUnits failure onto the uniform error
// payload: 429 with retryAfterSeconds for a full queue, 503 while draining,
// 400 for invalid specs.
func writeSubmitError(w http.ResponseWriter, err error) {
	var qf *QueueFullError
	switch {
	case errors.As(err, &qf):
		secs := int(qf.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, retryBody(err.Error(), secs))
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, retryBody(err.Error(), 5))
	case errors.Is(err, ErrInvalidSpec):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// writeAck acknowledges an admitted job.
func writeAck(w http.ResponseWriter, job *Job) {
	loc := "/v1/jobs/" + job.ID()
	w.Header().Set("Location", loc)
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:          job.ID(),
		State:       job.State().String(),
		Location:    loc,
		Events:      loc + "/events",
		TotalUnits:  len(job.units),
		CachedUnits: job.CachedUnits(),
	})
}

// UnitSubmission is the POST /v1/units body: a batch of pre-resolved units,
// as dispatched by a cluster coordinator.
type UnitSubmission struct {
	TimeoutMS int64      `json:"timeout_ms,omitempty"`
	Units     []WireUnit `json:"units"`
}

// handleSubmitUnits admits a batch of pre-resolved units.
//
//flea:coldpath admission control; never on the simulation hot path.
func (s *Server) handleSubmitUnits(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var sub UnitSubmission
	if err := dec.Decode(&sub); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding unit submission: %v", err)})
		return
	}
	units := make([]UnitSpec, len(sub.Units))
	for i, wu := range sub.Units {
		u, err := wu.Resolve()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		units[i] = u
	}
	job, err := s.m.SubmitUnits(units, sub.TimeoutMS)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeAck(w, job)
}

// handleCacheLookup serves the cache-federation peer lookup: the completed
// result stored under a unit key, or 404. A coordinator asks here before
// scheduling a fresh simulation, so a result computed on any node is
// computed once.
//
//flea:coldpath observation only.
func (s *Server) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	s.m.met.cachePeerLookups.Inc()
	res, ok := s.m.CachedResult(r.PathValue("key"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no completed result under that key"})
		return
	}
	s.m.met.cachePeerHits.Inc()
	writeJSON(w, http.StatusOK, res)
}

// handleJob reports one job's status and (as units finish) results.
//
//flea:coldpath reporting; reads immutable completed entries.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleEvents streams job progress as server-sent events: one "progress"
// frame per finished unit and a terminal "done" frame carrying the final
// state. A fresh subscriber first receives a snapshot frame.
//
//flea:coldpath observation only.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, snapshot, cancel := job.subscribe()
	defer cancel()
	writeSSE(w, "progress", snapshot)
	if snapshot.State != "" {
		// Already terminal: replay the final frame and finish.
		writeSSE(w, "done", snapshot)
		flusher.Flush()
		return
	}
	flusher.Flush()
	for {
		select {
		case ev := <-ch:
			if ev.State != "" {
				writeSSE(w, "done", ev)
				flusher.Flush()
				return
			}
			writeSSE(w, "progress", ev)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one SSE frame.
func writeSSE(w io.Writer, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// handleHealth is the load-balancer liveness probe: 200 while serving, 503
// once draining.
//
//flea:coldpath liveness only.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.m.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining", "uptime_ms": float64(s.m.Uptime()) / float64(time.Millisecond),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "uptime_ms": float64(s.m.Uptime()) / float64(time.Millisecond),
	})
}

// handleMetrics renders the service registry plus the job-latency
// quantiles: plain "name value" lines by default, a structured object with
// ?format=json.
//
//flea:coldpath observation only.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	h := s.m.Latency()
	quantiles := map[string]float64{
		MetricJobLatencyP50:  float64(h.Quantile(0.50)) / float64(time.Millisecond),
		MetricJobLatencyP95:  float64(h.Quantile(0.95)) / float64(time.Millisecond),
		MetricJobLatencyP99:  float64(h.Quantile(0.99)) / float64(time.Millisecond),
		MetricJobLatencyMax:  float64(h.Max()) / float64(time.Millisecond),
		MetricJobLatencyMean: float64(h.Mean()) / float64(time.Millisecond),
	}
	if r.URL.Query().Get("format") == "json" {
		counters := map[string]int64{}
		gauges := map[string]int64{}
		s.m.Registry().EachCounter(func(name string, v int64) { counters[name] = v })
		s.m.Registry().EachGauge(func(name string, v int64) { gauges[name] = v })
		writeJSON(w, http.StatusOK, map[string]any{
			"counters":        counters,
			"gauges":          gauges,
			"latency_ms":      quantiles,
			"latency_samples": h.Count(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.m.Registry().EachCounter(func(name string, v int64) { fmt.Fprintf(w, "%s %d\n", name, v) })
	s.m.Registry().EachGauge(func(name string, v int64) { fmt.Fprintf(w, "%s %d\n", name, v) })
	for _, name := range []string{MetricJobLatencyP50, MetricJobLatencyP95, MetricJobLatencyP99,
		MetricJobLatencyMax, MetricJobLatencyMean} {
		fmt.Fprintf(w, "%s %.3f\n", name, quantiles[name])
	}
}
