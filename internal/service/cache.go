package service

import (
	"container/list"
	"sync"

	"fleaflicker/internal/stats"
)

// UnitResult is the immutable, cacheable outcome of one executed unit. It
// is stored exactly once — at the execution that produced it — so a cached
// delivery is byte-identical to the fresh one (the determinism contract the
// service tests assert).
type UnitResult struct {
	// Key is the unit's content-addressed cache key.
	Key string `json:"key"`
	// DurationMS is the wall-clock time of the one real execution that
	// produced this result (cache hits observe the original duration).
	DurationMS float64 `json:"duration_ms"`
	// Run is the full measurement record of the simulation (nil for fuzz
	// units, which report through Fuzz instead).
	Run *stats.Run `json:"run,omitempty"`
	// Fuzz is a fuzz chunk's campaign report (nil for simulation units).
	Fuzz *FuzzReport `json:"fuzz,omitempty"`
}

// entry is one cache slot. Its lifecycle: created in-flight when a
// submission claims the key (done open), completed exactly once by the
// worker that executed it (done closed). Entries that complete with an
// error are removed so a later submission retries; successful entries stay
// until evicted.
type entry struct {
	key    string
	done   chan struct{}
	result *UnitResult // set before done closes
	err    error       // set before done closes
	elem   *list.Element
}

// completed reports whether the entry has finished (result or err set).
func (e *entry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// resultCache is the content-addressed simulation-result cache with
// in-flight coalescing: at most one execution per key exists at a time;
// duplicate submissions attach to it and completed results are served
// without re-simulation. Completed entries are bounded by an LRU.
type resultCache struct {
	met *serviceMetrics
	max int // completed-entry bound; 0 = unbounded

	// mu guards the map and the LRU. The manager's submitMu additionally
	// serializes whole submissions, so an acquire/abandon pair cannot be
	// interleaved with another submission coalescing onto the same entry.
	mu sync.Mutex
	//flea:guardedby(mu)
	entries map[string]*entry
	//flea:guardedby(mu)
	lru *list.List // completed entries only; front = most recent
}

func newResultCache(maxEntries int, met *serviceMetrics) *resultCache {
	return &resultCache{
		met:     met,
		max:     maxEntries,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
}

// acquire returns the entry for key and whether the caller claimed it (and
// so must enqueue a task that completes it).
func (c *resultCache) acquire(key string) (e *entry, claimed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if e.completed() {
			c.met.cacheHits.Inc()
			if e.elem != nil {
				c.lru.MoveToFront(e.elem)
			}
		} else {
			c.met.cacheCoalesced.Inc()
		}
		c.met.updateHitRatio()
		return e, false
	}
	e = &entry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.met.cacheMisses.Inc()
	c.met.updateHitRatio()
	c.met.cacheEntries.Set(int64(len(c.entries)))
	return e, true
}

// peek returns the completed result stored under key without claiming it:
// the read-only lookup cache federation peers issue before scheduling a
// fresh simulation. In-flight and failed entries report a miss.
func (c *resultCache) peek(key string) (*UnitResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.completed() || e.err != nil {
		return nil, false
	}
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	return e.result, true
}

// abandon rolls back a claim whose task could not be enqueued (queue full).
// Only the submission that claimed the entry may abandon it, and only while
// it still holds the manager's submitMu — that exclusion guarantees no
// other submission has coalesced onto the entry in between.
func (c *resultCache) abandon(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, e.key)
	c.met.cacheEntries.Set(int64(len(c.entries)))
	e.err = errAbandoned
	close(e.done)
}

// complete finishes a claimed entry with a result or an error. Called from
// worker goroutines.
func (c *resultCache) complete(e *entry, r *UnitResult, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		delete(c.entries, e.key)
	} else {
		e.elem = c.lru.PushFront(e)
		for c.max > 0 && c.lru.Len() > c.max {
			old := c.lru.Remove(c.lru.Back()).(*entry)
			delete(c.entries, old.key)
			c.met.cacheEvictions.Inc()
		}
	}
	c.met.cacheEntries.Set(int64(len(c.entries)))
	e.result, e.err = r, err
	close(e.done)
}
