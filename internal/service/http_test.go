package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fleaflicker/internal/stats"
)

// newTestServer builds a manager with a fast stub runner and its HTTP
// façade.
func newTestServer(t *testing.T, cfg Config, opts ...Option) (*Manager, *httptest.Server) {
	t.Helper()
	if len(opts) == 0 {
		opts = []Option{WithRunner(countingRunner(new(atomic.Int64)))}
	}
	m := New(cfg, opts...)
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = m.Drain(ctx)
	})
	return m, ts
}

// postJob submits a spec and decodes the acknowledgement.
func postJob(t *testing.T, ts *httptest.Server, body string) (int, submitResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack submitResponse
	_ = json.NewDecoder(resp.Body).Decode(&ack)
	return resp.StatusCode, ack
}

// getStatus polls a job until terminal and returns the final status body.
func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" || st.State == "failed" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPSubmitAndStatus(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, ack := postJob(t, ts, `{"model":"2P","bench":"300.twolf"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if ack.ID == "" || ack.TotalUnits != 1 {
		t.Fatalf("bad ack: %+v", ack)
	}
	st := getStatus(t, ts, ack.ID)
	if st.State != "done" {
		t.Fatalf("job state = %q, want done (%s)", st.State, st.Error)
	}
	if len(st.Units) != 1 || st.Units[0].Result == nil {
		t.Fatalf("status missing unit result: %+v", st)
	}
	if st.Units[0].Model != "2P" || st.Units[0].Bench != "300.twolf" {
		t.Fatalf("unit labels wrong: %+v", st.Units[0])
	}
}

func TestHTTPSweepExpandsServerSide(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	code, ack := postJob(t, ts, `{
		"kind": "sweep",
		"models": ["base", "2P"],
		"benches": ["300.twolf"],
		"sweep": {"cq_sizes": [16, 32, 64]}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if ack.TotalUnits != 6 {
		t.Fatalf("sweep total units = %d, want 6", ack.TotalUnits)
	}
	st := getStatus(t, ts, ack.ID)
	if st.State != "done" {
		t.Fatalf("sweep state = %q (%s)", st.State, st.Error)
	}
	withParam := 0
	for _, u := range st.Units {
		for _, p := range u.Params {
			if p.Name == "cq_size" {
				withParam++
			}
		}
	}
	if withParam != 6 {
		t.Fatalf("units labelled with cq_size = %d, want 6", withParam)
	}
}

func TestHTTPErrors(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1})

	// Invalid JSON and unknown fields → 400.
	for _, body := range []string{`{`, `{"model":"2P","bench":"300.twolf","bogus":1}`} {
		code, _ := postJob(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, code)
		}
	}
	// Semantically invalid spec → 400.
	if code, _ := postJob(t, ts, `{"model":"nope","bench":"300.twolf"}`); code != http.StatusBadRequest {
		t.Errorf("unknown model: status = %d, want 400", code)
	}
	// Unknown job → 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status = %d, want 404", resp.StatusCode)
	}
	// Draining → 503 with Retry-After.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = m.Drain(ctx)
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"model":"2P","bench":"300.twolf"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining submit: missing Retry-After header")
	}
	// Health flips to 503 as well.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: status = %d, want 503", resp.StatusCode)
	}
}

func TestHTTPQueueFullReturns429(t *testing.T) {
	release := make(chan struct{})
	m := New(Config{Workers: 1, QueueDepth: 1}, WithRunner(func(ctx context.Context, u UnitSpec) (*stats.Run, error) {
		<-release
		return stubRun(u), nil
	}))
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		ts.Close()
		close(release)
		_ = m.Drain(context.Background())
	})

	if code, _ := postJob(t, ts, `{"model":"2P","bench":"300.twolf"}`); code != http.StatusAccepted {
		t.Fatalf("first submit status = %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := postJob(t, ts, `{"model":"base","bench":"300.twolf"}`); code != http.StatusAccepted {
		t.Fatalf("second submit status = %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"model":"2Pre","bench":"300.twolf"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit: status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("full-queue submit: missing Retry-After header")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.RetryAfter < 1 {
		t.Fatalf("retry_after_seconds = %d, want >= 1", eb.RetryAfter)
	}
}

func TestHTTPEventsStream(t *testing.T) {
	gate := make(chan struct{}, 8)
	_, ts := newTestServer(t, Config{Workers: 1}, WithRunner(func(ctx context.Context, u UnitSpec) (*stats.Run, error) {
		<-gate
		return stubRun(u), nil
	}))

	_, ack := postJob(t, ts, `{
		"kind": "sweep",
		"models": ["2P"], "benches": ["300.twolf"],
		"sweep": {"cq_sizes": [16, 32]}
	}`)

	resp, err := http.Get(ts.URL + ack.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	gate <- struct{}{}
	gate <- struct{}{}

	var progress int
	var terminal *ProgressEvent
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev ProgressEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatal(err)
			}
			if event == "done" {
				terminal = &ev
			} else {
				progress++
			}
		}
		if terminal != nil {
			break
		}
	}
	if terminal == nil {
		t.Fatal("stream ended without a done frame")
	}
	if terminal.State != "done" || terminal.Completed != 2 || terminal.Total != 2 {
		t.Fatalf("terminal frame = %+v", terminal)
	}
	// At least the snapshot frame plus the per-unit frames.
	if progress < 2 {
		t.Fatalf("progress frames = %d, want >= 2", progress)
	}

	// A subscriber arriving after completion gets an immediate done replay.
	resp2, err := http.Get(ts.URL + ack.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	sawDone := false
	for sc2.Scan() {
		if sc2.Text() == "event: done" {
			sawDone = true
			break
		}
	}
	if !sawDone {
		t.Fatal("late subscriber never saw the done replay")
	}
}

func TestHTTPMetricsz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, ack := postJob(t, ts, `{"model":"2P","bench":"300.twolf"}`)
	getStatus(t, ts, ack.ID)
	// Duplicate for a cache hit.
	_, ack2 := postJob(t, ts, `{"model":"2P","bench":"300.twolf"}`)
	getStatus(t, ts, ack2.ID)

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var text strings.Builder
	sc := bufio.NewScanner(resp.Body)
	lines := map[string]string{}
	for sc.Scan() {
		text.WriteString(sc.Text() + "\n")
		if name, val, ok := strings.Cut(sc.Text(), " "); ok {
			lines[name] = val
		}
	}
	for _, want := range []string{
		MetricJobsSubmitted, MetricJobsCompleted, MetricCacheHits, MetricCacheMisses,
		GaugeQueueDepth, MetricJobLatencyP50, MetricJobLatencyP95, MetricJobLatencyP99,
	} {
		if _, ok := lines[want]; !ok {
			t.Errorf("metricsz missing %q:\n%s", want, text.String())
		}
	}
	if lines[MetricJobsSubmitted] != "2" {
		t.Errorf("%s = %s, want 2", MetricJobsSubmitted, lines[MetricJobsSubmitted])
	}
	if lines[MetricCacheHits] != "1" {
		t.Errorf("%s = %s, want 1", MetricCacheHits, lines[MetricCacheHits])
	}

	// JSON variant.
	resp2, err := http.Get(ts.URL + "/metricsz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var body struct {
		Counters       map[string]int64   `json:"counters"`
		Gauges         map[string]int64   `json:"gauges"`
		LatencyMS      map[string]float64 `json:"latency_ms"`
		LatencySamples int64              `json:"latency_samples"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Counters[MetricJobsSubmitted] != 2 {
		t.Errorf("json %s = %d, want 2", MetricJobsSubmitted, body.Counters[MetricJobsSubmitted])
	}
	if body.LatencySamples != 2 {
		t.Errorf("latency samples = %d, want 2", body.LatencySamples)
	}
	if _, ok := body.LatencyMS[MetricJobLatencyP99]; !ok {
		t.Error("json metrics missing p99")
	}
}

// TestEndToEndRealSimulator exercises the default runner: two submissions
// of a real (fast) benchmark must produce byte-identical bodies with the
// second served from cache.
func TestEndToEndRealSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	m := New(Config{Workers: 2})
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Drain(ctx)
	})

	spec := `{"model":"2P","bench":"300.twolf"}`
	_, ack1 := postJob(t, ts, spec)
	st1 := getStatus(t, ts, ack1.ID)
	if st1.State != "done" {
		t.Fatalf("real run failed: %s", st1.Error)
	}
	if st1.Units[0].Result.Run == nil || st1.Units[0].Result.Run.Cycles <= 0 {
		t.Fatalf("real run missing stats: %+v", st1.Units[0].Result)
	}

	_, ack2 := postJob(t, ts, spec)
	st2 := getStatus(t, ts, ack2.ID)
	if st2.CachedUnits != 1 {
		t.Fatalf("second run CachedUnits = %d, want 1", st2.CachedUnits)
	}
	b1, _ := json.Marshal(st1.Units[0].Result)
	b2, _ := json.Marshal(st2.Units[0].Result)
	if string(b1) != string(b2) {
		t.Fatalf("cached body differs from fresh:\n%s\n%s", b1, b2)
	}
	if m.met.unitsExecuted.Value() != 1 {
		t.Fatalf("unitsExecuted = %d, want 1", m.met.unitsExecuted.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h LatencyHistogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	// Bucket resolution is ±25%; verify ordering and rough placement.
	if p50 < 300*time.Millisecond || p50 > 800*time.Millisecond {
		t.Errorf("p50 = %v, want ≈500ms", p50)
	}
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	if p99 > 1000*time.Millisecond {
		t.Errorf("p99 = %v exceeds observed max", p99)
	}
	mean := h.Mean()
	if mean < 400*time.Millisecond || mean > 600*time.Millisecond {
		t.Errorf("mean = %v, want ≈500ms", mean)
	}
	// Negative samples clamp rather than corrupting buckets.
	h.Record(-time.Second)
	if h.Count() != 1001 {
		t.Fatalf("count after negative = %d", h.Count())
	}
}

func TestJobIDsUnique(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 2})
	_ = m
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		_, ack := postJob(t, ts, fmt.Sprintf(`{"model":"2P","bench":"300.twolf","seed":%d}`, i))
		if seen[ack.ID] {
			t.Fatalf("duplicate job id %s", ack.ID)
		}
		seen[ack.ID] = true
	}
}

// TestHTTPSubmitUnits drives the coordinator dispatch path: pre-resolved
// units posted to /v1/units run like any job and report under the same
// status API, and malformed units are refused with 400.
func TestHTTPSubmitUnits(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	units, err := ExpandUnits(JobSpec{Model: "2P", Bench: "300.twolf", Seed: 5})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	body, _ := json.Marshal(UnitSubmission{Units: []WireUnit{units[0].Wire()}})
	resp, err := http.Post(ts.URL+"/v1/units", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var ack submitResponse
	_ = json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit units: status = %d, want 202", resp.StatusCode)
	}
	st := getStatus(t, ts, ack.ID)
	if st.State != "done" || len(st.Units) != 1 || st.Units[0].Result == nil {
		t.Fatalf("unit job status = %+v, want done with one result", st)
	}
	if st.Units[0].Key != units[0].Key() {
		t.Fatalf("backend key %s != submitted key %s", st.Units[0].Key, units[0].Key())
	}

	bad := units[0].Wire()
	bad.Model = "nonsense"
	body, _ = json.Marshal(UnitSubmission{Units: []WireUnit{bad}})
	resp, err = http.Post(ts.URL+"/v1/units", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad unit: status = %d, want 400", resp.StatusCode)
	}
}

// TestHTTPCacheLookup is the federation peer-lookup contract: 404 before
// the unit has a completed result, the exact UnitResult afterwards, and
// both outcomes counted.
func TestHTTPCacheLookup(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1})

	units, err := ExpandUnits(JobSpec{Model: "2P", Bench: "300.twolf", Seed: 6})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	key := units[0].Key()

	resp, err := http.Get(ts.URL + "/v1/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold lookup: status = %d, want 404", resp.StatusCode)
	}

	_, ack := postJob(t, ts, `{"model":"2P","bench":"300.twolf","seed":6}`)
	getStatus(t, ts, ack.ID)

	resp, err = http.Get(ts.URL + "/v1/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	var res UnitResult
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("warm lookup: status = %d err = %v, want 200", resp.StatusCode, err)
	}
	if res.Key != key || res.Run == nil {
		t.Fatalf("warm lookup result = %+v, want key %s with run", res, key)
	}
	counters, _ := m.Registry().Snapshot()
	if got := counters[MetricCachePeerLookups]; got != 2 {
		t.Fatalf("peer lookups = %d, want 2", got)
	}
	if got := counters[MetricCachePeerHits]; got != 1 {
		t.Fatalf("peer hits = %d, want 1", got)
	}
}

// TestCacheHitRatioGauge checks the hit-ratio gauge tracks the served-
// without-fresh-run fraction in permille.
func TestCacheHitRatioGauge(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1})

	_, ack := postJob(t, ts, `{"model":"2P","bench":"300.twolf","seed":7}`)
	getStatus(t, ts, ack.ID)
	if _, gauges := m.Registry().Snapshot(); gauges[GaugeCacheHitRatio] != 0 {
		t.Fatalf("hit ratio after one miss = %d permille, want 0", gauges[GaugeCacheHitRatio])
	}
	_, ack = postJob(t, ts, `{"model":"2P","bench":"300.twolf","seed":7}`)
	getStatus(t, ts, ack.ID)
	if _, gauges := m.Registry().Snapshot(); gauges[GaugeCacheHitRatio] != 500 {
		t.Fatalf("hit ratio after one miss + one hit = %d permille, want 500", gauges[GaugeCacheHitRatio])
	}
}
