// Package client is the one fleasimd HTTP client in the repository. The
// wire idioms it owns — job and unit submission, terminal-state polling, the
// 429/503 backpressure protocol with its machine-readable retry hint (the
// retryAfterSeconds body field, its deprecated retry_after_seconds spelling,
// and the Retry-After header, in that order), the cache-federation peer
// lookup, and the /metricsz scrape — used to be duplicated between
// cmd/fleaload and the cluster coordinator's backend handles, which meant a
// wire change (the retry-hint rename, once) had to be fixed in two parsers.
// The load harness, the coordinator (internal/cluster) and the experiment
// orchestrator (internal/fleaflow) all speak through this package now.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"fleaflicker/internal/service"
)

// maxErrorBody bounds how much of an error response is read for messages
// and retry hints.
const maxErrorBody = 512

// NormalizeBaseURL canonicalizes a server URL (default http scheme, no
// trailing slash), so that two spellings of one daemon compare equal —
// membership lists rely on this to reject duplicates before they become
// distinct ring identities.
func NormalizeBaseURL(raw string) string {
	base := strings.TrimRight(strings.TrimSpace(raw), "/")
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return base
}

// Client is a handle on one fleasimd daemon or coordinator.
type Client struct {
	id   string // short display name (host:port)
	base string // base URL, no trailing slash
	http *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying HTTP client (tests, custom
// transports).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New normalizes the URL and sizes the HTTP client. The transport allows
// enough idle connections that dispatch slots, pollers and health probers
// sharing one Client do not fight over sockets.
func New(rawURL string, opts ...Option) *Client {
	base := NormalizeBaseURL(rawURL)
	c := &Client{
		id:   strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://"),
		base: base,
		http: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        32,
				MaxIdleConnsPerHost: 32,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// ID returns the short display name (host:port).
func (c *Client) ID() string { return c.id }

// Base returns the normalized base URL.
func (c *Client) Base() string { return c.base }

// HTTPError is a non-2xx response, carrying the parsed machine-readable
// retry hint when the server sent one.
type HTTPError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("server HTTP %d: %s", e.Status, e.Msg)
}

// Backpressured reports whether the error is a retry-later response (429
// queue full / 503 draining) rather than a hard failure.
func (e *HTTPError) Backpressured() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// DecodeError turns a non-2xx response into an HTTPError. The retry hint is
// resolved new-name first (retryAfterSeconds), then the deprecated
// retry_after_seconds spelling from pre-rename servers, then the Retry-After
// header. It consumes (a bounded prefix of) resp.Body.
func DecodeError(resp *http.Response) *HTTPError {
	he := &HTTPError{Status: resp.StatusCode}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	var body struct {
		Error            string `json:"error"`
		RetryAfter       int    `json:"retryAfterSeconds"`
		RetryAfterLegacy int    `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(raw, &body); err == nil && body.Error != "" {
		he.Msg = body.Error
		if body.RetryAfter == 0 {
			body.RetryAfter = body.RetryAfterLegacy
		}
		if body.RetryAfter > 0 {
			he.RetryAfter = time.Duration(body.RetryAfter) * time.Second
		}
	} else {
		he.Msg = string(raw)
	}
	if he.RetryAfter == 0 {
		if h := resp.Header.Get("Retry-After"); h != "" {
			var secs int
			if _, err := fmt.Sscanf(h, "%d", &secs); err == nil && secs > 0 {
				he.RetryAfter = time.Duration(secs) * time.Second
			}
		}
	}
	return he
}

// GetJSON issues one GET and decodes a 200 response into out; any other
// status returns the decoded *HTTPError.
func (c *Client) GetJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return DecodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON issues one POST and decodes a response with the expected status
// into out; any other status returns the decoded *HTTPError.
func (c *Client) postJSON(ctx context.Context, path string, in, out any, want int) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		return DecodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health probes /healthz. Any 200 is healthy; a draining server (503)
// reports an error so callers mark it down and move on.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrorBody))
	if resp.StatusCode != http.StatusOK {
		return &HTTPError{Status: resp.StatusCode, Msg: "unhealthy"}
	}
	return nil
}

// SubmitAck is the acknowledgement of an admitted job.
type SubmitAck struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Location    string `json:"location"`
	Events      string `json:"events"`
	TotalUnits  int    `json:"total_units"`
	CachedUnits int    `json:"cached_units"`
}

// SubmitJob posts one job spec (POST /v1/jobs) and returns the admission
// acknowledgement. Backpressure comes back as an *HTTPError with
// Backpressured() true; use SubmitJobRetry for the standard backoff loop.
func (c *Client) SubmitJob(ctx context.Context, spec service.JobSpec) (*SubmitAck, error) {
	var ack SubmitAck
	if err := c.postJSON(ctx, "/v1/jobs", spec, &ack, http.StatusAccepted); err != nil {
		return nil, err
	}
	return &ack, nil
}

// SubmitUnits posts a batch of pre-resolved units (POST /v1/units, the
// coordinator dispatch path) and returns the job's status location.
func (c *Client) SubmitUnits(ctx context.Context, units []service.WireUnit, timeoutMS int64) (string, error) {
	var ack SubmitAck
	sub := service.UnitSubmission{TimeoutMS: timeoutMS, Units: units}
	if err := c.postJSON(ctx, "/v1/units", sub, &ack, http.StatusAccepted); err != nil {
		return "", err
	}
	return ack.Location, nil
}

// RetryPolicy bounds SubmitJobRetry's backpressure loop.
type RetryPolicy struct {
	// MaxRetries bounds how many 429/503 responses are absorbed before the
	// submission fails (0 = fail on the first).
	MaxRetries int
	// MaxWait caps a single pause regardless of the server's hint, so a
	// client never sleeps a full server-scale hint (0 = honour the hint).
	MaxWait time.Duration
	// MinWait is the pause when the server sent no usable hint (default
	// 50ms).
	MinWait time.Duration
	// OnBackpressure, when non-nil, observes each absorbed response.
	OnBackpressure func(wait time.Duration)
}

// SubmitJobRetry posts a job spec, absorbing backpressure responses with the
// server-hinted pause until admission, policy exhaustion, a hard error, or
// ctx cancellation.
func (c *Client) SubmitJobRetry(ctx context.Context, spec service.JobSpec, policy RetryPolicy) (*SubmitAck, error) {
	minWait := policy.MinWait
	if minWait <= 0 {
		minWait = 50 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		ack, err := c.SubmitJob(ctx, spec)
		if err == nil {
			return ack, nil
		}
		he, ok := err.(*HTTPError)
		if !ok || !he.Backpressured() {
			return nil, err
		}
		if attempt >= policy.MaxRetries {
			return nil, fmt.Errorf("still backpressured after %d retries: %w", attempt, err)
		}
		wait := he.RetryAfter
		if wait <= 0 {
			wait = minWait
		}
		if policy.MaxWait > 0 && wait > policy.MaxWait {
			wait = policy.MaxWait
		}
		if policy.OnBackpressure != nil {
			policy.OnBackpressure(wait)
		}
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
}

// JobStatus fetches one job-status snapshot from its location.
func (c *Client) JobStatus(ctx context.Context, location string) (*service.Status, error) {
	var st service.Status
	if err := c.GetJSON(ctx, location, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitJob polls a job location until it reaches a terminal state, the
// context ends, or the server becomes unreachable.
func (c *Client) WaitJob(ctx context.Context, location string, poll time.Duration) (*service.Status, error) {
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.JobStatus(ctx, location)
		if err != nil {
			return nil, err
		}
		if st.State == "done" || st.State == "failed" {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
		}
	}
}

// CacheLookup asks the server's result cache for a completed result under
// key: the federation peer lookup. ok=false covers both a miss and any
// transport error — a failed lookup only costs a fresh simulation.
func (c *Client) CacheLookup(ctx context.Context, key string) (*service.UnitResult, bool) {
	var res service.UnitResult
	if err := c.GetJSON(ctx, "/v1/cache/"+key, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// ScrapeMetrics pulls the server's /metricsz snapshot (counters and gauges).
func (c *Client) ScrapeMetrics(ctx context.Context) (map[string]int64, map[string]int64, error) {
	var body struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := c.GetJSON(ctx, "/metricsz?format=json", &body); err != nil {
		return nil, nil, err
	}
	return body.Counters, body.Gauges, nil
}
