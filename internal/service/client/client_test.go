package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fleaflicker/internal/service"
)

// respWith builds an *http.Response the way a server would send it, via a
// real round trip, so header canonicalization and body framing match
// production exactly.
func respWith(t *testing.T, status int, header map[string]string, body string) *http.Response {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for k, v := range header {
			w.Header().Set(k, v)
		}
		w.WriteHeader(status)
		w.Write([]byte(body))
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestDecodeErrorRetryHintParsing(t *testing.T) {
	cases := []struct {
		name   string
		status int
		header map[string]string
		body   string
		want   time.Duration
		msg    string
	}{
		{
			// The current wire format: the hint under its canonical name.
			name:   "new name",
			status: http.StatusTooManyRequests,
			body:   `{"error":"queue full","retryAfterSeconds":3}`,
			want:   3 * time.Second,
			msg:    "queue full",
		},
		{
			// A pre-rename backend sends only the deprecated spelling.
			name:   "legacy name only",
			status: http.StatusTooManyRequests,
			body:   `{"error":"queue full","retry_after_seconds":4}`,
			want:   4 * time.Second,
			msg:    "queue full",
		},
		{
			// Both names present (the transition shape servers emit today):
			// the new name wins.
			name:   "both names, new wins",
			status: http.StatusServiceUnavailable,
			body:   `{"error":"draining","retryAfterSeconds":2,"retry_after_seconds":9}`,
			want:   2 * time.Second,
			msg:    "draining",
		},
		{
			// No body hint at all: fall back to the Retry-After header.
			name:   "header only",
			status: http.StatusTooManyRequests,
			header: map[string]string{"Retry-After": "6"},
			body:   `{"error":"queue full"}`,
			want:   6 * time.Second,
			msg:    "queue full",
		},
		{
			// Body hint beats the header when both are present.
			name:   "body hint beats header",
			status: http.StatusTooManyRequests,
			header: map[string]string{"Retry-After": "9"},
			body:   `{"error":"queue full","retryAfterSeconds":1}`,
			want:   1 * time.Second,
			msg:    "queue full",
		},
		{
			// Unparseable body: raw text becomes the message, no hint.
			name:   "non-JSON body",
			status: http.StatusInternalServerError,
			body:   "boom",
			want:   0,
			msg:    "boom",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			he := DecodeError(respWith(t, tc.status, tc.header, tc.body))
			if he.Status != tc.status {
				t.Errorf("status = %d, want %d", he.Status, tc.status)
			}
			if he.RetryAfter != tc.want {
				t.Errorf("retry hint = %v, want %v", he.RetryAfter, tc.want)
			}
			if he.Msg != tc.msg {
				t.Errorf("msg = %q, want %q", he.Msg, tc.msg)
			}
		})
	}
}

func TestHTTPErrorBackpressured(t *testing.T) {
	for status, want := range map[int]bool{
		http.StatusTooManyRequests:     true,
		http.StatusServiceUnavailable:  true,
		http.StatusBadRequest:          false,
		http.StatusInternalServerError: false,
	} {
		he := &HTTPError{Status: status}
		if he.Backpressured() != want {
			t.Errorf("Backpressured(%d) = %v, want %v", status, !want, want)
		}
	}
}

func TestNormalizeBaseURL(t *testing.T) {
	cases := map[string]string{
		"localhost:8080":         "http://localhost:8080",
		"http://localhost:8080/": "http://localhost:8080",
		" https://a.example/ ":   "https://a.example",
		"http://a.example":       "http://a.example",
	}
	for in, want := range cases {
		if got := NormalizeBaseURL(in); got != want {
			t.Errorf("NormalizeBaseURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSubmitJobRetryBackoff drives the retry loop against a server that
// backpressures twice (once with the new hint name, once legacy) before
// admitting, and checks the policy's pause cap and observer.
func TestSubmitJobRetryBackoff(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full","retryAfterSeconds":1}`))
		case 2:
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full","retry_after_seconds":1}`))
		default:
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"id":"j-1","state":"queued","location":"/v1/jobs/j-1","total_units":1}`))
		}
	}))
	defer srv.Close()

	var pauses []time.Duration
	c := New(srv.URL)
	ack, err := c.SubmitJobRetry(context.Background(), service.JobSpec{Model: "2P", Bench: "300.twolf"},
		RetryPolicy{
			MaxRetries:     5,
			MaxWait:        time.Millisecond,
			OnBackpressure: func(d time.Duration) { pauses = append(pauses, d) },
		})
	if err != nil {
		t.Fatalf("SubmitJobRetry: %v", err)
	}
	if ack.ID != "j-1" || ack.Location != "/v1/jobs/j-1" {
		t.Errorf("ack = %+v", ack)
	}
	if len(pauses) != 2 {
		t.Fatalf("observed %d backpressure pauses, want 2", len(pauses))
	}
	for i, d := range pauses {
		if d != time.Millisecond {
			t.Errorf("pause %d = %v, want the 1ms cap applied to the 1s hint", i, d)
		}
	}
}

// TestSubmitJobRetryExhausted checks the bounded-retry failure path: a
// persistently full server fails the submission instead of looping forever.
func TestSubmitJobRetryExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"draining","retryAfterSeconds":1}`))
	}))
	defer srv.Close()

	c := New(srv.URL)
	_, err := c.SubmitJobRetry(context.Background(), service.JobSpec{Model: "2P", Bench: "300.twolf"},
		RetryPolicy{MaxRetries: 2, MaxWait: time.Millisecond})
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	var he *HTTPError
	if !errors.As(err, &he) || !he.Backpressured() {
		t.Errorf("error should wrap the backpressured HTTPError, got %v", err)
	}
}
