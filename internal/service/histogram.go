package service

import (
	"sync"
	"time"
)

// histBuckets is the number of geometric latency buckets: lower bound 50µs
// with a ×1.25 ratio covers ~50µs to ~5 minutes, ample for both a single
// cached lookup and a verified full-suite sweep.
const (
	histBuckets    = 64
	histFirstBound = 50 * time.Microsecond
)

// histBounds holds the inclusive upper bound of each bucket.
var histBounds = func() [histBuckets]time.Duration {
	var b [histBuckets]time.Duration
	bound := float64(histFirstBound)
	for i := 0; i < histBuckets; i++ {
		b[i] = time.Duration(bound)
		bound *= 1.25
	}
	return b
}()

// LatencyHistogram is a fixed-size geometric-bucket latency histogram safe
// for concurrent recording — the service records one sample per finished
// job, fleaload one per request. Quantiles are approximate to one bucket
// (±12.5% of the value), plenty for p50/p95/p99 reporting.
type LatencyHistogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	max     time.Duration
	buckets [histBuckets]int64
}

// Record adds one sample.
func (h *LatencyHistogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := 0
	for idx < histBuckets-1 && d > histBounds[idx] {
		idx++
	}
	h.mu.Lock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.buckets[idx]++
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *LatencyHistogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Max returns the largest recorded sample.
func (h *LatencyHistogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Mean returns the arithmetic mean of the recorded samples.
func (h *LatencyHistogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile returns the approximate q-quantile (0 < q ≤ 1): the upper bound
// of the first bucket at which the cumulative count reaches q×total, capped
// at the observed maximum. Zero samples yield zero.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(q*float64(h.count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i]
		if cum >= target {
			if histBounds[i] > h.max {
				return h.max
			}
			return histBounds[i]
		}
	}
	return h.max
}
