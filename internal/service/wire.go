package service

import (
	"fmt"

	"fleaflicker/internal/core"
	"fleaflicker/internal/workload"
)

// This file is the unit re-export surface the cluster tier builds on: a
// coordinator expands a JobSpec with the exact same code a backend would use
// (ExpandUnits), ships each resolved unit to a backend in wire form
// (WireUnit, POST /v1/units), and the backend reconstructs a UnitSpec whose
// content-addressed Key() is byte-identical to the coordinator's — which is
// what makes cache federation sound: the same logical simulation hashes to
// the same key on every node that ever sees it.

// ExpandUnits resolves a JobSpec into its simulation units exactly as
// Submit would: validation, default filling, and server-side cartesian
// expansion of sweep grids and fuzz seed chunks.
func ExpandUnits(spec JobSpec) ([]UnitSpec, error) {
	return spec.expand()
}

// WireUnit is the JSON form of one fully resolved UnitSpec, carrying every
// field that feeds the unit's cache key (model, bench, seed, verify, the
// complete machine configuration, and the fuzz chunk, if any) plus the
// presentation-only sweep params.
type WireUnit struct {
	Model  string      `json:"model"`
	Bench  string      `json:"bench"`
	Seed   int64       `json:"seed,omitempty"`
	Verify bool        `json:"verify,omitempty"`
	Params []Param     `json:"params,omitempty"`
	Config core.Config `json:"config"`
	Fuzz   *FuzzUnit   `json:"fuzz,omitempty"`
}

// Wire converts a resolved unit to its wire form.
func (u *UnitSpec) Wire() WireUnit {
	return WireUnit{
		Model:  u.ModelName,
		Bench:  u.Bench,
		Seed:   u.Seed,
		Verify: u.Verify,
		Params: u.Params,
		Config: u.Config,
		Fuzz:   u.Fuzz,
	}
}

// Resolve reconstructs the UnitSpec, validating the fields a remote peer
// controls. The reconstruction round-trips the cache key: for any unit u,
// u.Wire().Resolve() has the same Key() as u.
func (w WireUnit) Resolve() (UnitSpec, error) {
	u := UnitSpec{
		ModelName: w.Model,
		Bench:     w.Bench,
		Seed:      w.Seed,
		Verify:    w.Verify,
		Params:    w.Params,
		Config:    w.Config,
		Fuzz:      w.Fuzz,
	}
	if w.Fuzz != nil {
		if w.Fuzz.Programs <= 0 {
			return UnitSpec{}, fmt.Errorf("%w: fuzz unit requires programs > 0", ErrInvalidSpec)
		}
		return u, nil
	}
	model, err := modelByName(w.Model)
	if err != nil {
		return UnitSpec{}, err
	}
	u.Model = model
	if _, err := workload.ByName(w.Bench); err != nil {
		return UnitSpec{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	if w.Config.MaxCycles <= 0 || w.Config.IssueWidth <= 0 || w.Config.CQSize <= 0 {
		return UnitSpec{}, fmt.Errorf("%w: max_cycles, issue_width and cq_size must be positive", ErrInvalidSpec)
	}
	return u, nil
}
