// Package service turns the one-shot simulator into a long-lived,
// multi-tenant backend: a job manager with a bounded admission queue, a
// worker pool sized from GOMAXPROCS, and a content-addressed result cache
// keyed by hash(model, benchmark, seed, resolved configuration).
//
// The serving semantics, in one place:
//
//   - Deduplication. Identical units submitted while one is executing
//     coalesce onto the single in-flight execution; identical units
//     submitted later are served from the cache. Cached and fresh results
//     are byte-identical — the simulator is deterministic and the result is
//     stored exactly once, at the execution that produced it.
//   - Backpressure. Admission is all-or-nothing per job: when the queue
//     cannot hold every fresh unit of a submission, the job is rejected
//     with a retry-after hint instead of being half-admitted.
//   - Cancellation. Every job runs under a context with a per-job timeout;
//     cancellation reaches the machines' cycle loops (checked every 4096
//     cycles) through core.Simulate.
//   - Graceful drain. Drain stops intake, lets the workers finish every
//     admitted unit, and completes in-flight jobs before returning.
//
// Everything here is cold-path admission control and reporting — the
// simulation hot path remains the machines' cycle loops. The flealint
// //flea: vocabulary therefore appears only as //flea:coldpath markers on
// the handlers; no function in this package is a //flea:hotpath.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fleaflicker/internal/core"
	"fleaflicker/internal/metrics"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/workload"
)

// ErrDraining rejects submissions once a drain has begun.
var ErrDraining = errors.New("service: draining, not accepting jobs")

// QueueFullError rejects a submission whose fresh units do not all fit in
// the admission queue. RetryAfter is the client's backoff hint.
type QueueFullError struct {
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: queue full, retry after %s", e.RetryAfter)
}

// Config sizes the manager. Zero values take defaults.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 256 units).
	QueueDepth int
	// CacheEntries bounds the completed-result cache (default 4096;
	// negative = unbounded).
	CacheEntries int
	// DefaultTimeout bounds a job that does not set timeout_ms (default
	// 120s).
	DefaultTimeout time.Duration
	// MaxUnitsPerJob rejects grids larger than this (default 1024).
	MaxUnitsPerJob int
	// MaxJobs bounds retained job records; the oldest finished jobs are
	// forgotten beyond it (default 4096).
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	} else if c.CacheEntries < 0 {
		c.CacheEntries = 0 // unbounded
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 120 * time.Second
	}
	if c.MaxUnitsPerJob <= 0 {
		c.MaxUnitsPerJob = 1024
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	return c
}

// Runner executes one resolved unit. The default runs core.Simulate; tests
// substitute stubs to control timing and count executions.
type Runner func(ctx context.Context, u UnitSpec) (*stats.Run, error)

// Option configures a Manager.
type Option func(*Manager)

// WithRunner replaces the simulation runner (test seam).
func WithRunner(r Runner) Option {
	return func(m *Manager) { m.runner = r }
}

// Manager is the serving subsystem: admission, deduplication, execution
// and reporting for simulation jobs.
type Manager struct {
	cfg        Config
	reg        *metrics.Registry
	met        *serviceMetrics
	cache      *resultCache
	queue      *taskQueue
	runner     Runner
	fuzzRunner FuzzRunner
	latency    *LatencyHistogram
	started    time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workerWG   sync.WaitGroup
	jobWG      sync.WaitGroup

	// submitMu serializes submissions (and the drain flag) so that a
	// batch's cache claims and its all-or-nothing enqueue are atomic with
	// respect to other submissions.
	submitMu sync.Mutex
	draining bool //flea:guardedby(submitMu)

	mu sync.Mutex // guards jobs / jobOrder / nextID
	//flea:guardedby(mu)
	jobs map[string]*Job
	//flea:guardedby(mu)
	jobOrder []string
	//flea:guardedby(mu)
	nextID uint64
}

// New builds a manager and starts its worker pool.
func New(cfg Config, opts ...Option) *Manager {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	met := newServiceMetrics(reg)
	m := &Manager{
		cfg:        cfg,
		reg:        reg,
		met:        met,
		cache:      newResultCache(cfg.CacheEntries, met),
		queue:      newTaskQueue(cfg.QueueDepth, met.queueDepth),
		runner:     defaultRunner,
		fuzzRunner: defaultFuzzRunner,
		latency:    &LatencyHistogram{},
		started:    time.Now(),
		jobs:       make(map[string]*Job),
	}
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background())
	for _, opt := range opts {
		opt(m)
	}
	for i := 0; i < cfg.Workers; i++ {
		m.workerWG.Add(1)
		go m.worker()
	}
	return m
}

// Registry exposes the service metrics registry (rendered by /metricsz).
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// Latency exposes the job-latency histogram.
func (m *Manager) Latency() *LatencyHistogram { return m.latency }

// Uptime reports how long the manager has been serving.
func (m *Manager) Uptime() time.Duration { return time.Since(m.started) }

// Draining reports whether a drain has begun.
func (m *Manager) Draining() bool {
	m.submitMu.Lock()
	defer m.submitMu.Unlock()
	return m.draining
}

// QueueDepth returns the current number of admitted-but-unstarted units.
func (m *Manager) QueueDepth() int { return m.queue.depthNow() }

// CachedResult returns the completed result stored under key, if any —
// the cache-federation peer-lookup hook behind GET /v1/cache/{key}. It
// never claims the key or triggers an execution.
func (m *Manager) CachedResult(key string) (*UnitResult, bool) {
	return m.cache.peek(key)
}

// defaultRunner simulates one unit through the library façade.
func defaultRunner(ctx context.Context, u UnitSpec) (*stats.Run, error) {
	b, err := workload.ByName(u.Bench)
	if err != nil {
		return nil, err
	}
	opts := []core.Option{core.WithConfig(u.Config)}
	if u.Verify {
		opts = append(opts, core.WithVerify())
	}
	return core.Simulate(ctx, u.Model, b.Program(), opts...)
}

// Submit validates and admits one job: the spec is expanded server-side
// into units, each unit resolves against the cache (hit, coalesce, or
// claim), and every claimed unit is enqueued all-or-nothing. The returned
// job is already collecting; watch Done(), Status() or an SSE stream.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	units, err := spec.expand()
	if err != nil {
		return nil, err
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("%w: spec expands to zero units", ErrInvalidSpec)
	}
	return m.submitUnits(spec, units, spec.TimeoutMS)
}

// SubmitUnits admits a batch of already-resolved units (the POST /v1/units
// path a cluster coordinator dispatches over), with the same all-or-nothing
// admission, caching and coalescing semantics as Submit.
func (m *Manager) SubmitUnits(units []UnitSpec, timeoutMS int64) (*Job, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("%w: no units", ErrInvalidSpec)
	}
	return m.submitUnits(JobSpec{TimeoutMS: timeoutMS}, units, timeoutMS)
}

// submitUnits is the shared admission tail of Submit and SubmitUnits.
func (m *Manager) submitUnits(spec JobSpec, units []UnitSpec, timeoutMS int64) (*Job, error) {
	if len(units) > m.cfg.MaxUnitsPerJob {
		return nil, fmt.Errorf("%w: %d units exceeds the per-job limit of %d",
			ErrInvalidSpec, len(units), m.cfg.MaxUnitsPerJob)
	}
	timeout := m.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}

	m.submitMu.Lock()
	defer m.submitMu.Unlock()
	if m.draining {
		m.met.jobsRejected.Inc()
		return nil, ErrDraining
	}

	job := &Job{
		spec:           spec,
		units:          units,
		entries:        make([]*entry, len(units)),
		cachedAtSubmit: make([]bool, len(units)),
		created:        time.Now(),
		timeout:        timeout,
		done:           make(chan struct{}),
	}
	job.ctx, job.cancel = context.WithTimeout(m.baseCtx, timeout)

	var fresh []*task
	for i := range units {
		e, claimed := m.cache.acquire(units[i].Key())
		job.entries[i] = e
		if claimed {
			fresh = append(fresh, &task{spec: units[i], entry: e, ctx: job.ctx})
		} else {
			job.cachedAtSubmit[i] = true
		}
	}
	if len(fresh) > 0 && !m.queue.tryPutAll(fresh) {
		for _, t := range fresh {
			m.cache.abandon(t.entry)
		}
		job.cancel()
		m.met.jobsRejected.Inc()
		return nil, &QueueFullError{RetryAfter: time.Second}
	}

	m.mu.Lock()
	m.nextID++
	job.id = fmt.Sprintf("j-%06d-%.8s", m.nextID, units[0].Key())
	m.jobs[job.id] = job
	m.jobOrder = append(m.jobOrder, job.id)
	m.forgetOldJobsLocked()
	m.mu.Unlock()

	m.met.jobsSubmitted.Inc()
	m.met.jobsActive.Add(1)
	m.jobWG.Add(1)
	go m.collect(job)
	return job, nil
}

// forgetOldJobsLocked drops the oldest finished job records beyond MaxJobs.
// Active jobs are never dropped. Caller holds m.mu.
//
//flea:locked(mu)
func (m *Manager) forgetOldJobsLocked() {
	for len(m.jobOrder) > m.cfg.MaxJobs {
		dropped := false
		for i, id := range m.jobOrder {
			j := m.jobs[id]
			if s := j.State(); s == JobDone || s == JobFailed {
				delete(m.jobs, id)
				m.jobOrder = append(m.jobOrder[:i], m.jobOrder[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			return // everything retained is still active
		}
	}
}

// Job returns the job registered under id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// collect waits for the job's units, publishes progress, and finalizes the
// job record and service metrics.
func (m *Manager) collect(job *Job) {
	defer m.jobWG.Done()

	job.mu.Lock()
	job.state = JobRunning
	job.mu.Unlock()

	finishedUnits := make(chan int, len(job.units))
	for i := range job.entries {
		go func(i int) {
			<-job.entries[i].done
			finishedUnits <- i
		}(i)
	}
	for n := 0; n < len(job.units); n++ {
		i := <-finishedUnits
		e := job.entries[i]
		job.mu.Lock()
		job.completed++
		ev := ProgressEvent{
			JobID:     job.id,
			Completed: job.completed,
			Total:     len(job.units),
			Key:       e.key,
		}
		if e.err != nil {
			job.unitErrs = append(job.unitErrs, fmt.Errorf("%s: %w", unitLabel(&job.units[i]), e.err))
			ev.Err = e.err.Error()
		}
		job.mu.Unlock()
		job.publish(ev)
	}

	job.cancel()
	job.mu.Lock()
	if len(job.unitErrs) > 0 {
		job.state = JobFailed
	} else {
		job.state = JobDone
	}
	job.finished = time.Now()
	terminal := ProgressEvent{
		JobID:     job.id,
		Completed: job.completed,
		Total:     len(job.units),
		State:     job.state.String(),
	}
	failed := job.state == JobFailed
	elapsed := job.finished.Sub(job.created)
	job.mu.Unlock()

	m.latency.Record(elapsed)
	if failed {
		m.met.jobsFailed.Inc()
	} else {
		m.met.jobsCompleted.Inc()
	}
	m.met.jobsActive.Add(-1)
	job.publish(terminal)
	close(job.done)
}

// worker executes queued units until the queue closes and drains. The loop
// needs no context poll of its own: get blocks on the queue's condition
// variable and returns false once the queue is closed and drained, and the
// simulations themselves run under each task's per-job context.
func (m *Manager) worker() {
	defer m.workerWG.Done()
	//flea:bounded closed-queue handshake: get returns false after close+drain
	for {
		t, ok := m.queue.get()
		if !ok {
			return
		}
		m.met.workersBusy.Add(1)
		start := time.Now()
		res := &UnitResult{Key: t.entry.key}
		var err error
		if t.spec.Fuzz != nil {
			res.Fuzz, err = m.fuzzRunner(t.ctx, t.spec)
		} else {
			res.Run, err = m.runner(t.ctx, t.spec)
		}
		res.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
		m.met.workersBusy.Add(-1)
		m.met.unitsExecuted.Inc()
		if err != nil {
			m.met.unitErrors.Inc()
			m.cache.complete(t.entry, nil, err)
			continue
		}
		m.cache.complete(t.entry, res, nil)
	}
}

// Drain gracefully shuts the manager down: intake stops (Submit returns
// ErrDraining), the workers finish every admitted unit, and every in-flight
// job reaches a terminal state before Drain returns. When ctx expires
// first, the remaining simulations are cancelled (their jobs fail with the
// cancellation error) and Drain returns ctx.Err after they unwind.
func (m *Manager) Drain(ctx context.Context) error {
	m.submitMu.Lock()
	m.draining = true
	m.submitMu.Unlock()
	m.queue.close()

	idle := make(chan struct{})
	go func() {
		m.workerWG.Wait()
		m.jobWG.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		m.baseCancel()
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-idle
		return ctx.Err()
	}
}
