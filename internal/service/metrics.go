package service

import "fleaflicker/internal/metrics"

// Canonical service metric names. Every counter the serving layer bumps is
// registered under one of these constants (statname enforces uniqueness and
// constant registration), in the same registry /metricsz renders.
const (
	MetricJobsSubmitted  = "service.jobs.submitted"
	MetricJobsCompleted  = "service.jobs.completed"
	MetricJobsFailed     = "service.jobs.failed"
	MetricJobsRejected   = "service.jobs.rejected"
	MetricUnitsExecuted  = "service.units.executed"
	MetricUnitErrors     = "service.units.errors"
	MetricCacheHits      = "service.cache.hits"
	MetricCacheMisses    = "service.cache.misses"
	MetricCacheCoalesced = "service.cache.coalesced"
	MetricCacheEvictions = "service.cache.evictions"
	// MetricCachePeerLookups / MetricCachePeerHits count GET /v1/cache/{key}
	// federation probes served by this backend (hits = a result another node
	// did not have to recompute).
	MetricCachePeerLookups = "service.cache.peer_lookups"
	MetricCachePeerHits    = "service.cache.peer_hits"
	GaugeQueueDepth        = "service.queue.depth"
	GaugeWorkersBusy       = "service.workers.busy"
	GaugeJobsActive        = "service.jobs.active"
	GaugeCacheEntries      = "service.cache.entries"
	// GaugeCacheHitRatio is the served-without-fresh-run ratio, in permille
	// ((hits+coalesced)*1000 / lookups), kept current on every cache acquire
	// so /metricsz and /clusterz read it without scraping logs.
	GaugeCacheHitRatio = "service.cache.hit_ratio_permille"
)

// Derived latency metric names rendered by /metricsz (quantiles over the
// job-latency histogram; not registry counters).
const (
	MetricJobLatencyP50  = "service.jobs.latency.p50_ms"
	MetricJobLatencyP95  = "service.jobs.latency.p95_ms"
	MetricJobLatencyP99  = "service.jobs.latency.p99_ms"
	MetricJobLatencyMax  = "service.jobs.latency.max_ms"
	MetricJobLatencyMean = "service.jobs.latency.mean_ms"
)

// serviceMetrics holds pre-resolved handles into the manager's registry —
// shared (atomic) variants, because the worker pool, the submission path and
// the HTTP handlers all bump them concurrently.
type serviceMetrics struct {
	jobsSubmitted *metrics.SharedCounter
	jobsCompleted *metrics.SharedCounter
	jobsFailed    *metrics.SharedCounter
	jobsRejected  *metrics.SharedCounter

	unitsExecuted *metrics.SharedCounter
	unitErrors    *metrics.SharedCounter

	cacheHits        *metrics.SharedCounter
	cacheMisses      *metrics.SharedCounter
	cacheCoalesced   *metrics.SharedCounter
	cacheEvictions   *metrics.SharedCounter
	cachePeerLookups *metrics.SharedCounter
	cachePeerHits    *metrics.SharedCounter

	queueDepth    *metrics.SharedGauge
	workersBusy   *metrics.SharedGauge
	jobsActive    *metrics.SharedGauge
	cacheEntries  *metrics.SharedGauge
	cacheHitRatio *metrics.SharedGauge
}

// updateHitRatio recomputes the permille hit-ratio gauge from the cache
// counters. Called after every counted cache acquire.
func (sm *serviceMetrics) updateHitRatio() {
	served := sm.cacheHits.Value() + sm.cacheCoalesced.Value()
	total := served + sm.cacheMisses.Value()
	if total > 0 {
		sm.cacheHitRatio.Set(served * 1000 / total)
	}
}

func newServiceMetrics(reg *metrics.Registry) *serviceMetrics {
	return &serviceMetrics{
		jobsSubmitted:    reg.SharedCounter(MetricJobsSubmitted),
		jobsCompleted:    reg.SharedCounter(MetricJobsCompleted),
		jobsFailed:       reg.SharedCounter(MetricJobsFailed),
		jobsRejected:     reg.SharedCounter(MetricJobsRejected),
		unitsExecuted:    reg.SharedCounter(MetricUnitsExecuted),
		unitErrors:       reg.SharedCounter(MetricUnitErrors),
		cacheHits:        reg.SharedCounter(MetricCacheHits),
		cacheMisses:      reg.SharedCounter(MetricCacheMisses),
		cacheCoalesced:   reg.SharedCounter(MetricCacheCoalesced),
		cacheEvictions:   reg.SharedCounter(MetricCacheEvictions),
		cachePeerLookups: reg.SharedCounter(MetricCachePeerLookups),
		cachePeerHits:    reg.SharedCounter(MetricCachePeerHits),
		queueDepth:       reg.SharedGauge(GaugeQueueDepth),
		workersBusy:      reg.SharedGauge(GaugeWorkersBusy),
		jobsActive:       reg.SharedGauge(GaugeJobsActive),
		cacheEntries:     reg.SharedGauge(GaugeCacheEntries),
		cacheHitRatio:    reg.SharedGauge(GaugeCacheHitRatio),
	}
}
