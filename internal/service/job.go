package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// JobState is a job's lifecycle phase.
type JobState int

// Job lifecycle: Queued (admitted), Running (units executing or awaited),
// then Done or Failed.
const (
	JobQueued JobState = iota
	JobRunning
	JobDone
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	}
	return "?"
}

// errAbandoned marks a cache entry rolled back by a rejected submission; it
// never reaches a client (the submission that claimed it was rejected, and
// no other submission can have attached — see resultCache.abandon).
var errAbandoned = errors.New("service: unit abandoned by rejected submission")

// ProgressEvent is one SSE frame of a job's progress stream.
type ProgressEvent struct {
	JobID     string `json:"job_id"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
	// Key identifies the unit that just finished (empty on snapshot and
	// terminal frames).
	Key string `json:"key,omitempty"`
	// Err carries the unit's failure, if it failed.
	Err string `json:"error,omitempty"`
	// State is set on the terminal frame ("done" / "failed").
	State string `json:"state,omitempty"`
}

// Job is one admitted submission: an ordered set of units resolving against
// the cache and the worker pool.
type Job struct {
	id      string
	spec    JobSpec
	units   []UnitSpec
	entries []*entry
	// cachedAtSubmit marks units that this job did not have to enqueue:
	// either served from a completed cache entry or coalesced onto another
	// job's in-flight execution.
	cachedAtSubmit []bool
	created        time.Time
	timeout        time.Duration

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu sync.Mutex
	//flea:guardedby(mu)
	state JobState
	//flea:guardedby(mu)
	completed int
	//flea:guardedby(mu)
	unitErrs []error
	//flea:guardedby(mu)
	finished time.Time
	//flea:guardedby(mu)
	subs []chan ProgressEvent
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's joined unit errors once terminal; nil while running
// or on success.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return errors.Join(j.unitErrs...)
}

// CachedUnits returns how many of the job's units were resolved without a
// fresh execution on its behalf (cache hits plus in-flight coalescing).
func (j *Job) CachedUnits() int {
	n := 0
	for _, c := range j.cachedAtSubmit {
		if c {
			n++
		}
	}
	return n
}

// UnitStatus is the reporting view of one unit within a job.
type UnitStatus struct {
	Key    string  `json:"key"`
	Model  string  `json:"model"`
	Bench  string  `json:"bench"`
	Params []Param `json:"params,omitempty"`
	// Cached reports that this job did not trigger a fresh execution for
	// the unit (completed cache hit or coalesced onto one in flight).
	Cached bool   `json:"cached"`
	State  string `json:"state"` // "pending", "done" or "failed"
	Error  string `json:"error,omitempty"`
	// Result is the cached-or-fresh simulation outcome; identical bytes
	// regardless of which job executed it.
	Result *UnitResult `json:"result,omitempty"`
}

// Status is the full reporting view of a job (the GET /v1/jobs/{id} body).
type Status struct {
	ID             string       `json:"id"`
	State          string       `json:"state"`
	Created        time.Time    `json:"created"`
	ElapsedMS      float64      `json:"elapsed_ms"`
	TotalUnits     int          `json:"total_units"`
	CompletedUnits int          `json:"completed_units"`
	CachedUnits    int          `json:"cached_units"`
	Error          string       `json:"error,omitempty"`
	Units          []UnitStatus `json:"units"`
}

// Status snapshots the job for reporting. Unit results appear as soon as
// the individual unit completes, so pollers watch partial progress.
func (j *Job) Status() Status {
	j.mu.Lock()
	state := j.state
	completed := j.completed
	finished := j.finished
	errText := ""
	if err := errors.Join(j.unitErrs...); err != nil {
		errText = err.Error()
	}
	j.mu.Unlock()

	elapsed := time.Since(j.created)
	if !finished.IsZero() {
		elapsed = finished.Sub(j.created)
	}
	st := Status{
		ID:             j.id,
		State:          state.String(),
		Created:        j.created,
		ElapsedMS:      float64(elapsed) / float64(time.Millisecond),
		TotalUnits:     len(j.units),
		CompletedUnits: completed,
		CachedUnits:    j.CachedUnits(),
		Error:          errText,
		Units:          make([]UnitStatus, len(j.units)),
	}
	for i := range j.units {
		u := &j.units[i]
		us := UnitStatus{
			Key:    j.entries[i].key,
			Model:  u.ModelName,
			Bench:  u.Bench,
			Params: u.Params,
			Cached: j.cachedAtSubmit[i],
			State:  "pending",
		}
		e := j.entries[i]
		if e.completed() {
			if e.err != nil {
				us.State = "failed"
				us.Error = e.err.Error()
			} else {
				us.State = "done"
				us.Result = e.result
			}
		}
		st.Units[i] = us
	}
	return st
}

// subscribe registers a progress listener and returns its channel plus a
// snapshot event reflecting progress so far. The channel is buffered to
// hold every remaining frame, so emitters never block.
func (j *Job) subscribe() (<-chan ProgressEvent, ProgressEvent, func()) {
	ch := make(chan ProgressEvent, len(j.units)+2)
	j.mu.Lock()
	snapshot := ProgressEvent{JobID: j.id, Completed: j.completed, Total: len(j.units)}
	if j.state == JobDone || j.state == JobFailed {
		snapshot.State = j.state.String()
	}
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs[i] = j.subs[len(j.subs)-1]
				j.subs = j.subs[:len(j.subs)-1]
				break
			}
		}
	}
	return ch, snapshot, cancel
}

// publish fans one event out to the subscribers. Buffers are sized for the
// full stream; a listener that somehow stopped draining just misses frames
// rather than blocking the job.
func (j *Job) publish(ev ProgressEvent) {
	j.mu.Lock()
	subs := append([]chan ProgressEvent(nil), j.subs...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// unitLabel renders a unit for error messages.
func unitLabel(u *UnitSpec) string {
	if len(u.Params) == 0 {
		return fmt.Sprintf("%s/%s", u.Bench, u.ModelName)
	}
	s := fmt.Sprintf("%s/%s", u.Bench, u.ModelName)
	for _, p := range u.Params {
		s += fmt.Sprintf("/%s=%d", p.Name, p.Value)
	}
	return s
}
