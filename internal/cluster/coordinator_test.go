package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fleaflicker/internal/service"
	"fleaflicker/internal/stats"
)

// fastProbes is the test probe configuration: mark-downs land within ~50ms
// of a kill instead of seconds.
func fastProbes(c Config) Config {
	c.ProbeInterval = 25 * time.Millisecond
	c.ProbeTimeout = 250 * time.Millisecond
	c.FailThreshold = 2
	c.UpThreshold = 2
	return c
}

// stubRunner fabricates a deterministic result after an optional pause and
// counts real executions across all backends.
func stubRunner(executions *atomic.Int64, pause time.Duration) service.Option {
	return service.WithRunner(func(ctx context.Context, u service.UnitSpec) (*stats.Run, error) {
		executions.Add(1)
		if pause > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(pause):
			}
		}
		return &stats.Run{
			Benchmark:    u.Bench,
			Model:        u.ModelName,
			Cycles:       1000 + int64(u.Config.CQSize),
			Instructions: 500,
		}, nil
	})
}

// waitClusterDone fails the test when the job does not reach a terminal
// state soon.
func waitClusterDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("cluster job %s did not finish; state=%v", j.ID(), j.State())
	}
}

// sweepSpec expands to n distinct units (distinct CQ sizes → distinct keys).
func sweepSpec(n int) service.JobSpec {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 16 + i
	}
	return service.JobSpec{
		Kind: "sweep", Model: "2P", Bench: "300.twolf",
		Sweep: &service.SweepAxes{CQSizes: sizes},
	}
}

// TestClusterBackendDownAtSubmit kills one backend before any submission:
// units whose preferred owner is dead must re-route to the failover backend
// and every job must still complete.
func TestClusterBackendDownAtSubmit(t *testing.T) {
	var executions atomic.Int64
	l, err := StartLocal(3, service.Config{Workers: 2}, fastProbes(Config{}),
		stubRunner(&executions, 0))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()
	l.KillBackend(0)

	job, err := l.Coordinator.Submit(sweepSpec(12))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitClusterDone(t, job)
	if job.State() != service.JobDone {
		t.Fatalf("job state = %v, want done (err: %v)", job.State(), job.Err())
	}
	st := job.Status()
	for _, u := range st.Units {
		if u.State != "done" || u.Result == nil {
			t.Fatalf("unit %s state=%q, want done with result", u.Key, u.State)
		}
	}
	if got := executions.Load(); got != 12 {
		t.Fatalf("executions = %d, want 12 (each unit exactly once)", got)
	}
}

// TestClusterAllBackendsDown checks the terminal refusal: once the prober
// has marked every backend down, submissions fail fast with ErrNoBackends.
func TestClusterAllBackendsDown(t *testing.T) {
	var executions atomic.Int64
	l, err := StartLocal(2, service.Config{Workers: 1}, fastProbes(Config{}),
		stubRunner(&executions, 0))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()
	l.KillBackend(0)
	l.KillBackend(1)

	deadline := time.Now().Add(10 * time.Second)
	for l.Coordinator.LiveBackends() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("backends never marked down; live=%d", l.Coordinator.LiveBackends())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := l.Coordinator.Submit(sweepSpec(4)); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("submit with all backends down: err = %v, want ErrNoBackends", err)
	}
}

// TestClusterBackendDiesMidJob holds the first executions open, kills a
// backend with units in flight, and checks the job still completes with
// every unit stored exactly once in the federated cache.
func TestClusterBackendDiesMidJob(t *testing.T) {
	var executions atomic.Int64
	l, err := StartLocal(3, service.Config{Workers: 1}, fastProbes(Config{}),
		stubRunner(&executions, 60*time.Millisecond))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()

	job, err := l.Coordinator.Submit(sweepSpec(18))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	time.Sleep(40 * time.Millisecond) // let units reach all three backends
	l.KillBackend(1)
	waitClusterDone(t, job)

	if job.State() != service.JobDone {
		t.Fatalf("job state = %v, want done (err: %v)", job.State(), job.Err())
	}
	met := l.Coordinator.met
	if met.unitsRerouted.Value() == 0 {
		t.Fatalf("no units rerouted despite a mid-job kill")
	}
	// The duplicate-store invariant: every unit's entry sealed by exactly
	// one writer; completions of units both executed on the dead backend and
	// re-run elsewhere are dropped, never stored twice.
	if done := met.unitsCompleted.Value(); done != 18 {
		t.Fatalf("units completed = %d, want 18", done)
	}
	for _, u := range job.Status().Units {
		if u.State != "done" || u.Result == nil {
			t.Fatalf("unit %s state=%q, want done with result", u.Key, u.State)
		}
	}
}

// TestClusterStealVsComplete drives the steal race: single-slot backends
// with skewed consistent-hash queues force idle backends to steal from the
// straggler's tail while its own slot pops the head. The pop and the steal
// share one lock acquisition, so every unit must execute exactly once.
func TestClusterStealVsComplete(t *testing.T) {
	var executions atomic.Int64
	l, err := StartLocal(3, service.Config{Workers: 1}, fastProbes(Config{
		SlotsPerBackend:   1,
		DisablePeerLookup: true,
	}), stubRunner(&executions, 3*time.Millisecond))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()

	const units = 40
	job, err := l.Coordinator.Submit(sweepSpec(units))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitClusterDone(t, job)
	if job.State() != service.JobDone {
		t.Fatalf("job state = %v, want done (err: %v)", job.State(), job.Err())
	}
	if got := executions.Load(); got != units {
		t.Fatalf("executions = %d, want %d (a stolen unit must never run twice)", got, units)
	}
	met := l.Coordinator.met
	if met.unitsStolen.Value() == 0 {
		t.Fatalf("no steals despite single-slot backends and a %d-unit skewed load", units)
	}
	if met.fedDupDrops.Value() != 0 {
		t.Fatalf("duplicate drops = %d, want 0 (no unit completed twice)", met.fedDupDrops.Value())
	}
}

// TestClusterFederationPeerHit seeds a result on a non-owner backend and
// checks the coordinator finds it through the peer lookup instead of
// scheduling a fresh simulation on the owner.
func TestClusterFederationPeerHit(t *testing.T) {
	var executions atomic.Int64
	l, err := StartLocal(3, service.Config{Workers: 1}, fastProbes(Config{}),
		stubRunner(&executions, 0))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()

	spec := service.JobSpec{Model: "2P", Bench: "300.twolf", Seed: 42}
	units, err := service.ExpandUnits(spec)
	if err != nil || len(units) != 1 {
		t.Fatalf("expand: %v (%d units)", err, len(units))
	}
	key := units[0].Key()
	prefs := l.Coordinator.ring.preference(key)

	// Execute the unit directly on the second-preference backend, bypassing
	// the coordinator — the position a steal or a past membership change
	// would leave the result in.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	seeder := l.Coordinator.clients[prefs[1]]
	loc, err := seeder.submitUnit(ctx, units[0].Wire(), 0)
	if err != nil {
		t.Fatalf("seeding %s: %v", seeder.id, err)
	}
	if _, err := seeder.waitJob(ctx, loc, 2*time.Millisecond); err != nil {
		t.Fatalf("seed job: %v", err)
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("seed executions = %d, want 1", got)
	}

	job, err := l.Coordinator.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitClusterDone(t, job)
	if job.State() != service.JobDone {
		t.Fatalf("job state = %v, want done (err: %v)", job.State(), job.Err())
	}
	met := l.Coordinator.met
	if met.peerHits.Value() == 0 {
		t.Fatalf("peer hits = 0, want >0 (result was cached on %s)", seeder.id)
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (peer hit must not re-execute)", got)
	}
	st := job.Status()
	if st.Units[0].Result == nil || st.Units[0].Result.Key != key {
		t.Fatalf("unit result missing or wrong key: %+v", st.Units[0].Result)
	}
	// The per-backend accounting must not book the peer hit as a simulation:
	// executed[] counts real runs only, peer_served[] the federation serves.
	// taskDone runs on the slot after the entry seals, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var simulated, served int64
		for _, b := range l.Coordinator.sched.snapshot() {
			simulated += b.Executed
			served += b.PeerServed
		}
		if simulated != 0 {
			t.Fatalf("snapshot executed = %d, want 0 (peer hit booked as a simulation)", simulated)
		}
		if served == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot peer_served = %d, want 1", served)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClusterBackpressureRetries fills tiny backend queues and checks the
// coordinator absorbs 429s with the machine-readable retry hint instead of
// failing units.
func TestClusterBackpressureRetries(t *testing.T) {
	var executions atomic.Int64
	l, err := StartLocal(2, service.Config{Workers: 1, QueueDepth: 2},
		fastProbes(Config{SlotsPerBackend: 4, MaxBackoff: 20 * time.Millisecond, DisablePeerLookup: true}),
		stubRunner(&executions, 5*time.Millisecond))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()

	const units = 24
	job, err := l.Coordinator.Submit(sweepSpec(units))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitClusterDone(t, job)
	if job.State() != service.JobDone {
		t.Fatalf("job state = %v, want done (err: %v)", job.State(), job.Err())
	}
	if got := executions.Load(); got != units {
		t.Fatalf("executions = %d, want %d", got, units)
	}
}

// TestClusterDrainRejectsNewJobs checks the drain protocol mirrors the
// backend tier's: intake stops, admitted work finishes.
func TestClusterDrainRejectsNewJobs(t *testing.T) {
	var executions atomic.Int64
	l, err := StartLocal(2, service.Config{Workers: 1}, fastProbes(Config{}),
		stubRunner(&executions, 10*time.Millisecond))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()

	job, err := l.Coordinator.Submit(sweepSpec(6))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	drained := make(chan error, 1)
	go func() { drained <- l.Coordinator.Drain(context.Background()) }()

	deadline := time.Now().Add(5 * time.Second)
	for !l.Coordinator.Draining() {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := l.Coordinator.Submit(sweepSpec(1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitClusterDone(t, job)
	if job.State() != service.JobDone {
		t.Fatalf("admitted job state after drain = %v, want done (err: %v)", job.State(), job.Err())
	}
}

// TestClusterStatusWireShape checks a cluster job round-trips through the
// backend-compatible status JSON fleaload parses.
func TestClusterStatusWireShape(t *testing.T) {
	var executions atomic.Int64
	l, err := StartLocal(2, service.Config{Workers: 1}, fastProbes(Config{}),
		stubRunner(&executions, 0))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()

	job, err := l.Coordinator.Submit(sweepSpec(3))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitClusterDone(t, job)
	st := job.Status()
	if st.State != "done" || st.TotalUnits != 3 || st.CompletedUnits != 3 {
		t.Fatalf("status = %+v, want done 3/3", st)
	}
	for i, u := range st.Units {
		if u.Key == "" || u.Model != "2P" || u.Bench != "300.twolf" {
			t.Fatalf("unit %d malformed: %+v", i, u)
		}
		if u.Result == nil || u.Result.Run == nil {
			t.Fatalf("unit %d missing result", i)
		}
		want := fmt.Sprintf("cq_size=%d", 16+i)
		found := false
		for _, p := range u.Params {
			if fmt.Sprintf("%s=%v", p.Name, p.Value) == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("unit %d params %v missing %s", i, u.Params, want)
		}
	}
}

// TestClusterDrainTimeoutSealsQueuedUnits expires the drain deadline while
// units are still queued coordinator-side: Drain must fail them — sealing
// their federated entries so every job's collector finishes — and return
// ctx.Err instead of deadlocking on <-idle forever.
func TestClusterDrainTimeoutSealsQueuedUnits(t *testing.T) {
	var executions atomic.Int64
	l, err := StartLocal(1, service.Config{Workers: 1},
		fastProbes(Config{SlotsPerBackend: 1}),
		stubRunner(&executions, time.Second))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()

	// One slot, one worker, 1s per unit: at the 100ms drain deadline one
	// unit is in flight and the rest are still queued coordinator-side.
	job, err := l.Coordinator.Submit(sweepSpec(6))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- l.Coordinator.Drain(ctx) }()
	select {
	case err := <-drained:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("drain err = %v, want deadline exceeded", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Drain deadlocked past its deadline")
	}
	waitClusterDone(t, job)
	if job.State() != service.JobFailed {
		t.Fatalf("job state after timed-out drain = %v, want failed", job.State())
	}
	if err := job.Err(); err == nil || !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		t.Fatalf("job err = %v, want a cancellation", err)
	}
}

// TestClusterBackpressureCapFailsUnit bounds the 429 retry loop: against a
// persistently full backend a unit must fail — its job reaching a terminal
// state — instead of requeueing forever.
func TestClusterBackpressureCapFailsUnit(t *testing.T) {
	var executions atomic.Int64
	l, err := StartLocal(1, service.Config{Workers: 1, QueueDepth: 1},
		fastProbes(Config{
			SlotsPerBackend:    4,
			MaxBackoff:         5 * time.Millisecond,
			MaxBackoffsPerUnit: 2,
			DisablePeerLookup:  true,
		}),
		stubRunner(&executions, 50*time.Millisecond))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()

	// 12 units against a 1-deep, 50ms-per-unit backend: a 2-backoff budget
	// (~10ms) cannot outlast the ~600ms of queued work, so some units must
	// exhaust their retries.
	job, err := l.Coordinator.Submit(sweepSpec(12))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitClusterDone(t, job)
	if job.State() != service.JobFailed {
		t.Fatalf("job state = %v, want failed (backpressure retries must be bounded)", job.State())
	}
	if msg := job.Err().Error(); !strings.Contains(msg, "backpressured") {
		t.Fatalf("job err = %q, want a backpressure-exhausted failure", msg)
	}
}
