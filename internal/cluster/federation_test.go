package cluster

import (
	"errors"
	"sync"
	"testing"

	"fleaflicker/internal/metrics"
	"fleaflicker/internal/service"
)

func newTestFed() (*fedCache, *clusterMetrics) {
	met := newClusterMetrics(metrics.NewRegistry())
	return newFedCache(met), met
}

// TestFedCacheCoalesces checks N acquisitions of one key yield one claim.
func TestFedCacheCoalesces(t *testing.T) {
	f, met := newTestFed()
	e0, claimed := f.acquire("k")
	if !claimed {
		t.Fatalf("first acquire did not claim")
	}
	for i := 0; i < 5; i++ {
		e, claimed := f.acquire("k")
		if claimed {
			t.Fatalf("acquire %d claimed an in-flight key", i)
		}
		if e != e0 {
			t.Fatalf("acquire %d returned a different entry", i)
		}
	}
	if got := met.fedCoalesced.Value(); got != 5 {
		t.Fatalf("coalesced = %d, want 5", got)
	}
	f.complete(e0, &service.UnitResult{Key: "k"}, "b0", nil)
	if _, claimed := f.acquire("k"); claimed {
		t.Fatalf("acquire after completion claimed; want hit")
	}
	if got := met.fedHits.Value(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
}

// TestFedCacheFirstWriterWins is the duplicate-store invariant: when a
// stolen or re-routed unit finishes twice, the first completion seals the
// entry and the second is dropped and counted — the stored result and
// origin never change.
func TestFedCacheFirstWriterWins(t *testing.T) {
	f, met := newTestFed()
	e, _ := f.acquire("k")

	resA := &service.UnitResult{Key: "k", DurationMS: 1}
	resB := &service.UnitResult{Key: "k", DurationMS: 2}
	var wg sync.WaitGroup
	wins := make(chan string, 2)
	for _, w := range []struct {
		res    *service.UnitResult
		origin string
	}{{resA, "b0"}, {resB, "b1"}} {
		wg.Add(1)
		go func(res *service.UnitResult, origin string) {
			defer wg.Done()
			if f.complete(e, res, origin, nil) {
				wins <- origin
			}
		}(w.res, w.origin)
	}
	wg.Wait()
	close(wins)
	var winners []string
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("winners = %v, want exactly one", winners)
	}
	if got := met.fedDupDrops.Value(); got != 1 {
		t.Fatalf("duplicate_drops = %d, want 1", got)
	}
	<-e.done
	if e.origin != winners[0] {
		t.Fatalf("stored origin %q != winning origin %q", e.origin, winners[0])
	}
	if (e.origin == "b0") != (e.result == resA) {
		t.Fatalf("stored result does not match winning origin %q", e.origin)
	}
}

// TestFedCacheErrorRetries checks an error completion removes the entry so
// a later submission retries the key fresh.
func TestFedCacheErrorRetries(t *testing.T) {
	f, _ := newTestFed()
	e, _ := f.acquire("k")
	f.complete(e, nil, "", errors.New("backend exploded"))
	if e.err == nil {
		t.Fatalf("entry error not recorded")
	}
	if _, claimed := f.acquire("k"); !claimed {
		t.Fatalf("key not reclaimable after error completion")
	}
}

// TestFedCacheAbandon checks a rejected submission rolls its claims back.
func TestFedCacheAbandon(t *testing.T) {
	f, _ := newTestFed()
	e, _ := f.acquire("k")
	f.abandon(e)
	if !e.completed() {
		t.Fatalf("abandoned entry not terminal")
	}
	if _, claimed := f.acquire("k"); !claimed {
		t.Fatalf("key not reclaimable after abandon")
	}
}
