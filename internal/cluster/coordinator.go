// Package cluster turns N fleasimd backends into one logical simulation
// service. A Coordinator consistent-hash-routes content-addressed units
// (JobSpec expansion reuses the backend code, so both sides agree on every
// cache key), federates the backends' result caches behind one coalescing
// view (a result computed anywhere in the cluster is computed once), health-
// checks membership with mark-down/mark-up, re-routes work lost to dead
// nodes, and steals queued units from stragglers when a dispatch slot goes
// idle.
//
// The package is in the nondeterminism analyzer's scope: placement and
// steal-victim choice are pure functions of membership and queue state, and
// no wall-clock value feeds any decision (timers pace loops; they never
// enter routing).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fleaflicker/internal/metrics"
	"fleaflicker/internal/service"
)

// ErrNoBackends rejects submissions while every backend is marked down.
var ErrNoBackends = errors.New("cluster: no live backends")

// ErrDraining rejects submissions once a drain has begun.
var ErrDraining = errors.New("cluster: draining, not accepting jobs")

// Config sizes a Coordinator. Zero values take defaults.
type Config struct {
	// Backends are the member base URLs (order defines backend indices).
	Backends []string
	// Replicas is the virtual-node count per backend on the hash ring
	// (default 64).
	Replicas int
	// SlotsPerBackend is how many units the coordinator keeps in flight per
	// backend (default 4): enough to cover submit+poll latency, small enough
	// that queue depth — the steal signal — stays visible coordinator-side.
	SlotsPerBackend int
	// QueueDepth bounds the total queued-unit count across backends
	// (default 1024); admission is all-or-nothing per job against it.
	QueueDepth int
	// MaxUnitsPerJob rejects grids larger than this (default 1024).
	MaxUnitsPerJob int
	// MaxJobs bounds retained job records (default 4096).
	MaxJobs int
	// ProbeInterval paces the health prober (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// FailThreshold marks a backend down after this many consecutive failed
	// probes (default 2); UpThreshold marks it back up after this many
	// consecutive successes (default 2).
	FailThreshold int
	UpThreshold   int
	// PollInterval paces job-status polls against backends (default 2ms —
	// simulations are short; a coordinator poll is one cheap local GET).
	PollInterval time.Duration
	// MaxBackoff caps one 429/503 pause (default 200ms).
	MaxBackoff time.Duration
	// MaxBackoffsPerUnit caps how many backpressure pauses one unit absorbs
	// before it fails with a queue-full error (default 100 — with MaxBackoff
	// at its default, a persistently full backend stalls a unit at most ~20s
	// instead of requeueing it forever).
	MaxBackoffsPerUnit int
	// PeerLookup disables the federation peer probe when false is forced;
	// the default (nil-like zero value) enables it.
	DisablePeerLookup bool
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = defaultReplicas
	}
	if c.SlotsPerBackend <= 0 {
		c.SlotsPerBackend = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxUnitsPerJob <= 0 {
		c.MaxUnitsPerJob = 1024
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.UpThreshold <= 0 {
		c.UpThreshold = 2
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 200 * time.Millisecond
	}
	if c.MaxBackoffsPerUnit <= 0 {
		c.MaxBackoffsPerUnit = 100
	}
	return c
}

// Coordinator is the cluster control plane: admission, placement, dispatch,
// federation, health and stealing over a static membership.
type Coordinator struct {
	cfg     Config
	reg     *metrics.Registry
	met     *clusterMetrics
	ring    *ring
	clients []*backendClient
	fed     *fedCache
	sched   *scheduler

	baseCtx    context.Context
	baseCancel context.CancelFunc
	slotWG     sync.WaitGroup
	probeWG    sync.WaitGroup
	jobWG      sync.WaitGroup

	mu sync.Mutex
	//flea:guardedby(mu)
	draining bool
	//flea:guardedby(mu)
	jobs map[string]*Job
	//flea:guardedby(mu)
	jobOrder []string
	//flea:guardedby(mu)
	nextID uint64
}

// New builds a coordinator over the configured backends and starts its
// dispatch slots and health prober.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	reg := metrics.NewRegistry()
	met := newClusterMetrics(reg)
	clients := make([]*backendClient, len(cfg.Backends))
	ids := make([]string, len(cfg.Backends))
	for i, u := range cfg.Backends {
		clients[i] = newBackendClient(u)
		ids[i] = clients[i].id
	}
	c := &Coordinator{
		cfg:     cfg,
		reg:     reg,
		met:     met,
		ring:    newRing(ids, cfg.Replicas),
		clients: clients,
		fed:     newFedCache(met),
		sched:   newScheduler(len(clients), met),
		jobs:    make(map[string]*Job),
	}
	c.baseCtx, c.baseCancel = context.WithCancel(context.Background())
	for b := range clients {
		for s := 0; s < cfg.SlotsPerBackend; s++ {
			c.slotWG.Add(1)
			go c.dispatchSlot(b)
		}
		c.probeWG.Add(1)
		go c.probe(b)
	}
	return c, nil
}

// Registry exposes the coordinator metrics registry (rendered by /metricsz
// and /clusterz).
func (c *Coordinator) Registry() *metrics.Registry { return c.reg }

// Backends returns the member ids in index order.
func (c *Coordinator) Backends() []string {
	ids := make([]string, len(c.clients))
	for i, cl := range c.clients {
		ids[i] = cl.id
	}
	return ids
}

// Draining reports whether a drain has begun.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// LiveBackends returns how many backends are currently marked up.
func (c *Coordinator) LiveBackends() int {
	return int(c.met.backendsUp.Value())
}

// Submit validates and admits one job cluster-wide: the spec expands into
// units with the exact backend code, each unit resolves against the
// federated cache (hit, coalesce, or claim), and every claimed unit is
// routed onto a backend queue all-or-nothing.
func (c *Coordinator) Submit(spec service.JobSpec) (*Job, error) {
	units, err := service.ExpandUnits(spec)
	if err != nil {
		return nil, err
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("%w: spec expands to zero units", service.ErrInvalidSpec)
	}
	if len(units) > c.cfg.MaxUnitsPerJob {
		return nil, fmt.Errorf("%w: %d units exceeds the per-job limit of %d",
			service.ErrInvalidSpec, len(units), c.cfg.MaxUnitsPerJob)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		c.met.jobsRejected.Inc()
		return nil, ErrDraining
	}

	job := &Job{
		units:          units,
		entries:        make([]*fedEntry, len(units)),
		cachedAtSubmit: make([]bool, len(units)),
		done:           make(chan struct{}),
	}
	job.ctx, job.cancel = context.WithCancel(c.baseCtx)

	var fresh []*unitTask
	for i := range units {
		key := units[i].Key()
		e, claimed := c.fed.acquire(key)
		job.entries[i] = e
		if claimed {
			fresh = append(fresh, &unitTask{
				wire:      units[i].Wire(),
				key:       key,
				entry:     e,
				prefs:     c.ring.preference(key),
				timeoutMS: spec.TimeoutMS,
				job:       job,
			})
		} else {
			job.cachedAtSubmit[i] = true
		}
	}
	if len(fresh) > 0 && !c.sched.tryEnqueueAll(fresh, c.cfg.QueueDepth) {
		for _, t := range fresh {
			c.fed.abandon(t.entry)
		}
		job.cancel()
		c.met.jobsRejected.Inc()
		if c.LiveBackends() == 0 {
			return nil, ErrNoBackends
		}
		return nil, &service.QueueFullError{RetryAfter: time.Second}
	}

	c.nextID++
	job.id = fmt.Sprintf("c-%06d-%.8s", c.nextID, job.entries[0].key)
	c.jobs[job.id] = job
	c.jobOrder = append(c.jobOrder, job.id)
	c.forgetOldJobsLocked()

	c.met.jobsSubmitted.Inc()
	c.met.jobsActive.Add(1)
	c.jobWG.Add(1)
	go c.collect(job)
	return job, nil
}

// forgetOldJobsLocked drops the oldest finished job records beyond MaxJobs.
// Caller holds c.mu.
//
//flea:locked(mu)
func (c *Coordinator) forgetOldJobsLocked() {
	for len(c.jobOrder) > c.cfg.MaxJobs {
		dropped := false
		for i, id := range c.jobOrder {
			j := c.jobs[id]
			if s := j.State(); s == service.JobDone || s == service.JobFailed {
				delete(c.jobs, id)
				c.jobOrder = append(c.jobOrder[:i], c.jobOrder[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			return
		}
	}
}

// Job returns the job registered under id.
func (c *Coordinator) Job(id string) (*Job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// dispatchSlot is one unit-execution slot bound to backend b: it drains b's
// queue, steals from stragglers when idle, and parks on b's wake channel
// otherwise.
func (c *Coordinator) dispatchSlot(b int) {
	defer c.slotWG.Done()
	ctx := c.baseCtx
	for {
		if ctx.Err() != nil {
			return
		}
		t := c.sched.next(b)
		if t == nil {
			select {
			case <-ctx.Done():
				return
			case <-c.sched.wake[b]:
			}
			continue
		}
		c.execute(b, t)
	}
}

// execute runs one task attempt on backend b: federation peer lookup first,
// then submit + poll, with backpressure backoff and failure re-routing.
func (c *Coordinator) execute(b int, t *unitTask) {
	ctx := t.job.ctx
	outcome := taskAbandoned
	defer func() { c.sched.taskDone(b, outcome) }()

	if ctx.Err() != nil {
		c.failTask(t, ctx.Err())
		return
	}

	// Federation: ask the other live backends for the result before
	// simulating. The executing backend's own cache needs no probe — its
	// admission path serves hits anyway.
	if !c.cfg.DisablePeerLookup {
		for _, p := range t.prefs {
			if p == b || !c.sched.isUp(p) {
				continue
			}
			c.met.peerLookups.Inc()
			if res, ok := c.clients[p].cacheLookup(ctx, t.key); ok {
				c.met.peerHits.Inc()
				if c.fed.complete(t.entry, res, "peer:"+c.clients[p].id, nil) {
					c.met.unitsCompleted.Inc()
				}
				outcome = taskPeerServed
				return
			}
		}
	}

	loc, err := c.clients[b].submitUnit(ctx, t.wire, t.timeoutMS)
	if err != nil {
		c.retryTask(b, t, err)
		return
	}
	st, err := c.clients[b].waitJob(ctx, loc, c.cfg.PollInterval)
	if err != nil {
		c.retryTask(b, t, err)
		return
	}
	if st.State == "failed" || len(st.Units) != 1 || st.Units[0].Result == nil {
		// A deterministic simulation failure: re-running elsewhere would
		// fail identically, so surface it.
		msg := st.Error
		if msg == "" {
			msg = "backend returned no result"
		}
		c.failTask(t, fmt.Errorf("cluster: unit failed on %s: %s", c.clients[b].id, msg))
		return
	}
	if c.fed.complete(t.entry, st.Units[0].Result, c.clients[b].id, nil) {
		c.met.unitsCompleted.Inc()
	}
	outcome = taskExecuted
}

// retryTask handles a failed attempt: backpressure waits and retries the
// same backend; transport errors re-route to the next preference; exhausted
// or cancelled tasks fail.
func (c *Coordinator) retryTask(b int, t *unitTask, err error) {
	if t.job.ctx.Err() != nil {
		c.failTask(t, t.job.ctx.Err())
		return
	}
	var be *backendError
	if errors.As(err, &be) && be.Backpressured() {
		// Backpressure retries don't consume the re-route attempt budget, but
		// they are bounded separately so a persistently full backend fails the
		// unit (and its job reaches a terminal state) instead of requeueing
		// forever.
		t.backoffs++
		if t.backoffs > c.cfg.MaxBackoffsPerUnit {
			c.failTask(t, fmt.Errorf("cluster: unit still backpressured after %d retries: %w", t.backoffs-1, err))
			return
		}
		c.met.unitBackoffs.Inc()
		pause := be.RetryAfter
		if pause <= 0 || pause > c.cfg.MaxBackoff {
			pause = c.cfg.MaxBackoff
		}
		timer := time.NewTimer(pause)
		select {
		case <-t.job.ctx.Done():
			timer.Stop()
			c.failTask(t, t.job.ctx.Err())
			return
		case <-timer.C:
		}
		if !c.sched.requeue(t, -1) {
			c.failTask(t, ErrNoBackends)
		}
		return
	}
	if !errors.As(err, &be) {
		// Transport failure (dial refused, connection cut): feed the health
		// state machine as a passive probe so a dead backend marks down on
		// the data path, without waiting for the prober. Until the mark-down
		// lands, the dead backend's idle slots would otherwise steal every
		// re-routed task straight back and burn its attempt budget.
		c.noteBackendFailure(b)
	}
	// Try the next live backend in the task's preference order. Attempts are
	// bounded so a flapping cluster cannot spin a task forever.
	t.attempts++
	if t.attempts > 2*len(c.clients) {
		c.failTask(t, fmt.Errorf("cluster: unit exhausted %d attempts: %w", t.attempts, err))
		return
	}
	c.met.unitsRerouted.Inc()
	if !c.sched.requeue(t, b) {
		c.failTask(t, ErrNoBackends)
	}
}

// failTask seals a task's entry with an error.
func (c *Coordinator) failTask(t *unitTask, err error) {
	if c.fed.complete(t.entry, nil, "", err) {
		c.met.unitsFailed.Inc()
	}
}

// noteBackendFailure records one passive health failure for backend b —
// the data-path twin of a failed probe — re-routing the backend's queue
// when it crosses the mark-down threshold.
func (c *Coordinator) noteBackendFailure(b int) {
	drained, markedDown, _ := c.sched.noteProbe(b, false, c.cfg.FailThreshold, c.cfg.UpThreshold)
	if !markedDown {
		return
	}
	for _, t := range drained {
		c.met.unitsRerouted.Inc()
		if !c.sched.requeue(t, b) {
			c.failTask(t, ErrNoBackends)
		}
	}
}

// probe is backend b's health loop: it marks the backend down after
// FailThreshold consecutive failures — re-routing everything queued on it —
// and back up after UpThreshold consecutive successes.
func (c *Coordinator) probe(b int) {
	defer c.probeWG.Done()
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-ticker.C:
		}
		probeCtx, cancel := context.WithTimeout(c.baseCtx, c.cfg.ProbeTimeout)
		err := c.clients[b].health(probeCtx)
		cancel()
		if err != nil {
			c.noteBackendFailure(b)
			continue
		}
		_, _, markedUp := c.sched.noteProbe(b, true, c.cfg.FailThreshold, c.cfg.UpThreshold)
		if markedUp {
			// Fresh capacity: wake every backend's slots so stealing can
			// rebalance onto (and off) the returned node.
			c.sched.signalAll()
		}
	}
}

// Drain gracefully shuts the coordinator down: intake stops, queued and
// in-flight units finish, every job reaches a terminal state. When ctx
// expires first, remaining work is cancelled — queued units that no slot
// will ever pop are failed here, so every job still terminates — and Drain
// returns ctx.Err after the slots unwind.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.sched.close()

	idle := make(chan struct{})
	go func() {
		c.jobWG.Wait()
		close(idle)
	}()
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		err = ctx.Err()
	}
	c.baseCancel()
	// Seal every still-queued task: the cancelled base context makes the
	// dispatch slots exit without popping them, and an unsealed entry would
	// block its job's collector — and the <-idle below — forever. In-flight
	// tasks seal themselves (execute fails fast on a dead ctx), and after
	// stop() no requeue path can put a task back.
	cause := err
	if cause == nil {
		cause = ErrDraining // unreachable: idle closed, so no task is queued
	}
	for _, t := range c.sched.stop() {
		c.failTask(t, cause)
	}
	<-idle
	c.slotWG.Wait()
	c.probeWG.Wait()
	return err
}
