package cluster

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"fleaflicker/internal/service"
)

// smokePrograms returns the campaign size: FLEA_CLUSTER_PROGRAMS when set
// (make cluster-smoke uses 2000), a tier-1-friendly default otherwise.
func smokePrograms(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("FLEA_CLUSTER_PROGRAMS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("FLEA_CLUSTER_PROGRAMS=%q: %v", v, err)
		}
		return n
	}
	return 600
}

// fuzzSpec is the sharded differential campaign the smoke tests drive:
// chunked so it spreads across the cluster.
func fuzzSpec(programs int) service.JobSpec {
	return service.JobSpec{
		Kind: "fuzz", Seed: 1,
		Fuzz: &service.FuzzSpec{Programs: programs, ChunkSize: 50, Smoke: true},
	}
}

// assertCleanCampaign checks a finished campaign found zero divergences and
// covered every program.
func assertCleanCampaign(t *testing.T, job *Job, programs int) {
	t.Helper()
	if job.State() != service.JobDone {
		t.Fatalf("campaign state = %v, want done (err: %v)", job.State(), job.Err())
	}
	covered := 0
	for _, u := range job.Status().Units {
		if u.Result == nil || u.Result.Fuzz == nil {
			t.Fatalf("unit %s missing fuzz report", u.Key)
		}
		if n := len(u.Result.Fuzz.Findings); n != 0 {
			t.Fatalf("unit %s reported %d divergences; want 0:\n%+v",
				u.Key, n, u.Result.Fuzz.Findings)
		}
		covered += u.Result.Fuzz.Programs
	}
	if covered != programs {
		t.Fatalf("campaign covered %d programs, want %d", covered, programs)
	}
}

// backendExecutions sums (and returns per-backend) the real execution
// counters of the backends' own service managers.
func backendExecutions(l *Local) (per []int64, total int64) {
	per = make([]int64, len(l.managers))
	for i := range l.managers {
		counters, _ := l.Manager(i).Registry().Snapshot()
		per[i] = counters[service.MetricUnitsExecuted]
		total += per[i]
	}
	return per, total
}

// TestClusterSmokeCampaign is the cluster-smoke acceptance drive: a real
// (not stubbed) sharded differential fuzz campaign over three in-process
// backends — zero divergences, every backend does real work — then a second
// coordinator with a different ring-replica tuning over the same backends
// re-runs the campaign and must serve the remapped units from its peers'
// caches: nonzero peer hits, zero new simulations.
func TestClusterSmokeCampaign(t *testing.T) {
	programs := smokePrograms(t)
	l, err := StartLocal(3, service.Config{Workers: 1}, fastProbes(Config{}))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()

	job, err := l.Coordinator.Submit(fuzzSpec(programs))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitClusterDone(t, job)
	assertCleanCampaign(t, job, programs)

	chunks := len(job.Status().Units)
	per, totalBefore := backendExecutions(l)
	if totalBefore != int64(chunks) {
		t.Fatalf("backend executions = %d, want %d (every chunk exactly once)", totalBefore, chunks)
	}
	if chunks >= 12 {
		for i, n := range per {
			if n == 0 {
				t.Fatalf("backend %d executed no chunks of %d (distribution %v)", i, chunks, per)
			}
		}
	}

	// Second coordinator, same membership, retuned ring (32 replicas instead
	// of 64): a fraction of keys remap to a different owner, exactly the
	// situation cache federation exists for. Every remapped unit must be
	// served by a peer lookup, every unmoved unit by its backend's own
	// cache — zero fresh simulations either way.
	c2, err := New(fastProbes(Config{Backends: l.URLs(), Replicas: 32}))
	if err != nil {
		t.Fatalf("second coordinator: %v", err)
	}
	defer c2.Drain(context.Background())
	job2, err := c2.Submit(fuzzSpec(programs))
	if err != nil {
		t.Fatalf("re-submit: %v", err)
	}
	waitClusterDone(t, job2)
	assertCleanCampaign(t, job2, programs)

	if hits := c2.met.peerHits.Value(); hits == 0 {
		t.Fatalf("peer hits = 0 after ring retune; want >0 (lookups=%d)",
			c2.met.peerLookups.Value())
	}
	if _, totalAfter := backendExecutions(l); totalAfter != totalBefore {
		t.Fatalf("re-run executed %d fresh chunks; want 0 (federation must serve them)",
			totalAfter-totalBefore)
	}
}

// TestClusterKillBackendMidCampaign kills one backend partway through a
// sharded campaign: its queued and in-flight chunks must re-route and the
// campaign must finish with zero errors and zero divergences.
func TestClusterKillBackendMidCampaign(t *testing.T) {
	const programs, chunk = 1800, 40 // 45 chunks
	pause := 15 * time.Millisecond
	var spec = service.JobSpec{
		Kind: "fuzz", Seed: 7,
		Fuzz: &service.FuzzSpec{Programs: programs, ChunkSize: chunk, Smoke: true},
	}
	l, err := StartLocal(3, service.Config{Workers: 1}, fastProbes(Config{}),
		service.WithFuzzRunner(func(ctx context.Context, u service.UnitSpec) (*service.FuzzReport, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(pause):
			}
			return &service.FuzzReport{Programs: u.Fuzz.Programs, Cells: 4}, nil
		}))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()

	job, err := l.Coordinator.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	time.Sleep(100 * time.Millisecond) // ~mid-campaign
	l.KillBackend(1)
	waitClusterDone(t, job)

	assertCleanCampaign(t, job, programs)
	met := l.Coordinator.met
	if met.unitsRerouted.Value() == 0 {
		t.Fatalf("no chunks rerouted despite the mid-campaign kill")
	}
	if got := met.unitsCompleted.Value() + met.peerHits.Value(); got < 45 {
		t.Fatalf("completions = %d, want >= 45", got)
	}
}

// TestClusterSpeedup is the capacity model behind the cluster: with each
// backend bounded to one in-flight chunk of fixed cost, three backends must
// finish a sharded campaign at least 1.5x faster than one. Chunk cost is a
// timed sleep, not CPU, so the measurement holds on a single-core host.
func TestClusterSpeedup(t *testing.T) {
	const chunks = 24
	spec := service.JobSpec{
		Kind: "fuzz", Seed: 3,
		Fuzz: &service.FuzzSpec{Programs: chunks * 50, ChunkSize: 50, Smoke: true},
	}
	runner := service.WithFuzzRunner(func(ctx context.Context, u service.UnitSpec) (*service.FuzzReport, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(40 * time.Millisecond):
		}
		return &service.FuzzReport{Programs: u.Fuzz.Programs, Cells: 4}, nil
	})
	campaign := func(backends int) time.Duration {
		l, err := StartLocal(backends, service.Config{Workers: 1},
			fastProbes(Config{DisablePeerLookup: true}), runner)
		if err != nil {
			t.Fatalf("StartLocal(%d): %v", backends, err)
		}
		defer l.Close()
		start := time.Now()
		job, err := l.Coordinator.Submit(spec)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		waitClusterDone(t, job)
		assertCleanCampaign(t, job, chunks*50)
		return time.Since(start)
	}

	single := campaign(1)
	triple := campaign(3)
	speedup := float64(single) / float64(triple)
	t.Logf("1 backend: %s, 3 backends: %s, speedup %.2fx", single, triple, speedup)
	if speedup < 1.5 {
		t.Fatalf("speedup = %.2fx (1 backend %s, 3 backends %s), want >= 1.5x",
			speedup, single, triple)
	}
}

// TestClusterzEndpoint drives the coordinator's HTTP façade end to end:
// submit over the wire, poll to done, then check /clusterz reports the
// per-backend breakdown and /metricsz the routing counters.
func TestClusterzEndpoint(t *testing.T) {
	var spec = fuzzSpec(200)
	l, err := StartLocal(2, service.Config{Workers: 1}, fastProbes(Config{}),
		service.WithFuzzRunner(func(ctx context.Context, u service.UnitSpec) (*service.FuzzReport, error) {
			return &service.FuzzReport{Programs: u.Fuzz.Programs, Cells: 4}, nil
		}))
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer l.Close()
	job, err := l.Coordinator.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitClusterDone(t, job)

	srv := NewServer(l.Coordinator)
	var cz clusterzReport
	getJSONFrom(t, srv, "/clusterz", &cz)
	if len(cz.Backends) != 2 {
		t.Fatalf("clusterz backends = %d, want 2", len(cz.Backends))
	}
	executed := int64(0)
	for _, b := range cz.Backends {
		if b.ID == "" {
			t.Fatalf("clusterz backend missing id: %+v", b)
		}
		if !b.Up || !b.Scraped {
			t.Fatalf("backend %s: up=%v scraped=%v, want both", b.ID, b.Up, b.Scraped)
		}
		executed += b.UnitsExecuted
	}
	if executed == 0 {
		t.Fatalf("clusterz reports zero executed units across backends")
	}
	if cz.Coordinator[MetricUnitsRouted] == 0 {
		t.Fatalf("clusterz coordinator counters missing %s: %v", MetricUnitsRouted, cz.Coordinator)
	}
	if cz.RingPoints == 0 || cz.Replicas == 0 {
		t.Fatalf("clusterz ring shape empty: %+v", cz)
	}

	var mz struct {
		Counters map[string]int64 `json:"counters"`
	}
	getJSONFrom(t, srv, "/metricsz?format=json", &mz)
	if mz.Counters[MetricJobsCompleted] != 1 {
		t.Fatalf("metricsz %s = %d, want 1", MetricJobsCompleted, mz.Counters[MetricJobsCompleted])
	}
}

// getJSONFrom issues one GET against the in-process handler and decodes the
// 200 response into out.
func getJSONFrom(t *testing.T, h *Server, target string, out any) {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", target, nil))
	if w.Code != 200 {
		t.Fatalf("GET %s: HTTP %d: %s", target, w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
		t.Fatalf("decoding GET %s: %v\n%s", target, err, w.Body.String())
	}
}
