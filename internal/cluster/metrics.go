package cluster

import "fleaflicker/internal/metrics"

// Canonical cluster metric names, registered in the coordinator's registry
// and rendered by its /metricsz and /clusterz endpoints (statname enforces
// uniqueness and constant registration).
const (
	MetricJobsSubmitted = "cluster.jobs.submitted"
	MetricJobsCompleted = "cluster.jobs.completed"
	MetricJobsFailed    = "cluster.jobs.failed"
	MetricJobsRejected  = "cluster.jobs.rejected"

	// Units routed = fresh units placed on a backend queue by consistent
	// hashing; stolen = units an idle backend's dispatcher took from another
	// backend's queue; rerouted = units moved to another backend after a
	// submit/poll failure or a mark-down; backoffs = 429/503 pauses.
	MetricUnitsRouted    = "cluster.units.routed"
	MetricUnitsCompleted = "cluster.units.completed"
	MetricUnitsFailed    = "cluster.units.failed"
	MetricUnitsStolen    = "cluster.units.stolen"
	MetricUnitsRerouted  = "cluster.units.rerouted"
	MetricUnitBackoffs   = "cluster.units.backoffs"

	// Federation: hits/coalesced/misses mirror the local cache trio at
	// cluster scope; peer_lookups/peer_hits count GET /v1/cache probes the
	// coordinator issued against backends before scheduling fresh work;
	// duplicate_drops counts late completions dropped by first-writer-wins.
	MetricFedHits      = "cluster.federation.hits"
	MetricFedCoalesced = "cluster.federation.coalesced"
	MetricFedMisses    = "cluster.federation.misses"
	MetricFedDupDrops  = "cluster.federation.duplicate_drops"
	MetricPeerLookups  = "cluster.federation.peer_lookups"
	MetricPeerHits     = "cluster.federation.peer_hits"

	MetricMarkdowns = "cluster.backends.markdowns"
	MetricMarkups   = "cluster.backends.markups"

	GaugeBackendsUp  = "cluster.backends.up"
	GaugeQueuedUnits = "cluster.units.queued"
	GaugeInflight    = "cluster.units.inflight"
	GaugeJobsActive  = "cluster.jobs.active"
	GaugeFedEntries  = "cluster.federation.entries"
)

// clusterMetrics holds pre-resolved shared handles into the coordinator's
// registry; dispatch slots, the prober and the HTTP handlers all bump them
// concurrently.
type clusterMetrics struct {
	jobsSubmitted *metrics.SharedCounter
	jobsCompleted *metrics.SharedCounter
	jobsFailed    *metrics.SharedCounter
	jobsRejected  *metrics.SharedCounter

	unitsRouted    *metrics.SharedCounter
	unitsCompleted *metrics.SharedCounter
	unitsFailed    *metrics.SharedCounter
	unitsStolen    *metrics.SharedCounter
	unitsRerouted  *metrics.SharedCounter
	unitBackoffs   *metrics.SharedCounter

	fedHits      *metrics.SharedCounter
	fedCoalesced *metrics.SharedCounter
	fedMisses    *metrics.SharedCounter
	fedDupDrops  *metrics.SharedCounter
	peerLookups  *metrics.SharedCounter
	peerHits     *metrics.SharedCounter

	markdowns *metrics.SharedCounter
	markups   *metrics.SharedCounter

	backendsUp  *metrics.SharedGauge
	queuedUnits *metrics.SharedGauge
	inflight    *metrics.SharedGauge
	jobsActive  *metrics.SharedGauge
	fedEntries  *metrics.SharedGauge
}

func newClusterMetrics(reg *metrics.Registry) *clusterMetrics {
	return &clusterMetrics{
		jobsSubmitted:  reg.SharedCounter(MetricJobsSubmitted),
		jobsCompleted:  reg.SharedCounter(MetricJobsCompleted),
		jobsFailed:     reg.SharedCounter(MetricJobsFailed),
		jobsRejected:   reg.SharedCounter(MetricJobsRejected),
		unitsRouted:    reg.SharedCounter(MetricUnitsRouted),
		unitsCompleted: reg.SharedCounter(MetricUnitsCompleted),
		unitsFailed:    reg.SharedCounter(MetricUnitsFailed),
		unitsStolen:    reg.SharedCounter(MetricUnitsStolen),
		unitsRerouted:  reg.SharedCounter(MetricUnitsRerouted),
		unitBackoffs:   reg.SharedCounter(MetricUnitBackoffs),
		fedHits:        reg.SharedCounter(MetricFedHits),
		fedCoalesced:   reg.SharedCounter(MetricFedCoalesced),
		fedMisses:      reg.SharedCounter(MetricFedMisses),
		fedDupDrops:    reg.SharedCounter(MetricFedDupDrops),
		peerLookups:    reg.SharedCounter(MetricPeerLookups),
		peerHits:       reg.SharedCounter(MetricPeerHits),
		markdowns:      reg.SharedCounter(MetricMarkdowns),
		markups:        reg.SharedCounter(MetricMarkups),
		backendsUp:     reg.SharedGauge(GaugeBackendsUp),
		queuedUnits:    reg.SharedGauge(GaugeQueuedUnits),
		inflight:       reg.SharedGauge(GaugeInflight),
		jobsActive:     reg.SharedGauge(GaugeJobsActive),
		fedEntries:     reg.SharedGauge(GaugeFedEntries),
	}
}
