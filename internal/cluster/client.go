package cluster

import (
	"context"
	"time"

	"fleaflicker/internal/service"
	"fleaflicker/internal/service/client"
)

// backendClient is the coordinator's handle on one fleasimd backend: unit
// submission, job polling, the cache-federation peer lookup, health probes
// and a metrics scrape — all delegated to the shared wire client
// (internal/service/client), which owns the backpressure protocol and the
// retry-hint parsing. All calls run under the caller's context; the
// coordinator's retry and re-route policy lives above this layer.
type backendClient struct {
	*client.Client
	id string // short display name (host:port)
}

// backendError is a non-2xx backend response; the shared client parses the
// machine-readable retry hint (retryAfterSeconds, its deprecated
// retry_after_seconds spelling, then the Retry-After header).
type backendError = client.HTTPError

// NormalizeBackendURL canonicalizes a member URL the way backend clients do
// (default http scheme, no trailing slash), so membership lists can detect
// duplicates before they become distinct backend indices with identical
// ring vnode hashes.
func NormalizeBackendURL(raw string) string {
	return client.NormalizeBaseURL(raw)
}

// newBackendClient builds the shared client for one backend URL.
func newBackendClient(rawURL string) *backendClient {
	c := client.New(rawURL)
	return &backendClient{Client: c, id: c.ID()}
}

// health probes /healthz. Any 200 is healthy; a draining backend (503)
// reports an error so the prober marks it down and routing moves on.
func (c *backendClient) health(ctx context.Context) error {
	return c.Health(ctx)
}

// submitUnit posts one resolved unit as a single-unit job and returns the
// job's status location.
func (c *backendClient) submitUnit(ctx context.Context, wire service.WireUnit, timeoutMS int64) (string, error) {
	return c.SubmitUnits(ctx, []service.WireUnit{wire}, timeoutMS)
}

// waitJob polls a job location until it reaches a terminal state, the
// context ends, or the backend becomes unreachable.
func (c *backendClient) waitJob(ctx context.Context, location string, poll time.Duration) (*service.Status, error) {
	return c.WaitJob(ctx, location, poll)
}

// cacheLookup asks the backend's result cache for a completed result under
// key: the federation peer lookup. ok=false covers both a miss and any
// transport error — a failed lookup only costs a fresh simulation.
func (c *backendClient) cacheLookup(ctx context.Context, key string) (*service.UnitResult, bool) {
	return c.CacheLookup(ctx, key)
}

// scrapeMetrics pulls the backend's /metricsz snapshot (counters and gauges)
// for the /clusterz aggregation.
func (c *backendClient) scrapeMetrics(ctx context.Context) (map[string]int64, map[string]int64, error) {
	return c.ScrapeMetrics(ctx)
}
