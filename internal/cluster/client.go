package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"fleaflicker/internal/service"
)

// backendClient is the coordinator's handle on one fleasimd backend: unit
// submission, job polling, the cache-federation peer lookup, health probes
// and a metrics scrape. All calls run under the caller's context; the
// coordinator's retry and re-route policy lives above this layer.
type backendClient struct {
	id   string // short display name (host:port)
	base string // base URL, no trailing slash
	http *http.Client
}

// maxErrorBody bounds how much of an error response is read for messages.
const maxErrorBody = 512

// NormalizeBackendURL canonicalizes a member URL the way backend clients do
// (default http scheme, no trailing slash), so membership lists can detect
// duplicates before they become distinct backend indices with identical
// ring vnode hashes.
func NormalizeBackendURL(raw string) string {
	base := strings.TrimRight(strings.TrimSpace(raw), "/")
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return base
}

// newBackendClient normalizes the URL and sizes the HTTP client. The
// transport allows enough idle connections that dispatch slots, pollers and
// the health prober do not fight over sockets.
func newBackendClient(rawURL string) *backendClient {
	base := NormalizeBackendURL(rawURL)
	id := strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
	return &backendClient{
		id:   id,
		base: base,
		http: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        32,
				MaxIdleConnsPerHost: 32,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
}

// backendError is a non-2xx response from a backend, carrying the parsed
// machine-readable retry hint when the backend sent one.
type backendError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *backendError) Error() string {
	return fmt.Sprintf("backend HTTP %d: %s", e.status, e.msg)
}

// backpressured reports whether the error is a retry-later response (429
// queue full / 503 draining) rather than a hard failure.
func (e *backendError) backpressured() bool {
	return e.status == http.StatusTooManyRequests || e.status == http.StatusServiceUnavailable
}

// decodeError turns a non-2xx response into a backendError, honouring the
// retryAfterSeconds field of the JSON body (or its deprecated
// retry_after_seconds spelling from older backends) and falling back to the
// Retry-After header.
func decodeError(resp *http.Response) *backendError {
	be := &backendError{status: resp.StatusCode}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	var body struct {
		Error            string `json:"error"`
		RetryAfter       int    `json:"retryAfterSeconds"`
		RetryAfterLegacy int    `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(raw, &body); err == nil && body.Error != "" {
		be.msg = body.Error
		if body.RetryAfter == 0 {
			body.RetryAfter = body.RetryAfterLegacy
		}
		if body.RetryAfter > 0 {
			be.retryAfter = time.Duration(body.RetryAfter) * time.Second
		}
	} else {
		be.msg = string(raw)
	}
	if be.retryAfter == 0 {
		var secs int
		if h := resp.Header.Get("Retry-After"); h != "" {
			if _, err := fmt.Sscanf(h, "%d", &secs); err == nil && secs > 0 {
				be.retryAfter = time.Duration(secs) * time.Second
			}
		}
	}
	return be
}

// getJSON issues one GET and decodes a 200 response into out.
func (c *backendClient) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// health probes /healthz. Any 200 is healthy; a draining backend (503)
// reports an error so the prober marks it down and routing moves on.
func (c *backendClient) health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrorBody))
	if resp.StatusCode != http.StatusOK {
		return &backendError{status: resp.StatusCode, msg: "unhealthy"}
	}
	return nil
}

// submitUnit posts one resolved unit as a single-unit job and returns the
// job's status location.
func (c *backendClient) submitUnit(ctx context.Context, wire service.WireUnit, timeoutMS int64) (string, error) {
	body, err := json.Marshal(service.UnitSubmission{TimeoutMS: timeoutMS, Units: []service.WireUnit{wire}})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/units", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", decodeError(resp)
	}
	var ack struct {
		Location string `json:"location"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return "", fmt.Errorf("decoding ack: %w", err)
	}
	return ack.Location, nil
}

// waitJob polls a job location until it reaches a terminal state, the
// context ends, or the backend becomes unreachable.
func (c *backendClient) waitJob(ctx context.Context, location string, poll time.Duration) (*service.Status, error) {
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		var st service.Status
		if err := c.getJSON(ctx, location, &st); err != nil {
			return nil, err
		}
		if st.State == "done" || st.State == "failed" {
			return &st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
		}
	}
}

// cacheLookup asks the backend's result cache for a completed result under
// key: the federation peer lookup. ok=false covers both a miss and any
// transport error — a failed lookup only costs a fresh simulation.
func (c *backendClient) cacheLookup(ctx context.Context, key string) (*service.UnitResult, bool) {
	var res service.UnitResult
	if err := c.getJSON(ctx, "/v1/cache/"+key, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// scrapeMetrics pulls the backend's /metricsz snapshot (counters and gauges)
// for the /clusterz aggregation.
func (c *backendClient) scrapeMetrics(ctx context.Context) (map[string]int64, map[string]int64, error) {
	var body struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := c.getJSON(ctx, "/metricsz?format=json", &body); err != nil {
		return nil, nil, err
	}
	return body.Counters, body.Gauges, nil
}
