package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"fleaflicker/internal/service"
)

// maxBodyBytes bounds a submission body; a full sweep grid spec is tiny.
const maxBodyBytes = 1 << 20

// BackendStatus is one member's row in the /clusterz report: the
// coordinator-side routing view plus, when the backend is reachable, a
// scrape of its own service metrics.
type BackendStatus struct {
	ID       string `json:"id"`
	Up       bool   `json:"up"`
	Queued   int    `json:"queued"`
	Inflight int    `json:"inflight"`
	// Executed counts units actually simulated on this backend; PeerServed
	// counts units its slots completed from a peer's cache instead.
	Executed   int64 `json:"executed"`
	PeerServed int64 `json:"peer_served"`
	Stolen     int64 `json:"stolen"`

	// Scraped from the backend's /metricsz (omitted when unreachable).
	UnitsExecuted     int64 `json:"units_executed,omitempty"`
	CacheHitsPermille int64 `json:"cache_hit_ratio_permille,omitempty"`
	QueueDepth        int64 `json:"queue_depth,omitempty"`
	Scraped           bool  `json:"scraped"`
}

// Server is the HTTP façade over a Coordinator. It speaks the same job
// protocol as a single backend — POST /v1/jobs, GET /v1/jobs/{id}, /healthz,
// /metricsz — so fleaload needs no special casing, and adds GET /clusterz
// for the per-backend routing/federation breakdown.
type Server struct {
	c   *Coordinator
	mux *http.ServeMux
}

// NewServer wires the routes.
func NewServer(c *Coordinator) *Server {
	s := &Server{c: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
	s.mux.HandleFunc("GET /clusterz", s.handleClusterz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody mirrors the backend error payload: retryAfterSeconds carries the
// machine-readable retry hint alongside the Retry-After header.
// retry_after_seconds repeats it under the pre-rename name for clients built
// against the old wire format (deprecated; will be dropped).
type errorBody struct {
	Error            string `json:"error"`
	RetryAfter       int    `json:"retryAfterSeconds,omitempty"`
	RetryAfterLegacy int    `json:"retry_after_seconds,omitempty"`
}

// retryBody builds an errorBody carrying the retry hint under both names.
func retryBody(msg string, secs int) errorBody {
	return errorBody{Error: msg, RetryAfter: secs, RetryAfterLegacy: secs}
}

// submitResponse acknowledges an admitted job in the backend wire shape.
type submitResponse struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Location    string `json:"location"`
	TotalUnits  int    `json:"total_units"`
	CachedUnits int    `json:"cached_units"`
}

// handleSubmit admits one job cluster-wide.
//
//flea:coldpath admission control; never on the simulation hot path.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var spec service.JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding job spec: %v", err)})
		return
	}
	job, err := s.c.Submit(spec)
	if err != nil {
		var qf *service.QueueFullError
		switch {
		case errors.As(err, &qf):
			secs := int(qf.RetryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, retryBody(err.Error(), secs))
		case errors.Is(err, ErrDraining), errors.Is(err, ErrNoBackends):
			w.Header().Set("Retry-After", "5")
			writeJSON(w, http.StatusServiceUnavailable, retryBody(err.Error(), 5))
		case errors.Is(err, service.ErrInvalidSpec):
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	loc := "/v1/jobs/" + job.ID()
	w.Header().Set("Location", loc)
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:          job.ID(),
		State:       job.State().String(),
		Location:    loc,
		TotalUnits:  len(job.units),
		CachedUnits: job.CachedUnits(),
	})
}

// handleJob reports one cluster job's status in the backend wire shape.
//
//flea:coldpath reporting; reads sealed federated entries.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.c.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleHealth is the coordinator liveness probe: 200 while at least one
// backend is live and intake is open, 503 otherwise.
//
//flea:coldpath liveness only.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	live := s.c.LiveBackends()
	body := map[string]any{
		"status":      "ok",
		"backends":    len(s.c.clients),
		"backends_up": live,
	}
	switch {
	case s.c.Draining():
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
	case live == 0:
		body["status"] = "no live backends"
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		writeJSON(w, http.StatusOK, body)
	}
}

// handleMetrics renders the coordinator registry: plain "name value" lines
// by default, a structured object with ?format=json.
//
//flea:coldpath observation only.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		counters, gauges := s.c.reg.Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"counters": counters,
			"gauges":   gauges,
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.c.reg.EachCounter(func(name string, v int64) { fmt.Fprintf(w, "%s %d\n", name, v) })
	s.c.reg.EachGauge(func(name string, v int64) { fmt.Fprintf(w, "%s %d\n", name, v) })
}

// clusterzReport is the GET /clusterz body.
type clusterzReport struct {
	Backends    []BackendStatus  `json:"backends"`
	RingPoints  int              `json:"ring_points"`
	Replicas    int              `json:"replicas_per_backend"`
	Draining    bool             `json:"draining"`
	Coordinator map[string]int64 `json:"coordinator"`
}

// handleClusterz reports the cluster view: per-backend routing state and
// scraped service metrics, ring shape, and every coordinator counter/gauge
// in one flat map.
//
//flea:coldpath observation only.
func (s *Server) handleClusterz(w http.ResponseWriter, r *http.Request) {
	statuses := s.c.sched.snapshot()
	for i := range statuses {
		statuses[i].ID = s.c.clients[i].id
		if counters, gauges, err := s.c.clients[i].scrapeMetrics(r.Context()); err == nil {
			statuses[i].Scraped = true
			statuses[i].UnitsExecuted = counters[service.MetricUnitsExecuted]
			statuses[i].CacheHitsPermille = gauges[service.GaugeCacheHitRatio]
			statuses[i].QueueDepth = gauges[service.GaugeQueueDepth]
		}
	}
	counters, gauges := s.c.reg.Snapshot()
	flat := make(map[string]int64, len(counters)+len(gauges))
	for _, m := range []map[string]int64{counters, gauges} {
		//flea:orderinvariant flat is keyed by metric name; insertion order is irrelevant.
		for name, v := range m {
			flat[name] = v
		}
	}
	writeJSON(w, http.StatusOK, clusterzReport{
		Backends:    statuses,
		RingPoints:  len(s.c.ring.points),
		Replicas:    s.c.cfg.Replicas,
		Draining:    s.c.Draining(),
		Coordinator: flat,
	})
}
