package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is the consistent-hash placement structure: each backend projects
// Replicas virtual points onto a 64-bit circle, and a unit key is owned by
// the backend whose point follows the key's hash. Placement is a pure
// function of (membership, replicas, key): every coordinator over the same
// membership file routes every key identically, and adding or removing one
// backend moves only the keys whose arcs it owned — the property that keeps
// the backends' local result caches warm across membership changes.
//
// The ring is immutable after construction. Liveness is not ring state:
// a down backend keeps its points and lookups simply skip it via the
// preference order, so a mark-down/mark-up cycle does not remap the keys
// of the surviving backends.
type ring struct {
	points   []ringPoint
	backends int
}

// ringPoint is one virtual node: a position on the circle and the index of
// the backend that owns it.
type ringPoint struct {
	hash    uint64
	backend int
}

// defaultReplicas is the virtual-node count per backend. 64 points per
// backend keeps the expected per-backend load within a few percent of even
// for small clusters.
const defaultReplicas = 64

// newRing builds the ring over n backends identified by their ids.
func newRing(ids []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{
		points:   make([]ringPoint, 0, len(ids)*replicas),
		backends: len(ids),
	}
	for i, id := range ids {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("%s#%d", id, v)),
				backend: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Identical hashes (vanishingly rare) tie-break by backend index so
		// the order stays deterministic across coordinators.
		return r.points[a].backend < r.points[b].backend
	})
	return r
}

// hash64 is the first eight bytes of SHA-256 — the same family the unit
// cache keys use, so placement inherits their collision resistance.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// preference returns all backend indices in the key's failover order: the
// owner first, then each distinct backend encountered walking the circle.
// Every backend appears exactly once, so the slice doubles as the retry
// route when earlier entries are down.
func (r *ring) preference(key string) []int {
	prefs := make([]int, 0, r.backends)
	if len(r.points) == 0 {
		return prefs
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.backends)
	for i := 0; i < len(r.points) && len(prefs) < r.backends; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			prefs = append(prefs, p.backend)
		}
	}
	return prefs
}

// owner returns the key's primary backend index.
func (r *ring) owner(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	return r.points[i%len(r.points)].backend
}
