package cluster

import (
	"sync"

	"fleaflicker/internal/service"
)

// unitTask is one fresh unit the cluster must compute: the wire form to
// dispatch, the federated entry it completes, and its ring preference order
// (owner first) used for routing and failover.
type unitTask struct {
	wire      service.WireUnit
	key       string
	entry     *fedEntry
	prefs     []int // ring preference (backend indices), owner first
	attempts  int   // dispatch attempts so far (re-routes increment)
	backoffs  int   // backpressure (429/503) pauses absorbed so far
	timeoutMS int64
	job       *Job // admitting job; its ctx governs execution
}

// scheduler owns all mutable routing state: one queue per backend, the
// per-backend liveness flags the prober maintains, and the in-flight
// accounting the dispatch slots update. A single mutex guards all of it —
// membership is small (a handful of backends) and every operation is a few
// slice moves, so one lock keeps the ownership/steal invariant trivially
// auditable: a task is in exactly one queue, or in exactly one dispatch
// slot, never both.
type scheduler struct {
	met *clusterMetrics

	// wake carries one token per backend: dispatch slots park on it when
	// both their own queue and every steal candidate are empty. Buffered so
	// an enqueue never blocks; immutable after construction.
	wake []chan struct{}

	mu sync.Mutex
	//flea:guardedby(mu)
	queues [][]*unitTask
	//flea:guardedby(mu)
	up []bool
	//flea:guardedby(mu)
	probeFails []int // consecutive failed probes per backend
	//flea:guardedby(mu)
	probeOKs []int // consecutive successful probes per backend
	//flea:guardedby(mu)
	inflight []int
	//flea:guardedby(mu)
	queued int // total across queues
	//flea:guardedby(mu)
	executed []int64 // units actually simulated per backend
	//flea:guardedby(mu)
	peerServed []int64 // units this backend's slots served from a peer's cache
	//flea:guardedby(mu)
	stolen []int64 // units this backend's slots stole from others
	//flea:guardedby(mu)
	closed bool // intake refused; queued tasks still drain
	//flea:guardedby(mu)
	stopped bool // dispatch over: next yields nil, requeue refuses
}

// taskOutcome is how a dispatch slot retired a task, for the per-backend
// accounting /clusterz reports.
type taskOutcome int

const (
	// taskAbandoned: failed, re-routed or requeued — not completed here.
	taskAbandoned taskOutcome = iota
	// taskExecuted: simulated on this backend.
	taskExecuted
	// taskPeerServed: completed from a federation peer's cache, no simulation.
	taskPeerServed
)

func newScheduler(n int, met *clusterMetrics) *scheduler {
	s := &scheduler{
		met:        met,
		wake:       make([]chan struct{}, n),
		queues:     make([][]*unitTask, n),
		up:         make([]bool, n),
		probeFails: make([]int, n),
		probeOKs:   make([]int, n),
		inflight:   make([]int, n),
		executed:   make([]int64, n),
		peerServed: make([]int64, n),
		stolen:     make([]int64, n),
	}
	for i := range s.wake {
		s.wake[i] = make(chan struct{}, 1)
		s.up[i] = true // optimistic until the prober says otherwise
	}
	met.backendsUp.Set(int64(n))
	return s
}

// signal wakes one parked dispatch slot of backend b.
func (s *scheduler) signal(b int) {
	select {
	case s.wake[b] <- struct{}{}:
	default:
	}
}

// signalAll wakes a slot on every backend (steal candidates changed).
func (s *scheduler) signalAll() {
	for i := range s.wake {
		s.signal(i)
	}
}

// routeTo picks the first live backend in the task's preference order,
// or -1 when every backend is down. Caller holds s.mu.
//
//flea:locked(mu)
func (s *scheduler) routeTo(t *unitTask) int {
	for _, b := range t.prefs {
		if s.up[b] {
			return b
		}
	}
	return -1
}

// tryEnqueueAll admits a submission's fresh tasks all-or-nothing against the
// cluster queue bound, routing each to the first live backend in its
// preference order. It fails when the batch does not fit, intake is closed,
// or no backend is live.
func (s *scheduler) tryEnqueueAll(tasks []*unitTask, bound int) bool {
	s.mu.Lock()
	if s.closed || s.queued+len(tasks) > bound {
		s.mu.Unlock()
		return false
	}
	targets := make([]int, len(tasks))
	for i, t := range tasks {
		b := s.routeTo(t)
		if b < 0 {
			s.mu.Unlock()
			return false
		}
		targets[i] = b
	}
	for i, t := range tasks {
		s.queues[targets[i]] = append(s.queues[targets[i]], t)
	}
	s.queued += len(tasks)
	s.met.queuedUnits.Set(int64(s.queued))
	s.mu.Unlock()
	for _, b := range targets {
		s.met.unitsRouted.Inc()
		s.signal(b)
	}
	return true
}

// requeue places a task back on a queue after a backoff or failure,
// excluding the backend it just failed on when possible. Returns false when
// no live backend remains.
func (s *scheduler) requeue(t *unitTask, avoid int) bool {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return false
	}
	target := -1
	for _, b := range t.prefs {
		if s.up[b] && b != avoid {
			target = b
			break
		}
	}
	if target < 0 && avoid >= 0 && s.up[avoid] {
		target = avoid // only the failing backend is left; let it retry
	}
	if target < 0 {
		s.mu.Unlock()
		return false
	}
	s.queues[target] = append(s.queues[target], t)
	s.queued++
	s.met.queuedUnits.Set(int64(s.queued))
	s.mu.Unlock()
	s.signal(target)
	return true
}

// next pops the next task for a dispatch slot of backend b: the head of its
// own queue, or — when idle — a steal from the tail of the longest other
// live backend's queue. Returns nil when there is nothing to do. The pop
// and the steal run under one lock acquisition, so a task can never be
// taken twice (the steal-vs-complete race the tests drive).
func (s *scheduler) next(b int) *unitTask {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil
	}
	if !s.up[b] {
		return nil // a down backend's slots park until mark-up
	}
	if len(s.queues[b]) > 0 {
		t := s.queues[b][0]
		s.queues[b][0] = nil
		s.queues[b] = s.queues[b][1:]
		s.taskPoppedLocked(b)
		return t
	}
	// Idle: steal from the straggler with the longest queue. Ties break on
	// the lowest index, keeping victim choice deterministic for a given
	// queue state.
	victim, longest := -1, 0
	for i := range s.queues {
		if i != b && s.up[i] && len(s.queues[i]) > longest {
			victim, longest = i, len(s.queues[i])
		}
	}
	if victim < 0 {
		return nil
	}
	last := len(s.queues[victim]) - 1
	t := s.queues[victim][last]
	s.queues[victim][last] = nil
	s.queues[victim] = s.queues[victim][:last]
	s.stolen[b]++
	s.met.unitsStolen.Inc()
	s.taskPoppedLocked(b)
	return t
}

// taskPoppedLocked moves one task from queued to in-flight accounting.
// Caller holds s.mu.
//
//flea:locked(mu)
func (s *scheduler) taskPoppedLocked(b int) {
	s.queued--
	s.inflight[b]++
	s.met.queuedUnits.Set(int64(s.queued))
	s.met.inflight.Add(1)
}

// taskDone retires a task from backend b's in-flight accounting. Simulated
// and peer-served completions count separately so /clusterz's executed[]
// reflects only real simulations on b.
func (s *scheduler) taskDone(b int, outcome taskOutcome) {
	s.mu.Lock()
	s.inflight[b]--
	switch outcome {
	case taskExecuted:
		s.executed[b]++
	case taskPeerServed:
		s.peerServed[b]++
	}
	s.mu.Unlock()
	s.met.inflight.Add(-1)
}

// isUp reports whether backend b is currently marked up.
func (s *scheduler) isUp(b int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.up[b]
}

// noteProbe feeds one health-probe outcome into the mark-down/mark-up state
// machine and returns the tasks to re-route (non-nil only on the probe that
// crossed the mark-down threshold).
func (s *scheduler) noteProbe(b int, ok bool, failThreshold, upThreshold int) (drained []*unitTask, markedDown, markedUp bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ok {
		s.probeFails[b] = 0
		s.probeOKs[b]++
		if !s.up[b] && s.probeOKs[b] >= upThreshold {
			s.up[b] = true
			markedUp = true
			s.met.markups.Inc()
			s.met.backendsUp.Set(s.upCountLocked())
		}
		return nil, false, markedUp
	}
	s.probeOKs[b] = 0
	s.probeFails[b]++
	if s.up[b] && s.probeFails[b] >= failThreshold {
		s.up[b] = false
		markedDown = true
		s.met.markdowns.Inc()
		s.met.backendsUp.Set(s.upCountLocked())
		// Hand the dead backend's queue back to the caller for re-routing;
		// its in-flight tasks re-route themselves when their polls fail.
		drained = s.queues[b]
		s.queues[b] = nil
		s.queued -= len(drained)
		s.met.queuedUnits.Set(int64(s.queued))
	}
	return drained, markedDown, false
}

// upCountLocked counts live backends. Caller holds s.mu.
//
//flea:locked(mu)
func (s *scheduler) upCountLocked() int64 {
	n := int64(0)
	for _, u := range s.up {
		if u {
			n++
		}
	}
	return n
}

// snapshot copies the per-backend view for /clusterz.
func (s *scheduler) snapshot() []BackendStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BackendStatus, len(s.queues))
	for i := range s.queues {
		out[i] = BackendStatus{
			Up:         s.up[i],
			Queued:     len(s.queues[i]),
			Inflight:   s.inflight[i],
			Executed:   s.executed[i],
			PeerServed: s.peerServed[i],
			Stolen:     s.stolen[i],
		}
	}
	return out
}

// close stops intake; queued tasks still drain through next.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.signalAll()
}

// stop ends dispatch after a cancelled drain: it marks the scheduler stopped
// — next yields nil and requeue refuses, so every concurrent caller seals
// its task — and hands back all still-queued tasks so the coordinator can
// fail them. Without this, a drain deadline would strand queued tasks with
// unsealed entries and their jobs' collectors would wait forever.
func (s *scheduler) stop() []*unitTask {
	s.mu.Lock()
	s.closed = true
	s.stopped = true
	var orphans []*unitTask
	for i := range s.queues {
		orphans = append(orphans, s.queues[i]...)
		s.queues[i] = nil
	}
	s.queued = 0
	s.met.queuedUnits.Set(0)
	s.mu.Unlock()
	s.signalAll()
	return orphans
}
