package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"fleaflicker/internal/service"
)

// Job is one admitted cluster submission: an ordered set of units resolving
// against the federated cache and the backend dispatch queues. Its status
// renders in the same wire shape as a backend job (service.Status), so
// clients like fleaload drive a coordinator and a single daemon identically.
//
// The coordinator deliberately reports no wall-clock fields (Created stays
// zero): internal/cluster is in the nondeterminism analyzer's scope, and
// end-to-end latency is the client's measurement anyway.
type Job struct {
	id      string
	units   []service.UnitSpec
	entries []*fedEntry
	// cachedAtSubmit marks units resolved without a fresh dispatch on this
	// job's behalf: federated-cache hits and coalesced in-flight entries.
	cachedAtSubmit []bool

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu sync.Mutex
	//flea:guardedby(mu)
	state service.JobState
	//flea:guardedby(mu)
	completed int
	//flea:guardedby(mu)
	unitErrs []error
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle phase.
func (j *Job) State() service.JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's joined unit errors once terminal; nil on success.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return errors.Join(j.unitErrs...)
}

// CachedUnits returns how many units resolved without a fresh dispatch.
func (j *Job) CachedUnits() int {
	n := 0
	for _, c := range j.cachedAtSubmit {
		if c {
			n++
		}
	}
	return n
}

// Status snapshots the job in the backend-compatible wire shape. Unit
// results appear as their federated entries complete, wherever in the
// cluster they were computed.
func (j *Job) Status() service.Status {
	j.mu.Lock()
	state := j.state
	completed := j.completed
	errText := ""
	if err := errors.Join(j.unitErrs...); err != nil {
		errText = err.Error()
	}
	j.mu.Unlock()

	st := service.Status{
		ID:             j.id,
		State:          state.String(),
		TotalUnits:     len(j.units),
		CompletedUnits: completed,
		CachedUnits:    j.CachedUnits(),
		Error:          errText,
		Units:          make([]service.UnitStatus, len(j.units)),
	}
	for i := range j.units {
		u := &j.units[i]
		us := service.UnitStatus{
			Key:    j.entries[i].key,
			Model:  u.ModelName,
			Bench:  u.Bench,
			Params: u.Params,
			Cached: j.cachedAtSubmit[i],
			State:  "pending",
		}
		e := j.entries[i]
		if e.completed() {
			if e.err != nil {
				us.State = "failed"
				us.Error = e.err.Error()
			} else {
				us.State = "done"
				us.Result = e.result
			}
		}
		st.Units[i] = us
	}
	return st
}

// collect waits for the job's entries and finalizes the record; it runs as
// one goroutine per job, started at admission.
func (c *Coordinator) collect(job *Job) {
	defer c.jobWG.Done()

	job.mu.Lock()
	job.state = service.JobRunning
	job.mu.Unlock()

	finished := make(chan int, len(job.entries))
	for i := range job.entries {
		go func(i int) {
			<-job.entries[i].done
			finished <- i
		}(i)
	}
	for n := 0; n < len(job.entries); n++ {
		i := <-finished
		e := job.entries[i]
		job.mu.Lock()
		job.completed++
		if e.err != nil {
			job.unitErrs = append(job.unitErrs, fmt.Errorf("%s/%s: %w",
				job.units[i].Bench, job.units[i].ModelName, e.err))
		}
		job.mu.Unlock()
	}

	job.cancel()
	job.mu.Lock()
	if len(job.unitErrs) > 0 {
		job.state = service.JobFailed
	} else {
		job.state = service.JobDone
	}
	failed := job.state == service.JobFailed
	job.mu.Unlock()

	if failed {
		c.met.jobsFailed.Inc()
	} else {
		c.met.jobsCompleted.Inc()
	}
	c.met.jobsActive.Add(-1)
	close(job.done)
}
