package cluster

import (
	"fmt"
	"testing"
)

func testIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	return ids
}

// TestRingDeterministic is the routing half of the determinism contract:
// two coordinators over the same membership place every key identically.
func TestRingDeterministic(t *testing.T) {
	a := newRing(testIDs(5), 64)
	b := newRing(testIDs(5), 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("unit-%d", i)
		pa, pb := a.preference(key), b.preference(key)
		if len(pa) != len(pb) {
			t.Fatalf("key %q: preference lengths differ: %d vs %d", key, len(pa), len(pb))
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("key %q: preference[%d] = %d vs %d", key, j, pa[j], pb[j])
			}
		}
		if a.owner(key) != b.owner(key) {
			t.Fatalf("key %q: owners differ", key)
		}
	}
}

// TestRingPreferenceCoversAllBackends checks the failover order is a
// permutation of the membership: every backend exactly once, owner first.
func TestRingPreferenceCoversAllBackends(t *testing.T) {
	r := newRing(testIDs(4), 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("unit-%d", i)
		prefs := r.preference(key)
		if len(prefs) != 4 {
			t.Fatalf("key %q: %d prefs, want 4", key, len(prefs))
		}
		seen := make(map[int]bool)
		for _, b := range prefs {
			if seen[b] {
				t.Fatalf("key %q: backend %d appears twice in %v", key, b, prefs)
			}
			seen[b] = true
		}
		if prefs[0] != r.owner(key) {
			t.Fatalf("key %q: prefs[0]=%d but owner=%d", key, prefs[0], r.owner(key))
		}
	}
}

// TestRingBalance checks virtual nodes spread keys within a reasonable
// factor of even: no backend owns more than twice its fair share.
func TestRingBalance(t *testing.T) {
	const backends, keys = 3, 3000
	r := newRing(testIDs(backends), 64)
	counts := make([]int, backends)
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("unit-%d", i))]++
	}
	fair := keys / backends
	for b, n := range counts {
		if n == 0 {
			t.Fatalf("backend %d owns zero keys", b)
		}
		if n > 2*fair {
			t.Fatalf("backend %d owns %d of %d keys (> 2x fair share %d): %v", b, n, keys, fair, counts)
		}
	}
}

// TestRingRemapMinimality checks the consistent-hashing property the cache
// federation depends on: removing one backend only moves the keys it owned,
// so the survivors' local caches stay warm across membership changes.
func TestRingRemapMinimality(t *testing.T) {
	ids := testIDs(4)
	full := newRing(ids, 64)
	reduced := newRing(ids[:3], 64)
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("unit-%d", i)
		was, now := full.owner(key), reduced.owner(key)
		if was < 3 && now != was {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys owned by surviving backends remapped when backend 3 left; want 0", moved)
	}
}
