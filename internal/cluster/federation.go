package cluster

import (
	"errors"
	"sync"

	"fleaflicker/internal/service"
)

// fedCache is the coordinator's federated view of the cluster's result
// caches: one entry per content-addressed unit key, coalescing duplicate
// submissions onto a single in-flight computation exactly like a backend's
// local cache does — but cluster-wide.
//
// Ownership/steal invariant (documented in DESIGN.md §Cluster): a claimed
// entry is completed by exactly one writer. Re-routes and steals can race a
// late completion from a backend that was presumed dead, so complete() is
// first-writer-wins; the losing write is dropped and counted
// (cluster.federation.duplicate_drops), never stored twice.
type fedCache struct {
	met *clusterMetrics

	mu sync.Mutex
	//flea:guardedby(mu)
	entries map[string]*fedEntry
}

// errFedAbandoned marks an entry rolled back by a rejected submission.
var errFedAbandoned = errors.New("cluster: unit abandoned by rejected submission")

// fedEntry is one federated cache slot.
type fedEntry struct {
	key  string
	done chan struct{}
	// sealed flips once, under the owning cache's mu, when the first writer
	// completes the entry; result/origin/err are set before done closes and
	// immutable afterwards (readers synchronize on <-done).
	sealed bool
	result *service.UnitResult
	origin string // backend id (or "peer:<id>") that produced the result
	err    error
}

// completed reports whether the entry has finished.
func (e *fedEntry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

func newFedCache(met *clusterMetrics) *fedCache {
	return &fedCache{met: met, entries: make(map[string]*fedEntry)}
}

// acquire returns the entry for key and whether the caller claimed it (and
// so must arrange for a computation — peer lookup or dispatch — that
// completes it).
func (f *fedCache) acquire(key string) (e *fedEntry, claimed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.entries[key]; ok {
		if e.completed() {
			f.met.fedHits.Inc()
		} else {
			f.met.fedCoalesced.Inc()
		}
		return e, false
	}
	e = &fedEntry{key: key, done: make(chan struct{})}
	f.entries[key] = e
	f.met.fedMisses.Inc()
	f.met.fedEntries.Set(int64(len(f.entries)))
	return e, true
}

// abandon rolls back a claim whose tasks could not be enqueued (cluster
// queue full, no live backends). Only the submission that claimed the entry
// may abandon it, while it still holds the coordinator's admission lock.
func (f *fedCache) abandon(e *fedEntry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.entries, e.key)
	f.met.fedEntries.Set(int64(len(f.entries)))
	e.err = errFedAbandoned
	e.sealed = true
	close(e.done)
}

// complete seals an entry with the first result (or error) to arrive and
// reports whether this call won. A losing concurrent completion — a stolen
// or re-routed unit finishing twice — is dropped and counted; the stored
// result never changes after sealing. Completing with an error removes the
// entry so a later submission can retry the key.
func (f *fedCache) complete(e *fedEntry, res *service.UnitResult, origin string, err error) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if e.sealed {
		f.met.fedDupDrops.Inc()
		return false
	}
	if err != nil {
		delete(f.entries, e.key)
	}
	f.met.fedEntries.Set(int64(len(f.entries)))
	e.result, e.origin, e.err = res, origin, err
	e.sealed = true
	close(e.done)
	return true
}
