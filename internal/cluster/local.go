package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"fleaflicker/internal/service"
)

// Local is an in-process cluster: n real fleasimd backends, each a
// service.Manager behind a real TCP listener on a loopback port, and one
// Coordinator routing across them. It is the harness `make cluster-smoke`,
// the race tests and fleabench all drive — everything above the sockets is
// exactly the production stack, so a kill here exercises the same probe,
// mark-down and re-route paths a dead daemon would.
type Local struct {
	Coordinator *Coordinator

	managers  []*service.Manager
	servers   []*http.Server
	listeners []net.Listener
	urls      []string

	mu sync.Mutex
	//flea:guardedby(mu)
	killed []bool
	//flea:guardedby(mu)
	closed bool
}

// StartLocal boots n backends with svcCfg (svcOpts applied to each) and a
// coordinator with clCfg over them; clCfg.Backends is filled in from the
// listeners and must be empty.
func StartLocal(n int, svcCfg service.Config, clCfg Config, svcOpts ...service.Option) (*Local, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one backend, got %d", n)
	}
	if len(clCfg.Backends) != 0 {
		return nil, fmt.Errorf("cluster: StartLocal fills Backends; leave it empty")
	}
	l := &Local{killed: make([]bool, n)}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("cluster: listening for backend %d: %w", i, err)
		}
		m := service.New(svcCfg, svcOpts...)
		srv := &http.Server{Handler: service.NewServer(m)}
		l.managers = append(l.managers, m)
		l.servers = append(l.servers, srv)
		l.listeners = append(l.listeners, ln)
		l.urls = append(l.urls, "http://"+ln.Addr().String())
		go srv.Serve(ln)
	}
	clCfg.Backends = l.urls
	c, err := New(clCfg)
	if err != nil {
		l.Close()
		return nil, err
	}
	l.Coordinator = c
	return l, nil
}

// URLs returns the backend base URLs in index order.
func (l *Local) URLs() []string {
	out := make([]string, len(l.urls))
	copy(out, l.urls)
	return out
}

// Manager returns backend i's service manager (for metric assertions).
func (l *Local) Manager(i int) *service.Manager { return l.managers[i] }

// KillBackend abruptly stops backend i — listener and server close, in-flight
// requests are cut — simulating a crashed daemon. The coordinator's prober
// marks it down; its queued and in-flight units re-route.
func (l *Local) KillBackend(i int) {
	l.mu.Lock()
	if l.killed[i] {
		l.mu.Unlock()
		return
	}
	l.killed[i] = true
	l.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	l.servers[i].SetKeepAlivesEnabled(false)
	if err := l.servers[i].Shutdown(ctx); err != nil {
		_ = l.servers[i].Close()
	}
	_ = l.listeners[i].Close()
}

// Close drains the coordinator (bounded) and stops every backend.
func (l *Local) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	if l.Coordinator != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = l.Coordinator.Drain(ctx)
		cancel()
	}
	for i := range l.servers {
		l.KillBackend(i)
	}
	for _, m := range l.managers {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = m.Drain(ctx)
		cancel()
	}
}
