package fleaflow

import (
	"context"
	"fmt"
	"sync"

	"fleaflicker/internal/metrics"
)

// StageStatus is the terminal (or in-flight) disposition of one stage.
type StageStatus string

const (
	// StatusPending: not yet scheduled.
	StatusPending StageStatus = "pending"
	// StatusRunning: executing on a worker.
	StatusRunning StageStatus = "running"
	// StatusDone: ran and produced a fresh artifact.
	StatusDone StageStatus = "done"
	// StatusCached: satisfied by an existing artifact; Run never called.
	StatusCached StageStatus = "cached"
	// StatusFailed: Run returned an error, timed out, or was cancelled.
	StatusFailed StageStatus = "failed"
	// StatusParked: skipped because an ancestor failed — the failure
	// isolation disposition; independent branches keep running.
	StatusParked StageStatus = "parked"
)

// StageResult is one stage's outcome within a Report.
type StageResult struct {
	Stage  string      `json:"stage"`
	Status StageStatus `json:"status"`
	// Key is the artifact key ("" for parked stages, whose inputs never
	// resolved).
	Key string `json:"key,omitempty"`
	Err string `json:"err,omitempty"`
}

// Report is the outcome of one Run: every stage's disposition, in the
// pipeline's topological order.
type Report struct {
	Pipeline string        `json:"pipeline"`
	Stages   []StageResult `json:"stages"`
	Ran      int           `json:"ran"`
	Cached   int           `json:"cached"`
	Failed   int           `json:"failed"`
	Parked   int           `json:"parked"`
}

// Result returns the named stage's result, or nil.
func (r *Report) Result(name string) *StageResult {
	for i := range r.Stages {
		if r.Stages[i].Stage == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// Key returns the named stage's artifact key ("" when absent or parked).
func (r *Report) Key(name string) string {
	if res := r.Result(name); res != nil {
		return res.Key
	}
	return ""
}

// Err aggregates the report into a single error: nil when every stage is
// done or cached.
func (r *Report) Err() error {
	if r.Failed == 0 && r.Parked == 0 {
		return nil
	}
	for i := range r.Stages {
		if r.Stages[i].Status == StatusFailed {
			return fmt.Errorf("fleaflow: %d stages failed, %d parked (first: %s: %s)",
				r.Failed, r.Parked, r.Stages[i].Stage, r.Stages[i].Err)
		}
	}
	return fmt.Errorf("fleaflow: %d stages parked", r.Parked)
}

// Event is one progress observation, delivered to Options.Observer from
// the scheduler goroutine (never concurrently).
type Event struct {
	Stage  string
	Status StageStatus
	Key    string
	Err    string
}

// Options configures one Run.
type Options struct {
	// Store is the artifact store (required).
	Store *Store
	// Parallelism bounds concurrently executing stages (<=0 means 4).
	Parallelism int
	// Fresh ignores existing artifacts: every stage re-runs (outputs still
	// land in the store under the same keys).
	Fresh bool
	// Observer, when non-nil, receives progress events from the scheduler
	// goroutine.
	Observer func(Event)
	// Registry, when non-nil, receives the fleaflow.* metrics.
	Registry *metrics.Registry
}

// task is one dispatched stage execution.
type task struct {
	stage *Stage
	key   string
	in    *Inputs
}

// outcome is a worker's report of one finished execution.
type outcome struct {
	name string
	key  string
	err  error
}

// Run executes the pipeline against the store: a topological worker pool
// with bounded parallelism, per-stage timeouts, and failure isolation. A
// stage whose artifact already exists (same definition, same inputs) is a
// cache hit and does not run; on failure its transitive downstream parks
// while independent branches continue; on ctx cancellation in-flight
// stages are cancelled and everything unfinished parks. The returned
// Report always covers every stage; the error mirrors Report.Err (or the
// ctx error).
//
// All scheduling state lives on this goroutine — workers only execute Run
// functions and report over a channel — so the engine needs no locks and
// the Observer never sees concurrent events.
func Run(ctx context.Context, p *Pipeline, opts Options) (*Report, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("fleaflow: Run needs an artifact store")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	order, err := p.TopoOrder()
	if err != nil {
		return nil, err
	}
	par := opts.Parallelism
	if par <= 0 {
		par = 4
	}
	if par > len(order) {
		par = len(order)
	}
	em := newEngineMetrics(opts.Registry)

	index := make(map[string]*Stage, len(order))
	waiting := make(map[string]int, len(order))
	children := make(map[string][]string, len(order))
	results := make(map[string]*StageResult, len(order))
	for _, st := range p.Stages {
		index[st.Name] = st
		waiting[st.Name] = len(st.Deps)
		for _, d := range st.Deps {
			children[d] = append(children[d], st.Name)
		}
		results[st.Name] = &StageResult{Stage: st.Name, Status: StatusPending}
	}

	tasks := make(chan task, len(order)) // buffered: scheduler sends never block
	done := make(chan outcome)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				done <- execute(ctx, opts.Store, t)
			}
		}()
	}

	emit := func(name string, status StageStatus, key string, errText string) {
		if opts.Observer != nil {
			opts.Observer(Event{Stage: name, Status: status, Key: key, Err: errText})
		}
	}

	// park marks name and its transitive pending downstream as parked.
	var park func(name string, remaining *int)
	park = func(name string, remaining *int) {
		res := results[name]
		if res.Status != StatusPending {
			return
		}
		res.Status = StatusParked
		*remaining--
		if em != nil {
			em.parked.Inc()
		}
		emit(name, StatusParked, "", "")
		for _, ch := range children[name] {
			park(ch, remaining)
		}
	}

	keys := make(map[string]string, len(order))
	remaining := len(order)
	inflight := 0

	// complete settles one finished stage (fresh, cached, or failed) and
	// unblocks or parks its children; newly runnable children go on the
	// ready list.
	var ready []string
	complete := func(name string, status StageStatus, key string, runErr error) {
		res := results[name]
		res.Status = status
		res.Key = key
		remaining--
		switch status {
		case StatusDone:
			if em != nil {
				em.ran.Inc()
			}
		case StatusCached:
			if em != nil {
				em.cached.Inc()
			}
		case StatusFailed:
			res.Err = runErr.Error()
			if em != nil {
				em.failed.Inc()
			}
		}
		errText := ""
		if runErr != nil {
			errText = runErr.Error()
		}
		emit(name, status, key, errText)
		for _, ch := range children[name] {
			if status == StatusFailed {
				park(ch, &remaining)
				continue
			}
			waiting[ch]--
			if waiting[ch] == 0 {
				ready = append(ready, ch)
			}
		}
	}

	for _, name := range order {
		if waiting[name] == 0 {
			ready = append(ready, name)
		}
	}

	var ctxErr error
	for remaining > 0 && ctxErr == nil {
		// Dispatch everything runnable. A cached stage completes inline,
		// which can extend the ready list — hence the draining loop.
		for len(ready) > 0 {
			name := ready[0]
			ready = ready[1:]
			st := index[name]
			depKeys := make(map[string]string, len(st.Deps))
			for _, d := range st.Deps {
				depKeys[d] = keys[d]
			}
			key, kerr := StageKey(st.Name, st.Def, depKeys)
			if kerr != nil {
				complete(name, StatusFailed, "", kerr)
				continue
			}
			keys[name] = key
			if !opts.Fresh && opts.Store.Has(key) {
				complete(name, StatusCached, key, nil)
				continue
			}
			results[name].Status = StatusRunning
			emit(name, StatusRunning, key, "")
			tasks <- task{stage: st, key: key, in: &Inputs{store: opts.Store, keys: depKeys}}
			inflight++
			if em != nil {
				em.inflight.Set(int64(inflight))
			}
		}
		if remaining == 0 {
			break
		}
		select {
		case <-ctx.Done():
			ctxErr = ctx.Err()
		case out := <-done:
			inflight--
			if em != nil {
				em.inflight.Set(int64(inflight))
			}
			if out.err != nil {
				complete(out.name, StatusFailed, out.key, out.err)
			} else {
				complete(out.name, StatusDone, out.key, nil)
			}
		}
	}

	// Cancelled: in-flight executions see the same ctx and return shortly;
	// drain their outcomes (recorded as failures), then park whatever
	// never started. Completed artifacts stay in the store, which is
	// exactly what --resume picks up.
	if ctxErr != nil {
		for inflight > 0 {
			out := <-done
			inflight--
			err := out.err
			if err == nil {
				// A stage that won its race against cancellation still
				// counts: its artifact is durable.
				complete(out.name, StatusDone, out.key, nil)
				continue
			}
			complete(out.name, StatusFailed, out.key, err)
		}
		if em != nil {
			em.inflight.Set(0)
		}
		for _, name := range order {
			if results[name].Status == StatusPending {
				park(name, &remaining)
			}
		}
	}
	close(tasks)
	wg.Wait()

	rep := &Report{Pipeline: p.Name, Stages: make([]StageResult, 0, len(order))}
	for _, name := range order {
		res := results[name]
		rep.Stages = append(rep.Stages, *res)
		switch res.Status {
		case StatusDone:
			rep.Ran++
		case StatusCached:
			rep.Cached++
		case StatusFailed:
			rep.Failed++
		case StatusParked:
			rep.Parked++
		}
	}
	if ctxErr != nil {
		return rep, ctxErr
	}
	return rep, rep.Err()
}

// execute runs one stage under its timeout and persists the artifact.
func execute(ctx context.Context, store *Store, t task) outcome {
	if t.stage.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t.stage.Timeout)
		defer cancel()
	}
	v, err := t.stage.Run(ctx, t.in)
	if err != nil {
		return outcome{name: t.stage.Name, key: t.key, err: err}
	}
	if err := store.Put(t.key, v); err != nil {
		return outcome{name: t.stage.Name, key: t.key, err: err}
	}
	return outcome{name: t.stage.Name, key: t.key}
}
