package fleaflow

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the pipeline as a Graphviz digraph (stages sorted by name,
// edges by endpoint pair, so the output is stable under map-free
// iteration and diffs cleanly).
func DOT(p *Pipeline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", p.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	names := make([]string, 0, len(p.Stages))
	for _, st := range p.Stages {
		names = append(names, st.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	var edges []string
	for _, st := range p.Stages {
		for _, d := range st.Deps {
			edges = append(edges, fmt.Sprintf("  %q -> %q;", d, st.Name))
		}
	}
	sort.Strings(edges)
	for _, e := range edges {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders the pipeline as an indented dependency listing: one line
// per stage in topological order, with its direct dependencies, grouped by
// topological depth (the longest dependency chain above it).
func ASCII(p *Pipeline) string {
	order, err := p.TopoOrder()
	if err != nil {
		return "fleaflow: " + err.Error() + "\n"
	}
	index := make(map[string]*Stage, len(p.Stages))
	for _, st := range p.Stages {
		index[st.Name] = st
	}
	depth := make(map[string]int, len(order))
	for _, name := range order {
		d := 0
		for _, dep := range index[name].Deps {
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[name] = d
	}
	sort.SliceStable(order, func(i, j int) bool {
		if depth[order[i]] != depth[order[j]] {
			return depth[order[i]] < depth[order[j]]
		}
		return order[i] < order[j]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d stages\n", p.Name, len(order))
	last := -1
	for _, name := range order {
		if depth[name] != last {
			last = depth[name]
			fmt.Fprintf(&b, "[level %d]\n", last)
		}
		st := index[name]
		if len(st.Deps) == 0 {
			fmt.Fprintf(&b, "  %s\n", name)
			continue
		}
		deps := append([]string(nil), st.Deps...)
		sort.Strings(deps)
		fmt.Fprintf(&b, "  %s  <- %s\n", name, strings.Join(deps, ", "))
	}
	return b.String()
}
