package fleaflow

import "fleaflicker/internal/metrics"

// Canonical metric names of the orchestration layer, registered in the
// caller-provided registry (the same registry family the serving layer
// exposes on /metricsz), so a campaign's progress is observable through
// the existing metrics plumbing.
const (
	// MetricStagesRan counts stages executed fresh (a real Run call that
	// produced a new artifact).
	MetricStagesRan = "fleaflow.stages.ran"
	// MetricStagesCached counts stages satisfied by an existing artifact
	// without running.
	MetricStagesCached = "fleaflow.stages.cached"
	// MetricStagesFailed counts stages whose Run returned an error (or
	// timed out / was cancelled).
	MetricStagesFailed = "fleaflow.stages.failed"
	// MetricStagesParked counts stages skipped because an ancestor failed.
	MetricStagesParked = "fleaflow.stages.parked"
	// GaugeStagesInflight is the number of stages currently executing.
	GaugeStagesInflight = "fleaflow.stages.inflight"
)

// engineMetrics holds pre-resolved handles into the run's registry; a nil
// engineMetrics (no registry supplied) makes every observation a no-op.
type engineMetrics struct {
	ran      *metrics.Counter
	cached   *metrics.Counter
	failed   *metrics.Counter
	parked   *metrics.Counter
	inflight *metrics.Gauge
}

// newEngineMetrics resolves the handles. The scheduler loop is the only
// goroutine that touches them, so the unsynchronized Counter/Gauge types
// are sufficient.
func newEngineMetrics(r *metrics.Registry) *engineMetrics {
	if r == nil {
		return nil
	}
	return &engineMetrics{
		ran:      r.Counter(MetricStagesRan),
		cached:   r.Counter(MetricStagesCached),
		failed:   r.Counter(MetricStagesFailed),
		parked:   r.Counter(MetricStagesParked),
		inflight: r.Gauge(GaugeStagesInflight),
	}
}
