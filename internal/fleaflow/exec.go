package fleaflow

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"fleaflicker/internal/core"
	"fleaflicker/internal/experiments"
	"fleaflicker/internal/service"
	"fleaflicker/internal/service/client"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/workload"
)

// This file is the execution backend of the built-in pipelines: every
// simulation stage runs either in-process (core.Simulate via
// internal/experiments) or as jobs posted to a fleasimd daemon or
// coordinator. Both paths produce identical artifacts — the service
// executes the same deterministic simulations — so the choice is captured
// nowhere in the artifact keys, and a campaign can move between backends
// mid-stream without invalidating its store.

// submitPolicy is the backpressure policy for service-backed stages: a
// campaign is patient (the queue draining IS the work), so it absorbs many
// 429/503 rounds with a bounded pause.
var submitPolicy = client.RetryPolicy{MaxRetries: 120, MaxWait: 2 * time.Second}

// servicePoll is the job status poll interval for service-backed stages.
const servicePoll = 20 * time.Millisecond

// runServiceJob submits one spec and waits for its terminal state.
func runServiceJob(ctx context.Context, cl *client.Client, spec service.JobSpec) (*service.Status, error) {
	ack, err := cl.SubmitJobRetry(ctx, spec, submitPolicy)
	if err != nil {
		return nil, err
	}
	st, err := cl.WaitJob(ctx, ack.Location, servicePoll)
	if err != nil {
		return nil, err
	}
	if st.State == "failed" {
		return nil, fmt.Errorf("service job %s failed: %s", st.ID, st.Error)
	}
	return st, nil
}

// serviceRunUnit runs a single (model, bench) cell through the service and
// returns its measurement record and wall-clock duration.
func serviceRunUnit(ctx context.Context, cl *client.Client, spec service.JobSpec) (*stats.Run, time.Duration, error) {
	st, err := runServiceJob(ctx, cl, spec)
	if err != nil {
		return nil, 0, err
	}
	if len(st.Units) != 1 || st.Units[0].Result == nil || st.Units[0].Result.Run == nil {
		return nil, 0, fmt.Errorf("service job %s returned no run result", st.ID)
	}
	res := st.Units[0].Result
	return res.Run, time.Duration(res.DurationMS * float64(time.Millisecond)), nil
}

// runSuiteStage produces one benchmark's slice of the cross-model suite.
// Locally this is experiments.RunSuite (which shares one verified
// reference across the bench's models through its sync.Once cell);
// service-backed it is one verified run job per model, each a candidate
// for the server's result cache.
func runSuiteStage(ctx context.Context, env Env, cfg core.Config, models []core.Model, b *workload.Benchmark) (*experiments.SuiteRuns, error) {
	if env.Service == nil {
		return experiments.RunSuite(ctx, cfg, models, []*workload.Benchmark{b}, true)
	}
	out := &experiments.SuiteRuns{
		Config:     cfg,
		Benchmarks: []string{b.Name},
		Runs:       map[string]map[core.Model]*stats.Run{b.Name: {}},
		Durations:  map[string]map[core.Model]time.Duration{b.Name: {}},
	}
	for _, m := range models {
		r, d, err := serviceRunUnit(ctx, env.Service, service.JobSpec{
			Model: m.String(), Bench: b.Name, Verify: true,
		})
		if err != nil {
			return nil, fmt.Errorf("suite %s/%s: %w", b.Name, m, err)
		}
		out.Runs[b.Name][m] = r
		out.Durations[b.Name][m] = d
	}
	return out, nil
}

// runSweepStage produces one single-parameter ablation sweep. The service
// path expresses each point as a run job with a config override — the same
// simulations the local experiments.*Sweep helpers perform.
func runSweepStage(ctx context.Context, env Env, cfg core.Config, kind, bench string, values []int) ([]experiments.SweepPoint, error) {
	if env.Service == nil {
		switch kind {
		case "cq":
			return experiments.CQSweep(cfg, bench, values)
		case "alat":
			return experiments.ALATSweep(cfg, bench, values)
		case "throttle":
			return experiments.ThrottleSweep(cfg, bench, values)
		}
		return nil, fmt.Errorf("fleaflow: unknown sweep kind %q", kind)
	}
	var out []experiments.SweepPoint
	for _, v := range values {
		v := v
		var over service.ConfigOverrides
		var extra func(r *stats.Run) int64
		switch kind {
		case "cq":
			over.CQSize = &v
			extra = func(r *stats.Run) int64 { return r.Deferred }
		case "alat":
			over.ALATCapacity = &v
			extra = func(r *stats.Run) int64 { return r.ConflictFlushes }
		case "throttle":
			over.DeferThrottle = &v
			extra = func(r *stats.Run) int64 { return r.Deferred }
		default:
			return nil, fmt.Errorf("fleaflow: unknown sweep kind %q", kind)
		}
		r, _, err := serviceRunUnit(ctx, env.Service, service.JobSpec{
			Model: core.TwoPass.String(), Bench: bench, Config: over,
		})
		if err != nil {
			return nil, fmt.Errorf("sweep %s=%d: %w", kind, v, err)
		}
		out = append(out, experiments.SweepPoint{Benchmark: bench, Value: v, Cycles: r.Cycles, Extra: extra(r)})
	}
	return out, nil
}

// runFig8Stage produces the B→A feedback-latency sweep of Figure 8.
func runFig8Stage(ctx context.Context, env Env, cfg core.Config, names []string) ([]experiments.Fig8Point, error) {
	if env.Service == nil {
		return experiments.Fig8(cfg, names)
	}
	var out []experiments.Fig8Point
	for _, name := range names {
		for _, lat := range experiments.Fig8Latencies {
			lat := lat
			r, _, err := serviceRunUnit(ctx, env.Service, service.JobSpec{
				Model: core.TwoPass.String(), Bench: name,
				Config: service.ConfigOverrides{FeedbackLatency: &lat},
			})
			if err != nil {
				return nil, fmt.Errorf("fig8 %s lat %d: %w", name, lat, err)
			}
			out = append(out, experiments.Fig8Point{Benchmark: name, Latency: lat, Deferred: r.Deferred, Cycles: r.Cycles})
		}
	}
	return out, nil
}

// speedSummary aggregates the suite's per-cell wall-clock measurements
// into per-model simulated-instruction throughput.
func speedSummary(s *experiments.SuiteRuns, models []core.Model) BenchSummary {
	sum := BenchSummary{Benchmarks: append([]string(nil), s.Benchmarks...)}
	sort.Strings(sum.Benchmarks)
	for _, m := range models {
		var instr int64
		var dur time.Duration
		for _, bench := range sum.Benchmarks {
			r := s.Get(bench, m)
			if r == nil {
				continue
			}
			instr += r.Instructions
			dur += s.Duration(bench, m)
		}
		ms := ModelSpeed{Model: m.String(), Instructions: instr, DurationMS: float64(dur) / float64(time.Millisecond)}
		if dur > 0 {
			ms.InstrPerSec = float64(instr) / dur.Seconds()
		}
		sum.Models = append(sum.Models, ms)
	}
	return sum
}

// renderSpeed formats the measured throughput table (wall-clock data: not
// byte-reproducible across machines or runs).
func renderSpeed(sum BenchSummary) string {
	var b strings.Builder
	b.WriteString("Simulator throughput over the verified suite (measured, varies by machine)\n")
	fmt.Fprintf(&b, "%-10s %16s %14s %14s\n", "model", "instructions", "duration", "instr/s")
	for _, m := range sum.Models {
		d := time.Duration(m.DurationMS * float64(time.Millisecond)).Round(time.Millisecond)
		fmt.Fprintf(&b, "%-10s %16d %14s %14.0f\n", m.Model, m.Instructions, d, math.Round(m.InstrPerSec))
	}
	return b.String()
}
