package fleaflow

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fleaflicker/internal/core"
	"fleaflicker/internal/diffsim"
	"fleaflicker/internal/experiments"
	"fleaflicker/internal/progen"
	"fleaflicker/internal/service"
	"fleaflicker/internal/service/client"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/workload"
)

// Env configures how built-in pipelines execute their simulation stages.
type Env struct {
	// Service, when non-nil, runs simulation stages through POST /v1/jobs
	// against a fleasimd daemon or coordinator instead of in-process. The
	// serving layer's content-addressed result cache (and, behind a
	// coordinator, cache federation) then operates underneath this layer's
	// artifact cache: an artifact miss that re-runs a stage can still be
	// served without fresh simulation. The artifact keys do not change —
	// local and service execution compute the same results.
	Service *client.Client

	// FuzzPrograms is the fuzz-campaign program budget (0 = 200).
	FuzzPrograms int
	// FuzzShards is how many lattice shards split that budget (0 = 4).
	FuzzShards int
	// FuzzSmoke selects the four-cell smoke lattice and small programs,
	// mirroring the serving layer's FuzzSpec.Smoke.
	FuzzSmoke bool
}

// Definition version constants: a renderer or campaign-shape change that
// alters stage output without changing its inputs is re-keyed by bumping
// the stage family's version, which invalidates exactly that family's
// cached artifacts.
const (
	figure6DefV = 1
	fuzzDefV    = 1
	smokeDefV   = 1
)

// BuiltinNames lists the built-in pipelines in presentation order.
func BuiltinNames() []string { return []string{"figure6", "fuzz-campaign", "smoke"} }

// BuiltinDoc returns the one-line description of a built-in ("" if
// unknown).
func BuiltinDoc(name string) string {
	switch name {
	case "figure6":
		return "every paper figure and sweep as one cached campaign; regenerates the EXPERIMENTS.md block"
	case "fuzz-campaign":
		return "progen -> sharded diffsim lattice -> divergence report"
	case "smoke":
		return "tiny two-stage pipeline exercising the artifact cache (CI)"
	}
	return ""
}

// Builtin constructs a built-in pipeline by name.
func Builtin(name string, env Env) (*Pipeline, error) {
	switch name {
	case "figure6":
		return Figure6(env), nil
	case "fuzz-campaign":
		return FuzzCampaign(env), nil
	case "smoke":
		return Smoke(env), nil
	}
	return nil, fmt.Errorf("fleaflow: unknown pipeline %q (have %v)", name, BuiltinNames())
}

// Doc is the artifact of a render stage: one block of display text.
type Doc struct {
	Markdown string `json:"markdown"`
}

// ModelSpeed is one model's aggregate simulator-speed measurement.
type ModelSpeed struct {
	Model        string  `json:"model"`
	Instructions int64   `json:"instructions"`
	DurationMS   float64 `json:"duration_ms"`
	InstrPerSec  float64 `json:"instr_per_sec"`
}

// BenchSummary is the BENCH-style machine-readable view of a figure6 run:
// per-model simulated-instruction throughput over the whole suite. The
// orchestrator is clock-free, so revision and timestamp stamping is the
// caller's job (cmd/fleaflow) at write-out time.
type BenchSummary struct {
	Benchmarks []string     `json:"benchmarks"`
	Models     []ModelSpeed `json:"models"`
}

// Figure6Doc is the figure6 pipeline's final artifact. Deterministic holds
// the byte-reproducible EXPERIMENTS.md block (pure simulation results);
// Speed holds the measured simulator-throughput table, which is honest
// wall-clock data and therefore varies run to run (its stage artifact is
// cached like any other, so reruns against a warm store are stable).
type Figure6Doc struct {
	Deterministic string            `json:"deterministic"`
	Speed         string            `json:"speed"`
	CSV           map[string]string `json:"csv"`
	Bench         BenchSummary      `json:"bench"`
}

// suiteStageDef keys a per-benchmark verified suite stage.
type suiteStageDef struct {
	V      int         `json:"v"`
	Bench  string      `json:"bench"`
	Models []string    `json:"models"`
	Verify bool        `json:"verify"`
	Config core.Config `json:"config"`
}

// sweepStageDef keys a single-parameter sweep stage.
type sweepStageDef struct {
	V      int         `json:"v"`
	Kind   string      `json:"kind"`
	Bench  string      `json:"bench"`
	Values []int       `json:"values"`
	Config core.Config `json:"config"`
}

// renderStageDef keys a pure render stage (its real input is the upstream
// artifact key, folded in by the engine).
type renderStageDef struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
}

// Figure6 builds the cross-model stall-tolerance campaign: the verified
// Figure 6/7 suite (one stage per benchmark, reference shared per bench
// via experiments.RunSuite's checkpoint cell), the Figure 8 feedback sweep,
// the ablation sweeps, and every table EXPERIMENTS.md carries, assembled
// into one final report artifact.
func Figure6(env Env) *Pipeline {
	cfg := core.DefaultConfig()
	models := core.Models()
	benches := workload.Suite()
	modelNames := make([]string, len(models))
	for i, m := range models {
		modelNames[i] = m.String()
	}

	var stages []*Stage
	stages = append(stages, &Stage{
		Name: "table1",
		Def:  renderStageDef{V: figure6DefV, Kind: "table1"},
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			return Doc{Markdown: experiments.RenderTable1(cfg)}, nil
		},
	})
	stages = append(stages, &Stage{
		Name:    "table2",
		Def:     renderStageDef{V: figure6DefV, Kind: "table2"},
		Timeout: 5 * time.Minute,
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			out, err := experiments.RenderTable2(benches)
			if err != nil {
				return nil, err
			}
			return Doc{Markdown: out}, nil
		},
	})

	var suiteNames []string
	for _, b := range benches {
		name := "suite/" + b.Name
		suiteNames = append(suiteNames, name)
		stages = append(stages, &Stage{
			Name:    name,
			Def:     suiteStageDef{V: figure6DefV, Bench: b.Name, Models: modelNames, Verify: true, Config: cfg},
			Timeout: 30 * time.Minute,
			Run: func(ctx context.Context, in *Inputs) (any, error) {
				return runSuiteStage(ctx, env, cfg, models, b)
			},
		})
	}

	stages = append(stages, &Stage{
		Name: "aggregate",
		Deps: suiteNames,
		Def:  renderStageDef{V: figure6DefV, Kind: "aggregate"},
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			return mergeSuites(in, benches, cfg)
		},
	})

	renders := []struct {
		name   string
		render func(s *experiments.SuiteRuns) string
	}{
		{"motivation", experiments.RenderMotivation},
		{"fig6", experiments.RenderFig6},
		{"fig7", experiments.RenderFig7},
		{"scalars", experiments.RenderScalars},
		{"runahead", experiments.RenderRunaheadCompare},
	}
	for _, r := range renders {
		stages = append(stages, &Stage{
			Name: r.name,
			Deps: []string{"aggregate"},
			Def:  renderStageDef{V: figure6DefV, Kind: r.name},
			Run: func(ctx context.Context, in *Inputs) (any, error) {
				var s experiments.SuiteRuns
				if err := in.Decode("aggregate", &s); err != nil {
					return nil, err
				}
				return Doc{Markdown: r.render(&s)}, nil
			},
		})
	}

	stages = append(stages, &Stage{
		Name:    "fig8",
		Def:     sweepStageDef{V: figure6DefV, Kind: "fig8", Bench: "099.go,130.li,181.mcf", Values: experiments.Fig8Latencies, Config: cfg},
		Timeout: 30 * time.Minute,
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			points, err := runFig8Stage(ctx, env, cfg, []string{"099.go", "130.li", "181.mcf"})
			if err != nil {
				return nil, err
			}
			return struct {
				Markdown string `json:"markdown"`
				CSV      string `json:"csv"`
			}{experiments.RenderFig8(points), experiments.Fig8CSV(points)}, nil
		},
	})

	sweeps := []struct {
		name   string
		kind   string
		values []int
		title  string
		value  string
		extra  string
	}{
		{"sweep/cq", "cq", []int{16, 32, 64, 128, 256},
			"Coupling-queue size sweep (paper: insensitive near 64)", "CQ", "deferred"},
		{"sweep/alat", "alat", []int{0, 8, 16, 32, 64},
			"ALAT capacity sweep (0 = perfect, Table 1)", "entries", "flushes"},
		{"sweep/throttle", "throttle", []int{0, 8, 16, 32},
			"A-pipe deferral throttle sweep (§3.5 future work; 0 = off)", "limit", "deferred"},
	}
	for _, sw := range sweeps {
		stages = append(stages, &Stage{
			Name:    sw.name,
			Def:     sweepStageDef{V: figure6DefV, Kind: sw.kind, Bench: "181.mcf", Values: sw.values, Config: cfg},
			Timeout: 30 * time.Minute,
			Run: func(ctx context.Context, in *Inputs) (any, error) {
				points, err := runSweepStage(ctx, env, cfg, sw.kind, "181.mcf", sw.values)
				if err != nil {
					return nil, err
				}
				return Doc{Markdown: experiments.RenderSweep(sw.title, sw.value, sw.extra, points)}, nil
			},
		})
	}

	stages = append(stages, &Stage{
		Name: "speed",
		Deps: []string{"aggregate"},
		Def:  renderStageDef{V: figure6DefV, Kind: "speed"},
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			var s experiments.SuiteRuns
			if err := in.Decode("aggregate", &s); err != nil {
				return nil, err
			}
			sum := speedSummary(&s, models)
			return struct {
				Markdown string       `json:"markdown"`
				Bench    BenchSummary `json:"bench"`
			}{renderSpeed(sum), sum}, nil
		},
	})
	stages = append(stages, &Stage{
		Name: "csv",
		Deps: []string{"aggregate"},
		Def:  renderStageDef{V: figure6DefV, Kind: "csv"},
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			var s experiments.SuiteRuns
			if err := in.Decode("aggregate", &s); err != nil {
				return nil, err
			}
			return struct {
				Fig6 string `json:"fig6"`
				Fig7 string `json:"fig7"`
			}{experiments.Fig6CSV(&s), experiments.Fig7CSV(&s)}, nil
		},
	})

	reportDeps := []string{"table1", "table2", "motivation", "fig6", "fig7", "fig8",
		"scalars", "runahead", "sweep/cq", "sweep/alat", "sweep/throttle", "speed", "csv"}
	stages = append(stages, &Stage{
		Name: "report",
		Deps: reportDeps,
		Def:  renderStageDef{V: figure6DefV, Kind: "report"},
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			return buildFigure6Doc(in)
		},
	})

	return &Pipeline{Name: "figure6", Doc: BuiltinDoc("figure6"), Stages: stages}
}

// mergeSuites combines the per-benchmark suite artifacts into one
// SuiteRuns covering the whole suite, in declared benchmark order.
func mergeSuites(in *Inputs, benches []*workload.Benchmark, cfg core.Config) (*experiments.SuiteRuns, error) {
	merged := &experiments.SuiteRuns{
		Config:    cfg,
		Runs:      make(map[string]map[core.Model]*stats.Run, len(benches)),
		Durations: make(map[string]map[core.Model]time.Duration, len(benches)),
	}
	for _, b := range benches {
		var s experiments.SuiteRuns
		if err := in.Decode("suite/"+b.Name, &s); err != nil {
			return nil, err
		}
		merged.Runs[b.Name] = s.Runs[b.Name]
		merged.Durations[b.Name] = s.Durations[b.Name]
		merged.Benchmarks = append(merged.Benchmarks, b.Name)
	}
	return merged, nil
}

// buildFigure6Doc assembles the final figure6 artifact from every render
// stage, fencing the fixed-width tables for markdown embedding.
func buildFigure6Doc(in *Inputs) (*Figure6Doc, error) {
	section := func(b *strings.Builder, dep, title string) error {
		var d Doc
		if err := in.Decode(dep, &d); err != nil {
			return err
		}
		fmt.Fprintf(b, "#### %s\n\n```\n%s\n```\n\n", title, strings.TrimRight(d.Markdown, "\n"))
		return nil
	}
	var det strings.Builder
	for _, s := range []struct{ dep, title string }{
		{"table1", "Table 1 — machine configuration"},
		{"table2", "Table 2 — benchmarks"},
		{"motivation", "§2 motivation"},
		{"fig6", "Figure 6 — normalized execution cycles"},
		{"fig7", "Figure 7 — initiated access cycles"},
	} {
		if err := section(&det, s.dep, s.title); err != nil {
			return nil, err
		}
	}
	var fig8 struct {
		Markdown string `json:"markdown"`
		CSV      string `json:"csv"`
	}
	if err := in.Decode("fig8", &fig8); err != nil {
		return nil, err
	}
	fmt.Fprintf(&det, "#### Figure 8 — B→A feedback latency\n\n```\n%s\n```\n\n",
		strings.TrimRight(fig8.Markdown, "\n"))
	for _, s := range []struct{ dep, title string }{
		{"scalars", "§4 scalar results"},
		{"runahead", "Run-ahead comparator"},
		{"sweep/cq", "Coupling-queue sweep"},
		{"sweep/alat", "ALAT capacity sweep"},
		{"sweep/throttle", "Deferral-throttle sweep"},
	} {
		if err := section(&det, s.dep, s.title); err != nil {
			return nil, err
		}
	}

	var speed struct {
		Markdown string       `json:"markdown"`
		Bench    BenchSummary `json:"bench"`
	}
	if err := in.Decode("speed", &speed); err != nil {
		return nil, err
	}
	var csv struct {
		Fig6 string `json:"fig6"`
		Fig7 string `json:"fig7"`
	}
	if err := in.Decode("csv", &csv); err != nil {
		return nil, err
	}
	return &Figure6Doc{
		Deterministic: strings.TrimRight(det.String(), "\n") + "\n",
		Speed:         speed.Markdown,
		CSV:           map[string]string{"fig6.csv": csv.Fig6, "fig7.csv": csv.Fig7, "fig8.csv": fig8.CSV},
		Bench:         speed.Bench,
	}, nil
}

// ---- fuzz-campaign ----

// fuzzPlanDef keys the campaign plan; fuzzPlan is its artifact.
type fuzzPlanDef struct {
	V        int   `json:"v"`
	Programs int   `json:"programs"`
	Shards   int   `json:"shards"`
	SeedBase int64 `json:"seed_base"`
	Smoke    bool  `json:"smoke"`
}

type fuzzShardSpec struct {
	SeedBase int64 `json:"seed_base"`
	Programs int   `json:"programs"`
	Smoke    bool  `json:"smoke"`
}

type fuzzPlan struct {
	Shards []fuzzShardSpec `json:"shards"`
}

// fuzzFindingSummary is one diverging program in a shard artifact.
type fuzzFindingSummary struct {
	Seed           int64    `json:"seed"`
	Cells          []string `json:"cells"`
	MinimizedInsts int      `json:"minimized_insts,omitempty"`
}

// fuzzShardReport is one shard's artifact: the same aggregate the serving
// layer's FuzzReport carries, minus the replayable .flea bodies (those
// stay reachable by re-running the seed with cmd/fleafuzz).
type fuzzShardReport struct {
	Programs        int                  `json:"programs"`
	Skipped         int                  `json:"skipped"`
	CellRuns        int64                `json:"cell_runs"`
	RefInstructions int64                `json:"ref_instructions"`
	Findings        []fuzzFindingSummary `json:"findings,omitempty"`
}

// fuzzGenConfig mirrors the serving layer's generator shaping (service
// fuzzGen), so a local shard and a service shard check byte-identical
// program populations and the two backends produce the same artifacts.
func fuzzGenConfig(smoke bool) progen.Config {
	gen := progen.DefaultConfig()
	if smoke {
		gen.OuterTrips = 2
		gen.BodyActions = 12
		gen.ArrayBytes = 4 << 10
		gen.ChainNodes = 8
	}
	return gen
}

// runFuzzShard checks one seed range, locally or through a kind-"fuzz"
// service job (which the server chunks and caches per seed range).
func runFuzzShard(ctx context.Context, env Env, spec fuzzShardSpec) (*fuzzShardReport, error) {
	if env.Service == nil {
		cells := diffsim.DefaultLattice()
		if spec.Smoke {
			cells = diffsim.SmokeLattice()
		}
		st, err := diffsim.RunCampaign(ctx, diffsim.CampaignConfig{
			SeedBase:        spec.SeedBase,
			Programs:        spec.Programs,
			Gen:             fuzzGenConfig(spec.Smoke),
			Cells:           cells,
			Shrink:          true,
			CheckpointEvery: diffsim.AutoCheckpoint,
		})
		if err != nil {
			return nil, err
		}
		rep := &fuzzShardReport{
			Programs:        st.Programs,
			Skipped:         st.Skipped,
			CellRuns:        st.CellRuns,
			RefInstructions: st.RefInstructions,
		}
		for _, f := range st.Findings {
			fs := fuzzFindingSummary{Seed: f.Seed}
			for _, d := range f.Divergences {
				fs.Cells = append(fs.Cells, d.Cell.String())
			}
			if f.Minimized != nil {
				fs.MinimizedInsts = len(f.Minimized.Insts)
			}
			rep.Findings = append(rep.Findings, fs)
		}
		return rep, nil
	}
	st, err := runServiceJob(ctx, env.Service, service.JobSpec{
		Kind: "fuzz",
		Seed: spec.SeedBase,
		Fuzz: &service.FuzzSpec{Programs: spec.Programs, Smoke: spec.Smoke, Shrink: true, Checkpoint: true},
	})
	if err != nil {
		return nil, err
	}
	rep := &fuzzShardReport{}
	for _, u := range st.Units {
		if u.Result == nil || u.Result.Fuzz == nil {
			return nil, fmt.Errorf("fuzz job %s: unit %s has no fuzz report", st.ID, u.Key)
		}
		fr := u.Result.Fuzz
		rep.Programs += fr.Programs
		rep.Skipped += fr.Skipped
		rep.CellRuns += fr.CellRuns
		rep.RefInstructions += fr.RefInstructions
		for _, f := range fr.Findings {
			rep.Findings = append(rep.Findings, fuzzFindingSummary{
				Seed: f.Seed, Cells: f.Cells, MinimizedInsts: f.MinimizedInsts,
			})
		}
	}
	return rep, nil
}

// FuzzCampaign builds the differential-fuzzing pipeline: plan → sharded
// lattice campaign → divergence report.
func FuzzCampaign(env Env) *Pipeline {
	programs := env.FuzzPrograms
	if programs <= 0 {
		programs = 200
	}
	shards := env.FuzzShards
	if shards <= 0 {
		shards = 4
	}
	if shards > programs {
		shards = programs
	}
	const seedBase = 1

	var stages []*Stage
	stages = append(stages, &Stage{
		Name: "plan",
		Def:  fuzzPlanDef{V: fuzzDefV, Programs: programs, Shards: shards, SeedBase: seedBase, Smoke: env.FuzzSmoke},
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			plan := fuzzPlan{}
			per := programs / shards
			extra := programs % shards
			off := 0
			for i := 0; i < shards; i++ {
				n := per
				if i < extra {
					n++
				}
				plan.Shards = append(plan.Shards, fuzzShardSpec{
					SeedBase: seedBase + int64(off), Programs: n, Smoke: env.FuzzSmoke,
				})
				off += n
			}
			return plan, nil
		},
	})
	var shardNames []string
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("shard/%d", i)
		shardNames = append(shardNames, name)
		idx := i
		stages = append(stages, &Stage{
			Name: name,
			Deps: []string{"plan"},
			Def: struct {
				V     int `json:"v"`
				Index int `json:"index"`
			}{fuzzDefV, idx},
			Timeout: 60 * time.Minute,
			Run: func(ctx context.Context, in *Inputs) (any, error) {
				var plan fuzzPlan
				if err := in.Decode("plan", &plan); err != nil {
					return nil, err
				}
				if idx >= len(plan.Shards) {
					return nil, fmt.Errorf("fleaflow: shard %d outside plan of %d", idx, len(plan.Shards))
				}
				return runFuzzShard(ctx, env, plan.Shards[idx])
			},
		})
	}
	stages = append(stages, &Stage{
		Name: "divergence-report",
		Deps: shardNames,
		Def:  renderStageDef{V: fuzzDefV, Kind: "divergence-report"},
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			var total fuzzShardReport
			var b strings.Builder
			for _, dep := range shardNames {
				var rep fuzzShardReport
				if err := in.Decode(dep, &rep); err != nil {
					return nil, err
				}
				total.Programs += rep.Programs
				total.Skipped += rep.Skipped
				total.CellRuns += rep.CellRuns
				total.RefInstructions += rep.RefInstructions
				total.Findings = append(total.Findings, rep.Findings...)
			}
			fmt.Fprintf(&b, "Differential fuzzing campaign: %d programs checked (%d skipped), %d cell runs, %d reference instructions\n",
				total.Programs, total.Skipped, total.CellRuns, total.RefInstructions)
			if len(total.Findings) == 0 {
				b.WriteString("No divergences: every lattice cell agreed with the reference on every program.\n")
			} else {
				fmt.Fprintf(&b, "%d diverging programs:\n", len(total.Findings))
				for _, f := range total.Findings {
					fmt.Fprintf(&b, "  seed %d: %d cells diverged (%s)", f.Seed, len(f.Cells), strings.Join(f.Cells, "; "))
					if f.MinimizedInsts > 0 {
						fmt.Fprintf(&b, ", minimized to %d instructions", f.MinimizedInsts)
					}
					b.WriteString("\n")
				}
			}
			return Doc{Markdown: b.String()}, nil
		},
	})
	return &Pipeline{Name: "fuzz-campaign", Doc: BuiltinDoc("fuzz-campaign"), Stages: stages}
}

// ---- smoke ----

// Smoke builds the tiny two-stage CI pipeline: one real (fast) simulation
// and a render stage consuming it — enough graph to exercise keying,
// caching, and resume in seconds.
func Smoke(env Env) *Pipeline {
	cfg := core.DefaultConfig()
	const bench = "254.gap" // smallest suite kernel (~87K instructions)
	probe := &Stage{
		Name:    "probe",
		Def:     suiteStageDef{V: smokeDefV, Bench: bench, Models: []string{core.Baseline.String()}, Config: cfg},
		Timeout: 5 * time.Minute,
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			var r *stats.Run
			if env.Service == nil {
				b, err := workload.ByName(bench)
				if err != nil {
					return nil, err
				}
				r, err = core.Run(core.Baseline, cfg, b.Program())
				if err != nil {
					return nil, err
				}
			} else {
				var err error
				r, _, err = serviceRunUnit(ctx, env.Service, service.JobSpec{
					Model: core.Baseline.String(), Bench: bench,
				})
				if err != nil {
					return nil, err
				}
			}
			return struct {
				Cycles       int64 `json:"cycles"`
				Instructions int64 `json:"instructions"`
			}{r.Cycles, r.Instructions}, nil
		},
	}
	summary := &Stage{
		Name: "summary",
		Deps: []string{"probe"},
		Def:  renderStageDef{V: smokeDefV, Kind: "summary"},
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			var p struct {
				Cycles       int64 `json:"cycles"`
				Instructions int64 `json:"instructions"`
			}
			if err := in.Decode("probe", &p); err != nil {
				return nil, err
			}
			return Doc{Markdown: fmt.Sprintf("smoke: base/%s ran %d instructions in %d cycles (IPC %.3f)\n",
				bench, p.Instructions, p.Cycles, float64(p.Instructions)/float64(p.Cycles))}, nil
		},
	}
	return &Pipeline{Name: "smoke", Doc: BuiltinDoc("smoke"), Stages: []*Stage{probe, summary}}
}
