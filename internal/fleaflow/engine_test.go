package fleaflow

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// countStage returns a stage that bumps calls and emits a fixed value.
func countStage(name string, deps []string, calls *atomic.Int64) *Stage {
	return &Stage{
		Name: name,
		Deps: deps,
		Def:  struct{ V string }{name},
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			calls.Add(1)
			return struct{ Out string }{name}, nil
		},
	}
}

func TestStageKeyStability(t *testing.T) {
	k1, err := StageKey("a", struct{ N int }{1}, map[string]string{"d": "k"})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := StageKey("a", struct{ N int }{1}, map[string]string{"d": "k"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("same inputs, different keys: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key is not a sha256 hex digest: %q", k1)
	}
	for _, alt := range []struct {
		name string
		def  any
		deps map[string]string
	}{
		{"b", struct{ N int }{1}, map[string]string{"d": "k"}},
		{"a", struct{ N int }{2}, map[string]string{"d": "k"}},
		{"a", struct{ N int }{1}, map[string]string{"d": "other"}},
		{"a", struct{ N int }{1}, nil},
	} {
		k, err := StageKey(alt.name, alt.def, alt.deps)
		if err != nil {
			t.Fatal(err)
		}
		if k == k1 {
			t.Errorf("variant %+v collides with base key", alt)
		}
	}
	if _, err := StageKey("a", func() {}, nil); err == nil {
		t.Errorf("unserializable def should error")
	}
}

func TestStorePutGet(t *testing.T) {
	st := testStore(t)
	key := strings.Repeat("ab", 32)
	if st.Has(key) {
		t.Fatalf("empty store claims key")
	}
	if err := st.Put(key, struct{ X int }{7}); err != nil {
		t.Fatal(err)
	}
	if !st.Has(key) {
		t.Fatalf("stored key missing")
	}
	var out struct{ X int }
	if err := st.Get(key, &out); err != nil {
		t.Fatal(err)
	}
	if out.X != 7 {
		t.Errorf("round-trip: got %d, want 7", out.X)
	}
	if err := st.Put("x", 1); err == nil {
		t.Errorf("malformed key accepted")
	}
	if _, err := st.GetRaw(strings.Repeat("cd", 32)); err == nil {
		t.Errorf("missing artifact should error")
	}
}

func TestValidateErrors(t *testing.T) {
	run := func(ctx context.Context, in *Inputs) (any, error) { return 1, nil }
	cases := []struct {
		name   string
		stages []*Stage
		want   string
	}{
		{"empty", nil, "no stages"},
		{"unnamed", []*Stage{{Run: run}}, "unnamed"},
		{"nil run", []*Stage{{Name: "a"}}, "no Run"},
		{"dup name", []*Stage{{Name: "a", Run: run}, {Name: "a", Run: run}}, "duplicate"},
		{"self dep", []*Stage{{Name: "a", Deps: []string{"a"}, Run: run}}, "itself"},
		{"unknown dep", []*Stage{{Name: "a", Deps: []string{"ghost"}, Run: run}}, "unknown"},
		{"dup dep", []*Stage{
			{Name: "a", Run: run},
			{Name: "b", Deps: []string{"a", "a"}, Run: run},
		}, "twice"},
		{"cycle", []*Stage{
			{Name: "a", Deps: []string{"b"}, Run: run},
			{Name: "b", Deps: []string{"a"}, Run: run},
		}, "cycle"},
	}
	for _, tc := range cases {
		p := &Pipeline{Name: "t", Stages: tc.stages}
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	run := func(ctx context.Context, in *Inputs) (any, error) { return 1, nil }
	p := &Pipeline{Name: "d", Stages: []*Stage{
		{Name: "sink", Deps: []string{"left", "right"}, Run: run},
		{Name: "right", Deps: []string{"src"}, Run: run},
		{Name: "left", Deps: []string{"src"}, Run: run},
		{Name: "src", Run: run},
	}}
	first, err := p.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"src", "left", "right", "sink"}
	if fmt.Sprint(first) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", first, want)
	}
	for i := 0; i < 10; i++ {
		again, err := p.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(again) != fmt.Sprint(first) {
			t.Errorf("order changed across calls: %v vs %v", again, first)
		}
	}
}

// diamond builds src -> (left, right) -> sink with a shared call counter.
func diamond(calls *atomic.Int64) *Pipeline {
	return &Pipeline{Name: "diamond", Stages: []*Stage{
		countStage("src", nil, calls),
		countStage("left", []string{"src"}, calls),
		countStage("right", []string{"src"}, calls),
		countStage("sink", []string{"left", "right"}, calls),
	}}
}

func TestRunCachesArtifacts(t *testing.T) {
	st := testStore(t)
	var calls atomic.Int64
	rep, err := Run(context.Background(), diamond(&calls), Options{Store: st, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 4 || rep.Cached != 0 || calls.Load() != 4 {
		t.Fatalf("first run: %+v, calls %d", rep, calls.Load())
	}

	// Second run: every artifact already exists; nothing executes.
	rep, err = Run(context.Background(), diamond(&calls), Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 0 || rep.Cached != 4 || calls.Load() != 4 {
		t.Fatalf("cached run: %+v, calls %d", rep, calls.Load())
	}
	for _, s := range rep.Stages {
		if s.Key == "" || !st.Has(s.Key) {
			t.Errorf("stage %s: missing artifact key", s.Stage)
		}
	}

	// Fresh ignores the cache.
	rep, err = Run(context.Background(), diamond(&calls), Options{Store: st, Fresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 4 || calls.Load() != 8 {
		t.Fatalf("fresh run: %+v, calls %d", rep, calls.Load())
	}
}

func TestRunRekeysDownstreamOnDefChange(t *testing.T) {
	st := testStore(t)
	var calls atomic.Int64
	p := diamond(&calls)
	if _, err := Run(context.Background(), p, Options{Store: st}); err != nil {
		t.Fatal(err)
	}
	// Changing one upstream definition re-runs it and everything below it,
	// but the sibling branch stays cached.
	p2 := diamond(&calls)
	p2.Stage("left").Def = struct{ V string }{"left-v2"}
	rep, err := Run(context.Background(), p2, Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Result("left").Status; got != StatusDone {
		t.Errorf("left = %s, want re-run", got)
	}
	if got := rep.Result("sink").Status; got != StatusDone {
		t.Errorf("sink = %s, want re-run (input key changed)", got)
	}
	if got := rep.Result("src").Status; got != StatusCached {
		t.Errorf("src = %s, want cached", got)
	}
	if got := rep.Result("right").Status; got != StatusCached {
		t.Errorf("right = %s, want cached", got)
	}
}

func TestRunFailureIsolation(t *testing.T) {
	st := testStore(t)
	var calls atomic.Int64
	boom := errors.New("boom")
	p := &Pipeline{Name: "iso", Stages: []*Stage{
		{Name: "bad", Def: 1, Run: func(ctx context.Context, in *Inputs) (any, error) {
			return nil, boom
		}},
		countStage("mid", []string{"bad"}, &calls),
		countStage("leaf", []string{"mid"}, &calls),
		countStage("independent", nil, &calls),
	}}
	rep, err := Run(context.Background(), p, Options{Store: st})
	if err == nil {
		t.Fatal("expected failure")
	}
	if rep.Failed != 1 || rep.Parked != 2 || rep.Ran != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if got := rep.Result("independent").Status; got != StatusDone {
		t.Errorf("independent branch = %s, want done despite failure elsewhere", got)
	}
	if got := rep.Result("leaf").Status; got != StatusParked {
		t.Errorf("transitive downstream = %s, want parked", got)
	}
	if !strings.Contains(rep.Result("bad").Err, "boom") {
		t.Errorf("failure text lost: %+v", rep.Result("bad"))
	}
	if calls.Load() != 1 {
		t.Errorf("parked stages must not run: %d calls", calls.Load())
	}
}

func TestRunStageTimeout(t *testing.T) {
	st := testStore(t)
	p := &Pipeline{Name: "slow", Stages: []*Stage{{
		Name:    "stuck",
		Def:     1,
		Timeout: time.Millisecond,
		Run: func(ctx context.Context, in *Inputs) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}}}
	rep, err := Run(context.Background(), p, Options{Store: st})
	if err == nil {
		t.Fatal("expected timeout failure")
	}
	if got := rep.Result("stuck").Status; got != StatusFailed {
		t.Errorf("status = %s, want failed", got)
	}
	if !strings.Contains(rep.Result("stuck").Err, context.DeadlineExceeded.Error()) {
		t.Errorf("err = %q, want deadline exceeded", rep.Result("stuck").Err)
	}
}

// TestRunCancelAndResume is the SIGINT-and-resume acceptance check: cancel
// a campaign mid-flight, observe that completed artifacts survive, then
// rerun and observe that only unfinished stages execute.
func TestRunCancelAndResume(t *testing.T) {
	st := testStore(t)
	var calls atomic.Int64
	firstDone := make(chan struct{})
	build := func(block bool) *Pipeline {
		return &Pipeline{Name: "resume", Stages: []*Stage{
			countStage("first", nil, &calls),
			{Name: "gate", Deps: []string{"first"}, Def: 1,
				Run: func(ctx context.Context, in *Inputs) (any, error) {
					if block {
						<-ctx.Done()
						return nil, ctx.Err()
					}
					calls.Add(1)
					return struct{ Out string }{"gate"}, nil
				}},
			countStage("last", []string{"gate"}, &calls),
		}}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type runOut struct {
		rep *Report
		err error
	}
	out := make(chan runOut, 1)
	go func() {
		rep, err := Run(ctx, build(true), Options{
			Store: st,
			Observer: func(ev Event) {
				if ev.Stage == "first" && ev.Status == StatusDone {
					close(firstDone)
				}
			},
		})
		out <- runOut{rep, err}
	}()
	<-firstDone
	cancel()
	got := <-out
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", got.err)
	}
	if s := got.rep.Result("first").Status; s != StatusDone {
		t.Errorf("first = %s, want done (completed before cancel)", s)
	}
	if s := got.rep.Result("gate").Status; s != StatusFailed {
		t.Errorf("gate = %s, want failed (cancelled in flight)", s)
	}
	if s := got.rep.Result("last").Status; s != StatusParked {
		t.Errorf("last = %s, want parked", s)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 before resume", calls.Load())
	}

	// Resume: the finished stage is a cache hit, the interrupted and parked
	// stages run.
	rep, err := Run(context.Background(), build(false), Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Result("first").Status; s != StatusCached {
		t.Errorf("resume: first = %s, want cached", s)
	}
	if rep.Ran != 2 || rep.Cached != 1 {
		t.Errorf("resume report: %+v", rep)
	}
	if calls.Load() != 3 {
		t.Errorf("resume calls = %d, want 3 (first not redone)", calls.Load())
	}
}

func TestRunMissingStore(t *testing.T) {
	if _, err := Run(context.Background(), &Pipeline{}, Options{}); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestInputsUndeclaredDep(t *testing.T) {
	st := testStore(t)
	p := &Pipeline{Name: "u", Stages: []*Stage{
		{Name: "a", Def: 1, Run: func(ctx context.Context, in *Inputs) (any, error) { return 1, nil }},
		{Name: "b", Deps: []string{"a"}, Def: 1, Run: func(ctx context.Context, in *Inputs) (any, error) {
			var v int
			if err := in.Decode("ghost", &v); err == nil {
				return nil, errors.New("undeclared dep decoded")
			}
			if in.Key("a") == "" {
				return nil, errors.New("declared dep has no key")
			}
			if err := in.Decode("a", &v); err != nil {
				return nil, err
			}
			return v, nil
		}},
	}}
	if _, err := Run(context.Background(), p, Options{Store: st}); err != nil {
		t.Fatal(err)
	}
}
