package fleaflow

import (
	"context"
	"strings"
	"testing"

	"fleaflicker/internal/metrics"
)

func TestBuiltinsWellFormed(t *testing.T) {
	for _, name := range BuiltinNames() {
		p, err := Builtin(name, Env{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if BuiltinDoc(name) == "" {
			t.Errorf("%s: no doc line", name)
		}
		if p.Name != name {
			t.Errorf("pipeline name %q != builtin name %q", p.Name, name)
		}
	}
	if _, err := Builtin("no-such", Env{}); err == nil {
		t.Error("unknown builtin accepted")
	}
	if BuiltinDoc("no-such") != "" {
		t.Error("unknown builtin has a doc")
	}
}

func TestSmokePipelineEndToEnd(t *testing.T) {
	st := testStore(t)
	reg := metrics.NewRegistry()
	rep, err := Run(context.Background(), Smoke(Env{}), Options{Store: st, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 2 {
		t.Fatalf("first run: %+v", rep)
	}
	var doc Doc
	if err := st.Get(rep.Key("summary"), &doc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc.Markdown, "254.gap") || !strings.Contains(doc.Markdown, "IPC") {
		t.Errorf("summary doc incomplete: %q", doc.Markdown)
	}
	if got := reg.Counter(MetricStagesRan).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricStagesRan, got)
	}

	rep, err = Run(context.Background(), Smoke(Env{}), Options{Store: st, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cached != 2 || rep.Ran != 0 {
		t.Fatalf("second run not fully cached: %+v", rep)
	}
	if got := reg.Counter(MetricStagesCached).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricStagesCached, got)
	}
}

func TestFuzzCampaignSmoke(t *testing.T) {
	st := testStore(t)
	env := Env{FuzzPrograms: 6, FuzzShards: 2, FuzzSmoke: true}
	rep, err := Run(context.Background(), FuzzCampaign(env), Options{Store: st, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 4 { // plan + 2 shards + report
		t.Fatalf("report: %+v", rep)
	}
	var doc Doc
	if err := st.Get(rep.Key("divergence-report"), &doc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc.Markdown, "6 programs checked") {
		t.Errorf("campaign report wrong: %q", doc.Markdown)
	}

	// The plan splits the program budget without loss and with the service
	// layer's seed chunking (base + offset).
	var plan fuzzPlan
	if err := st.Get(rep.Key("plan"), &plan); err != nil {
		t.Fatal(err)
	}
	total, nextSeed := 0, int64(1)
	for _, sh := range plan.Shards {
		if sh.SeedBase != nextSeed {
			t.Errorf("shard seed %d, want %d", sh.SeedBase, nextSeed)
		}
		total += sh.Programs
		nextSeed += int64(sh.Programs)
	}
	if total != 6 {
		t.Errorf("plan covers %d programs, want 6", total)
	}
}

func TestFigure6GraphShape(t *testing.T) {
	p := Figure6(Env{})
	order, err := p.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	// The report is last: it depends (transitively) on everything.
	if order[len(order)-1] != "report" {
		t.Errorf("last stage = %q, want report", order[len(order)-1])
	}
	suites := 0
	for _, name := range order {
		if strings.HasPrefix(name, "suite/") {
			suites++
		}
	}
	if suites != 10 {
		t.Errorf("figure6 has %d suite stages, want 10", suites)
	}
}

func TestGraphRenderers(t *testing.T) {
	p := Figure6(Env{})
	dot := DOT(p)
	if !strings.Contains(dot, "digraph") ||
		!strings.Contains(dot, `"aggregate" -> "fig6";`) ||
		!strings.Contains(dot, `"suite/181.mcf" -> "aggregate";`) {
		t.Errorf("DOT output incomplete:\n%s", dot)
	}
	ascii := ASCII(p)
	if !strings.Contains(ascii, "[level 0]") ||
		!strings.Contains(ascii, "report") ||
		!strings.Contains(ascii, "aggregate  <- suite/099.go") {
		t.Errorf("ASCII output incomplete:\n%s", ascii)
	}
	// Rendering is deterministic.
	if DOT(p) != dot || ASCII(p) != ascii {
		t.Error("graph rendering not stable across calls")
	}
}
