package fleaflow

import (
	"context"
	"fmt"
	"time"
)

// Stage is one node of a campaign graph: a typed unit of work whose output
// is a JSON-serializable artifact. A stage runs when every dependency has
// produced its artifact; its own artifact key folds in those inputs' keys,
// so the run is skipped entirely when the store already holds the output
// of this exact (definition, inputs) combination.
type Stage struct {
	// Name identifies the stage within its pipeline; dependency edges and
	// Inputs lookups use it. Hierarchical names ("suite/181.mcf") are
	// conventional for fan-out families.
	Name string

	// Deps names the stages whose artifacts this stage consumes.
	Deps []string

	// Def is the serializable definition of the work — every parameter
	// that changes the output must appear here, because it (together with
	// the input keys) is the artifact address. Def must marshal
	// deterministically (structs and sorted-key maps do).
	Def any

	// Timeout, when non-zero, bounds this stage's execution; on expiry the
	// stage fails (and its downstream parks) without affecting independent
	// branches.
	Timeout time.Duration

	// Run computes the stage output from its resolved inputs. The returned
	// value is JSON-encoded into the artifact store; it must round-trip
	// through encoding/json. Run executes on a worker goroutine and must
	// honour ctx.
	Run func(ctx context.Context, in *Inputs) (any, error)
}

// Inputs resolves a running stage's dependency artifacts from the store.
type Inputs struct {
	store *Store
	keys  map[string]string // dep stage name -> artifact key
}

// Key returns the artifact key of a dependency ("" when dep is not one).
func (in *Inputs) Key(dep string) string { return in.keys[dep] }

// Decode loads the artifact of dependency dep into out.
func (in *Inputs) Decode(dep string, out any) error {
	key, ok := in.keys[dep]
	if !ok {
		return fmt.Errorf("fleaflow: stage input %q is not a declared dependency", dep)
	}
	return in.store.Get(key, out)
}
