package fleaflow

import (
	"fmt"
	"sort"
)

// Pipeline is a named campaign graph: a set of stages wired by dependency
// edges. A pipeline is data — building one runs nothing; Run executes it
// against a store.
type Pipeline struct {
	// Name is the campaign name (the `fleaflow run <name>` argument for
	// built-ins).
	Name string
	// Doc is a one-line description shown by `fleaflow list`.
	Doc string
	// Stages holds the graph nodes; declaration order is the tie-break for
	// scheduling and rendering, so keep it roughly topological for
	// readability.
	Stages []*Stage
}

// Stage returns the named stage, or nil.
func (p *Pipeline) Stage(name string) *Stage {
	for _, st := range p.Stages {
		if st.Name == name {
			return st
		}
	}
	return nil
}

// Validate checks the graph is well-formed: non-empty unique stage names,
// every dependency resolves, no stage depends on itself, and the edges
// form no cycle.
func (p *Pipeline) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("fleaflow: pipeline %q has no stages", p.Name)
	}
	index := make(map[string]*Stage, len(p.Stages))
	for _, st := range p.Stages {
		if st.Name == "" {
			return fmt.Errorf("fleaflow: pipeline %q has an unnamed stage", p.Name)
		}
		if st.Run == nil {
			return fmt.Errorf("fleaflow: stage %q has no Run function", st.Name)
		}
		if _, dup := index[st.Name]; dup {
			return fmt.Errorf("fleaflow: duplicate stage name %q", st.Name)
		}
		index[st.Name] = st
	}
	for _, st := range p.Stages {
		seen := make(map[string]bool, len(st.Deps))
		for _, d := range st.Deps {
			if d == st.Name {
				return fmt.Errorf("fleaflow: stage %q depends on itself", st.Name)
			}
			if _, ok := index[d]; !ok {
				return fmt.Errorf("fleaflow: stage %q depends on unknown stage %q", st.Name, d)
			}
			if seen[d] {
				return fmt.Errorf("fleaflow: stage %q lists dependency %q twice", st.Name, d)
			}
			seen[d] = true
		}
	}
	if _, err := p.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the stage names in a deterministic topological order
// (Kahn's algorithm; ties broken lexicographically), or an error naming
// the stages on a cycle.
func (p *Pipeline) TopoOrder() ([]string, error) {
	waiting := make(map[string]int, len(p.Stages))
	children := make(map[string][]string, len(p.Stages))
	for _, st := range p.Stages {
		waiting[st.Name] = len(st.Deps)
		for _, d := range st.Deps {
			children[d] = append(children[d], st.Name)
		}
	}
	var ready []string
	for _, st := range p.Stages {
		if len(st.Deps) == 0 {
			ready = append(ready, st.Name)
		}
	}
	order := make([]string, 0, len(p.Stages))
	for len(ready) > 0 {
		sort.Strings(ready)
		name := ready[0]
		ready = ready[1:]
		order = append(order, name)
		for _, ch := range children[name] {
			waiting[ch]--
			if waiting[ch] == 0 {
				ready = append(ready, ch)
			}
		}
	}
	if len(order) != len(p.Stages) {
		var stuck []string
		for _, st := range p.Stages {
			if waiting[st.Name] > 0 {
				stuck = append(stuck, st.Name)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("fleaflow: dependency cycle through %v", stuck)
	}
	return order, nil
}
