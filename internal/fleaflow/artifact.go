// Package fleaflow is the experiment-DAG orchestrator: a campaign (every
// paper figure, a fuzzing sweep) is a graph of typed stages whose outputs
// are content-addressed artifacts, so reruns skip completed work, an
// interrupted campaign resumes from what its artifact store already holds,
// and service-backed stages reuse the fleasimd result cache and federation
// for free.
//
// The artifact key of a stage is the SHA-256 of its definition plus the
// keys of its inputs, so the addressing is recursive: editing an upstream
// stage's definition re-keys (and therefore re-runs) everything downstream
// of it, while unrelated branches keep their cached artifacts. This is the
// same content-addressing discipline as the serving layer's result cache
// (service.UnitSpec.Key), lifted from one simulation to a whole campaign.
package fleaflow

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Store is a content-addressed artifact store rooted at one directory.
// Objects live under objects/<key[:2]>/<key>.json and are written with a
// temp-file-plus-rename protocol, so a store never holds a torn artifact:
// a campaign killed mid-write leaves at worst an orphaned temp file, and
// the interrupted stage simply re-runs on resume.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) the artifact store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("fleaflow: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectPath(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key+".json")
}

// Has reports whether an artifact exists under key.
func (s *Store) Has(key string) bool {
	if len(key) < 2 {
		return false
	}
	_, err := os.Stat(s.objectPath(key))
	return err == nil
}

// GetRaw returns the stored artifact bytes for key.
func (s *Store) GetRaw(key string) ([]byte, error) {
	if len(key) < 2 {
		return nil, fmt.Errorf("fleaflow: malformed artifact key %q", key)
	}
	b, err := os.ReadFile(s.objectPath(key))
	if err != nil {
		return nil, fmt.Errorf("fleaflow: artifact %s: %w", key[:12], err)
	}
	return b, nil
}

// Get decodes the artifact stored under key into out.
func (s *Store) Get(key string, out any) error {
	b, err := s.GetRaw(key)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, out); err != nil {
		return fmt.Errorf("fleaflow: artifact %s: decode: %w", key[:12], err)
	}
	return nil
}

// Put stores v (JSON-encoded) under key, atomically: the bytes land in a
// temp file in the object's directory and are renamed into place, so a
// reader (or a resumed campaign) either sees the complete artifact or none
// at all. Writing the same key twice is a no-op overwrite with identical
// semantics.
func (s *Store) Put(key string, v any) error {
	if len(key) < 2 {
		return fmt.Errorf("fleaflow: malformed artifact key %q", key)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("fleaflow: artifact %s: encode: %w", key[:12], err)
	}
	path := s.objectPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key[:12]+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// StageKey derives a stage's artifact key: the SHA-256 of the canonical
// JSON encoding of its name, its definition, and its inputs' artifact keys
// (keyed by dependency name; encoding/json sorts map keys, so the encoding
// is canonical). Two stages compute the same key exactly when they would
// compute the same artifact — same definition, same inputs all the way up
// the graph.
func StageKey(name string, def any, deps map[string]string) (string, error) {
	payload := struct {
		Name string            `json:"name"`
		Def  any               `json:"def,omitempty"`
		Deps map[string]string `json:"deps,omitempty"`
	}{Name: name, Def: def, Deps: deps}
	b, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("fleaflow: stage %s: definition not serializable: %w", name, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
