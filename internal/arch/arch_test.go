package arch

import (
	"strings"
	"testing"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/program"
)

func run(t *testing.T, src string) *Result {
	t.Helper()
	p, err := program.Assemble(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSumLoop(t *testing.T) {
	r := run(t, `
        .data 0x10000000
result: .word 0
        .text
        movi r1 = 0
        movi r2 = 1
        movi r3 = 10
        movi r4 = result ;;
loop:   add r1 = r1, r2
        cmp.lt p1 = r2, r3 ;;
        addi r2 = r2, 1
        (p1) br loop ;;
        st4 [r4] = r1 ;;
        halt ;;
`)
	if got := r.State.Mem.ReadU32(0x10000000); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if got := isa.AsI32(r.State.Read(isa.R(1))); got != 55 {
		t.Errorf("r1 = %d, want 55", got)
	}
	// 4 + 10*4 + 2 retired instructions.
	if r.Instructions != 46 {
		t.Errorf("instructions = %d, want 46", r.Instructions)
	}
	if r.Branches != 9 { // taken 9 times... predicated-off final br not counted
		t.Errorf("branches = %d, want 9", r.Branches)
	}
	if r.Stores != 1 {
		t.Errorf("stores = %d, want 1", r.Stores)
	}
}

func TestPredicationSuppressesEffects(t *testing.T) {
	r := run(t, `
        movi r1 = 5
        movi r2 = 7
        movi r10 = 0x1000 ;;
        cmp.lt p1 = r1, r2
        cmp.lt p2 = r2, r1 ;;
        (p1) movi r3 = 111
        (p2) movi r4 = 222
        (p2) st4 [r10] = r1 ;;
        halt ;;
`)
	if isa.AsI32(r.State.Read(isa.R(3))) != 111 {
		t.Errorf("predicated-on write lost")
	}
	if r.State.Read(isa.R(4)) != 0 {
		t.Errorf("predicated-off write happened")
	}
	if r.State.Mem.ReadU32(0x1000) != 0 {
		t.Errorf("predicated-off store happened")
	}
	if r.Stores != 0 {
		t.Errorf("predicated-off store counted: %d", r.Stores)
	}
}

func TestCallRetProper(t *testing.T) {
	r := run(t, `
        movi r10 = 3 ;;
        br.call r63 = double ;;
        mov r11 = r10 ;;
        br.call r63 = double ;;
        halt ;;
double: add r10 = r10, r10 ;;
        br.ret r63 ;;
`)
	if isa.AsI32(r.State.Read(isa.R(11))) != 6 {
		t.Errorf("r11 = %d, want 6", isa.AsI32(r.State.Read(isa.R(11))))
	}
	if isa.AsI32(r.State.Read(isa.R(10))) != 12 {
		t.Errorf("r10 = %d, want 12", isa.AsI32(r.State.Read(isa.R(10))))
	}
}

func TestIndirectBranch(t *testing.T) {
	r := run(t, `
        movi r1 = @dest ;;
        br.ind r1 ;;
        movi r2 = 1 ;;   // skipped
dest:   movi r3 = 9 ;;
        halt ;;
`)
	if r.State.Read(isa.R(2)) != 0 || isa.AsI32(r.State.Read(isa.R(3))) != 9 {
		t.Errorf("indirect branch did not skip: r2=%d r3=%d",
			r.State.Read(isa.R(2)), r.State.Read(isa.R(3)))
	}
}

func TestMemorySizes(t *testing.T) {
	r := run(t, `
        movi r1 = 0x2000
        movi r2 = 0x11223344 ;;
        st4 [r1] = r2 ;;
        ld1 r3 = [r1]
        ld1 r4 = [r1, 3]
        ld2 r5 = [r1, 1] ;;
        st1 [r1, 2] = r4
        st2 [r1, 4] = r5 ;;
        ld4 r6 = [r1]
        ld4 r7 = [r1, 4] ;;
        halt ;;
`)
	reg := func(n int) uint32 { return uint32(r.State.Read(isa.R(n))) }
	if reg(3) != 0x44 || reg(4) != 0x11 || reg(5) != 0x2233 {
		t.Errorf("narrow loads wrong: %#x %#x %#x", reg(3), reg(4), reg(5))
	}
	if reg(6) != 0x11113344 {
		t.Errorf("after st1: %#x, want 0x11113344", reg(6))
	}
	if reg(7) != 0x2233 {
		t.Errorf("st2/ld4 = %#x, want 0x2233", reg(7))
	}
}

func TestFPPath(t *testing.T) {
	r := run(t, `
        .data 0x3000
a:      .float 1.5
b:      .float 4.0
out:    .float 0
        .text
        movi r1 = a ;;
        ldf f2 = [r1]
        ldf f3 = [r1, 8] ;;
        fmul f4 = f2, f3
        fcmp.lt p1 = f2, f3 ;;
        fadd f5 = f4, f1       // f1 is hardwired 1.0
        (p1) fsub f6 = f3, f2 ;;
        fdiv f7 = f6, f2 ;;
        f2i r2 = f7
        stf [r1, 16] = f5 ;;
        halt ;;
`)
	if got := isa.AsFP(r.State.Read(isa.F(5))); got != 7.0 {
		t.Errorf("f5 = %v, want 7.0", got)
	}
	if got := isa.AsFP(r.State.Read(isa.F(6))); got != 2.5 {
		t.Errorf("f6 = %v, want 2.5", got)
	}
	if got := isa.AsI32(r.State.Read(isa.R(2))); got != 1 { // 2.5/1.5 truncated
		t.Errorf("r2 = %v, want 1", got)
	}
	if got := isa.AsFP(r.State.Mem.ReadF64(0x3010)); got != 7.0 {
		t.Errorf("stored f5 = %v, want 7.0", got)
	}
}

func TestHardwiredRegistersIgnoreWrites(t *testing.T) {
	r := run(t, `
        movi r0 = 99
        movi r5 = 1 ;;
        add r6 = r0, r5 ;;
        halt ;;
`)
	if got := isa.AsI32(r.State.Read(isa.R(6))); got != 1 {
		t.Errorf("r6 = %d, want 1 (r0 must stay 0)", got)
	}
}

func TestRunawayProgramErrors(t *testing.T) {
	p := program.MustAssemble("spin", `
loop:   br loop ;;
        halt ;;
`)
	if _, err := Run(p, 1000); err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("runaway program should error, got %v", err)
	}
}

func TestPCOutOfRange(t *testing.T) {
	p := program.MustAssemble("oob", `
        movi r1 = 99 ;;
        br.ind r1 ;;
        halt ;;
`)
	if _, err := Run(p, 1000); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range pc should error, got %v", err)
	}
}

func TestStateEqualAndDiff(t *testing.T) {
	a := NewState(mem.NewImage())
	b := NewState(mem.NewImage())
	if !a.Equal(b) || a.Diff(b) != "" {
		t.Errorf("fresh states should be equal")
	}
	a.Write(isa.R(3), 7)
	if a.Equal(b) {
		t.Errorf("states differ; Equal said equal")
	}
	if d := a.Diff(b); !strings.Contains(d, "r3") {
		t.Errorf("Diff = %q, want mention of r3", d)
	}
	b.Write(isa.R(3), 7)
	a.Mem.WriteU32(0x100, 1)
	if d := a.Diff(b); !strings.Contains(d, "memory") {
		t.Errorf("Diff = %q, want memory difference", d)
	}
}

func TestInstructionClassCounts(t *testing.T) {
	r := run(t, `
        movi r1 = 0x4000 ;;
        ld4 r2 = [r1] ;;
        fadd f2 = f1, f1 ;;
        br next ;;
next:   halt ;;
`)
	if r.ByClass[isa.ClassALU] != 1 || r.ByClass[isa.ClassMEM] != 1 ||
		r.ByClass[isa.ClassFP] != 1 || r.ByClass[isa.ClassBR] != 2 {
		t.Errorf("ByClass = %v", r.ByClass)
	}
	if r.Loads != 1 {
		t.Errorf("Loads = %d", r.Loads)
	}
}
