// Package arch provides the functional reference executor: an untimed
// interpreter of the ISA that defines architecturally correct results. Every
// timed machine model (baseline, two-pass, runahead) must terminate with
// register and memory state identical to this executor's — the golden
// correctness invariant the test suites enforce.
package arch

import (
	"fmt"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/program"
)

// State is an architectural machine state: the unified register file and
// memory.
type State struct {
	Regs [isa.NumRegs]isa.Value
	Mem  *mem.Image
}

// NewState returns a state with zeroed registers and the given memory
// (which the state takes ownership of).
func NewState(m *mem.Image) *State {
	if m == nil {
		m = mem.NewImage()
	}
	return &State{Mem: m}
}

// Read returns the value of register r, honoring hardwired registers.
// Reading RegNone (an absent operand) yields 0.
func (s *State) Read(r isa.Reg) isa.Value {
	if r == isa.RegNone || r.Hardwired() {
		return isa.HardwiredValue(r)
	}
	return s.Regs[r]
}

// Write sets register r to v; writes to hardwired registers are discarded.
func (s *State) Write(r isa.Reg, v isa.Value) {
	if r == isa.RegNone || r.Hardwired() {
		return
	}
	s.Regs[r] = v
}

// Equal reports whether two states match architecturally.
func (s *State) Equal(o *State) bool {
	for r := 0; r < isa.NumRegs; r++ {
		if !isa.Reg(r).Hardwired() && s.Regs[r] != o.Regs[r] {
			return false
		}
	}
	return s.Mem.Equal(o.Mem)
}

// RegDiff is one diverged register: the state under test read Got where the
// reference holds Want.
type RegDiff struct {
	Reg  isa.Reg
	Got  isa.Value
	Want isa.Value
}

// MemDiff is one diverged memory byte.
type MemDiff struct {
	Addr uint32
	Got  byte
	Want byte
}

// CompareStates enumerates up to max register and max memory-byte
// differences between a state under test and the reference state, in
// register-number and ascending-address order. Both slices empty means the
// states agree architecturally.
func CompareStates(got, want *State, max int) (regs []RegDiff, bytes []MemDiff) {
	for r := 0; r < isa.NumRegs && len(regs) < max; r++ {
		reg := isa.Reg(r)
		if !reg.Hardwired() && got.Regs[r] != want.Regs[r] {
			regs = append(regs, RegDiff{Reg: reg, Got: got.Regs[r], Want: want.Regs[r]})
		}
	}
	for _, addr := range got.Mem.Differences(want.Mem, max) {
		bytes = append(bytes, MemDiff{Addr: addr, Got: got.Mem.Byte(addr), Want: want.Mem.Byte(addr)})
	}
	return regs, bytes
}

// Diff describes the first difference between two states, for test failure
// messages. It returns "" when the states are equal.
func (s *State) Diff(o *State) string {
	for r := 0; r < isa.NumRegs; r++ {
		reg := isa.Reg(r)
		if !reg.Hardwired() && s.Regs[r] != o.Regs[r] {
			return fmt.Sprintf("register %s: %#x vs %#x", reg, s.Regs[r], o.Regs[r])
		}
	}
	if addr, ok := s.Mem.FirstDifference(o.Mem); ok {
		return fmt.Sprintf("memory at %#x: %#x vs %#x", addr, s.Mem.Byte(addr), o.Mem.Byte(addr))
	}
	return ""
}

// Result summarizes a functional execution.
type Result struct {
	// Instructions is the number of retired dynamic instructions,
	// including predicated-off instructions and nops (they occupy issue
	// slots, so every machine model retires them too).
	Instructions int64
	// ByClass counts retired instructions per functional-unit class.
	ByClass [isa.NumFUClasses]int64
	// Loads, Stores and Branches count retired (predicated-on) operations.
	Loads, Stores, Branches int64
	// State is the final architectural state.
	State *State
}

// Executor interprets a program functionally.
type Executor struct {
	prog  *program.Program
	state *State
	pc    int32
	halt  bool
	res   Result
}

// NewExecutor prepares an executor over a fresh copy of the program's
// initial memory image.
func NewExecutor(p *program.Program) *Executor {
	st := NewState(p.InitialImage())
	return &Executor{prog: p, state: st, pc: p.Entry, res: Result{State: st}}
}

// Halted reports whether the program has executed halt.
func (e *Executor) Halted() bool { return e.halt }

// PC returns the next instruction index to execute.
func (e *Executor) PC() int32 { return e.pc }

// State exposes the live architectural state.
func (e *Executor) State() *State { return e.state }

// Result returns a snapshot of the execution's result so far (final once
// Halted).
func (e *Executor) Result() *Result {
	r := e.res
	return &r
}

// Step executes one instruction. It is a no-op once halted.
func (e *Executor) Step() error {
	if e.halt {
		return nil
	}
	if e.pc < 0 || int(e.pc) >= len(e.prog.Insts) {
		return fmt.Errorf("arch: pc %d out of range (program %q has %d instructions)",
			e.pc, e.prog.Name, len(e.prog.Insts))
	}
	in := &e.prog.Insts[e.pc]
	next, err := StepState(e.state, in, e.pc)
	if err != nil {
		return err
	}
	e.res.Instructions++
	e.res.ByClass[in.Op.Class()]++
	if e.state.Read(in.Pred) != 0 {
		switch {
		case in.Op.IsLoad():
			e.res.Loads++
		case in.Op.IsStore():
			e.res.Stores++
		case in.Op.IsBranch():
			e.res.Branches++
		case in.Op == isa.OpHalt:
			e.halt = true
		}
	}
	e.pc = next
	return nil
}

// StepState applies one instruction to a state and returns the next PC.
// It is shared with the timed machines' commit paths in spirit: it defines
// the architectural semantics of each operation.
func StepState(s *State, in *isa.Inst, pc int32) (nextPC int32, err error) {
	nextPC = pc + 1
	if s.Read(in.Pred) == 0 {
		return nextPC, nil // predicated off: no effect, fall through
	}
	op := in.Op
	switch {
	case op == isa.OpNop:
	case op == isa.OpHalt:
	case op.IsLoad():
		addr := isa.EffectiveAddress(s.Read(in.Src1), in.Imm)
		s.Write(in.Dst, s.Mem.Read(addr, op.MemSize()))
	case op.IsStore():
		addr := isa.EffectiveAddress(s.Read(in.Src1), in.Imm)
		s.Mem.Write(addr, op.MemSize(), s.Read(in.Src2))
	case op == isa.OpBr:
		nextPC = in.Target
	case op == isa.OpBrCall:
		s.Write(in.Dst, isa.Value(uint32(pc+1)))
		nextPC = in.Target
	case op == isa.OpBrRet || op == isa.OpBrInd:
		nextPC = int32(uint32(s.Read(in.Src1)))
	default:
		s.Write(in.Dst, isa.Eval(op, s.Read(in.Src1), s.Read(in.Src2), in.Imm))
	}
	return nextPC, nil
}

// Run executes the program to completion (or until maxSteps instructions
// have retired) and returns the result.
func Run(p *program.Program, maxSteps int64) (*Result, error) {
	e := NewExecutor(p)
	for !e.Halted() {
		if e.res.Instructions >= maxSteps {
			return nil, fmt.Errorf("arch: program %q exceeded %d instructions without halting",
				p.Name, maxSteps)
		}
		if err := e.Step(); err != nil {
			return nil, err
		}
	}
	r := e.res
	return &r, nil
}

// MustRun is Run panicking on error, for tests and workload metadata.
func MustRun(p *program.Program, maxSteps int64) *Result {
	r, err := Run(p, maxSteps)
	if err != nil {
		panic(err)
	}
	return r
}
