package metrics

import (
	"strings"
	"testing"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cycles")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("cycles"); again != c {
		t.Error("Counter should return the same handle for the same name")
	}
	g := r.Gauge("cq.occupancy")
	g.Set(17)
	if g.Value() != 17 {
		t.Errorf("gauge = %d, want 17", g.Value())
	}
	if again := r.Gauge("cq.occupancy"); again != g {
		t.Error("Gauge should return the same handle for the same name")
	}
}

func TestCounterValueLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	if v, ok := r.CounterValue("a"); !ok || v != 3 {
		t.Errorf("CounterValue(a) = %d, %v", v, ok)
	}
	if _, ok := r.CounterValue("missing"); ok {
		t.Error("missing counter should report !ok")
	}
}

func TestEachIsSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.Counter("a").Add(2)
	r.Counter("m").Add(3)
	var names []string
	var total int64
	r.EachCounter(func(name string, v int64) {
		names = append(names, name)
		total += v
	})
	if strings.Join(names, ",") != "a,m,z" {
		t.Errorf("EachCounter order = %v", names)
	}
	if total != 6 {
		t.Errorf("EachCounter total = %d", total)
	}
	r.Gauge("g2").Set(2)
	r.Gauge("g1").Set(1)
	names = names[:0]
	r.EachGauge(func(name string, v int64) { names = append(names, name) })
	if strings.Join(names, ",") != "g1,g2" {
		t.Errorf("EachGauge order = %v", names)
	}
}

func TestDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("beta").Add(2)
	r.Counter("alpha").Add(1)
	want := "alpha 1\nbeta 2\n"
	if d := r.Dump(); d != want {
		t.Errorf("Dump() = %q, want %q", d, want)
	}
}
