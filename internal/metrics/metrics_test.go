package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cycles")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("cycles"); again != c {
		t.Error("Counter should return the same handle for the same name")
	}
	g := r.Gauge("cq.occupancy")
	g.Set(17)
	if g.Value() != 17 {
		t.Errorf("gauge = %d, want 17", g.Value())
	}
	if again := r.Gauge("cq.occupancy"); again != g {
		t.Error("Gauge should return the same handle for the same name")
	}
}

func TestCounterValueLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	if v, ok := r.CounterValue("a"); !ok || v != 3 {
		t.Errorf("CounterValue(a) = %d, %v", v, ok)
	}
	if _, ok := r.CounterValue("missing"); ok {
		t.Error("missing counter should report !ok")
	}
}

func TestEachIsSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.Counter("a").Add(2)
	r.Counter("m").Add(3)
	var names []string
	var total int64
	r.EachCounter(func(name string, v int64) {
		names = append(names, name)
		total += v
	})
	if strings.Join(names, ",") != "a,m,z" {
		t.Errorf("EachCounter order = %v", names)
	}
	if total != 6 {
		t.Errorf("EachCounter total = %d", total)
	}
	r.Gauge("g2").Set(2)
	r.Gauge("g1").Set(1)
	names = names[:0]
	r.EachGauge(func(name string, v int64) { names = append(names, name) })
	if strings.Join(names, ",") != "g1,g2" {
		t.Errorf("EachGauge order = %v", names)
	}
}

func TestDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("beta").Add(2)
	r.Counter("alpha").Add(1)
	want := "alpha 1\nbeta 2\n"
	if d := r.Dump(); d != want {
		t.Errorf("Dump() = %q, want %q", d, want)
	}
}

func TestSharedCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.SharedCounter("service.jobs")
	g := r.SharedGauge("service.depth")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("shared counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("shared gauge = %d, want 0", g.Value())
	}
	if again := r.SharedCounter("service.jobs"); again != c {
		t.Error("SharedCounter should return the same handle for the same name")
	}
	if again := r.SharedGauge("service.depth"); again != g {
		t.Error("SharedGauge should return the same handle for the same name")
	}
}

func TestSharedAndPlainEnumerateTogether(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.cycles").Add(7)
	r.SharedCounter("service.hits").Add(3)
	var names []string
	var total int64
	r.EachCounter(func(name string, v int64) {
		names = append(names, name)
		total += v
	})
	if strings.Join(names, ",") != "service.hits,sim.cycles" || total != 10 {
		t.Errorf("EachCounter = %v total %d", names, total)
	}
	if v, ok := r.CounterValue("service.hits"); !ok || v != 3 {
		t.Errorf("CounterValue(service.hits) = %d, %v", v, ok)
	}
	r.Gauge("sim.occ").Set(4)
	r.SharedGauge("service.busy").Set(2)
	names = names[:0]
	r.EachGauge(func(name string, v int64) { names = append(names, name) })
	if strings.Join(names, ",") != "service.busy,sim.occ" {
		t.Errorf("EachGauge = %v", names)
	}
	want := "service.hits 3\nsim.cycles 7\n"
	if d := r.Dump(); d != want {
		t.Errorf("Dump() = %q, want %q", d, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.plain").Add(3)
	r.SharedCounter("c.shared").Add(4)
	r.Gauge("g.plain").Set(5)
	r.SharedGauge("g.shared").Set(6)

	counters, gauges := r.Snapshot()
	if counters["c.plain"] != 3 || counters["c.shared"] != 4 {
		t.Errorf("counters = %v", counters)
	}
	if gauges["g.plain"] != 5 || gauges["g.shared"] != 6 {
		t.Errorf("gauges = %v", gauges)
	}
	// The snapshot is a copy: mutating it must not touch the registry.
	counters["c.plain"] = 99
	if v, _ := r.CounterValue("c.plain"); v != 3 {
		t.Errorf("registry counter mutated through snapshot copy: %d", v)
	}
}
