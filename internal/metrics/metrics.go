// Package metrics is a small counter/gauge registry. Machines register
// their counters under canonical names at construction and bump them on the
// hot path through direct handles (a handle increment is one predictable
// store — no map lookup, no atomics); the registry is the enumerable view
// tools and tests read afterwards.
//
// internal/stats re-derives its Run aggregates from a registry (see
// stats.Collector), so end-of-run aggregates, live counter reads, and trace
// events all observe the same underlying counts and can never disagree.
//
// Concurrency: registration (Counter/Gauge lookup-or-create) is mutex
// guarded, but handle updates are not synchronized — a registry belongs to
// one running machine. Parallel simulations (experiments.RunSuite) each use
// their own registry; share only sinks, never a registry.
//
// Multi-goroutine components (the serving layer's worker pool and handlers,
// see internal/service) instead register SharedCounter/SharedGauge handles,
// whose updates are atomic. The two families live in one namespace and are
// enumerated together, so a /metricsz-style dump sees both; a name must not
// be registered in both families.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v int64
}

// Inc adds one.
//
//flea:hotpath
//flea:inline
//flea:noescape
func (c *Counter) Inc() { c.v++ }

// Add adds n (n may be negative only to reverse a speculative count that
// was squashed; a counter must never go below zero at rest).
//
//flea:hotpath
//flea:inline
//flea:noescape
func (c *Counter) Add(n int64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time int64 metric (e.g. current queue occupancy).
type Gauge struct {
	v int64
}

// Set replaces the value.
//
//flea:hotpath
//flea:inline
//flea:noescape
func (g *Gauge) Set(n int64) { g.v = n }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// SharedCounter is a monotonically increasing int64 metric safe for
// concurrent update from many goroutines. It is the serving-layer
// counterpart of Counter: one atomic add per increment instead of one plain
// store, so it never rides a simulator hot path.
type SharedCounter struct {
	v atomic.Int64 //flea:atomic
}

// Inc adds one.
//
//flea:inline
//flea:noescape
func (c *SharedCounter) Inc() { c.v.Add(1) }

// Add adds n.
//
//flea:inline
//flea:noescape
func (c *SharedCounter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
//
//flea:inline
//flea:noescape
func (c *SharedCounter) Value() int64 { return c.v.Load() }

// SharedGauge is a point-in-time int64 metric safe for concurrent update
// (e.g. live queue depth observed by many workers).
type SharedGauge struct {
	v atomic.Int64 //flea:atomic
}

// Set replaces the value.
//
//flea:inline
//flea:noescape
func (g *SharedGauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (occupancy-style gauges increment on entry and
// decrement on exit).
//
//flea:inline
//flea:noescape
func (g *SharedGauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.//
//
//flea:inline
//flea:noescape
func (g *SharedGauge) Value() int64 { return g.v.Load() }

// Registry holds named counters and gauges.
type Registry struct {
	mu sync.Mutex
	//flea:guardedby(mu)
	counters map[string]*Counter
	//flea:guardedby(mu)
	gauges map[string]*Gauge
	//flea:guardedby(mu)
	sharedCounters map[string]*SharedCounter
	//flea:guardedby(mu)
	sharedGauges map[string]*SharedGauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:       make(map[string]*Counter),
		gauges:         make(map[string]*Gauge),
		sharedCounters: make(map[string]*SharedCounter),
		sharedGauges:   make(map[string]*SharedGauge),
	}
}

// Counter returns the counter registered under name, creating it at zero on
// first use. The returned handle stays valid for the registry's lifetime.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// RestoreCounter sets the counter registered under name to value, creating
// it on first use. It exists for checkpoint resume, where counter names come
// from a serialized snapshot rather than a compile-time constant: the
// snapshot's names were constants when the producing machine registered
// them, so restoring cannot mint a new name, only re-seed an existing one
// (or pre-seed one the resuming machine registers later at the same name).
func (r *Registry) RestoreCounter(name string, value int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	c.v = value
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// SharedCounter returns the concurrency-safe counter registered under name,
// creating it at zero on first use. The returned handle stays valid for the
// registry's lifetime.
func (r *Registry) SharedCounter(name string) *SharedCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.sharedCounters[name]
	if !ok {
		c = &SharedCounter{}
		r.sharedCounters[name] = c
	}
	return c
}

// SharedGauge returns the concurrency-safe gauge registered under name,
// creating it on first use.
func (r *Registry) SharedGauge(name string) *SharedGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.sharedGauges[name]
	if !ok {
		g = &SharedGauge{}
		r.sharedGauges[name] = g
	}
	return g
}

// CounterValue returns the value of a registered counter — plain or shared —
// or (0, false) when no counter has that name.
func (r *Registry) CounterValue(name string) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c.Value(), true
	}
	if c, ok := r.sharedCounters[name]; ok {
		return c.Value(), true
	}
	return 0, false
}

// EachCounter calls fn for every registered counter — plain and shared — in
// sorted name order.
func (r *Registry) EachCounter(fn func(name string, value int64)) {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.sharedCounters))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.sharedCounters {
		names = append(names, name)
	}
	sort.Strings(names)
	vals := make([]int64, len(names))
	for i, name := range names {
		if c, ok := r.counters[name]; ok {
			vals[i] = c.Value()
		} else {
			vals[i] = r.sharedCounters[name].Value()
		}
	}
	r.mu.Unlock()
	for i, name := range names {
		fn(name, vals[i])
	}
}

// EachGauge calls fn for every registered gauge — plain and shared — in
// sorted name order.
func (r *Registry) EachGauge(fn func(name string, value int64)) {
	r.mu.Lock()
	names := make([]string, 0, len(r.gauges)+len(r.sharedGauges))
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.sharedGauges {
		names = append(names, name)
	}
	sort.Strings(names)
	vals := make([]int64, len(names))
	for i, name := range names {
		if g, ok := r.gauges[name]; ok {
			vals[i] = g.Value()
		} else {
			vals[i] = r.sharedGauges[name].Value()
		}
	}
	r.mu.Unlock()
	for i, name := range names {
		fn(name, vals[i])
	}
}

// Snapshot returns the current counters and gauges as fresh maps, both
// families merged. It exists for aggregation endpoints (a coordinator's
// /clusterz embeds one snapshot per node) where a point-in-time copy is
// more convenient than the Each* callbacks.
func (r *Registry) Snapshot() (counters, gauges map[string]int64) {
	counters = make(map[string]int64)
	gauges = make(map[string]int64)
	r.EachCounter(func(name string, v int64) { counters[name] = v })
	r.EachGauge(func(name string, v int64) { gauges[name] = v })
	return counters, gauges
}

// Dump renders every counter as "name value" lines, sorted — a debugging
// and golden-test convenience.
func (r *Registry) Dump() string {
	var b strings.Builder
	r.EachCounter(func(name string, v int64) {
		fmt.Fprintf(&b, "%s %d\n", name, v)
	})
	return b.String()
}
