package bpred

import "testing"

func small() *Predictor {
	return New(Config{PHTEntries: 64, HistBits: 6, BTBEntries: 16, RASEntries: 4})
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := small()
	pc := int32(12)
	wrong := 0
	for i := 0; i < 100; i++ {
		taken, cp := p.PredictCond(pc)
		if p.Resolve(pc, cp, taken, true) {
			wrong++
		}
	}
	if wrong > 2 {
		t.Errorf("always-taken branch mispredicted %d/100 times", wrong)
	}
}

func TestLearnsAlternatingWithHistory(t *testing.T) {
	// gshare with 6 bits of history should learn a strict T/N/T/N pattern
	// perfectly once warmed up.
	p := small()
	pc := int32(40)
	wrong := 0
	for i := 0; i < 400; i++ {
		actual := i%2 == 0
		taken, cp := p.PredictCond(pc)
		if p.Resolve(pc, cp, taken, actual) && i > 100 {
			wrong++
		}
	}
	if wrong != 0 {
		t.Errorf("alternating branch mispredicted %d times after warmup", wrong)
	}
}

func TestGHRRepairOnMispredict(t *testing.T) {
	p := small()
	before := p.ghr
	predicted, cp := p.PredictCond(7)
	if p.ghr == before && p.cfg.HistBits > 0 && predicted {
		t.Errorf("speculative GHR update missing")
	}
	p.Resolve(7, cp, predicted, !predicted) // force mispredict
	wantGHR := (before<<1 | ghrBit(!predicted)) & (1<<p.cfg.HistBits - 1)
	if p.ghr != wantGHR {
		t.Errorf("GHR after repair = %b, want %b", p.ghr, wantGHR)
	}
	if p.Mispredicts != 1 {
		t.Errorf("Mispredicts = %d", p.Mispredicts)
	}
}

func ghrBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func TestCorrectPredictionKeepsSpeculativeGHR(t *testing.T) {
	p := small()
	predicted, cp := p.PredictCond(3)
	after := p.ghr
	p.Resolve(3, cp, predicted, predicted)
	if p.ghr != after {
		t.Errorf("correct prediction must not disturb the speculative GHR")
	}
}

func TestBTB(t *testing.T) {
	p := small()
	if _, ok := p.PredictIndirect(5); ok {
		t.Errorf("cold BTB should miss")
	}
	p.UpdateIndirect(5, 99)
	if tgt, ok := p.PredictIndirect(5); !ok || tgt != 99 {
		t.Errorf("BTB = %d,%v; want 99,true", tgt, ok)
	}
	// Aliasing entry (same index, different pc) must not false-hit.
	p.UpdateIndirect(5+16, 1)
	if _, ok := p.PredictIndirect(5); ok {
		t.Errorf("BTB tag check failed: aliased entry hit")
	}
}

func TestRASLIFO(t *testing.T) {
	p := small()
	p.PushRAS(10)
	p.PushRAS(20)
	if tgt, ok := p.PopRAS(); !ok || tgt != 20 {
		t.Errorf("PopRAS = %d,%v; want 20", tgt, ok)
	}
	if tgt, ok := p.PopRAS(); !ok || tgt != 10 {
		t.Errorf("PopRAS = %d,%v; want 10", tgt, ok)
	}
	if _, ok := p.PopRAS(); ok {
		t.Errorf("empty RAS should miss")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	p := small() // depth 4
	for i := int32(1); i <= 5; i++ {
		p.PushRAS(i * 10)
	}
	for want := int32(50); want >= 20; want -= 10 {
		if tgt, ok := p.PopRAS(); !ok || tgt != want {
			t.Fatalf("PopRAS = %d,%v; want %d", tgt, ok, want)
		}
	}
	if _, ok := p.PopRAS(); ok {
		t.Errorf("oldest entry should have been dropped")
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig()
	if c.PHTEntries != 1024 || c.HistBits != 10 {
		t.Errorf("default gshare is %d entries/%d bits, want 1024/10", c.PHTEntries, c.HistBits)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("non-power-of-two PHT should panic")
		}
	}()
	New(Config{PHTEntries: 100, HistBits: 4, BTBEntries: 16, RASEntries: 4})
}
