// Package bpred implements the branch prediction hardware of the simulated
// front end: a gshare conditional-direction predictor (1024-entry table of
// 2-bit counters in the paper's configuration, Table 1), a direct-mapped BTB
// for indirect-branch targets, and a small return-address stack for
// call/return pairs.
package bpred

import "fmt"

// Checkpoint captures the speculative predictor state at a prediction point
// so it can be repaired when the branch resolves as mispredicted.
type Checkpoint struct {
	GHR uint32
}

// Config sizes the predictor.
type Config struct {
	PHTEntries int // gshare pattern history table entries (power of two)
	HistBits   uint
	BTBEntries int // indirect-target buffer entries (power of two)
	RASEntries int // return-address stack depth
}

// DefaultConfig matches Table 1: a 1024-entry gshare (10 bits of global
// history), with a 256-entry BTB and an 8-deep RAS for the indirect branches
// the paper's predictor leaves unspecified.
func DefaultConfig() Config {
	return Config{PHTEntries: 1024, HistBits: 10, BTBEntries: 256, RASEntries: 8}
}

// Predictor is the front-end branch predictor. Direction predictions update
// the global history speculatively at predict time; Resolve repairs the
// history on a misprediction.
type Predictor struct {
	cfg Config

	pht []uint8 // 2-bit saturating counters, initialized weakly taken
	ghr uint32

	btb       []int32 // predicted target per entry, -1 = empty
	btbTagged []int32 // pc tag per entry

	ras    []int32
	rasTop int // number of live entries

	// Lookups and Mispredicts count conditional-direction work, for
	// reports.
	Lookups     int64
	Mispredicts int64
}

// New builds a predictor; panics on non-power-of-two table sizes.
func New(cfg Config) *Predictor {
	if cfg.PHTEntries <= 0 || cfg.PHTEntries&(cfg.PHTEntries-1) != 0 {
		panic("bpred: PHTEntries must be a positive power of two")
	}
	if cfg.BTBEntries <= 0 || cfg.BTBEntries&(cfg.BTBEntries-1) != 0 {
		panic("bpred: BTBEntries must be a positive power of two")
	}
	p := &Predictor{
		cfg:       cfg,
		pht:       make([]uint8, cfg.PHTEntries),
		btb:       make([]int32, cfg.BTBEntries),
		btbTagged: make([]int32, cfg.BTBEntries),
		ras:       make([]int32, cfg.RASEntries),
	}
	for i := range p.pht {
		p.pht[i] = 2 // weakly taken
	}
	for i := range p.btbTagged {
		p.btbTagged[i] = -1
	}
	return p
}

func (p *Predictor) phtIndex(pc int32) uint32 {
	return (uint32(pc) ^ p.ghr) & uint32(p.cfg.PHTEntries-1)
}

// PredictCond predicts the direction of the conditional branch at pc and
// speculatively shifts the prediction into the global history. The returned
// checkpoint restores the history if the branch mispredicts.
func (p *Predictor) PredictCond(pc int32) (taken bool, cp Checkpoint) {
	p.Lookups++
	cp = Checkpoint{GHR: p.ghr}
	taken = p.pht[p.phtIndex(pc)] >= 2
	p.shiftGHR(taken)
	return taken, cp
}

func (p *Predictor) shiftGHR(taken bool) {
	p.ghr = (p.ghr << 1) & (1<<p.cfg.HistBits - 1)
	if taken {
		p.ghr |= 1
	}
}

// Resolve trains the predictor with the actual outcome of the conditional
// branch at pc predicted under cp, repairing the speculative history if the
// prediction was wrong. It reports whether the direction was mispredicted.
func (p *Predictor) Resolve(pc int32, cp Checkpoint, predicted, actual bool) (mispredicted bool) {
	// Train the counter under the history the prediction used.
	idx := (uint32(pc) ^ cp.GHR) & uint32(p.cfg.PHTEntries-1)
	if actual {
		if p.pht[idx] < 3 {
			p.pht[idx]++
		}
	} else if p.pht[idx] > 0 {
		p.pht[idx]--
	}
	if predicted == actual {
		return false
	}
	p.Mispredicts++
	p.ghr = cp.GHR
	p.shiftGHR(actual)
	return true
}

// PredictIndirect returns the BTB's target for the indirect branch at pc.
// ok is false on a BTB miss (the front end then stalls until resolution, a
// guaranteed redirect).
func (p *Predictor) PredictIndirect(pc int32) (target int32, ok bool) {
	i := uint32(pc) & uint32(p.cfg.BTBEntries-1)
	if p.btbTagged[i] != pc {
		return 0, false
	}
	return p.btb[i], true
}

// UpdateIndirect records the resolved target of the indirect branch at pc.
func (p *Predictor) UpdateIndirect(pc, target int32) {
	i := uint32(pc) & uint32(p.cfg.BTBEntries-1)
	p.btbTagged[i] = pc
	p.btb[i] = target
}

// State is the full serializable predictor state, for machine checkpoints.
// Every table is slice-backed, so capture and restore are deterministic.
type State struct {
	PHT         []uint8
	GHR         uint32
	BTB         []int32
	BTBTagged   []int32
	RAS         []int32
	RASTop      int
	Lookups     int64
	Mispredicts int64
}

// CaptureState snapshots the predictor. The result is independent of the
// predictor (safe to retain across further simulation).
func (p *Predictor) CaptureState() *State {
	return &State{
		PHT:         append([]uint8(nil), p.pht...),
		GHR:         p.ghr,
		BTB:         append([]int32(nil), p.btb...),
		BTBTagged:   append([]int32(nil), p.btbTagged...),
		RAS:         append([]int32(nil), p.ras...),
		RASTop:      p.rasTop,
		Lookups:     p.Lookups,
		Mispredicts: p.Mispredicts,
	}
}

// RestoreState reinstates a captured predictor state. The predictor must have
// the same configuration the state was captured under.
func (p *Predictor) RestoreState(s *State) error {
	if len(s.PHT) != len(p.pht) || len(s.BTB) != len(p.btb) ||
		len(s.BTBTagged) != len(p.btbTagged) || len(s.RAS) != len(p.ras) {
		return fmt.Errorf("bpred: snapshot tables (pht %d, btb %d/%d, ras %d) do not match configuration (pht %d, btb %d/%d, ras %d)",
			len(s.PHT), len(s.BTB), len(s.BTBTagged), len(s.RAS),
			len(p.pht), len(p.btb), len(p.btbTagged), len(p.ras))
	}
	if s.RASTop < 0 || s.RASTop > len(p.ras) {
		return fmt.Errorf("bpred: snapshot RAS depth %d out of range [0,%d]", s.RASTop, len(p.ras))
	}
	copy(p.pht, s.PHT)
	p.ghr = s.GHR
	copy(p.btb, s.BTB)
	copy(p.btbTagged, s.BTBTagged)
	copy(p.ras, s.RAS)
	p.rasTop = s.RASTop
	p.Lookups = s.Lookups
	p.Mispredicts = s.Mispredicts
	return nil
}

// PushRAS records a call's return address at fetch time.
func (p *Predictor) PushRAS(retPC int32) {
	if len(p.ras) == 0 {
		return
	}
	if p.rasTop == len(p.ras) {
		copy(p.ras, p.ras[1:])
		p.rasTop--
	}
	p.ras[p.rasTop] = retPC
	p.rasTop++
}

// PopRAS predicts a return's target. ok is false when the stack is empty.
// The stack is speculative and is not repaired on mispredictions; corruption
// self-heals as new calls push fresh entries.
func (p *Predictor) PopRAS() (target int32, ok bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop], true
}
