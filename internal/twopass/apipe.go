package twopass

import (
	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/pipeline"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
)

// stepA advances the advance pipeline by one cycle: at most one issue group
// is dispatched. The A-pipe never stalls on unready operands — unready
// instructions are deferred into the coupling queue — but it does stop for
// structural reasons: a full coupling queue, the optional deferral throttle,
// or the optional anticipable-latency stall.
//
//flea:hotpath
func (m *Machine) stepA() {
	if m.aHalted {
		return
	}
	g := m.fe.Head(m.now)
	if g == nil {
		return
	}
	if m.cqCount+len(g.Insts) > m.cfg.CQSize {
		return // coupling-queue backpressure
	}
	if m.cfg.DeferThrottle > 0 && m.deferred > m.cfg.DeferThrottle {
		return // §3.5 moderation: let the B-pipe clear the backlog
	}
	if m.cfg.StallOnAnticipable && m.blockedOnAnticipable(g) {
		m.aBlockedAnticipable = true
		return
	}
	m.aBlockedAnticipable = false
	m.fe.Pop()

	grp := m.cq.pushTail()
	grp.enq = m.now
	for i := 0; i < len(g.Insts); i++ {
		d := g.Insts[i]
		squash := m.processA(d)
		if m.tr.Enabled() {
			m.emitA(d)
		}
		grp.insts = append(grp.insts, d)
		m.cqCount++
		if d.Deferred {
			m.deferred++
			if d.In.Op.IsStore() {
				m.deferredStores++
			}
		}
		if squash {
			// Younger same-group instructions are wrong-path and never
			// enqueued; recycle their records.
			m.arena.PutAll(g.Insts[i+1:])
			break
		}
	}
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvCQEnqueue, Pipe: trace.PipeA,
			ID: grp.insts[0].ID, PC: grp.insts[0].PC, Arg: int64(len(grp.insts))})
	}
}

// emitA reports one A-pipe dispatch outcome to the trace sink: a deferral
// or a pre-execution (annotated with the serving cache level for loads).
//
//flea:traceonly callers must hold an Enabled() guard; the helper emits unconditionally
func (m *Machine) emitA(d *pipeline.DynInst) {
	e := trace.Event{Cycle: m.now, Type: trace.EvPreExec, Pipe: trace.PipeA,
		ID: d.ID, PC: d.PC, Note: d.In.String()}
	if d.Deferred {
		e.Type = trace.EvDefer
	} else if d.In.Op.IsLoad() && d.Done {
		e.Arg = int64(d.Level)
		e.Note = e.Note + " @" + d.Level.String()
	}
	m.tr.Emit(e)
}

// blockedOnAnticipable reports whether the group's only unready operands are
// valid, in-flight results of fixed-latency non-load producers. With
// StallOnAnticipable the A-pipe waits these out (the compiler has already
// modelled them) instead of deferring the chain to the B-pipe.
//
//flea:hotpath
func (m *Machine) blockedOnAnticipable(g *pipeline.Group) bool {
	anticipable := false
	var srcs []isa.Reg
	for _, d := range g.Insts {
		srcs = d.In.Sources(srcs[:0])
		for _, s := range srcs {
			e := &m.afile[s]
			if !e.valid {
				return false // a deferred producer: defer, don't stall
			}
			if e.readyAt > m.now {
				if e.fromLoad {
					return false // unanticipated latency: defer
				}
				anticipable = true
			}
		}
	}
	return anticipable
}

// processA dispatches one instruction in the A-pipe: execute it if all its
// operands are valid and ready, otherwise defer it to the B-pipe. It reports
// whether younger instructions in the same group must be squashed (an A-DET
// misprediction or a halt).
//
//flea:hotpath
func (m *Machine) processA(d *pipeline.DynInst) (squash bool) {
	in := d.In
	pv, pok := m.readA(in.Pred)
	if !pok {
		m.deferA(d)
		if in.Op.IsBranch() {
			m.snapshotAFile(d.ID)
		}
		return false
	}
	if pv == 0 {
		// Predicated off: completes in the A-pipe as a no-op. A branch
		// whose predicate is false falls through, which may itself be a
		// misprediction.
		d.Done = true
		d.PredOn = false
		d.ReadyAt = m.now
		if in.Op.IsBranch() {
			return m.resolveBranchA(d, false)
		}
		return false
	}
	d.PredOn = true

	switch {
	case in.Op == isa.OpNop:
		d.Done = true
		d.ReadyAt = m.now
	case in.Op == isa.OpHalt:
		d.Done = true
		d.ReadyAt = m.now
		m.aHalted = true
		return true
	case in.Op.IsLoad():
		m.loadA(d)
	case in.Op.IsStore():
		m.storeA(d)
	case in.Op.IsBranch():
		if in.Op == isa.OpBrRet || in.Op == isa.OpBrInd {
			if _, ok := m.readA(in.Src1); !ok {
				// Misprediction detection deferred to B-DET (§3.6).
				m.deferA(d)
				m.snapshotAFile(d.ID)
				return false
			}
		}
		return m.resolveBranchA(d, true)
	default:
		v1, ok1 := m.readA(in.Src1)
		v2, ok2 := m.readA(in.Src2)
		if !ok1 || !ok2 {
			m.deferA(d)
			return false
		}
		val := isa.Eval(in.Op, v1, v2, in.Imm)
		d.Done = true
		d.Val = val
		d.ReadyAt = m.now + int64(in.Op.Latency())
		m.writeA(in.Dst, d.ID, val, d.ReadyAt, false)
	}
	return false
}

// deferA suppresses an instruction, invalidating its destination so that
// consumers are deferred transitively.
//
//flea:hotpath
func (m *Machine) deferA(d *pipeline.DynInst) {
	d.Deferred = true
	m.col.Defer()
	if d.In.HasDest() {
		m.invalidateA(d.In.Dst, d.ID)
	}
}

// loadA executes a load in the A-pipe: forward from the speculative store
// buffer where possible, otherwise read (speculatively) from architectural
// memory, initiating the cache access for timing. Loads are deferred when
// their address is unknown, when an older buffered store has unknown data
// (§3.4), or when no outstanding-load slot is free.
//
//flea:hotpath
func (m *Machine) loadA(d *pipeline.DynInst) {
	in := d.In
	base, ok := m.readA(in.Src1)
	if !ok {
		m.deferA(d)
		return
	}
	addr := isa.EffectiveAddress(base, in.Imm)
	size := in.Op.MemSize()
	d.Addr, d.AddrKnown, d.Size = addr, true, size

	val, fres := m.sbuf.Forward(d.ID, addr, size, m.bst.Mem)
	if fres == mem.ForwardUnknown {
		m.deferA(d) // known conflict with a store whose data is unknown
		return
	}
	if m.conflictPC != nil && m.deferredStores > 0 && m.conflictPC[d.PC] {
		m.deferA(d) // store-wait prediction: this load has conflicted before
		return
	}
	if !m.hier.CanAcceptLoad(addr, m.now) {
		m.deferA(d) // no miss slot: start it in the B-pipe instead
		return
	}
	if m.deferredStores > 0 {
		m.col.LoadPastDeferredStore()
	}
	lat, lvl := m.hier.Load(addr, m.now)
	m.col.Access(lvl, stats.PipeA, m.hier.Levels())
	m.alat.Insert(d.ID, addr, size)
	m.col.PreExecute()
	d.Done = true
	d.Val = val
	d.ReadyAt = m.now + int64(lat)
	d.Level = lvl
	m.writeA(in.Dst, d.ID, val, d.ReadyAt, true)
}

// storeA executes a store in the A-pipe: the value goes to the speculative
// store buffer only; architectural memory is written when the store reaches
// the B-pipe. A store with a known address but unknown data leaves an
// address-only buffer entry that defers overlapping younger loads.
//
//flea:hotpath
func (m *Machine) storeA(d *pipeline.DynInst) {
	in := d.In
	base, okA := m.readA(in.Src1)
	if !okA {
		m.deferA(d) // address unknown: younger loads rely on the ALAT
		return
	}
	addr := isa.EffectiveAddress(base, in.Imm)
	size := in.Op.MemSize()
	d.Addr, d.AddrKnown, d.Size = addr, true, size

	data, okD := m.readA(in.Src2)
	if !okD {
		m.deferA(d)
		m.sbuf.Insert(mem.StoreEntry{ID: d.ID, Addr: addr, Size: size, DataKnown: false})
		return
	}
	if m.cfg.SBSize > 0 && m.sbuf.Len() >= m.cfg.SBSize {
		// Structural: no buffer entry free; execute the store in the
		// B-pipe instead (its committed write needs no buffering).
		d.AddrKnown = false
		m.deferA(d)
		return
	}
	m.sbuf.Insert(mem.StoreEntry{ID: d.ID, Addr: addr, Size: size, Data: data, DataKnown: true})
	m.col.PreExecute()
	d.Done = true
	d.Val = data
	d.ReadyAt = m.now
}

// resolveBranchA resolves a branch at A-DET. On a misprediction only the
// front end and younger same-group instructions are squashed; the coupling
// queue holds nothing younger, so the B-pipe keeps draining (§3.6's "early"
// repair).
//
//flea:hotpath
func (m *Machine) resolveBranchA(d *pipeline.DynInst, predOn bool) (squash bool) {
	in := d.In
	taken := false
	target := d.PC + 1
	if predOn {
		switch in.Op {
		case isa.OpBr, isa.OpBrCall:
			taken, target = true, in.Target
			if in.Op == isa.OpBrCall {
				link := isa.Value(uint32(d.PC + 1))
				d.Val = link
				m.writeA(in.Dst, d.ID, link, m.now+1, false)
			}
		case isa.OpBrRet, isa.OpBrInd:
			v, _ := m.readA(in.Src1) // caller ensured readability
			taken = true
			target = int32(uint32(v))
		}
	}
	d.Done = true
	d.PredOn = predOn
	d.BrResolved, d.BrTaken, d.BrTarget = true, taken, target
	d.ReadyAt = m.now

	actualNext := d.PC + 1
	if taken {
		actualNext = target
	}
	pred := m.fe.Predictor()
	if d.HasCP {
		pred.Resolve(d.PC, d.CP, d.PredTaken, taken)
	}
	if taken && (in.Op == isa.OpBrRet || in.Op == isa.OpBrInd) {
		pred.UpdateIndirect(d.PC, target)
	}
	mispredicted := actualNext != d.NextPC || d.NoPrediction
	if m.tr.Enabled() {
		var arg int64
		if mispredicted {
			arg = 1
		}
		m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvBranchResolve, Pipe: trace.PipeA,
			ID: d.ID, PC: d.PC, Arg: arg, Note: in.String()})
	}
	if !mispredicted {
		return false
	}
	m.col.MispredictA()
	m.fe.Redirect(actualNext, m.now+pipeline.DETOffset)
	return true
}
