package twopass

import (
	"fmt"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/pipeline"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
)

// bStatus is the outcome of retiring one instruction in the B-pipe.
type bStatus struct {
	// flushFrom, when nonzero, squashes every instruction with ID ≥
	// flushFrom (B-DET misprediction or store-conflict recovery).
	flushFrom uint64
	// retired is false only for a store-conflict load, which must
	// re-execute from fetch.
	retired bool
	// redirect is the PC fetch restarts at when flushFrom is set.
	redirect int32
}

// stepB advances the backup (architectural) pipeline by one cycle and
// classifies the cycle into one of the six Figure 6 classes.
//
//flea:hotpath
func (m *Machine) stepB() {
	if m.cq.len() == 0 {
		cls := stats.FrontEndStall
		if m.aBlockedAnticipable {
			cls = stats.NonLoadDepStall
		}
		m.col.Cycle(cls)
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvStall, Pipe: trace.PipeB,
				PC: -1, Arg: int64(cls), Note: cls.String()})
		}
		return
	}
	if m.cq.at(0).enq >= m.now {
		// The A-pipe must stay at least one cycle ahead.
		m.col.Cycle(stats.APipeStall)
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvStall, Pipe: trace.PipeB,
				PC: -1, Arg: int64(stats.APipeStall), Note: stats.APipeStall.String()})
		}
		return
	}
	set, ngroups := m.buildDispatchSet()
	if cls, blocked := m.bBlocked(set); blocked {
		m.col.Cycle(cls)
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvStall, Pipe: trace.PipeB,
				ID: set[0].ID, PC: set[0].PC, Arg: int64(cls), Note: cls.String()})
		}
		return
	}
	m.col.Regroup(ngroups - 1)
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvCQDequeue, Pipe: trace.PipeB,
			ID: set[0].ID, PC: set[0].PC, Arg: int64(len(set))})
	}
	retired := 0
	var flush bStatus
	for _, d := range set {
		st := m.processB(d)
		if st.retired {
			retired++
			if m.tr.Enabled() {
				ty := trace.EvMerge
				if d.Deferred {
					ty = trace.EvReplay
				}
				m.tr.Emit(trace.Event{Cycle: m.now, Type: ty, Pipe: trace.PipeB,
					ID: d.ID, PC: d.PC, Note: d.In.String()})
			}
		}
		if st.flushFrom != 0 {
			flush = st
			break
		}
		if m.halted {
			break
		}
	}
	m.popHead(retired)
	if flush.flushFrom != 0 {
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvFlush, Pipe: trace.PipeB,
				ID: flush.flushFrom, PC: flush.redirect, Arg: int64(flush.redirect)})
		}
		m.squashCQFrom(flush.flushFrom)
		// Recovery latency: a checkpoint restores the A-file in one
		// cycle; otherwise speculative entries are copied back from the
		// B-file at RepairBandwidth registers per cycle (§3.6).
		var repairCycles int64
		if flush.retired && m.restoreCheckpoint(flush.flushFrom-1) {
			repairCycles = 1
			m.dropCheckpoint(flush.flushFrom - 1)
		} else {
			repaired := m.repairAFile(flush.flushFrom)
			repairCycles = int64((repaired + RepairBandwidth - 1) / RepairBandwidth)
		}
		m.aHalted = false
		m.fe.Redirect(flush.redirect, m.now+pipeline.DETOffset+repairCycles)
	}
	if retired > 0 {
		m.col.Cycle(stats.Unstalled)
	} else {
		// A flush before anything retired: a recovery cycle.
		m.col.Cycle(stats.FrontEndStall)
	}
}

// popHead removes the first n instructions from the coupling queue,
// returning their records to the arena.
//
//flea:hotpath
func (m *Machine) popHead(n int) {
	m.cqCount -= n
	for n > 0 && m.cq.len() > 0 {
		g := m.cq.at(0)
		if n >= len(g.insts) {
			n -= len(g.insts)
			m.arena.PutAll(g.insts)
			g.insts = g.insts[:0]
			m.cq.popHead()
			continue
		}
		m.arena.PutAll(g.insts[:n])
		rest := copy(g.insts, g.insts[n:])
		g.insts = g.insts[:rest]
		n = 0
	}
}

// buildDispatchSet returns the instructions dispatching this cycle: the head
// group, plus — with regrouping enabled (2Pre) — any following groups whose
// cross dependences were all satisfied by pre-execution and whose addition
// fits the machine's issue resources. Each merged boundary is a stop bit the
// regrouper removed.
//
//flea:hotpath
func (m *Machine) buildDispatchSet() (set []*pipeline.DynInst, ngroups int) {
	m.dispatchSet = append(m.dispatchSet[:0], m.cq.at(0).insts...)
	ngroups = 1
	if !m.cfg.Regroup {
		return m.dispatchSet, ngroups
	}
	for ngroups < m.cq.len() && m.cq.at(ngroups).enq < m.now {
		next := m.cq.at(ngroups).insts
		if !m.canMerge(m.dispatchSet, next) {
			break
		}
		m.dispatchSet = append(m.dispatchSet, next...)
		ngroups++
	}
	return m.dispatchSet, ngroups
}

// canMerge reports whether the next queue group may issue together with the
// current dispatch set: combined width and functional-unit usage must fit,
// and no instruction in next may depend on a result the set has not already
// finished pre-executing.
//
//flea:hotpath
func (m *Machine) canMerge(set, next []*pipeline.DynInst) bool {
	if len(set)+len(next) > m.cfg.IssueWidth {
		return false
	}
	var classCount [isa.NumFUClasses]int
	for _, d := range set {
		classCount[d.In.Op.Class()]++
	}
	for _, d := range next {
		classCount[d.In.Op.Class()]++
	}
	for c := isa.FUClass(0); c < isa.NumFUClasses; c++ {
		if m.cfg.FUs[c] > 0 && classCount[c] > m.cfg.FUs[c] {
			return false
		}
	}
	srcs := m.srcScratch
	for _, j := range next {
		srcs = j.In.Sources(srcs[:0])
		m.srcScratch = srcs
		for _, s := range srcs {
			// Find the youngest writer of s in the set, if any.
			for k := len(set) - 1; k >= 0; k-- {
				i := set[k]
				if !i.In.HasDest() || i.In.Dst != s {
					continue
				}
				if i.Done && !i.PredOn {
					continue // predicated off: not a writer; keep looking
				}
				if !i.Done || i.ReadyAt > m.now {
					return false // latency-bearing dependence survives
				}
				break
			}
		}
	}
	return true
}

// bBlocked applies the B-pipe REG-stage interlocks to the dispatch set.
// Pre-executed instructions never block dispatch (dangling results dispatch
// with scoreboarded destinations); deferred instructions need ready sources,
// a WAW-free destination, and — for loads — an outstanding-load slot.
//
//flea:hotpath
func (m *Machine) bBlocked(set []*pipeline.DynInst) (stats.CycleClass, bool) {
	blockedUntil := int64(-1)
	blockedByLoad := false
	consider := func(r isa.Reg) {
		if r == isa.RegNone || r.Hardwired() {
			return
		}
		if t := m.bready[r]; t > m.now && t > blockedUntil {
			blockedUntil = t
			blockedByLoad = m.bIsLoad[r]
		}
	}
	srcs := m.srcScratch
	for _, d := range set {
		if d.Done {
			continue
		}
		srcs = d.In.Sources(srcs[:0])
		for _, s := range srcs {
			consider(s)
		}
		if d.In.HasDest() {
			consider(d.In.Dst)
		}
	}
	m.srcScratch = srcs
	if blockedUntil > m.now {
		if blockedByLoad {
			return stats.LoadStall, true
		}
		return stats.NonLoadDepStall, true
	}
	addrs := m.addrScratch[:0]
	for _, d := range set {
		if d.Done || !d.In.Op.IsLoad() {
			continue
		}
		if m.bst.Read(d.In.Pred) == 0 {
			continue
		}
		addrs = append(addrs, isa.EffectiveAddress(m.bst.Read(d.In.Src1), d.In.Imm))
	}
	m.addrScratch = addrs
	if len(addrs) > 0 && !m.hier.CanAcceptLoads(addrs, m.now) {
		return stats.ResourceStall, true
	}
	return 0, false
}

// processB retires one instruction: merging an A-pipe result, or executing a
// deferred instruction against architectural state.
//
//flea:hotpath
func (m *Machine) processB(d *pipeline.DynInst) bStatus {
	if d.Done {
		return m.mergeB(d)
	}
	return m.executeDeferredB(d)
}

// mergeB incorporates a pre-executed instruction's results (the MRG stage).
// The B-pipe trusts the A-pipe: nothing is recomputed, but pre-executed
// loads must pass their ALAT check (§3.4).
//
//flea:hotpath
func (m *Machine) mergeB(d *pipeline.DynInst) bStatus {
	in := d.In
	if d.PredOn && in.Op.IsLoad() {
		if !m.alat.CheckAndRemove(d.ID) {
			// A conflicting store intervened between this load's A-pipe
			// execution and now: flush speculative state and resume
			// fetch at the load itself.
			m.col.ConflictFlush()
			if m.tr.Enabled() {
				m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvALATConflict, Pipe: trace.PipeB,
					ID: d.ID, PC: d.PC, Arg: int64(d.Addr), Note: in.String()})
			}
			if m.conflictPC != nil {
				m.conflictPC[d.PC] = true
			}
			// The load re-executes from fetch: it is the next instruction
			// to retire architecturally.
			m.archPC = d.PC
			return bStatus{flushFrom: d.ID, retired: false, redirect: d.PC}
		}
	}
	m.col.Instruction()
	m.retired++
	if d.BrResolved && d.BrTaken {
		m.archPC = d.BrTarget
	} else {
		m.archPC = d.PC + 1
	}
	if d.PredOn && sanityChecks && m.bst.Read(in.Pred) == 0 {
		panic(fmt.Sprintf("twopass: inst %d (%s) pre-executed with wrong predicate", d.ID, in))
	}
	switch {
	case d.PredOn && in.Op.IsStore():
		m.bst.Mem.Write(d.Addr, d.Size, d.Val)
		m.hier.Store(d.Addr, m.now)
		m.sbuf.Remove(d.ID)
		m.col.StoreCommitted()
	case d.PredOn && in.HasDest():
		m.bst.Write(in.Dst, d.Val)
		at := d.ReadyAt
		if at < m.now {
			at = m.now
		}
		m.bready[in.Dst] = at
		m.bIsLoad[in.Dst] = in.Op.IsLoad()
		// The arriving architectural update clears the A-file S bit if
		// this instruction is still the register's last writer.
		if e := &m.afile[in.Dst]; e.dynID == d.ID && e.valid {
			e.spec = false
		}
	}
	if in.Op == isa.OpHalt && d.PredOn {
		m.halted = true
	}
	return bStatus{retired: true}
}

// executeDeferredB executes an instruction the A-pipe deferred, with normal
// in-order semantics against the B-file and architectural memory.
//
//flea:hotpath
func (m *Machine) executeDeferredB(d *pipeline.DynInst) bStatus {
	in := d.In
	m.col.Instruction()
	m.retired++
	m.archPC = d.PC + 1 // branches override with the resolved target
	m.deferred--
	if in.Op.IsStore() {
		m.deferredStores--
	}
	predOn := m.bst.Read(in.Pred) != 0
	d.PredOn = predOn
	if !predOn {
		if in.Op.IsBranch() {
			return m.resolveBranchB(d, false)
		}
		// A predicated-off deferred instruction writes nothing; feed the
		// (unchanged) architectural value back to revalidate the A-file
		// entry its deferral invalidated.
		if in.HasDest() {
			m.feedback(in.Dst, d.ID, m.bst.Read(in.Dst), m.now+1)
		}
		return bStatus{retired: true}
	}
	switch {
	case in.Op == isa.OpNop:
	case in.Op == isa.OpHalt:
		m.halted = true
	case in.Op.IsLoad():
		addr := isa.EffectiveAddress(m.bst.Read(in.Src1), in.Imm)
		lat, lvl := m.hier.Load(addr, m.now)
		m.col.Access(lvl, stats.PipeB, m.hier.Levels())
		val := m.bst.Mem.Read(addr, in.Op.MemSize())
		m.bst.Write(in.Dst, val)
		m.setBReady(in.Dst, m.now+int64(lat), true)
		m.feedback(in.Dst, d.ID, val, m.now+int64(lat))
	case in.Op.IsStore():
		addr := isa.EffectiveAddress(m.bst.Read(in.Src1), in.Imm)
		data := m.bst.Read(in.Src2)
		m.bst.Mem.Write(addr, in.Op.MemSize(), data)
		m.hier.Store(addr, m.now)
		m.sbuf.Remove(d.ID) // drop any address-only entry
		m.col.StoreCommitted()
		m.col.StoreDeferred()
		// Deleting overlapping younger ALAT entries is what later makes
		// a conflicted pre-executed load fail its check.
		m.alat.StoreInvalidate(d.ID, addr, in.Op.MemSize())
	case in.Op.IsBranch():
		return m.resolveBranchB(d, true)
	default:
		val := isa.Eval(in.Op, m.bst.Read(in.Src1), m.bst.Read(in.Src2), in.Imm)
		m.bst.Write(in.Dst, val)
		lat := int64(in.Op.Latency())
		m.setBReady(in.Dst, m.now+lat, false)
		m.feedback(in.Dst, d.ID, val, m.now+lat)
	}
	return bStatus{retired: true}
}

//flea:hotpath
func (m *Machine) setBReady(r isa.Reg, at int64, fromLoad bool) {
	if r == isa.RegNone || r.Hardwired() {
		return
	}
	m.bready[r] = at
	m.bIsLoad[r] = fromLoad
}

// resolveBranchB resolves a deferred branch at B-DET. A misprediction here
// flushes both pipes, the coupling queue and the front end, and repairs the
// speculative A-file entries from the B-file (§3.6).
//
//flea:hotpath
func (m *Machine) resolveBranchB(d *pipeline.DynInst, predOn bool) bStatus {
	in := d.In
	taken := false
	target := d.PC + 1
	if predOn {
		switch in.Op {
		case isa.OpBr, isa.OpBrCall:
			taken, target = true, in.Target
			if in.Op == isa.OpBrCall {
				link := isa.Value(uint32(d.PC + 1))
				m.bst.Write(in.Dst, link)
				m.setBReady(in.Dst, m.now+1, false)
				m.feedback(in.Dst, d.ID, link, m.now+1)
			}
		case isa.OpBrRet, isa.OpBrInd:
			taken = true
			target = int32(uint32(m.bst.Read(in.Src1)))
		}
	}
	d.BrResolved, d.BrTaken, d.BrTarget = true, taken, target
	actualNext := d.PC + 1
	if taken {
		actualNext = target
	}
	m.archPC = actualNext
	pred := m.fe.Predictor()
	if d.HasCP {
		pred.Resolve(d.PC, d.CP, d.PredTaken, taken)
	}
	if taken && (in.Op == isa.OpBrRet || in.Op == isa.OpBrInd) {
		pred.UpdateIndirect(d.PC, target)
	}
	mispredicted := actualNext != d.NextPC || d.NoPrediction
	if m.tr.Enabled() {
		var arg int64
		if mispredicted {
			arg = 1
		}
		m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvBranchResolve, Pipe: trace.PipeB,
			ID: d.ID, PC: d.PC, Arg: arg, Note: in.String()})
	}
	if !mispredicted {
		m.dropCheckpoint(d.ID) // correctly predicted: snapshot obsolete
		return bStatus{retired: true}
	}
	m.col.MispredictB()
	// The snapshot (if any) is consumed by the flush handler in stepB.
	return bStatus{flushFrom: d.ID + 1, retired: true, redirect: actualNext}
}

// sanityChecks enables internal consistency assertions; they are cheap and
// kept on permanently (a violation indicates a machine-model bug, never a
// program bug).
const sanityChecks = true
