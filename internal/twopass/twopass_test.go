package twopass

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/baseline"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/workload"
)

// runTP simulates src on a two-pass machine with the given config and
// verifies architectural equivalence with the reference executor.
func runTP(t *testing.T, cfg Config, src string) *stats.Run {
	t.Helper()
	p, err := program.Assemble(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	return runProg(t, cfg, p)
}

func runProg(t *testing.T, cfg Config, p *program.Program) *stats.Run {
	t.Helper()
	ref, err := arch.Run(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !m.State().Equal(ref.State) {
		t.Fatalf("two-pass state diverges from reference: %s", m.State().Diff(ref.State))
	}
	if r.Instructions != ref.Instructions {
		t.Fatalf("retired %d instructions, reference retired %d", r.Instructions, ref.Instructions)
	}
	return r
}

const sumLoop = `
        .data 0x10000000
result: .word 0
        .text
        movi r1 = 0
        movi r2 = 1
        movi r3 = 100
        movi r4 = result ;;
loop:   add r1 = r1, r2
        cmp.lt p1 = r2, r3 ;;
        addi r2 = r2, 1
        (p1) br loop ;;
        st4 [r4] = r1 ;;
        halt ;;
`

func TestSumLoopMatchesReference(t *testing.T) {
	r := runTP(t, DefaultConfig(), sumLoop)
	if r.Cycles <= 0 {
		t.Errorf("no cycles recorded")
	}
	var sum int64
	for _, c := range r.ByClass {
		sum += c
	}
	if sum != r.Cycles {
		t.Errorf("cycle classes sum %d != %d", sum, r.Cycles)
	}
}

func TestRegroupMatchesReference(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Regroup = true
	runTP(t, cfg, sumLoop)
}

func TestPredicationAndStores(t *testing.T) {
	runTP(t, DefaultConfig(), `
        movi r1 = 5
        movi r2 = 7
        movi r10 = 0x2000 ;;
        cmp.lt p1 = r1, r2
        cmp.lt p2 = r2, r1 ;;
        (p1) movi r3 = 111
        (p2) movi r4 = 222
        (p1) st4 [r10] = r2
        (p2) st4 [r10, 4] = r2 ;;
        halt ;;
`)
}

func TestDeferralAbsorbsShortMiss(t *testing.T) {
	// The paper's "absorption" benefit: while the B-pipe is stalled on a
	// long miss, the A-pipe pre-executes a later L2-hit load; by the time
	// the B-pipe reaches that load's consumer the (short) L2 latency has
	// passed and no stall is observed. The baseline pays both stalls
	// serially.
	src := `
        movi r1 = 0x40000          // will be made L2-resident
        movi r9 = 200 ;;
warm:   addi r9 = r9, -1 ;;        // warm the I-cache and branch predictor
        cmpi.ne p7 = r9, 0 ;;
        (p7) br warm ;;
        ld4 r2 = [r1] ;;           // cold fill of the target line
        add r3 = r2, r2 ;;         // drain
        movi r4 = 0x41000
        movi r5 = 0x42000
        movi r6 = 0x43000
        movi r7 = 0x44000 ;;
        ld4 r10 = [r4]             // four same-L1-set lines evict the target
        ld4 r11 = [r5]
        ld4 r12 = [r6] ;;
        ld4 r13 = [r7] ;;
        add r14 = r13, r12 ;;      // drain the evicting misses
        add r14 = r14, r10 ;;
        add r15 = r14, r11 ;;
        movi r31 = 0x50000 ;;
        ld4 r16 = [r31] ;;         // long cold miss
        add r17 = r16, r16 ;;      // B-pipe stalls ~145 cycles here
        ld4 r20 = [r1] ;;          // L2 hit: pre-executed by the A-pipe
        add r21 = r20, r20 ;;      // deferred; absorbed behind the long miss
        add r22 = r21, r20 ;;
        st4 [r31, 8] = r22 ;;
        halt ;;
`
	p := program.MustAssemble(t.Name(), src)
	bm, err := baseline.New(baseline.DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	br, err := bm.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := runProg(t, DefaultConfig(), p)
	if tr.Deferred == 0 {
		t.Errorf("nothing was deferred")
	}
	if got := tr.Access[1][stats.PipeA]; got < 1 { // LevelL2 == 1
		t.Errorf("L2 access was not initiated in the A-pipe: %v", tr.Access)
	}
	if tr.Cycles >= br.Cycles {
		t.Errorf("two-pass (%d cycles) not faster than baseline (%d) on an absorbable miss",
			tr.Cycles, br.Cycles)
	}
}

func TestMissOverlapAcrossDeferral(t *testing.T) {
	// The Figure 1/4 pattern: a missing load's consumer blocks the
	// baseline so a second missing load cannot start; the A-pipe starts
	// it during the first miss.
	src := `
        movi r1 = 0x40000
        movi r2 = 0x80000
        movi r9 = 200 ;;
warm:   addi r9 = r9, -1 ;;
        cmpi.ne p7 = r9, 0 ;;
        (p7) br warm ;;
        ld4 r3 = [r1] ;;
        add r4 = r3, r3 ;;       // consumer of miss 1 (deferred)
        ld4 r5 = [r2] ;;         // independent miss 2: starts in the A-pipe
        add r6 = r5, r5 ;;
        halt ;;
`
	p := program.MustAssemble(t.Name(), src)
	bm, _ := baseline.New(baseline.DefaultConfig(), p)
	br, err := bm.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := runProg(t, DefaultConfig(), p)
	// Baseline serializes the two ~145-cycle misses; two-pass overlaps.
	if br.Cycles-tr.Cycles < 100 {
		t.Errorf("misses did not overlap: baseline %d, two-pass %d", br.Cycles, tr.Cycles)
	}
	if tr.Access[3][stats.PipeA] < 2 { // both memory accesses initiated in A
		t.Errorf("memory accesses initiated in A = %d, want 2", tr.Access[3][stats.PipeA])
	}
}

func TestStoreConflictFlushRecovers(t *testing.T) {
	// A store whose address depends on a missing load is deferred with an
	// unknown address; a younger load to the same location pre-executes
	// with the stale value, and the ALAT forces a flush. Architectural
	// state must still be exact.
	r := runTP(t, DefaultConfig(), `
        .data 0x10000000
slot:   .word 1111
ptr:    .word 0x10000000
        .text
        movi r1 = ptr
        movi r2 = 2222 ;;
        ld4 r3 = [r1] ;;         // cold miss: the store address
        st4 [r3] = r2 ;;         // address unknown in A -> deferred
        movi r4 = 0x10000000 ;;
        ld4 r5 = [r4] ;;         // younger load, same location: conflicts
        add r6 = r5, r5 ;;
        halt ;;
`)
	if r.ConflictFlushes == 0 {
		t.Errorf("expected at least one store-conflict flush")
	}
	// r5 must be 2222 (the stored value), so r6 = 4444 — verified by the
	// architectural comparison in runTP.
}

func TestKnownAddressUnknownDataDefersLoad(t *testing.T) {
	// A store with a known address but deferred data defers an
	// overlapping younger load rather than conflicting (§3.4).
	r := runTP(t, DefaultConfig(), `
        movi r1 = 0x3000
        movi r2 = 0x40000 ;;
        ld4 r3 = [r2] ;;         // cold miss: the store DATA
        st4 [r1] = r3 ;;         // address known, data unknown
        ld4 r5 = [r1] ;;         // overlapping load: must defer, not conflict
        add r6 = r5, r5 ;;
        halt ;;
`)
	if r.ConflictFlushes != 0 {
		t.Errorf("known-address store should not cause conflict flushes, got %d", r.ConflictFlushes)
	}
	if r.Deferred == 0 {
		t.Errorf("the overlapping load should have been deferred")
	}
}

func TestStoreForwardingInA(t *testing.T) {
	// An A-pipe load after an A-pipe store to the same address forwards
	// from the store buffer (no flush, correct value).
	r := runTP(t, DefaultConfig(), `
        movi r1 = 0x3000
        movi r2 = 77 ;;
        st4 [r1] = r2 ;;
        ld4 r3 = [r1] ;;
        add r4 = r3, r3 ;;
        st4 [r1, 4] = r4 ;;
        halt ;;
`)
	if r.ConflictFlushes != 0 {
		t.Errorf("store forwarding should not conflict")
	}
}

func TestBDetMispredictFlush(t *testing.T) {
	// A branch whose predicate depends on a missing load defers its
	// misprediction detection to B-DET; wrong-path A-pipe results must be
	// rolled back.
	r := runTP(t, DefaultConfig(), `
        .data 0x10000000
flag:   .word 1
        .text
        movi r1 = flag
        movi r2 = 0 ;;
        ld4 r3 = [r1] ;;          // cold miss
        cmpi.eq p1 = r3, 0 ;;     // deferred
        (p1) br skip ;;           // deferred branch: resolves in B
        addi r2 = r2, 100 ;;      // executed speculatively in A
skip:   addi r2 = r2, 1 ;;
        st4 [r1, 4] = r2 ;;
        halt ;;
`)
	// flag=1, p1 false, fall-through; gshare may or may not mispredict,
	// but the architectural result (r2 = 101) is enforced by runTP.
	_ = r
}

func TestBDetMispredictRollsBackAFile(t *testing.T) {
	// Force a B-resolved misprediction: the loop-back branch depends on a
	// load from memory. After warmup the predictor predicts taken; on the
	// final iteration it mispredicts, and wrong-path A-pipe writes to r7
	// must be repaired from the B-file.
	runTP(t, DefaultConfig(), `
        .data 0x10000000
count:  .word 30
        .text
        movi r1 = count
        movi r2 = 0
        movi r7 = 0 ;;
loop:   ld4 r3 = [r1] ;;
        addi r3 = r3, -1 ;;
        st4 [r1] = r3
        addi r2 = r2, 1 ;;
        cmpi.ne p1 = r3, 0 ;;
        (p1) br loop ;;
        addi r7 = r7, 5 ;;        // wrong-path-executed on the last iteration
        st4 [r1, 8] = r7 ;;
        halt ;;
`)
}

func TestAPipeStallClassAppears(t *testing.T) {
	// Back-to-back dependent single-instruction groups keep the queue at
	// one group: the B-pipe repeatedly waits on the one-cycle-ahead rule.
	r := runTP(t, DefaultConfig(), `
        movi r1 = 1 ;;
        add r2 = r1, r1 ;;
        add r3 = r2, r2 ;;
        add r4 = r3, r3 ;;
        add r5 = r4, r4 ;;
        halt ;;
`)
	if r.ByClass[stats.APipeStall] == 0 {
		t.Errorf("expected A-pipe stall cycles, got %+v", r.ByClass)
	}
}

func TestFeedbackDisabledIncreasesDeferrals(t *testing.T) {
	// Figure 8: without B→A feedback, every consumer of a deferred chain
	// keeps deferring until a fresh A-pipe write to the register.
	// The consumer of the previous iteration's deferred chain (r5) can
	// execute in the A-pipe only if the B-pipe's resolution of that chain
	// was fed back to the A-file (§3.5).
	src := `
        .data 0x10000000
v:      .word 7
        .text
        movi r1 = v
        movi r5 = 0
        movi r9 = 40 ;;
        ld4 r2 = [r1] ;;          // warm the data line (cold miss)...
        movi r8 = 250 ;;
warm:   addi r8 = r8, -1 ;;       // ...while a warm loop hides its latency,
        cmpi.ne p7 = r8, 0 ;;     // so the B-pipe never falls behind and the
        (p7) br warm ;;           // coupling queue stays short
        add r3 = r2, r2 ;;
loop:   add r6 = r5, r9 ;;        // reads last iteration's r5
        ld4 r2 = [r1] ;;
        add r3 = r2, r2 ;;        // deferred: r2 arrives one cycle late
        add r5 = r3, r3 ;;        // deferred chain; feedback revalidates r5
        movi r10 = 1 ;;
        movi r11 = 2 ;;
        movi r12 = 3 ;;
        addi r9 = r9, -1 ;;
        cmpi.ne p1 = r9, 0 ;;
        (p1) br loop ;;
        st4 [r1, 4] = r6 ;;
        halt ;;
`
	p := program.MustAssemble(t.Name(), src)
	with := DefaultConfig()
	without := DefaultConfig()
	without.FeedbackLatency = -1
	rWith := runProg(t, with, p)
	rWithout := runProg(t, without, p)
	if rWithout.Deferred <= rWith.Deferred {
		t.Errorf("deferred with feedback %d, without %d — feedback should reduce deferrals",
			rWith.Deferred, rWithout.Deferred)
	}
}

func TestFeedbackLatencyMonotonic(t *testing.T) {
	p := workload.Random(7, workload.DefaultRandomConfig())
	var deferred []int64
	for _, lat := range []int{0, 4, 16} {
		cfg := DefaultConfig()
		cfg.FeedbackLatency = lat
		r := runProg(t, cfg, p)
		deferred = append(deferred, r.Deferred)
	}
	if !(deferred[0] <= deferred[1] && deferred[1] <= deferred[2]) {
		t.Errorf("deferrals should not decrease with feedback latency: %v", deferred)
	}
}

func TestCouplingQueueBoundRespected(t *testing.T) {
	// With a tiny queue the machine still runs correctly.
	cfg := DefaultConfig()
	cfg.CQSize = 8
	runTP(t, cfg, sumLoop)
}

func TestDeferThrottle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeferThrottle = 4
	runTP(t, cfg, sumLoop)
}

func TestStallOnAnticipable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StallOnAnticipable = true
	r := runTP(t, cfg, `
        movi r1 = 3 ;;
        i2f f2 = r1 ;;
        fmul f3 = f2, f2 ;;      // FP chain: A-pipe stalls instead of deferring
        fmul f4 = f3, f3 ;;
        fmul f5 = f4, f4 ;;
        f2i r2 = f5 ;;
        halt ;;
`)
	if r.Deferred != 0 {
		t.Errorf("anticipable FP chain was deferred (%d) despite StallOnAnticipable", r.Deferred)
	}
}

func TestFiniteALATFalsePositivesStillCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ALATCapacity = 2 // absurdly small: many false conflicts
	p := workload.Random(3, workload.DefaultRandomConfig())
	r := runProg(t, cfg, p)
	_ = r
}

func TestRegroupingSpeedsUpPreexecutedCode(t *testing.T) {
	// Regrouping pays off while the B-pipe drains a backlog: during a
	// long B-pipe stall the A-pipe fills the queue with pre-executed
	// single-instruction groups whose stop bits 2Pre then removes. The
	// first pass (load predicated off) only warms the I-cache so the
	// whole tail is fetchable within the stall window.
	src := `
        movi r1 = 0x40000
        movi r50 = 0 ;;
outer:  cmpi.ne p2 = r50, 0 ;;
        (p2) ld4 r2 = [r1] ;;      // cold miss on the real pass
        (p2) add r3 = r2, r2 ;;    // deferred: B-pipe stalls ~145 cycles
        movi r10 = 1 ;;
        movi r11 = 2 ;;
        movi r12 = 3 ;;
        movi r13 = 4 ;;
        movi r14 = 5 ;;
        movi r15 = 6 ;;
        movi r16 = 7 ;;
        movi r17 = 8 ;;
        movi r18 = 9 ;;
        movi r19 = 10 ;;
        movi r20 = 11 ;;
        movi r21 = 12 ;;
        movi r22 = 13 ;;
        movi r23 = 14 ;;
        movi r24 = 15 ;;
        movi r25 = 16 ;;
        movi r26 = 17 ;;
        movi r27 = 18 ;;
        movi r28 = 19 ;;
        movi r29 = 20 ;;
        movi r30 = 21 ;;
        movi r31 = 22 ;;
        movi r32 = 23 ;;
        movi r33 = 24 ;;
        movi r34 = 25 ;;
        movi r35 = 26 ;;
        movi r36 = 27 ;;
        movi r37 = 28 ;;
        movi r38 = 29 ;;
        movi r39 = 30 ;;
        movi r40 = 31 ;;
        movi r41 = 32 ;;
        movi r42 = 33 ;;
        movi r43 = 34 ;;
        movi r44 = 35 ;;
        movi r45 = 36 ;;
        cmpi.eq p3 = r50, 0 ;;
        addi r50 = r50, 1 ;;
        (p3) br outer ;;
        halt ;;
`
	p := program.MustAssemble(t.Name(), src)
	plain := runProg(t, DefaultConfig(), p)
	re := DefaultConfig()
	re.Regroup = true
	regrouped := runProg(t, re, p)
	if regrouped.Regrouped == 0 {
		t.Fatalf("regrouper removed no stop bits")
	}
	if regrouped.Cycles >= plain.Cycles {
		t.Errorf("2Pre (%d cycles) not faster than 2P (%d)", regrouped.Cycles, plain.Cycles)
	}
}

func TestMispredictSplitRecorded(t *testing.T) {
	p := workload.Random(11, workload.DefaultRandomConfig())
	r := runProg(t, DefaultConfig(), p)
	if r.MispredictsA+r.MispredictsB == 0 {
		t.Errorf("random program produced no mispredictions at all")
	}
}

// The central differential test: random programs must produce identical
// architectural state on the reference executor and the two-pass machine
// under many configurations.
func TestRandomProgramEquivalence(t *testing.T) {
	cfgs := map[string]func() Config{
		"2P":       DefaultConfig,
		"2Pre":     func() Config { c := DefaultConfig(); c.Regroup = true; return c },
		"noFB":     func() Config { c := DefaultConfig(); c.FeedbackLatency = -1; return c },
		"fb8":      func() Config { c := DefaultConfig(); c.FeedbackLatency = 8; return c },
		"tinyCQ":   func() Config { c := DefaultConfig(); c.CQSize = 8; return c },
		"tinyALAT": func() Config { c := DefaultConfig(); c.ALATCapacity = 4; return c },
		"throttle": func() Config { c := DefaultConfig(); c.DeferThrottle = 8; return c },
		"antic":    func() Config { c := DefaultConfig(); c.StallOnAnticipable = true; return c },
	}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for name, mk := range cfgs {
		t.Run(name, func(t *testing.T) {
			for _, seed := range seeds {
				p := workload.Random(seed, workload.DefaultRandomConfig())
				r := runProg(t, mk(), p)
				if err := r.CheckInvariants(); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// Random programs with a large footprint (lots of misses) and tiny queues.
func TestRandomProgramEquivalenceStressed(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rcfg := workload.DefaultRandomConfig()
	rcfg.ArrayBytes = 4 << 20 // blow out the L3
	rcfg.Iterations = 20
	for seed := int64(20); seed < 26; seed++ {
		p := workload.Random(seed, rcfg)
		cfg := DefaultConfig()
		cfg.Regroup = seed%2 == 0
		runProg(t, cfg, p)
	}
}

// Differential cycle accounting: every configuration's classes sum to total.
func TestInvariantsAcrossSeeds(t *testing.T) {
	for seed := int64(30); seed < 34; seed++ {
		p := workload.Random(seed, workload.DefaultRandomConfig())
		r := runProg(t, DefaultConfig(), p)
		var sum int64
		for _, c := range r.ByClass {
			sum += c
		}
		if sum != r.Cycles {
			t.Errorf("seed %d: classes sum %d != cycles %d", seed, sum, r.Cycles)
		}
	}
}

func TestTwoPassBeatsBaselineOnMissHeavyCode(t *testing.T) {
	// The headline claim, on a random program with a large footprint.
	rcfg := workload.DefaultRandomConfig()
	rcfg.ArrayBytes = 8 << 20
	rcfg.Iterations = 30
	p := workload.Random(42, rcfg)
	bm, err := baseline.New(baseline.DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	br, err := bm.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := runProg(t, DefaultConfig(), p)
	if tr.Cycles >= br.Cycles {
		t.Errorf("two-pass (%d) not faster than baseline (%d) on miss-heavy code",
			tr.Cycles, br.Cycles)
	}
	t.Logf("baseline %d cycles, two-pass %d cycles (%.2fx)",
		br.Cycles, tr.Cycles, float64(br.Cycles)/float64(tr.Cycles))
}

func TestRejectsBadConfig(t *testing.T) {
	p := program.MustAssemble("ok", "halt ;;")
	cfg := DefaultConfig()
	cfg.CQSize = 2
	if _, err := New(cfg, p); err == nil || !strings.Contains(err.Error(), "coupling queue") {
		t.Errorf("tiny CQ should be rejected: %v", err)
	}
}

func TestScalarStatsPresence(t *testing.T) {
	p := workload.Random(55, workload.DefaultRandomConfig())
	r := runProg(t, DefaultConfig(), p)
	if r.StoresTotal == 0 {
		t.Errorf("no stores recorded")
	}
	if r.PreExecuted == 0 {
		t.Errorf("no pre-executions recorded")
	}
	if r.CQOccupancySum == 0 {
		t.Errorf("queue occupancy never sampled")
	}
	if s := fmt.Sprint(r); s == "" {
		t.Errorf("Run did not print")
	}
}

func TestCheckpointRepairEquivalence(t *testing.T) {
	// §3.6's alternative recovery must be architecturally transparent.
	for seed := int64(60); seed < 66; seed++ {
		p := workload.Random(seed, workload.DefaultRandomConfig())
		cfg := DefaultConfig()
		cfg.CheckpointRepair = true
		runProg(t, cfg, p)
	}
}

func TestCheckpointRepairSpeedsRecovery(t *testing.T) {
	// A loop whose branch depends on a load mispredicts at B-DET about
	// half the time; checkpointed recovery avoids the copy-back repair
	// latency, so it can only help.
	src := `
        .data 0x10000000
tbl:    .word 0
        .text
        movi r1 = tbl
        movi r2 = 13
        movi r3 = 3000
        movi r20 = 0 ;;
loop:   shli r8 = r2, 13 ;;
        xor r2 = r2, r8 ;;
        shri r8 = r2, 17 ;;
        xor r2 = r2, r8 ;;
        andi r9 = r2, 508 ;;
        add r10 = r9, r1 ;;
        ld4 r11 = [r10] ;;
        andi r12 = r11, 1 ;;
        cmpi.eq p1 = r12, 0 ;;      // fed by the load: resolves at B-DET
        (p1) br even ;;
        addi r20 = r20, 3 ;;
        br join ;;
even:   addi r20 = r20, 1 ;;
join:   addi r3 = r3, -1 ;;
        cmpi.ne p15 = r3, 0 ;;
        (p15) br loop ;;
        st4 [r1, 1024] = r20 ;;
        halt ;;
`
	p := program.MustAssemble(t.Name(), src)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 128; i++ {
		p.Data.WriteU32(uint32(0x10000000+i*4), rng.Uint32())
	}
	slow := runProg(t, DefaultConfig(), p)
	fast := DefaultConfig()
	fast.CheckpointRepair = true
	quick := runProg(t, fast, p)
	if quick.MispredictsB == 0 {
		t.Fatalf("no B-DET mispredictions; test is not exercising recovery")
	}
	if quick.Cycles > slow.Cycles {
		t.Errorf("checkpoint repair slower than copy-back: %d vs %d cycles",
			quick.Cycles, slow.Cycles)
	}
	t.Logf("copy-back %d cycles, checkpoint %d cycles (%d B-DET mispredictions)",
		slow.Cycles, quick.Cycles, quick.MispredictsB)
}

func TestStoreBufferCapEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBSize = 2 // absurdly small: store bursts spill to the B-pipe
	var totalDeferred int64
	for seed := int64(70); seed < 74; seed++ {
		p := workload.Random(seed, workload.DefaultRandomConfig())
		r := runProg(t, cfg, p)
		totalDeferred += r.StoresDeferred
	}
	// While the B-pipe is stalled on a cold miss, a burst of A-executed
	// stores must overflow a 2-entry buffer.
	burst := program.MustAssemble("burst", `
        movi r1 = 0x40000
        movi r5 = 0x50000
        movi r2 = 7 ;;
        ld4 r9 = [r5] ;;
        add r10 = r9, r9 ;;      // B-pipe stalls ~145 cycles here
        st4 [r1] = r2 ;;
        st4 [r1, 4] = r2 ;;
        st4 [r1, 8] = r2 ;;
        st4 [r1, 12] = r2 ;;
        ld4 r3 = [r1, 4] ;;
        add r4 = r3, r3 ;;
        halt ;;
`)
	r := runProg(t, cfg, burst)
	if r.StoresDeferred == 0 {
		t.Errorf("store burst never overflowed the 2-entry buffer (deferred=%d, total=%d)",
			r.StoresDeferred, totalDeferred)
	}
}

func TestConflictPredictorReducesFlushes(t *testing.T) {
	// Every iteration loads a pointer from cold memory (so the store's
	// address is unknown in the A-pipe), stores through it, and then
	// pre-executes a load of the same location: a conflict flush per
	// iteration. The store-wait predictor learns the load's PC after the
	// first flush and defers it thereafter.
	src := `
        .data 0x10000000
slot:   .word 1111
        .text
        movi r1 = slot
        movi r7 = 0x11000000      // pointer table, 4KB stride (always cold)
        movi r2 = 0
        movi r9 = 30 ;;
loop:   ld4 r3 = [r7] ;;          // cold miss: pointer arrives late
        addi r7 = r7, 4096
        addi r2 = r2, 1 ;;
        st4 [r3] = r2 ;;          // ambiguous deferred store (hits slot)
        ld4 r5 = [r1] ;;          // younger load of slot: conflicts
        add r6 = r5, r5 ;;
        addi r9 = r9, -1 ;;
        cmpi.ne p1 = r9, 0 ;;
        (p1) br loop ;;
        st4 [r1, 8] = r6 ;;
        halt ;;
`
	p := program.MustAssemble(t.Name(), src)
	for i := 0; i < 30; i++ {
		p.Data.WriteU32(uint32(0x11000000+i*4096), 0x10000000)
	}
	plain := runProg(t, DefaultConfig(), p)
	pred := DefaultConfig()
	pred.ConflictPredictor = true
	predicted := runProg(t, pred, p)
	if plain.ConflictFlushes < 5 {
		t.Fatalf("kernel not conflict-heavy enough: %d flushes", plain.ConflictFlushes)
	}
	if predicted.ConflictFlushes >= plain.ConflictFlushes/2 {
		t.Errorf("predictor did not reduce flushes: %d -> %d",
			plain.ConflictFlushes, predicted.ConflictFlushes)
	}
	t.Logf("flushes %d -> %d, cycles %d -> %d",
		plain.ConflictFlushes, predicted.ConflictFlushes, plain.Cycles, predicted.Cycles)
}

func TestConflictPredictorEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConflictPredictor = true
	for seed := int64(80); seed < 84; seed++ {
		runProg(t, cfg, workload.Random(seed, workload.DefaultRandomConfig()))
	}
}

// Indirect branches exercise the BTB, the fetch-stall (no-prediction) path,
// and indirect B-DET resolution; random programs with them must stay
// equivalent under every recovery-heavy configuration.
func TestIndirectBranchFuzz(t *testing.T) {
	rcfg := workload.DefaultRandomConfig()
	rcfg.IndirectBranches = true
	cfgs := []Config{DefaultConfig()}
	re := DefaultConfig()
	re.Regroup = true
	cfgs = append(cfgs, re)
	small := DefaultConfig()
	small.CQSize = 8
	small.ALATCapacity = 4
	cfgs = append(cfgs, small)
	for seed := int64(90); seed < 96; seed++ {
		p := workload.Random(seed, rcfg)
		for ci, cfg := range cfgs {
			r := runProg(t, cfg, p)
			if ci == 0 && r.MispredictsA+r.MispredictsB == 0 {
				t.Logf("seed %d: no mispredictions (unusual but legal)", seed)
			}
		}
	}
}
