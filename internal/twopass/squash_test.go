package twopass

import (
	"testing"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/pipeline"
	"fleaflicker/internal/program"
)

// The seam the squash tests use to reach the coupling queue, so the tests
// pin squashCQFrom behavior across representation changes (slice vs. ring).

// testPushGroup appends an empty group to the coupling queue.
func (m *Machine) testPushGroup(enqCycle int64) *cqGroup {
	g := m.cq.pushTail()
	g.enq = enqCycle
	return g
}

// testGroupCount returns the number of queued groups.
func (m *Machine) testGroupCount() int { return m.cq.len() }

// testGroupAt returns the i-th oldest queued group.
func (m *Machine) testGroupAt(i int) *cqGroup { return m.cq.at(i) }

// testNewDynInst returns a fresh dynamic instruction record.
func (m *Machine) testNewDynInst() *pipeline.DynInst { return m.arena.Get() }

// newSquashMachine builds a two-pass machine whose coupling queue the tests
// populate by hand. The program is a placeholder; the machine never runs.
func newSquashMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	p, err := program.Assemble(t.Name(), "        halt ;;\n")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testInsts is a pool of static instructions the hand-built DynInsts point
// at: an ALU op, a store, and a branch.
var testInsts = struct {
	alu, store, branch isa.Inst
}{
	alu:    isa.Inst{Op: isa.OpAdd, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(3)},
	store:  isa.Inst{Op: isa.OpSt4, Src1: isa.R(1), Src2: isa.R(2)},
	branch: isa.Inst{Op: isa.OpBr, Target: 0},
}

// enq appends one hand-built group to the coupling queue, maintaining the
// same occupancy bookkeeping the A-pipe performs, and returns the DynInsts.
// Each spec byte selects the instruction kind: 'a' ALU, 's' store,
// 'b' branch; uppercase marks the instruction deferred.
func enq(m *Machine, enqCycle int64, firstID uint64, spec string) []*pipeline.DynInst {
	g := m.testPushGroup(enqCycle)
	for i, c := range spec {
		d := m.testNewDynInst()
		d.ID = firstID + uint64(i)
		switch c {
		case 'a', 'A':
			d.In = &testInsts.alu
		case 's', 'S':
			d.In = &testInsts.store
		case 'b', 'B':
			d.In = &testInsts.branch
		default:
			panic("unknown inst spec " + string(c))
		}
		if c >= 'A' && c <= 'Z' {
			d.Deferred = true
			m.deferred++
			if d.In.Op.IsStore() {
				m.deferredStores++
			}
		} else {
			d.Done = true
		}
		g.insts = append(g.insts, d)
		m.cqCount++
	}
	return g.insts
}

// cqIDs flattens the queued dynamic IDs, oldest first.
func cqIDs(m *Machine) []uint64 {
	var ids []uint64
	for gi := 0; gi < m.testGroupCount(); gi++ {
		for _, d := range m.testGroupAt(gi).insts {
			ids = append(ids, d.ID)
		}
	}
	return ids
}

func wantIDs(t *testing.T, m *Machine, want ...uint64) {
	t.Helper()
	got := cqIDs(m)
	if len(got) != len(want) {
		t.Fatalf("queue IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("queue IDs = %v, want %v", got, want)
		}
	}
	if m.cqCount != len(want) {
		t.Errorf("cqCount = %d, want %d", m.cqCount, len(want))
	}
}

func TestSquashCQFromGroupBoundary(t *testing.T) {
	m := newSquashMachine(t, DefaultConfig())
	enq(m, 0, 1, "aaa")
	enq(m, 1, 4, "aa")
	enq(m, 2, 6, "a")
	m.squashCQFrom(4) // first squashed ID opens the second group
	wantIDs(t, m, 1, 2, 3)
	if m.testGroupCount() != 1 {
		t.Errorf("group count = %d, want 1", m.testGroupCount())
	}
}

func TestSquashCQFromMidGroup(t *testing.T) {
	m := newSquashMachine(t, DefaultConfig())
	enq(m, 0, 1, "aaa")
	enq(m, 1, 4, "aaa")
	m.squashCQFrom(5) // splits the second group
	wantIDs(t, m, 1, 2, 3, 4)
	if m.testGroupCount() != 2 {
		t.Errorf("group count = %d, want 2", m.testGroupCount())
	}
	if got := len(m.testGroupAt(1).insts); got != 1 {
		t.Errorf("tail group has %d insts, want 1", got)
	}
}

func TestSquashCQFromRemovesEmptiedTailGroup(t *testing.T) {
	// When the first squashed instruction is the first of its group, the
	// group must be removed entirely, never left behind empty: the B-pipe
	// treats every queued group as non-empty.
	m := newSquashMachine(t, DefaultConfig())
	enq(m, 0, 1, "aa")
	enq(m, 1, 3, "aa")
	m.squashCQFrom(3)
	wantIDs(t, m, 1, 2)
	if m.testGroupCount() != 1 {
		t.Fatalf("group count = %d, want 1 (emptied tail group must be dropped)", m.testGroupCount())
	}
	for gi := 0; gi < m.testGroupCount(); gi++ {
		if len(m.testGroupAt(gi).insts) == 0 {
			t.Fatalf("group %d left empty after squash", gi)
		}
	}
}

func TestSquashCQFromAll(t *testing.T) {
	m := newSquashMachine(t, DefaultConfig())
	enq(m, 0, 1, "aa")
	enq(m, 1, 3, "a")
	m.squashCQFrom(1)
	wantIDs(t, m)
	if m.testGroupCount() != 0 {
		t.Errorf("group count = %d, want 0", m.testGroupCount())
	}
}

func TestSquashCQFromBeyondTailIsNoop(t *testing.T) {
	m := newSquashMachine(t, DefaultConfig())
	enq(m, 0, 1, "aa")
	m.squashCQFrom(100)
	wantIDs(t, m, 1, 2)
}

func TestSquashCQFromUncountBookkeeping(t *testing.T) {
	// Deferred instructions (and deferred stores) being squashed must give
	// back their occupancy counts; retained ones must keep theirs.
	m := newSquashMachine(t, DefaultConfig())
	enq(m, 0, 1, "aA") // ID 2: deferred ALU, survives
	enq(m, 1, 3, "SaB")
	if m.deferred != 3 || m.deferredStores != 1 {
		t.Fatalf("setup: deferred=%d deferredStores=%d", m.deferred, m.deferredStores)
	}
	m.squashCQFrom(3) // squashes the deferred store and branch
	wantIDs(t, m, 1, 2)
	if m.deferred != 1 {
		t.Errorf("deferred = %d, want 1", m.deferred)
	}
	if m.deferredStores != 0 {
		t.Errorf("deferredStores = %d, want 0", m.deferredStores)
	}
}

func TestSquashCQFromDropsCheckpointsOfSquashedBranches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CheckpointRepair = true
	m := newSquashMachine(t, cfg)
	enq(m, 0, 1, "B")
	enq(m, 1, 2, "B")
	m.snapshotAFile(1)
	m.snapshotAFile(2)
	m.squashCQFrom(2)
	hasCP := func(id uint64) bool {
		for _, e := range m.checkpoints {
			if e.id == id {
				return true
			}
		}
		return false
	}
	if !hasCP(1) {
		t.Errorf("surviving branch's checkpoint dropped")
	}
	if hasCP(2) {
		t.Errorf("squashed branch's checkpoint retained")
	}
}

func TestSquashCQFromFlushesStoreBufferAndALAT(t *testing.T) {
	m := newSquashMachine(t, DefaultConfig())
	enq(m, 0, 1, "as") // ID 2 is a store with a buffer entry
	enq(m, 1, 3, "a")
	enq(m, 2, 4, "s") // ID 4: squashed store
	m.sbuf.Insert(mem.StoreEntry{ID: 2, Addr: 0x100, Size: 4, DataKnown: true})
	m.sbuf.Insert(mem.StoreEntry{ID: 4, Addr: 0x200, Size: 4, DataKnown: true})
	m.alat.Insert(1, 0x300, 4)
	m.alat.Insert(4, 0x400, 4)
	m.squashCQFrom(4)
	wantIDs(t, m, 1, 2, 3)
	if m.sbuf.Len() != 1 {
		t.Errorf("store buffer len = %d, want 1 (ID ≥ 4 flushed)", m.sbuf.Len())
	}
	if m.alat.Len() != 1 {
		t.Errorf("ALAT len = %d, want 1 (ID ≥ 4 flushed)", m.alat.Len())
	}
	// The flush must also reach the buffers when the queue itself holds
	// nothing to squash (the A-pipe may have run ahead of the enqueue).
	m.sbuf.Insert(mem.StoreEntry{ID: 50, Addr: 0x500, Size: 4, DataKnown: true})
	m.squashCQFrom(50)
	if m.sbuf.Len() != 1 {
		t.Errorf("store buffer len = %d after empty-queue squash, want 1", m.sbuf.Len())
	}
}
