// Package twopass implements the paper's contribution: the "flea-flicker"
// two-pass pipeline. Two in-order back-end pipelines are coupled by a FIFO
// queue:
//
//   - The A-pipe (advance) dispatches issue groups without ever stalling on
//     unready operands. An instruction whose inputs are unavailable at
//     dispatch is deferred — suppressed and marked — and the invalidation of
//     its destination's A-file Valid bit transitively defers its dataflow
//     successors, in the manner of EPIC control-speculation poison bits.
//   - The B-pipe (backup) dequeues the same instruction stream in order. It
//     merges the results of pre-executed instructions (trusting the A-pipe;
//     no re-execution) and executes deferred instructions with ordinary
//     in-order stall semantics against the architectural B register file
//     and memory.
//
// Supporting structures implemented here, following §3 of the paper: the
// coupling queue and per-result coupling result store (carried on the
// DynInst records), the A-file with Valid/Speculative/DynID metadata, the
// speculative store buffer, the two-pass ALAT with store-conflict flushes,
// the B→A retirement feedback path with configurable latency, two-level
// branch resolution (A-DET early repair, B-DET full flush with speculative
// A-file restoration), and optional instruction regrouping at B-pipe dequeue
// (the paper's "2Pre" configuration).
package twopass

import (
	"context"
	"fmt"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/bpred"
	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/metrics"
	"fleaflicker/internal/pipeline"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
)

// Config parameterizes the machine.
type Config struct {
	Front      pipeline.Config
	Mem        mem.Config
	Bpred      bpred.Config
	IssueWidth int
	FUs        [isa.NumFUClasses]int

	// CQSize is the coupling-queue capacity in instructions (Table 1: 64).
	CQSize int
	// SBSize bounds the speculative store buffer; a full buffer stalls
	// A-pipe dispatch of further stores (0 = unbounded, the paper's
	// "almost ubiquitous" idealization).
	SBSize int
	// ALATCapacity bounds the two-pass ALAT; 0 models the paper's perfect
	// ALAT (no capacity conflicts).
	ALATCapacity int
	// FeedbackLatency is the extra delay, in cycles, for a B-pipe
	// retirement to update the A-file (Figure 8). Negative disables the
	// feedback path entirely (the paper's "inf").
	FeedbackLatency int
	// Regroup enables instruction regrouping at B-pipe dequeue (2Pre):
	// adjacent queue groups whose cross dependences were satisfied by
	// pre-execution issue together.
	Regroup bool
	// DeferThrottle, when positive, stalls A-pipe dispatch while more
	// than this many deferred instructions sit in the coupling queue (the
	// paper's §3.5/§6 future-work moderation mechanism).
	DeferThrottle int
	// StallOnAnticipable makes the A-pipe stall (rather than defer) when
	// the only blocking operands are valid results of fixed-latency
	// non-load producers still in flight — the mitigation §4 suggests for
	// 175.vpr's floating-point deferral pathology.
	StallOnAnticipable bool
	// ConflictPredictor enables a store-wait predictor in the spirit of
	// the Alpha 21264 the paper cites in §3.4: a load whose PC previously
	// caused a store-conflict flush is deferred whenever ambiguous
	// (deferred) stores are in the queue, trading pre-execution for
	// avoided flushes.
	ConflictPredictor bool
	// CheckpointRepair enables §3.6's alternative recovery scheme: the
	// A-file is checkpointed when a branch defers, so a B-DET
	// misprediction restores it in one cycle instead of copying the
	// speculative entries from the B-file at RepairBandwidth registers
	// per cycle ("faster branch prediction recovery at a higher register
	// file implementation cost").
	CheckpointRepair bool

	MaxCycles int64

	// Arena, when non-nil, supplies the machine's DynInst storage so
	// back-to-back simulations reuse records (see pipeline.NewFrontEnd).
	Arena *pipeline.Arena `json:"-"`
}

// DefaultConfig returns the Table 1 two-pass machine (2P).
func DefaultConfig() Config {
	return Config{
		Front:           pipeline.DefaultConfig(),
		Mem:             mem.DefaultConfig(),
		Bpred:           bpred.DefaultConfig(),
		IssueWidth:      8,
		FUs:             [isa.NumFUClasses]int{isa.ClassALU: 5, isa.ClassMEM: 3, isa.ClassFP: 3, isa.ClassBR: 3},
		CQSize:          64,
		ALATCapacity:    0,
		FeedbackLatency: 0,
		MaxCycles:       2_000_000_000,
	}
}

// aEntry is one A-file register: a value plus the Valid bit (V), Speculative
// bit (S) and last-writer dynamic ID tag (DynID) of §3.3, and the cycle the
// value becomes consumable (the in-flight-load scoreboard).
type aEntry struct {
	val     isa.Value
	valid   bool
	spec    bool
	dynID   uint64
	readyAt int64
	// fromLoad marks values still in flight from a load (unanticipated
	// latency) as opposed to a fixed-latency producer, for the
	// StallOnAnticipable policy.
	fromLoad bool
}

// cpEntry associates a deferred branch's dynamic ID with its A-file snapshot
// (CheckpointRepair, §3.6).
type cpEntry struct {
	id uint64
	cp *[isa.NumRegs]aEntry
}

// cqGroup is one issue group in the coupling queue.
type cqGroup struct {
	insts []*pipeline.DynInst
	enq   int64 // cycle enqueued; the B-pipe may dequeue it strictly later
}

// cqRing is the coupling queue: a fixed-capacity ring of issue groups sized
// at New. Capacity is CQSize groups — every queued group holds at least one
// instruction and total queued instructions are bounded by CQSize, so the
// ring can never overflow. Group slots keep their instruction-slice backing
// across reuse, so steady-state enqueue/dequeue allocates nothing.
type cqRing struct {
	groups  []cqGroup
	headIdx int
	count   int
}

func newCQRing(capGroups int) cqRing {
	return cqRing{groups: make([]cqGroup, capGroups)}
}

// len returns the number of queued groups.
//
//flea:hotpath
func (q *cqRing) len() int { return q.count }

// at returns the i-th oldest queued group (0 is the head).
//
//flea:hotpath
func (q *cqRing) at(i int) *cqGroup {
	return &q.groups[(q.headIdx+i)%len(q.groups)]
}

// pushTail claims the next free slot, reset to an empty group. The caller
// must have checked occupancy against CQSize.
//
//flea:hotpath
func (q *cqRing) pushTail() *cqGroup {
	g := q.at(q.count)
	q.count++
	//flea:handoff popHead's records were recycled by retire/squash; the slot reuses only the backing array
	g.insts = g.insts[:0]
	g.enq = 0
	return g
}

// popHead discards the oldest group (its slot, and instruction-slice
// backing, is reused by a later pushTail).
//
//flea:hotpath
func (q *cqRing) popHead() {
	q.headIdx = (q.headIdx + 1) % len(q.groups)
	q.count--
}

// truncate keeps the n oldest groups and discards the rest (tail squash).
//
//flea:hotpath
func (q *cqRing) truncate(n int) { q.count = n }

// Machine is one two-pass simulation instance.
type Machine struct {
	cfg  Config
	prog *program.Program
	fe   *pipeline.FrontEnd
	hier *mem.Hierarchy

	// A-pipe state.
	afile   [isa.NumRegs]aEntry
	aHalted bool
	// aBlockedAnticipable marks an A-pipe stall under StallOnAnticipable.
	aBlockedAnticipable bool

	// B-pipe (architectural) state.
	bst      *arch.State
	bready   [isa.NumRegs]int64
	bIsLoad  [isa.NumRegs]bool
	cq       cqRing
	cqCount  int
	sbuf     mem.StoreBuffer
	alat     mem.ALAT
	deferred int // instructions currently deferred in the CQ
	// deferredStores counts deferred stores currently in the CQ, for the
	// loads-past-deferred-store statistic.
	deferredStores int

	// arena recycles DynInst records (shared with the front end, which
	// allocates from it at fetch); retired and squashed instructions are
	// returned to it so the cycle loop performs no per-instruction
	// allocation.
	arena *pipeline.Arena
	// dispatchSet, srcScratch and addrScratch are reusable hot-loop
	// buffers (buildDispatchSet, bBlocked, canMerge).
	dispatchSet []*pipeline.DynInst
	srcScratch  []isa.Reg
	addrScratch []uint32

	// checkpoints holds A-file snapshots taken when branches defer
	// (CheckpointRepair only). Entries are kept in dispatch order — dynamic
	// IDs only ever increase — so the structure is an ordered slice with
	// deterministic traversal, not a map; lookups scan at most the
	// outstanding deferred branches (bounded by CQSize). cpFree recycles
	// discarded snapshot arrays.
	checkpoints []cpEntry
	cpFree      []*[isa.NumRegs]aEntry
	// conflictPC marks load PCs that caused store-conflict flushes
	// (ConflictPredictor only); it is a dense per-PC table, nil when the
	// predictor is off.
	conflictPC []bool

	now    int64
	halted bool
	col    *stats.Collector
	// tr is the observability event stream (nil when disabled); see
	// internal/trace for the event vocabulary. cmd/fleatrace and the
	// mechanism tests attach sinks through Attach.
	tr  *trace.Tracer
	ctx context.Context

	// Checkpoint state (see snapshot.go). retired counts architecturally
	// retired (B-pipe) instructions; archPC tracks the next architectural PC
	// so a drain barrier knows where to restart fetch.
	retired   int64
	archPC    int32
	snapEvery int64
	nextSnap  int64
	draining  bool
	onSnap    func(*checkpoint.Snapshot)
	resume    *checkpoint.Snapshot
}

// New builds a machine over a fresh copy of the program's memory.
func New(cfg Config, prog *program.Program) (*Machine, error) {
	if err := prog.Validate(cfg.IssueWidth, cfg.FUs); err != nil {
		return nil, fmt.Errorf("twopass: %w", err)
	}
	if cfg.CQSize < cfg.IssueWidth {
		return nil, fmt.Errorf("twopass: coupling queue (%d) smaller than one issue group (%d)",
			cfg.CQSize, cfg.IssueWidth)
	}
	hier := mem.NewHierarchy(cfg.Mem)
	m := &Machine{
		cfg:  cfg,
		prog: prog,
		fe:   pipeline.NewFrontEnd(cfg.Front, prog, hier, bpred.New(cfg.Bpred), cfg.Arena),
		hier: hier,
		bst:  arch.NewState(prog.InitialImage()),
		cq:   newCQRing(cfg.CQSize),
	}
	m.arena = m.fe.Arena()
	m.dispatchSet = make([]*pipeline.DynInst, 0, cfg.IssueWidth)
	m.alat.Capacity = cfg.ALATCapacity
	if cfg.ConflictPredictor {
		m.conflictPC = make([]bool, len(prog.Insts))
	}
	// The A-file starts as a coherent copy of the (zeroed) architectural
	// file: every register valid and non-speculative.
	for r := range m.afile {
		m.afile[r] = aEntry{valid: true}
	}
	m.col = stats.NewCollector(metrics.NewRegistry(), prog.Name, m.modelName())
	return m, nil
}

func (m *Machine) modelName() string {
	if m.cfg.Regroup {
		return "2Pre"
	}
	return "2P"
}

// State exposes the architectural (B-file) state for correctness checks.
func (m *Machine) State() *arch.State { return m.bst }

// Attach binds the machine's observability before Run: ctx cancels the
// cycle loop, reg (when non-nil) replaces the private metrics registry, and
// tr (which may be nil) receives trace events. Must not be called after Run
// has started.
func (m *Machine) Attach(ctx context.Context, reg *metrics.Registry, tr *trace.Tracer) {
	if reg != nil {
		m.col = stats.NewCollector(reg, m.prog.Name, m.modelName())
	}
	m.ctx = ctx
	m.tr = tr
}

// Run simulates to completion and returns the measurements.
func (m *Machine) Run() (*stats.Run, error) {
	m.primeCounters()
	for !m.halted {
		if m.now >= m.cfg.MaxCycles {
			return nil, fmt.Errorf("twopass: %q exceeded %d cycles", m.prog.Name, m.cfg.MaxCycles)
		}
		if m.ctx != nil && m.now&4095 == 0 {
			if err := m.ctx.Err(); err != nil {
				return nil, fmt.Errorf("twopass: %q: %w", m.prog.Name, err)
			}
		}
		if m.draining {
			// Fetch pauses until both queues empty — every dispatched
			// instruction has passed the B-pipe and the speculative
			// structures (store buffer, ALAT entries, A-file checkpoints)
			// are empty by construction. Then snapshot and refetch.
			if !m.fe.Pending() && m.cq.len() == 0 {
				m.takeSnapshot()
				m.fe.Redirect(m.archPC, m.now)
				m.draining = false
			}
		} else {
			m.fe.Tick(m.now)
		}
		m.stepA()
		m.stepB()
		m.col.CQOccupancy(m.cqCount)
		if m.snapshotDue() {
			m.draining = true
		}
		m.now++
	}
	r := m.col.Snapshot(m.hier.Stats())
	if err := r.CheckInvariants(); err != nil {
		return nil, err
	}
	return r, nil
}

// readA reports whether register r is consumable in the A-pipe at now, and
// its value if so. A register is unusable either because its last writer was
// deferred (V clear) or because its value is still in flight.
//
//flea:hotpath
func (m *Machine) readA(r isa.Reg) (isa.Value, bool) {
	if r == isa.RegNone || r.Hardwired() {
		return isa.HardwiredValue(r), true
	}
	e := &m.afile[r]
	if !e.valid || e.readyAt > m.now {
		return 0, false
	}
	return e.val, true
}

// writeA records an A-pipe result in the A-file.
//
//flea:hotpath
func (m *Machine) writeA(r isa.Reg, id uint64, v isa.Value, readyAt int64, fromLoad bool) {
	if r == isa.RegNone || r.Hardwired() {
		return
	}
	m.afile[r] = aEntry{val: v, valid: true, spec: true, dynID: id, readyAt: readyAt, fromLoad: fromLoad}
}

// invalidateA clears the Valid bit of a deferred instruction's destination,
// which transitively defers its consumers.
//
//flea:hotpath
func (m *Machine) invalidateA(r isa.Reg, id uint64) {
	if r == isa.RegNone || r.Hardwired() {
		return
	}
	e := &m.afile[r]
	e.valid = false
	e.spec = false
	e.dynID = id
}

// feedback applies a B-pipe retirement to the A-file (§3.5): the update
// lands only if the A-file entry's DynID still names this instruction (no
// younger write intervened), arriving FeedbackLatency cycles after the
// result is produced.
//
//flea:hotpath
func (m *Machine) feedback(r isa.Reg, id uint64, v isa.Value, producedAt int64) {
	if m.cfg.FeedbackLatency < 0 || r == isa.RegNone || r.Hardwired() {
		return
	}
	e := &m.afile[r]
	if e.dynID != id {
		return
	}
	at := producedAt + int64(m.cfg.FeedbackLatency)
	if at < m.now+1 {
		at = m.now + 1
	}
	m.afile[r] = aEntry{val: v, valid: true, spec: false, dynID: id, readyAt: at}
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvFeedback, Pipe: trace.PipeB,
			ID: id, PC: -1, Arg: int64(r)})
	}
}

// RepairBandwidth is the number of A-file registers repairable from the
// B-file per cycle during flush recovery; the repair's duration extends the
// front-end redirect (§3.6). Checkpoint restoration avoids this cost.
const RepairBandwidth = 8

// repairAFile restores corrupted A-file entries from the architectural
// B-file after a B-DET misprediction or store-conflict flush: every
// speculative entry, and every invalid entry whose pending writer (DynID)
// was squashed (ID ≥ flushID), is overwritten with the architectural value.
// It returns the number of registers repaired, which determines the
// recovery latency.
//
//flea:hotpath
func (m *Machine) repairAFile(flushID uint64) (repaired int) {
	for r := range m.afile {
		reg := isa.Reg(r)
		if reg.Hardwired() {
			continue
		}
		e := &m.afile[r]
		if e.spec || (!e.valid && e.dynID >= flushID) {
			*e = aEntry{val: m.bst.Regs[r], valid: true, readyAt: m.now}
			repaired++
		}
	}
	return repaired
}

// snapshotAFile records the A-file for checkpoint repair when a branch
// defers. Snapshot arrays are recycled through cpFree so steady-state
// checkpointing does not allocate.
//
//flea:hotpath
func (m *Machine) snapshotAFile(branchID uint64) {
	if !m.cfg.CheckpointRepair {
		return
	}
	var cp *[isa.NumRegs]aEntry
	if n := len(m.cpFree); n > 0 {
		cp = m.cpFree[n-1]
		m.cpFree = m.cpFree[:n-1]
	} else {
		//flea:coldpath snapshot arrays amortize through cpFree; steady state recycles
		cp = new([isa.NumRegs]aEntry)
	}
	*cp = m.afile
	// Dynamic IDs only ever increase, so appending keeps the slice sorted.
	m.checkpoints = append(m.checkpoints, cpEntry{id: branchID, cp: cp})
}

// dropCheckpoint discards a branch's snapshot (on retirement or squash) and
// recycles its storage.
//
//flea:hotpath
func (m *Machine) dropCheckpoint(id uint64) {
	for i, e := range m.checkpoints {
		if e.id != id {
			continue
		}
		m.cpFree = append(m.cpFree, e.cp)
		m.checkpoints = append(m.checkpoints[:i], m.checkpoints[i+1:]...)
		return
	}
}

// restoreCheckpoint reinstates the A-file as of the mispredicted branch's
// dispatch; reports whether a snapshot existed.
//
//flea:hotpath
func (m *Machine) restoreCheckpoint(branchID uint64) bool {
	for i := len(m.checkpoints) - 1; i >= 0; i-- {
		if m.checkpoints[i].id == branchID {
			m.afile = *m.checkpoints[i].cp
			return true
		}
	}
	return false
}

// squashCQFrom removes every queued instruction with ID ≥ flushID, along
// with its store-buffer and ALAT footprint. Squashed records go back to the
// arena.
//
//flea:hotpath
func (m *Machine) squashCQFrom(flushID uint64) {
	for gi := 0; gi < m.cq.len(); gi++ {
		g := m.cq.at(gi)
		for ii, d := range g.insts {
			if d.ID < flushID {
				continue
			}
			for _, dd := range g.insts[ii:] {
				m.uncount(dd)
			}
			m.arena.PutAll(g.insts[ii:])
			g.insts = g.insts[:ii]
			for li := gi + 1; li < m.cq.len(); li++ {
				lg := m.cq.at(li)
				for _, dd := range lg.insts {
					m.uncount(dd)
				}
				m.arena.PutAll(lg.insts)
				lg.insts = lg.insts[:0]
			}
			if len(g.insts) == 0 {
				m.cq.truncate(gi)
			} else {
				m.cq.truncate(gi + 1)
			}
			m.sbuf.FlushFrom(flushID)
			m.alat.FlushFrom(flushID)
			return
		}
	}
	m.sbuf.FlushFrom(flushID)
	m.alat.FlushFrom(flushID)
}

// uncount reverses the queue-occupancy bookkeeping of a squashed entry.
//
//flea:hotpath
func (m *Machine) uncount(d *pipeline.DynInst) {
	m.cqCount--
	if d.Deferred {
		m.deferred--
		if d.In.Op.IsStore() {
			m.deferredStores--
		}
		if d.In.Op.IsBranch() {
			m.dropCheckpoint(d.ID)
		}
	}
}
