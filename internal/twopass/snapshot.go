package twopass

import (
	"fmt"

	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/isa"
)

// Checkpoint support. Snapshots are taken at drain barriers: fetch pauses
// until both the front-end queue and the coupling queue are empty, i.e. every
// dispatched instruction has passed the B-pipe. At that point the speculative
// structures are empty by construction — the store buffer holds only entries
// for queued stores, the ALAT only entries for queued loads, and A-file
// checkpoints only entries for queued branches — so the persistent machine
// state is the A-file, the B-side scoreboard, the ALAT eviction count, and
// the conflict predictor's table.

const stateSection = "twopass.state"

// ConfigureSnapshots implements core.Snapshotter.
func (m *Machine) ConfigureSnapshots(every int64, fn func(*checkpoint.Snapshot)) {
	m.snapEvery = every
	m.onSnap = fn
	m.nextSnap = every
	for m.nextSnap <= m.retired {
		m.nextSnap += every
	}
}

// snapshotDue reports whether the machine has crossed its snapshot interval
// and should begin draining toward a barrier. It runs every cycle of the
// Run loop, so it must stay allocation-free and inlinable.
//
//flea:hotpath
//flea:inline
//flea:noescape
func (m *Machine) snapshotDue() bool {
	return m.snapEvery > 0 && !m.draining && m.retired >= m.nextSnap
}

// RestoreSnapshot implements core.Snapshotter.
func (m *Machine) RestoreSnapshot(snap *checkpoint.Snapshot) error {
	if snap.Program != "" && snap.Program != m.prog.Name {
		return fmt.Errorf("twopass: snapshot is for program %q, machine runs %q", snap.Program, m.prog.Name)
	}
	m.bst.Regs = snap.Regs
	m.bst.Mem = snap.Mem.Image()
	m.retired = snap.Retired
	m.archPC = snap.PC
	m.resume = snap

	switch snap.Kind {
	case checkpoint.KindFunctional:
		// Re-seed the A-file as a coherent copy of the restored register
		// file (the same state New builds, with the restored values).
		for r := range m.afile {
			m.afile[r] = aEntry{val: snap.Regs[r], valid: true}
		}
		//flea:handoff Redirect returns every in-flight group's records to the arena before refetching
		m.fe.Redirect(snap.PC, -1)
		return nil
	case checkpoint.KindMachine:
		if snap.Model != m.modelName() {
			return fmt.Errorf("twopass: snapshot is from model %q, machine is %q", snap.Model, m.modelName())
		}
		m.now = snap.Cycle
		if err := m.hier.RestoreState(snap.Hier); err != nil {
			return err
		}
		if err := m.fe.Predictor().RestoreState(snap.Pred); err != nil {
			return err
		}
		m.fe.RestoreStream(snap.FeNextID, snap.FeFetchStalls)
		//flea:handoff Redirect returns every in-flight group's records to the arena before refetching
		m.fe.Redirect(snap.PC, snap.Cycle)
		b, ok := snap.Section(stateSection)
		if !ok {
			return fmt.Errorf("twopass: snapshot has no %s section", stateSection)
		}
		d := checkpoint.NewDecoder(b)
		for r := range m.afile {
			m.afile[r] = aEntry{
				val:      isa.Value(d.U64()),
				valid:    d.Bool(),
				spec:     d.Bool(),
				dynID:    d.U64(),
				readyAt:  d.I64(),
				fromLoad: d.Bool(),
			}
		}
		for r := range m.bready {
			m.bready[r] = d.I64()
			m.bIsLoad[r] = d.Bool()
		}
		m.alat.Evictions = d.I64()
		if d.Bool() { // conflict-predictor table present
			n := d.Int()
			if m.conflictPC == nil || n != len(m.conflictPC) {
				return fmt.Errorf("twopass: snapshot conflict table has %d entries, machine has %d",
					n, len(m.conflictPC))
			}
			for i := range m.conflictPC {
				m.conflictPC[i] = d.Bool()
			}
		} else if m.conflictPC != nil {
			return fmt.Errorf("twopass: snapshot lacks the conflict-predictor table this configuration needs")
		}
		return d.Err()
	}
	return fmt.Errorf("twopass: unknown snapshot kind %d", snap.Kind)
}

// primeCounters seeds the registry from a restored snapshot (Run prologue,
// after Attach).
func (m *Machine) primeCounters() {
	if m.resume == nil {
		return
	}
	reg := m.col.Registry()
	for _, c := range m.resume.Counters {
		reg.RestoreCounter(c.Name, c.Value)
	}
	m.resume = nil
}

// takeSnapshot captures the quiesced machine at a drain barrier (front-end
// and coupling queues both empty).
func (m *Machine) takeSnapshot() {
	s := &checkpoint.Snapshot{
		Kind:    checkpoint.KindMachine,
		Model:   m.modelName(),
		Program: m.prog.Name,
		Cycle:   m.now,
		Retired: m.retired,
		PC:      m.archPC,
		Regs:    m.bst.Regs,
		Mem:     m.bst.Mem.Snapshot(),
		Hier:    m.hier.CaptureState(),
		Pred:    m.fe.Predictor().CaptureState(),
	}
	s.FeNextID, s.FeFetchStalls = m.fe.StreamState()
	var cs []checkpoint.Counter
	m.col.Registry().EachCounter(func(name string, value int64) {
		cs = append(cs, checkpoint.Counter{Name: name, Value: value})
	})
	s.SetCounters(cs)
	e := checkpoint.NewEncoder(isa.NumRegs*36 + 16 + len(m.conflictPC))
	for r := range m.afile {
		a := &m.afile[r]
		e.U64(uint64(a.val))
		e.Bool(a.valid)
		e.Bool(a.spec)
		e.U64(a.dynID)
		e.I64(a.readyAt)
		e.Bool(a.fromLoad)
	}
	for r := range m.bready {
		e.I64(m.bready[r])
		e.Bool(m.bIsLoad[r])
	}
	e.I64(m.alat.Evictions)
	e.Bool(m.conflictPC != nil)
	if m.conflictPC != nil {
		e.Int(len(m.conflictPC))
		for _, v := range m.conflictPC {
			e.Bool(v)
		}
	}
	s.AddSection(stateSection, e.Bytes())
	for m.nextSnap <= m.retired {
		m.nextSnap += m.snapEvery
	}
	if m.onSnap != nil {
		m.onSnap(s)
	}
}
