package twopass

import (
	"context"
	"testing"

	"fleaflicker/internal/pipeline"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
)

// §3.3: the A-pipe does not enforce WAW stalls — a younger write may land in
// the A-file while an older (deferred) write to the same register is still
// queued, and consumers must see the younger value.
func TestAFileWAWRelaxation(t *testing.T) {
	r := runTP(t, DefaultConfig(), `
        movi r1 = 0x40000 ;;
        ld4 r2 = [r1] ;;          // cold miss
        add r3 = r2, r2 ;;        // deferred: writes r3 "later" in B
        movi r3 = 77 ;;           // younger write to r3 executes in A at once
        add r4 = r3, r3 ;;        // must see 77 -> 154 (not the deferred add)
        halt ;;
`)
	// Architectural equivalence (r4 = 154) is enforced by runTP; the
	// machine must also have pre-executed the consumer rather than
	// deferring it behind the WAW.
	if r.Deferred != 1 {
		t.Errorf("deferred = %d, want exactly the one add behind the miss", r.Deferred)
	}
}

// §3.3/§3.5: feedback updates apply only when the A-file entry's DynID still
// names the retiring instruction; a younger A-pipe write must not be
// clobbered by an older instruction's feedback.
func TestFeedbackDynIDSelectivity(t *testing.T) {
	runTP(t, DefaultConfig(), `
        movi r1 = 0x40000 ;;
        ld4 r2 = [r1] ;;          // cold miss
        add r3 = r2, r2 ;;        // deferred; B's feedback targets r3...
        movi r3 = 5 ;;            // ...but r3 was rewritten in the A-pipe
        movi r9 = 60 ;;
spin:   addi r9 = r9, -1 ;;      // give B time to retire the deferred add
        cmpi.ne p1 = r9, 0 ;;
        (p1) br spin ;;
        add r4 = r3, r3 ;;        // must read 5 (A value), not the feedback
        st4 [r1, 8] = r4 ;;
        halt ;;
`)
	// r4 = 10 is enforced by the reference comparison; a DynID bug would
	// yield the deferred add's value instead.
}

// §3.6: a misprediction detected at A-DET redirects fetch without stalling
// the B-pipe — the queue keeps draining during the redirect.
func TestADETRepairKeepsBPipeRunning(t *testing.T) {
	src := `
        movi r1 = 0x40000
        movi r9 = 120 ;;
warm:   addi r9 = r9, -1 ;;
        cmpi.ne p7 = r9, 0 ;;
        (p7) br warm ;;           // final fall-through mispredicts at A-DET
        ld4 r2 = [r1] ;;
        add r3 = r2, r2 ;;
        halt ;;
`
	p := program.MustAssemble(t.Name(), src)
	m, err := New(DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	// Watch the event stream: A-DET mispredictions are EvBranchResolve on the
	// A track with Arg=1; B-pipe retires are EvMerge/EvReplay.
	var lastADET int64 = -1
	retiredDuringRedirect := 0
	m.Attach(context.Background(), nil, trace.New(trace.FuncSink(func(e trace.Event) {
		switch {
		case e.Type == trace.EvBranchResolve && e.Pipe == trace.PipeA && e.Arg == 1:
			lastADET = e.Cycle
		case e.Type == trace.EvMerge || e.Type == trace.EvReplay:
			if lastADET >= 0 && e.Cycle > lastADET && e.Cycle <= lastADET+int64(pipeline.DETOffset)+3 {
				retiredDuringRedirect++
			}
		}
	})))
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.MispredictsA == 0 {
		t.Fatalf("no A-DET mispredictions; test ineffective")
	}
	if retiredDuringRedirect == 0 {
		t.Errorf("B-pipe retired nothing during A-DET redirects (mispA=%d)", r.MispredictsA)
	}
}

// §3.4: a predicated-off store must neither commit nor invalidate ALAT
// entries, even when its predicate was deferred.
func TestPredicatedOffDeferredStore(t *testing.T) {
	r := runTP(t, DefaultConfig(), `
        movi r1 = 0x3000
        movi r2 = 0x40000
        movi r5 = 99 ;;
        st4 [r1] = r5 ;;          // establishes the location
        ld4 r3 = [r2] ;;          // cold miss
        cmpi.eq p1 = r3, 12345 ;; // deferred predicate (and false)
        (p1) st4 [r1] = r3 ;;     // deferred, predicated-off store
        ld4 r6 = [r1] ;;          // younger load: must read 99, no flush
        add r7 = r6, r6 ;;
        halt ;;
`)
	if r.ConflictFlushes != 0 {
		t.Errorf("predicated-off store caused %d conflict flushes", r.ConflictFlushes)
	}
}

// The B-pipe stall on a dangling pre-executed result (a load still in
// flight at merge time) is classified as a load stall (Figure 4(d)).
func TestDanglingResultClassifiedAsLoadStall(t *testing.T) {
	r := runTP(t, DefaultConfig(), `
        movi r1 = 0x40000 ;;
        ld4 r2 = [r1] ;;          // pre-executed; dangles ~145 cycles
        add r3 = r2, r2 ;;        // deferred; B stalls on the dangle
        halt ;;
`)
	if r.ByClass[stats.LoadStall] < 100 {
		t.Errorf("dangling merge produced only %d load-stall cycles", r.ByClass[stats.LoadStall])
	}
}

// The paper's Figure 5 limitation: a deferred chain gets no third pipe —
// two dependent misses inside one deferred chain serialize in the B-pipe.
func TestDeferredChainSerializes(t *testing.T) {
	serial := runTP(t, DefaultConfig(), `
        .data 0x10000000
p0v:    .word 0x10100000
        .org 0x10100000
        .word 1234
        .text
        movi r1 = 0x10000000 ;;
        ld4 r2 = [r1] ;;          // miss 1
        ld4 r3 = [r2] ;;          // deferred: address from miss 1 -> miss 2 in B
        add r4 = r3, r3 ;;
        halt ;;
`)
	// Both misses must appear, the second initiated by the B-pipe.
	bInit := serial.Access[3][stats.PipeB] + serial.Access[2][stats.PipeB]
	if bInit == 0 {
		t.Errorf("second (dependent) miss was not initiated in the B-pipe: %v", serial.Access)
	}
	if serial.Cycles < 250 {
		t.Errorf("dependent misses did not serialize: %d cycles", serial.Cycles)
	}
}

// Regrouping must never merge across an unresolved (deferred) producer.
func TestRegroupRespectsDeferredProducers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Regroup = true
	runTP(t, cfg, `
        movi r1 = 0x40000
        movi r9 = 150 ;;
warm:   addi r9 = r9, -1 ;;
        cmpi.ne p7 = r9, 0 ;;
        (p7) br warm ;;
        ld4 r2 = [r1] ;;
        add r3 = r2, r2 ;;        // deferred producer
        add r4 = r3, r3 ;;        // consumer: must not merge past r3
        add r5 = r4, r4 ;;
        halt ;;
`)
	// Correctness is the assertion: a bad merge would let r4 read a stale
	// r3 and diverge from the reference executor.
}
