// Package workload provides the benchmark programs of the evaluation: ten
// synthetic kernels reproducing the memory/branch signatures of the paper's
// SPEC benchmarks (Table 2), and a seeded random-program generator used for
// differential testing of the machine models.
package workload

import (
	"fmt"
	"math/rand"

	"fleaflicker/internal/isa"
	"fleaflicker/internal/program"
)

// RandomConfig shapes generated programs.
type RandomConfig struct {
	// Iterations of the outer counted loop.
	Iterations int
	// BodyActions is the number of random actions per loop body.
	BodyActions int
	// ArrayBytes is the data footprint (rounded up to a power of two);
	// larger arrays produce more cache misses.
	ArrayBytes int
	// Calls enables random leaf-function calls.
	Calls bool
	// IndirectBranches enables computed two-way jumps through br.ind,
	// exercising the BTB and fetch-stall (no-prediction) paths. Programs
	// generated with this set cannot pass through sched.Schedule or
	// sched.IfConvert (indirect targets are not remappable).
	IndirectBranches bool
}

// DefaultRandomConfig returns a generator configuration that exercises
// loads, stores, predication, floating point, branches and calls with a
// footprint spilling the L1 cache.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{Iterations: 40, BodyActions: 30, ArrayBytes: 64 << 10, Calls: true}
}

// Random generates a deterministic pseudo-random program from seed. The
// program always terminates: its only backward branch is a counted loop, and
// every memory access is masked into the data array. Generated programs put
// one instruction per issue group; pass them through the sched package to
// exercise wider groups.
func Random(seed int64, cfg RandomConfig) *program.Program {
	rng := rand.New(rand.NewSource(seed))
	size := 1024
	for size < cfg.ArrayBytes {
		size <<= 1
	}
	mask := int32(size-1) &^ 7

	b := program.NewBuilder(fmt.Sprintf("random-%d", seed))
	const base = 0x1000_0000
	data := b.Data()
	for i := 0; i < size; i += 4 {
		data.WriteU32(uint32(base+i), rng.Uint32())
	}

	// Register conventions: r1-r20 working, r40-r42 address temps,
	// r50 array base, r60 loop counter, r63 link, f2-f9 working,
	// p1-p7 working, p15 loop predicate.
	intReg := func() isa.Reg { return isa.R(1 + rng.Intn(20)) }
	fpReg := func() isa.Reg { return isa.F(2 + rng.Intn(8)) }
	predReg := func() isa.Reg { return isa.P(1 + rng.Intn(7)) }
	emit := func(in isa.Inst) {
		b.Emit(in)
		b.Stop()
	}

	emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(50), Src1: isa.RegNone, Src2: isa.RegNone, Imm: base})
	emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(60), Src1: isa.RegNone, Src2: isa.RegNone, Imm: int32(cfg.Iterations)})
	for i := 1; i <= 20; i++ {
		emit(isa.Inst{Op: isa.OpMovI, Dst: isa.R(i), Src1: isa.RegNone, Src2: isa.RegNone, Imm: int32(rng.Uint32())})
	}
	for i := 2; i <= 9; i++ {
		emit(isa.Inst{Op: isa.OpI2F, Dst: isa.F(i), Src1: isa.R(1 + rng.Intn(20)), Src2: isa.RegNone})
	}

	// Leaf functions.
	nLeaves := 0
	if cfg.Calls {
		nLeaves = 2
		b.Br(isa.P(0), "main")
		b.Stop()
		for l := 0; l < nLeaves; l++ {
			b.Label(fmt.Sprintf("leaf%d", l))
			emit(isa.Inst{Op: isa.OpAddI, Dst: isa.R(30 + l), Src1: isa.R(30 + l), Src2: isa.RegNone, Imm: int32(l + 1)})
			emit(isa.Inst{Op: isa.OpXor, Dst: isa.R(32), Src1: isa.R(30 + l), Src2: isa.R(32)})
			emit(isa.Inst{Op: isa.OpBrRet, Dst: isa.RegNone, Src1: isa.R(63), Src2: isa.RegNone})
		}
		b.Label("main")
	}

	b.Label("top")
	// Pending forward-branch labels: label -> actions remaining.
	type pending struct {
		label string
		left  int
	}
	var pendings []pending
	nextLabel := 0
	addr := func() { // compute a masked in-array address into r40
		emit(isa.Inst{Op: isa.OpAndI, Dst: isa.R(40), Src1: intReg(), Src2: isa.RegNone, Imm: mask})
		emit(isa.Inst{Op: isa.OpAdd, Dst: isa.R(40), Src1: isa.R(40), Src2: isa.R(50)})
	}

	for a := 0; a < cfg.BodyActions; a++ {
		for i := 0; i < len(pendings); {
			if pendings[i].left <= 0 {
				b.Label(pendings[i].label)
				pendings = append(pendings[:i], pendings[i+1:]...)
				continue
			}
			pendings[i].left--
			i++
		}
		actions := 10
		if cfg.IndirectBranches {
			actions = 11
		}
		switch rng.Intn(actions) {
		case 0, 1: // three-operand ALU
			ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpMul, isa.OpShl, isa.OpSar}
			emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Dst: intReg(), Src1: intReg(), Src2: intReg()})
		case 2: // immediate ALU, possibly predicated
			ops := []isa.Op{isa.OpAddI, isa.OpAndI, isa.OpXorI, isa.OpShlI, isa.OpShrI}
			in := isa.Inst{Op: ops[rng.Intn(len(ops))], Dst: intReg(), Src1: intReg(), Src2: isa.RegNone, Imm: int32(rng.Intn(64))}
			if rng.Intn(3) == 0 {
				in.Pred = predReg()
			}
			emit(in)
		case 3: // compare
			ops := []isa.Op{isa.OpCmpEq, isa.OpCmpNe, isa.OpCmpLt, isa.OpCmpLtU, isa.OpCmpLe}
			emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Dst: predReg(), Src1: intReg(), Src2: intReg()})
		case 4, 5: // load (sometimes predicated)
			addr()
			in := isa.Inst{Op: isa.OpLd4, Dst: intReg(), Src1: isa.R(40), Src2: isa.RegNone, Imm: int32(rng.Intn(2) * 4)}
			if rng.Intn(4) == 0 {
				in.Pred = predReg()
			}
			emit(in)
		case 6: // store (sometimes predicated, sometimes sub-word)
			addr()
			op := isa.OpSt4
			if rng.Intn(3) == 0 {
				op = []isa.Op{isa.OpSt1, isa.OpSt2}[rng.Intn(2)]
			}
			in := isa.Inst{Op: op, Dst: isa.RegNone, Src1: isa.R(40), Src2: intReg(), Imm: int32(rng.Intn(2) * 4)}
			if rng.Intn(4) == 0 {
				in.Pred = predReg()
			}
			emit(in)
		case 7: // floating point
			switch rng.Intn(4) {
			case 0:
				emit(isa.Inst{Op: isa.OpFAdd, Dst: fpReg(), Src1: fpReg(), Src2: fpReg()})
			case 1:
				emit(isa.Inst{Op: isa.OpFMul, Dst: fpReg(), Src1: fpReg(), Src2: fpReg()})
			case 2:
				emit(isa.Inst{Op: isa.OpI2F, Dst: fpReg(), Src1: intReg(), Src2: isa.RegNone})
			case 3:
				emit(isa.Inst{Op: isa.OpFCmpLt, Dst: predReg(), Src1: fpReg(), Src2: fpReg()})
			}
		case 8: // data-dependent forward branch
			lbl := fmt.Sprintf("fwd%d", nextLabel)
			nextLabel++
			p := predReg()
			emit(isa.Inst{Op: isa.OpCmpLtU, Dst: p, Src1: intReg(), Src2: intReg()})
			b.Br(p, lbl)
			b.Stop()
			pendings = append(pendings, pending{lbl, 1 + rng.Intn(4)})
		case 9: // call a leaf
			if nLeaves > 0 {
				b.Call(isa.R(63), fmt.Sprintf("leaf%d", rng.Intn(nLeaves)))
				b.Stop()
			} else {
				emit(isa.Inst{Op: isa.OpAddI, Dst: intReg(), Src1: intReg(), Src2: isa.RegNone, Imm: 1})
			}
		case 10: // data-dependent indirect two-way jump (BTB exercise)
			aL := fmt.Sprintf("ind%dA", nextLabel)
			bL := fmt.Sprintf("ind%dB", nextLabel)
			jL := fmt.Sprintf("ind%dJ", nextLabel)
			nextLabel++
			p := predReg()
			emit(isa.Inst{Op: isa.OpAndI, Dst: isa.R(41), Src1: intReg(), Src2: isa.RegNone, Imm: 1})
			emit(isa.Inst{Op: isa.OpCmpEqI, Dst: p, Src1: isa.R(41), Src2: isa.RegNone, Imm: 0})
			b.MovLabel(isa.P(0), isa.R(42), aL)
			b.Stop()
			b.MovLabel(p, isa.R(42), bL)
			b.Stop()
			emit(isa.Inst{Op: isa.OpBrInd, Dst: isa.RegNone, Src1: isa.R(42), Src2: isa.RegNone})
			b.Label(aL)
			emit(isa.Inst{Op: isa.OpXorI, Dst: intReg(), Src1: intReg(), Src2: isa.RegNone, Imm: 3})
			b.Br(isa.P(0), jL)
			b.Stop()
			b.Label(bL)
			emit(isa.Inst{Op: isa.OpAddI, Dst: intReg(), Src1: intReg(), Src2: isa.RegNone, Imm: 5})
			b.Label(jL)
		}
	}
	for _, pend := range pendings {
		b.Label(pend.label)
	}
	// Fold the FP state into an integer so differential tests see it.
	emit(isa.Inst{Op: isa.OpFAdd, Dst: isa.F(2), Src1: isa.F(2), Src2: isa.F(3)})
	emit(isa.Inst{Op: isa.OpF2I, Dst: isa.R(33), Src1: isa.F(2), Src2: isa.RegNone})
	emit(isa.Inst{Op: isa.OpAddI, Dst: isa.R(60), Src1: isa.R(60), Src2: isa.RegNone, Imm: -1})
	emit(isa.Inst{Op: isa.OpCmpNeI, Dst: isa.P(15), Src1: isa.R(60), Src2: isa.RegNone, Imm: 0})
	b.Br(isa.P(15), "top")
	b.Stop()
	b.Halt()
	return b.MustBuild()
}
