package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"fleaflicker/internal/mem"
	"fleaflicker/internal/program"
	"fleaflicker/internal/sched"
)

// Benchmark is one suite entry: a synthetic kernel reproducing the
// memory/branch signature of the corresponding SPEC benchmark of Table 2.
type Benchmark struct {
	// Name is the SPEC benchmark whose signature the kernel mimics.
	Name string
	// Signature describes the behaviour the kernel reproduces and why it
	// matters to the paper's evaluation.
	Signature string

	build func() *program.Program

	once sync.Once
	prog *program.Program
}

// Program returns the (cached) assembled and scheduled kernel.
func (b *Benchmark) Program() *program.Program {
	b.once.Do(func() { b.prog = b.build() })
	return b.prog
}

// Suite returns the ten benchmarks of Table 2, in the paper's order.
// Programs are built lazily and cached; the slice itself is freshly
// allocated per call but the underlying benchmarks are shared.
func Suite() []*Benchmark {
	return suite
}

// ByName returns the named benchmark, or an error listing valid names.
func ByName(name string) (*Benchmark, error) {
	for _, b := range suite {
		if b.Name == name {
			return b, nil
		}
	}
	names := make([]string, len(suite))
	for i, b := range suite {
		names[i] = b.Name
	}
	sort.Strings(names)
	return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, names)
}

var suite = []*Benchmark{
	{Name: "099.go", Signature: "branchy integer search over a small board; data-dependent, hard-to-predict branches; L1-resident data", build: buildGo},
	{Name: "129.compress", Signature: "hash-table probes over an L2-resident dictionary; ubiquitous short (L1-miss) latencies absorbed by deferral", build: buildCompress},
	{Name: "130.li", Signature: "cons-cell list interpretation: tag-dispatch branches fed by loads, call/ret, small heap", build: buildLi},
	{Name: "175.vpr", Signature: "long dependent floating-point chains (fdiv) whose wholesale deferral makes this the paper's one net loss", build: buildVpr},
	{Name: "181.mcf", Signature: "network-simplex arc scan: streaming arc loads plus random node-potential loads missing to L2/L3/memory (the paper's case study)", build: buildMcf},
	{Name: "183.equake", Signature: "sparse matrix-vector FP kernel: many independent long misses the A-pipe overlaps", build: buildEquake},
	{Name: "197.parser", Signature: "dictionary hash-chain walks: short dependent pointer chains over an L2/L3-sized pool, branchy", build: buildParser},
	{Name: "254.gap", Signature: "dependent permutation loads p[q[i]] over a memory-sized footprint: most main-memory accesses start in the B-pipe", build: buildGap},
	{Name: "255.vortex", Signature: "object-database record copies: memory-port-heavy bursts, call-driven structure, L3-sized store", build: buildVortex},
	{Name: "300.twolf", Signature: "cell-swap evaluation: frequent L1 misses feeding branches whose late (B-DET) resolution offsets the memory gains", build: buildTwolf},
}

// assemble builds, schedules and returns a kernel, filling its data image
// via fill (which may be nil).
func assemble(name, src string, fill func(img *mem.Image, rng *rand.Rand)) *program.Program {
	p := program.MustAssemble(name, src)
	if fill != nil {
		fill(p.Data, rand.New(rand.NewSource(int64(len(name))*7919+42)))
	}
	return sched.MustSchedule(p, sched.DefaultConfig())
}
