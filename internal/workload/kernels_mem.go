package workload

import (
	"math/rand"

	"fleaflicker/internal/mem"
	"fleaflicker/internal/program"
)

// buildMcf reproduces the paper's 181.mcf case study (Figure 1): a network-
// simplex pricing scan over the arc array. Each arc supplies streaming loads
// (cost/head/tail) while the node-potential lookups index randomly into a
// 2MB node array, missing to L2/L3/memory. The reduced-cost comparison
// conditionally updates the arc — the consumer chain the paper shows
// stalling an issue-group machine. Two passes: the second re-walks the arcs
// with a warm mid-hierarchy, shifting stalls toward the L2-latency misses
// the paper highlights.
func buildMcf() *program.Program {
	const (
		arcBase   = 0x1000_0000
		nodeBase  = 0x1100_0000
		arcs      = 8192    // 16B each: 128KB
		nodeWords = 262_144 // 1MB: straddles the L3 with arcs and code
	)
	// The body is software-pipelined the way the paper's aggressive EPIC
	// compiler would schedule it: the head/tail indices of arc i+1 are
	// loaded one iteration early, so the node-potential loads of arc i
	// have ready addresses at A-pipe dispatch and their (long) misses are
	// initiated in the A-pipe and overlapped. The reduced-cost compute
	// chain keeps a realistic ALU share.
	src := `
        movi r40 = 3              // passes
        movi r12 = 0x11000000     // node potentials
        movi r20 = 0
        movi r21 = 0 ;;
pass:   movi r10 = 0x10000000     // arc cursor
        movi r11 = 0x1001FFF0     // last arc (software-pipeline epilogue)
        ld4 r5 = [r10, 4]         // prologue: head of arc 0
        ld4 r6 = [r10, 8]         // prologue: tail of arc 0
arc:    ld4 r24 = [r10, 20]       // head of NEXT arc (ready next iteration)
        ld4 r25 = [r10, 24]       // tail of NEXT arc
        ld4 r4 = [r10]            // cost of current arc
        shli r7 = r5, 2
        add r7 = r7, r12
        ld4 r8 = [r7]             // head potential: random 2MB, starts in A
        shli r9 = r6, 2
        add r9 = r9, r12
        ld4 r13 = [r9]            // tail potential: starts in A
        shli r14 = r21, 1         // basis bookkeeping (independent ALU work)
        xor r14 = r14, r20
        andi r15 = r14, 1023
        add r21 = r21, r15
        sub r16 = r4, r8
        add r16 = r16, r13        // reduced cost
        cmpi.lt p1 = r16, 0
        (p1) st4 [r10, 12] = r16  // price the arc into the basis
        (p1) addi r20 = r20, 1
        mov r5 = r24              // rotate the pipelined fields
        mov r6 = r25
        addi r10 = r10, 16
        cmp.ltu p15 = r10, r11
        (p15) br arc
        addi r40 = r40, -1
        cmpi.ne p14 = r40, 0
        (p14) br pass
        movi r30 = 0x12000000
        st4 [r30] = r20
        st4 [r30, 4] = r21
        halt ;;
`
	return assemble("181.mcf", src, func(img *mem.Image, rng *rand.Rand) {
		for i := 0; i < arcs; i++ {
			a := uint32(arcBase + i*16)
			img.WriteU32(a, uint32(rng.Intn(2000)-1000)) // cost
			img.WriteU32(a+4, uint32(rng.Intn(nodeWords)))
			img.WriteU32(a+8, uint32(rng.Intn(nodeWords)))
		}
		for i := 0; i < nodeWords; i += 128 {
			// Sparse init is enough: untouched words read zero, and the
			// cache behaviour depends only on addresses.
			img.WriteU32(uint32(nodeBase+i*4), rng.Uint32()%4096)
		}
	})
}

// buildGap reproduces 254.gap's signature: serial pointer chasing p[p[p[…]]]
// over a footprint far beyond the L3. Only the first hop of each chain has
// an address available early; every later hop depends on an outstanding
// main-memory miss and is deferred, so most of gap's substantial memory
// latency is initiated in the B-pipe — which is why the paper sees only a
// small improvement for it.
func buildGap() *program.Program {
	const (
		qBase  = 0x1000_0000
		pBase  = 0x1080_0000
		chains = 192       // chain starts
		hops   = 64        // serial hops per chain
		pWords = 1_048_576 // 4MB
	)
	src := `
        movi r10 = 0x10000000     // q cursor
        movi r11 = 0x10000300     // q end (192 * 4)
        movi r12 = 0x10800000     // p base
        movi r20 = 0 ;;
chain:  ld4 r4 = [r10]            // chain start (independent)
hop:    movi r14 = 64             // hops per chain
hloop:  andi r5 = r4, 0x3FFFFC
        add r5 = r5, r12
        ld4 r4 = [r5]             // p[x]: strictly serial pointer chase
        add r20 = r20, r4
        addi r14 = r14, -1
        cmpi.ne p1 = r14, 0
        (p1) br hloop
        addi r10 = r10, 4
        cmp.ltu p15 = r10, r11
        (p15) br chain
        movi r30 = 0x12000000
        st4 [r30] = r20
        halt ;;
`
	return assemble("254.gap", src, func(img *mem.Image, rng *rand.Rand) {
		for i := 0; i < chains; i++ {
			img.WriteU32(uint32(qBase+i*4), rng.Uint32())
		}
		for i := 0; i < pWords; i++ {
			img.WriteU32(uint32(pBase+i*4), rng.Uint32())
		}
	})
}
