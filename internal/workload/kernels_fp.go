package workload

import (
	"math"
	"math/rand"

	"fleaflicker/internal/mem"
	"fleaflicker/internal/program"
)

// buildEquake reproduces 183.equake's signature: a sparse matrix-vector
// product whose value/index streams and gathered x-vector elements generate
// many mutually independent L3/memory misses. The A-pipe starts nearly all
// of them, overlapping their latencies — the paper's clearest win.
func buildEquake() *program.Program {
	const (
		valBase = 0x1000_0000 // 8B floats, nnz entries
		colBase = 0x1040_0000 // 4B indices
		xBase   = 0x1080_0000 // 64K floats: 512KB
		yBase   = 0x10C0_0000
		rows    = 4096
		rowLen  = 8
		nnz     = rows * rowLen
		xWords  = 65_536
	)
	src := `
        movi r10 = 0x10000000     // val cursor
        movi r11 = 0x10400000     // col cursor
        movi r12 = 0x10800000     // x base
        movi r13 = 0x10C00000     // y cursor
        movi r14 = 4096           // rows
row:    fmul f6 = f6, f0          // sum = 0
        movi r15 = 8              // row length
elt:    ld4 r4 = [r11]            // column index (streaming)
        ldf f2 = [r10]            // matrix value  (streaming)
        shli r5 = r4, 3
        add r5 = r5, r12
        ldf f3 = [r5]             // x[col] gather (random 512KB)
        fmul f4 = f2, f3
        fadd f6 = f6, f4
        fmul f8 = f4, f4          // damping term (independent FP work)
        fadd f9 = f9, f8
        fsub f10 = f8, f4
        fmul f10 = f10, f2
        fadd f11 = f11, f10
        fadd f12 = f12, f8
        addi r10 = r10, 8
        addi r11 = r11, 4
        addi r15 = r15, -1
        cmpi.ne p1 = r15, 0
        (p1) br elt
        stf [r13] = f6
        addi r13 = r13, 8
        addi r14 = r14, -1
        cmpi.ne p15 = r14, 0
        (p15) br row
        halt ;;
`
	return assemble("183.equake", src, func(img *mem.Image, rng *rand.Rand) {
		for i := 0; i < nnz; i++ {
			img.WriteU32(uint32(colBase+i*4), uint32(rng.Intn(xWords)))
			img.WriteF64(uint32(valBase+i*8), randFloatBits(rng))
		}
		for i := 0; i < xWords; i += 8 {
			img.WriteF64(uint32(xBase+i*8), randFloatBits(rng))
		}
	})
}

// buildVpr reproduces 175.vpr's signature: long dependent floating-point
// chains (including fdiv) whose consumers follow within a few cycles, so the
// A-pipe defers nearly all of them; an FP-derived store address creates the
// deferred ambiguous stores behind vpr's store-conflict flushes. This is the
// paper's one benchmark that loses under two-pass pipelining.
func buildVpr() *program.Program {
	const (
		tblBase = 0x1000_0000 // 1.5K 8-byte floats: 12KB (L1-resident)
		outBase = 0x1100_0000
		tblN    = 1536
	)
	// Nearly every instruction hangs off a long floating-point chain whose
	// consumers follow within a few cycles, so the A-pipe defers the FP
	// instructions wholesale ("98% of its long-latency floating point
	// instructions, in chains"). A branch and an ambiguous store fed by the
	// chain add B-DET misprediction penalties and store-conflict flushes —
	// together the paper's one net loss.
	src := `
        movi r10 = 0x10000000     // cost table
        movi r30 = 0x11000000     // output scratch
        movi r2 = 55555           // xorshift state
        movi r3 = 22000           // iterations
        movi r20 = 0
        movi r21 = 0
        movi r22 = 0 ;;
loop:   shli r40 = r2, 13
        xor r2 = r2, r40
        shri r40 = r2, 17
        xor r2 = r2, r40
        shli r40 = r2, 5
        xor r2 = r2, r40
        shri r6 = r2, 9
        andi r6 = r6, 0x2FF8      // table index (8-byte aligned, 12KB)
        add r7 = r6, r10
        ldf f2 = [r7]             // channel cost
        ldf f3 = [r7, 8]          // neighbour cost
        fsub f4 = f2, f3          // the dependent FP chain
        fmul f5 = f4, f4
        fadd f6 = f6, f5
        fdiv f7 = f5, f2          // long divide
        fadd f7 = f7, f6
        fcmp.lt p1 = f5, f1       // FP-fed, data-dependent branch...
        (p1) br vless
        addi r20 = r20, 1
        br vjoin
vless:  addi r22 = r22, 1         // ...resolved at B-DET when deferred
vjoin:  f2i r8 = f5               // FP-derived store address
        shli r8 = r8, 2
        andi r8 = r8, 12
        add r9 = r8, r30
        st4 [r9] = r20            // deferred with unknown address
        ld4 r11 = [r30, 4]        // younger readback: frequent conflicts
        add r21 = r21, r11
        addi r3 = r3, -1
        cmpi.ne p15 = r3, 0
        (p15) br loop
        st4 [r30, 2048] = r21
        stf [r30, 2056] = f7
        halt ;;
`
	return assemble("175.vpr", src, func(img *mem.Image, rng *rand.Rand) {
		for i := 0; i < tblN; i++ {
			img.WriteF64(uint32(tblBase+i*8), randFloatBits(rng))
		}
	})
}

// randFloatBits returns the bits of a float in (0.5, 2.5), keeping FP chains
// well-conditioned (no overflow/underflow drift across thousands of
// accumulations).
func randFloatBits(rng *rand.Rand) uint64 {
	return math.Float64bits(0.5 + 2.0*rng.Float64())
}
