package workload

import (
	"math/rand"

	"fleaflicker/internal/mem"
	"fleaflicker/internal/program"
)

// buildGo reproduces 099.go's signature: branchy integer pattern matching
// over a small (L1-resident) board with data-dependent, hard-to-predict
// branch chains. Memory is nearly free; mispredictions dominate, so two-pass
// gains little and B-DET-resolved branches can hurt.
func buildGo() *program.Program {
	const (
		boardBase  = 0x1000_0000 // 1024 words: 4KB
		boardWords = 1024
		iters      = 20_000
	)
	src := `
        movi r1 = 0x10000000      // board
        movi r2 = 98765           // lcg state
        movi r3 = 20000           // iterations
        movi r20 = 0
        movi r21 = 0
        movi r22 = 0
        movi r23 = 0 ;;
main:   shli r40 = r2, 13
        xor r2 = r2, r40
        shri r40 = r2, 17
        xor r2 = r2, r40
        shli r40 = r2, 5
        xor r2 = r2, r40
        shri r6 = r2, 10
        andi r6 = r6, 0xFFC       // word index into the board
        add r7 = r6, r1
        ld4 r8 = [r7]             // stone at point (L1 hit)
        andi r9 = r8, 3
        cmpi.eq p1 = r9, 0
        (p1) br empty
        cmpi.eq p2 = r9, 1
        (p2) br black
        addi r22 = r22, 1         // white stone
        ld4 r10 = [r7, 4]         // neighbour
        andi r11 = r10, 3
        cmpi.eq p3 = r11, 1
        (p3) addi r23 = r23, 1    // contact point
        br join
black:  addi r21 = r21, 1
        ld4 r10 = [r7, 4]
        andi r11 = r10, 3
        cmpi.eq p4 = r11, 0
        (p4) addi r23 = r23, 1    // liberty
        br join
empty:  addi r20 = r20, 1
        andi r12 = r2, 63
        cmpi.eq p5 = r12, 0
        (p5) st4 [r7] = r9        // occasional play
join:   addi r3 = r3, -1
        cmpi.ne p15 = r3, 0
        (p15) br main
        movi r30 = 0x12000000
        st4 [r30] = r20
        st4 [r30, 4] = r21
        st4 [r30, 8] = r23
        halt ;;
`
	return assemble("099.go", src, func(img *mem.Image, rng *rand.Rand) {
		for i := 0; i < boardWords; i++ {
			img.WriteU32(uint32(boardBase+i*4), uint32(rng.Intn(3)))
		}
	})
}

// buildCompress reproduces 129.compress's signature: hash probes into an
// L2-resident dictionary, so nearly every iteration carries a short
// (L1-miss, L2-hit) latency with the consumer scheduled right behind it —
// the diffuse near-miss stalls two-pass absorbs.
func buildCompress() *program.Program {
	const (
		tblBase  = 0x1000_0000 // 32K words: 128KB (L2-resident)
		tblWords = 32_768
		iters    = 12_000
	)
	src := `
        movi r1 = 0x10000000      // hash table
        movi r2 = 31415           // lcg state
        movi r3 = 12000           // iterations
        movi r4 = 1               // current code
        movi r20 = 0
        movi r21 = 0 ;;
loop:   shli r40 = r2, 13
        xor r2 = r2, r40
        shri r40 = r2, 17
        xor r2 = r2, r40
        shli r40 = r2, 5
        xor r2 = r2, r40
        shri r6 = r2, 16
        andi r6 = r6, 255         // next character
        shli r7 = r4, 4
        xor r7 = r7, r6
        andi r7 = r7, 0x1FFFC     // hash, word aligned
        add r8 = r7, r1
        ld4 r9 = [r8]             // probe: L1 miss, L2 hit typically
        cmp.eq p1 = r9, r4
        (p1) addi r20 = r20, 1    // dictionary hit
        cmp.ne p2 = r9, r4
        (p2) st4 [r8] = r4        // insert new code
        add r4 = r4, r6
        andi r4 = r4, 65535
        shli r22 = r21, 3
        xor r22 = r22, r2
        shri r23 = r22, 7
        add r23 = r23, r21
        xor r24 = r23, r22
        andi r24 = r24, 8191
        add r21 = r21, r24
        addi r3 = r3, -1
        cmpi.ne p15 = r3, 0
        (p15) br loop
        movi r30 = 0x12000000
        st4 [r30] = r20
        st4 [r30, 4] = r21
        halt ;;
`
	return assemble("129.compress", src, func(img *mem.Image, rng *rand.Rand) {
		for i := 0; i < tblWords; i += 4 {
			img.WriteU32(uint32(tblBase+i*4), uint32(rng.Intn(65536)))
		}
	})
}

// buildLi reproduces 130.li's signature: cons-cell list walking with
// tag-dispatch branches fed directly by loads (late-resolving branches) and
// a call/ret-structured interpreter loop over a small heap.
func buildLi() *program.Program {
	const (
		cellBase = 0x1000_0000 // 4096 cells × 16B: 64KB
		headBase = 0x1010_0000 // 64 list heads
		cells    = 4096
		heads    = 64
		iters    = 2000
	)
	src := `
        movi r1 = 0x10100000      // list heads
        movi r2 = 24680           // lcg state
        movi r3 = 2000            // iterations
        movi r20 = 0
        movi r22 = 0 ;;
loop:   shli r40 = r2, 13
        xor r2 = r2, r40
        shri r40 = r2, 17
        xor r2 = r2, r40
        shli r40 = r2, 5
        xor r2 = r2, r40
        shri r6 = r2, 8
        andi r6 = r6, 0xFC        // head index (word aligned)
        add r7 = r6, r1
        ld4 r10 = [r7]            // list head pointer
        br.call r63 = walk
        shli r24 = r22, 3
        xor r24 = r24, r2
        shri r25 = r24, 7
        add r25 = r25, r22
        xor r26 = r25, r24
        andi r26 = r26, 8191
        add r22 = r22, r26
        addi r3 = r3, -1
        cmpi.ne p15 = r3, 0
        (p15) br loop
        movi r30 = 0x12000000
        st4 [r30] = r20
        st4 [r30, 4] = r22
        halt ;;

// walk sums a list: r10 = cell pointer, result accumulates into r20.
walk:   cmpi.eq p1 = r10, 0
        (p1) br.ret r63
wloop:  ld4 r11 = [r10]           // tag
        cmpi.eq p2 = r11, 1       // fixnum?
        (p2) ld4 r12 = [r10, 4]
        (p2) add r20 = r20, r12
        ld4 r10 = [r10, 8]        // cdr
        cmpi.ne p3 = r10, 0       // branch fed by the cdr load
        (p3) br wloop
        br.ret r63
`
	return assemble("130.li", src, func(img *mem.Image, rng *rand.Rand) {
		// Build `heads` disjoint chains threading randomly through the
		// cell pool, 6–14 cells each.
		perm := rng.Perm(cells)
		next := 0
		for h := 0; h < heads; h++ {
			n := 6 + rng.Intn(9)
			var first uint32
			var prev uint32
			for k := 0; k < n && next < len(perm); k++ {
				c := uint32(cellBase + perm[next]*16)
				next++
				img.WriteU32(c, uint32(1+rng.Intn(2)))  // tag: 1=fixnum, 2=symbol
				img.WriteU32(c+4, uint32(rng.Intn(99))) // value
				img.WriteU32(c+8, 0)                    // cdr (patched below)
				if prev != 0 {
					img.WriteU32(prev+8, c)
				} else {
					first = c
				}
				prev = c
			}
			img.WriteU32(uint32(headBase+h*4), first)
		}
	})
}

// buildParser reproduces 197.parser's signature: dictionary lookups walking
// short hash chains through a pool larger than the L2, with data-dependent
// match branches.
func buildParser() *program.Program {
	const (
		bucketBase = 0x1000_0000 // 64K buckets: 256KB
		nodeBase   = 0x1040_0000 // 64K nodes × 16B: 1MB
		buckets    = 65_536
		nodes      = 65_536
		iters      = 26_000
	)
	src := `
        movi r1 = 0x10000000      // buckets
        movi r2 = 1357            // lcg state
        movi r3 = 26000           // iterations
        movi r20 = 0
        movi r21 = 0
        movi r22 = 0 ;;
loop:   shli r40 = r2, 13
        xor r2 = r2, r40
        shri r40 = r2, 17
        xor r2 = r2, r40
        shli r40 = r2, 5
        xor r2 = r2, r40
        shri r6 = r2, 14
        andi r7 = r6, 0x3FFFC     // bucket (word aligned)
        add r7 = r7, r1
        ld4 r10 = [r7]            // chain head (L2/L3 miss)
chain:  cmpi.eq p1 = r10, 0
        (p1) br miss
        ld4 r11 = [r10]           // node word
        andi r12 = r6, 1023
        cmp.eq p2 = r11, r12      // match? (rarely)
        (p2) br found
        ld4 r10 = [r10, 8]        // next node (dependent chase)
        br chain
found:  ld4 r13 = [r10, 4]
        addi r13 = r13, 1
        st4 [r10, 4] = r13        // bump use count
        addi r20 = r20, 1
        br next
miss:   addi r21 = r21, 1
next:shli r24 = r22, 3
        xor r24 = r24, r2
        shri r25 = r24, 7
        add r25 = r25, r22
        xor r26 = r25, r24
        andi r26 = r26, 8191
        add r22 = r22, r26
        addi r3 = r3, -1
        cmpi.ne p15 = r3, 0
        (p15) br loop
        movi r30 = 0x12000000
        st4 [r30] = r20
        st4 [r30, 4] = r21
        st4 [r30, 8] = r22
        halt ;;
`
	return assemble("197.parser", src, func(img *mem.Image, rng *rand.Rand) {
		perm := rng.Perm(nodes)
		next := 0
		for b := 0; b < buckets && next < nodes; b += 2 { // half the buckets populated
			n := 1 + rng.Intn(3)
			var prev uint32
			for k := 0; k < n && next < nodes; k++ {
				c := uint32(nodeBase + perm[next]*16)
				next++
				img.WriteU32(c, uint32(rng.Intn(1024))) // word id
				img.WriteU32(c+8, 0)
				if prev == 0 {
					img.WriteU32(uint32(bucketBase+b*4), c)
				} else {
					img.WriteU32(prev+8, c)
				}
				prev = c
			}
		}
	})
}

// buildVortex reproduces 255.vortex's signature: object-database record
// insertion — bursts of back-to-back loads and stores copying 32-byte
// records through an L3-sized store, under a call-driven control structure.
func buildVortex() *program.Program {
	const (
		srcBase = 0x1000_0000 // 64K records x 16B: 1MB
		dstBase = 0x1080_0000 // 1MB
		records = 65_536
		iters   = 5000
	)
	src := `
        movi r1 = 0x10000000      // source pool
        movi r14 = 0x10800000     // destination store
        movi r2 = 8642            // lcg state
        movi r3 = 5000            // iterations
        movi r20 = 0
        movi r21 = 0 ;;
loop:   shli r40 = r2, 13
        xor r2 = r2, r40
        shri r40 = r2, 17
        xor r2 = r2, r40
        shli r40 = r2, 5
        xor r2 = r2, r40
        shri r6 = r2, 8
        andi r6 = r6, 0xFFFF0     // source record offset (16B aligned)
        add r10 = r6, r1
        shri r7 = r2, 20
        andi r7 = r7, 0xFFFF0     // destination slot
        add r11 = r7, r14
        br.call r63 = copyrec
        andi r26 = r20, 7
        cmpi.eq p6 = r26, 0
        (p6) xor r21 = r21, r41   // every 8th record folds into the directory
        addi r20 = r20, 1
        shli r22 = r21, 3
        xor r22 = r22, r2
        shri r23 = r22, 7
        add r23 = r23, r21
        xor r24 = r23, r22
        andi r24 = r24, 8191
        add r21 = r21, r24
        addi r3 = r3, -1
        cmpi.ne p15 = r3, 0
        (p15) br loop
        movi r30 = 0x12000000
        st4 [r30] = r20
        st4 [r30, 4] = r21
        halt ;;

// copyrec copies a 16-byte record from [r10] to [r11], checksumming it.
copyrec: ld4 r40 = [r10]
        ld4 r41 = [r10, 4]
        ld4 r42 = [r10, 8]
        ld4 r43 = [r10, 12]
        st4 [r11] = r40
        st4 [r11, 4] = r41
        st4 [r11, 8] = r42
        add r48 = r40, r41
        add r49 = r42, r43
        add r48 = r48, r49        // record checksum
        st4 [r11, 12] = r48
        br.ret r63
`
	return assemble("255.vortex", src, func(img *mem.Image, rng *rand.Rand) {
		for i := 0; i < records; i += 2 {
			img.WriteU32(uint32(srcBase+i*16), rng.Uint32())
			img.WriteU32(uint32(srcBase+i*16+8), rng.Uint32())
		}
	})
}

// buildTwolf reproduces 300.twolf's signature: cell-swap cost evaluation
// over an L1-spilling working set, where loads feed comparisons feeding
// branches — late (B-DET) branch resolution eats into the memory-stall
// savings, the paper's "offset by front end stall" case.
func buildTwolf() *program.Program {
	const (
		cellBase  = 0x1000_0000 // 16K words: 64KB
		cellWords = 16_384
		iters     = 6000
	)
	src := `
        movi r1 = 0x10000000      // cell costs
        movi r2 = 11223           // lcg state
        movi r3 = 6000            // iterations
        movi r20 = 0
        movi r21 = 0
        movi r22 = 0 ;;
loop:   shli r40 = r2, 13
        xor r2 = r2, r40
        shri r40 = r2, 17
        xor r2 = r2, r40
        shli r40 = r2, 5
        xor r2 = r2, r40
        shri r6 = r2, 7
        andi r6 = r6, 0xFFFC      // cell a (word aligned, 64KB)
        add r7 = r6, r1
        shri r8 = r2, 18
        andi r8 = r8, 0xFFFC      // cell b
        add r9 = r8, r1
        ld4 r10 = [r7]            // cost a (L1 miss, L2 hit often)
        ld4 r11 = [r9]            // cost b
        cmp.lt p1 = r10, r11      // fed by the loads...
        (p1) br swap              // ...resolves at B-DET when they miss
        addi r20 = r20, 1
        br join
swap:   st4 [r7] = r11
        st4 [r9] = r10
        addi r21 = r21, 1
join:shli r24 = r22, 3
        xor r24 = r24, r2
        shri r25 = r24, 7
        add r25 = r25, r22
        xor r26 = r25, r24
        andi r26 = r26, 8191
        add r22 = r22, r26
        addi r3 = r3, -1
        cmpi.ne p15 = r3, 0
        (p15) br loop
        movi r30 = 0x12000000
        st4 [r30] = r20
        st4 [r30, 4] = r21
        st4 [r30, 8] = r22
        halt ;;
`
	return assemble("300.twolf", src, func(img *mem.Image, rng *rand.Rand) {
		for i := 0; i < cellWords; i++ {
			img.WriteU32(uint32(cellBase+i*4), uint32(rng.Intn(100000)))
		}
	})
}
