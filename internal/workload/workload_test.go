package workload

import (
	"testing"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/baseline"
	"fleaflicker/internal/isa"
	"fleaflicker/internal/twopass"
)

func TestSuiteNamesAndOrder(t *testing.T) {
	want := []string{
		"099.go", "129.compress", "130.li", "175.vpr", "181.mcf",
		"183.equake", "197.parser", "254.gap", "255.vortex", "300.twolf",
	}
	s := Suite()
	if len(s) != len(want) {
		t.Fatalf("suite has %d entries, want %d", len(s), len(want))
	}
	for i, b := range s {
		if b.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, b.Name, want[i])
		}
		if b.Signature == "" {
			t.Errorf("%s has no signature description", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("181.mcf")
	if err != nil || b.Name != "181.mcf" {
		t.Errorf("ByName(181.mcf) = %v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Errorf("ByName(nope) should fail")
	}
}

func TestKernelsValidateAndTerminate(t *testing.T) {
	fus := [isa.NumFUClasses]int{isa.ClassALU: 5, isa.ClassMEM: 3, isa.ClassFP: 3, isa.ClassBR: 3}
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.Program()
			if err := p.Validate(8, fus); err != nil {
				t.Fatalf("validate: %v", err)
			}
			r, err := arch.Run(p, 5_000_000)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if r.Instructions < 20_000 {
				t.Errorf("kernel too small: %d dynamic instructions", r.Instructions)
			}
			if r.Loads == 0 || r.Branches == 0 {
				t.Errorf("kernel missing loads (%d) or branches (%d)", r.Loads, r.Branches)
			}
			t.Logf("%s: %d instructions, %d loads, %d stores, %d branches",
				b.Name, r.Instructions, r.Loads, r.Stores, r.Branches)
		})
	}
}

// The suite-wide correctness gate: every kernel produces identical
// architectural state on the reference executor, the baseline machine, and
// the two-pass machine (with and without regrouping).
func TestKernelsEquivalentAcrossMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite equivalence is slow")
	}
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p := b.Program()
			ref, err := arch.Run(p, 5_000_000)
			if err != nil {
				t.Fatal(err)
			}
			bm, err := baseline.New(baseline.DefaultConfig(), p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := bm.Run(); err != nil {
				t.Fatal(err)
			}
			if !bm.State().Equal(ref.State) {
				t.Fatalf("baseline diverges: %s", bm.State().Diff(ref.State))
			}
			for _, regroup := range []bool{false, true} {
				cfg := twopass.DefaultConfig()
				cfg.Regroup = regroup
				tm, err := twopass.New(cfg, p)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := tm.Run(); err != nil {
					t.Fatal(err)
				}
				if !tm.State().Equal(ref.State) {
					t.Fatalf("two-pass (regroup=%v) diverges: %s", regroup, tm.State().Diff(ref.State))
				}
			}
		})
	}
}

func TestRandomProgramsTerminate(t *testing.T) {
	for seed := int64(400); seed < 404; seed++ {
		p := Random(seed, DefaultRandomConfig())
		if _, err := arch.Run(p, 10_000_000); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(9, DefaultRandomConfig())
	b := Random(9, DefaultRandomConfig())
	if len(a.Insts) != len(b.Insts) {
		t.Fatalf("same seed produced different programs")
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("same seed differs at instruction %d", i)
		}
	}
}
