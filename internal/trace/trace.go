// Package trace is the cycle-level observability layer: a structured event
// stream emitted from inside every machine model. Each mechanism of the
// paper has an event type — baseline dispatch and stall, A-pipe deferral and
// pre-execution, coupling-queue enqueue/dequeue, B-pipe merge and replay,
// ALAT conflicts, flushes, B→A feedback repair, and branch resolution at
// A-DET/B-DET — so a run can be replayed event by event instead of read only
// through end-of-run aggregates.
//
// Events flow through a Sink. The package ships three: an in-memory ring
// buffer (RingSink), a line-delimited JSON writer (JSONLSink), and a Chrome
// trace_event exporter (ChromeSink) whose output opens directly in
// about:tracing or Perfetto with one track per pipe stage.
//
// Tracing is zero-overhead when disabled: machines hold a *Tracer that is
// nil by default, and every emission site is guarded by Enabled(), which is
// a nil check. No event is constructed, and no instruction is formatted,
// unless a sink is attached.
package trace

import (
	"encoding/json"
	"fmt"
)

// EventType classifies one pipeline event. The types map one-to-one onto
// the paper's mechanisms (see DESIGN.md, "Observability").
type EventType uint8

// The event vocabulary.
const (
	// EvDispatch: an architectural pipe dispatched an instruction
	// (baseline machine, and the run-ahead machine's normal mode).
	EvDispatch EventType = iota
	// EvStall: a pipe could not dispatch this cycle. Arg is the
	// stats.CycleClass; Note is its name.
	EvStall
	// EvDefer: the A-pipe suppressed an instruction with unready operands
	// and passed it to the B-pipe (§3.2 poison-bit deferral).
	EvDefer
	// EvPreExec: the A-pipe completed (or initiated, for loads) an
	// instruction ahead of the architectural pass. For loads, Arg is the
	// mem.Level that served the access. Also used for the run-ahead
	// machine's speculative instructions.
	EvPreExec
	// EvCQEnqueue: the A-pipe appended an issue group to the coupling
	// queue. Arg is the group size in instructions.
	EvCQEnqueue
	// EvCQDequeue: the B-pipe accepted a dispatch set from the coupling
	// queue. Arg is the set size (larger than one fetch group only when
	// the 2Pre regrouper merged groups).
	EvCQDequeue
	// EvMerge: the B-pipe retired a pre-executed instruction by merging
	// its A-pipe result (the MRG stage).
	EvMerge
	// EvReplay: the B-pipe executed a deferred instruction with ordinary
	// in-order semantics.
	EvReplay
	// EvALATConflict: a pre-executed load failed its ALAT check at merge
	// (§3.4); an EvFlush follows in the same cycle. Arg is the address.
	EvALATConflict
	// EvFlush: speculative state was squashed. ID is the first squashed
	// dynamic instruction; Arg is the PC fetch restarts at.
	EvFlush
	// EvFeedback: a B-pipe retirement repaired an A-file entry over the
	// B→A feedback path (§3.5). Arg is the register number.
	EvFeedback
	// EvBranchResolve: a branch resolved — at A-DET when Pipe is PipeA,
	// at B-DET when Pipe is PipeB. Arg is 1 for a misprediction, 0 for a
	// correct prediction.
	EvBranchResolve
	// EvRunaheadEnter: the run-ahead comparator checkpointed and entered
	// run-ahead mode under a load stall. Arg is the cycle the blocking
	// load returns.
	EvRunaheadEnter
	// EvRunaheadExit: run-ahead mode ended; the checkpoint is restored.
	EvRunaheadExit
	NumEventTypes
)

var eventNames = [NumEventTypes]string{
	EvDispatch:      "dispatch",
	EvStall:         "stall",
	EvDefer:         "defer",
	EvPreExec:       "preexec",
	EvCQEnqueue:     "cq_enqueue",
	EvCQDequeue:     "cq_dequeue",
	EvMerge:         "merge",
	EvReplay:        "replay",
	EvALATConflict:  "alat_conflict",
	EvFlush:         "flush",
	EvFeedback:      "feedback",
	EvBranchResolve: "branch_resolve",
	EvRunaheadEnter: "runahead_enter",
	EvRunaheadExit:  "runahead_exit",
}

func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// MarshalJSON serializes the type as its name, keeping JSONL traces
// readable and stable even if the enum is ever reordered.
func (t EventType) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON accepts an event-type name.
func (t *EventType) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range eventNames {
		if name == s {
			*t = EventType(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown event type %q", s)
}

// Pipe identifies the pipeline track an event belongs to. The baseline
// machine dispatches on PipeA; the run-ahead machine uses PipeA for its
// architectural mode and PipeB for speculative run-ahead execution.
type Pipe uint8

// The tracks.
const (
	PipeFront Pipe = iota
	PipeA
	PipeB
	NumTracks
)

func (p Pipe) String() string {
	switch p {
	case PipeFront:
		return "front"
	case PipeA:
		return "A"
	case PipeB:
		return "B"
	}
	return "?"
}

// MarshalJSON serializes the pipe as its track name.
func (p Pipe) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON accepts a track name.
func (p *Pipe) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for q := Pipe(0); q < NumTracks; q++ {
		if q.String() == s {
			*p = q
			return nil
		}
	}
	return fmt.Errorf("trace: unknown pipe %q", s)
}

// Event is one cycle-stamped pipeline event. ID and PC identify the dynamic
// instruction involved (zero/-1 when the event is not per-instruction); Arg
// carries the per-type detail documented on each EventType; Note is an
// optional human-readable annotation (typically the instruction text).
type Event struct {
	Cycle int64     `json:"cycle"`
	Type  EventType `json:"type"`
	Pipe  Pipe      `json:"pipe"`
	ID    uint64    `json:"id,omitempty"`
	PC    int32     `json:"pc"`
	Arg   int64     `json:"arg,omitempty"`
	Note  string    `json:"note,omitempty"`
}

// Sink receives the event stream. Implementations must be safe for
// concurrent use: experiments.RunSuite runs machines in parallel and a
// single sink may be attached to several of them.
type Sink interface {
	Emit(Event)
	// Close flushes buffered output and finalizes the sink's format. A
	// sink is owned by its creator, not by the machines emitting into it.
	Close() error
}

// Tracer is the per-machine handle to a sink. A nil *Tracer is valid and
// means tracing is disabled; both methods are nil-safe so machines carry a
// plain field with no indirection on the disabled path.
type Tracer struct {
	sink Sink
}

// New returns a tracer over sink, or nil (disabled) when sink is nil.
func New(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// Enabled reports whether events reach a sink. Emission sites guard event
// construction with it so the disabled path costs one nil check.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit forwards one event to the sink; a no-op on a nil tracer.
func (t *Tracer) Emit(e Event) {
	if t != nil {
		t.sink.Emit(e)
	}
}

// FuncSink adapts a function into a Sink (for CLIs and tests). The function
// itself must be safe for concurrent calls if the sink is shared.
type FuncSink func(Event)

// Emit calls the wrapped function.
func (f FuncSink) Emit(e Event) { f(e) }

// Close is a no-op.
func (f FuncSink) Close() error { return nil }
