package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// RingSink keeps the most recent events in a fixed-capacity ring buffer —
// the "flight recorder" pattern: attach it permanently, read it only when
// something interesting happened.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	count int
}

// NewRingSink returns a ring holding the last capacity events.
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, capacity)}
}

// Emit records one event, evicting the oldest when full.
func (r *RingSink) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *RingSink) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Len returns the number of retained events.
func (r *RingSink) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Close is a no-op; the ring stays readable after Close.
func (r *RingSink) Close() error { return nil }

// JSONLSink writes one JSON object per event, one per line — the stable
// machine-readable format the golden-trace tests pin.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing to w. The caller owns w; Close
// flushes but does not close it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one line. The first write error is retained and returned by
// Close; later events are dropped.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(e)
	}
	s.mu.Unlock()
}

// Close flushes buffered lines and reports the first write error.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// ChromeSink exports the run in the Chrome trace_event JSON format, so it
// opens directly in about:tracing or https://ui.perfetto.dev. Each Pipe
// becomes one named thread track; each event becomes a one-cycle "complete"
// slice (1 cycle = 1 µs of trace time).
type ChromeSink struct {
	mu    sync.Mutex
	w     *bufio.Writer
	first bool
	err   error
}

// NewChromeSink returns a sink writing a complete trace_event document to
// w. The caller owns w; Close finalizes the JSON and flushes.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriter(w), first: true}
	s.writeHeader()
	return s
}

func (s *ChromeSink) writeHeader() {
	_, err := s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	if err != nil {
		s.err = err
		return
	}
	// Name the process and the per-pipe tracks up front so the viewer
	// shows "front end / A-pipe / B-pipe" instead of bare thread ids.
	meta := []string{
		`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"fleaflicker"}}`,
		`{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"front end"}}`,
		`{"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"A-pipe"}}`,
		`{"name":"thread_name","ph":"M","pid":0,"tid":2,"args":{"name":"B-pipe"}}`,
		`{"name":"thread_sort_index","ph":"M","pid":0,"tid":0,"args":{"sort_index":0}}`,
		`{"name":"thread_sort_index","ph":"M","pid":0,"tid":1,"args":{"sort_index":1}}`,
		`{"name":"thread_sort_index","ph":"M","pid":0,"tid":2,"args":{"sort_index":2}}`,
	}
	for _, m := range meta {
		if !s.first {
			s.w.WriteByte(',')
		}
		s.first = false
		if _, err := s.w.WriteString(m); err != nil {
			s.err = err
			return
		}
	}
}

// Emit appends one trace_event slice.
func (s *ChromeSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if !s.first {
		s.w.WriteByte(',')
	}
	s.first = false
	// args carries the raw event fields; quote Note through the JSON
	// encoder since instruction text contains brackets and commas.
	note, _ := json.Marshal(e.Note)
	_, s.err = fmt.Fprintf(s.w,
		`{"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":1,"pid":0,"tid":%d,"args":{"id":%d,"pc":%d,"arg":%d,"note":%s}}`,
		e.Type.String(), e.Pipe.String(), e.Cycle, int(e.Pipe), e.ID, e.PC, e.Arg, note)
}

// Close terminates the JSON document and flushes.
func (s *ChromeSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if _, err := s.w.WriteString("]}\n"); err != nil {
		return err
	}
	return s.w.Flush()
}
