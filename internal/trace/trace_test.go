package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestEventTypeAndPipeStrings(t *testing.T) {
	for ty := EventType(0); ty < NumEventTypes; ty++ {
		if s := ty.String(); s == "" || strings.HasPrefix(s, "event(") {
			t.Errorf("EventType(%d) has no name", ty)
		}
	}
	if EventType(200).String() != "event(200)" {
		t.Errorf("unknown event type string")
	}
	want := map[Pipe]string{PipeFront: "front", PipeA: "A", PipeB: "B", Pipe(9): "?"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Pipe(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestNilTracerIsDisabledAndSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(Event{Type: EvDefer}) // must not panic
	if New(nil) != nil {
		t.Fatal("New(nil) should return a nil (disabled) tracer")
	}
	if !New(NewRingSink(4)).Enabled() {
		t.Fatal("tracer over a sink should be enabled")
	}
}

func TestFuncSink(t *testing.T) {
	var got []Event
	s := FuncSink(func(e Event) { got = append(got, e) })
	tr := New(s)
	tr.Emit(Event{Cycle: 3, Type: EvMerge, Pipe: PipeB})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Cycle != 3 || got[0].Type != EvMerge {
		t.Fatalf("got %+v", got)
	}
}

func TestRingSinkWraparound(t *testing.T) {
	r := NewRingSink(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Cycle: int64(i)})
	}
	ev := r.Events()
	if r.Len() != 3 || len(ev) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != int64(i+2) {
			t.Errorf("event %d has cycle %d, want %d (oldest-first)", i, e.Cycle, i+2)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Error("ring should stay readable after Close")
	}
}

func TestRingSinkDegenerateCapacity(t *testing.T) {
	r := NewRingSink(0)
	r.Emit(Event{Cycle: 1})
	r.Emit(Event{Cycle: 2})
	if ev := r.Events(); len(ev) != 1 || ev[0].Cycle != 2 {
		t.Fatalf("capacity<1 should clamp to 1, got %v", ev)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{Cycle: 7, Type: EvDefer, Pipe: PipeA, ID: 42, PC: 5, Note: "add r1 = r2, r3"})
	s.Emit(Event{Cycle: 8, Type: EvFlush, Pipe: PipeB, ID: 43, Arg: 17})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d:\n%s", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if e.Cycle != 7 || e.Type != EvDefer || e.ID != 42 || e.Note == "" {
		t.Errorf("round-trip lost fields: %+v", e)
	}
}

func TestChromeSinkProducesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.Emit(Event{Cycle: 1, Type: EvDefer, Pipe: PipeA, ID: 9, PC: 3, Note: `ld4 r2 = [r1]`})
	s.Emit(Event{Cycle: 2, Type: EvMerge, Pipe: PipeB, ID: 9, PC: 3})
	s.Emit(Event{Cycle: 3, Type: EvFlush, Pipe: PipeB, ID: 10, Arg: 12})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"defer", "merge", "flush", "thread_name"} {
		if !names[want] {
			t.Errorf("chrome trace missing %q events; have %v", want, names)
		}
	}
}

// TestSinksAreConcurrencySafe hammers each sink from several goroutines —
// the shape experiments.RunSuite produces when a sink is shared. Run under
// -race this is the safety assertion the acceptance criteria require.
func TestSinksAreConcurrencySafe(t *testing.T) {
	var chromeBuf, jsonlBuf bytes.Buffer
	sinks := []Sink{
		NewRingSink(64),
		NewJSONLSink(&jsonlBuf),
		NewChromeSink(&chromeBuf),
	}
	for _, s := range sinks {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					s.Emit(Event{Cycle: int64(i), Type: EvPreExec, Pipe: Pipe(g % 3), ID: uint64(g)})
				}
			}(g)
		}
		wg.Wait()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chromeBuf.Bytes(), &doc); err != nil {
		t.Fatalf("concurrent chrome trace corrupted: %v", err)
	}
	if len(doc.TraceEvents) < 1600 {
		t.Errorf("chrome trace dropped events: %d", len(doc.TraceEvents))
	}
}
