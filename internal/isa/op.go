package isa

// Op identifies an operation.
type Op uint8

// Operations. Arithmetic is ILP32: integer results are truncated to 32 bits.
const (
	OpNop Op = iota

	// Integer ALU (class ALU, latency 1 unless noted).
	OpAdd  // Dst = Src1 + Src2
	OpSub  // Dst = Src1 - Src2
	OpAddI // Dst = Src1 + Imm
	OpAnd  // Dst = Src1 & Src2
	OpAndI // Dst = Src1 & Imm
	OpOr   // Dst = Src1 | Src2
	OpOrI  // Dst = Src1 | Imm
	OpXor  // Dst = Src1 ^ Src2
	OpXorI // Dst = Src1 ^ Imm
	OpShl  // Dst = Src1 << (Src2 & 31)
	OpShlI // Dst = Src1 << (Imm & 31)
	OpShr  // Dst = Src1 >> (Src2 & 31)   (logical)
	OpShrI // Dst = Src1 >> (Imm & 31)    (logical)
	OpSar  // Dst = int32(Src1) >> (Src2 & 31) (arithmetic)
	OpSarI // Dst = int32(Src1) >> (Imm & 31)
	OpMul  // Dst = Src1 * Src2 (latency 3)
	OpMovI // Dst = Imm
	OpMov  // Dst = Src1 (conditional moves are expressed with predication)

	// Integer compares writing a predicate register (class ALU, latency 1).
	OpCmpEq  // PDst = (Src1 == Src2)
	OpCmpNe  // PDst = (Src1 != Src2)
	OpCmpLt  // PDst = (int32(Src1) < int32(Src2))
	OpCmpLe  // PDst = (int32(Src1) <= int32(Src2))
	OpCmpLtU // PDst = (Src1 < Src2) unsigned
	OpCmpLeU // PDst = (Src1 <= Src2) unsigned
	OpCmpEqI // PDst = (Src1 == Imm)
	OpCmpNeI // PDst = (Src1 != Imm)
	OpCmpLtI // PDst = (int32(Src1) < Imm)
	OpCmpLeI // PDst = (int32(Src1) <= Imm)

	// Memory (class MEM). Effective address = Src1 + Imm. Loads have a
	// variable latency determined by the cache hierarchy (2 cycles on an
	// L1D hit). Store data is Src2.
	OpLd1 // Dst = zx8(mem[ea])
	OpLd2 // Dst = zx16(mem[ea])
	OpLd4 // Dst = mem[ea]
	OpLdF // FDst = float64(mem[ea]) — 8-byte FP load
	OpSt1 // mem[ea] = Src2 & 0xFF
	OpSt2 // mem[ea] = Src2 & 0xFFFF
	OpSt4 // mem[ea] = Src2
	OpStF // mem[ea] = FSrc2 — 8-byte FP store

	// Floating point (class FP, latency 4 unless noted).
	OpFAdd   // FDst = FSrc1 + FSrc2
	OpFSub   // FDst = FSrc1 - FSrc2
	OpFMul   // FDst = FSrc1 * FSrc2
	OpFDiv   // FDst = FSrc1 / FSrc2 (latency 20)
	OpFNeg   // FDst = -FSrc1
	OpFCmpLt // PDst = (FSrc1 < FSrc2)
	OpFCmpLe // PDst = (FSrc1 <= FSrc2)
	OpFCmpEq // PDst = (FSrc1 == FSrc2)
	OpI2F    // FDst = float64(int32(Src1))
	OpF2I    // Dst = int32(FSrc1)

	// Branches (class BR, latency 1). Direction of OpBr is governed by the
	// qualifying predicate like any other instruction: a predicated-off
	// branch falls through.
	OpBr     // goto Target
	OpBrCall // Dst = return address (next PC); goto Target
	OpBrRet  // goto Src1 (indirect)
	OpBrInd  // goto Src1 (indirect)

	// OpHalt terminates the program (class BR).
	OpHalt

	numOps
)

// FUClass is the functional-unit class an operation executes on.
type FUClass uint8

// Functional unit classes, matching Table 1 of the paper
// (5 ALU, 3 Memory, 3 FP, 3 Branch on an 8-issue machine).
const (
	ClassALU FUClass = iota
	ClassMEM
	ClassFP
	ClassBR
	NumFUClasses
)

func (c FUClass) String() string {
	switch c {
	case ClassALU:
		return "ALU"
	case ClassMEM:
		return "MEM"
	case ClassFP:
		return "FP"
	case ClassBR:
		return "BR"
	}
	return "?"
}

type opInfo struct {
	name    string
	class   FUClass
	latency int // fixed latency; loads are dynamic (this is the assumed L1-hit latency)
	isLoad  bool
	isStore bool
	isBr    bool
	memSize int // bytes accessed, 0 for non-memory
}

var opTable = [numOps]opInfo{
	OpNop:    {"nop", ClassALU, 1, false, false, false, 0},
	OpAdd:    {"add", ClassALU, 1, false, false, false, 0},
	OpSub:    {"sub", ClassALU, 1, false, false, false, 0},
	OpAddI:   {"addi", ClassALU, 1, false, false, false, 0},
	OpAnd:    {"and", ClassALU, 1, false, false, false, 0},
	OpAndI:   {"andi", ClassALU, 1, false, false, false, 0},
	OpOr:     {"or", ClassALU, 1, false, false, false, 0},
	OpOrI:    {"ori", ClassALU, 1, false, false, false, 0},
	OpXor:    {"xor", ClassALU, 1, false, false, false, 0},
	OpXorI:   {"xori", ClassALU, 1, false, false, false, 0},
	OpShl:    {"shl", ClassALU, 1, false, false, false, 0},
	OpShlI:   {"shli", ClassALU, 1, false, false, false, 0},
	OpShr:    {"shr", ClassALU, 1, false, false, false, 0},
	OpShrI:   {"shri", ClassALU, 1, false, false, false, 0},
	OpSar:    {"sar", ClassALU, 1, false, false, false, 0},
	OpSarI:   {"sari", ClassALU, 1, false, false, false, 0},
	OpMul:    {"mul", ClassALU, 3, false, false, false, 0},
	OpMovI:   {"movi", ClassALU, 1, false, false, false, 0},
	OpMov:    {"mov", ClassALU, 1, false, false, false, 0},
	OpCmpEq:  {"cmp.eq", ClassALU, 1, false, false, false, 0},
	OpCmpNe:  {"cmp.ne", ClassALU, 1, false, false, false, 0},
	OpCmpLt:  {"cmp.lt", ClassALU, 1, false, false, false, 0},
	OpCmpLe:  {"cmp.le", ClassALU, 1, false, false, false, 0},
	OpCmpLtU: {"cmp.ltu", ClassALU, 1, false, false, false, 0},
	OpCmpLeU: {"cmp.leu", ClassALU, 1, false, false, false, 0},
	OpCmpEqI: {"cmpi.eq", ClassALU, 1, false, false, false, 0},
	OpCmpNeI: {"cmpi.ne", ClassALU, 1, false, false, false, 0},
	OpCmpLtI: {"cmpi.lt", ClassALU, 1, false, false, false, 0},
	OpCmpLeI: {"cmpi.le", ClassALU, 1, false, false, false, 0},
	OpLd1:    {"ld1", ClassMEM, 2, true, false, false, 1},
	OpLd2:    {"ld2", ClassMEM, 2, true, false, false, 2},
	OpLd4:    {"ld4", ClassMEM, 2, true, false, false, 4},
	OpLdF:    {"ldf", ClassMEM, 2, true, false, false, 8},
	OpSt1:    {"st1", ClassMEM, 1, false, true, false, 1},
	OpSt2:    {"st2", ClassMEM, 1, false, true, false, 2},
	OpSt4:    {"st4", ClassMEM, 1, false, true, false, 4},
	OpStF:    {"stf", ClassMEM, 1, false, true, false, 8},
	OpFAdd:   {"fadd", ClassFP, 4, false, false, false, 0},
	OpFSub:   {"fsub", ClassFP, 4, false, false, false, 0},
	OpFMul:   {"fmul", ClassFP, 4, false, false, false, 0},
	OpFDiv:   {"fdiv", ClassFP, 20, false, false, false, 0},
	OpFNeg:   {"fneg", ClassFP, 4, false, false, false, 0},
	OpFCmpLt: {"fcmp.lt", ClassFP, 4, false, false, false, 0},
	OpFCmpLe: {"fcmp.le", ClassFP, 4, false, false, false, 0},
	OpFCmpEq: {"fcmp.eq", ClassFP, 4, false, false, false, 0},
	OpI2F:    {"i2f", ClassFP, 4, false, false, false, 0},
	OpF2I:    {"f2i", ClassFP, 4, false, false, false, 0},
	OpBr:     {"br", ClassBR, 1, false, false, true, 0},
	OpBrCall: {"br.call", ClassBR, 1, false, false, true, 0},
	OpBrRet:  {"br.ret", ClassBR, 1, false, false, true, 0},
	OpBrInd:  {"br.ind", ClassBR, 1, false, false, true, 0},
	OpHalt:   {"halt", ClassBR, 1, false, false, false, 0},
}

// Valid reports whether op is a defined operation.
func (op Op) Valid() bool { return op < numOps }

// Name returns the assembly mnemonic.
func (op Op) Name() string { return opTable[op].name }

func (op Op) String() string { return opTable[op].name }

// Class returns the functional-unit class.
func (op Op) Class() FUClass { return opTable[op].class }

// Latency returns the fixed execution latency in cycles. For loads this is
// the compiler-assumed L1D hit latency; actual latency is determined by the
// memory hierarchy at run time.
func (op Op) Latency() int { return opTable[op].latency }

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return opTable[op].isLoad }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return opTable[op].isStore }

// IsBranch reports whether op can redirect control flow.
func (op Op) IsBranch() bool { return opTable[op].isBr }

// MemSize returns the access width in bytes (0 for non-memory operations).
func (op Op) MemSize() int { return opTable[op].memSize }
