package isa

import (
	"fmt"
	"strings"
)

// Inst is one instruction. Every instruction carries a qualifying predicate
// (Pred, P(0) meaning "always"); a predicated-off instruction has no effect.
//
// Operand conventions:
//   - Dst is the written register (RegNone if the instruction writes nothing).
//   - Src1/Src2 are read registers (RegNone when unused). For memory
//     operations Src1 is the address base; for stores Src2 is the data.
//   - Imm is the immediate (address displacement for memory operations).
//   - Target is the branch target, an instruction index into the program.
//   - Stop set means a stop bit follows this instruction: the issue group
//     ends here (the Itanium ";;").
type Inst struct {
	Op     Op
	Pred   Reg // qualifying predicate register; P(0) = always execute
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int32
	Target int32
	Stop   bool
}

// Nop returns a no-operation instruction.
func Nop() Inst {
	return Inst{Op: OpNop, Pred: P(0), Dst: RegNone, Src1: RegNone, Src2: RegNone}
}

// Sources appends the registers read by the instruction to dst and returns
// the extended slice. The qualifying predicate is included (unless P(0)):
// an instruction cannot dispatch, even as a no-op, before its predicate is
// known. Hardwired registers are always ready, so they are omitted.
func (in *Inst) Sources(dst []Reg) []Reg {
	if in.Pred != RegNone && !in.Pred.Hardwired() {
		dst = append(dst, in.Pred)
	}
	if in.Src1 != RegNone && !in.Src1.Hardwired() {
		dst = append(dst, in.Src1)
	}
	if in.Src2 != RegNone && !in.Src2.Hardwired() {
		dst = append(dst, in.Src2)
	}
	return dst
}

// HasDest reports whether the instruction writes a register that is not
// hardwired.
func (in *Inst) HasDest() bool {
	return in.Dst != RegNone && !in.Dst.Hardwired()
}

// String renders the instruction in the textual assembly syntax accepted by
// package program.
func (in *Inst) String() string {
	var b strings.Builder
	if in.Pred != RegNone && in.Pred != P(0) {
		fmt.Fprintf(&b, "(%s) ", in.Pred)
	}
	b.WriteString(in.Op.Name())
	sep := " "
	put := func(s string) {
		b.WriteString(sep)
		b.WriteString(s)
		sep = ", "
	}
	switch {
	case in.Op.IsLoad():
		put(in.Dst.String())
		sep = " = "
		put(fmt.Sprintf("[%s, %d]", in.Src1, in.Imm))
	case in.Op.IsStore():
		put(fmt.Sprintf("[%s, %d]", in.Src1, in.Imm))
		sep = " = "
		put(in.Src2.String())
	case in.Op.IsBranch():
		if in.Dst != RegNone {
			put(in.Dst.String())
			sep = " = "
		}
		if in.Src1 != RegNone {
			put(in.Src1.String())
		} else {
			put(fmt.Sprintf("@%d", in.Target))
		}
	case in.Op == OpHalt || in.Op == OpNop:
		// no operands
	default:
		if in.Dst != RegNone {
			put(in.Dst.String())
			sep = " = "
		}
		if in.Src1 != RegNone {
			put(in.Src1.String())
		}
		if in.Src2 != RegNone {
			put(in.Src2.String())
		}
		if usesImm(in.Op) {
			put(fmt.Sprintf("%d", in.Imm))
		}
	}
	if in.Stop {
		b.WriteString(" ;;")
	}
	return b.String()
}

func usesImm(op Op) bool {
	switch op {
	case OpAddI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpSarI, OpMovI,
		OpCmpEqI, OpCmpNeI, OpCmpLtI, OpCmpLeI:
		return true
	}
	return false
}
