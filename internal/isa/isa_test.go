package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegNamespace(t *testing.T) {
	if got := R(0); !got.IsInt() || got.IsFP() || got.IsPred() {
		t.Errorf("R(0) classification wrong")
	}
	if got := F(0); !got.IsFP() || got.IsInt() || got.IsPred() {
		t.Errorf("F(0) classification wrong")
	}
	if got := P(0); !got.IsPred() || got.IsInt() || got.IsFP() {
		t.Errorf("P(0) classification wrong")
	}
	if R(63)+1 != F(0) {
		t.Errorf("int and fp namespaces not adjacent")
	}
	if F(63)+1 != P(0) {
		t.Errorf("fp and pred namespaces not adjacent")
	}
	if int(P(15)) != NumRegs-1 {
		t.Errorf("P(15) = %d, want %d", P(15), NumRegs-1)
	}
}

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R(0), "r0"}, {R(63), "r63"}, {F(0), "f0"}, {F(7), "f7"},
		{P(0), "p0"}, {P(15), "p15"}, {RegNone, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegIndex(t *testing.T) {
	if R(17).Index() != 17 || F(42).Index() != 42 || P(9).Index() != 9 {
		t.Errorf("Index() does not recover the class-local number")
	}
	if RegNone.Index() != -1 {
		t.Errorf("RegNone.Index() = %d, want -1", RegNone.Index())
	}
}

func TestHardwired(t *testing.T) {
	for _, r := range []Reg{R(0), F(0), F(1), P(0)} {
		if !r.Hardwired() {
			t.Errorf("%s should be hardwired", r)
		}
	}
	for _, r := range []Reg{R(1), F(2), P(1), R(63)} {
		if r.Hardwired() {
			t.Errorf("%s should not be hardwired", r)
		}
	}
	if HardwiredValue(R(0)) != 0 || HardwiredValue(P(0)) != 1 {
		t.Errorf("hardwired integer/predicate values wrong")
	}
	if AsFP(HardwiredValue(F(1))) != 1.0 || AsFP(HardwiredValue(F(0))) != 0.0 {
		t.Errorf("hardwired fp values wrong")
	}
}

func TestRegPanicsOutOfRange(t *testing.T) {
	for _, f := range []func(){
		func() { R(64) }, func() { F(64) }, func() { P(16) }, func() { R(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for out-of-range register")
				}
			}()
			f()
		}()
	}
}

func TestOpClassesAndLatencies(t *testing.T) {
	cases := []struct {
		op   Op
		cls  FUClass
		lat  int
		load bool
		st   bool
		br   bool
	}{
		{OpAdd, ClassALU, 1, false, false, false},
		{OpMul, ClassALU, 3, false, false, false},
		{OpLd4, ClassMEM, 2, true, false, false},
		{OpSt4, ClassMEM, 1, false, true, false},
		{OpLdF, ClassMEM, 2, true, false, false},
		{OpFAdd, ClassFP, 4, false, false, false},
		{OpFDiv, ClassFP, 20, false, false, false},
		{OpBr, ClassBR, 1, false, false, true},
		{OpBrRet, ClassBR, 1, false, false, true},
		{OpHalt, ClassBR, 1, false, false, false},
	}
	for _, c := range cases {
		if c.op.Class() != c.cls {
			t.Errorf("%s class = %v, want %v", c.op, c.op.Class(), c.cls)
		}
		if c.op.Latency() != c.lat {
			t.Errorf("%s latency = %d, want %d", c.op, c.op.Latency(), c.lat)
		}
		if c.op.IsLoad() != c.load || c.op.IsStore() != c.st || c.op.IsBranch() != c.br {
			t.Errorf("%s load/store/branch flags wrong", c.op)
		}
	}
}

func TestAllOpsHaveNames(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.Name() == "" {
			t.Errorf("op %d has no name", op)
		}
		if !op.Valid() {
			t.Errorf("op %d should be valid", op)
		}
	}
	if Op(numOps).Valid() {
		t.Errorf("op numOps should be invalid")
	}
}

func TestMemSizes(t *testing.T) {
	sizes := map[Op]int{
		OpLd1: 1, OpLd2: 2, OpLd4: 4, OpLdF: 8,
		OpSt1: 1, OpSt2: 2, OpSt4: 4, OpStF: 8,
		OpAdd: 0, OpBr: 0,
	}
	for op, want := range sizes {
		if got := op.MemSize(); got != want {
			t.Errorf("%s MemSize = %d, want %d", op, got, want)
		}
	}
}

func TestEvalIntegerALU(t *testing.T) {
	cases := []struct {
		op   Op
		a, b Value
		imm  int32
		want Value
	}{
		{OpAdd, 7, 5, 0, 12},
		{OpAdd, 0xFFFFFFFF, 1, 0, 0}, // 32-bit wraparound
		{OpSub, 3, 5, 0, I32Value(-2)},
		{OpAddI, 10, 0, -3, 7},
		{OpAnd, 0b1100, 0b1010, 0, 0b1000},
		{OpOr, 0b1100, 0b1010, 0, 0b1110},
		{OpXor, 0b1100, 0b1010, 0, 0b0110},
		{OpShl, 1, 33, 0, 2},                     // shift amount masked to 5 bits
		{OpShr, 0x80000000, 31, 0, 1},            // logical
		{OpSar, 0x80000000, 31, 0, I32Value(-1)}, // arithmetic
		{OpSarI, I32Value(-8), 0, 2, I32Value(-2)},
		{OpMul, 6, 7, 0, 42},
		{OpMovI, 0, 0, -1, 0xFFFFFFFF},
		{OpMov, 99, 0, 0, 99},
	}
	for _, c := range cases {
		if got := Eval(c.op, c.a, c.b, c.imm); got != c.want {
			t.Errorf("Eval(%s, %#x, %#x, %d) = %#x, want %#x", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestEvalCompares(t *testing.T) {
	neg1 := I32Value(-1)
	cases := []struct {
		op   Op
		a, b Value
		imm  int32
		want Value
	}{
		{OpCmpEq, 4, 4, 0, 1},
		{OpCmpNe, 4, 4, 0, 0},
		{OpCmpLt, neg1, 0, 0, 1},  // signed
		{OpCmpLtU, neg1, 0, 0, 0}, // unsigned
		{OpCmpLe, 4, 4, 0, 1},
		{OpCmpLeU, 5, 4, 0, 0},
		{OpCmpLtI, neg1, 0, 0, 1},
		{OpCmpEqI, 7, 0, 7, 1},
		{OpCmpNeI, 7, 0, 7, 0},
		{OpCmpLeI, 7, 0, 7, 1},
	}
	for _, c := range cases {
		if got := Eval(c.op, c.a, c.b, c.imm); got != c.want {
			t.Errorf("Eval(%s, %#x, %#x, %d) = %d, want %d", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestEvalFP(t *testing.T) {
	a, b := FPValue(3.5), FPValue(2.0)
	if AsFP(Eval(OpFAdd, a, b, 0)) != 5.5 {
		t.Errorf("fadd wrong")
	}
	if AsFP(Eval(OpFSub, a, b, 0)) != 1.5 {
		t.Errorf("fsub wrong")
	}
	if AsFP(Eval(OpFMul, a, b, 0)) != 7.0 {
		t.Errorf("fmul wrong")
	}
	if AsFP(Eval(OpFDiv, a, b, 0)) != 1.75 {
		t.Errorf("fdiv wrong")
	}
	if AsFP(Eval(OpFNeg, a, 0, 0)) != -3.5 {
		t.Errorf("fneg wrong")
	}
	if Eval(OpFCmpLt, b, a, 0) != 1 || Eval(OpFCmpLt, a, b, 0) != 0 {
		t.Errorf("fcmp.lt wrong")
	}
	if Eval(OpFCmpEq, a, a, 0) != 1 {
		t.Errorf("fcmp.eq wrong")
	}
	if AsFP(Eval(OpI2F, I32Value(-7), 0, 0)) != -7.0 {
		t.Errorf("i2f wrong")
	}
	if AsI32(Eval(OpF2I, FPValue(-7.9), 0, 0)) != -7 {
		t.Errorf("f2i wrong (should truncate)")
	}
}

func TestEvalPanicsOnMemoryOps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Eval(OpLd4) should panic")
		}
	}()
	Eval(OpLd4, 0, 0, 0)
}

func TestEffectiveAddress(t *testing.T) {
	if got := EffectiveAddress(100, -4); got != 96 {
		t.Errorf("EffectiveAddress(100,-4) = %d, want 96", got)
	}
	if got := EffectiveAddress(0xFFFFFFFF, 1); got != 0 {
		t.Errorf("address should wrap at 32 bits, got %#x", got)
	}
}

func TestSources(t *testing.T) {
	in := Inst{Op: OpAdd, Pred: P(1), Dst: R(1), Src1: R(2), Src2: R(3)}
	got := in.Sources(nil)
	want := []Reg{P(1), R(2), R(3)}
	if len(got) != len(want) {
		t.Fatalf("Sources = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sources[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// P(0) and hardwired sources are omitted.
	in2 := Inst{Op: OpAddI, Pred: P(0), Dst: R(1), Src1: R(0), Src2: RegNone}
	if got := in2.Sources(nil); len(got) != 0 {
		t.Errorf("Sources of addi r1=r0 should be empty, got %v", got)
	}
}

func TestHasDest(t *testing.T) {
	if !(&Inst{Op: OpAdd, Dst: R(5)}).HasDest() {
		t.Errorf("add r5 should have a dest")
	}
	if (&Inst{Op: OpAdd, Dst: R(0)}).HasDest() {
		t.Errorf("writes to r0 are discarded, HasDest should be false")
	}
	if (&Inst{Op: OpSt4, Dst: RegNone}).HasDest() {
		t.Errorf("stores have no register dest")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Pred: P(0), Dst: R(1), Src1: R(2), Src2: R(3)}, "add r1 = r2, r3"},
		{Inst{Op: OpAddI, Pred: P(0), Dst: R(1), Src1: R(2), Src2: RegNone, Imm: 5}, "addi r1 = r2, 5"},
		{Inst{Op: OpLd4, Pred: P(0), Dst: R(1), Src1: R(2), Src2: RegNone, Imm: 8}, "ld4 r1 = [r2, 8]"},
		{Inst{Op: OpSt4, Pred: P(0), Dst: RegNone, Src1: R(2), Src2: R(3), Imm: -4}, "st4 [r2, -4] = r3"},
		{Inst{Op: OpBr, Pred: P(1), Dst: RegNone, Src1: RegNone, Src2: RegNone, Target: 7}, "(p1) br @7"},
		{Inst{Op: OpHalt, Pred: P(0), Dst: RegNone, Src1: RegNone, Src2: RegNone, Stop: true}, "halt ;;"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Property: integer Eval results always fit in 32 bits (ILP32 invariant), and
// predicate results are 0 or 1.
func TestEvalResultWidthProperty(t *testing.T) {
	intOps := []Op{OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpMul, OpMov}
	predOps := []Op{OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpLtU, OpCmpLeU}
	f := func(a, b uint32, opSel uint8) bool {
		op := intOps[int(opSel)%len(intOps)]
		if v := Eval(op, Value(a), Value(b), 0); v > math.MaxUint32 {
			return false
		}
		pop := predOps[int(opSel)%len(predOps)]
		if v := Eval(pop, Value(a), Value(b), 0); v > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Eval of commutative operations is symmetric in its operands.
func TestEvalCommutativityProperty(t *testing.T) {
	ops := []Op{OpAdd, OpAnd, OpOr, OpXor, OpMul, OpCmpEq, OpCmpNe}
	f := func(a, b uint32, opSel uint8) bool {
		op := ops[int(opSel)%len(ops)]
		return Eval(op, Value(a), Value(b), 0) == Eval(op, Value(b), Value(a), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
