package isa

import "math"

// Value is the contents of one register, as raw bits. Integer registers hold
// their 32-bit value zero-extended (ILP32); floating-point registers hold
// math.Float64bits of their value; predicate registers hold 0 or 1.
type Value = uint64

// BoolValue converts a predicate truth value to its register encoding.
func BoolValue(b bool) Value {
	if b {
		return 1
	}
	return 0
}

// FPValue converts a float to its register encoding.
func FPValue(f float64) Value { return math.Float64bits(f) }

// AsFP converts a register value to a float.
func AsFP(v Value) float64 { return math.Float64frombits(v) }

// AsI32 converts a register value to a signed 32-bit integer.
func AsI32(v Value) int32 { return int32(uint32(v)) }

// I32Value converts a signed 32-bit integer to its register encoding.
func I32Value(x int32) Value { return Value(uint32(x)) }

// HardwiredValue returns the fixed value of a hardwired register
// (r0=0, f0=0.0, f1=1.0, p0=1).
func HardwiredValue(r Reg) Value {
	switch r {
	case F(1):
		return FPValue(1.0)
	case P(0):
		return 1
	default:
		return 0
	}
}

// Eval computes the result of a non-memory, non-branch operation from its
// source values: a is the value of Src1 and b of Src2. Memory operations and
// branches are evaluated by the machine models, which own address translation
// and control flow.
func Eval(op Op, a, b Value, imm int32) Value {
	switch op {
	case OpNop:
		return 0
	case OpAdd:
		return Value(uint32(a) + uint32(b))
	case OpSub:
		return Value(uint32(a) - uint32(b))
	case OpAddI:
		return Value(uint32(a) + uint32(imm))
	case OpAnd:
		return Value(uint32(a) & uint32(b))
	case OpAndI:
		return Value(uint32(a) & uint32(imm))
	case OpOr:
		return Value(uint32(a) | uint32(b))
	case OpOrI:
		return Value(uint32(a) | uint32(imm))
	case OpXor:
		return Value(uint32(a) ^ uint32(b))
	case OpXorI:
		return Value(uint32(a) ^ uint32(imm))
	case OpShl:
		return Value(uint32(a) << (uint32(b) & 31))
	case OpShlI:
		return Value(uint32(a) << (uint32(imm) & 31))
	case OpShr:
		return Value(uint32(a) >> (uint32(b) & 31))
	case OpShrI:
		return Value(uint32(a) >> (uint32(imm) & 31))
	case OpSar:
		return I32Value(AsI32(a) >> (uint32(b) & 31))
	case OpSarI:
		return I32Value(AsI32(a) >> (uint32(imm) & 31))
	case OpMul:
		return Value(uint32(a) * uint32(b))
	case OpMovI:
		return Value(uint32(imm))
	case OpMov:
		return a
	case OpCmpEq:
		return BoolValue(uint32(a) == uint32(b))
	case OpCmpNe:
		return BoolValue(uint32(a) != uint32(b))
	case OpCmpLt:
		return BoolValue(AsI32(a) < AsI32(b))
	case OpCmpLe:
		return BoolValue(AsI32(a) <= AsI32(b))
	case OpCmpLtU:
		return BoolValue(uint32(a) < uint32(b))
	case OpCmpLeU:
		return BoolValue(uint32(a) <= uint32(b))
	case OpCmpEqI:
		return BoolValue(AsI32(a) == imm)
	case OpCmpNeI:
		return BoolValue(AsI32(a) != imm)
	case OpCmpLtI:
		return BoolValue(AsI32(a) < imm)
	case OpCmpLeI:
		return BoolValue(AsI32(a) <= imm)
	case OpFAdd:
		return FPValue(AsFP(a) + AsFP(b))
	case OpFSub:
		return FPValue(AsFP(a) - AsFP(b))
	case OpFMul:
		return FPValue(AsFP(a) * AsFP(b))
	case OpFDiv:
		return FPValue(AsFP(a) / AsFP(b))
	case OpFNeg:
		return FPValue(-AsFP(a))
	case OpFCmpLt:
		return BoolValue(AsFP(a) < AsFP(b))
	case OpFCmpLe:
		return BoolValue(AsFP(a) <= AsFP(b))
	case OpFCmpEq:
		return BoolValue(AsFP(a) == AsFP(b))
	case OpI2F:
		return FPValue(float64(AsI32(a)))
	case OpF2I:
		return I32Value(int32(AsFP(a)))
	}
	panic("isa: Eval called on " + op.Name())
}

// EffectiveAddress computes the address accessed by a memory operation given
// the value of its base register.
func EffectiveAddress(base Value, imm int32) uint32 {
	return uint32(base) + uint32(imm)
}
