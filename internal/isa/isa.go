// Package isa defines the EPIC-style instruction set simulated by this
// repository: a wide-word, in-order architecture in the spirit of the Intel
// Itanium family, as assumed by Barnes et al., "Beating in-order stalls with
// 'flea-flicker' two-pass pipelining" (MICRO 2003).
//
// The ISA uses an ILP32 data model (32-bit integers, longs and pointers, per
// Table 1 of the paper), a unified register namespace covering 64 integer
// registers, 64 floating-point registers and 16 one-bit predicate registers,
// explicit issue groups delimited by stop bits, and qualifying predicates on
// every instruction.
package isa

import "fmt"

// Reg names a register in the unified namespace. Integer registers are
// R(0)..R(63), floating-point registers F(0)..F(63) and predicate registers
// P(0)..P(15). R(0) reads as zero, F(0) as 0.0, F(1) as 1.0 and P(0) as true;
// writes to these hardwired registers are ignored.
type Reg uint8

// Register namespace layout.
const (
	NumIntRegs  = 64
	NumFPRegs   = 64
	NumPredRegs = 16
	// NumRegs is the size of the unified register namespace.
	NumRegs = NumIntRegs + NumFPRegs + NumPredRegs

	fpBase   = NumIntRegs
	predBase = NumIntRegs + NumFPRegs
)

// RegNone marks an absent operand slot.
const RegNone Reg = 0xFF

// R returns the integer register i.
func R(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register r%d out of range", i))
	}
	return Reg(i)
}

// F returns the floating-point register i.
func F(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register f%d out of range", i))
	}
	return Reg(fpBase + i)
}

// P returns the predicate register i.
func P(i int) Reg {
	if i < 0 || i >= NumPredRegs {
		panic(fmt.Sprintf("isa: predicate register p%d out of range", i))
	}
	return Reg(predBase + i)
}

// IsInt reports whether r is an integer register.
func (r Reg) IsInt() bool { return r < fpBase }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= fpBase && r < predBase }

// IsPred reports whether r is a predicate register.
func (r Reg) IsPred() bool { return r >= predBase && r != RegNone }

// Hardwired reports whether writes to r are discarded and reads return a
// fixed value (r0=0, f0=0.0, f1=1.0, p0=true).
func (r Reg) Hardwired() bool {
	return r == R(0) || r == F(0) || r == F(1) || r == P(0)
}

// String renders the register in assembly syntax (r7, f3, p1).
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsInt():
		return fmt.Sprintf("r%d", int(r))
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-fpBase)
	default:
		return fmt.Sprintf("p%d", int(r)-predBase)
	}
}

// Index returns the register number within its class (the 7 in r7).
func (r Reg) Index() int {
	switch {
	case r.IsInt():
		return int(r)
	case r.IsFP():
		return int(r) - fpBase
	case r.IsPred():
		return int(r) - predBase
	default:
		return -1
	}
}
