package stats

import (
	"testing"

	"fleaflicker/internal/mem"
	"fleaflicker/internal/metrics"
)

func TestCollectorSnapshotMatchesRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCollector(reg, "bench", "2P")

	lat := [mem.NumLevels]int{2, 5, 15, 145}
	c.Cycle(Unstalled)
	c.Cycle(Unstalled)
	c.Cycle(LoadStall)
	c.Instruction()
	c.Access(mem.LevelL2, PipeA, lat)
	c.Access(mem.LevelMem, PipeB, lat)
	c.MispredictA()
	c.MispredictB()
	c.ConflictFlush()
	c.LoadPastDeferredStore()
	c.StoreCommitted()
	c.StoreDeferred()
	c.Defer()
	c.PreExecute()
	c.Regroup(3)
	c.CQOccupancy(7)
	c.CQOccupancy(5)

	r := c.Snapshot(mem.Stats{})
	if r.Benchmark != "bench" || r.Model != "2P" {
		t.Errorf("identity lost: %q/%q", r.Benchmark, r.Model)
	}
	if r.Cycles != 3 || r.ByClass[Unstalled] != 2 || r.ByClass[LoadStall] != 1 {
		t.Errorf("cycle counts wrong: %d %v", r.Cycles, r.ByClass)
	}
	if r.Access[mem.LevelL2][PipeA] != 1 || r.AccessCycles[mem.LevelL2][PipeA] != 5 {
		t.Errorf("L2/A access wrong: %d/%d", r.Access[mem.LevelL2][PipeA], r.AccessCycles[mem.LevelL2][PipeA])
	}
	if r.AccessCycles[mem.LevelMem][PipeB] != 145 {
		t.Errorf("Mem/B access cycles wrong")
	}
	if r.MispredictsA != 1 || r.MispredictsB != 1 || r.ConflictFlushes != 1 ||
		r.LoadsPastDeferredStore != 1 || r.StoresTotal != 1 || r.StoresDeferred != 1 ||
		r.Deferred != 1 || r.PreExecuted != 1 || r.Regrouped != 3 || r.CQOccupancySum != 12 {
		t.Errorf("scalar counters wrong: %+v", r)
	}

	// The registry view and the Run view must agree name by name.
	if v, _ := reg.CounterValue(MetricCycles); v != r.Cycles {
		t.Errorf("registry %s=%d, Run.Cycles=%d", MetricCycles, v, r.Cycles)
	}
	if v, _ := reg.CounterValue(ClassMetricName(LoadStall)); v != r.ByClass[LoadStall] {
		t.Errorf("registry class counter disagrees with Run")
	}
	if v, _ := reg.CounterValue(AccessMetricName(mem.LevelL2, PipeA, true)); v != 5 {
		t.Errorf("registry access counter = %d, want 5", v)
	}
	if g := reg.Gauge(GaugeCQOccupancy).Value(); g != 5 {
		t.Errorf("occupancy gauge = %d, want last-set 5", g)
	}

	// Cycle() keeps the Figure 6 invariant by construction.
	if err := r.CheckInvariants(); err == nil {
		// Access counts vs Mem.DataServed mismatch is expected here (no
		// hierarchy); check only the class-sum half.
		t.Log("invariants unexpectedly fully satisfied (no hierarchy stats)")
	}
	var sum int64
	for _, v := range r.ByClass {
		sum += v
	}
	if sum != r.Cycles {
		t.Errorf("class sum %d != cycles %d", sum, r.Cycles)
	}
}

func TestCollectorExtraCounter(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCollector(reg, "b", "m")
	c.Counter("runahead.entries").Add(4)
	if v, ok := reg.CounterValue("runahead.entries"); !ok || v != 4 {
		t.Errorf("extra counter = %d, %v", v, ok)
	}
	if c.Registry() != reg {
		t.Error("Registry() should expose the backing registry")
	}
}
