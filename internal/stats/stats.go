// Package stats defines the measurement vocabulary of the paper's
// evaluation: the six execution-cycle classes of Figure 6, the
// per-cache-level access attribution of Figure 7 (split by initiating pipe),
// and the event counters behind the scalar results of §4 (misprediction
// resolution split, store-conflict rates, deferral counts).
package stats

import (
	"fmt"

	"fleaflicker/internal/mem"
)

// CycleClass classifies one execution cycle of the (architectural) pipeline,
// matching the stacked categories of Figure 6.
type CycleClass int

// The six cycle classes of Figure 6. For the two-pass machine the classes
// describe the condition of the B-pipe (the architectural pipe), so the
// two-pass pipeline is compared against the baseline like-for-like.
const (
	// Unstalled: an issue group dispatched this cycle.
	Unstalled CycleClass = iota
	// LoadStall: dispatch blocked waiting on a load result.
	LoadStall
	// NonLoadDepStall: dispatch blocked on a non-load producer (FP,
	// multiply, ...).
	NonLoadDepStall
	// ResourceStall: dispatch blocked on an oversubscribed resource
	// (outstanding-load slots, full coupling queue in the A-pipe's case).
	ResourceStall
	// FrontEndStall: no group available to dispatch (fetch redirect,
	// I-cache miss, flush recovery).
	FrontEndStall
	// APipeStall: two-pass only — the B-pipe had to wait for the A-pipe
	// to get at least one cycle ahead.
	APipeStall
	NumCycleClasses
)

func (c CycleClass) String() string {
	switch c {
	case Unstalled:
		return "Unstalled execution"
	case LoadStall:
		return "Load stall"
	case NonLoadDepStall:
		return "Non-load dep. stall"
	case ResourceStall:
		return "Resource stall"
	case FrontEndStall:
		return "Front end stall"
	case APipeStall:
		return "A-pipe stall"
	}
	return "?"
}

// Pipe identifies which sub-pipeline initiated a memory access (Figure 7).
// The baseline machine initiates everything in PipeA.
type Pipe int

// Sub-pipelines.
const (
	PipeA Pipe = iota
	PipeB
	NumPipes
)

func (p Pipe) String() string {
	if p == PipeA {
		return "A"
	}
	return "B"
}

// Run is the full measurement record of one simulation.
type Run struct {
	Benchmark string
	Model     string

	// Cycles is total execution cycles; ByClass decomposes it.
	Cycles  int64
	ByClass [NumCycleClasses]int64

	// Instructions counts architecturally retired instructions.
	Instructions int64

	// Access[lvl][pipe] counts data loads served by cache level lvl that
	// were initiated by the given pipe; AccessCycles scales each access
	// by the level's latency (the y-axis of Figure 7).
	Access       [mem.NumLevels][NumPipes]int64
	AccessCycles [mem.NumLevels][NumPipes]int64

	// Branch resolution split (§4: 32% repaired in the A-pipe).
	MispredictsA int64 // detected and repaired at A-DET
	MispredictsB int64 // detected at B-DET (full flush)

	// Store-conflict bookkeeping (§4: 97% of loads issued past a deferred
	// store are conflict-free; 1.6% of stores are deferred and conflict).
	ConflictFlushes        int64 // flushes triggered by ALAT misses
	LoadsPastDeferredStore int64 // A-pipe loads issued while a deferred store was in the queue
	StoresTotal            int64
	StoresDeferred         int64 // stores executed in the B-pipe

	// Two-pass activity.
	Deferred    int64 // instructions deferred to the B-pipe
	PreExecuted int64 // instructions completed (or started) in the A-pipe
	Regrouped   int64 // stop bits removed by the B-pipe regrouper

	// CQOccupancySum accumulates coupling-queue occupancy each cycle;
	// divide by Cycles for the mean.
	CQOccupancySum int64

	// Mem is the hierarchy's own traffic statistics.
	Mem mem.Stats
}

// IPC returns retired instructions per cycle.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// StallCycles returns the cycles not classified as unstalled execution.
func (r *Run) StallCycles() int64 { return r.Cycles - r.ByClass[Unstalled] }

// MemStallCycles returns the load-stall cycles (the paper's "memory stall
// cycles" in the mcf discussion).
func (r *Run) MemStallCycles() int64 { return r.ByClass[LoadStall] }

// RecordAccess notes a data load served at level lvl initiated by pipe p,
// scaled by the level latency table.
func (r *Run) RecordAccess(lvl mem.Level, p Pipe, levelLat [mem.NumLevels]int) {
	r.Access[lvl][p]++
	r.AccessCycles[lvl][p] += int64(levelLat[lvl])
}

// ConflictFreeRate returns the fraction of A-pipe loads issued past a
// deferred store that did not trigger a conflict flush.
func (r *Run) ConflictFreeRate() float64 {
	if r.LoadsPastDeferredStore == 0 {
		return 1
	}
	return 1 - float64(r.ConflictFlushes)/float64(r.LoadsPastDeferredStore)
}

// CheckInvariants validates internal consistency (cycle classes sum to the
// total, access counts match the hierarchy) and returns an error describing
// the first violation. Machines call this at the end of a run; tests assert
// it returns nil.
func (r *Run) CheckInvariants() error {
	var sum int64
	for _, c := range r.ByClass {
		sum += c
	}
	if sum != r.Cycles {
		return fmt.Errorf("stats: cycle classes sum to %d, total is %d", sum, r.Cycles)
	}
	var acc int64
	for lvl := mem.Level(0); lvl < mem.NumLevels; lvl++ {
		for p := Pipe(0); p < NumPipes; p++ {
			acc += r.Access[lvl][p]
		}
	}
	var served int64
	for _, n := range r.Mem.DataServed {
		served += n
	}
	if acc != served {
		return fmt.Errorf("stats: recorded %d accesses, hierarchy served %d", acc, served)
	}
	return nil
}
