package stats

import (
	"strings"
	"testing"

	"fleaflicker/internal/mem"
)

func TestCycleClassStrings(t *testing.T) {
	want := map[CycleClass]string{
		Unstalled:       "Unstalled execution",
		LoadStall:       "Load stall",
		NonLoadDepStall: "Non-load dep. stall",
		ResourceStall:   "Resource stall",
		FrontEndStall:   "Front end stall",
		APipeStall:      "A-pipe stall",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if CycleClass(99).String() != "?" {
		t.Errorf("unknown class should print ?")
	}
	if NumCycleClasses != 6 {
		t.Errorf("Figure 6 has six classes, got %d", NumCycleClasses)
	}
}

func TestPipeStrings(t *testing.T) {
	if PipeA.String() != "A" || PipeB.String() != "B" {
		t.Errorf("pipe names wrong")
	}
}

func TestIPCAndStallAccessors(t *testing.T) {
	r := Run{Cycles: 200, Instructions: 100}
	r.ByClass[Unstalled] = 80
	r.ByClass[LoadStall] = 120
	if r.IPC() != 0.5 {
		t.Errorf("IPC = %f", r.IPC())
	}
	if r.StallCycles() != 120 {
		t.Errorf("StallCycles = %d", r.StallCycles())
	}
	if r.MemStallCycles() != 120 {
		t.Errorf("MemStallCycles = %d", r.MemStallCycles())
	}
	var empty Run
	if empty.IPC() != 0 {
		t.Errorf("empty IPC should be 0")
	}
}

func TestRecordAccess(t *testing.T) {
	var r Run
	lat := [mem.NumLevels]int{2, 5, 15, 145}
	r.RecordAccess(mem.LevelL2, PipeA, lat)
	r.RecordAccess(mem.LevelL2, PipeA, lat)
	r.RecordAccess(mem.LevelMem, PipeB, lat)
	if r.Access[mem.LevelL2][PipeA] != 2 || r.AccessCycles[mem.LevelL2][PipeA] != 10 {
		t.Errorf("L2/A accounting wrong: %d, %d",
			r.Access[mem.LevelL2][PipeA], r.AccessCycles[mem.LevelL2][PipeA])
	}
	if r.AccessCycles[mem.LevelMem][PipeB] != 145 {
		t.Errorf("Mem/B accounting wrong")
	}
}

func TestConflictFreeRate(t *testing.T) {
	r := Run{LoadsPastDeferredStore: 100, ConflictFlushes: 3}
	if got := r.ConflictFreeRate(); got != 0.97 {
		t.Errorf("ConflictFreeRate = %f, want 0.97", got)
	}
	var none Run
	if none.ConflictFreeRate() != 1 {
		t.Errorf("no loads past deferred stores should report 1.0")
	}
}

func TestCheckInvariants(t *testing.T) {
	var r Run
	r.Cycles = 10
	r.ByClass[Unstalled] = 4
	r.ByClass[LoadStall] = 6
	if err := r.CheckInvariants(); err != nil {
		t.Errorf("consistent run rejected: %v", err)
	}
	r.ByClass[LoadStall] = 5
	if err := r.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "sum") {
		t.Errorf("class/cycle mismatch not caught: %v", err)
	}
	r.ByClass[LoadStall] = 6
	r.Access[mem.LevelL1][PipeA] = 3 // hierarchy served none
	if err := r.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "accesses") {
		t.Errorf("access mismatch not caught: %v", err)
	}
	r.Mem.DataServed[mem.LevelL1] = 3
	if err := r.CheckInvariants(); err != nil {
		t.Errorf("matched accesses rejected: %v", err)
	}
}
